(* sched_explore: schedule exploration for the durable STM.

   crash_explore enumerates *where* a run can die; this driver
   enumerates *how* a run can interleave.  Every simulator event that
   falls due at the same instant is ordered by a pluggable tiebreak
   policy ({!Sim.Schedule}): fifo is the historical deterministic
   order, shuffle permutes each tie with a seeded rng, and priority is
   a PCT-style scheduler with seeded priority-change points.  Each run

     1. executes a deterministic multi-threaded read-write workload
        under the chosen (policy, seed), recording every tiebreak key
        and backoff draw into a schedule trace;
     2. collects each committed transaction's first-read values, write
        set, and commit timestamp into a history;
     3. checks the history for conflict serializability: replayed in
        commit-timestamp order against a model memory, every recorded
        read and the final memory image must match — cts order is
        exactly the order crash recovery would replay the redo logs in.

   A violating schedule is saved next to the scratch directory and the
   exact replay invocation is printed; --replay re-runs it bit-exactly
   (including aborts and backoff), which is how the regression traces
   in test/schedules/ were captured.

   Usage:
     sched_explore [--seeds N] [--seed0 K] [--policy P] [--threads T]
                   [--txns N] [--slots S] [--undo] [--trace]
                   [--lease N] [--stripes N] [--group-commit]
                   [--pipeline] [--cm-adaptive] [--admission]
                   [--pmcheck] [--race]
                   [--record FILE | --replay FILE] [--dir D] [-v]
*)

open Cmdliner
module H = Explore.Sched_harness

let policies_of_string = function
  | "all" -> Ok [ Sim.Schedule.Fifo; Sim.Schedule.Seeded_shuffle;
                  Sim.Schedule.Priority ]
  | s -> Result.map (fun p -> [ p ]) (Sim.Schedule.policy_of_string s)

let describe o =
  Printf.sprintf "%d commits (%d ro), %d aborts, %d contention, %d ns"
    o.H.commits o.H.ro_commits o.H.aborts o.H.contention o.H.sim_ns

let print_violations o =
  List.iter (fun v -> Printf.printf "  VIOLATION: %s\n" v) o.H.violations

let replay_hint path dir =
  Printf.sprintf "sched_explore --replay %s --dir %s" (Filename.quote path)
    (Filename.quote dir)

(* ------------------------------------------------------------------ *)
(* Modes                                                               *)

let run_replay ~dir ~verbose path =
  match Sim.Schedule.load path with
  | Error msg ->
      Printf.eprintf "sched_explore: %s\n" msg;
      2
  | Ok sched -> (
      let cfg = H.cfg_of_schedule ~dir sched in
      Printf.printf "replaying %s: policy %s, seed %d, %d threads x %d txns\n%!"
        path
        (Sim.Schedule.policy_name cfg.H.policy)
        cfg.H.seed cfg.H.threads cfg.H.txns;
      let o = H.run ~schedule:sched cfg in
      if verbose then Printf.printf "  %s\n" (describe o);
      print_violations o;
      let fidelity =
        if o.H.replay_leftover = 0 && o.H.replay_extra = 0 then "bit-exact"
        else
          (* Expected when replaying a regression trace against fixed
             code: the fix changes a transaction's fate partway
             through, after which the decision streams stop lining up. *)
          Printf.sprintf "diverged: %d recorded decisions unconsumed, %d invented"
            o.H.replay_leftover o.H.replay_extra
      in
      if o.H.violations <> [] then begin
        Printf.printf "replay NOT SERIALIZABLE (%s): %s\n" fidelity
          (describe o);
        1
      end
      else begin
        Printf.printf "replay OK (%s): %s, serializable\n" fidelity
          (describe o);
        0
      end)

let run_record ~cfg ~verbose path =
  let o = H.run cfg in
  H.save_schedule o cfg path;
  if o.H.violations <> [] then begin
    let flight = path ^ ".flight.txt" in
    Out_channel.with_open_text flight (fun oc ->
        output_string oc (Obs.flight_dump o.H.obs));
    Printf.printf "flight recorder: %s\n" flight
  end;
  if verbose then Printf.printf "  %s\n" (describe o);
  print_violations o;
  Printf.printf "recorded %s schedule (seed %d) to %s: %s\n"
    (Sim.Schedule.policy_name cfg.H.policy)
    cfg.H.seed path
    (if o.H.violations = [] then "serializable" else "NOT SERIALIZABLE");
  if o.H.violations = [] then 0 else 1

let run_sweep ~cfg0 ~policies ~seeds ~seed0 ~verbose =
  let failures = ref [] in
  let runs = ref 0 in
  let total_commits = ref 0 and total_aborts = ref 0 in
  List.iter
    (fun policy ->
      for k = seed0 to seed0 + seeds - 1 do
        let cfg = { cfg0 with H.policy; seed = k } in
        let o = H.run cfg in
        incr runs;
        total_commits := !total_commits + o.H.commits;
        total_aborts := !total_aborts + o.H.aborts;
        if verbose then
          Printf.printf "%s seed %d: %s%s\n%!"
            (Sim.Schedule.policy_name policy)
            k (describe o)
            (if o.H.violations = [] then "" else "  << VIOLATION");
        if o.H.violations <> [] then begin
          let path =
            Filename.concat cfg.H.dir
              (Printf.sprintf "sched-%s-seed%d.trace"
                 (Sim.Schedule.policy_name policy)
                 k)
          in
          H.save_schedule o cfg path;
          (* flight recorder: the last events before the violation,
             always available — the sweep does not run with tracing *)
          let flight = path ^ ".flight.txt" in
          Out_channel.with_open_text flight (fun oc ->
              output_string oc (Obs.flight_dump o.H.obs));
          Printf.printf "FAIL %s seed %d: %d violation(s)\n"
            (Sim.Schedule.policy_name policy)
            k
            (List.length o.H.violations);
          print_violations o;
          Printf.printf "     replay: %s\n" (replay_hint path cfg.H.dir);
          Printf.printf "     flight recorder: %s\n%!" flight;
          failures := (policy, k, path) :: !failures
        end
      done)
    policies;
  Printf.printf
    "explored %d schedules (%d seeds x %d policies): %d commits, %d aborts\n"
    !runs seeds (List.length policies) !total_commits !total_aborts;
  if !failures = [] then begin
    Printf.printf "all %d schedules conflict-serializable.\n" !runs;
    0
  end
  else begin
    Printf.printf "%d schedule(s) FAILED:\n" (List.length !failures);
    List.iter
      (fun (_, _, path) ->
        Printf.printf "  %s\n" (replay_hint path cfg0.H.dir))
      (List.rev !failures);
    1
  end

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)

let run seeds seed0 policy threads txns slots undo zero_lat lease stripes
    group_commit pipeline cm_adaptive admission trace pmcheck race record
    replay dir verbose =
  let cfg0 =
    {
      (H.default_cfg ~dir) with
      H.threads;
      txns;
      nslots = slots;
      undo;
      zero_lat;
      lease;
      stripes;
      group_commit;
      pipeline;
      cm_adaptive;
      admission;
      trace;
      pmcheck;
      race;
      seed = seed0;
    }
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  match (replay, record) with
  | Some _, Some _ ->
      Printf.eprintf "sched_explore: --record and --replay are exclusive\n";
      2
  | Some path, None -> run_replay ~dir ~verbose path
  | None, record -> (
      match policies_of_string policy with
      | Error msg ->
          Printf.eprintf "sched_explore: %s\n" msg;
          2
      | Ok policies -> (
          match record with
          | Some path ->
              let policy =
                match policies with [ p ] -> p | _ -> Sim.Schedule.Seeded_shuffle
              in
              run_record ~cfg:{ cfg0 with H.policy } ~verbose path
          | None -> run_sweep ~cfg0 ~policies ~seeds ~seed0 ~verbose))

let seeds =
  Arg.(
    value & opt int 70
    & info [ "seeds" ] ~doc:"Schedule seeds to explore per policy.")

let seed0 = Arg.(value & opt int 0 & info [ "seed0" ] ~doc:"First seed.")

let policy =
  Arg.(
    value & opt string "all"
    & info [ "policy" ]
        ~doc:"Tiebreak policy: fifo, shuffle, priority, or all.")

let threads =
  Arg.(value & opt int 3 & info [ "threads" ] ~doc:"Simulated threads.")

let txns =
  Arg.(value & opt int 8 & info [ "txns" ] ~doc:"Transactions per thread.")

let slots =
  Arg.(
    value & opt int 16
    & info [ "slots" ] ~doc:"Shared 8-byte slots (lower = more conflicts).")

let undo =
  Arg.(
    value & flag
    & info [ "undo" ] ~doc:"Run under eager undo logging instead of redo.")

let zero_lat =
  Arg.(
    value & flag
    & info [ "zero-lat" ]
        ~doc:
          "Zero all software-overhead latencies so whole code paths land \
           on single simulated ticks: maximally adversarial same-time \
           ties.")

let lease =
  Arg.(
    value & opt int 1
    & info [ "lease" ]
        ~doc:
          "Commit timestamps leased per shared-counter refill \
           (Txn.config.ts_lease; 1 = the legacy draw-per-commit \
           protocol).  Small values make lease-boundary interleavings \
           common.")

let stripes =
  Arg.(
    value & opt int 1
    & info [ "stripes" ]
        ~doc:"Lock-table stripes, a power of two (Txn.config.lock_stripes).")

let group_commit =
  Arg.(
    value & flag
    & info [ "group-commit" ]
        ~doc:
          "Share one durability fence among transactions retiring in the \
           same drain window (Txn.config.group_commit).")

let pipeline =
  Arg.(
    value & flag
    & info [ "pipeline" ]
        ~doc:
          "Pipelined commit (Txn.config.pipeline): locks release at the \
           durability fence and a drainer daemon retires the deferred \
           write-backs.  Fuzzes the release-to-write-back window.")

let cm_adaptive =
  Arg.(
    value & flag
    & info [ "cm-adaptive" ]
        ~doc:
          "Adaptive contention manager (Txn.config.cm = Cm_adaptive): \
           wait-die timestamp priority plus capped exponential backoff.")

let admission =
  Arg.(
    value & flag
    & info [ "admission" ]
        ~doc:
          "Route transactions through a Serve.Admission policy: a \
           deterministic slice is shed before starting, another is \
           cancelled mid-flight.  The serializability check then proves \
           rejected requests leave zero persistent side effects.")

let trace =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:"Record an observability trace (schedule decisions included).")

let pmcheck =
  Arg.(
    value & flag
    & info [ "pmcheck" ]
        ~doc:
          "Run every schedule under the durability sanitizer; sanitizer \
           violations fail the run like serializability violations do.")

let race =
  Arg.(
    value & flag
    & info [ "race" ]
        ~doc:
          "Run every schedule under the happens-before race detector \
           (FastTrack-style vector clocks over annotated volatile \
           coordination state); detected races fail the run like \
           serializability violations do and save a replayable trace.")

let record =
  Arg.(
    value
    & opt (some string) None
    & info [ "record" ] ~doc:"Run one schedule and save its trace to $(docv)."
        ~docv:"FILE")

let replay =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ]
        ~doc:"Replay a saved schedule trace bit-exactly." ~docv:"FILE")

let dir =
  Arg.(
    value
    & opt string
        (Filename.concat (Filename.get_temp_dir_name ()) "mnemosyne-sched")
    & info [ "dir" ] ~doc:"Scratch directory for instance state and traces.")

let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Per-run log.")

let cmd =
  Cmd.v
    (Cmd.info "sched_explore"
       ~doc:
         "Fuzz same-time interleavings of the durable STM and check every \
          run for conflict serializability")
    Term.(
      const run $ seeds $ seed0 $ policy $ threads $ txns $ slots $ undo
      $ zero_lat $ lease $ stripes $ group_commit $ pipeline $ cm_adaptive
      $ admission $ trace $ pmcheck $ race $ record $ replay $ dir $ verbose)

let () = exit (Cmd.eval' cmd)
