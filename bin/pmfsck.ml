(* pmfsck: standalone offline analyzer for a Mnemosyne instance
   directory.

   Opens the instance (recovery runs first, exactly as a restart
   would), then walks every layer of persistent metadata read-only —
   region table, pstatic directory, heap bitmaps and chunk chains,
   rooted data structures, log headers — and reports typed findings.
   Nothing is repaired and nothing is written: the backing store is
   bit-identical before and after a pass.

   Usage: pmfsck [--json] DIR
   Exit:  0 clean, 1 usage/IO error, 2 findings. *)

open Cmdliner

let run dir json =
  if not (Sys.file_exists dir) then begin
    Printf.eprintf "pmfsck: no instance at %s\n" dir;
    1
  end
  else begin
    let inst = Mnemosyne.open_instance ~dir () in
    let report = Check.Pmfsck.run (Mnemosyne.view inst) in
    if json then print_endline (Check.Pmfsck.to_json report)
    else print_string (Check.Pmfsck.render report);
    if Check.Pmfsck.ok report then 0 else 2
  end

let dir =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"Instance directory.")

let json =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Print the report as JSON instead of text.")

let cmd =
  Cmd.v
    (Cmd.info "pmfsck"
       ~doc:"Offline consistency analysis of a Mnemosyne instance")
    Term.(const run $ dir $ json)

let () = exit (Cmd.eval' cmd)
