(* regionctl: inspect a Mnemosyne instance directory.

   Shows what the recovery path sees: the region manager's boot
   statistics, every persistent region with its backing file, the
   pstatic directory, heap occupancy and per-thread transaction logs.

   Usage: regionctl DIR            full inspection (default command)
          regionctl stats DIR      occupancy summary: regions, heap, logs
          regionctl fsck DIR       offline consistency analysis (pmfsck)
*)

open Cmdliner

let run dir level =
  if not (Sys.file_exists dir) then begin
    Printf.eprintf "regionctl: no instance at %s\n" dir;
    1
  end
  else begin
    let inst = Mnemosyne.open_instance ~dir () in
    let stats = Mnemosyne.reincarnation_stats inst in
    let pmem = Mnemosyne.pmem inst in
    let mgr = Region.Pmem.manager pmem in
    let v = Mnemosyne.view inst in
    Printf.printf "Mnemosyne instance: %s\n\n" dir;

    let boot = Region.Manager.boot_stats mgr in
    Printf.printf "boot:   %d frames scanned, %d mappings rebuilt (%.1f ms)\n"
      boot.frames_scanned boot.mappings_rebuilt
      (float_of_int boot.boot_ns /. 1e6);
    Printf.printf
      "        %d frames free, %d resident; %d swap-ins, %d swap-outs\n"
      (Region.Manager.free_frames mgr)
      (Region.Manager.resident_frames mgr)
      (Region.Manager.swaps_in mgr) (Region.Manager.swaps_out mgr);
    Printf.printf
      "start:  remap %.2f ms, heap scavenge %.2f ms, %d txn(s) replayed\n\n"
      (float_of_int stats.remap_ns /. 1e6)
      (float_of_int stats.heap_scavenge_ns /. 1e6)
      stats.txns_replayed;

    Printf.printf "regions (excluding the static region):\n";
    let regions = Region.Pmem.regions pmem in
    if regions = [] then Printf.printf "  (none)\n"
    else
      List.iter
        (fun (addr, len) ->
          Printf.printf "  %#014x  %8d bytes  (%d pages)\n" addr len
            (Region.Layout.pages_for len))
        regions;

    Printf.printf "\npstatic variables:\n";
    let count = ref 0 in
    Region.Pstatic.iter v (fun name ~addr ~len ->
        incr count;
        let value = Region.Pmem.load v addr in
        Printf.printf "  %-24s %#014x  %4d bytes  first word %#Lx\n" name
          addr len value);
    if !count = 0 then Printf.printf "  (none)\n";

    Printf.printf "\nSCM device: %d frames, %d total media writes\n"
      (Scm.Scm_device.nframes (Mnemosyne.machine inst).dev)
      (Scm.Scm_device.total_writes (Mnemosyne.machine inst).dev);
    let dev = (Mnemosyne.machine inst).dev in
    let hottest = ref (0, 0) in
    for f = 0 to Scm.Scm_device.nframes dev - 1 do
      let w = Scm.Scm_device.write_count dev f in
      if w > snd !hottest then hottest := (f, w)
    done;
    let hot_frame, hot_writes = !hottest in
    Printf.printf
      "wear:   hottest frame %d with %d writes%s\n"
      hot_frame hot_writes
      (if level then "" else " (run with --level to remap hot frames)");
    if level then begin
      let moved = Region.Pmem.wear_level v ~threshold:1.5 in
      Printf.printf "wear:   leveling pass migrated %d page(s)\n" moved
    end;
    Mnemosyne.close inst;
    0
  end

(* stats: region + heap + log occupancy, plus the recovery-time
   observability counters.  --json emits the same facts as one object,
   with the metrics registry snapshot embedded under "metrics". *)
let run_stats dir json =
  if not (Sys.file_exists dir) then begin
    Printf.eprintf "regionctl: no instance at %s\n" dir;
    1
  end
  else begin
    let inst = Mnemosyne.open_instance ~dir () in
    let pmem = Mnemosyne.pmem inst in
    let mgr = Region.Pmem.manager pmem in
    let dev = (Mnemosyne.machine inst).dev in
    let nframes = Scm.Scm_device.nframes dev in
    let free = Region.Manager.free_frames mgr in
    let resident = Region.Manager.resident_frames mgr in
    let regions = Region.Pmem.regions pmem in
    let region_bytes = List.fold_left (fun acc (_, len) -> acc + len) 0 regions in
    let occ = Pmheap.Heap.occupancy (Mnemosyne.heap inst) in
    let logs = Mtm.Txn.log_usage (Mnemosyne.pool inst) in
    (* Serving tenants: any pstatic root named "serve.tenant.NN" (the
       layout contract in Serve.tenant_root) is a per-tenant B+ tree;
       attach each read-only and count keys — per-tenant region
       occupancy without the serving front-end running. *)
    let tenants =
      let acc = ref [] in
      Region.Pstatic.iter (Mnemosyne.view inst) (fun name ~addr ~len:_ ->
          if String.starts_with ~prefix:Serve.tenant_root_prefix name then
            acc := (name, addr) :: !acc);
      List.sort compare !acc
    in
    let tenant_occ =
      List.map
        (fun (name, addr) ->
          let keys =
            Mnemosyne.atomically inst (fun tx ->
                let root = Int64.to_int (Mtm.Txn.load tx addr) in
                if root = 0 then 0
                else
                  Pstruct.Bp_tree.length tx (Pstruct.Bp_tree.attach tx ~root))
          in
          (name, addr, keys))
        tenants
    in
    if json then begin
      let buf = Buffer.create 2048 in
      Buffer.add_string buf "{\n";
      Printf.bprintf buf
        "  \"frames\": {\"total\": %d, \"free\": %d, \"resident\": %d},\n"
        nframes free resident;
      Printf.bprintf buf
        "  \"regions\": {\"mapped\": %d, \"bytes\": %d},\n"
        (List.length regions) region_bytes;
      Printf.bprintf buf
        "  \"heap\": {\"superblocks\": %d, \"assigned_superblocks\": %d, \
         \"large_bytes\": %d, \"large_free_bytes\": %d},\n"
        occ.superblocks occ.assigned_superblocks occ.large_bytes
        occ.large_free_bytes;
      Buffer.add_string buf "  \"logs\": [";
      List.iteri
        (fun i u ->
          if i > 0 then Buffer.add_string buf ", ";
          Printf.bprintf buf
            "{\"slot\": %d, \"base\": %d, \"cap_words\": %d, \"used\": %d}"
            u.Mtm.Txn.slot u.Mtm.Txn.base u.Mtm.Txn.cap_words u.Mtm.Txn.used)
        logs;
      Buffer.add_string buf "],\n";
      Buffer.add_string buf "  \"tenants\": [";
      List.iteri
        (fun i (name, addr, keys) ->
          if i > 0 then Buffer.add_string buf ", ";
          Printf.bprintf buf "{\"root\": \"%s\", \"addr\": %d, \"keys\": %d}"
            name addr keys)
        tenant_occ;
      Buffer.add_string buf "],\n";
      Printf.bprintf buf "  \"metrics\": %s\n}"
        (String.trim (Obs.Metrics.to_json (Mnemosyne.obs inst).Obs.metrics));
      print_endline (Buffer.contents buf)
    end
    else begin
      Printf.printf "Mnemosyne instance: %s\n\n" dir;
      Printf.printf
        "frames: %d total, %d free, %d resident (%.1f%% occupied)\n" nframes
        free resident
        (100.0 *. float_of_int (nframes - free) /. float_of_int nframes);
      Printf.printf "regions: %d mapped, %d bytes total\n"
        (List.length regions) region_bytes;
      Printf.printf
        "heap:   %d/%d superblocks assigned; large area %d bytes, %d free \
         (%.1f%% used)\n"
        occ.assigned_superblocks occ.superblocks occ.large_bytes
        occ.large_free_bytes
        (100.0
        *. float_of_int (occ.large_bytes - occ.large_free_bytes)
        /. float_of_int (max 1 occ.large_bytes));
      Printf.printf "transaction logs:\n";
      List.iter
        (fun u ->
          Printf.printf
            "  slot %d  base %#014x  %d/%d words used (%.1f%%)\n"
            u.Mtm.Txn.slot u.Mtm.Txn.base u.Mtm.Txn.used u.Mtm.Txn.cap_words
            (100.0 *. float_of_int u.Mtm.Txn.used
            /. float_of_int u.Mtm.Txn.cap_words))
        logs;
      if tenant_occ <> [] then begin
        Printf.printf "serving tenants (pstatic %s*):\n"
          Serve.tenant_root_prefix;
        List.iter
          (fun (name, addr, keys) ->
            Printf.printf "  %-18s root slot %#014x  %6d keys\n" name addr
              keys)
          tenant_occ
      end;
      Printf.printf "\ncounters since open (recovery path):\n";
      print_string (Obs.Metrics.dump (Mnemosyne.obs inst).Obs.metrics)
    end;
    Mnemosyne.close inst;
    0
  end

(* fsck: open the instance (recovery runs first, exactly as a restart
   would), then analyze the recovered image read-only. *)
let run_fsck dir json =
  if not (Sys.file_exists dir) then begin
    Printf.eprintf "regionctl: no instance at %s\n" dir;
    1
  end
  else begin
    let inst = Mnemosyne.open_instance ~dir () in
    let report = Check.Pmfsck.run (Mnemosyne.view inst) in
    if json then print_endline (Check.Pmfsck.to_json report)
    else print_string (Check.Pmfsck.render report);
    (* No [close]: fsck must leave the image exactly as it found it. *)
    if Check.Pmfsck.ok report then 0 else 2
  end

(* Every subcommand builds its arguments fresh: a single Arg value
   shared between subcommands means one flag serving every parse, so
   state set while dispatching one subcommand can leak into the next
   (and documentation edits to "the" flag silently apply everywhere).
   Factories keep each Cmd.v self-contained. *)
let dir () =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"Instance directory.")

let json ~what () =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:(Printf.sprintf "Print the %s as JSON instead of text." what))

let level () =
  Arg.(
    value & flag
    & info [ "level" ]
        ~doc:"Run a wear-leveling pass over hot frames before closing.")

let inspect_term = Term.(const run $ dir () $ level ())

let inspect_cmd =
  Cmd.v
    (Cmd.info "inspect" ~doc:"Full inspection (the default command)")
    inspect_term

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Region, heap and log occupancy summary")
    Term.(const run_stats $ dir () $ json ~what:"occupancy summary" ())

let fsck_cmd =
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Offline consistency analysis of the instance's persistent image \
          (read-only; exits non-zero on findings)")
    Term.(const run_fsck $ dir () $ json ~what:"consistency report" ())

let cmd =
  Cmd.group ~default:inspect_term
    (Cmd.info "regionctl" ~doc:"Inspect a Mnemosyne instance")
    [ inspect_cmd; stats_cmd; fsck_cmd ]

(* Back-compat: `regionctl DIR` (no subcommand) still inspects. *)
let () =
  let argv =
    let a = Sys.argv in
    if
      Array.length a > 1
      && (not (List.mem a.(1) [ "inspect"; "stats"; "fsck" ]))
      && String.length a.(1) > 0
      && a.(1).[0] <> '-'
    then
      Array.concat
        [ [| a.(0); "inspect" |]; Array.sub a 1 (Array.length a - 1) ]
    else a
  in
  exit (Cmd.eval' ~argv cmd)
