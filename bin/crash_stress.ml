(* crash_stress: the paper's reliability validation (section 6.2).

   "We wrote a crash stress program, which uses transactions to perform
   random updates to memory using a known seed.  We verified that after
   a crash, memory contains the correct random values."

   Each round:
     1. reopen the instance (full recovery),
     2. verify that memory matches the deterministic replay of every
        transaction recorded as committed by a persistent counter,
     3. run a random number of random-update transactions,
     4. crash with adversarial policies (random subsets of in-flight
        writes land, random dirty cache lines were evicted).

   The verifier is exact: committed-transaction count C is itself
   updated transactionally with the data, so after recovery memory must
   equal the deterministic state after exactly C transactions - no
   more, no less, nothing torn.

   Usage: crash_stress [--rounds N] [--seed S] [--txns-max T] [--dir D]
*)

open Cmdliner

let nslots = Workload.Stress_model.default_nslots

(* Deterministic (slot, value) writes of transaction [t] and their
   replay live in {!Workload.Stress_model}, shared with crash_explore
   so both drivers verify against the same ground truth. *)
let txn_updates ~seed ~t = Workload.Stress_model.txn_updates ~seed ~t ()
let model_after ~seed count = Workload.Stress_model.model_after ~seed count

let run rounds seed txns_max dir =
  (* refuses to delete anything that is not an instance layout — a
     mistyped --dir must not become rm -rf on user data *)
  (match Mnemosyne.reset_dir dir with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "crash_stress: %s\n" msg;
      exit 2);
  let mtm = { Mtm.Txn.default_config with truncation = Mtm.Txn.Async } in
  let rng = Random.State.make [| seed; 0xc0de |] in
  let total_txns = ref 0 in
  let inst = ref (Mnemosyne.open_instance ~mtm ~dir ()) in
  Printf.printf "crash_stress: %d rounds, seed %d, state in %s\n%!" rounds
    seed dir;
  for round = 1 to rounds do
    (* recover and verify *)
    let slot = Mnemosyne.pstatic !inst "stress.data" 8 in
    let cslot = Mnemosyne.pstatic !inst "stress.count" 8 in
    let data =
      Mnemosyne.atomically !inst (fun tx ->
          match Int64.to_int (Mtm.Txn.load tx slot) with
          | 0 ->
              let a = Mtm.Txn.alloc tx (nslots * 8) ~slot in
              for i = 0 to nslots - 1 do
                Mtm.Txn.store tx (a + (8 * i)) 0L
              done;
              a
          | a -> a)
    in
    let count =
      Mnemosyne.atomically !inst (fun tx ->
          Int64.to_int (Mtm.Txn.load tx cslot))
    in
    let expected = model_after ~seed count in
    let mismatches =
      Mnemosyne.atomically !inst (fun tx ->
          let bad = ref 0 in
          for i = 0 to nslots - 1 do
            if Mtm.Txn.load tx (data + (8 * i)) <> expected.(i) then incr bad
          done;
          !bad)
    in
    if mismatches > 0 then begin
      Printf.printf
        "round %d: FAILURE - %d slots disagree with the replay of %d committed transactions\n"
        round mismatches count;
      exit 1
    end;
    Printf.printf "round %3d: recovered, %5d committed txns verified OK%!"
      round count;
    (* run a random burst of transactions *)
    let burst = 1 + Random.State.int rng txns_max in
    for t = count to count + burst - 1 do
      Mnemosyne.atomically !inst (fun tx ->
          List.iter
            (fun (s, v) -> Mtm.Txn.store tx (data + (8 * s)) v)
            (txn_updates ~seed ~t);
          Mtm.Txn.store tx cslot (Int64.of_int (t + 1)))
    done;
    total_txns := !total_txns + burst;
    Printf.printf "; ran %4d more; crashing...\n%!" burst;
    (* adversarial crash + reboot *)
    inst := Mnemosyne.reincarnate !inst
  done;
  (* final verification *)
  let cslot = Mnemosyne.pstatic !inst "stress.count" 8 in
  let final =
    Mnemosyne.atomically !inst (fun tx -> Int64.to_int (Mtm.Txn.load tx cslot))
  in
  Printf.printf
    "\nall %d rounds passed; %d transactions survived %d crashes intact.\n"
    rounds final rounds;
  0

let rounds =
  Arg.(value & opt int 20 & info [ "rounds" ] ~doc:"Crash/recover rounds.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed.")

let txns_max =
  Arg.(
    value & opt int 200
    & info [ "txns-max" ] ~doc:"Max transactions per round.")

let dir =
  Arg.(
    value
    & opt string
        (Filename.concat (Filename.get_temp_dir_name ()) "mnemosyne-stress")
    & info [ "dir" ] ~doc:"Instance directory.")

let cmd =
  Cmd.v
    (Cmd.info "crash_stress"
       ~doc:"Mnemosyne crash stress test (paper section 6.2)")
    Term.(const run $ rounds $ seed $ txns_max $ dir)

let () = exit (Cmd.eval' cmd)
