(* crash_explore: deterministic crash-point exploration.

   The paper's reliability claim (section 6.2) is that memory survives a
   crash at *any* point.  crash_stress samples that space with crashes
   at round boundaries; this driver enumerates it: every crash-relevant
   persistence operation (write-through post, WC drain, cache-line
   write-back, fence) carries a monotonically increasing op index from
   {!Scm.Crashpoint}, and the explorer

     1. runs the workload once, disarmed, to count N persistence ops;
     2. re-runs it once per selected op index k, arming the crash point
        so the k-th operation raises instead of executing;
     3. applies the adversarial crash policy to the surviving volatile
        state, re-runs recovery, and checks the section-6.2 invariant:
        memory equals the deterministic replay of exactly the
        committed-transaction count;
     4. optionally (--second) crashes the *recovery* itself at sampled
        op indices and recovers again, proving double-recovery
        soundness (torn erase loops, half-replayed redo logs).

   Every run is a pure function of (seed, op index): a failure is
   replayed bit-for-bit with --at (and --second-at), and the failing
   run's Chrome trace is dumped so the commit phase that broke is
   visible in chrome://tracing.

   Usage:
     crash_explore [--txns T] [--seed S] [--dir D]
                   [--from A] [--to B] [--stride N] [--max-points M]
                   [--at K [--second-at J]] [--second N] [--fresh]
                   [--count-only] [--verbose]
*)

open Cmdliner
module Cp = Scm.Crashpoint

let nslots = Workload.Stress_model.default_nslots

(* ------------------------------------------------------------------ *)
(* Directory plumbing                                                  *)

let ensure_dir d = if not (Sys.file_exists d) then Sys.mkdir d 0o755

let copy_file src dst =
  In_channel.with_open_bin src (fun ic ->
      Out_channel.with_open_bin dst (fun oc ->
          let buf = Bytes.create 65536 in
          let rec go () =
            let n = In_channel.input ic buf 0 65536 in
            if n > 0 then begin
              Out_channel.output oc buf 0 n;
              go ()
            end
          in
          go ()))

let rec copy_dir src dst =
  ensure_dir dst;
  Array.iter
    (fun e ->
      let s = Filename.concat src e and d = Filename.concat dst e in
      if Sys.is_directory s then copy_dir s d else copy_file s d)
    (Sys.readdir src)

let reset_or_die dir =
  match Mnemosyne.reset_dir dir with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "crash_explore: %s\n" msg;
      exit 2

(* ------------------------------------------------------------------ *)
(* The deterministic workload (shared model with crash_stress)         *)

let ensure_data inst =
  let slot = Mnemosyne.pstatic inst "stress.data" 8 in
  Mnemosyne.atomically inst (fun tx ->
      match Int64.to_int (Mtm.Txn.load tx slot) with
      | 0 ->
          let a = Mtm.Txn.alloc tx (nslots * 8) ~slot in
          for i = 0 to nslots - 1 do
            Mtm.Txn.store tx (a + (8 * i)) 0L
          done;
          a
      | a -> a)

let run_updates inst ~seed ~txns =
  let data = ensure_data inst in
  let cslot = Mnemosyne.pstatic inst "stress.count" 8 in
  let count =
    Mnemosyne.atomically inst (fun tx -> Int64.to_int (Mtm.Txn.load tx cslot))
  in
  for t = count to count + txns - 1 do
    Mnemosyne.atomically inst (fun tx ->
        List.iter
          (fun (s, v) -> Mtm.Txn.store tx (data + (8 * s)) v)
          (Workload.Stress_model.txn_updates ~seed ~t ());
        Mtm.Txn.store tx cslot (Int64.of_int (t + 1)))
  done

(* The serving-mode workload (--serving): each committed update is
   preceded by two rejected requests — one shed by the admission policy
   before any transaction exists, one admitted but cancelled mid-flight
   after staging mangled stores to the very slots the committed stream
   owns.  The crash sweep then covers every persistence op across those
   rejections, and [verify]'s replay-of-committed-count invariant is
   exactly the claim under test: a shed or cancelled request leaves
   zero persistent side effects, at every crash point. *)
let run_serving_updates inst ~seed ~txns =
  let data = ensure_data inst in
  let cslot = Mnemosyne.pstatic inst "stress.count" 8 in
  let count =
    Mnemosyne.atomically inst (fun tx -> Int64.to_int (Mtm.Txn.load tx cslot))
  in
  let adm =
    Serve.Admission.make
      { Serve.Admission.queue_cap = 4; log_high_pct = 95; boost_pct = 0 }
  in
  for t = count to count + txns - 1 do
    (* a request the queue cap rejects: never starts a transaction *)
    (match Serve.Admission.admit_enqueue adm ~queue_len:(5 + (t mod 3)) with
    | Error _ -> ()
    | Ok () -> failwith "crash_explore: forced queue rejection admitted");
    (* an admitted request rejected mid-flight: its staged stores must
       all be retracted, or the replay check below catches the leak *)
    (match
       Mnemosyne.atomically inst (fun tx ->
           List.iter
             (fun (s, v) ->
               Mtm.Txn.store tx (data + (8 * s)) (Int64.lognot v))
             (Workload.Stress_model.txn_updates ~seed:(seed + 7919) ~t ());
           Mtm.Txn.cancel tx)
     with
    | () -> ()
    | exception Mtm.Txn.Cancelled -> ());
    Mnemosyne.atomically inst (fun tx ->
        List.iter
          (fun (s, v) -> Mtm.Txn.store tx (data + (8 * s)) v)
          (Workload.Stress_model.txn_updates ~seed ~t ());
        Mtm.Txn.store tx cslot (Int64.of_int (t + 1)))
  done

(* The section-6.2 invariant: memory must equal the deterministic
   replay of exactly the committed-transaction count. *)
let verify inst ~seed =
  let slot = Mnemosyne.pstatic inst "stress.data" 8 in
  let cslot = Mnemosyne.pstatic inst "stress.count" 8 in
  let data =
    Mnemosyne.atomically inst (fun tx -> Int64.to_int (Mtm.Txn.load tx slot))
  in
  let count =
    Mnemosyne.atomically inst (fun tx -> Int64.to_int (Mtm.Txn.load tx cslot))
  in
  if data = 0 then
    if count = 0 then Ok 0
    else
      Error
        (Printf.sprintf "count=%d but the data array was never allocated"
           count)
  else begin
    let expected = Workload.Stress_model.model_after ~seed count in
    let bad =
      Mnemosyne.atomically inst (fun tx ->
          let bad = ref 0 in
          for i = 0 to nslots - 1 do
            if Mtm.Txn.load tx (data + (8 * i)) <> expected.(i) then incr bad
          done;
          !bad)
    in
    if bad = 0 then Ok count
    else
      Error
        (Printf.sprintf
           "%d/%d slots disagree with the replay of %d committed \
            transactions"
           bad nslots count)
  end

(* ------------------------------------------------------------------ *)
(* One phase = open (full recovery) + optionally the workload          *)

type cfg = {
  seed : int;
  txns : int;
  base : string;
  geometry : Mnemosyne.geometry;
  mtm : Mtm.Txn.config;
  fresh : bool;
  verbose : bool;
  fsck : bool;  (* pmfsck every post-recovery image *)
  pmcheck : bool;  (* durability sanitizer under every phase *)
  serving : bool;  (* serving workload: admission-shed + cancelled txns *)
}

let setup_dir cfg = Filename.concat cfg.base "setup"
let run_dir cfg = Filename.concat cfg.base "run"
let crashed_dir cfg = Filename.concat cfg.base "crashed"

type phase_outcome =
  | Done of Mnemosyne.t * int * int  (* instance, open ops, total ops *)
  | Crashed of int * Cp.kind  (* device already holds post-inject state *)

(* Run recovery (and the update workload unless [updates] is false)
   over [dev], with the crash point armed at [crash_at].  On a
   simulated crash the adversarial policy is applied immediately, so
   the returned device state is what a power loss would leave. *)
let run_phase cfg ~dev ~dir ~seed ~crash_at ~updates =
  let obs = Obs.create ~tracing:true () in
  let cp = Cp.create () in
  (match crash_at with Some k -> Cp.arm cp ~at:k | None -> ());
  let machine = Scm.Env.machine_of_device ~seed ~obs ~crash_point:cp dev in
  (* Install the sanitizer before recovery touches anything, so the
     recovery path itself is checked too.  The handle outlives the
     crash-time detach, so violations found before a crash are still
     reported. *)
  let chk =
    if cfg.pmcheck then Some (Scm.Env.install_pmcheck machine) else None
  in
  match
    let inst =
      Mnemosyne.open_instance ~geometry:cfg.geometry ~mtm:cfg.mtm ~seed
        ~machine ~dir ()
    in
    let open_ops = Cp.count cp in
    (if updates then
       if cfg.serving then run_serving_updates inst ~seed:cfg.seed ~txns:cfg.txns
       else run_updates inst ~seed:cfg.seed ~txns:cfg.txns);
    (inst, open_ops)
  with
  | inst, open_ops -> (machine, obs, chk, Done (inst, open_ops, Cp.count cp))
  | exception Cp.Simulated_crash { op; kind } ->
      Obs.instant obs (Obs.Trace.Phase "simulated-crash") ~arg:op;
      Scm.Crash.inject machine;
      (machine, obs, chk, Crashed (op, kind))

(* The sanitizer's verdict for one phase: None when it was off or
   silent. *)
let sanitizer_msg chk =
  match chk with
  | None -> None
  | Some chk ->
      let total = Scm.Pmcheck.total_violations chk in
      if total = 0 then None
      else
        let shown =
          List.filteri (fun i _ -> i < 5) (Scm.Pmcheck.violations chk)
        in
        Some
          (Printf.sprintf "pmcheck: %d violation(s): %s" total
             (String.concat "; " (List.map Scm.Pmcheck.render shown)))

(* The full per-phase verdict: workload invariant, then the sanitizer,
   then (when enabled) a pmfsck pass over the recovered image. *)
let verify_phase cfg inst ~chk =
  match verify inst ~seed:cfg.seed with
  | Error _ as e -> e
  | Ok c -> (
      match sanitizer_msg chk with
      | Some msg -> Error msg
      | None ->
          if not cfg.fsck then Ok c
          else
            let report = Check.Pmfsck.run (Mnemosyne.view inst) in
            if Check.Pmfsck.ok report then Ok c
            else
              Error
                (Printf.sprintf "pmfsck: %s"
                   (String.trim (Check.Pmfsck.render report))))

let dump_trace cfg ~obs ~name =
  match obs.Obs.trace with
  | None -> None
  | Some tr ->
      let path = Filename.concat cfg.base name in
      Obs.Trace.save_chrome tr path;
      Some path

(* The always-on flight recorder: available for every failure, traced
   run or not — the ring holds the last events leading up to it. *)
let dump_flight cfg ~obs ~name =
  let path = Filename.concat cfg.base name in
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Obs.flight_dump obs));
  path

(* ------------------------------------------------------------------ *)
(* Setup: a cleanly closed instance whose recovery + workload is the
   explored run.  --fresh skips this and explores instance creation
   itself.                                                             *)

let build_setup cfg =
  reset_or_die (setup_dir cfg);
  let obs = Obs.create () in
  let machine =
    Mnemosyne.prepare_machine ~geometry:cfg.geometry ~seed:cfg.seed ~obs
      ~dir:(setup_dir cfg) ()
  in
  let inst =
    Mnemosyne.open_instance ~geometry:cfg.geometry ~mtm:cfg.mtm ~seed:cfg.seed
      ~machine ~dir:(setup_dir cfg) ()
  in
  ignore (ensure_data inst);
  Mnemosyne.close inst;
  machine.Scm.Env.dev

(* One working device serves every crash point: its undo journal is
   enabled once at the post-setup state and rolled back to [mark0]
   between points, so per-point restore costs O(words that run touched)
   instead of re-copying the whole arena.

   The run directory gets the same treatment on the file side: most
   points never touch their backing files (no eviction pressure, and a
   crashed run never reaches the clean-shutdown sync), so the directory
   is re-seeded from the setup copy only when {!Region.Backing_store}'s
   mutation counter shows the previous run actually wrote to it.
   [run_dir_gen] is the counter value as of the last re-seed, or -1
   when the directory's contents are unknown (startup, or after a
   second-level mode copied a crashed snapshot over it). *)
let run_dir_gen = ref (-1)
let taint_run_dir () = run_dir_gen := -1

let fresh_point_state cfg ~work ~mark0 =
  if !run_dir_gen <> Region.Backing_store.global_mutations () then begin
    reset_or_die (run_dir cfg);
    ensure_dir (run_dir cfg);
    if not cfg.fresh then
      copy_dir
        (Filename.concat (setup_dir cfg) "backing")
        (Filename.concat (run_dir cfg) "backing");
    run_dir_gen := Region.Backing_store.global_mutations ()
  end;
  Scm.Scm_device.journal_undo_to work mark0;
  work

(* ------------------------------------------------------------------ *)
(* Exploring one crash point                                           *)

type failure = { op : int; second : int option; msg : string }

let replay_hint cfg f =
  Printf.sprintf "crash_explore --seed %d --txns %d%s%s --at %d%s --dir %s"
    cfg.seed cfg.txns
    (if cfg.fresh then " --fresh" else "")
    (if cfg.serving then " --serving" else "")
    f.op
    (match f.second with Some j -> Printf.sprintf " --second-at %d" j | None -> "")
    (Filename.quote cfg.base)

let report_failure cfg ~obs f =
  let tag =
    Printf.sprintf "crash-seed%d-op%d%s" cfg.seed f.op
      (match f.second with Some j -> Printf.sprintf "-r%d" j | None -> "")
  in
  let trace = dump_trace cfg ~obs ~name:(tag ^ ".trace.json") in
  let flight = dump_flight cfg ~obs ~name:(tag ^ ".flight.txt") in
  Printf.printf "FAIL op %d%s: %s\n" f.op
    (match f.second with
    | Some j -> Printf.sprintf " (second-level crash at recovery op %d)" j
    | None -> "")
    f.msg;
  Printf.printf "     replay: %s\n" (replay_hint cfg f);
  (match trace with
  | Some p -> Printf.printf "     trace up to the crash: %s\n" p
  | None -> ());
  Printf.printf "     flight recorder: %s\n" flight;
  print_string "%!"

type second_mode = No_second | Sample of int | Second_at of int

(* Recover the post-crash device (optionally crashing again at
   phase-op [crash_at]) and verify the invariant; returns the committed
   count plus the phase's total op count.  When [updates] is set, the
   phase resumes the workload after recovery, so second-level crash
   points also cover appends made on top of a recovered log — the
   window where an unsound stale-suffix erase would plant a
   mis-parsable word for the *next* recovery scan. *)
let recover_and_verify cfg ~dev ~crash_at ~updates ~primary_op =
  let second = crash_at in
  match
    run_phase cfg ~dev ~dir:(run_dir cfg) ~seed:(cfg.seed + 1)
      ~crash_at ~updates
  with
  | _, obs, chk1, Crashed (op2, _) -> (
      match sanitizer_msg chk1 with
      | Some msg ->
          (* violations before the second crash are real violations *)
          report_failure cfg ~obs { op = primary_op; second = Some op2; msg };
          Error { op = primary_op; second = Some op2; msg }
      | None -> (
          (* crashed again: recover a second time, disarmed *)
          match
            run_phase cfg ~dev ~dir:(run_dir cfg) ~seed:(cfg.seed + 2)
              ~crash_at:None ~updates:false
          with
          | _, obs2, chk2, Done (inst, _, _) -> (
              match verify_phase cfg inst ~chk:chk2 with
              | Ok c -> Ok (c, 0)
              | Error msg ->
                  report_failure cfg ~obs:obs2
                    { op = primary_op; second = Some op2; msg };
                  Error { op = primary_op; second = Some op2; msg })
          | _, _, _, Crashed _ ->
              let msg = "disarmed recovery raised Simulated_crash" in
              report_failure cfg ~obs { op = primary_op; second; msg };
              Error { op = primary_op; second; msg }))
  | _, obs, chk, Done (inst, _, total) -> (
      match verify_phase cfg inst ~chk with
      | Ok c -> Ok (c, total)
      | Error msg ->
          let f = { op = primary_op; second; msg } in
          report_failure cfg ~obs f;
          Error f)

let sample_indices ~upto ~n =
  if upto <= 0 || n <= 0 then []
  else if n >= upto then List.init upto (fun i -> i + 1)
  else
    List.sort_uniq compare
      (List.init n (fun i -> max 1 ((i + 1) * upto / n)))

let explore_point cfg ~work ~mark0 ~k ~second =
  let dev = fresh_point_state cfg ~work ~mark0 in
  let machine, obs1, chk1, outcome =
    run_phase cfg ~dev ~dir:(run_dir cfg) ~seed:cfg.seed ~crash_at:(Some k)
      ~updates:true
  in
  ignore machine;
  match outcome with
  | Done (inst, _, total) -> (
      (* k lies beyond the end of the run; nothing crashed.  Verify the
         completed state anyway so --at with a large index is useful. *)
      match verify_phase cfg inst ~chk:chk1 with
      | Ok c ->
          if cfg.verbose then
            Printf.printf "op %d: run completed (%d ops total), %d txns OK\n"
              k total c;
          []
      | Error msg ->
          let f = { op = k; second = None; msg } in
          report_failure cfg ~obs:obs1 f;
          [ f ])
  | Crashed (op, kind) -> (
      let failures = ref [] in
      (* violations accumulated before the crash are real violations *)
      (match sanitizer_msg chk1 with
      | Some msg ->
          let f = { op; second = None; msg } in
          report_failure cfg ~obs:obs1 f;
          failures := f :: !failures
      | None -> ());
      let note_fail ~obs f =
        ignore obs;
        failures := f :: !failures
      in
      let snapshot_crashed () =
        ensure_dir (crashed_dir cfg);
        reset_or_die (crashed_dir cfg);
        ensure_dir (crashed_dir cfg);
        copy_dir (run_dir cfg) (crashed_dir cfg)
      in
      (match second with
      | No_second -> (
          match
            recover_and_verify cfg ~dev ~crash_at:None ~updates:false
              ~primary_op:op
          with
          | Ok (c, _) ->
              if cfg.verbose then
                Printf.printf "op %d (%s): recovered, %d committed txns OK\n"
                  op (Cp.kind_name kind) c
          | Error f -> note_fail ~obs:obs1 f)
      | Second_at j -> (
          (* snapshot the post-crash state, then crash the recovery (or
             the resumed workload) at op j *)
          snapshot_crashed ();
          match
            recover_and_verify cfg ~dev ~crash_at:(Some j) ~updates:true
              ~primary_op:op
          with
          | Ok (c, _) ->
              if cfg.verbose then
                Printf.printf
                  "op %d + recovery op %d: double recovery, %d txns OK\n" op j
                  c
          | Error f -> note_fail ~obs:obs1 f)
      | Sample n -> (
          (* first a straight recovery + resumed run, counting its ops;
             a nested journal mark captures the post-crash state so each
             second-level attempt rolls back to it *)
          let mark_crash = Scm.Scm_device.journal_mark dev in
          snapshot_crashed ();
          match
            recover_and_verify cfg ~dev ~crash_at:None ~updates:true
              ~primary_op:op
          with
          | Error f -> note_fail ~obs:obs1 f
          | Ok (c, recovery_ops) ->
              if cfg.verbose then
                Printf.printf
                  "op %d (%s): recovered (%d recovery ops), %d txns OK\n" op
                  (Cp.kind_name kind) recovery_ops c;
              List.iter
                (fun j ->
                  (* restore the post-crash state for each attempt *)
                  reset_or_die (run_dir cfg);
                  ensure_dir (run_dir cfg);
                  copy_dir (crashed_dir cfg) (run_dir cfg);
                  taint_run_dir ();
                  Scm.Scm_device.journal_undo_to dev mark_crash;
                  match
                    recover_and_verify cfg ~dev ~crash_at:(Some j)
                      ~updates:true ~primary_op:op
                  with
                  | Ok _ -> ()
                  | Error f -> note_fail ~obs:obs1 f)
                (sample_indices ~upto:recovery_ops ~n)));
      List.rev !failures)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let count_ops cfg ~work ~mark0 =
  let dev = fresh_point_state cfg ~work ~mark0 in
  match
    run_phase cfg ~dev ~dir:(run_dir cfg) ~seed:cfg.seed ~crash_at:None
      ~updates:true
  with
  | _, _, chk, Done (inst, open_ops, total) -> (
      match verify_phase cfg inst ~chk with
      | Ok c when c = cfg.txns -> (open_ops, total)
      | Ok c ->
          Printf.eprintf
            "crash_explore: crash-free run committed %d txns, expected %d\n" c
            cfg.txns;
          exit 2
      | Error msg ->
          Printf.eprintf
            "crash_explore: crash-free run fails verification: %s\n" msg;
          exit 2)
  | _, _, _, Crashed _ ->
      Printf.eprintf "crash_explore: disarmed counting run crashed\n";
      exit 2

let select_points ~total ~from_ ~to_ ~stride ~max_points =
  let lo = max 1 from_ in
  let hi = match to_ with Some t -> min t total | None -> total in
  if hi < lo then []
  else begin
    let stride = max 1 stride in
    let span = ((hi - lo) / stride) + 1 in
    let stride =
      if max_points > 0 && span > max_points then
        ((hi - lo) / max_points) + 1
      else stride
    in
    let rec go acc k = if k > hi then List.rev acc else go (k :: acc) (k + stride) in
    go [] lo
  end

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Machine-readable sweep outcome, for CI artifacts. *)
let write_report cfg ~path ~points ~failures =
  Out_channel.with_open_text path (fun oc ->
      Printf.fprintf oc
        "{\"seed\":%d,\"txns\":%d,\"fsck\":%b,\"pmcheck\":%b,\"points\":%d,\
         \"failures\":["
        cfg.seed cfg.txns cfg.fsck cfg.pmcheck points;
      List.iteri
        (fun i f ->
          if i > 0 then output_char oc ',';
          Printf.fprintf oc "{\"op\":%d,%s\"msg\":\"%s\"}" f.op
            (match f.second with
            | Some j -> Printf.sprintf "\"second\":%d," j
            | None -> "")
            (json_escape f.msg))
        failures;
      output_string oc "]}\n")

let run txns seed dir from_ to_ stride max_points at second_at second fresh
    serving count_only verbose fsck pmcheck report =
  let geometry =
    { Mnemosyne.scm_frames = 2048; heap_superblocks = 64;
      heap_large_bytes = 256 * 1024 }
  in
  (* Serving mode runs under eager undo: with lazy redo a rejected
     transaction dies before its only log append, so rejections would
     add zero persistence ops and the sweep could never crash inside
     one.  Eager undo gives every staged store a persistent footprint
     (the in-place write and its undo record) that the cancel must
     retract — the non-trivial half of the zero-side-effect claim. *)
  let mtm =
    {
      Mtm.Txn.default_config with
      nthreads = 1;
      log_cap_words = 8192;
      version_mgmt =
        (if serving then Mtm.Txn.Eager_undo else Mtm.Txn.Lazy_redo);
    }
  in
  let cfg =
    {
      seed;
      txns;
      base = dir;
      geometry;
      mtm;
      fresh;
      verbose;
      fsck;
      pmcheck;
      serving;
    }
  in
  ensure_dir cfg.base;
  let work =
    if fresh then Scm.Scm_device.create ~nframes:geometry.scm_frames ()
    else build_setup cfg
  in
  Scm.Scm_device.journal_start work;
  let mark0 = Scm.Scm_device.journal_mark work in
  let open_ops, total = count_ops cfg ~work ~mark0 in
  Printf.printf
    "crash_explore: seed %d, %d txns: %d persistence ops (%d during \
     open/recovery, %d in the workload)\n\
     %!"
    seed txns total open_ops (total - open_ops);
  if count_only then 0
  else begin
    let points =
      match at with
      | Some k -> [ k ]
      | None -> select_points ~total ~from_ ~to_ ~stride ~max_points
    in
    let second_mode =
      match (at, second_at) with
      | Some _, Some j -> Second_at j
      | None, Some _ ->
          Printf.eprintf "crash_explore: --second-at requires --at\n";
          exit 2
      | _, None -> if second > 0 then Sample second else No_second
    in
    Printf.printf "exploring %d crash points%s...\n%!" (List.length points)
      (match second_mode with
      | Sample n -> Printf.sprintf " (+%d second-level each)" n
      | Second_at j -> Printf.sprintf " (second-level at recovery op %d)" j
      | No_second -> "");
    let failures = ref [] in
    let explored = ref 0 in
    List.iter
      (fun k ->
        let fs = explore_point cfg ~work ~mark0 ~k ~second:second_mode in
        failures := !failures @ fs;
        incr explored;
        if (not verbose) && !explored mod 100 = 0 then
          Printf.printf "  ... %d/%d points, %d failure(s)\n%!" !explored
            (List.length points) (List.length !failures))
      points;
    (match report with
    | Some path ->
        write_report cfg ~path ~points:!explored ~failures:!failures
    | None -> ());
    if !failures = [] then begin
      Printf.printf
        "all %d crash points recovered to a state consistent with their \
         committed-transaction count.\n"
        !explored;
      0
    end
    else begin
      Printf.printf "%d of %d crash points FAILED:\n" (List.length !failures)
        !explored;
      List.iter
        (fun f -> Printf.printf "  %s\n" (replay_hint cfg f))
        !failures;
      1
    end
  end

let txns =
  Arg.(
    value & opt int 5
    & info [ "txns" ] ~doc:"Update transactions in the explored workload.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed.")

let dir =
  Arg.(
    value
    & opt string
        (Filename.concat (Filename.get_temp_dir_name ()) "mnemosyne-explore")
    & info [ "dir" ] ~doc:"Scratch directory for instance state.")

let from_ =
  Arg.(value & opt int 1 & info [ "from" ] ~doc:"First op index to explore.")

let to_ =
  Arg.(
    value
    & opt (some int) None
    & info [ "to" ] ~doc:"Last op index to explore (default: all).")

let stride =
  Arg.(value & opt int 1 & info [ "stride" ] ~doc:"Explore every N-th op.")

let max_points =
  Arg.(
    value & opt int 0
    & info [ "max-points" ]
        ~doc:"Cap on explored points; widens the stride when exceeded.")

let at =
  Arg.(
    value
    & opt (some int) None
    & info [ "at" ] ~doc:"Explore (replay) a single op index.")

let second_at =
  Arg.(
    value
    & opt (some int) None
    & info [ "second-at" ]
        ~doc:"With --at: also crash the recovery at this recovery-op index.")

let second =
  Arg.(
    value & opt int 0
    & info [ "second" ]
        ~doc:
          "Per primary crash point, also crash the recovery at N sampled \
           recovery-op indices and recover again (double-recovery check).")

let fresh =
  Arg.(
    value & flag
    & info [ "fresh" ]
        ~doc:
          "Explore from an empty directory: instance creation (region \
           table, logs, heap) is part of the crash surface.  Much larger \
           op counts; combine with --stride/--max-points.")

let serving =
  Arg.(
    value & flag
    & info [ "serving" ]
        ~doc:
          "Explore a serving workload with forced rejections: each \
           committed update is preceded by a request shed by the \
           admission policy and by an admitted transaction cancelled \
           mid-flight.  The invariant then proves rejected requests \
           leave zero persistent side effects at every crash point.")

let count_only =
  Arg.(
    value & flag
    & info [ "count-only" ] ~doc:"Print the persistence-op count and exit.")

let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Per-point log.")

let fsck =
  Arg.(
    value & flag
    & info [ "fsck" ]
        ~doc:
          "Run the offline image analyzer (pmfsck) over every recovered \
           image; any finding fails the point.")

let pmcheck =
  Arg.(
    value & flag
    & info [ "pmcheck" ]
        ~doc:
          "Run every phase under the durability sanitizer; any violation \
           fails the point.")

let report =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"FILE"
        ~doc:"Write a JSON report of the sweep (points, failures) to FILE.")

let cmd =
  Cmd.v
    (Cmd.info "crash_explore"
       ~doc:
         "Crash at every persistence boundary, recover, verify (paper \
          section 6.2, exhaustively)")
    Term.(
      const run $ txns $ seed $ dir $ from_ $ to_ $ stride $ max_points $ at
      $ second_at $ second $ fresh $ serving $ count_only $ verbose $ fsck
      $ pmcheck $ report)

let () = exit (Cmd.eval' cmd)
