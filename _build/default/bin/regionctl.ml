(* regionctl: inspect a Mnemosyne instance directory.

   Shows what the recovery path sees: the region manager's boot
   statistics, every persistent region with its backing file, the
   pstatic directory, heap occupancy and per-thread transaction logs.

   Usage: regionctl DIR
*)

open Cmdliner

let run dir level =
  if not (Sys.file_exists dir) then begin
    Printf.eprintf "regionctl: no instance at %s\n" dir;
    1
  end
  else begin
    let inst = Mnemosyne.open_instance ~dir () in
    let stats = Mnemosyne.reincarnation_stats inst in
    let pmem = Mnemosyne.pmem inst in
    let mgr = Region.Pmem.manager pmem in
    let v = Mnemosyne.view inst in
    Printf.printf "Mnemosyne instance: %s\n\n" dir;

    let boot = Region.Manager.boot_stats mgr in
    Printf.printf "boot:   %d frames scanned, %d mappings rebuilt (%.1f ms)\n"
      boot.frames_scanned boot.mappings_rebuilt
      (float_of_int boot.boot_ns /. 1e6);
    Printf.printf
      "        %d frames free, %d resident; %d swap-ins, %d swap-outs\n"
      (Region.Manager.free_frames mgr)
      (Region.Manager.resident_frames mgr)
      (Region.Manager.swaps_in mgr) (Region.Manager.swaps_out mgr);
    Printf.printf
      "start:  remap %.2f ms, heap scavenge %.2f ms, %d txn(s) replayed\n\n"
      (float_of_int stats.remap_ns /. 1e6)
      (float_of_int stats.heap_scavenge_ns /. 1e6)
      stats.txns_replayed;

    Printf.printf "regions (excluding the static region):\n";
    let regions = Region.Pmem.regions pmem in
    if regions = [] then Printf.printf "  (none)\n"
    else
      List.iter
        (fun (addr, len) ->
          Printf.printf "  %#014x  %8d bytes  (%d pages)\n" addr len
            (Region.Layout.pages_for len))
        regions;

    Printf.printf "\npstatic variables:\n";
    let count = ref 0 in
    Region.Pstatic.iter v (fun name ~addr ~len ->
        incr count;
        let value = Region.Pmem.load v addr in
        Printf.printf "  %-24s %#014x  %4d bytes  first word %#Lx\n" name
          addr len value);
    if !count = 0 then Printf.printf "  (none)\n";

    Printf.printf "\nSCM device: %d frames, %d total media writes\n"
      (Scm.Scm_device.nframes (Mnemosyne.machine inst).dev)
      (Scm.Scm_device.total_writes (Mnemosyne.machine inst).dev);
    let dev = (Mnemosyne.machine inst).dev in
    let hottest = ref (0, 0) in
    for f = 0 to Scm.Scm_device.nframes dev - 1 do
      let w = Scm.Scm_device.write_count dev f in
      if w > snd !hottest then hottest := (f, w)
    done;
    let hot_frame, hot_writes = !hottest in
    Printf.printf
      "wear:   hottest frame %d with %d writes%s\n"
      hot_frame hot_writes
      (if level then "" else " (run with --level to remap hot frames)");
    if level then begin
      let moved = Region.Pmem.wear_level v ~threshold:1.5 in
      Printf.printf "wear:   leveling pass migrated %d page(s)\n" moved
    end;
    Mnemosyne.close inst;
    0
  end

let dir =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"Instance directory.")

let level =
  Arg.(
    value & flag
    & info [ "level" ]
        ~doc:"Run a wear-leveling pass over hot frames before closing.")

let cmd =
  Cmd.v
    (Cmd.info "regionctl" ~doc:"Inspect a Mnemosyne instance")
    Term.(const run $ dir $ level)

let () = exit (Cmd.eval' cmd)
