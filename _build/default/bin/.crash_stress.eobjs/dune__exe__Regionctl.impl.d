bin/regionctl.ml: Arg Cmd Cmdliner List Mnemosyne Printf Region Scm Sys Term
