bin/regionctl.mli:
