bin/crash_stress.ml: Arg Array Cmd Cmdliner Filename Int64 List Mnemosyne Mtm Printf Random Sys Term
