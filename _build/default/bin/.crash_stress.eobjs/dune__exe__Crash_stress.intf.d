bin/crash_stress.mli:
