(* Quickstart: the paper's programming model in one file.

   A tiny "application" that keeps three kinds of persistent state:
   - a pstatic counter of how many times it has run,
   - a persistent list of notes (figure 3's allocate-fill-link idiom),
   - a raw word log of timestamps (append-only updates, section 3.2.1).

   Run it repeatedly and watch state accumulate across "reboots":

     dune exec examples/quickstart.exe             # run + crash + recover
     dune exec examples/quickstart.exe -- /tmp/qs  # persistent directory
*)

let () =
  let dir =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else Filename.concat (Filename.get_temp_dir_name ()) "mnemosyne-quickstart"
  in
  Printf.printf "Mnemosyne quickstart (state in %s)\n\n" dir;

  (* Opening an instance boots or recovers the whole stack: region
     manager, heap, transaction logs. *)
  let inst = Mnemosyne.open_instance ~dir () in

  (* 1. pstatic: a named persistent global, zero on the very first run.
     Single-variable updates need no transaction - one atomic word
     write-through plus a fence. *)
  let runs_slot = Mnemosyne.pstatic inst "quickstart.runs" 8 in
  let v = Mnemosyne.view inst in
  let runs = Int64.add (Region.Pmem.load v runs_slot) 1L in
  Region.Pmem.wtstore v runs_slot runs;
  Region.Pmem.fence v;
  Printf.printf "This program has now run %Ld time(s).\n" runs;

  (* 2. A persistent linked list of notes, updated in durable memory
     transactions.  The node allocation, its contents and the link all
     commit atomically - crash anywhere and the list is never torn. *)
  let list_slot = Mnemosyne.pstatic inst "quickstart.notes" 8 in
  let notes =
    Mnemosyne.atomically inst (fun tx ->
        match Int64.to_int (Mtm.Txn.load tx list_slot) with
        | 0 -> Pstruct.Plist.create tx ~slot:list_slot
        | root -> Pstruct.Plist.attach tx ~root)
  in
  Mnemosyne.atomically inst (fun tx ->
      Pstruct.Plist.push tx notes
        (Bytes.of_string (Printf.sprintf "note from run %Ld" runs)));
  Mnemosyne.atomically inst (fun tx ->
      Printf.printf "Notes so far (%d, newest first):\n"
        (Pstruct.Plist.length tx notes);
      Pstruct.Plist.iter tx notes (fun b ->
          Printf.printf "  - %s\n" (Bytes.to_string b)));

  (* 3. A raw word log: the append-update consistency mechanism.  Each
     run appends one record; recovery discards torn appends without
     commit records or checksums (the tornbit). *)
  let log = Mnemosyne.Log.create inst ~name:"quickstart.events" ~cap_words:512 in
  Printf.printf "Event log carried %d record(s) from previous runs.\n"
    (List.length (Mnemosyne.Log.recovered log));
  Mnemosyne.Log.append log [| runs; Int64.of_int 0xbeef |];
  Mnemosyne.Log.flush log;

  (* Crash on purpose: power fails, caches and write-combining buffers
     are lost with adversarial policies, and the machine reboots from
     the surviving SCM image.  Everything committed above must be
     there. *)
  Printf.printf "\nSimulating power failure and reboot...\n";
  let inst = Mnemosyne.reincarnate inst in
  let v = Mnemosyne.view inst in
  let runs_slot = Mnemosyne.pstatic inst "quickstart.runs" 8 in
  Printf.printf "After recovery: run counter = %Ld\n"
    (Region.Pmem.load v runs_slot);
  let list_slot = Mnemosyne.pstatic inst "quickstart.notes" 8 in
  let count =
    Mnemosyne.atomically inst (fun tx ->
        let notes =
          Pstruct.Plist.attach tx
            ~root:(Int64.to_int (Mtm.Txn.load tx list_slot))
        in
        Pstruct.Plist.length tx notes)
  in
  Printf.printf "After recovery: %d note(s) intact\n" count;
  let stats = Mnemosyne.reincarnation_stats inst in
  Printf.printf
    "Reincarnation cost (simulated): boot %.1f ms, remap %.2f ms, heap scavenge %.2f ms\n"
    (float_of_int stats.boot_ns /. 1e6)
    (float_of_int stats.remap_ns /. 1e6)
    (float_of_int stats.heap_scavenge_ns /. 1e6);
  Mnemosyne.close inst;
  Printf.printf "\nState saved; run me again.\n"
