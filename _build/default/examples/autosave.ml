(* autosave: the table-5 scenario as an application.

   "Productivity applications including word processors use this
   approach for periodic fast saves" - serialize the whole document and
   write it out.  With persistent memory the document's structure itself
   is durable: here a shadow-updated tree of paragraphs absorbs every
   edit with two fences and an atomic root swing, and we compare the
   simulated cost of an editing session against serialize-on-every-edit.

   Usage: dune exec examples/autosave.exe
*)

let () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "mnemosyne-autosave"
  in
  let rec rm_rf p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
        Sys.rmdir p
      end
      else Sys.remove p
  in
  rm_rf dir;
  Printf.printf "autosave: every edit durable vs serialize-per-edit\n\n";

  let inst = Mnemosyne.open_instance ~dir () in
  let v = Mnemosyne.view inst in
  let paragraph_bytes = 120 in
  let capacity = 4096 in
  let region =
    Mnemosyne.pmap inst
      (Pstruct.Shadow_tree.region_bytes_for ~payload_bytes:paragraph_bytes
         ~capacity)
  in
  let doc =
    Pstruct.Shadow_tree.create v ~base:region ~payload_bytes:paragraph_bytes
      ~capacity
  in
  let kg = Workload.Keygen.create () in
  let env = v.Region.Pmem.env in

  (* an editing session: 1000 paragraph edits over a 500-paragraph doc *)
  let edits = 1000 and paragraphs = 500 in
  let t0 = env.now () in
  for i = 0 to edits - 1 do
    Pstruct.Shadow_tree.put doc
      (Int64.of_int (Workload.Keygen.uniform_int kg paragraphs))
      (Workload.Keygen.value kg paragraph_bytes);
    ignore i
  done;
  let shadow_ns = env.now () - t0 in
  Printf.printf
    "shadow-updated document: %d edits, every one durable, %.2f ms total (%.1f us/edit)\n"
    edits
    (float_of_int shadow_ns /. 1e6)
    (float_of_int shadow_ns /. float_of_int edits /. 1e3);

  (* the fast-save alternative: serialize the whole document per edit *)
  let disk = Baseline.Pcm_disk.create ~nblocks:8192 () in
  let mirror = ref [] in
  Pstruct.Shadow_tree.iter doc (fun k p -> mirror := (k, p) :: !mirror);
  let senv = Scm.Env.standalone (Mnemosyne.machine inst) in
  let t0 = senv.now () in
  ignore (Baseline.Serializer.serialize disk senv ~start_block:0 !mirror);
  let one_save = senv.now () - t0 in
  Printf.printf
    "serialize-the-document save: %.2f ms per save -> %.1f seconds for %d edits\n"
    (float_of_int one_save /. 1e6)
    (float_of_int (one_save * edits) /. 1e9)
    edits;
  Printf.printf "durable-per-edit advantage: %.0fx\n\n"
    (float_of_int (one_save * edits) /. float_of_int shadow_ns);

  (* the crash that motivates it: pull the plug mid-edit *)
  Printf.printf "power failure mid-edit...\n";
  let before = Pstruct.Shadow_tree.length doc in
  let inst = Mnemosyne.reincarnate inst in
  let v = Mnemosyne.view inst in
  let doc, reclaimed = Pstruct.Shadow_tree.attach v ~base:region in
  Printf.printf
    "recovered: %d paragraphs (had %d), %d unreferenced node(s) swept\n"
    (Pstruct.Shadow_tree.length doc)
    before reclaimed;
  Mnemosyne.close inst;
  Printf.printf "\nNo edit was ever lost, and no fast-save pauses.\n"
