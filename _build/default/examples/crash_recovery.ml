(* crash_recovery: the paper's reliability methodology (section 6.2) as
   a demo - repeated adversarial crashes against a transactional
   workload, verifying after every reboot that committed transactions
   survived intact and uncommitted ones vanished without a trace.

   (The heavier, randomized version runs as `bin/crash_stress.exe`; this
   example walks through one cycle with commentary.)

   Usage: dune exec examples/crash_recovery.exe
*)

let () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "mnemosyne-crashdemo"
  in
  let rec rm_rf p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
        Sys.rmdir p
      end
      else Sys.remove p
  in
  rm_rf dir;

  Printf.printf "crash_recovery: durable transactions under fire\n\n";
  (* Async truncation so commits live only in the redo log until a
     daemon flushes them - the adversarial case for recovery. *)
  let mtm = { Mtm.Txn.default_config with truncation = Mtm.Txn.Async } in
  let inst = Mnemosyne.open_instance ~mtm ~dir () in
  let slot = Mnemosyne.pstatic inst "bank.accounts" 8 in
  let naccounts = 8 in
  let accounts =
    Mnemosyne.atomically inst (fun tx ->
        let a = Mtm.Txn.alloc tx (naccounts * 8) ~slot in
        for i = 0 to naccounts - 1 do
          Mtm.Txn.store tx (a + (8 * i)) 1000L
        done;
        a)
  in
  Printf.printf "created %d accounts with 1000 each (total 8000)\n" naccounts;

  (* transfers: move random amounts between accounts; each transfer is
     one transaction, so the total is invariant *)
  let rng = Random.State.make [| 99 |] in
  for _ = 1 to 50 do
    Mnemosyne.atomically inst (fun tx ->
        let from_i = Random.State.int rng naccounts in
        let to_i = Random.State.int rng naccounts in
        let amount = Int64.of_int (Random.State.int rng 100) in
        let from_a = accounts + (8 * from_i) in
        let to_a = accounts + (8 * to_i) in
        Mtm.Txn.store tx from_a (Int64.sub (Mtm.Txn.load tx from_a) amount);
        Mtm.Txn.store tx to_a (Int64.add (Mtm.Txn.load tx to_a) amount))
  done;
  Printf.printf "ran 50 transfer transactions (committed, not yet flushed)\n";

  (* one transaction that never commits: starts a transfer, then the
     machine dies mid-flight *)
  (try
     Mnemosyne.atomically inst (fun tx ->
         let a = accounts in
         Mtm.Txn.store tx a 0L;  (* would destroy money... *)
         failwith "power cable pulled")
   with Failure _ -> ());
  Printf.printf "one in-flight transaction aborted by the \"power failure\"\n\n";

  Printf.printf "crash (random subset of in-flight writes land) + reboot...\n";
  let inst = Mnemosyne.reincarnate inst in
  let stats = Mnemosyne.reincarnation_stats inst in
  Printf.printf "recovery replayed %d committed transaction(s) from the redo logs\n"
    stats.txns_replayed;
  let slot = Mnemosyne.pstatic inst "bank.accounts" 8 in
  let total =
    Mnemosyne.atomically inst (fun tx ->
        let a = Int64.to_int (Mtm.Txn.load tx slot) in
        let sum = ref 0L in
        for i = 0 to naccounts - 1 do
          sum := Int64.add !sum (Mtm.Txn.load tx (a + (8 * i)))
        done;
        !sum)
  in
  Printf.printf "sum of all accounts after recovery: %Ld (expected 8000)\n"
    total;
  if total = 8000L then
    Printf.printf "\nOK: atomicity and durability held across the crash.\n"
  else begin
    Printf.printf "\nFAILURE: money was created or destroyed!\n";
    exit 1
  end;
  Mnemosyne.close inst
