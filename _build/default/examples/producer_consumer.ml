(* producer_consumer: the sharing discipline of paper section 4.5.

   "Producer-consumer style communication, where a single process is
   responsible for creating and later deleting work items, can be
   implemented safely" — provided only one process writes to a log and
   recovery completes before shared data is touched.

   This demo alternates the two roles across process lifetimes over the
   same instance: the producer run appends work items to a raw word log
   and dies (with a crash!); the consumer run recovers, processes every
   durable item, and truncates.  Torn items from the crash are discarded
   by the RAWL scan, so the consumer never sees half a work item.

   Usage: dune exec examples/producer_consumer.exe
*)

let dir =
  Filename.concat (Filename.get_temp_dir_name ()) "mnemosyne-prodcons"

let rec rm_rf p =
  if Sys.file_exists p then
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p

(* A work item: [sequence number; payload checksum; payload words...] *)
let make_item ~seq ~words =
  let payload = Array.init words (fun i -> Int64.of_int ((seq * 31) + i)) in
  let sum = Array.fold_left Int64.add 0L payload in
  Array.append [| Int64.of_int seq; sum |] payload

let check_item item =
  let n = Array.length item - 2 in
  let sum = ref 0L in
  for i = 2 to n + 1 do
    sum := Int64.add !sum item.(i)
  done;
  (Int64.to_int item.(0), !sum = item.(1))

let producer inst ~from_seq ~count ~flush_upto =
  let log = Mnemosyne.Log.create inst ~name:"work" ~cap_words:4096 in
  for seq = from_seq to from_seq + count - 1 do
    Mnemosyne.Log.append log (make_item ~seq ~words:(1 + (seq mod 5)));
    (* only the first [flush_upto] items are made durable; the rest ride
       the write-combining buffers into the crash *)
    if seq - from_seq < flush_upto then Mnemosyne.Log.flush log
  done;
  Printf.printf
    "producer: appended items %d..%d, flushed the first %d, then the power fails\n"
    from_seq
    (from_seq + count - 1)
    flush_upto

let consumer inst =
  let log = Mnemosyne.Log.create inst ~name:"work" ~cap_words:4096 in
  let items = Mnemosyne.Log.recovered log in
  let good = ref 0 in
  let last_seq = ref (-1) in
  List.iter
    (fun item ->
      let seq, ok = check_item item in
      if not ok then begin
        Printf.printf "consumer: item %d CORRUPT!\n" seq;
        exit 1
      end;
      incr good;
      last_seq := seq)
    items;
  Printf.printf
    "consumer: processed %d intact work item(s), highest seq %d; truncating\n"
    !good !last_seq;
  Mnemosyne.Log.truncate log;
  !last_seq

let () =
  rm_rf dir;
  Printf.printf "producer_consumer: a work queue shared across process lives\n\n";
  (* life 1: produce 8 items, flush 5, crash *)
  let inst = Mnemosyne.open_instance ~dir () in
  producer inst ~from_seq:0 ~count:8 ~flush_upto:5;
  let inst = Mnemosyne.reincarnate inst in
  (* life 2: consume whatever survived (>= 5; unflushed ones may or may
     not have drained), then produce more *)
  Printf.printf "\n-- process restarts as the consumer --\n";
  let last = consumer inst in
  assert (last >= 4);
  Printf.printf "\n-- same process becomes the producer again --\n";
  producer inst ~from_seq:(last + 1) ~count:4 ~flush_upto:4;
  let inst = Mnemosyne.reincarnate inst in
  Printf.printf "\n-- final consumer --\n";
  ignore (consumer inst);
  Mnemosyne.close inst;
  Printf.printf
    "\nOK: every consumed item was whole; torn appends never surfaced.\n"
