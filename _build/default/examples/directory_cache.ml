(* directory_cache: the OpenLDAP scenario of paper section 6.2.

   A directory server keeps a read-mostly entry cache.  With Mnemosyne
   the backing store can be removed entirely, "leaving only a persistent
   cache": the AVL-tree cache itself survives restarts.  This example
   also demonstrates the paper's volatile-pointer pattern - persistent
   entries point at volatile attribute descriptions via an id plus a
   session version, and lookups after a restart detect the stale
   version and re-resolve.

   Usage: dune exec examples/directory_cache.exe
*)

let () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "mnemosyne-ldap"
  in
  let rec rm_rf p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
        Sys.rmdir p
      end
      else Sys.remove p
  in
  rm_rf dir;

  Printf.printf "directory_cache: back-mnemosyne LDAP entry cache\n\n";
  let inst = Mnemosyne.open_instance ~dir () in
  let server = Apps.Ldap_server.create_mnemosyne ~frontend_ns:50_000 inst in
  Printf.printf "session 1: attribute-table version %d\n"
    (Apps.Ldap_server.session_attr_version server);
  let env = (Mnemosyne.view inst).Region.Pmem.env in
  let w = Apps.Ldap_server.worker server 0 env in
  let kg = Workload.Keygen.create () in
  for dn = 0 to 99 do
    Apps.Ldap_server.add_entry w ~dn:(Int64.of_int dn)
      ~attr_id:(Workload.Keygen.uniform_int kg 7)
      ~payload:(Workload.Keygen.value kg 128)
  done;
  Printf.printf "added 100 entries; cache holds %d\n"
    (Apps.Ldap_server.entries w);
  (match Apps.Ldap_server.search w ~dn:7L with
  | Some (attr, payload) ->
      Printf.printf "search dn=7 -> attribute %S, %d payload bytes\n" attr
        (Bytes.length payload)
  | None -> Printf.printf "search dn=7 -> MISSING!\n");
  Printf.printf "stale volatile pointers re-resolved so far: %d\n\n"
    (Apps.Ldap_server.stale_resolutions server);

  (* Kill the server.  The attribute descriptions were volatile; the
     persistent cache entries still reference them by id + version. *)
  Printf.printf "crash + restart the server process...\n";
  let inst = Mnemosyne.reincarnate inst in
  let server = Apps.Ldap_server.create_mnemosyne ~frontend_ns:50_000 inst in
  Printf.printf "session 2: attribute-table version %d\n"
    (Apps.Ldap_server.session_attr_version server);
  let w = Apps.Ldap_server.worker server 0 (Mnemosyne.view inst).Region.Pmem.env in
  Printf.printf "cache recovered with %d entries\n"
    (Apps.Ldap_server.entries w);
  (* Every first lookup now hits a stale volatile pointer and repairs
     it - the section 6.2 pattern in action. *)
  for dn = 0 to 9 do
    ignore (Apps.Ldap_server.search w ~dn:(Int64.of_int dn))
  done;
  Printf.printf
    "after 10 searches: %d stale pointers detected and re-resolved\n"
    (Apps.Ldap_server.stale_resolutions server);
  (* second lookup of the same entries is clean *)
  for dn = 0 to 9 do
    ignore (Apps.Ldap_server.search w ~dn:(Int64.of_int dn))
  done;
  Printf.printf "after repeating them:  still %d (entries were repaired)\n"
    (Apps.Ldap_server.stale_resolutions server);
  Mnemosyne.close inst
