examples/quickstart.mli:
