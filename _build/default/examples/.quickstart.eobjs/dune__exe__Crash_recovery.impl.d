examples/crash_recovery.ml: Array Filename Int64 Mnemosyne Mtm Printf Random Sys
