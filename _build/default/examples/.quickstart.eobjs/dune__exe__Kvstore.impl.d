examples/kvstore.ml: Apps Array Baseline Bytes Filename Int64 List Mnemosyne Mtm Printf Pstruct Region Scm Sys Workload
