examples/quickstart.ml: Array Bytes Filename Int64 List Mnemosyne Mtm Printf Pstruct Region Sys
