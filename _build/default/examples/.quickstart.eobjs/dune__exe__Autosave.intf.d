examples/autosave.mli:
