examples/autosave.ml: Array Baseline Filename Int64 Mnemosyne Printf Pstruct Region Scm Sys Workload
