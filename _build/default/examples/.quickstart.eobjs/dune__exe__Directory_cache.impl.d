examples/directory_cache.ml: Apps Array Bytes Filename Int64 Mnemosyne Printf Region Sys Workload
