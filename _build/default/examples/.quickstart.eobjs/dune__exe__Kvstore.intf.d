examples/kvstore.mli:
