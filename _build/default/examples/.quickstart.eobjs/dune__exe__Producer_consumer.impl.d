examples/producer_consumer.ml: Array Filename Int64 List Mnemosyne Printf Sys
