examples/directory_cache.mli:
