(* kvstore: the Tokyo Cabinet scenario of paper section 6.2.

   A key/value store whose B+ tree lives in persistent memory and is
   updated with durable transactions - compared side by side with the
   stock approach, a memory-mapped file msync'd after every update.

   Usage:
     dune exec examples/kvstore.exe            # demo workload + compare
     dune exec examples/kvstore.exe -- 1024    # with 1 KiB values
*)

let () =
  let value_bytes =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 64
  in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "mnemosyne-kvstore"
  in
  (* fresh state each demo run *)
  let rec rm_rf p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
        Sys.rmdir p
      end
      else Sys.remove p
  in
  rm_rf dir;

  Printf.printf "kvstore: Tokyo-Cabinet-style store, %d-byte values\n\n"
    value_bytes;

  (* --- Mnemosyne version: B+ tree in persistent memory ------------- *)
  let inst = Mnemosyne.open_instance ~dir () in
  let store = Apps.Tc_store.create_mnemosyne inst in
  let env = (Mnemosyne.view inst).Region.Pmem.env in
  let w = Apps.Tc_store.worker store 0 env in
  let kg = Workload.Keygen.create () in
  let n = 300 in
  let t0 = env.now () in
  for k = 0 to n - 1 do
    Apps.Tc_store.put w (Int64.of_int k) (Workload.Keygen.value kg value_bytes)
  done;
  let mnemo_ns = env.now () - t0 in
  Printf.printf "Mnemosyne durable transactions: %d puts in %.2f ms simulated (%.1f us/op)\n"
    n
    (float_of_int mnemo_ns /. 1e6)
    (float_of_int mnemo_ns /. float_of_int n /. 1e3);
  (match Apps.Tc_store.get w 42L with
  | Some v -> Printf.printf "  get 42 -> %d bytes\n" (Bytes.length v)
  | None -> Printf.printf "  get 42 -> MISSING!\n");

  (* range scan, something the leaf chain makes cheap *)
  let slot = Mnemosyne.pstatic inst "tc.tree" 8 in
  let in_range =
    Mnemosyne.atomically inst (fun tx ->
        let tree =
          Pstruct.Bp_tree.attach tx
            ~root:(Int64.to_int (Mtm.Txn.load tx slot))
        in
        List.length (Pstruct.Bp_tree.range tx tree ~lo:100L ~hi:149L))
  in
  Printf.printf "  range [100,149] -> %d entries\n" in_range;

  (* crash and recover: nothing committed may be lost *)
  Printf.printf "\nCrash + reboot...\n";
  let inst = Mnemosyne.reincarnate inst in
  let store = Apps.Tc_store.create_mnemosyne inst in
  let w = Apps.Tc_store.worker store 0 (Mnemosyne.view inst).Region.Pmem.env in
  Printf.printf "  recovered store holds %d entries (expected %d)\n"
    (Apps.Tc_store.length w) n;

  (* --- stock version: mmap + msync on PCM-disk --------------------- *)
  let disk = Baseline.Pcm_disk.create ~nblocks:4096 () in
  let mstore = Apps.Tc_store.create_msync disk in
  let machine = Scm.Env.make_machine ~nframes:16 () in
  let menv = Scm.Env.standalone machine in
  let mw = Apps.Tc_store.worker mstore 0 menv in
  let t0 = menv.now () in
  for k = 0 to n - 1 do
    Apps.Tc_store.put mw (Int64.of_int k)
      (Workload.Keygen.value kg value_bytes)
  done;
  let msync_ns = menv.now () - t0 in
  Printf.printf
    "\nmsync-per-update baseline: %d puts in %.2f ms simulated (%.1f us/op)\n"
    n
    (float_of_int msync_ns /. 1e6)
    (float_of_int msync_ns /. float_of_int n /. 1e3);
  Printf.printf "\nMnemosyne speedup: %.1fx (paper: ~2x at 64 B, ~15x at 1 KiB)\n"
    (float_of_int msync_ns /. float_of_int mnemo_ns);
  Mnemosyne.close inst
