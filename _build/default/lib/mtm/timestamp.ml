type t = { mutable now : int; mutable active : int }

let create () = { now = 0; active = 0 }

let now t = t.now

let next t (env : Scm.Env.t) =
  env.delay (env.machine.latency.timestamp_ns * max 1 t.active);
  t.now <- t.now + 1;
  t.now

let register_thread t = t.active <- t.active + 1
let unregister_thread t = t.active <- max 0 (t.active - 1)
let active_threads t = t.active
