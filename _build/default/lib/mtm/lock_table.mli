(** The global array of volatile locks used for encounter-time locking
    (paper section 5): "a global array of volatile locks, with each lock
    covering a portion of the address space".

    Each entry holds a version (the commit timestamp of the last
    transaction to write a covered address) and an owner (the
    transaction currently holding the lock, if any).  The table is
    volatile: after a crash it is simply recreated, because recovery
    replays committed transactions single-threadedly. *)

type t

val create : ?bits:int -> unit -> t
(** [2^bits] entries (default 18). *)

val index_of : t -> int -> int
(** Map an address to its covering lock: one lock per 64-byte line,
    wrapping around the table. *)

val version : t -> int -> int
val owner : t -> int -> int
(** Owning transaction id, or -1. *)

val try_acquire : t -> int -> owner:int -> bool
(** Acquire if free or already ours; false if another owner holds it. *)

val release : t -> int -> unit
(** Release without changing the version (abort path). *)

val release_versioned : t -> int -> version:int -> unit
(** Release and publish a new version (commit path). *)

val entries : t -> int
