lib/mtm/lock_table.ml: Array
