lib/mtm/redo_log.ml: Array Int64 List Pmlog
