lib/mtm/txn.ml: Array Bytes Hashtbl Int64 List Lock_table Pmheap Pmlog Printf Queue Random Redo_log Region Scm Timestamp
