lib/mtm/timestamp.ml: Scm
