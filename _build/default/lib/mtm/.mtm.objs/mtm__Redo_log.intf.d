lib/mtm/redo_log.mli:
