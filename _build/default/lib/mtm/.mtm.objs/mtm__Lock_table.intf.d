lib/mtm/lock_table.mli:
