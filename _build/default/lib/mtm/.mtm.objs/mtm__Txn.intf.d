lib/mtm/txn.mli: Bytes Pmheap Region Scm
