lib/mtm/timestamp.mli: Scm
