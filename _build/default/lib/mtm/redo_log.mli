(** Encoding of transaction records in the per-thread RAWL (paper
    section 5).

    A committed transaction appends one record: its global-timestamp
    commit order followed by the (address, new value) pairs of its
    write set.  With write-ahead {e redo} logging, "the only requirement
    is that the log is written completely before any data values are
    updated" — the record is streamed during commit and made durable by
    the RAWL's single tornbit fence. *)

type record = { ts : int; writes : (int * int64) list }

val encode : ts:int -> (int * int64) list -> int64 array
val decode : int64 array -> record option
(** [None] for records that are not well-formed transaction records. *)

val span_words : nwrites:int -> int
(** Stored-word span of a record with that many writes (what the
    asynchronous truncation daemon advances the head by). *)
