(** TinySTM's global timestamp counter (paper section 5).

    Incremented at every transaction completion; the value is stored in
    the redo log with each transaction so recovery can replay
    transactions from different threads' logs in execution order.

    The counter is a single shared cache line, so bumping it costs more
    as more threads hammer it — the paper observes "the slight increase
    in write latency is due to contention on the global timestamp
    counter".  We charge [timestamp_ns x active threads] per bump to
    model that coherence traffic. *)

type t

val create : unit -> t

val now : t -> int
(** Current value without bumping (transaction read-version snapshot). *)

val next : t -> Scm.Env.t -> int
(** Bump and return the new value, charging the contention-scaled
    cost to the calling thread. *)

val register_thread : t -> unit
val unregister_thread : t -> unit
val active_threads : t -> int
