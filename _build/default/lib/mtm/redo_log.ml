type record = { ts : int; writes : (int * int64) list }

let encode ~ts writes =
  let n = List.length writes in
  let arr = Array.make (2 + (2 * n)) 0L in
  arr.(0) <- Int64.of_int ts;
  arr.(1) <- Int64.of_int n;
  List.iteri
    (fun i (addr, v) ->
      arr.(2 + (2 * i)) <- Int64.of_int addr;
      arr.(3 + (2 * i)) <- v)
    writes;
  arr

let decode arr =
  if Array.length arr < 2 then None
  else
    let ts = Int64.to_int arr.(0) in
    let n = Int64.to_int arr.(1) in
    if n < 0 || Array.length arr <> 2 + (2 * n) || ts <= 0 then None
    else
      Some
        {
          ts;
          writes =
            List.init n (fun i ->
                (Int64.to_int arr.(2 + (2 * i)), arr.(3 + (2 * i))));
        }

let span_words ~nwrites = Pmlog.Bitstream.stored_words_for (2 + (2 * nwrites))
