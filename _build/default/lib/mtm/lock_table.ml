type t = { versions : int array; owners : int array; mask : int }

let create ?(bits = 18) () =
  let n = 1 lsl bits in
  { versions = Array.make n 0; owners = Array.make n (-1); mask = n - 1 }

(* Each lock covers one 64-byte line of the address space (the paper:
   "each lock covering a portion of the address space").  Range
   striding, not hashing: contiguous writes take contiguous locks, so a
   large write set occupies few entries and disjoint structures rarely
   false-conflict. *)
let index_of t addr = (addr lsr 6) land t.mask

let version t idx = t.versions.(idx)
let owner t idx = t.owners.(idx)

let try_acquire t idx ~owner =
  if t.owners.(idx) = -1 then begin
    t.owners.(idx) <- owner;
    true
  end
  else t.owners.(idx) = owner

let release t idx = t.owners.(idx) <- -1

let release_versioned t idx ~version =
  t.versions.(idx) <- version;
  t.owners.(idx) <- -1

let entries t = t.mask + 1
