type sync = { sim : Sim.t; mu : Sim.Mutex_r.t; cond : Sim.Cond_r.t }

type t = {
  disk : Pcm_disk.t;
  start_block : int;
  blocks : int;
  serial_ns : int;
  sync : sync option;
  mutable next_lsn : int;
  mutable flushed_lsn : int;
  mutable pending_bytes : int;
  mutable write_pos : int;  (* block offset within the log area *)
  mutable flushing : bool;
  mutable records : int;
  mutable flushes : int;
}

let create ?sim ?(serial_ns = 16000) disk ~start_block ~blocks =
  let sync =
    Option.map
      (fun sim ->
        { sim; mu = Sim.Mutex_r.create sim; cond = Sim.Cond_r.create sim })
      sim
  in
  {
    disk;
    start_block;
    blocks;
    serial_ns;
    sync;
    next_lsn = 0;
    flushed_lsn = -1;
    pending_bytes = 0;
    write_pos = 0;
    flushing = false;
    records = 0;
    flushes = 0;
  }

let records t = t.records
let flushes t = t.flushes

let flush_to_disk t (env : Scm.Env.t) bytes =
  (* Sequential append into the circular log area. *)
  let nblocks = max 1 ((bytes + Pcm_disk.block_bytes - 1) / Pcm_disk.block_bytes) in
  t.write_pos <- (t.write_pos + nblocks) mod t.blocks;
  env.delay (Pcm_disk.write_cost_ns t.disk bytes);
  t.flushes <- t.flushes + 1

let commit_record t (env : Scm.Env.t) bytes =
  match t.sync with
  | None ->
      (* Single-threaded: append + flush immediately. *)
      env.delay (t.serial_ns + (bytes / 4));
      t.records <- t.records + 1;
      t.next_lsn <- t.next_lsn + 1;
      flush_to_disk t env (bytes + 32);
      t.flushed_lsn <- t.next_lsn - 1
  | Some { mu; cond; _ } ->
      Sim.Mutex_r.lock mu;
      (* In-mutex record insertion: the serialization bottleneck. *)
      env.delay (t.serial_ns + (bytes / 4));
      let my_lsn = t.next_lsn in
      t.next_lsn <- my_lsn + 1;
      t.pending_bytes <- t.pending_bytes + bytes + 32;
      t.records <- t.records + 1;
      while t.flushed_lsn < my_lsn do
        if t.flushing then Sim.Cond_r.wait cond mu
        else begin
          (* Become the flush leader: release the buffer so later
             committers can insert (and join the next group) while the
             disk write is in flight. *)
          t.flushing <- true;
          let target = t.next_lsn - 1 in
          let bytes_now = t.pending_bytes in
          t.pending_bytes <- 0;
          Sim.Mutex_r.unlock mu;
          flush_to_disk t env bytes_now;
          Sim.Mutex_r.lock mu;
          t.flushed_lsn <- max t.flushed_lsn target;
          t.flushing <- false;
          Sim.Cond_r.broadcast cond
        end
      done;
      Sim.Mutex_r.unlock mu
