(** A buffer pool of disk pages with LRU eviction and dirty tracking —
    the storage manager's cache between the access methods and the
    PCM-disk. *)

type t

val create : Pcm_disk.t -> capacity_pages:int -> t

val get : t -> Scm.Env.t -> int -> Bytes.t
(** Fetch a page (reading from disk on a miss; a dirty victim is
    written back on eviction). *)

val mark_dirty : t -> int -> unit

val dirty_count : t -> int
val resident : t -> int
val misses : t -> int

val flush_some : t -> Scm.Env.t -> max:int -> int
(** Write back up to [max] dirty pages (checkpoint slice); returns how
    many were written. *)

val flush_all : t -> Scm.Env.t -> unit
