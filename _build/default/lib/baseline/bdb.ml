(* The "database" keeps authoritative contents in a directory hashtable
   (standing in for parsing records out of page images) while running
   the full mechanical path — page fetch, dirtying, WAL commit,
   checkpoints — against the disk, so the timing and I/O accounting are
   those of a page-based storage manager. *)

type t = {
  disk : Pcm_disk.t;
  wal : Wal.t;
  cache : Page_cache.t;
  op_overhead_ns : int;
  checkpoint_every : int;
  data_pages : int;
  contents : (string, string) Hashtbl.t;
  mutable ops : int;
}

let log_blocks = 256

let create ?sim ?(cache_pages = 256) ?(op_overhead_ns = 9000)
    ?(serial_ns = 16000) ?(checkpoint_every = 64) disk =
  let nblocks = Pcm_disk.nblocks disk in
  if nblocks <= log_blocks + 16 then invalid_arg "Bdb.create: disk too small";
  {
    disk;
    wal = Wal.create ?sim ~serial_ns disk ~start_block:0 ~blocks:log_blocks;
    cache = Page_cache.create disk ~capacity_pages:cache_pages;
    op_overhead_ns;
    checkpoint_every;
    data_pages = nblocks - log_blocks;
    contents = Hashtbl.create 1024;
    ops = 0;
  }

let wal t = t.wal
let length t = Hashtbl.length t.contents

let hash_page t key =
  (Hashtbl.hash key * 2654435761) land max_int mod t.data_pages

let touch_data_page t env key value =
  let page = log_blocks + hash_page t (Bytes.to_string key) in
  let data = Page_cache.get t.cache env page in
  (* Scribble the record into the page image so dirty write-back moves
     real bytes; charge the memcpy. *)
  let off = Hashtbl.hash value land (Pcm_disk.block_bytes - 64 - 1) in
  let n = min (Bytes.length value) 64 in
  if n > 0 then Bytes.blit value 0 data off n;
  Page_cache.mark_dirty t.cache page;
  env.Scm.Env.delay (Bytes.length value / 4)

let maybe_checkpoint t env =
  t.ops <- t.ops + 1;
  if t.ops mod t.checkpoint_every = 0 then
    ignore (Page_cache.flush_some t.cache env ~max:8)

let put t env key value =
  env.Scm.Env.delay t.op_overhead_ns;
  touch_data_page t env key value;
  Hashtbl.replace t.contents (Bytes.to_string key) (Bytes.to_string value);
  Wal.commit_record t.wal env (Bytes.length key + Bytes.length value + 64);
  maybe_checkpoint t env

let put_nosync t env key value =
  env.Scm.Env.delay t.op_overhead_ns;
  touch_data_page t env key value;
  Hashtbl.replace t.contents (Bytes.to_string key) (Bytes.to_string value);
  t.ops <- t.ops + 1

let flush_dirty t env ?(max = 64) () =
  ignore (Page_cache.flush_some t.cache env ~max)

let get t env key =
  env.Scm.Env.delay (t.op_overhead_ns / 2);
  let page = log_blocks + hash_page t (Bytes.to_string key) in
  ignore (Page_cache.get t.cache env page);
  Option.map Bytes.of_string (Hashtbl.find_opt t.contents (Bytes.to_string key))

let delete t env key =
  env.Scm.Env.delay t.op_overhead_ns;
  let existed = Hashtbl.mem t.contents (Bytes.to_string key) in
  if existed then begin
    touch_data_page t env key (Bytes.create 16);
    Hashtbl.remove t.contents (Bytes.to_string key);
    Wal.commit_record t.wal env (Bytes.length key + 64);
    maybe_checkpoint t env
  end;
  existed
