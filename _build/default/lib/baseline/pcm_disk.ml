let block_bytes = 4096

type t = {
  mutable latency : Scm.Latency_model.t;
  software_ns : int;
  nblocks : int;
  data : Bytes.t;
  mutable blocks_written : int;
  mutable bytes_written : int;
}

let create ?(latency = Scm.Latency_model.default) ?(software_ns = 2500)
    ~nblocks () =
  {
    latency;
    software_ns;
    nblocks;
    data = Bytes.make (nblocks * block_bytes) '\000';
    blocks_written = 0;
    bytes_written = 0;
  }

let nblocks t = t.nblocks
let latency_model t = t.latency
let set_latency t latency = t.latency <- latency
let blocks_written t = t.blocks_written
let bytes_written t = t.bytes_written

let check t block count =
  if block < 0 || block + count > t.nblocks then
    invalid_arg "Pcm_disk: block out of range"

let read_block t (env : Scm.Env.t) block =
  check t block 1;
  env.delay (t.software_ns / 2);
  Bytes.sub t.data (block * block_bytes) block_bytes

let write_cost_ns t bytes =
  t.software_ns + Scm.Latency_model.streaming_write_ns t.latency bytes

let write_block t (env : Scm.Env.t) block buf =
  check t block 1;
  if Bytes.length buf <> block_bytes then
    invalid_arg "Pcm_disk.write_block: buffer size";
  Bytes.blit buf 0 t.data (block * block_bytes) block_bytes;
  t.blocks_written <- t.blocks_written + 1;
  t.bytes_written <- t.bytes_written + block_bytes;
  env.delay (write_cost_ns t block_bytes)

let write_blocks t (env : Scm.Env.t) block buf =
  let len = Bytes.length buf in
  let count = (len + block_bytes - 1) / block_bytes in
  check t block count;
  Bytes.blit buf 0 t.data (block * block_bytes) len;
  t.blocks_written <- t.blocks_written + count;
  t.bytes_written <- t.bytes_written + len;
  env.delay (write_cost_ns t len)

let fsync t (env : Scm.Env.t) = env.delay t.software_ns
