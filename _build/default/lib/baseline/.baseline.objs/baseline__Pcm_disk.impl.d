lib/baseline/pcm_disk.ml: Bytes Scm
