lib/baseline/msync_store.mli: Bytes Pcm_disk Scm Sim
