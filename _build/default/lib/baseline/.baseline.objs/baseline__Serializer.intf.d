lib/baseline/serializer.mli: Bytes Pcm_disk Scm
