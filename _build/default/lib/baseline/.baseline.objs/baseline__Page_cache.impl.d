lib/baseline/page_cache.ml: Bytes Hashtbl Pcm_disk
