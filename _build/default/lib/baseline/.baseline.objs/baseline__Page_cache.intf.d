lib/baseline/page_cache.mli: Bytes Pcm_disk Scm
