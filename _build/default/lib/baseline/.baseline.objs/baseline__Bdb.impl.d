lib/baseline/bdb.ml: Bytes Hashtbl Option Page_cache Pcm_disk Scm Wal
