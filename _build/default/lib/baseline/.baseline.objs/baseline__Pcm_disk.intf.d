lib/baseline/pcm_disk.mli: Bytes Scm
