lib/baseline/bdb.mli: Bytes Pcm_disk Scm Sim Wal
