lib/baseline/msync_store.ml: Bytes Hashtbl Option Pcm_disk Scm Sim
