lib/baseline/wal.mli: Pcm_disk Scm Sim
