lib/baseline/wal.ml: Option Pcm_disk Scm Sim
