lib/baseline/serializer.ml: Buffer Bytes Int64 List Pcm_disk Scm
