type entry = { data : Bytes.t; mutable dirty : bool; mutable stamp : int }

type t = {
  disk : Pcm_disk.t;
  capacity : int;
  table : (int, entry) Hashtbl.t;
  mutable clock : int;
  mutable misses : int;
}

let create disk ~capacity_pages =
  {
    disk;
    capacity = capacity_pages;
    table = Hashtbl.create (2 * capacity_pages);
    clock = 0;
    misses = 0;
  }

let lru_victim t =
  Hashtbl.fold
    (fun page e acc ->
      match acc with
      | Some (_, best) when best.stamp <= e.stamp -> acc
      | _ -> Some (page, e))
    t.table None

let evict_one t env =
  match lru_victim t with
  | None -> ()
  | Some (page, e) ->
      if e.dirty then Pcm_disk.write_block t.disk env page e.data;
      Hashtbl.remove t.table page

let get t env page =
  t.clock <- t.clock + 1;
  match Hashtbl.find_opt t.table page with
  | Some e ->
      e.stamp <- t.clock;
      e.data
  | None ->
      t.misses <- t.misses + 1;
      if Hashtbl.length t.table >= t.capacity then evict_one t env;
      let data = Pcm_disk.read_block t.disk env page in
      Hashtbl.replace t.table page { data; dirty = false; stamp = t.clock };
      data

let mark_dirty t page =
  match Hashtbl.find_opt t.table page with
  | Some e -> e.dirty <- true
  | None -> invalid_arg "Page_cache.mark_dirty: page not resident"

let dirty_count t =
  Hashtbl.fold (fun _ e acc -> if e.dirty then acc + 1 else acc) t.table 0

let resident t = Hashtbl.length t.table
let misses t = t.misses

let flush_some t env ~max =
  let written = ref 0 in
  (try
     Hashtbl.iter
       (fun page e ->
         if e.dirty && !written < max then begin
           Pcm_disk.write_block t.disk env page e.data;
           e.dirty <- false;
           incr written
         end
         else if !written >= max then raise Exit)
       t.table
   with Exit -> ());
  !written

let flush_all t env =
  Hashtbl.iter
    (fun page e ->
      if e.dirty then begin
        Pcm_disk.write_block t.disk env page e.data;
        e.dirty <- false
      end)
    t.table
