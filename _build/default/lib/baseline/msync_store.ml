type t = {
  disk : Pcm_disk.t;
  base_pages_per_update : int;
  bytes_per_extra_page : int;
  page_sync_ns : int;
  contents : (string, string) Hashtbl.t;
  mu : Sim.Mutex_r.t option;  (* the kernel's mmap write-back lock *)
  mutable pages_synced : int;
  mutable torn_window : int;
}

let create ?sim ?(base_pages_per_update = 2) ?(bytes_per_extra_page = 34)
    ?(page_sync_ns = 12000) disk =
  {
    disk;
    base_pages_per_update;
    bytes_per_extra_page;
    page_sync_ns;
    contents = Hashtbl.create 1024;
    mu = Option.map Sim.Mutex_r.create sim;
    pages_synced = 0;
    torn_window = 0;
  }

let length t = Hashtbl.length t.contents
let pages_synced t = t.pages_synced
let torn_window_pages t = t.torn_window

let msync_update t (env : Scm.Env.t) value_bytes =
  let pages =
    t.base_pages_per_update + (value_bytes / t.bytes_per_extra_page)
  in
  (* Multi-page msync is not atomic: a failure mid-flush tears the
     file.  Track the exposure window the paper warns about. *)
  t.torn_window <- max 0 (pages - 1);
  t.pages_synced <- t.pages_synced + pages;
  let work () =
    env.delay
      (pages * t.page_sync_ns
      + Scm.Latency_model.streaming_write_ns (Pcm_disk.latency_model t.disk)
          (pages * Pcm_disk.block_bytes))
  in
  (* msync of a shared mapping serializes in the kernel: threads only
     overlap their user-level work, which is why the paper saw just
     +10% from a second Tokyo Cabinet thread *)
  match t.mu with
  | Some mu -> Sim.Mutex_r.with_lock mu work
  | None -> work ()

let put t env key value =
  Hashtbl.replace t.contents (Bytes.to_string key) (Bytes.to_string value);
  msync_update t env (Bytes.length value)

let get t (env : Scm.Env.t) key =
  env.delay 500;  (* in-memory tree walk *)
  Option.map Bytes.of_string (Hashtbl.find_opt t.contents (Bytes.to_string key))

let delete t env key =
  let existed = Hashtbl.mem t.contents (Bytes.to_string key) in
  if existed then begin
    Hashtbl.remove t.contents (Bytes.to_string key);
    msync_update t env 16
  end;
  existed
