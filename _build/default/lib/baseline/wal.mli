(** Berkeley-DB-style write-ahead log: one centralized volatile log
    buffer with group commit.

    This is the component the paper identifies as BDB's scaling
    bottleneck: "contention on the centralized log buffer, which
    becomes the serialization bottleneck as I/O latency becomes
    shorter" (section 6.3).  Record insertion happens under a global
    mutex (the serialized software path); the flush to the PCM-disk is
    led by one thread while followers wait on a condition variable and
    are released in a group — BDB's group commit, which is what buys
    the 2-thread improvement and no more.

    Without a simulator handle the log degrades to per-record flushes
    (single-threaded use). *)

type t

val create :
  ?sim:Sim.t ->
  ?serial_ns:int ->
  Pcm_disk.t ->
  start_block:int ->
  blocks:int ->
  t
(** [serial_ns] is the in-mutex software cost per record (buffer
    management, lock subsystem), default 16000 ns. *)

val commit_record : t -> Scm.Env.t -> int -> unit
(** [commit_record t env bytes] durably commits a log record of that
    size: append under the mutex, then group-flush to disk.  Returns
    once the record's LSN is flushed. *)

val records : t -> int
val flushes : t -> int
(** Disk flushes issued; [records t / flushes t] is the achieved group
    size. *)
