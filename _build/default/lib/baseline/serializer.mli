(** Boost-style whole-structure serialization to a file on PCM-disk.

    The alternative persistence strategy of table 5: keep the tree in
    DRAM and periodically serialize it to a file ("productivity
    applications including word processors use this approach for
    periodic fast saves").  A real binary encoder walks the entries;
    the cost is the per-byte serialization CPU (Boost's archive
    overhead) plus the sequential file write. *)

val encode : (int64 * Bytes.t) list -> Bytes.t
(** Length-prefixed binary encoding of the entries. *)

val decode : Bytes.t -> (int64 * Bytes.t) list
(** Inverse of {!encode}. *)

val serialize :
  ?cpu_ns_per_byte:int ->
  Pcm_disk.t ->
  Scm.Env.t ->
  start_block:int ->
  (int64 * Bytes.t) list ->
  int
(** Encode and write the entries to the file starting at [start_block];
    charges CPU (default 3 ns/byte) plus the disk write; returns bytes
    written. *)

val deserialize :
  Pcm_disk.t -> Scm.Env.t -> start_block:int -> (int64 * Bytes.t) list
(** Read back the most recent {!serialize} at that location. *)
