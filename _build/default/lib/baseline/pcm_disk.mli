(** PCM-disk: the paper's emulated PCM block device (section 6.1).

    "To compare Mnemosyne against other uses of PCM, we constructed an
    emulator, PCM-disk, for a PCM-based block device.  Based on Linux's
    RAM disk, PCM disk introduces delays when writing a block.  We
    model block writes using sequential write-through operations."

    A write charges the block-layer + filesystem software path plus the
    bandwidth-limited media transfer (with the PCM write latency as a
    floor); sequential multi-block writes amortize the software cost.
    Reads hit DRAM-speed media and charge only the software path.
    Contents are held functionally so the stores built on top really
    store and retrieve data. *)

type t

val block_bytes : int
(** 4096. *)

val create : ?latency:Scm.Latency_model.t -> ?software_ns:int -> nblocks:int -> unit -> t
(** [software_ns] is the per-request kernel path (block layer + ext2),
    default 2500 ns. *)

val nblocks : t -> int
val latency_model : t -> Scm.Latency_model.t

val set_latency : t -> Scm.Latency_model.t -> unit
(** Swap the media model (the figure-7 sensitivity sweep). *)

val read_block : t -> Scm.Env.t -> int -> Bytes.t
val write_block : t -> Scm.Env.t -> int -> Bytes.t -> unit

val write_blocks : t -> Scm.Env.t -> int -> Bytes.t -> unit
(** Sequential write of a multi-block buffer starting at the given
    block: one software charge, bandwidth-limited transfer. *)

val write_cost_ns : t -> int -> int
(** Modeled cost of writing that many bytes sequentially (exposed for
    analytical checks in tests). *)

val fsync : t -> Scm.Env.t -> unit
(** Barrier; writes are through, so this only charges the syscall. *)

val blocks_written : t -> int
val bytes_written : t -> int
