let encode entries =
  let buf = Buffer.create 4096 in
  Buffer.add_int64_le buf (Int64.of_int (List.length entries));
  List.iter
    (fun (k, v) ->
      Buffer.add_int64_le buf k;
      Buffer.add_int64_le buf (Int64.of_int (Bytes.length v));
      Buffer.add_bytes buf v)
    entries;
  Buffer.to_bytes buf

let decode bytes =
  let pos = ref 0 in
  let read64 () =
    let v = Bytes.get_int64_le bytes !pos in
    pos := !pos + 8;
    v
  in
  let n = Int64.to_int (read64 ()) in
  List.init n (fun _ ->
      let k = read64 () in
      let len = Int64.to_int (read64 ()) in
      let v = Bytes.sub bytes !pos len in
      pos := !pos + len;
      (k, v))

let serialize ?(cpu_ns_per_byte = 3) disk (env : Scm.Env.t) ~start_block
    entries =
  let payload = encode entries in
  env.delay (cpu_ns_per_byte * Bytes.length payload);
  (* length header block + payload *)
  let header = Bytes.make Pcm_disk.block_bytes '\000' in
  Bytes.set_int64_le header 0 (Int64.of_int (Bytes.length payload));
  Pcm_disk.write_block disk env start_block header;
  Pcm_disk.write_blocks disk env (start_block + 1) payload;
  Bytes.length payload

let deserialize disk (env : Scm.Env.t) ~start_block =
  let header = Pcm_disk.read_block disk env start_block in
  let len = Int64.to_int (Bytes.get_int64_le header 0) in
  let nblocks = (len + Pcm_disk.block_bytes - 1) / Pcm_disk.block_bytes in
  let buf = Buffer.create len in
  for b = 0 to nblocks - 1 do
    Buffer.add_bytes buf (Pcm_disk.read_block disk env (start_block + 1 + b))
  done;
  decode (Bytes.sub (Buffer.to_bytes buf) 0 len)
