(** A Berkeley-DB-style transactional storage manager on PCM-disk.

    The comparison target of figures 4, 5 and 7 and of OpenLDAP's
    back-bdb backend (table 4).  Implements the mechanisms that give
    the real BDB its disk-era performance profile:

    - a hash access method over fixed pages, cached in a {!Page_cache};
    - per-update commit through the centralized {!Wal} (group commit);
    - lazy checkpoints that trickle dirty pages back to disk;
    - a per-operation software path (buffer and lock management) that
      is partly serialized inside the WAL mutex.

    Transactions here are per-operation ([put]/[delete] each commit),
    matching the paper's microbenchmark configuration ("data is
    committed to storage on every update").

    Functionally a real key-value store: contents survive in the page
    images and a directory, so gets return what puts stored. *)

type t

val create :
  ?sim:Sim.t ->
  ?cache_pages:int ->
  ?op_overhead_ns:int ->
  ?serial_ns:int ->
  ?checkpoint_every:int ->
  Pcm_disk.t ->
  t
(** [op_overhead_ns] is the parallel per-operation software path
    (default 9000 ns); [serial_ns] the in-log-mutex cost (see {!Wal});
    [checkpoint_every] how many commits between checkpoint slices
    (default 64). *)

val put : t -> Scm.Env.t -> Bytes.t -> Bytes.t -> unit
val get : t -> Scm.Env.t -> Bytes.t -> Bytes.t option
val delete : t -> Scm.Env.t -> Bytes.t -> bool
val length : t -> int

val put_nosync : t -> Scm.Env.t -> Bytes.t -> Bytes.t -> unit
(** Non-transactional put: dirties the page but writes no log record —
    the back-ldbm mode, which "periodically asks Berkeley DB to flush
    dirty data to disk to minimize the window of vulnerability". *)

val flush_dirty : t -> Scm.Env.t -> ?max:int -> unit -> unit
(** The periodic flush back-ldbm relies on. *)

val wal : t -> Wal.t
