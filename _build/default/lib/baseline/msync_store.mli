(** Tokyo-Cabinet-style persistence: a memory-mapped B+ tree file
    flushed with [msync] (table 4's baseline).

    "Tokyo Cabinet stores data in a B+ tree and periodically calls
    msync on a memory-mapped file to flush modified pages to disk...
    we configured it to save data with msync after every update."

    The store is functionally real (an in-memory map); the cost model
    captures what makes the msync path expensive: every update dirties
    the touched leaf plus tree metadata, and the mmap write-back path
    exhibits heavy write amplification (whole pages rewritten for small
    logical changes, allocation and reorganization traffic as values
    grow).  The defaults reproduce the paper's measured TC-on-PCM-disk
    throughput shape; [msync] also cannot be torn-write safe, which the
    paper calls out — we expose that as {!torn_window_pages}. *)

type t

val create :
  ?sim:Sim.t ->
  ?base_pages_per_update:int ->
  ?bytes_per_extra_page:int ->
  ?page_sync_ns:int ->
  Pcm_disk.t ->
  t
(** Defaults: 2 metadata/leaf pages per update, one further dirty page
    per 34 bytes of value (mmap write amplification), 12000 ns per
    synced page (write-back + filesystem path + media).  With a
    simulator handle, concurrent [msync]s serialize under the kernel's
    write-back lock (multi-threaded use). *)

val put : t -> Scm.Env.t -> Bytes.t -> Bytes.t -> unit
(** Update and [msync]: durable on return. *)

val get : t -> Scm.Env.t -> Bytes.t -> Bytes.t option
val delete : t -> Scm.Env.t -> Bytes.t -> bool
val length : t -> int

val pages_synced : t -> int
val torn_window_pages : t -> int
(** Pages that were mid-write at the most recent sync — the torn-write
    exposure the paper notes msync suffers from. *)
