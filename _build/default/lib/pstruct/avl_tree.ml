module Txn = Mtm.Txn

(* Header block: [magic] [count] [root ptr] [scratch slot].
   Node block (40 bytes, 64-byte class):
   [left] [right] [height] [key] [value blob addr]. *)

let magic = 0x41564CL

type t = { hdr : int }

let root t = t.hdr

let f_left n = n
let f_right n = n + 8
let f_height n = n + 16
let f_key n = n + 24
let f_value n = n + 32

let count_addr t = t.hdr + 8
let root_addr t = t.hdr + 16
let scratch_addr t = t.hdr + 24

let create tx ~slot =
  let hdr = Txn.alloc tx 32 ~slot in
  Txn.store tx hdr magic;
  Txn.store tx (hdr + 8) 0L;
  Txn.store tx (hdr + 16) 0L;
  Txn.store tx (hdr + 24) 0L;
  { hdr }

let attach tx ~root =
  if Txn.load tx root <> magic then
    invalid_arg "Avl_tree.attach: no tree at this address";
  { hdr = root }

let height tx node =
  if node = 0 then 0 else Int64.to_int (Txn.load tx (f_height node))

let update_height tx node =
  let h =
    1
    + max
        (height tx (Int64.to_int (Txn.load tx (f_left node))))
        (height tx (Int64.to_int (Txn.load tx (f_right node))))
  in
  Txn.store tx (f_height node) (Int64.of_int h)

let balance_factor tx node =
  height tx (Int64.to_int (Txn.load tx (f_left node)))
  - height tx (Int64.to_int (Txn.load tx (f_right node)))

let rotate_right tx y =
  let x = Int64.to_int (Txn.load tx (f_left y)) in
  Txn.store tx (f_left y) (Txn.load tx (f_right x));
  Txn.store tx (f_right x) (Int64.of_int y);
  update_height tx y;
  update_height tx x;
  x

let rotate_left tx x =
  let y = Int64.to_int (Txn.load tx (f_right x)) in
  Txn.store tx (f_right x) (Txn.load tx (f_left y));
  Txn.store tx (f_left y) (Int64.of_int x);
  update_height tx x;
  update_height tx y;
  y

let rebalance tx node =
  update_height tx node;
  let bf = balance_factor tx node in
  if bf > 1 then begin
    let l = Int64.to_int (Txn.load tx (f_left node)) in
    if balance_factor tx l < 0 then
      Txn.store tx (f_left node) (Int64.of_int (rotate_left tx l));
    rotate_right tx node
  end
  else if bf < -1 then begin
    let r = Int64.to_int (Txn.load tx (f_right node)) in
    if balance_factor tx r > 0 then
      Txn.store tx (f_right node) (Int64.of_int (rotate_right tx r));
    rotate_left tx node
  end
  else node

let new_node tx t key value =
  let node = Txn.alloc tx 40 ~slot:(scratch_addr t) in
  Txn.store tx (f_left node) 0L;
  Txn.store tx (f_right node) 0L;
  Txn.store tx (f_height node) 1L;
  Txn.store tx (f_key node) key;
  ignore (Blob.alloc tx ~slot:(f_value node) value);
  Txn.store tx (scratch_addr t) 0L;
  node

let put tx t key value =
  let rec ins node =
    if node = 0 then new_node tx t key value
    else begin
      let k = Txn.load tx (f_key node) in
      if key < k then begin
        let l = ins (Int64.to_int (Txn.load tx (f_left node))) in
        Txn.store tx (f_left node) (Int64.of_int l);
        rebalance tx node
      end
      else if key > k then begin
        let r = ins (Int64.to_int (Txn.load tx (f_right node))) in
        Txn.store tx (f_right node) (Int64.of_int r);
        rebalance tx node
      end
      else begin
        Blob.free tx ~slot:(f_value node);
        ignore (Blob.alloc tx ~slot:(f_value node) value);
        node
      end
    end
  in
  let before = Txn.load tx (count_addr t) in
  let r0 = Int64.to_int (Txn.load tx (root_addr t)) in
  let had = ref false in
  let rec mem node =
    node <> 0
    &&
    let k = Txn.load tx (f_key node) in
    if key < k then mem (Int64.to_int (Txn.load tx (f_left node)))
    else if key > k then mem (Int64.to_int (Txn.load tx (f_right node)))
    else true
  in
  had := mem r0;
  Txn.store tx (root_addr t) (Int64.of_int (ins r0));
  if not !had then Txn.store tx (count_addr t) (Int64.add before 1L)

let find tx t key =
  let rec go node =
    if node = 0 then None
    else
      let k = Txn.load tx (f_key node) in
      if key < k then go (Int64.to_int (Txn.load tx (f_left node)))
      else if key > k then go (Int64.to_int (Txn.load tx (f_right node)))
      else Some (Blob.read tx (Int64.to_int (Txn.load tx (f_value node))))
  in
  go (Int64.to_int (Txn.load tx (root_addr t)))

let remove tx t key =
  let removed = ref false in
  let rec del node =
    if node = 0 then 0
    else begin
      let k = Txn.load tx (f_key node) in
      if key < k then begin
        let l = del (Int64.to_int (Txn.load tx (f_left node))) in
        Txn.store tx (f_left node) (Int64.of_int l);
        rebalance tx node
      end
      else if key > k then begin
        let r = del (Int64.to_int (Txn.load tx (f_right node))) in
        Txn.store tx (f_right node) (Int64.of_int r);
        rebalance tx node
      end
      else begin
        removed := true;
        let l = Int64.to_int (Txn.load tx (f_left node)) in
        let r = Int64.to_int (Txn.load tx (f_right node)) in
        if l = 0 || r = 0 then begin
          let child = if l = 0 then r else l in
          Blob.free tx ~slot:(f_value node);
          Txn.free_addr tx node;
          child
        end
        else begin
          (* Two children: move the in-order successor's key and value
             into this node, then delete the successor from the right
             subtree. *)
          let rec min_node n =
            let ln = Int64.to_int (Txn.load tx (f_left n)) in
            if ln = 0 then n else min_node ln
          in
          let succ = min_node r in
          let succ_key = Txn.load tx (f_key succ) in
          let succ_val = Txn.load tx (f_value succ) in
          (* steal the successor's blob: clear its field so the
             successor's deletion does not free it *)
          Blob.free tx ~slot:(f_value node);
          Txn.store tx (f_key node) succ_key;
          Txn.store tx (f_value node) succ_val;
          Txn.store tx (f_value succ) 0L;
          let rec del_min n =
            let ln = Int64.to_int (Txn.load tx (f_left n)) in
            if ln = 0 then begin
              let rn = Txn.load tx (f_right n) in
              Txn.free_addr tx n;
              Int64.to_int rn
            end
            else begin
              Txn.store tx (f_left n) (Int64.of_int (del_min ln));
              rebalance tx n
            end
          in
          let r' = del_min r in
          Txn.store tx (f_right node) (Int64.of_int r');
          rebalance tx node
        end
      end
    end
  in
  let r0 = Int64.to_int (Txn.load tx (root_addr t)) in
  let r1 = del r0 in
  Txn.store tx (root_addr t) (Int64.of_int r1);
  if !removed then
    Txn.store tx (count_addr t) (Int64.sub (Txn.load tx (count_addr t)) 1L);
  !removed

let length tx t = Int64.to_int (Txn.load tx (count_addr t))

let iter tx t f =
  let rec go node =
    if node <> 0 then begin
      go (Int64.to_int (Txn.load tx (f_left node)));
      f (Txn.load tx (f_key node))
        (Blob.read tx (Int64.to_int (Txn.load tx (f_value node))));
      go (Int64.to_int (Txn.load tx (f_right node)))
    end
  in
  go (Int64.to_int (Txn.load tx (root_addr t)))

let validate tx t =
  let rec check node lo hi =
    if node = 0 then 0
    else begin
      let k = Txn.load tx (f_key node) in
      (match lo with
      | Some l when k <= l -> failwith "Avl_tree: BST order violated (left)"
      | _ -> ());
      (match hi with
      | Some h when k >= h -> failwith "Avl_tree: BST order violated (right)"
      | _ -> ());
      let hl = check (Int64.to_int (Txn.load tx (f_left node))) lo (Some k) in
      let hr = check (Int64.to_int (Txn.load tx (f_right node))) (Some k) hi in
      if abs (hl - hr) > 1 then failwith "Avl_tree: balance factor out of range";
      let h = 1 + max hl hr in
      if h <> height tx node then failwith "Avl_tree: stale height";
      h
    end
  in
  ignore (check (Int64.to_int (Txn.load tx (root_addr t))) None None)
