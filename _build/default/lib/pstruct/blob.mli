(** Length-prefixed byte blobs in persistent memory.

    The unit of storage for keys and values in the persistent data
    structures: one heap block holding a length word followed by the
    bytes.  Allocation and writes ride the surrounding transaction, so
    a blob exists iff the transaction that created it committed. *)

val alloc : Mtm.Txn.t -> slot:int -> Bytes.t -> int
(** Allocate a blob, storing its address into the persistent [slot]
    (usually a field of the node under construction); returns the
    address. *)

val read : Mtm.Txn.t -> int -> Bytes.t
(** Read a blob's contents. *)

val length : Mtm.Txn.t -> int -> int

val free : Mtm.Txn.t -> slot:int -> unit
(** Free the blob a slot points at, clearing the slot. *)

val equal : Mtm.Txn.t -> int -> Bytes.t -> bool
(** Compare a blob's contents with the given bytes without copying the
    whole blob when lengths differ. *)
