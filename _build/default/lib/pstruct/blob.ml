let alloc tx ~slot b =
  let addr = Mtm.Txn.alloc tx (8 + Bytes.length b) ~slot in
  Mtm.Txn.store tx addr (Int64.of_int (Bytes.length b));
  if Bytes.length b > 0 then Mtm.Txn.write_bytes tx (addr + 8) b;
  addr

let length tx addr = Int64.to_int (Mtm.Txn.load tx addr)

let read tx addr =
  let len = length tx addr in
  if len = 0 then Bytes.create 0 else Mtm.Txn.read_bytes tx (addr + 8) len

let free tx ~slot = Mtm.Txn.free tx ~slot

let equal tx addr b =
  length tx addr = Bytes.length b && read tx addr = b
