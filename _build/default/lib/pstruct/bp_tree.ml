module Txn = Mtm.Txn

let order = 16
let max_keys = order - 1  (* 15 *)

(* Header block: [magic] [count] [root node] [scratch].
   Node block (512-byte class):
   [kind (0 internal, 1 leaf)] [nkeys]
   leaf:     [next leaf], keys[15] @ +24, value blob ptrs[15] @ +144
   internal: keys[15] @ +16, children[16] @ +136

   Internal-node convention: child i covers keys k where
   keys[i-1] <= k < keys[i] (keys[-1] = -inf, keys[n] = +inf). *)

let magic = 0x4250_54L

type t = { hdr : int }

let root t = t.hdr

let count_addr t = t.hdr + 8
let root_addr t = t.hdr + 16
let scratch_addr t = t.hdr + 24

let f_kind n = n
let f_nkeys n = n + 8
let leaf_next n = n + 16
let leaf_key n i = n + 24 + (8 * i)
let leaf_val n i = n + 144 + (8 * i)
let int_key n i = n + 16 + (8 * i)
let int_child n i = n + 136 + (8 * i)

let node_bytes = 272

let get tx a = Int64.to_int (Txn.load tx a)
let is_leaf tx n = Txn.load tx (f_kind n) = 1L
let nkeys tx n = get tx (f_nkeys n)
let set_nkeys tx n k = Txn.store tx (f_nkeys n) (Int64.of_int k)

let alloc_node tx t ~leaf =
  let n = Txn.alloc tx node_bytes ~slot:(scratch_addr t) in
  Txn.store tx (scratch_addr t) 0L;
  Txn.store tx (f_kind n) (if leaf then 1L else 0L);
  Txn.store tx (f_nkeys n) 0L;
  if leaf then Txn.store tx (leaf_next n) 0L;
  n

let create tx ~slot =
  let hdr = Txn.alloc tx 32 ~slot in
  Txn.store tx hdr magic;
  Txn.store tx (hdr + 8) 0L;
  Txn.store tx (hdr + 24) 0L;
  let t = { hdr } in
  let leaf = alloc_node tx t ~leaf:true in
  Txn.store tx (root_addr t) (Int64.of_int leaf);
  t

let attach tx ~root =
  if Txn.load tx root <> magic then
    invalid_arg "Bp_tree.attach: no tree at this address";
  { hdr = root }

(* Index of the child covering [key]: first i with key < keys[i]. *)
let child_index tx node key =
  let n = nkeys tx node in
  let rec go i =
    if i >= n then n
    else if key < Txn.load tx (int_key node i) then i
    else go (i + 1)
  in
  go 0

(* Position of [key] in a leaf: first i with keys[i] >= key. *)
let leaf_pos tx node key =
  let n = nkeys tx node in
  let rec go i =
    if i >= n then i
    else if Txn.load tx (leaf_key node i) >= key then i
    else go (i + 1)
  in
  go 0

let rec find_leaf tx node key =
  if is_leaf tx node then node
  else find_leaf tx (get tx (int_child node (child_index tx node key))) key

let find tx t key =
  let leaf = find_leaf tx (get tx (root_addr t)) key in
  let pos = leaf_pos tx leaf key in
  if pos < nkeys tx leaf && Txn.load tx (leaf_key leaf pos) = key then
    Some (Blob.read tx (get tx (leaf_val leaf pos)))
  else None

(* Insert the separator [key] with right child [child] into internal
   node [node] at position [i], shifting tails right.  Caller
   guarantees room. *)
let insert_separator tx node i key child =
  let n = nkeys tx node in
  for j = n downto i + 1 do
    Txn.store tx (int_key node j) (Txn.load tx (int_key node (j - 1)));
    Txn.store tx (int_child node (j + 1)) (Txn.load tx (int_child node j))
  done;
  Txn.store tx (int_key node i) key;
  Txn.store tx (int_child node (i + 1)) (Int64.of_int child);
  set_nkeys tx node (n + 1)

(* Split the full child at slot [i] of [parent]; returns the promoted
   separator key. *)
let split_child tx t parent i =
  let child = get tx (int_child parent i) in
  if is_leaf tx child then begin
    let right = alloc_node tx t ~leaf:true in
    let split_at = 8 in
    let moved = max_keys - split_at in  (* 7 *)
    for j = 0 to moved - 1 do
      Txn.store tx (leaf_key right j) (Txn.load tx (leaf_key child (split_at + j)));
      Txn.store tx (leaf_val right j) (Txn.load tx (leaf_val child (split_at + j)))
    done;
    set_nkeys tx right moved;
    set_nkeys tx child split_at;
    Txn.store tx (leaf_next right) (Txn.load tx (leaf_next child));
    Txn.store tx (leaf_next child) (Int64.of_int right);
    let promoted = Txn.load tx (leaf_key right 0) in
    insert_separator tx parent i promoted right;
    promoted
  end
  else begin
    let right = alloc_node tx t ~leaf:false in
    let median = max_keys / 2 in  (* 7 *)
    let moved = max_keys - median - 1 in  (* 7 keys, 8 children *)
    for j = 0 to moved - 1 do
      Txn.store tx (int_key right j)
        (Txn.load tx (int_key child (median + 1 + j)))
    done;
    for j = 0 to moved do
      Txn.store tx (int_child right j)
        (Txn.load tx (int_child child (median + 1 + j)))
    done;
    set_nkeys tx right moved;
    set_nkeys tx child median;
    let promoted = Txn.load tx (int_key child median) in
    insert_separator tx parent i promoted right;
    promoted
  end

let put tx t key value =
  (* Grow the root first if full. *)
  let r = get tx (root_addr t) in
  if nkeys tx r = max_keys then begin
    let new_root = alloc_node tx t ~leaf:false in
    Txn.store tx (int_child new_root 0) (Int64.of_int r);
    Txn.store tx (root_addr t) (Int64.of_int new_root);
    ignore (split_child tx t new_root 0)
  end;
  (* Descend, splitting full children proactively. *)
  let node = ref (get tx (root_addr t)) in
  while not (is_leaf tx !node) do
    let i = child_index tx !node key in
    let child = get tx (int_child !node i) in
    if nkeys tx child = max_keys then begin
      let promoted = split_child tx t !node i in
      let i = if key >= promoted then i + 1 else i in
      node := get tx (int_child !node i)
    end
    else node := child
  done;
  let leaf = !node in
  let pos = leaf_pos tx leaf key in
  if pos < nkeys tx leaf && Txn.load tx (leaf_key leaf pos) = key then begin
    Blob.free tx ~slot:(leaf_val leaf pos);
    ignore (Blob.alloc tx ~slot:(leaf_val leaf pos) value)
  end
  else begin
    let n = nkeys tx leaf in
    for j = n downto pos + 1 do
      Txn.store tx (leaf_key leaf j) (Txn.load tx (leaf_key leaf (j - 1)));
      Txn.store tx (leaf_val leaf j) (Txn.load tx (leaf_val leaf (j - 1)))
    done;
    Txn.store tx (leaf_key leaf pos) key;
    Txn.store tx (leaf_val leaf pos) 0L;
    ignore (Blob.alloc tx ~slot:(leaf_val leaf pos) value);
    set_nkeys tx leaf (n + 1);
    Txn.store tx (count_addr t) (Int64.add (Txn.load tx (count_addr t)) 1L)
  end

let remove tx t key =
  let leaf = find_leaf tx (get tx (root_addr t)) key in
  let pos = leaf_pos tx leaf key in
  if pos < nkeys tx leaf && Txn.load tx (leaf_key leaf pos) = key then begin
    Blob.free tx ~slot:(leaf_val leaf pos);
    let n = nkeys tx leaf in
    for j = pos to n - 2 do
      Txn.store tx (leaf_key leaf j) (Txn.load tx (leaf_key leaf (j + 1)));
      Txn.store tx (leaf_val leaf j) (Txn.load tx (leaf_val leaf (j + 1)))
    done;
    set_nkeys tx leaf (n - 1);
    Txn.store tx (count_addr t) (Int64.sub (Txn.load tx (count_addr t)) 1L);
    true
  end
  else false

let length tx t = Int64.to_int (Txn.load tx (count_addr t))

let rec leftmost tx node =
  if is_leaf tx node then node else leftmost tx (get tx (int_child node 0))

let iter tx t f =
  let rec walk leaf =
    if leaf <> 0 then begin
      for i = 0 to nkeys tx leaf - 1 do
        f (Txn.load tx (leaf_key leaf i))
          (Blob.read tx (get tx (leaf_val leaf i)))
      done;
      walk (get tx (leaf_next leaf))
    end
  in
  walk (leftmost tx (get tx (root_addr t)))

let range tx t ~lo ~hi =
  let acc = ref [] in
  let rec walk leaf =
    if leaf <> 0 then begin
      let stop = ref false in
      for i = 0 to nkeys tx leaf - 1 do
        let k = Txn.load tx (leaf_key leaf i) in
        if k > hi then stop := true
        else if k >= lo then
          acc := (k, Blob.read tx (get tx (leaf_val leaf i))) :: !acc
      done;
      if not !stop then walk (get tx (leaf_next leaf))
    end
  in
  walk (find_leaf tx (get tx (root_addr t)) lo);
  List.rev !acc

let validate tx t =
  let leaves = ref [] in
  let rec check node lo hi =
    let n = nkeys tx node in
    if n > max_keys then failwith "Bp_tree: node overfull";
    let keyaddr = if is_leaf tx node then leaf_key node else int_key node in
    for i = 0 to n - 1 do
      let k = Txn.load tx (keyaddr i) in
      (match lo with
      | Some l when k < l -> failwith "Bp_tree: key below range"
      | _ -> ());
      (match hi with
      | Some h when k >= h -> failwith "Bp_tree: key above range"
      | _ -> ());
      if i > 0 && Txn.load tx (keyaddr (i - 1)) >= k then
        failwith "Bp_tree: keys not strictly ascending"
    done;
    if is_leaf tx node then begin
      leaves := node :: !leaves;
      1
    end
    else begin
      if n = 0 then failwith "Bp_tree: empty internal node";
      let depth = ref None in
      for i = 0 to n do
        let clo = if i = 0 then lo else Some (Txn.load tx (int_key node (i - 1))) in
        let chi = if i = n then hi else Some (Txn.load tx (int_key node i)) in
        let d = check (get tx (int_child node i)) clo chi in
        match !depth with
        | None -> depth := Some d
        | Some d' when d <> d' -> failwith "Bp_tree: uneven leaf depth"
        | Some _ -> ()
      done;
      1 + Option.get !depth
    end
  in
  ignore (check (get tx (root_addr t)) None None);
  (* leaf chain visits exactly the leaves, left to right *)
  let chain = ref [] in
  let rec walk leaf =
    if leaf <> 0 then begin
      chain := leaf :: !chain;
      walk (get tx (leaf_next leaf))
    end
  in
  walk (leftmost tx (get tx (root_addr t)));
  if List.sort compare !chain <> List.sort compare !leaves then
    failwith "Bp_tree: leaf chain does not match tree leaves"
