(** A persistent AVL tree with 64-bit keys and blob values.

    This is the structure the paper's OpenLDAP port keeps its entry
    cache in (section 6.2): "the cache is organized using an AVL tree,
    which we make persistent by allocating nodes with pmalloc and
    placing atomic blocks around updates".  All mutation happens inside
    durable transactions; rotations, node allocation and value blobs
    commit or vanish together. *)

type t

val create : Mtm.Txn.t -> slot:int -> t
(** Allocate an empty tree rooted at the persistent [slot]. *)

val attach : Mtm.Txn.t -> root:int -> t

val root : t -> int

val put : Mtm.Txn.t -> t -> int64 -> Bytes.t -> unit
(** Insert or replace the value for a key. *)

val find : Mtm.Txn.t -> t -> int64 -> Bytes.t option

val remove : Mtm.Txn.t -> t -> int64 -> bool

val length : Mtm.Txn.t -> t -> int

val iter : Mtm.Txn.t -> t -> (int64 -> Bytes.t -> unit) -> unit
(** In-order (ascending key) traversal. *)

val validate : Mtm.Txn.t -> t -> unit
(** Check the AVL invariants (BST ordering, height bookkeeping, balance
    factors within one); raises [Failure] on violation.  Test hook. *)
