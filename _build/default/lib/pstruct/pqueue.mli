(** A persistent FIFO queue under durable transactions.

    The work-queue shape of the paper's motivation ("logs, such as in
    distributed agreement protocols"): producers push at the tail,
    consumers pop at the head, each operation one atomic durable
    transaction.  Unlike {!Pextent}/{!Pmlog.Rawl} the queue is a linked
    structure in the persistent heap, so items are individually
    allocated and freed and there is no fixed capacity. *)

type t

val create : Mtm.Txn.t -> slot:int -> t
val attach : Mtm.Txn.t -> root:int -> t
val root : t -> int

val push : Mtm.Txn.t -> t -> Bytes.t -> unit
(** Enqueue at the tail. *)

val pop : Mtm.Txn.t -> t -> Bytes.t option
(** Dequeue from the head. *)

val peek : Mtm.Txn.t -> t -> Bytes.t option
val length : Mtm.Txn.t -> t -> int
val iter : Mtm.Txn.t -> t -> (Bytes.t -> unit) -> unit
(** Head (oldest) to tail (newest). *)
