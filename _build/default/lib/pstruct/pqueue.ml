module Txn = Mtm.Txn

(* Header: [magic] [count] [head] [tail] [scratch].
   Node: [next] [value blob addr]. *)

let magic = 0x5051L

type t = { hdr : int }

let root t = t.hdr
let count_addr t = t.hdr + 8
let head_addr t = t.hdr + 16
let tail_addr t = t.hdr + 24

let create tx ~slot =
  let hdr = Txn.alloc tx 40 ~slot in
  Txn.store tx hdr magic;
  Txn.store tx (hdr + 8) 0L;
  Txn.store tx (hdr + 16) 0L;
  Txn.store tx (hdr + 24) 0L;
  Txn.store tx (hdr + 32) 0L;
  { hdr }

let attach tx ~root =
  if Txn.load tx root <> magic then
    invalid_arg "Pqueue.attach: no queue at this address";
  { hdr = root }

let push tx t value =
  let tail = Int64.to_int (Txn.load tx (tail_addr t)) in
  (* link the fresh node from the predecessor's next field (or the head
     when empty) so the allocation's pointer slot is the real link *)
  let link_slot = if tail = 0 then head_addr t else tail in
  let node = Txn.alloc tx 16 ~slot:link_slot in
  Txn.store tx node 0L;
  ignore (Blob.alloc tx ~slot:(node + 8) value);
  Txn.store tx (tail_addr t) (Int64.of_int node);
  Txn.store tx (count_addr t) (Int64.add (Txn.load tx (count_addr t)) 1L)

let pop tx t =
  match Int64.to_int (Txn.load tx (head_addr t)) with
  | 0 -> None
  | node ->
      let value = Blob.read tx (Int64.to_int (Txn.load tx (node + 8))) in
      let next = Txn.load tx node in
      Txn.store tx (head_addr t) next;
      if next = 0L then Txn.store tx (tail_addr t) 0L;
      Blob.free tx ~slot:(node + 8);
      Txn.free_addr tx node;
      Txn.store tx (count_addr t) (Int64.sub (Txn.load tx (count_addr t)) 1L);
      Some value

let peek tx t =
  match Int64.to_int (Txn.load tx (head_addr t)) with
  | 0 -> None
  | node -> Some (Blob.read tx (Int64.to_int (Txn.load tx (node + 8))))

let length tx t = Int64.to_int (Txn.load tx (count_addr t))

let iter tx t f =
  let rec walk node =
    if node <> 0 then begin
      f (Blob.read tx (Int64.to_int (Txn.load tx (node + 8))));
      walk (Int64.to_int (Txn.load tx node))
    end
  in
  walk (Int64.to_int (Txn.load tx (head_addr t)))
