lib/pstruct/avl_tree.ml: Blob Int64 Mtm
