lib/pstruct/pextent.mli: Bytes Region
