lib/pstruct/rb_tree.ml: Bytes Int64 Mtm
