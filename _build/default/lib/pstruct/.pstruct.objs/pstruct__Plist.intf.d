lib/pstruct/plist.mli: Bytes Mtm
