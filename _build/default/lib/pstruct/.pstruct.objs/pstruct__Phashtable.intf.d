lib/pstruct/phashtable.mli: Bytes Mtm
