lib/pstruct/shadow_tree.mli: Bytes Region
