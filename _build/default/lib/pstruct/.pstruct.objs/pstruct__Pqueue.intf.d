lib/pstruct/pqueue.mli: Bytes Mtm
