lib/pstruct/bp_tree.mli: Bytes Mtm
