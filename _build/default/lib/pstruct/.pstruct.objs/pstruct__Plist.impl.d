lib/pstruct/plist.ml: Blob Int64 List Mtm
