lib/pstruct/shadow_tree.ml: Array Bytes Fun Int64 List Region
