lib/pstruct/phashtable.ml: Bytes Char Int64 Mtm
