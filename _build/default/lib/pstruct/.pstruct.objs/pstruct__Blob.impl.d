lib/pstruct/blob.ml: Bytes Int64 Mtm
