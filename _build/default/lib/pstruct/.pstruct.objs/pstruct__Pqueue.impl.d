lib/pstruct/pqueue.ml: Blob Int64 Mtm
