lib/pstruct/avl_tree.mli: Bytes Mtm
