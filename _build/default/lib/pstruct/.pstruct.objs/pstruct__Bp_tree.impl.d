lib/pstruct/bp_tree.ml: Blob Int64 List Mtm Option
