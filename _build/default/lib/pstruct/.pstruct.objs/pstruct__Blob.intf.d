lib/pstruct/blob.mli: Bytes Mtm
