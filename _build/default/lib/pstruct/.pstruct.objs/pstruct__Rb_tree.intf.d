lib/pstruct/rb_tree.mli: Bytes Mtm
