lib/pstruct/pextent.ml: Bytes Int64 List Region
