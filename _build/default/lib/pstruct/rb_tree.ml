module Txn = Mtm.Txn

(* Header block: [magic | payload_bytes] [count] [root ptr] [scratch].
   Node block: [left] [right] [parent] [color (0 red, 1 black) | key?]
   kept as separate words for clarity: [left][right][parent][color][key]
   then the inline payload.  40 bytes of fields + 88-byte default
   payload = 128-byte blocks, as in the paper's table 5. *)

let magic = 0x5242L
let default_payload_bytes = 88

type t = { hdr : int; payload : int }

let root t = t.hdr
let payload_bytes t = t.payload

let f_left n = n
let f_right n = n + 8
let f_parent n = n + 16
let f_color n = n + 24
let f_key n = n + 32
let f_payload n = n + 40

let count_addr t = t.hdr + 8
let root_addr t = t.hdr + 16
let scratch_addr t = t.hdr + 24

let red = 0L
let black = 1L

let create tx ~slot ?(payload_bytes = default_payload_bytes) () =
  let hdr = Txn.alloc tx 32 ~slot in
  Txn.store tx hdr
    (Int64.logor (Int64.shift_left magic 48) (Int64.of_int payload_bytes));
  Txn.store tx (hdr + 8) 0L;
  Txn.store tx (hdr + 16) 0L;
  Txn.store tx (hdr + 24) 0L;
  { hdr; payload = payload_bytes }

let attach tx ~root =
  let w = Txn.load tx root in
  if Int64.shift_right_logical w 48 <> magic then
    invalid_arg "Rb_tree.attach: no tree at this address";
  { hdr = root; payload = Int64.to_int (Int64.logand w 0xffffL) }

let get tx a = Int64.to_int (Txn.load tx a)
let color tx n = if n = 0 then black else Txn.load tx (f_color n)

let set_payload tx t node payload =
  let buf = Bytes.make t.payload '\000' in
  Bytes.blit payload 0 buf 0 (min (Bytes.length payload) t.payload);
  Txn.write_bytes tx (f_payload node) buf

(* CLRS rotations, updating the root pointer through the header. *)
let rotate_left tx t x =
  let y = get tx (f_right x) in
  let yl = get tx (f_left y) in
  Txn.store tx (f_right x) (Int64.of_int yl);
  if yl <> 0 then Txn.store tx (f_parent yl) (Int64.of_int x);
  let xp = get tx (f_parent x) in
  Txn.store tx (f_parent y) (Int64.of_int xp);
  if xp = 0 then Txn.store tx (root_addr t) (Int64.of_int y)
  else if get tx (f_left xp) = x then Txn.store tx (f_left xp) (Int64.of_int y)
  else Txn.store tx (f_right xp) (Int64.of_int y);
  Txn.store tx (f_left y) (Int64.of_int x);
  Txn.store tx (f_parent x) (Int64.of_int y)

let rotate_right tx t x =
  let y = get tx (f_left x) in
  let yr = get tx (f_right y) in
  Txn.store tx (f_left x) (Int64.of_int yr);
  if yr <> 0 then Txn.store tx (f_parent yr) (Int64.of_int x);
  let xp = get tx (f_parent x) in
  Txn.store tx (f_parent y) (Int64.of_int xp);
  if xp = 0 then Txn.store tx (root_addr t) (Int64.of_int y)
  else if get tx (f_right xp) = x then Txn.store tx (f_right xp) (Int64.of_int y)
  else Txn.store tx (f_left xp) (Int64.of_int y);
  Txn.store tx (f_right y) (Int64.of_int x);
  Txn.store tx (f_parent x) (Int64.of_int y)

let find_node tx t key =
  let rec go n =
    if n = 0 then 0
    else
      let k = Txn.load tx (f_key n) in
      if key < k then go (get tx (f_left n))
      else if key > k then go (get tx (f_right n))
      else n
  in
  go (get tx (root_addr t))

let insert_fixup tx t z0 =
  let z = ref z0 in
  let continue = ref true in
  while !continue do
    let zp = get tx (f_parent !z) in
    if zp = 0 || color tx zp = black then continue := false
    else begin
      let zpp = get tx (f_parent zp) in
      if zp = get tx (f_left zpp) then begin
        let uncle = get tx (f_right zpp) in
        if color tx uncle = red then begin
          Txn.store tx (f_color zp) black;
          Txn.store tx (f_color uncle) black;
          Txn.store tx (f_color zpp) red;
          z := zpp
        end
        else begin
          if !z = get tx (f_right zp) then begin
            z := zp;
            rotate_left tx t !z
          end;
          let zp = get tx (f_parent !z) in
          let zpp = get tx (f_parent zp) in
          Txn.store tx (f_color zp) black;
          Txn.store tx (f_color zpp) red;
          rotate_right tx t zpp
        end
      end
      else begin
        let uncle = get tx (f_left zpp) in
        if color tx uncle = red then begin
          Txn.store tx (f_color zp) black;
          Txn.store tx (f_color uncle) black;
          Txn.store tx (f_color zpp) red;
          z := zpp
        end
        else begin
          if !z = get tx (f_left zp) then begin
            z := zp;
            rotate_right tx t !z
          end;
          let zp = get tx (f_parent !z) in
          let zpp = get tx (f_parent zp) in
          Txn.store tx (f_color zp) black;
          Txn.store tx (f_color zpp) red;
          rotate_left tx t zpp
        end
      end
    end
  done;
  let r = get tx (root_addr t) in
  Txn.store tx (f_color r) black

let put tx t key payload =
  match find_node tx t key with
  | n when n <> 0 -> set_payload tx t n payload
  | _ ->
      let node = Txn.alloc tx (40 + t.payload) ~slot:(scratch_addr t) in
      Txn.store tx (scratch_addr t) 0L;
      Txn.store tx (f_left node) 0L;
      Txn.store tx (f_right node) 0L;
      Txn.store tx (f_color node) red;
      Txn.store tx (f_key node) key;
      set_payload tx t node payload;
      (* BST insert *)
      let rec descend n parent =
        if n = 0 then parent
        else if key < Txn.load tx (f_key n) then descend (get tx (f_left n)) n
        else descend (get tx (f_right n)) n
      in
      let parent = descend (get tx (root_addr t)) 0 in
      Txn.store tx (f_parent node) (Int64.of_int parent);
      if parent = 0 then Txn.store tx (root_addr t) (Int64.of_int node)
      else if key < Txn.load tx (f_key parent) then
        Txn.store tx (f_left parent) (Int64.of_int node)
      else Txn.store tx (f_right parent) (Int64.of_int node);
      insert_fixup tx t node;
      Txn.store tx (count_addr t)
        (Int64.add (Txn.load tx (count_addr t)) 1L)

let find tx t key =
  match find_node tx t key with
  | 0 -> None
  | n -> Some (Txn.read_bytes tx (f_payload n) t.payload)

(* CLRS delete.  The classic algorithm uses a nil sentinel whose parent
   field the fixup relies on; we track the "fixup position" as a node
   plus its parent explicitly instead. *)
let transplant tx t u v =
  let up = get tx (f_parent u) in
  if up = 0 then Txn.store tx (root_addr t) (Int64.of_int v)
  else if get tx (f_left up) = u then Txn.store tx (f_left up) (Int64.of_int v)
  else Txn.store tx (f_right up) (Int64.of_int v);
  if v <> 0 then Txn.store tx (f_parent v) (Int64.of_int up)

let delete_fixup tx t x0 xparent0 =
  let x = ref x0 and xparent = ref xparent0 in
  let continue = ref true in
  while !continue do
    if !x = get tx (root_addr t) || color tx !x = red then continue := false
    else begin
      let p = !xparent in
      if !x = get tx (f_left p) then begin
        let w = ref (get tx (f_right p)) in
        if color tx !w = red then begin
          Txn.store tx (f_color !w) black;
          Txn.store tx (f_color p) red;
          rotate_left tx t p;
          w := get tx (f_right p)
        end;
        if
          color tx (get tx (f_left !w)) = black
          && color tx (get tx (f_right !w)) = black
        then begin
          Txn.store tx (f_color !w) red;
          x := p;
          xparent := get tx (f_parent p)
        end
        else begin
          if color tx (get tx (f_right !w)) = black then begin
            let wl = get tx (f_left !w) in
            if wl <> 0 then Txn.store tx (f_color wl) black;
            Txn.store tx (f_color !w) red;
            rotate_right tx t !w;
            w := get tx (f_right p)
          end;
          Txn.store tx (f_color !w) (color tx p);
          Txn.store tx (f_color p) black;
          let wr = get tx (f_right !w) in
          if wr <> 0 then Txn.store tx (f_color wr) black;
          rotate_left tx t p;
          x := get tx (root_addr t);
          continue := false
        end
      end
      else begin
        let w = ref (get tx (f_left p)) in
        if color tx !w = red then begin
          Txn.store tx (f_color !w) black;
          Txn.store tx (f_color p) red;
          rotate_right tx t p;
          w := get tx (f_left p)
        end;
        if
          color tx (get tx (f_left !w)) = black
          && color tx (get tx (f_right !w)) = black
        then begin
          Txn.store tx (f_color !w) red;
          x := p;
          xparent := get tx (f_parent p)
        end
        else begin
          if color tx (get tx (f_left !w)) = black then begin
            let wr = get tx (f_right !w) in
            if wr <> 0 then Txn.store tx (f_color wr) black;
            Txn.store tx (f_color !w) red;
            rotate_left tx t !w;
            w := get tx (f_left p)
          end;
          Txn.store tx (f_color !w) (color tx p);
          Txn.store tx (f_color p) black;
          let wl = get tx (f_left !w) in
          if wl <> 0 then Txn.store tx (f_color wl) black;
          rotate_right tx t p;
          x := get tx (root_addr t);
          continue := false
        end
      end
    end
  done;
  if !x <> 0 then Txn.store tx (f_color !x) black

let remove tx t key =
  let z = find_node tx t key in
  if z = 0 then false
  else begin
    let rec minimum n =
      let l = get tx (f_left n) in
      if l = 0 then n else minimum l
    in
    let y_original_color = ref (color tx z) in
    let x = ref 0 and xparent = ref 0 in
    let zl = get tx (f_left z) and zr = get tx (f_right z) in
    if zl = 0 then begin
      x := zr;
      xparent := get tx (f_parent z);
      transplant tx t z zr
    end
    else if zr = 0 then begin
      x := zl;
      xparent := get tx (f_parent z);
      transplant tx t z zl
    end
    else begin
      let y = minimum zr in
      y_original_color := color tx y;
      x := get tx (f_right y);
      if get tx (f_parent y) = z then xparent := y
      else begin
        xparent := get tx (f_parent y);
        transplant tx t y (get tx (f_right y));
        Txn.store tx (f_right y) (Int64.of_int (get tx (f_right z)));
        Txn.store tx (f_parent (get tx (f_right y))) (Int64.of_int y)
      end;
      transplant tx t z y;
      Txn.store tx (f_left y) (Int64.of_int (get tx (f_left z)));
      let yl = get tx (f_left y) in
      if yl <> 0 then Txn.store tx (f_parent yl) (Int64.of_int y);
      Txn.store tx (f_color y) (color tx z)
    end;
    Txn.free_addr tx z;
    if !y_original_color = black then delete_fixup tx t !x !xparent;
    Txn.store tx (count_addr t) (Int64.sub (Txn.load tx (count_addr t)) 1L);
    true
  end

let length tx t = Int64.to_int (Txn.load tx (count_addr t))

let iter tx t f =
  let rec go n =
    if n <> 0 then begin
      go (get tx (f_left n));
      f (Txn.load tx (f_key n)) (Txn.read_bytes tx (f_payload n) t.payload);
      go (get tx (f_right n))
    end
  in
  go (get tx (root_addr t))

let validate tx t =
  let r = get tx (root_addr t) in
  if r <> 0 && color tx r <> black then failwith "Rb_tree: red root";
  let rec check n lo hi =
    if n = 0 then 1
    else begin
      let k = Txn.load tx (f_key n) in
      (match lo with
      | Some l when k <= l -> failwith "Rb_tree: BST order violated"
      | _ -> ());
      (match hi with
      | Some h when k >= h -> failwith "Rb_tree: BST order violated"
      | _ -> ());
      let l = get tx (f_left n) and rt = get tx (f_right n) in
      if color tx n = red && (color tx l = red || color tx rt = red) then
        failwith "Rb_tree: red node with red child";
      if l <> 0 && get tx (f_parent l) <> n then
        failwith "Rb_tree: bad parent pointer";
      if rt <> 0 && get tx (f_parent rt) <> n then
        failwith "Rb_tree: bad parent pointer";
      let bl = check l lo (Some k) in
      let br = check rt (Some k) hi in
      if bl <> br then failwith "Rb_tree: unequal black heights";
      bl + (if color tx n = black then 1 else 0)
    end
  in
  ignore (check r None None)
