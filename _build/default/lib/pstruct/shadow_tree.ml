module Pmem = Region.Pmem

(* Header (64 bytes):
   [magic | payload_bytes] [capacity] [root+1 | count<<32] [high-water]
   The root pointer and the element count share one word so a single
   atomic write publishes both.  Arena of fixed-size node slots follows:
   node = [left+1] [right+1] [key] [payload...].  Slot references are
   index+1 so zeroed memory reads as null. *)

let magic = 0x5354L
let header_bytes = 64

type t = {
  v : Pmem.view;
  base : int;
  payload : int;
  capacity : int;
  mutable free : int list;  (* volatile free slot indexes *)
}

let align8 n = (n + 7) land lnot 7
let node_bytes payload = 24 + align8 payload

let region_bytes_for ~payload_bytes ~capacity =
  header_bytes + (capacity * node_bytes payload_bytes)

let pub_addr t = t.base + 16
let hw_addr t = t.base + 24
let node_addr t slot = t.base + header_bytes + (slot * node_bytes t.payload)

let f_left a = a
let f_right a = a + 8
let f_key a = a + 16
let f_payload a = a + 24

let pack_pub ~root ~count =
  Int64.logor (Int64.of_int root) (Int64.shift_left (Int64.of_int count) 32)

let unpack_pub w =
  ( Int64.to_int (Int64.logand w 0xffff_ffffL),
    Int64.to_int (Int64.shift_right_logical w 32) )

let published t = unpack_pub (Pmem.load t.v (pub_addr t))

let create v ~base ~payload_bytes ~capacity =
  if capacity < 1 || payload_bytes < 0 then
    invalid_arg "Shadow_tree.create: geometry";
  let t =
    { v; base; payload = payload_bytes; capacity;
      free = List.init capacity Fun.id }
  in
  Pmem.wtstore v (base + 8) (Int64.of_int capacity);
  Pmem.wtstore v (pub_addr t) (pack_pub ~root:0 ~count:0);
  Pmem.wtstore v (hw_addr t) 0L;
  Pmem.fence v;
  Pmem.wtstore v base
    (Int64.logor (Int64.shift_left magic 48) (Int64.of_int payload_bytes));
  Pmem.fence v;
  t

let attach v ~base =
  let hdr = Pmem.load v base in
  if Int64.shift_right_logical hdr 48 <> magic then
    invalid_arg "Shadow_tree.attach: no tree at this address";
  let payload = Int64.to_int (Int64.logand hdr 0xffffL) in
  let capacity = Int64.to_int (Pmem.load v (base + 8)) in
  let t = { v; base; payload; capacity; free = [] } in
  (* "After a failure, a program must find and release unreferenced new
     data": mark from the published root, sweep the rest. *)
  let marked = Array.make capacity false in
  let root, _ = published t in
  let rec mark slot_ref =
    if slot_ref <> 0 then begin
      let slot = slot_ref - 1 in
      if not marked.(slot) then begin
        marked.(slot) <- true;
        let a = node_addr t slot in
        mark (Int64.to_int (Pmem.load v (f_left a)));
        mark (Int64.to_int (Pmem.load v (f_right a)))
      end
    end
  in
  mark root;
  let high_water = Int64.to_int (Pmem.load v (hw_addr t)) in
  let leaked = ref 0 in
  for slot = capacity - 1 downto 0 do
    if not marked.(slot) then begin
      t.free <- slot :: t.free;
      if slot < high_water then incr leaked
    end
  done;
  (t, !leaked)

let take_slot t =
  match t.free with
  | [] -> failwith "Shadow_tree: arena full"
  | slot :: rest ->
      t.free <- rest;
      (* monotonic allocation high-water mark, published before use so
         recovery can tell leaked slots from virgin ones *)
      let hw = Int64.to_int (Pmem.load t.v (hw_addr t)) in
      if slot >= hw then begin
        Pmem.wtstore t.v (hw_addr t) (Int64.of_int (slot + 1));
        Pmem.fence t.v
      end;
      slot

(* Write a fresh node; streaming stores, deliberately unfenced — shadow
   updates have no ordering constraints among the new data's stores. *)
let write_node t slot ~left ~right ~key payload =
  let a = node_addr t slot in
  Pmem.wtstore t.v (f_left a) (Int64.of_int left);
  Pmem.wtstore t.v (f_right a) (Int64.of_int right);
  Pmem.wtstore t.v (f_key a) key;
  let buf = Bytes.make (align8 t.payload) '\000' in
  Bytes.blit payload 0 buf 0 (min (Bytes.length payload) t.payload);
  Pmem.wtstore_bytes t.v (f_payload a) buf 0 (Bytes.length buf)

let node_payload t slot_ref =
  let a = node_addr t (slot_ref - 1) in
  let buf = Bytes.create t.payload in
  Pmem.load_bytes t.v (f_payload a) buf 0 t.payload;
  buf

let put t key payload =
  let root, count = published t in
  (* collect the path from root to the key's position *)
  let rec path acc slot_ref =
    if slot_ref = 0 then (acc, None)
    else
      let a = node_addr t (slot_ref - 1) in
      let k = Pmem.load t.v (f_key a) in
      if key < k then path ((slot_ref, `Left) :: acc) (Int64.to_int (Pmem.load t.v (f_left a)))
      else if key > k then
        path ((slot_ref, `Right) :: acc) (Int64.to_int (Pmem.load t.v (f_right a)))
      else (acc, Some slot_ref)
  in
  let rev_path, existing = path [] root in
  (* the new bottom node *)
  let bottom = take_slot t in
  (match existing with
  | Some slot_ref ->
      let a = node_addr t (slot_ref - 1) in
      write_node t bottom
        ~left:(Int64.to_int (Pmem.load t.v (f_left a)))
        ~right:(Int64.to_int (Pmem.load t.v (f_right a)))
        ~key payload
  | None -> write_node t bottom ~left:0 ~right:0 ~key payload);
  (* copy the ancestors, bottom-up, each pointing at the fresh child *)
  let replaced = ref (match existing with Some s -> [ s - 1 ] | None -> []) in
  let new_root =
    List.fold_left
      (fun child (slot_ref, dir) ->
        let a = node_addr t (slot_ref - 1) in
        let copy = take_slot t in
        let left, right =
          match dir with
          | `Left -> (child + 1, Int64.to_int (Pmem.load t.v (f_right a)))
          | `Right -> (Int64.to_int (Pmem.load t.v (f_left a)), child + 1)
        in
        write_node t copy ~left ~right
          ~key:(Pmem.load t.v (f_key a))
          (node_payload t slot_ref);
        replaced := (slot_ref - 1) :: !replaced;
        copy)
      bottom rev_path
  in
  (* shadow update's single ordering constraint: the new data completes
     before the reference moves *)
  Pmem.fence t.v;
  let count' = if existing = None then count + 1 else count in
  Pmem.wtstore t.v (pub_addr t) (pack_pub ~root:(new_root + 1) ~count:count');
  Pmem.fence t.v;
  (* the old path is unreferenced now; recycle it *)
  t.free <- !replaced @ t.free

let find t key =
  let root, _ = published t in
  let rec go slot_ref =
    if slot_ref = 0 then None
    else
      let a = node_addr t (slot_ref - 1) in
      let k = Pmem.load t.v (f_key a) in
      if key < k then go (Int64.to_int (Pmem.load t.v (f_left a)))
      else if key > k then go (Int64.to_int (Pmem.load t.v (f_right a)))
      else Some (node_payload t slot_ref)
  in
  go root

let length t = snd (published t)

let iter t f =
  let root, _ = published t in
  let rec go slot_ref =
    if slot_ref <> 0 then begin
      let a = node_addr t (slot_ref - 1) in
      go (Int64.to_int (Pmem.load t.v (f_left a)));
      f (Pmem.load t.v (f_key a)) (node_payload t slot_ref);
      go (Int64.to_int (Pmem.load t.v (f_right a)))
    end
  in
  go root

let live_nodes t = t.capacity - List.length t.free
let free_nodes t = List.length t.free
