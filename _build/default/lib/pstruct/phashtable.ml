module Txn = Mtm.Txn

(* Header block (576 bytes):
   [magic | bucket_count] [buckets array address], then 8 sharded entry
   counters spaced a cache line apart — the STM locks at line
   granularity, so shards must not share lines or every transaction
   would conflict on the count.

   Chain node block, with key and value inlined so an insert touches as
   few distinct cache lines as the paper's measurement (5 for a 64-byte
   value):
   [next] [hash] [key len | value len] [key bytes...] [value bytes...]
   both byte ranges 8-aligned. *)

let magic = 0x48L
let counter_shards = 8
let counter_stride = 64

type t = { root : int; buckets : int; array_addr : int }

let root t = t.root

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let hash_bytes b =
  let h = ref 0xcbf29ce484222325L in
  Bytes.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    b;
  Int64.logand !h Int64.max_int

let pack_header buckets =
  Int64.logor (Int64.shift_left magic 56) (Int64.of_int buckets)

let pack_lens ~klen ~vlen =
  Int64.logor (Int64.of_int klen) (Int64.shift_left (Int64.of_int vlen) 24)

let unpack_lens w =
  ( Int64.to_int (Int64.logand w 0xff_ffffL),
    Int64.to_int (Int64.logand (Int64.shift_right_logical w 24) 0xff_ffffL) )

let align8 n = (n + 7) land lnot 7

let node_bytes ~klen ~vlen = 24 + align8 klen + align8 vlen
let key_addr node = node + 24
let value_addr node klen = node + 24 + align8 klen

(* Shard by the updating thread, not the key: concurrent transactions
   then never conflict on the count. *)
let counter_addr t tx =
  t.root + 64
  + (counter_stride * (Txn.thread_id tx land (counter_shards - 1)))

let create tx ~slot ~buckets =
  let buckets = next_pow2 (max 1 buckets) in
  let root = Txn.alloc tx (64 + (counter_stride * counter_shards)) ~slot in
  Txn.store tx root (pack_header buckets);
  for i = 0 to counter_shards - 1 do
    Txn.store tx (root + 64 + (counter_stride * i)) 0L
  done;
  let array_addr = Txn.alloc tx (buckets * 8) ~slot:(root + 8) in
  (* fresh blocks may hold stale bytes from freed predecessors *)
  for i = 0 to buckets - 1 do
    Txn.store tx (array_addr + (i * 8)) 0L
  done;
  { root; buckets; array_addr }

let attach tx ~root =
  let hdr = Txn.load tx root in
  if Int64.shift_right_logical hdr 56 <> magic then
    invalid_arg "Phashtable.attach: no table at this address";
  let buckets = Int64.to_int (Int64.logand hdr 0xff_ffffL) in
  { root; buckets; array_addr = Int64.to_int (Txn.load tx (root + 8)) }

let bucket_addr t key_hash =
  t.array_addr + (Int64.to_int key_hash land (t.buckets - 1) * 8)

let node_key tx node =
  let klen, _ = unpack_lens (Txn.load tx (node + 16)) in
  Txn.read_bytes tx (key_addr node) klen

let node_value tx node =
  let klen, vlen = unpack_lens (Txn.load tx (node + 16)) in
  Txn.read_bytes tx (value_addr node klen) vlen

(* Walk the chain; returns (slot that points at the node, node). *)
let find_node tx t key =
  let h = hash_bytes key in
  let rec walk slot =
    match Int64.to_int (Txn.load tx slot) with
    | 0 -> None
    | node ->
        if Txn.load tx (node + 8) = h && node_key tx node = key then
          Some (slot, node)
        else walk node  (* node+0 is the next pointer *)
  in
  walk (bucket_addr t h)

let bump tx t delta =
  let a = counter_addr t tx in
  Txn.store tx a (Int64.add (Txn.load tx a) delta)

let write_node_contents tx node key value =
  Txn.store tx (node + 16)
    (pack_lens ~klen:(Bytes.length key) ~vlen:(Bytes.length value));
  if Bytes.length key > 0 then Txn.write_bytes tx (key_addr node) key;
  if Bytes.length value > 0 then
    Txn.write_bytes tx (value_addr node (Bytes.length key)) value

(* Allocate and fill a fresh node whose [next] is [next]; the node
   address lands in [link_slot] transactionally. *)
let fresh_node tx key value ~link_slot ~next =
  let node =
    Txn.alloc tx
      (node_bytes ~klen:(Bytes.length key) ~vlen:(Bytes.length value))
      ~slot:link_slot
  in
  Txn.store tx node next;
  Txn.store tx (node + 8) (hash_bytes key);
  write_node_contents tx node key value;
  node

let put tx t key value =
  match find_node tx t key with
  | Some (slot, node) ->
      let klen, vlen = unpack_lens (Txn.load tx (node + 16)) in
      if klen = Bytes.length key && align8 vlen = align8 (Bytes.length value)
      then
        (* in-place update: the block still fits the new value *)
        write_node_contents tx node key value
      else begin
        (* size changes: replace the node *)
        let next = Txn.load tx node in
        ignore (fresh_node tx key value ~link_slot:slot ~next);
        Txn.free_addr tx node
      end
  | None ->
      let h = hash_bytes key in
      let bucket = bucket_addr t h in
      let old_head = Txn.load tx bucket in
      ignore (fresh_node tx key value ~link_slot:bucket ~next:old_head);
      bump tx t 1L

let find tx t key =
  match find_node tx t key with
  | None -> None
  | Some (_, node) -> Some (node_value tx node)

let remove tx t key =
  match find_node tx t key with
  | None -> false
  | Some (slot, node) ->
      Txn.store tx slot (Txn.load tx node);
      Txn.free_addr tx node;
      bump tx t (-1L);
      true

let length tx t =
  let total = ref 0L in
  for i = 0 to counter_shards - 1 do
    total :=
      Int64.add !total (Txn.load tx (t.root + 64 + (counter_stride * i)))
  done;
  Int64.to_int !total

let iter tx t f =
  for i = 0 to t.buckets - 1 do
    let rec walk node =
      if node <> 0 then begin
        f (node_key tx node) (node_value tx node);
        walk (Int64.to_int (Txn.load tx node))
      end
    in
    walk (Int64.to_int (Txn.load tx (t.array_addr + (i * 8))))
  done
