module Pmem = Region.Pmem

(* Header (32 bytes): [magic] [len] [tail | records<<40].
   Tail and record count share a word so one atomic write publishes an
   append.  Records: [byte length][bytes, zero-padded to 8]. *)

let magic = 0x455854L
let header_bytes = 32

type t = { v : Pmem.view; base : int; len : int }

let pub_addr t = t.base + 16
let data_base t = t.base + header_bytes

let align8 n = (n + 7) land lnot 7

let pack_pub ~tail ~records =
  Int64.logor (Int64.of_int tail)
    (Int64.shift_left (Int64.of_int records) 40)

let unpack_pub w =
  ( Int64.to_int (Int64.logand w 0xff_ffff_ffffL),
    Int64.to_int (Int64.shift_right_logical w 40) )

let published t = unpack_pub (Pmem.load t.v (pub_addr t))

let create v ~base ~len =
  if len <= header_bytes + 16 then invalid_arg "Pextent.create: length";
  let t = { v; base; len = len - header_bytes } in
  Pmem.wtstore v (base + 8) (Int64.of_int t.len);
  Pmem.wtstore v (pub_addr t) (pack_pub ~tail:0 ~records:0);
  Pmem.fence v;
  Pmem.wtstore v base magic;
  Pmem.fence v;
  t

let attach v ~base =
  if Pmem.load v base <> magic then
    invalid_arg "Pextent.attach: no extent at this address";
  { v; base; len = Int64.to_int (Pmem.load v (base + 8)) }

let used_bytes t = fst (published t)
let records t = snd (published t)

let append t b =
  let tail, count = published t in
  let need = 8 + align8 (Bytes.length b) in
  if tail + need > t.len then failwith "Pextent: full";
  let a = data_base t + tail in
  (* the individual stores of an append are unordered (table 2) *)
  Pmem.wtstore t.v a (Int64.of_int (Bytes.length b));
  let padded = Bytes.make (align8 (Bytes.length b)) '\000' in
  Bytes.blit b 0 padded 0 (Bytes.length b);
  if Bytes.length padded > 0 then
    Pmem.wtstore_bytes t.v (a + 8) padded 0 (Bytes.length padded);
  Pmem.fence t.v;
  (* separate appends complete in order: the tail publishes this one *)
  Pmem.wtstore t.v (pub_addr t) (pack_pub ~tail:(tail + need) ~records:(count + 1));
  Pmem.fence t.v

let iter t f =
  let tail, _ = published t in
  let pos = ref 0 in
  while !pos < tail do
    let a = data_base t + !pos in
    let len = Int64.to_int (Pmem.load t.v a) in
    let b = Bytes.create len in
    Pmem.load_bytes t.v (a + 8) b 0 len;
    f b;
    pos := !pos + 8 + align8 len
  done

let to_list t =
  let acc = ref [] in
  iter t (fun b -> acc := b :: !acc);
  List.rev !acc

let reset t =
  Pmem.wtstore t.v (pub_addr t) (pack_pub ~tail:0 ~records:0);
  Pmem.fence t.v
