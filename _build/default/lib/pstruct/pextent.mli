(** A persistent append-only extent — the {e append update} mechanism of
    paper table 2 in its simplest form ("log, extent").

    Length-prefixed records are written into free space beyond the
    current tail (stores unordered), fenced, and then the tail pointer
    advances with one atomic word write.  "After a failure, an
    incomplete append (there can be only one) is discarded" — the tail
    never covered it.  Unlike {!Pmlog.Rawl}, the extent does not wrap:
    it is the persistent analogue of an append-only file, truncatable
    only as a whole. *)

type t

val create : Region.Pmem.view -> base:int -> len:int -> t
(** Format an extent over [len] bytes of fresh persistent memory. *)

val attach : Region.Pmem.view -> base:int -> t
(** Reattach; the tail word alone defines the durable contents. *)

val append : t -> Bytes.t -> unit
(** Durable on return (one fence for the data, one for the tail).
    Raises [Failure] when the extent is full. *)

val iter : t -> (Bytes.t -> unit) -> unit
val to_list : t -> Bytes.t list
val records : t -> int
val used_bytes : t -> int
val reset : t -> unit
(** Drop everything: tail back to zero, atomically. *)
