(** A persistent binary search tree updated by {e shadow updates} —
    the third consistency mechanism of paper table 2.

    No transactions: every update writes a completely new path of nodes
    into free space (stores unordered), fences once, and then publishes
    the new root with a single atomic pointer write — "the reference can
    only be modified after the new data has completed writing".  Crash
    at any point leaves either the old or the new tree, never a mix.

    The price the paper names: new memory for every update, and "after
    a failure, a program must find and release unreferenced new data" —
    {!attach} performs exactly that mark-and-sweep over the tree's node
    arena, reporting how many leaked nodes it reclaimed.

    Nodes are fixed-size (key + payload chosen at {!create}) and live in
    a dedicated arena inside the tree's region; the free list is
    volatile.  Unbalanced (plain BST): the mechanism, not asymptotics,
    is the point — the paper recommends shadow updates for "tree-like
    structures where data is reachable through a single pointer". *)

type t

val region_bytes_for : payload_bytes:int -> capacity:int -> int
(** Region size needed for a tree of at most [capacity] live nodes. *)

val create :
  Region.Pmem.view -> base:int -> payload_bytes:int -> capacity:int -> t
(** Format a tree over fresh zeroed persistent memory. *)

val attach : Region.Pmem.view -> base:int -> t * int
(** Recover: mark the nodes reachable from the published root, sweep the
    rest onto the free list.  Returns the handle and how many
    previously-used unreferenced nodes were swept — the in-flight
    update a crash cut short plus any shadow garbage not yet reused. *)

val put : t -> int64 -> Bytes.t -> unit
(** Shadow-update insert/replace: durable on return (one fence for the
    new path, one atomic root swing).  Raises [Failure] when the arena
    is full. *)

val find : t -> int64 -> Bytes.t option
val length : t -> int
val iter : t -> (int64 -> Bytes.t -> unit) -> unit

val live_nodes : t -> int
val free_nodes : t -> int
