module Txn = Mtm.Txn

(* Header: [magic] [count] [head] [scratch]; node: [next] [value blob]. *)

let magic = 0x504CL

type t = { hdr : int }

let root t = t.hdr
let count_addr t = t.hdr + 8
let head_addr t = t.hdr + 16

let create tx ~slot =
  let hdr = Txn.alloc tx 32 ~slot in
  Txn.store tx hdr magic;
  Txn.store tx (hdr + 8) 0L;
  Txn.store tx (hdr + 16) 0L;
  Txn.store tx (hdr + 24) 0L;
  { hdr }

let attach tx ~root =
  if Txn.load tx root <> magic then
    invalid_arg "Plist.attach: no list at this address";
  { hdr = root }

let push tx t value =
  let old_head = Txn.load tx (head_addr t) in
  let node = Txn.alloc tx 16 ~slot:(head_addr t) in
  Txn.store tx node old_head;
  ignore (Blob.alloc tx ~slot:(node + 8) value);
  Txn.store tx (count_addr t) (Int64.add (Txn.load tx (count_addr t)) 1L)

let pop tx t =
  match Int64.to_int (Txn.load tx (head_addr t)) with
  | 0 -> None
  | node ->
      let value = Blob.read tx (Int64.to_int (Txn.load tx (node + 8))) in
      Txn.store tx (head_addr t) (Txn.load tx node);
      Blob.free tx ~slot:(node + 8);
      Txn.free_addr tx node;
      Txn.store tx (count_addr t) (Int64.sub (Txn.load tx (count_addr t)) 1L);
      Some value

let length tx t = Int64.to_int (Txn.load tx (count_addr t))

let iter tx t f =
  let rec walk node =
    if node <> 0 then begin
      f (Blob.read tx (Int64.to_int (Txn.load tx (node + 8))));
      walk (Int64.to_int (Txn.load tx node))
    end
  in
  walk (Int64.to_int (Txn.load tx (head_addr t)))

let to_list tx t =
  let acc = ref [] in
  iter tx t (fun b -> acc := b :: !acc);
  List.rev !acc
