(** A persistent singly-linked list (newest first).

    The simplest structure built on the transactional API; used by the
    quickstart example as an append-style log of application records.
    Demonstrates the paper's figure-3 idiom: allocate a node with a
    transactional [pmalloc], fill it, link it — all in one atomic
    block. *)

type t

val create : Mtm.Txn.t -> slot:int -> t
val attach : Mtm.Txn.t -> root:int -> t
val root : t -> int

val push : Mtm.Txn.t -> t -> Bytes.t -> unit
(** Prepend a value. *)

val pop : Mtm.Txn.t -> t -> Bytes.t option
(** Remove and return the newest value. *)

val length : Mtm.Txn.t -> t -> int

val iter : Mtm.Txn.t -> t -> (Bytes.t -> unit) -> unit
(** Newest to oldest. *)

val to_list : Mtm.Txn.t -> t -> Bytes.t list
