(** A persistent red-black tree with fixed-size inline payloads.

    The structure of the paper's serialization comparison (table 5):
    "the cost of maintaining a red-black tree with 128 byte nodes in
    persistent memory" versus serializing it with Boost.  Nodes carry
    their payload inline, so with the default payload size a node block
    is exactly 128 bytes.  Classic CLRS algorithms (parent pointers,
    insert/delete fixups) executed under durable transactions. *)

type t

val default_payload_bytes : int
(** 88, making the node block exactly 128 bytes. *)

val create : Mtm.Txn.t -> slot:int -> ?payload_bytes:int -> unit -> t
val attach : Mtm.Txn.t -> root:int -> t
val root : t -> int
val payload_bytes : t -> int

val put : Mtm.Txn.t -> t -> int64 -> Bytes.t -> unit
(** Insert or overwrite; the payload is truncated or zero-padded to the
    tree's payload size. *)

val find : Mtm.Txn.t -> t -> int64 -> Bytes.t option
val remove : Mtm.Txn.t -> t -> int64 -> bool
val length : Mtm.Txn.t -> t -> int
val iter : Mtm.Txn.t -> t -> (int64 -> Bytes.t -> unit) -> unit

val validate : Mtm.Txn.t -> t -> unit
(** Red-black invariants: root black, no red node with a red child,
    equal black height on every path, BST order.  Test hook. *)
