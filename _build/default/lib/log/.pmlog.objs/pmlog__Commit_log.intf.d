lib/log/commit_log.mli: Region
