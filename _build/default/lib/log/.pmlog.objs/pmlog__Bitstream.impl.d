lib/log/bitstream.ml: Int64
