lib/log/rawl.mli: Region
