lib/log/commit_log.ml: Array Int64 List Region
