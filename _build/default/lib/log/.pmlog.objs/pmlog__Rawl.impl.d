lib/log/rawl.ml: Array Bitstream Int64 List Region Scm
