lib/log/bitstream.mli:
