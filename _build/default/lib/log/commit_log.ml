module Pmem = Region.Pmem

type t = {
  v : Pmem.view;
  base : int;
  cap : int;
  mutable head_off : int;
  mutable head_seq : int;  (* sequence number of the record at head *)
  mutable tail_off : int;
  mutable next_seq : int;
}

let header_bytes = 64
let magic = 0xC3L

let region_bytes_for ~cap_words = header_bytes + (8 * cap_words)

let max_record_words t = t.cap - 3

let capacity t = t.cap
let used_words t = (t.tail_off - t.head_off + t.cap) mod t.cap
let free_words t = t.cap - 1 - used_words t

let head_addr t = t.base
let cap_addr t = t.base + 8
let slot_addr t pos = t.base + header_bytes + (8 * (pos mod t.cap))

(* Head word: offset in bits 0..23, sequence in bits 24..62. *)
let pack_head ~off ~seq =
  Int64.logor (Int64.of_int off) (Int64.shift_left (Int64.of_int seq) 24)

let unpack_head w =
  (Int64.to_int (Int64.logand w 0xff_ffffL),
   Int64.to_int (Int64.shift_right_logical w 24))

let pack_hdr n = Int64.logor (Int64.shift_left magic 56) (Int64.of_int n)

let unpack_hdr w =
  if Int64.shift_right_logical w 56 <> magic then None
  else Some (Int64.to_int (Int64.logand w 0xff_ffff_ffff_ffffL))

let create v ~base ~cap_words =
  if cap_words < 4 then invalid_arg "Commit_log.create: capacity too small";
  let t =
    { v; base; cap = cap_words; head_off = 0; head_seq = 0; tail_off = 0;
      next_seq = 0 }
  in
  Pmem.wtstore v (cap_addr t) (Int64.of_int cap_words);
  Pmem.wtstore v (head_addr t) (pack_head ~off:0 ~seq:0);
  Pmem.fence v;
  t

type append_result = Appended of int | Full

let append t payload =
  let n = Array.length payload in
  if n = 0 then invalid_arg "Commit_log.append: empty record";
  let span = n + 2 in
  if span > free_words t then Full
  else begin
    Pmem.wtstore t.v (slot_addr t t.tail_off) (pack_hdr n);
    Array.iteri
      (fun i w -> Pmem.wtstore t.v (slot_addr t (t.tail_off + 1 + i)) w)
      payload;
    Pmem.fence t.v;  (* first fence: data is stable *)
    Pmem.wtstore t.v
      (slot_addr t (t.tail_off + 1 + n))
      (Int64.of_int t.next_seq);
    Pmem.fence t.v;  (* second fence: commit record is stable *)
    t.tail_off <- (t.tail_off + span) mod t.cap;
    t.next_seq <- t.next_seq + 1;
    Appended span
  end

let set_head t ~off ~seq =
  Pmem.wtstore t.v (head_addr t) (pack_head ~off ~seq);
  Pmem.fence t.v;
  t.head_off <- off;
  t.head_seq <- seq

let truncate_all t = set_head t ~off:t.tail_off ~seq:t.next_seq

let advance_head t ~words ~records =
  if words < 0 || words > used_words t then
    invalid_arg "Commit_log.advance_head: beyond tail";
  set_head t ~off:((t.head_off + words) mod t.cap) ~seq:(t.head_seq + records)

let attach v ~base =
  let cap = Int64.to_int (Pmem.load v (base + 8)) in
  if cap < 4 then failwith "Commit_log.attach: no log at this address";
  let head_off, head_seq = unpack_head (Pmem.load v base) in
  let t =
    { v; base; cap; head_off; head_seq; tail_off = head_off;
      next_seq = head_seq }
  in
  let records = ref [] in
  let pos = ref head_off and seq = ref head_seq in
  let budget = ref (cap - 1) in
  let continue_scan = ref true in
  while !continue_scan do
    match unpack_hdr (Pmem.load v (slot_addr t !pos)) with
    | None -> continue_scan := false
    | Some n ->
        if n < 1 || n + 2 > !budget then continue_scan := false
        else if Pmem.load v (slot_addr t (!pos + 1 + n)) <> Int64.of_int !seq
        then continue_scan := false
        else begin
          let payload = Array.make n 0L in
          for i = 0 to n - 1 do
            payload.(i) <- Pmem.load v (slot_addr t (!pos + 1 + i))
          done;
          records := payload :: !records;
          pos := (!pos + n + 2) mod cap;
          budget := !budget - (n + 2);
          incr seq
        end
  done;
  t.tail_off <- !pos;
  t.next_seq <- !seq;
  (t, List.rev !records)
