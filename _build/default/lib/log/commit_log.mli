(** The commit-record log: the baseline the tornbit RAWL is evaluated
    against in table 6.

    This is "the common solution in file systems": write the data, wait
    for it with a fence, write a commit record, wait for it with a
    second fence (paper section 4.4).  Every append therefore costs two
    long-latency fences where the RAWL costs one — but no bit
    manipulation, which is why it wins for records above ~2 KiB.

    Same circular-buffer structure as {!Rawl}; the commit record carries
    a monotonically increasing sequence number so stale buffer contents
    can never be mistaken for a fresh record. *)

type t

val region_bytes_for : cap_words:int -> int
val max_record_words : t -> int

val create : Region.Pmem.view -> base:int -> cap_words:int -> t

val attach : Region.Pmem.view -> base:int -> t * int64 array list
(** Recover: complete records from head to tail; a record whose commit
    word is missing or out of sequence ends the scan and is discarded. *)

type append_result = Appended of int | Full

val append : t -> int64 array -> append_result
(** Write data, fence, write the commit record, fence: durable on
    return (unlike {!Rawl.append}, there is no separate flush step —
    the second fence is what the mechanism is). *)

val truncate_all : t -> unit

val advance_head : t -> words:int -> records:int -> unit
(** Consume [words] stored words holding [records] records. *)

val used_words : t -> int
val free_words : t -> int
val capacity : t -> int
