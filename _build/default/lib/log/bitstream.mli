(** Bit-stream packing for the tornbit RAWL (paper section 4.4).

    The log manager "treats the incoming 64-bit words to be written to
    the log as a stream of bits.  It forms and writes out to the log
    64-bit words that are composed of 63 bits taken from the head of the
    stream and the proper torn bit."  The packer implements exactly
    that: 64-bit payload words in, 63-bit chunks out (LSB first); the
    unpacker reverses it.  The torn bit itself (bit 63) is applied by
    the log, not here. *)

val stored_words_for : int -> int
(** [stored_words_for n] is how many 63-bit stored words hold [n]
    64-bit payload words: ceil(64n / 63). *)

module Packer : sig
  type t

  val create : emit:(int64 -> unit) -> t
  (** [emit] receives each completed 63-bit chunk (bit 63 clear). *)

  val push : t -> int64 -> unit
  (** Feed one 64-bit payload word into the stream. *)

  val flush : t -> unit
  (** Pad any leftover bits with zeros and emit them; resets the packer
      (per-record alignment: every record starts on a stored-word
      boundary). *)
end

module Unpacker : sig
  type t

  val create : unit -> t

  val feed : t -> int64 -> unit
  (** Feed one 63-bit stored chunk (bit 63 is ignored). *)

  val take : t -> int64 option
  (** Next reassembled 64-bit payload word, once enough bits arrived. *)

  val reset : t -> unit
  (** Drop leftover padding bits at a record boundary. *)
end
