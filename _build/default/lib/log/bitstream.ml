let stored_words_for n = ((64 * n) + 62) / 63

let mask63 = 0x7fff_ffff_ffff_ffffL

module Packer = struct
  type t = {
    emit : int64 -> unit;
    mutable acc : int64;  (* low [nbits] bits are pending stream bits *)
    mutable nbits : int;  (* 0..62 between pushes *)
  }

  let create ~emit = { emit; acc = 0L; nbits = 0 }

  let push t w =
    (* Invariant: 0 <= t.nbits <= 62.  The combined nbits + 64 bits
       always yield at least one full 63-bit chunk. *)
    if t.nbits = 0 then begin
      t.emit (Int64.logand w mask63);
      t.acc <- Int64.shift_right_logical w 63;
      t.nbits <- 1
    end
    else begin
      let chunk =
        Int64.logand (Int64.logor t.acc (Int64.shift_left w t.nbits)) mask63
      in
      t.emit chunk;
      (* 63 - nbits bits of [w] were consumed; nbits + 1 remain. *)
      t.acc <- Int64.shift_right_logical w (63 - t.nbits);
      t.nbits <- t.nbits + 1;
      if t.nbits = 63 then begin
        t.emit (Int64.logand t.acc mask63);
        t.acc <- 0L;
        t.nbits <- 0
      end
    end

  let flush t =
    if t.nbits > 0 then begin
      t.emit (Int64.logand t.acc mask63);
      t.acc <- 0L;
      t.nbits <- 0
    end
end

module Unpacker = struct
  type t = {
    mutable acc : int64;  (* low [nbits] pending bits *)
    mutable nbits : int;  (* 0..63 between operations *)
    mutable carry : int64;  (* bits overflowing past 63 in acc *)
    mutable carry_bits : int;
  }

  let create () = { acc = 0L; nbits = 0; carry = 0L; carry_bits = 0 }

  let reset t =
    t.acc <- 0L;
    t.nbits <- 0;
    t.carry <- 0L;
    t.carry_bits <- 0

  let feed t chunk =
    let chunk = Int64.logand chunk mask63 in
    if t.nbits = 0 then begin
      t.acc <- chunk;
      t.nbits <- 63
    end
    else begin
      (* nbits <= 63; appending 63 more may overflow into carry. *)
      if t.nbits = 64 then invalid_arg "Bitstream.Unpacker.feed: take first";
      t.acc <- Int64.logor t.acc (Int64.shift_left chunk t.nbits);
      let used = 64 - t.nbits in
      if used < 63 then begin
        t.carry <- Int64.shift_right_logical chunk used;
        t.carry_bits <- 63 - used
      end;
      t.nbits <- min 64 (t.nbits + 63)
    end

  let take t =
    if t.nbits < 64 then None
    else begin
      let w = t.acc in
      t.acc <- t.carry;
      t.nbits <- t.carry_bits;
      t.carry <- 0L;
      t.carry_bits <- 0;
      Some w
    end
end
