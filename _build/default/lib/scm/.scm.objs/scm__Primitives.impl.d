lib/scm/primitives.ml: Bytes Cache Env Latency_model Wc_buffer Word
