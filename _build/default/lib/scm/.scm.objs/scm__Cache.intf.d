lib/scm/cache.mli: Bytes Scm_device
