lib/scm/crash.mli: Env
