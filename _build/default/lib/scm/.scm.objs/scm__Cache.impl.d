lib/scm/cache.ml: Array Bytes Hashtbl List Random Scm_device Word
