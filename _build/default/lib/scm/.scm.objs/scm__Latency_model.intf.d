lib/scm/latency_model.mli:
