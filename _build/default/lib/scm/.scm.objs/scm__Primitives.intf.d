lib/scm/primitives.mli: Bytes Env
