lib/scm/env.ml: Cache Latency_model Random Scm_device Wc_buffer
