lib/scm/wc_buffer.ml: Array Hashtbl Option Printf Queue Random Scm_device Word
