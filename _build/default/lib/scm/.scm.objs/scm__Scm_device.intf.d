lib/scm/scm_device.mli: Bytes
