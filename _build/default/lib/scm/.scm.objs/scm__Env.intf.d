lib/scm/env.mli: Cache Latency_model Random Scm_device Wc_buffer
