lib/scm/wc_buffer.mli: Random Scm_device
