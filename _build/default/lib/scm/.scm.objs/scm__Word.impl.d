lib/scm/word.ml: Bytes Char Int64 String
