lib/scm/crash.ml: Cache Env List Random Wc_buffer
