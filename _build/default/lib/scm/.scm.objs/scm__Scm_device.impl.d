lib/scm/scm_device.ml: Array Bytes Fun Printf String Word
