lib/scm/latency_model.ml:
