lib/scm/word.mli: Bytes
