type t = {
  pcm_write_ns : int;
  write_bandwidth_bytes_per_us : int;
  media_banks : int;
  cache_hit_ns : int;
  dram_read_ns : int;
  fence_base_ns : int;
  wc_post_ns : int;
  bit_pack_ns_per_word : int;
  stm_access_ns : int;
  txn_begin_ns : int;
  txn_commit_ns : int;
  timestamp_ns : int;
}

let default =
  {
    pcm_write_ns = 150;
    write_bandwidth_bytes_per_us = 4096;
    media_banks = 4;
    cache_hit_ns = 2;
    dram_read_ns = 60;
    fence_base_ns = 25;
    wc_post_ns = 3;
    bit_pack_ns_per_word = 1;
    stm_access_ns = 35;
    txn_begin_ns = 80;
    txn_commit_ns = 120;
    timestamp_ns = 15;
  }

let with_pcm_write_ns m ns = { m with pcm_write_ns = ns }

let streaming_write_ns m bytes =
  if bytes = 0 then 0
  else
    let transfer = bytes * 1000 / m.write_bandwidth_bytes_per_us in
    max m.pcm_write_ns transfer

type technology = {
  name : string;
  availability : string;
  read_latency : string;
  write_latency : string;
  endurance : string;
}

let technologies =
  [
    { name = "DRAM"; availability = "today"; read_latency = "60 ns";
      write_latency = "60 ns"; endurance = "> 10^16" };
    { name = "NAND Flash"; availability = "today"; read_latency = "25 us";
      write_latency = "200-500 us"; endurance = "10^4 - 10^5" };
    { name = "PCM"; availability = "today"; read_latency = "115 ns";
      write_latency = "120 us"; endurance = "10^8" };
    { name = "PCM"; availability = "prospective"; read_latency = "50-85 ns";
      write_latency = "150-1000 ns"; endurance = "10^8 - 10^12" };
    { name = "STT-RAM"; availability = "prospective"; read_latency = "6 ns";
      write_latency = "13 ns"; endurance = "10^15" };
  ]
