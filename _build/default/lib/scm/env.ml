type machine = {
  dev : Scm_device.t;
  cache : Cache.t;
  latency : Latency_model.t;
  crash_rng : Random.State.t;
  mutable wc_buffers : Wc_buffer.t list;
  mutable media_busy_until : int;
}

type t = {
  machine : machine;
  wc : Wc_buffer.t;
  delay : int -> unit;
  now : unit -> int;
}

let make_machine ?(latency = Latency_model.default) ?cache_capacity_lines
    ?(seed = 42) ~nframes () =
  let dev = Scm_device.create ~nframes () in
  let cache = Cache.create ?capacity_lines:cache_capacity_lines ~seed dev in
  {
    dev;
    cache;
    latency;
    crash_rng = Random.State.make [| seed; 0x5eed |];
    wc_buffers = [];
    media_busy_until = 0;
  }

let machine_of_device ?(latency = Latency_model.default) ?cache_capacity_lines
    ?(seed = 42) dev =
  let cache = Cache.create ?capacity_lines:cache_capacity_lines ~seed dev in
  {
    dev;
    cache;
    latency;
    crash_rng = Random.State.make [| seed; 0x5eed |];
    wc_buffers = [];
    media_busy_until = 0;
  }

let attach_wc machine =
  let wc = Wc_buffer.create machine.dev in
  machine.wc_buffers <- wc :: machine.wc_buffers;
  wc

let standalone machine =
  let clock = ref 0 in
  {
    machine;
    wc = attach_wc machine;
    delay = (fun ns -> clock := !clock + ns);
    now = (fun () -> !clock);
  }

let view machine ~delay ~now = { machine; wc = attach_wc machine; delay; now }

let elapsed_ns t = t.now ()
