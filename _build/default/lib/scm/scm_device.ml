type t = {
  arena : Bytes.t;
  frame_size : int;
  nframes : int;
  writes : int array;  (* per-frame wear counters *)
  mutable total_writes : int;
}

let create ?(frame_size = 4096) ~nframes () =
  if nframes <= 0 then invalid_arg "Scm_device.create: nframes";
  if frame_size <= 0 || frame_size land 7 <> 0 then
    invalid_arg "Scm_device.create: frame_size";
  {
    arena = Bytes.make (nframes * frame_size) '\000';
    frame_size;
    nframes;
    writes = Array.make nframes 0;
    total_writes = 0;
  }

let frame_size t = t.frame_size
let nframes t = t.nframes
let size_bytes t = t.nframes * t.frame_size

let check t addr len =
  if addr < 0 || addr + len > Bytes.length t.arena then
    invalid_arg
      (Printf.sprintf "Scm_device: address %#x+%d out of range" addr len)

let bump t addr =
  let f = addr / t.frame_size in
  t.writes.(f) <- t.writes.(f) + 1;
  t.total_writes <- t.total_writes + 1

let load64 t addr =
  check t addr 8;
  if not (Word.is_aligned addr) then
    invalid_arg (Printf.sprintf "Scm_device.load64: unaligned %#x" addr);
  Word.get t.arena addr

let store64 t addr v =
  check t addr 8;
  if not (Word.is_aligned addr) then
    invalid_arg (Printf.sprintf "Scm_device.store64: unaligned %#x" addr);
  Word.set t.arena addr v;
  bump t addr

let load_byte t addr =
  check t addr 1;
  Bytes.get t.arena addr

let read_into t addr buf off len =
  check t addr len;
  Bytes.blit t.arena addr buf off len

let write_from t addr buf off len =
  check t addr len;
  Bytes.blit buf off t.arena addr len;
  if len > 0 then bump t addr

let write_count t frame = t.writes.(frame)
let total_writes t = t.total_writes

let magic = "MNEMSCM1"

let save_image t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      output_binary_int oc t.frame_size;
      output_binary_int oc t.nframes;
      output_bytes oc t.arena)

let load_image path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let m = really_input_string ic (String.length magic) in
      if m <> magic then failwith "Scm_device.load_image: bad magic";
      let frame_size = input_binary_int ic in
      let nframes = input_binary_int ic in
      let t = create ~frame_size ~nframes () in
      really_input ic t.arena 0 (Bytes.length t.arena);
      t)

let copy t =
  {
    arena = Bytes.copy t.arena;
    frame_size = t.frame_size;
    nframes = t.nframes;
    writes = Array.copy t.writes;
    total_writes = t.total_writes;
  }
