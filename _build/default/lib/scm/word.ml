let bytes_per_word = 8

let is_aligned addr = addr land 7 = 0

let align_up n = (n + 7) land lnot 7

let words_for_bytes n = (n + 7) / 8

let get buf off = Bytes.get_int64_le buf off

let set buf off v = Bytes.set_int64_le buf off v

let bit w i = Int64.logand (Int64.shift_right_logical w i) 1L = 1L

let set_bit w i b =
  let mask = Int64.shift_left 1L i in
  if b then Int64.logor w mask else Int64.logand w (Int64.lognot mask)

let of_string_chunk s off =
  let n = min 8 (String.length s - off) in
  let w = ref 0L in
  for i = n - 1 downto 0 do
    let byte = Char.code s.[off + i] in
    w := Int64.logor (Int64.shift_left !w 8) (Int64.of_int byte)
  done;
  !w

let blit_to_bytes w buf off len =
  assert (len >= 0 && len <= 8);
  let w = ref w in
  for i = 0 to len - 1 do
    Bytes.set buf (off + i) (Char.chr (Int64.to_int (Int64.logand !w 0xffL)));
    w := Int64.shift_right_logical !w 8
  done
