(** Helpers for the 64-bit words that storage-class memory is made of.

    The SCM device guarantees atomic writes of aligned 64-bit words
    (paper section 2, "Failure Models"); everything above the device
    speaks in these words, so the bit-twiddling used by the tornbit RAWL
    and the packed head words lives here. *)

val bytes_per_word : int
(** 8. *)

val is_aligned : int -> bool
(** [is_aligned addr] is true when [addr] is 8-byte aligned. *)

val align_up : int -> int
(** Round a byte count up to a multiple of 8. *)

val words_for_bytes : int -> int
(** Number of 64-bit words needed to hold that many bytes. *)

val get : Bytes.t -> int -> int64
(** [get buf off] reads the little-endian word at byte offset [off]. *)

val set : Bytes.t -> int -> int64 -> unit
(** [set buf off v] writes the little-endian word at byte offset [off]. *)

val bit : int64 -> int -> bool
(** [bit w i] is bit [i] (0 = least significant) of [w]. *)

val set_bit : int64 -> int -> bool -> int64
(** [set_bit w i b] is [w] with bit [i] forced to [b]. *)

val of_string_chunk : string -> int -> int64
(** [of_string_chunk s off] packs up to 8 bytes of [s] starting at [off]
    into a word (missing bytes are zero).  Used to serialize string keys
    and values into word-granularity SCM. *)

val blit_to_bytes : int64 -> Bytes.t -> int -> int -> unit
(** [blit_to_bytes w buf off len] writes the low [len] bytes of [w]
    (little-endian) into [buf] at [off]; [len <= 8]. *)
