(** Performance model of the memory system, mirroring the paper's
    DRAM-based emulator (section 6.1).

    The original emulator inserted TSC-spin delays after writes, flushes
    and fences to account for the extra latency of PCM relative to DRAM,
    and limited the effective bandwidth of streaming (write-combined)
    stores.  We charge the same delays to a simulated clock.  All times
    are integer nanoseconds. *)

type t = {
  pcm_write_ns : int;
      (** Extra write latency of PCM over DRAM, charged per cache line
          written back ([flush]) and as the floor of a fence drain.
          The paper's default is 150 ns; figure 7 sweeps 150/1000/2000. *)
  write_bandwidth_bytes_per_us : int;
      (** Effective streaming-write bandwidth.  The paper limits
          write-through sequences to 4 GB/s (= 4096 bytes/us), based on
          Numonyx projections. *)
  media_banks : int;
      (** Device-level parallelism: concurrent threads' media writes
          serialize at the controller for only 1/banks of their cost;
          the rest overlaps in independent banks.  Single-threaded
          latencies are unaffected. *)
  cache_hit_ns : int;  (** Cost of a load or store that hits the cache. *)
  dram_read_ns : int;
      (** Cost of a load that misses the cache.  The paper's emulator
          does not penalize loads with PCM latency, and neither do we. *)
  fence_base_ns : int;
      (** Fixed cost of an [mfence] with empty write-combining buffers. *)
  wc_post_ns : int;  (** Cost of posting one streaming store. *)
  bit_pack_ns_per_word : int;
      (** CPU cost of the tornbit bit-stream manipulation, per 64-bit
          word.  This is what makes the tornbit RAWL lose to a commit
          record for records over ~2 KB (table 6). *)
  stm_access_ns : int;
      (** Software overhead of one instrumented transactional load or
          store (the "function call on every load and store" of
          section 6.3). *)
  txn_begin_ns : int;  (** Fixed cost of starting a transaction. *)
  txn_commit_ns : int; (** Fixed software cost of committing. *)
  timestamp_ns : int;
      (** Cost of bumping the global timestamp counter, charged once per
          commit and scaled by the number of active threads to model
          cache-line contention on the shared counter. *)
}

val default : t
(** The paper's evaluation platform: 150 ns extra write latency,
    4 GB/s write bandwidth. *)

val with_pcm_write_ns : t -> int -> t
(** [with_pcm_write_ns m ns] is [m] with the PCM write latency replaced;
    used by the figure-7 sensitivity sweep. *)

val streaming_write_ns : t -> int -> int
(** [streaming_write_ns m bytes] is the time for [bytes] of pending
    streaming writes to drain to SCM: the bandwidth-limited transfer
    time, floored at one PCM write latency. *)

(** One row of the paper's table 1: published device characteristics. *)
type technology = {
  name : string;
  availability : string;  (** "today" or "prospective" *)
  read_latency : string;
  write_latency : string;
  endurance : string;
}

val technologies : technology list
(** The contents of table 1, reproduced for the [table1] bench section. *)
