lib/apps/ldap_server.ml: Array Baseline Bytes Hashtbl Int64 Mnemosyne Mtm Option Printf Pstruct Region Scm
