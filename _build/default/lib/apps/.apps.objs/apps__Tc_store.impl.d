lib/apps/tc_store.ml: Baseline Bytes Int64 Mnemosyne Mtm Option Printf Pstruct Region Scm
