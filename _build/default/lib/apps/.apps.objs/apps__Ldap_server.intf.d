lib/apps/ldap_server.mli: Baseline Bytes Mnemosyne Scm Sim
