lib/apps/tc_store.mli: Baseline Bytes Mnemosyne Scm Sim
