(* The volatile attribute-description table the front end keeps; the
   persistent cache entries point into it by id + session version. *)
let attribute_table =
  [| "cn"; "sn"; "mail"; "uid"; "telephoneNumber"; "ou"; "description" |]

type backend_kind = Back_bdb | Back_ldbm | Back_mnemosyne

type mnemo_state = {
  inst : Mnemosyne.t;
  cache_slot : int;
  session_version : int64;
  mutable stale : int;
}

type bdb_state = {
  store : Baseline.Bdb.t;
  volatile_cache : (int64, int * Bytes.t) Hashtbl.t;
  transactional : bool;
  flush_every : int;
  mutable ops : int;
}

type backend = Bdb_like of bdb_state | Mnemo of mnemo_state

type t = {
  backend : backend;
  frontend_ns : int;
  nindexes : int;
}

type worker = {
  server : t;
  env : Scm.Env.t;
  mtm_thread : Mtm.Txn.thread option;
}

let kind t =
  match t.backend with
  | Bdb_like { transactional = true; _ } -> Back_bdb
  | Bdb_like _ -> Back_ldbm
  | Mnemo _ -> Back_mnemosyne

let create_bdb ?sim ?(frontend_ns = 540_000) ?(nindexes = 8) disk =
  {
    backend =
      Bdb_like
        {
          store = Baseline.Bdb.create ?sim ~op_overhead_ns:22_000 disk;
          volatile_cache = Hashtbl.create 4096;
          transactional = true;
          flush_every = max_int;
          ops = 0;
        };
    frontend_ns;
    nindexes;
  }

let create_ldbm ?sim ?(frontend_ns = 540_000) ?(nindexes = 8)
    ?(flush_every = 32) disk =
  {
    backend =
      Bdb_like
        {
          store = Baseline.Bdb.create ?sim ~op_overhead_ns:10_000 disk;
          volatile_cache = Hashtbl.create 4096;
          transactional = false;
          flush_every;
          ops = 0;
        };
    frontend_ns;
    nindexes;
  }

let version_slot_name = "ldap.attr.version"
let cache_slot_name = "ldap.cache"

let create_mnemosyne ?(frontend_ns = 540_000) ?(nindexes = 8) inst =
  (* Bump the persistent session version: volatile attribute pointers
     recorded under older versions are stale from now on. *)
  let vslot = Mnemosyne.pstatic inst version_slot_name 8 in
  let v = Mnemosyne.view inst in
  let session = Int64.add (Region.Pmem.load v vslot) 1L in
  Region.Pmem.wtstore v vslot session;
  Region.Pmem.fence v;
  let cache_slot = Mnemosyne.pstatic inst cache_slot_name 8 in
  if Region.Pmem.load v cache_slot = 0L then
    ignore
      (Mnemosyne.atomically inst (fun tx ->
           Pstruct.Avl_tree.create tx ~slot:cache_slot));
  {
    backend =
      Mnemo { inst; cache_slot; session_version = session; stale = 0 };
    frontend_ns;
    nindexes;
  }

let worker t i env =
  match t.backend with
  | Bdb_like _ -> { server = t; env; mtm_thread = None }
  | Mnemo { inst; _ } ->
      { server = t; env; mtm_thread = Some (Mnemosyne.thread inst i env) }

let session_attr_version t =
  match t.backend with
  | Mnemo m -> Int64.to_int m.session_version
  | Bdb_like _ -> 0

let stale_resolutions t =
  match t.backend with Mnemo m -> m.stale | Bdb_like _ -> 0

(* Entry payload layout in the persistent cache:
   [attr_id][session version][payload bytes]. *)
let encode_entry ~attr_id ~version payload =
  let b = Bytes.create (16 + Bytes.length payload) in
  Bytes.set_int64_le b 0 (Int64.of_int attr_id);
  Bytes.set_int64_le b 8 version;
  Bytes.blit payload 0 b 16 (Bytes.length payload);
  b

let decode_entry b =
  ( Int64.to_int (Bytes.get_int64_le b 0),
    Bytes.get_int64_le b 8,
    Bytes.sub b 16 (Bytes.length b - 16) )

let index_key i dn = Bytes.of_string (Printf.sprintf "ix%d/%Ld" i dn)

let tree_of w tx =
  match w.server.backend with
  | Mnemo m ->
      Pstruct.Avl_tree.attach tx
        ~root:(Int64.to_int (Mtm.Txn.load tx m.cache_slot))
  | Bdb_like _ -> assert false

let add_entry w ~dn ~attr_id ~payload =
  let t = w.server in
  w.env.Scm.Env.delay t.frontend_ns;
  match t.backend with
  | Bdb_like s ->
      (* One write per index; the last one carries the commit in the
         transactional backend. *)
      for i = 0 to t.nindexes - 2 do
        Baseline.Bdb.put_nosync s.store w.env (index_key i dn) payload
      done;
      if s.transactional then
        Baseline.Bdb.put s.store w.env (index_key (t.nindexes - 1) dn) payload
      else begin
        Baseline.Bdb.put_nosync s.store w.env
          (index_key (t.nindexes - 1) dn)
          payload;
        s.ops <- s.ops + 1;
        if s.ops mod s.flush_every = 0 then
          Baseline.Bdb.flush_dirty s.store w.env ()
      end;
      Hashtbl.replace s.volatile_cache dn (attr_id, payload)
  | Mnemo m ->
      let th = Option.get w.mtm_thread in
      Mtm.Txn.run th (fun tx ->
          let tree = tree_of w tx in
          Pstruct.Avl_tree.put tx tree dn
            (encode_entry ~attr_id ~version:m.session_version payload))

let search w ~dn =
  let t = w.server in
  w.env.Scm.Env.delay (t.frontend_ns / 2);
  match t.backend with
  | Bdb_like s ->
      Option.map
        (fun (attr_id, payload) -> (attribute_table.(attr_id), payload))
        (Hashtbl.find_opt s.volatile_cache dn)
  | Mnemo m ->
      let th = Option.get w.mtm_thread in
      Mtm.Txn.run th (fun tx ->
          let tree = tree_of w tx in
          match Pstruct.Avl_tree.find tx tree dn with
          | None -> None
          | Some entry ->
              let attr_id, version, payload = decode_entry entry in
              if version <> m.session_version then begin
                (* The volatile attribute description from the previous
                   run is gone; re-resolve by id and repair the entry
                   (section 6.2's version-number pattern). *)
                m.stale <- m.stale + 1;
                Pstruct.Avl_tree.put tx tree dn
                  (encode_entry ~attr_id ~version:m.session_version payload)
              end;
              Some (attribute_table.(attr_id), payload))

let entries w =
  match w.server.backend with
  | Bdb_like s -> Hashtbl.length s.volatile_cache
  | Mnemo _ ->
      let th = Option.get w.mtm_thread in
      Mtm.Txn.run th (fun tx ->
          Pstruct.Avl_tree.length tx (tree_of w tx))
