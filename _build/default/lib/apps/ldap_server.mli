(** An OpenLDAP-style directory server core (paper section 6.2).

    Models the three backends of table 4:

    - {e back-bdb}: a volatile entry cache in front of transactional
      Berkeley DB — every add commits through the WAL;
    - {e back-ldbm}: the same cache in front of non-transactional BDB
      with periodic dirty-page flushes (cheaper, weaker reliability);
    - {e back-mnemosyne}: the backing store removed, "leaving only a
      persistent cache" — the entry cache itself is a persistent AVL
      tree updated in durable transactions.

    Every request charges the front-end cost (decoding, ACLs, DN
    normalization, response encoding) that dominates LDAP service time;
    an add then runs the backend update, which for BDB means one write
    per index (dn2id, id2entry, attribute indexes) inside one
    transaction.

    The back-mnemosyne entries also demonstrate the paper's
    volatile-pointer idiom: each persistent entry records the id and a
    session version for its (volatile) attribute description; a lookup
    after restart detects the stale version and re-resolves. *)

type t
type worker

type backend_kind = Back_bdb | Back_ldbm | Back_mnemosyne

val kind : t -> backend_kind

val create_bdb :
  ?sim:Sim.t ->
  ?frontend_ns:int ->
  ?nindexes:int ->
  Baseline.Pcm_disk.t ->
  t

val create_ldbm :
  ?sim:Sim.t ->
  ?frontend_ns:int ->
  ?nindexes:int ->
  ?flush_every:int ->
  Baseline.Pcm_disk.t ->
  t

val create_mnemosyne :
  ?frontend_ns:int -> ?nindexes:int -> Mnemosyne.t -> t
(** The persistent AVL entry cache is rooted at the [pstatic]
    "ldap.cache"; reopening the same instance finds the directory
    again. *)

val worker : t -> int -> Scm.Env.t -> worker
(** Bind a server thread (slot [i] for the transactional backend). *)

val add_entry : worker -> dn:int64 -> attr_id:int -> payload:Bytes.t -> unit
(** Service one SLAMD-style add request. *)

val search : worker -> dn:int64 -> (string * Bytes.t) option
(** Lookup; returns the resolved (volatile) attribute-description name
    and the payload. *)

val entries : worker -> int

val session_attr_version : t -> int
(** The volatile attribute table's current session version (bumped at
    every [create_mnemosyne] attach). *)

val stale_resolutions : t -> int
(** How many lookups found a stale version and re-resolved their
    volatile pointer — nonzero after a restart (section 6.2). *)
