module Pmem = Region.Pmem

let superblock_bytes = 8192
let header_bytes = 192
let bitmap_words = 16
let max_block_bytes = 4096
let size_classes = [ 8; 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 ]
let nclasses = List.length size_classes
let sb_magic = 0x5BL

let class_of size =
  if size <= 0 then invalid_arg "Hoard.class_of: size";
  match List.find_opt (fun c -> c >= size) size_classes with
  | Some c -> c
  | None -> invalid_arg "Hoard.class_of: larger than a superblock class"

let class_index size =
  let rec go i = function
    | [] -> assert false
    | c :: rest -> if c >= size then i else go (i + 1) rest
  in
  go 0 size_classes

let blocks_per bsize = (superblock_bytes - header_bytes) / bsize

(* Volatile per-superblock state.  The persistent bitmap is the source
   of truth for which blocks are allocated; [free_count] additionally
   discounts in-flight reservations.  [arena] implements Hoard's
   per-processor heaps: each thread allocates from its own arena's
   superblocks, so concurrent transactions do not fight over the same
   bitmap words. *)
type sb_state = {
  mutable bsize : int;  (* 0 = unassigned *)
  mutable free_count : int;
  mutable header_persisted : bool;
  mutable arena : int;
}

let narenas = 8

type t = {
  v : Pmem.view;
  alog : Alloc_log.t;
  base : int;
  count : int;
  states : sb_state array;
  avail : int list array array;
      (* [class index].[arena]: superblocks with free blocks *)
  mutable unassigned : int list;
  reserved : (int * int, unit) Hashtbl.t;  (* (superblock, block idx) *)
  mutable scanned : int;
}

type reservation = {
  addr : int;
  bitmap_addr : int;
  bit : int;
  header_write : (int * int64) option;
}

let sb_base t sb = t.base + (sb * superblock_bytes)
let header_addr t sb = sb_base t sb
let bitmap_addr_of t sb word = sb_base t sb + 8 + (8 * word)

let pack_header bsize =
  Int64.logor (Int64.shift_left sb_magic 56) (Int64.of_int bsize)

let unpack_header w =
  if Int64.shift_right_logical w 56 <> sb_magic then None
  else
    let bsize = Int64.to_int (Int64.logand w 0xffffL) in
    if List.mem bsize size_classes then Some bsize else None

let popcount =
  let rec go acc w =
    if w = 0L then acc else go (acc + 1) (Int64.logand w (Int64.sub w 1L))
  in
  fun w -> go 0 w

let make v alog ~base ~count =
  {
    v;
    alog;
    base;
    count;
    states =
      Array.init count (fun _ ->
          { bsize = 0; free_count = 0; header_persisted = false; arena = 0 });
    avail = Array.init nclasses (fun _ -> Array.make narenas []);
    unassigned = [];
    reserved = Hashtbl.create 64;
    scanned = 0;
  }

let create v alog ~base ~count =
  let t = make v alog ~base ~count in
  t.unassigned <- List.init count Fun.id;
  t

let attach v alog ~base ~count =
  let t = make v alog ~base ~count in
  for sb = count - 1 downto 0 do
    let st = t.states.(sb) in
    match unpack_header (Pmem.load v (header_addr t sb)) with
    | None -> t.unassigned <- sb :: t.unassigned
    | Some bsize ->
        st.bsize <- bsize;
        st.header_persisted <- true;
        let allocated = ref 0 in
        for w = 0 to bitmap_words - 1 do
          allocated := !allocated + popcount (Pmem.load v (bitmap_addr_of t sb w))
        done;
        st.free_count <- blocks_per bsize - !allocated;
        st.arena <- sb mod narenas;
        if st.free_count > 0 then begin
          let ci = class_index bsize in
          t.avail.(ci).(st.arena) <- sb :: t.avail.(ci).(st.arena)
        end
  done;
  t.scanned <- count;
  t

(* Find a block index that is neither set in the persistent bitmap nor
   reserved by an in-flight operation. *)
let find_free_bit t sb bsize =
  let nblocks = blocks_per bsize in
  let rec word w =
    if w >= bitmap_words then None
    else
      let persisted = Pmem.load t.v (bitmap_addr_of t sb w) in
      if persisted = -1L then word (w + 1)
      else
        let rec bit b =
          if b >= 64 then word (w + 1)
          else
            let idx = (w * 64) + b in
            if idx >= nblocks then None
            else if
              (not (Scm.Word.bit persisted b))
              && not (Hashtbl.mem t.reserved (sb, idx))
            then Some (w, b)
            else bit (b + 1)
        in
        bit 0
  in
  word 0

let assign_superblock t ci arena bsize =
  match t.unassigned with
  | [] -> None
  | sb :: rest ->
      t.unassigned <- rest;
      let st = t.states.(sb) in
      st.bsize <- bsize;
      st.free_count <- blocks_per bsize;
      st.header_persisted <- false;
      st.arena <- arena;
      t.avail.(ci).(arena) <- sb :: t.avail.(ci).(arena);
      Some sb

let reserve ?(arena = 0) t size =
  let bsize = class_of size in
  let ci = class_index bsize in
  let arena = arena mod narenas in
  let in_arena a =
    List.find_opt (fun sb -> t.states.(sb).free_count > 0) t.avail.(ci).(a)
  in
  let sb =
    (* own arena first, then a fresh superblock, then steal *)
    match in_arena arena with
    | Some sb -> sb
    | None -> (
        match assign_superblock t ci arena bsize with
        | Some sb -> sb
        | None -> (
            let rec steal a =
              if a >= narenas then
                failwith "Hoard.alloc: out of superblocks"
              else
                match in_arena a with
                | Some sb -> sb
                | None -> steal (a + 1)
            in
            steal 0))
  in
  let st = t.states.(sb) in
  match find_free_bit t sb bsize with
  | None -> assert false  (* free_count > 0 guarantees a bit *)
  | Some (w, b) ->
      let idx = (w * 64) + b in
      Hashtbl.replace t.reserved (sb, idx) ();
      st.free_count <- st.free_count - 1;
      if st.free_count = 0 then
        t.avail.(ci).(st.arena) <-
          List.filter (fun s -> s <> sb) t.avail.(ci).(st.arena);
      {
        addr = sb_base t sb + header_bytes + (idx * bsize);
        bitmap_addr = bitmap_addr_of t sb w;
        bit = b;
        header_write =
          (if st.header_persisted then None
           else Some (header_addr t sb, pack_header bsize));
      }

let owns t addr = addr >= t.base && addr < t.base + (t.count * superblock_bytes)

let locate t addr =
  if not (owns t addr) then invalid_arg "Hoard: address outside the heap";
  let sb = (addr - t.base) / superblock_bytes in
  let st = t.states.(sb) in
  if st.bsize = 0 then invalid_arg "Hoard: address in unassigned superblock";
  let off = addr - sb_base t sb - header_bytes in
  if off < 0 || off mod st.bsize <> 0 then
    invalid_arg "Hoard: address is not a block start";
  let idx = off / st.bsize in
  if idx >= blocks_per st.bsize then invalid_arg "Hoard: block out of range";
  (sb, st, idx)

let finalize t resv =
  let sb, st, idx = locate t resv.addr in
  Hashtbl.remove t.reserved (sb, idx);
  st.header_persisted <- true

let cancel t resv =
  let sb, st, idx = locate t resv.addr in
  Hashtbl.remove t.reserved (sb, idx);
  let ci = class_index st.bsize in
  st.free_count <- st.free_count + 1;
  if st.free_count = 1 then
    t.avail.(ci).(st.arena) <- sb :: t.avail.(ci).(st.arena);
  if st.free_count = blocks_per st.bsize && not st.header_persisted then begin
    (* This reservation assigned the superblock and nothing else ever
       committed in it: return it to the unassigned pool. *)
    st.bsize <- 0;
    st.free_count <- 0;
    t.avail.(ci).(st.arena) <-
      List.filter (fun s -> s <> sb) t.avail.(ci).(st.arena);
    t.unassigned <- sb :: t.unassigned
  end

let alloc ?arena t size ~extra =
  let resv = reserve ?arena t size in
  let new_word =
    Scm.Word.set_bit (Pmem.load t.v resv.bitmap_addr) resv.bit true
  in
  let writes =
    (match resv.header_write with Some hw -> [ hw ] | None -> [])
    @ ((resv.bitmap_addr, new_word) :: extra resv.addr)
  in
  Alloc_log.commit t.alog writes;
  finalize t resv;
  resv.addr

let block_size_of t addr =
  let _, st, _ = locate t addr in
  st.bsize

let check_live t ~load addr =
  let sb, st, idx = locate t addr in
  if Hashtbl.mem t.reserved (sb, idx) then
    invalid_arg "Hoard.free: block is only reserved, not committed";
  let w = idx / 64 and b = idx mod 64 in
  let word_addr = bitmap_addr_of t sb w in
  if not (Scm.Word.bit (load word_addr) b) then
    invalid_arg "Hoard.free: block is not allocated (double free?)";
  (sb, st, word_addr, b)

let release_accounting t sb st ~allow_unassign =
  let ci = class_index st.bsize in
  st.free_count <- st.free_count + 1;
  if st.free_count = 1 then
    t.avail.(ci).(st.arena) <- sb :: t.avail.(ci).(st.arena);
  if allow_unassign && st.free_count = blocks_per st.bsize then begin
    st.bsize <- 0;
    st.free_count <- 0;
    st.header_persisted <- false;
    t.avail.(ci).(st.arena) <-
      List.filter (fun s -> s <> sb) t.avail.(ci).(st.arena);
    t.unassigned <- sb :: t.unassigned
  end

let free t addr ~extra =
  let sb, st, word_addr, b = check_live t ~load:(Pmem.load t.v) addr in
  let new_word = Scm.Word.set_bit (Pmem.load t.v word_addr) b false in
  let fully_free = st.free_count + 1 = blocks_per st.bsize in
  let writes =
    (word_addr, new_word)
    :: (if fully_free then [ (header_addr t sb, 0L) ] else [])
    @ extra
  in
  Alloc_log.commit t.alog writes;
  release_accounting t sb st ~allow_unassign:true

let free_prepare t ~load addr =
  let _, _, word_addr, b = check_live t ~load addr in
  (word_addr, b)

let free_commit t addr =
  let sb, st, _ = locate t addr in
  (* Transactional frees never unassign the superblock: the header write
     would have to ride the transaction too, and keeping the superblock
     assigned is always safe. *)
  release_accounting t sb st ~allow_unassign:false

let free_blocks_in_class t bsize =
  let ci = class_index (class_of bsize) in
  Array.fold_left
    (fun acc lst ->
      List.fold_left (fun acc sb -> acc + t.states.(sb).free_count) acc lst)
    0 t.avail.(ci)

let assigned_superblocks t =
  Array.fold_left
    (fun acc st -> if st.bsize > 0 then acc + 1 else acc)
    0 t.states

let superblocks_scanned t = t.scanned
