module Pmem = Region.Pmem

type t = { v : Pmem.view; log : Pmlog.Rawl.t }

let region_words = 2040
let region_bytes = Pmlog.Rawl.region_bytes_for ~cap_words:region_words

let create v ~base = { v; log = Pmlog.Rawl.create v ~base ~cap_words:region_words }

let encode writes =
  let n = List.length writes in
  let rec_words = Array.make (1 + (2 * n)) 0L in
  rec_words.(0) <- Int64.of_int n;
  List.iteri
    (fun i (addr, value) ->
      rec_words.(1 + (2 * i)) <- Int64.of_int addr;
      rec_words.(2 + (2 * i)) <- value)
    writes;
  rec_words

let decode rec_words =
  if Array.length rec_words < 1 then None
  else
    let n = Int64.to_int rec_words.(0) in
    if n < 1 || Array.length rec_words <> 1 + (2 * n) then None
    else
      Some
        (List.init n (fun i ->
             (Int64.to_int rec_words.(1 + (2 * i)), rec_words.(2 + (2 * i)))))

let apply v writes =
  List.iter (fun (addr, value) -> Pmem.wtstore v addr value) writes;
  Pmem.fence v

let attach v ~base =
  let log, records = Pmlog.Rawl.attach v ~base in
  let replayed = ref 0 in
  List.iter
    (fun r ->
      match decode r with
      | Some writes ->
          apply v writes;
          incr replayed
      | None -> ())
    records;
  Pmlog.Rawl.truncate_all log;
  ({ v; log }, !replayed)

let commit t writes =
  if writes = [] then invalid_arg "Alloc_log.commit: no writes";
  let record = encode writes in
  (match Pmlog.Rawl.append t.log record with
  | Pmlog.Rawl.Appended _ -> ()
  | Pmlog.Rawl.Full ->
      (* Applied records are idempotent redo; dropping them all is
         always safe once applied, and every record in the log has been
         applied by the time we get here. *)
      Pmlog.Rawl.truncate_all t.log;
      (match Pmlog.Rawl.append t.log record with
      | Pmlog.Rawl.Appended _ -> ()
      | Pmlog.Rawl.Full -> failwith "Alloc_log: record larger than the log"));
  Pmlog.Rawl.flush t.log;
  apply t.v writes;
  (* Lazy truncation: reclaim in bulk when the buffer is half full. *)
  if Pmlog.Rawl.used_words t.log > Pmlog.Rawl.capacity t.log / 2 then
    Pmlog.Rawl.truncate_all t.log
