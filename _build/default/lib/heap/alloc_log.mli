(** The allocator's atomicity log (paper section 4.3).

    The persistent heap "guarantees atomicity of its operations by
    logging the write to the bitmap vector and the destination/source
    pointer".  This is that log: a {!Pmlog.Rawl} of pure {e redo}
    records, each a list of (address, value) word writes.  An operation
    commits by appending its record and flushing (one fence, thanks to
    the torn bit), then applying the writes; recovery replays every
    surviving record.  Replay is idempotent — records carry absolute
    values — so the log is truncated lazily in batches rather than after
    every operation, saving a fence per allocation. *)

type t

val region_words : int
(** Stored-word capacity of the log buffer. *)

val region_bytes : int

val create : Region.Pmem.view -> base:int -> t

val attach : Region.Pmem.view -> base:int -> t * int
(** Recover: replay all complete records (re-applying their writes
    durably), truncate, and return the handle plus how many records
    were replayed. *)

val commit : t -> (int * int64) list -> unit
(** Durably and atomically apply the given word writes: log record +
    flush, then write-through the data, fence.  The writes list must be
    non-empty. *)
