module Pmem = Region.Pmem

let min_chunk_bytes = 64
let overhead_bytes = 16

(* Header word: size in bytes (multiple of 8, includes overhead) with
   the used flag in bit 0.  Footer word: size. *)

type t = {
  v : Pmem.view;
  alog : Alloc_log.t;
  base : int;
  len : int;
  mutable free_list : (int * int) list;  (* (chunk addr, size), addr asc *)
  mutable scanned : int;
}

let pack_hdr ~size ~used =
  Int64.logor (Int64.of_int size) (if used then 1L else 0L)

let hdr_size w = Int64.to_int (Int64.logand w (Int64.lognot 7L))
let hdr_used w = Int64.logand w 1L = 1L

let footer_addr chunk size = chunk + size - 8

let create v alog ~base ~len =
  if len < min_chunk_bytes || len land 7 <> 0 then
    invalid_arg "Large_alloc.create: length";
  Pmem.wtstore v base (pack_hdr ~size:len ~used:false);
  Pmem.wtstore v (footer_addr base len) (Int64.of_int len);
  Pmem.fence v;
  { v; alog; base; len; free_list = [ (base, len) ]; scanned = 0 }

let attach v alog ~base ~len =
  let t = { v; alog; base; len; free_list = []; scanned = 0 } in
  let free_rev = ref [] in
  let pos = ref base in
  while !pos < base + len do
    let w = Pmem.load v !pos in
    let size = hdr_size w in
    if size < min_chunk_bytes || !pos + size > base + len then
      failwith "Large_alloc.attach: corrupt chunk chain";
    if not (hdr_used w) then free_rev := (!pos, size) :: !free_rev;
    t.scanned <- t.scanned + 1;
    pos := !pos + size
  done;
  t.free_list <- List.rev !free_rev;
  t

let owns t addr = addr >= t.base && addr < t.base + t.len

let align8 n = (n + 7) land lnot 7

let alloc t size ~extra =
  if size <= 0 then invalid_arg "Large_alloc.alloc: size";
  let need = max min_chunk_bytes (align8 size + overhead_bytes) in
  let rec pick before = function
    | [] -> failwith "Large_alloc.alloc: no chunk large enough"
    | (chunk, csize) :: rest when csize >= need ->
        let remainder = csize - need in
        let payload = chunk + 8 in
        if remainder >= min_chunk_bytes then begin
          (* Split: used chunk in front, free remainder behind. *)
          let rem_chunk = chunk + need in
          Alloc_log.commit t.alog
            ([
               (chunk, pack_hdr ~size:need ~used:true);
               (footer_addr chunk need, Int64.of_int need);
               (rem_chunk, pack_hdr ~size:remainder ~used:false);
               (footer_addr rem_chunk remainder, Int64.of_int remainder);
             ]
            @ extra payload);
          t.free_list <-
            List.rev_append before ((rem_chunk, remainder) :: rest)
        end
        else begin
          Alloc_log.commit t.alog
            ((chunk, pack_hdr ~size:csize ~used:true) :: extra payload);
          t.free_list <- List.rev_append before rest
        end;
        payload
    | entry :: rest -> pick (entry :: before) rest
  in
  pick [] t.free_list

let payload_size_of t addr =
  let chunk = addr - 8 in
  if not (owns t chunk) then invalid_arg "Large_alloc: address outside area";
  let w = Pmem.load t.v chunk in
  if not (hdr_used w) then invalid_arg "Large_alloc: chunk is not allocated";
  hdr_size w - overhead_bytes

let free t addr ~extra =
  let chunk = addr - 8 in
  if not (owns t chunk) then invalid_arg "Large_alloc: address outside area";
  let w = Pmem.load t.v chunk in
  let size = hdr_size w in
  if (not (hdr_used w)) || size < min_chunk_bytes || not (owns t (chunk + size - 8))
  then invalid_arg "Large_alloc.free: not a live chunk (double free?)";
  (* Coalesce with a free successor and/or predecessor. *)
  let merged_start = ref chunk and merged_size = ref size in
  let absorbed = ref [] in
  (if chunk + size < t.base + t.len then begin
     let next = chunk + size in
     let nw = Pmem.load t.v next in
     if not (hdr_used nw) then begin
       merged_size := !merged_size + hdr_size nw;
       absorbed := next :: !absorbed
     end
   end);
  (if chunk > t.base then begin
     let prev_size = Int64.to_int (Pmem.load t.v (chunk - 8)) in
     if prev_size >= min_chunk_bytes && chunk - prev_size >= t.base then begin
       let prev = chunk - prev_size in
       let pw = Pmem.load t.v prev in
       if (not (hdr_used pw)) && hdr_size pw = prev_size then begin
         merged_start := prev;
         merged_size := !merged_size + prev_size;
         absorbed := prev :: !absorbed
       end
     end
   end);
  Alloc_log.commit t.alog
    ([
       (!merged_start, pack_hdr ~size:!merged_size ~used:false);
       (footer_addr !merged_start !merged_size, Int64.of_int !merged_size);
     ]
    @ extra);
  let survivors =
    List.filter (fun (c, _) -> not (List.mem c !absorbed)) t.free_list
  in
  t.free_list <-
    List.sort compare ((!merged_start, !merged_size) :: survivors)

let free_bytes t = List.fold_left (fun acc (_, s) -> acc + s) 0 t.free_list
let chunks_scanned t = t.scanned
