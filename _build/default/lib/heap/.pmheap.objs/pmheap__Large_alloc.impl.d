lib/heap/large_alloc.ml: Alloc_log Int64 List Region
