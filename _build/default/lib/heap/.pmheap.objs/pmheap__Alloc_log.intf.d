lib/heap/alloc_log.mli: Region
