lib/heap/heap.ml: Alloc_log Hoard Int64 Large_alloc Region Scm
