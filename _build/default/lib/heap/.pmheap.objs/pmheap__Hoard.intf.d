lib/heap/hoard.mli: Alloc_log Region
