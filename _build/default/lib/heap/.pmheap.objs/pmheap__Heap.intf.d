lib/heap/heap.mli: Hoard Region
