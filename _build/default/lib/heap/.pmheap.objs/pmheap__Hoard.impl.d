lib/heap/hoard.ml: Alloc_log Array Fun Hashtbl Int64 List Region Scm
