lib/heap/large_alloc.mli: Alloc_log Region
