lib/heap/alloc_log.ml: Array Int64 List Pmlog Region
