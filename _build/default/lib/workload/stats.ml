type t = { mutable samples : int list; mutable n : int; mutable sum : int }

let create () = { samples = []; n = 0; sum = 0 }

let add t ns =
  t.samples <- ns :: t.samples;
  t.n <- t.n + 1;
  t.sum <- t.sum + ns

let count t = t.n
let mean_ns t = if t.n = 0 then 0.0 else float_of_int t.sum /. float_of_int t.n
let mean_us t = mean_ns t /. 1000.0

let sorted t = List.sort compare t.samples

let min_ns t = match sorted t with [] -> 0 | x :: _ -> x
let max_ns t = List.fold_left max 0 t.samples

let percentile_ns t p =
  match sorted t with
  | [] -> 0
  | l ->
      let arr = Array.of_list l in
      let idx =
        int_of_float (Float.round (p /. 100.0 *. float_of_int (t.n - 1)))
      in
      arr.(max 0 (min (t.n - 1) idx))

let throughput_per_s ~ops ~elapsed_ns =
  if elapsed_ns = 0 then 0.0
  else float_of_int ops *. 1e9 /. float_of_int elapsed_ns
