(** Deterministic workload generation: keys, values and access
    distributions for the benchmarks. *)

type t

val create : ?seed:int -> unit -> t

val uniform_int : t -> int -> int
(** Uniform in [0, n). *)

val key : t -> space:int -> Bytes.t
(** A key "kNNNNNNNN" drawn uniformly from a space of [space] distinct
    keys. *)

val seq_key : int -> Bytes.t
(** The [i]-th sequential key (loading phases). *)

val value : t -> int -> Bytes.t
(** A pseudo-random value of exactly [n] bytes. *)

val shuffle : t -> 'a array -> unit

(** Zipf-distributed ranks (hot keys), for skewed workloads. *)
module Zipf : sig
  type dist

  val make : t -> n:int -> theta:float -> dist
  (** Ranks 0..n-1 with skew [theta] (0 = uniform, ~0.99 = typical
      YCSB-style skew). *)

  val draw : dist -> int
end
