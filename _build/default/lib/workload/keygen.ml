type t = Random.State.t

let create ?(seed = 0xbeef) () = Random.State.make [| seed |]

let uniform_int t n = Random.State.int t n

let seq_key i = Bytes.of_string (Printf.sprintf "k%08d" i)

let key t ~space = seq_key (Random.State.int t space)

let value t n =
  Bytes.init n (fun _ -> Char.chr (32 + Random.State.int t 95))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

module Zipf = struct
  type dist = { rng : Random.State.t; cdf : float array }

  let make rng ~n ~theta =
    if n <= 0 then invalid_arg "Zipf.make";
    let weights =
      Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) theta)
    in
    let total = Array.fold_left ( +. ) 0.0 weights in
    let cdf = Array.make n 0.0 in
    let acc = ref 0.0 in
    Array.iteri
      (fun i w ->
        acc := !acc +. (w /. total);
        cdf.(i) <- !acc)
      weights;
    cdf.(n - 1) <- 1.0;
    { rng; cdf }

  let draw d =
    let u = Random.State.float d.rng 1.0 in
    (* binary search for the first cdf entry >= u *)
    let lo = ref 0 and hi = ref (Array.length d.cdf - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if d.cdf.(mid) >= u then hi := mid else lo := mid + 1
    done;
    !lo
end
