(** Latency/throughput bookkeeping for the benchmark harness. *)

type t

val create : unit -> t
val add : t -> int -> unit
(** Record one sample (simulated nanoseconds). *)

val count : t -> int
val mean_ns : t -> float
val min_ns : t -> int
val max_ns : t -> int
val percentile_ns : t -> float -> int
(** e.g. [percentile_ns t 99.0]. *)

val mean_us : t -> float

val throughput_per_s : ops:int -> elapsed_ns:int -> float
(** Aggregate operations per second over a simulated interval. *)
