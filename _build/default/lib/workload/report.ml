let section id title = Printf.printf "\n== %s: %s ==\n" id title

let table ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun m row ->
        match List.nth_opt row c with
        | Some cell -> max m (String.length cell)
        | None -> m)
      0 all
  in
  let widths = List.init ncols width in
  let render row =
    String.concat "  "
      (List.mapi
         (fun c cell ->
           let w = List.nth widths c in
           let pad = w - String.length cell in
           if c = 0 then cell ^ String.make pad ' '
           else String.make pad ' ' ^ cell)
         (row @ List.init (ncols - List.length row) (fun _ -> "")))
  in
  Printf.printf "%s\n" (render header);
  Printf.printf "%s\n"
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> Printf.printf "%s\n" (render row)) rows

let note s = Printf.printf "   %s\n" s

let us v = Printf.sprintf "%.1f us" v

let group_thousands s =
  let n = String.length s in
  let buf = Buffer.create (n + (n / 3)) in
  String.iteri
    (fun i c ->
      if i > 0 && (n - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let ops v = group_thousands (Printf.sprintf "%.0f" v) ^ "/s"

let mbs v = Printf.sprintf "%.0f MB/s" v
