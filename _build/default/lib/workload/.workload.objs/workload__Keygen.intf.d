lib/workload/keygen.mli: Bytes
