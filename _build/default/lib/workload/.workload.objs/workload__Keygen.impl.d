lib/workload/keygen.ml: Array Bytes Char Float Printf Random
