lib/workload/report.ml: Buffer List Printf String
