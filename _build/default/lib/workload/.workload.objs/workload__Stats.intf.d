lib/workload/stats.mli:
