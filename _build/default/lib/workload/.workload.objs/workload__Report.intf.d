lib/workload/report.mli:
