(** Fixed-width table rendering for the benchmark harness, so every
    reproduced table/figure prints in a uniform, diffable format. *)

val section : string -> string -> unit
(** [section id title] prints a banner like
    ["== table6: RAWL throughput =="]. *)

val table : header:string list -> string list list -> unit
(** Aligned columns with a separator rule under the header. *)

val note : string -> unit
(** An indented free-text note under a section. *)

val us : float -> string
(** Format a microsecond quantity, e.g. ["4.3 us"]. *)

val ops : float -> string
(** Format an operations-per-second quantity with thousands grouping. *)

val mbs : float -> string
(** Format MB/s. *)
