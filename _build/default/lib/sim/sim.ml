exception Deadlock of string

(* Binary min-heap of events keyed by (time, seq); seq gives FIFO order
   among same-time events. *)
module Heap = struct
  type entry = { time : int; seq : int; thunk : unit -> unit }

  type t = { mutable a : entry array; mutable n : int }

  let dummy = { time = 0; seq = 0; thunk = ignore }

  let create () = { a = Array.make 256 dummy; n = 0 }

  let before x y = x.time < y.time || (x.time = y.time && x.seq < y.seq)

  let push t e =
    if t.n = Array.length t.a then begin
      let bigger = Array.make (2 * t.n) dummy in
      Array.blit t.a 0 bigger 0 t.n;
      t.a <- bigger
    end;
    t.a.(t.n) <- e;
    let i = ref t.n in
    t.n <- t.n + 1;
    while !i > 0 && before t.a.(!i) t.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = t.a.(p) in
      t.a.(p) <- t.a.(!i);
      t.a.(!i) <- tmp;
      i := p
    done

  let pop t =
    if t.n = 0 then None
    else begin
      let top = t.a.(0) in
      t.n <- t.n - 1;
      t.a.(0) <- t.a.(t.n);
      t.a.(t.n) <- dummy;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.n && before t.a.(l) t.a.(!smallest) then smallest := l;
        if r < t.n && before t.a.(r) t.a.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.a.(!smallest) in
          t.a.(!smallest) <- t.a.(!i);
          t.a.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end

  let size t = t.n
end

type t = {
  mutable clock : int;
  mutable seq : int;
  events : Heap.t;
  mutable started : int;
  mutable suspended : int;  (* processes parked via [suspend] *)
}

type _ Effect.t +=
  | Delay : t * int -> unit Effect.t
  | Suspend : t * ((unit -> unit) -> unit) -> unit Effect.t

let create () =
  { clock = 0; seq = 0; events = Heap.create (); started = 0; suspended = 0 }

let now t = t.clock

let schedule t time thunk =
  let seq = t.seq in
  t.seq <- seq + 1;
  Heap.push t.events { time; seq; thunk }

let delay t ns =
  if ns < 0 then invalid_arg "Sim.delay: negative";
  Effect.perform (Delay (t, ns))

let yield t = delay t 0

let suspend t register = Effect.perform (Suspend (t, register))

let run_process t body =
  let open Effect.Deep in
  t.started <- t.started + 1;
  match_with body ()
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay (sim, ns) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  schedule sim (sim.clock + ns) (fun () -> continue k ()))
          | Suspend (sim, register) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  sim.suspended <- sim.suspended + 1;
                  let resumed = ref false in
                  register (fun () ->
                      if !resumed then
                        failwith "Sim.suspend: resume called twice";
                      resumed := true;
                      sim.suspended <- sim.suspended - 1;
                      schedule sim sim.clock (fun () -> continue k ())))
          | _ -> None);
    }

let spawn_at ?name:_ t time body = schedule t time (fun () -> run_process t body)

let spawn ?name t body = spawn_at ?name t t.clock body

let run ?until t =
  let continue_run = ref true in
  while !continue_run do
    match Heap.pop t.events with
    | None ->
        if t.suspended > 0 then
          raise
            (Deadlock
               (Printf.sprintf "%d process(es) suspended with no events"
                  t.suspended));
        continue_run := false
    | Some { time; thunk; _ } -> (
        match until with
        | Some limit when time > limit ->
            (* Put it back and stop: caller may resume later. *)
            schedule t time thunk;
            t.clock <- limit;
            continue_run := false
        | _ ->
            t.clock <- time;
            thunk ())
  done;
  ignore (Heap.size t.events)

let processes_run t = t.started

module Mutex_r = struct
  type sim = t

  type t = {
    sim : sim;
    mutable locked : bool;
    waiters : (unit -> unit) Queue.t;
    mutable contentions : int;
  }

  let create sim =
    { sim; locked = false; waiters = Queue.create (); contentions = 0 }

  let lock m =
    if not m.locked then m.locked <- true
    else begin
      m.contentions <- m.contentions + 1;
      suspend m.sim (fun resume -> Queue.push resume m.waiters)
      (* The unlocker hands us ownership directly: [locked] stays true. *)
    end

  let try_lock m =
    if m.locked then false
    else begin
      m.locked <- true;
      true
    end

  let unlock m =
    if not m.locked then invalid_arg "Mutex_r.unlock: not locked";
    match Queue.take_opt m.waiters with
    | Some resume -> resume ()  (* ownership transfers; stays locked *)
    | None -> m.locked <- false

  let holder_waiters m = (if m.locked then 1 else 0) + Queue.length m.waiters
  let contentions m = m.contentions

  let with_lock m f =
    lock m;
    Fun.protect ~finally:(fun () -> unlock m) f
end

module Cond_r = struct
  type sim = t

  type t = { sim : sim; waiters : (unit -> unit) Queue.t }

  let create sim = { sim; waiters = Queue.create () }

  let wait c m =
    (* Release, park, re-acquire: the classic monitor protocol. *)
    Mutex_r.unlock m;
    suspend c.sim (fun resume -> Queue.push resume c.waiters);
    Mutex_r.lock m

  let signal c = match Queue.take_opt c.waiters with
    | Some resume -> resume ()
    | None -> ()

  let broadcast c =
    let all = Queue.to_seq c.waiters |> List.of_seq in
    Queue.clear c.waiters;
    List.iter (fun resume -> resume ()) all
end
