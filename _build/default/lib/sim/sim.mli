(** A discrete-event simulator with cooperative processes.

    This is the substrate that stands in for the paper's pthreads (see
    DESIGN.md section 1): benchmark "threads" are simulator processes,
    each memory primitive charges simulated nanoseconds through
    {!delay}, and shared resources ({!Mutex_r}, {!Cond_r}) serialize
    processes exactly where a real lock would.  Because every memory
    operation is a yield point, transactional conflicts and queueing on
    Berkeley DB's central log buffer arise from genuine interleavings —
    deterministically, from a seeded schedule.

    Processes are implemented with OCaml 5 effects: [delay] and blocking
    operations perform an effect captured by the scheduler, which
    resumes the continuation when the simulated clock reaches the wake
    time. *)

type t

val create : unit -> t

val now : t -> int
(** Current simulated time in nanoseconds. *)

val spawn : ?name:string -> t -> (unit -> unit) -> unit
(** Register a process to start at the current simulated time.  The
    body runs when {!run} reaches that moment. *)

val spawn_at : ?name:string -> t -> int -> (unit -> unit) -> unit
(** Start a process at an absolute simulated time. *)

val delay : t -> int -> unit
(** Advance this process's clock by [ns], yielding to any process
    scheduled earlier.  Must be called from inside a process. *)

val yield : t -> unit
(** [delay t 0]: give same-time processes a chance to run. *)

val suspend : t -> ((unit -> unit) -> unit) -> unit
(** [suspend t register] parks the current process and calls
    [register resume]; calling [resume] (from another process or the
    scheduler) requeues the parked process at the then-current time.
    [resume] must be called at most once.  This is the primitive the
    synchronization objects are built from. *)

val run : ?until:int -> t -> unit
(** Execute events until the queue is empty (or simulated time would
    exceed [until]).  Re-entrant with respect to [spawn]: processes may
    spawn more processes. *)

val processes_run : t -> int
(** Number of process bodies started so far (for tests). *)

exception Deadlock of string
(** Raised by {!run} when processes remain suspended with no pending
    events — every remaining process is blocked on a resource that
    nobody will release. *)

(** FIFO mutex: the model for any serialized software resource (Berkeley
    DB's centralized log buffer, a page latch).  Lock acquisitions are
    granted in arrival order, so queueing delay is measured faithfully. *)
module Mutex_r : sig
  type sim := t
  type t

  val create : sim -> t
  val lock : t -> unit
  val unlock : t -> unit
  val try_lock : t -> bool
  val holder_waiters : t -> int
  (** Queue length including holder. *)

  val contentions : t -> int
  (** Lock calls that had to wait. *)

  val with_lock : t -> (unit -> 'a) -> 'a
end

(** Condition variable over {!Mutex_r}, used by group commit. *)
module Cond_r : sig
  type sim := t
  type t

  val create : sim -> t
  val wait : t -> Mutex_r.t -> unit
  (** Atomically release the mutex and park; re-acquires before
      returning. *)

  val signal : t -> unit
  val broadcast : t -> unit
end
