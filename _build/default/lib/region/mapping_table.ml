type t = { dev : Scm.Scm_device.t; nframes : int }

open struct
  module Scm_device = Scm.Scm_device
  module Primitives = Scm.Primitives
end

let entry_bytes = 16

let frames_for ~nframes =
  let bytes = nframes * entry_bytes in
  (bytes + Layout.page_size - 1) / Layout.page_size

let create dev = { dev; nframes = Scm_device.nframes dev }

let inode_addr frame = frame * entry_bytes
let off_addr frame = (frame * entry_bytes) + 8

let format t dev =
  let reserved = frames_for ~nframes:t.nframes in
  for f = 0 to t.nframes - 1 do
    if f < reserved then begin
      Scm_device.store64 dev (inode_addr f) (-1L);
      Scm_device.store64 dev (off_addr f) 0L
    end
    else begin
      Scm_device.store64 dev (inode_addr f) 0L;
      Scm_device.store64 dev (off_addr f) 0L
    end
  done

type entry = Free | Reserved | Mapped of { inode : int; page_off : int }

let get t frame =
  match Scm_device.load64 t.dev (inode_addr frame) with
  | 0L -> Free
  | -1L -> Reserved
  | inode ->
      Mapped
        {
          inode = Int64.to_int inode;
          page_off = Int64.to_int (Scm_device.load64 t.dev (off_addr frame));
        }

let set_mapped (_ : t) env ~frame ~inode ~page_off =
  (* Offset first, inode last: a torn entry (offset landed, inode did
     not) still reads as Free. *)
  Primitives.wtstore env (off_addr frame) (Int64.of_int page_off);
  Primitives.wtstore env (inode_addr frame) (Int64.of_int inode);
  Primitives.fence env

let set_free (_ : t) env ~frame =
  Primitives.wtstore env (inode_addr frame) 0L;
  Primitives.fence env

let iter t f =
  for frame = 0 to t.nframes - 1 do
    f frame (get t frame)
  done
