lib/region/mapping_table.ml: Int64 Layout Scm
