lib/region/layout.ml:
