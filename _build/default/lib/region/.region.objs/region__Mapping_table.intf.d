lib/region/mapping_table.mli: Scm
