lib/region/pmem.mli: Backing_store Bytes Manager Scm
