lib/region/backing_store.ml: Array Bytes Filename Fun Hashtbl List Printf String Sys Unix
