lib/region/pstatic.ml: Bytes Char Int64 Layout Pmem Printf Scm String
