lib/region/layout.mli:
