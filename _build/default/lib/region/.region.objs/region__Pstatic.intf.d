lib/region/pstatic.mli: Pmem
