lib/region/backing_store.mli: Bytes
