lib/region/manager.ml: Backing_store Bytes Hashtbl List Mapping_table Queue Random Scm
