lib/region/manager.mli: Backing_store Scm
