lib/region/pmem.ml: Backing_store Hashtbl Int64 Layout List Manager Printf Scm
