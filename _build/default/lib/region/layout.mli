(** The persistent virtual address space.

    Mnemosyne allocates all regions in one reserved power-of-two range
    of virtual address space, which "allows a quick determination of
    whether an address refers to persistent data" (paper section 4.2) —
    the range check the transaction system performs on every write.

    The static region sits at the base of the range; it holds the region
    table (the intention log for [pmap]) followed by the [pstatic]
    variable area.  Dynamic regions are placed above [dynamic_base]. *)

val page_size : int
(** 4096. *)

val persistent_base : int
(** Base virtual address of the reserved persistent range. *)

val persistent_size : int
(** Size of the reserved range (a power of two). *)

val is_persistent : int -> bool
(** The quick range check. *)

val static_base : int
val static_size : int

val region_table_base : int
val region_table_size : int
(** 16 KiB at the start of the static region (paper section 4.2). *)

val pstatic_base : int
val pstatic_size : int
(** The [pstatic] variable area: the rest of the static region. *)

val dynamic_base : int
(** First virtual address available to dynamically created regions. *)

val page_of : int -> int
val page_base : int -> int
val pages_for : int -> int
(** Number of pages covering a byte length. *)
