(** The kernel region manager (paper section 4.2).

    Owns the SCM frame pool: it reconstructs persistent mappings from
    the {!Mapping_table} at boot, allocates frames to (file, page)
    pairs, faults pages in from backing files, and swaps frames out
    under memory pressure.  Everything volatile here (the free list, the
    residency index) is rebuilt by {!boot}; only the mapping table in
    SCM and the backing files persist.

    All durable mapping-table updates and I/O charges go to the calling
    thread's environment. *)

type t

type boot_stats = {
  frames_scanned : int;
  mappings_rebuilt : int;
  boot_ns : int;
      (** Modeled reconstruction time: what the paper measures as
          "734 ms for 1 GB of SCM" (section 6.3.2). *)
}

val format : Scm.Env.machine -> Backing_store.t -> t
(** Initialize a fresh device: format the mapping table, free-list all
    non-reserved frames. *)

val boot : ?frame_reconstruct_ns:int -> Scm.Env.machine -> Backing_store.t -> t
(** Reconstruct from an existing device image: scan the mapping table,
    rebuild the residency index and free list.  Raises [Failure] if the
    device was never formatted. *)

val boot_stats : t -> boot_stats
val machine : t -> Scm.Env.machine
val backing : t -> Backing_store.t

val free_frames : t -> int
val resident_frames : t -> int

val frame_of : t -> inode:int -> page_off:int -> int option
(** Residency lookup, no fault. *)

val fault_in : t -> Scm.Env.t -> inode:int -> page_off:int -> int
(** Return the frame holding the page, loading it from the backing file
    (and evicting a victim if SCM is full).  Raises [Failure] if there
    is genuinely no frame to reclaim. *)

val alloc_fresh : t -> Scm.Env.t -> inode:int -> page_off:int -> int
(** Like {!fault_in} for a page known to be brand new: the frame is
    zeroed instead of read from the file (cheaper, and used by [pmap]
    right after creating an empty backing file). *)

val evict_one : t -> Scm.Env.t -> bool
(** Swap one pseudo-randomly chosen resident page out to its backing
    file; false if nothing is resident.  Also used directly by the swap
    tests. *)

val release_pages : t -> Scm.Env.t -> inode:int -> unit
(** Drop every resident page of a file without writing it back (the
    [punmap]-and-delete path). *)

val sync_to_backing : t -> Scm.Env.t -> inode:int -> unit
(** Write every resident page of a file to the backing file, keeping it
    resident.  Clean-shutdown path: makes the backing files a complete
    copy so even a lost SCM device can be recovered. *)

val on_evict : t -> (inode:int -> page_off:int -> unit) -> unit
(** Register a hook called when a page loses its frame (swap-out,
    release, or wear-leveling migration); the address-translation
    caches above invalidate through this. *)

val wear_level : t -> ?max_moves:int -> Scm.Env.t -> threshold:float -> int
(** The remapping the paper sketches in section 4.5: "virtualization
    enables remapping heavily used virtual pages to spread writes to
    different physical PCM frames".  Migrates every resident page whose
    frame has absorbed more than [threshold] times the mean per-frame
    write count (this boot) onto the least-worn free frame: copy, then
    durably install the new mapping, then free the old one — a crash
    between the two steps leaves both frames holding identical data, so
    recovery is safe with either.  Returns pages moved (at most
    [max_moves], default 64).  No-op when no free frame is colder than
    the source. *)

val swaps_out : t -> int
val swaps_in : t -> int
