let page_size = 4096

(* 1 GiB base, 1 TiB reserved range: both powers of two, so the range
   check compiles to a mask on real hardware and stays cheap here. *)
let persistent_base = 0x4000_0000
let persistent_size = 0x100_0000_0000

let is_persistent addr =
  addr >= persistent_base && addr < persistent_base + persistent_size

let static_base = persistent_base
let static_size = 256 * 1024

let region_table_base = static_base
let region_table_size = 16 * 1024

let pstatic_base = static_base + region_table_size
let pstatic_size = static_size - region_table_size

let dynamic_base = persistent_base + (16 * 1024 * 1024)

let page_of addr = addr / page_size
let page_base addr = addr - (addr mod page_size)
let pages_for len = (len + page_size - 1) / page_size
