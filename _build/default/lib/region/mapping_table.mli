(** The persistent mapping table, "stored at the base of physical SCM"
    (paper section 4.2).

    One entry per SCM frame, recording the triple
    [<scm_frame, page_offset, inode>] that associates the frame with a
    page of a backing file.  The region manager scans this table when
    the OS boots to reconstruct all persistent mappings and free-list
    the unmapped frames.

    Entries are two 64-bit words: the inode word (0 = free,
    -1 = reserved for the table itself) and the page-offset word.  Each
    word is written atomically; an entry update writes the offset word
    first and the inode word last, so a torn entry is never interpreted
    as a valid mapping. *)

type t

val frames_for : nframes:int -> int
(** Number of frames at the base of SCM the table itself occupies. *)

val create : Scm.Scm_device.t -> t
(** View the table of an existing (possibly just formatted) device. *)

val format : t -> Scm.Scm_device.t -> unit
(** Initialize: mark the table's own frames reserved, all others free.
    Device writes are direct (the "kernel" formats before any cache
    exists). *)

type entry = Free | Reserved | Mapped of { inode : int; page_off : int }

val get : t -> int -> entry
(** Read the entry for a frame directly from the device (boot-time
    scan path). *)

val set_mapped : t -> Scm.Env.t -> frame:int -> inode:int -> page_off:int -> unit
(** Durably record a mapping (write-through + fence, charged to the
    calling thread's environment). *)

val set_free : t -> Scm.Env.t -> frame:int -> unit

val iter : t -> (int -> entry -> unit) -> unit
(** Boot-time scan over all frames. *)
