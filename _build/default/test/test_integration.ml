(* Full-stack integration tests: every layer at once — regions, heap,
   logs and transactions feeding four persistent data structures, under
   repeated adversarial crashes, SCM pressure (swapping), concurrent
   simulated threads and the complete save-image/reboot cycle. *)

let with_tmpdir f =
  let dir = Filename.temp_file "mnemoint" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun n -> rm (Filename.concat p n)) (Sys.readdir p);
          Sys.rmdir p
        end
        else Sys.remove p
      in
      if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

let b = Bytes.of_string

(* ------------------------------------------------------------------ *)

let test_four_structures_through_crash_loops () =
  with_tmpdir (fun dir ->
      (* every structure gets writes in each life; each life ends in an
         adversarial crash; every recovery must find all previous
         committed state *)
      let lives = 5 and per_life = 15 in
      let inst = ref (Mnemosyne.open_instance ~dir ()) in
      for life = 0 to lives - 1 do
        let t = !inst in
        let ht_slot = Mnemosyne.pstatic t "it.ht" 8 in
        let avl_slot = Mnemosyne.pstatic t "it.avl" 8 in
        let bp_slot = Mnemosyne.pstatic t "it.bp" 8 in
        let lst_slot = Mnemosyne.pstatic t "it.lst" 8 in
        let get tx slot create attach =
          match Int64.to_int (Mtm.Txn.load tx slot) with
          | 0 -> create tx
          | root -> attach tx root
        in
        Mnemosyne.atomically t (fun tx ->
            let ht =
              get tx ht_slot
                (fun tx -> Pstruct.Phashtable.create tx ~slot:ht_slot ~buckets:64)
                (fun tx root -> Pstruct.Phashtable.attach tx ~root)
            in
            let avl =
              get tx avl_slot
                (fun tx -> Pstruct.Avl_tree.create tx ~slot:avl_slot)
                (fun tx root -> Pstruct.Avl_tree.attach tx ~root)
            in
            let bp =
              get tx bp_slot
                (fun tx -> Pstruct.Bp_tree.create tx ~slot:bp_slot)
                (fun tx root -> Pstruct.Bp_tree.attach tx ~root)
            in
            let lst =
              get tx lst_slot
                (fun tx -> Pstruct.Plist.create tx ~slot:lst_slot)
                (fun tx root -> Pstruct.Plist.attach tx ~root)
            in
            (* verify everything from earlier lives *)
            Alcotest.(check int) "hashtable carried" (life * per_life)
              (Pstruct.Phashtable.length tx ht);
            Alcotest.(check int) "avl carried" (life * per_life)
              (Pstruct.Avl_tree.length tx avl);
            Alcotest.(check int) "b+tree carried" (life * per_life)
              (Pstruct.Bp_tree.length tx bp);
            Alcotest.(check int) "list carried" life
              (Pstruct.Plist.length tx lst);
            for i = 0 to (life * per_life) - 1 do
              let k = Printf.sprintf "k%05d" i in
              if Pstruct.Phashtable.find tx ht (b k) = None then
                Alcotest.failf "life %d: hashtable lost %s" life k;
              if Pstruct.Avl_tree.find tx avl (Int64.of_int i) = None then
                Alcotest.failf "life %d: avl lost %d" life i;
              if Pstruct.Bp_tree.find tx bp (Int64.of_int i) = None then
                Alcotest.failf "life %d: b+tree lost %d" life i
            done;
            Pstruct.Avl_tree.validate tx avl;
            Pstruct.Bp_tree.validate tx bp);
        (* add this life's data, one transaction per item *)
        for i = life * per_life to ((life + 1) * per_life) - 1 do
          Mnemosyne.atomically t (fun tx ->
              let ht =
                Pstruct.Phashtable.attach tx
                  ~root:(Int64.to_int (Mtm.Txn.load tx ht_slot))
              in
              let avl =
                Pstruct.Avl_tree.attach tx
                  ~root:(Int64.to_int (Mtm.Txn.load tx avl_slot))
              in
              let bp =
                Pstruct.Bp_tree.attach tx
                  ~root:(Int64.to_int (Mtm.Txn.load tx bp_slot))
              in
              Pstruct.Phashtable.put tx ht
                (b (Printf.sprintf "k%05d" i))
                (b (string_of_int i));
              Pstruct.Avl_tree.put tx avl (Int64.of_int i) (b "avl");
              Pstruct.Bp_tree.put tx bp (Int64.of_int i) (b "bp"))
        done;
        Mnemosyne.atomically t (fun tx ->
            let lst =
              Pstruct.Plist.attach tx
                ~root:(Int64.to_int (Mtm.Txn.load tx lst_slot))
            in
            Pstruct.Plist.push tx lst (b (Printf.sprintf "life %d" life)));
        inst := Mnemosyne.reincarnate t
      done)

let test_transactions_under_scm_pressure () =
  with_tmpdir (fun dir ->
      (* a device too small for the working set: the region manager
         swaps pages to backing files underneath running transactions *)
      let geometry =
        { Mnemosyne.scm_frames = 112; heap_superblocks = 192;
          heap_large_bytes = 1 lsl 16 }
      in
      let inst = Mnemosyne.open_instance ~geometry ~dir () in
      let slot = Mnemosyne.pstatic inst "press.ht" 8 in
      let table =
        Mnemosyne.atomically inst (fun tx ->
            Pstruct.Phashtable.create tx ~slot ~buckets:256)
      in
      let kg = Workload.Keygen.create () in
      for i = 0 to 299 do
        Mnemosyne.atomically inst (fun tx ->
            Pstruct.Phashtable.put tx table (Workload.Keygen.seq_key i)
              (Workload.Keygen.value kg 1024))
      done;
      let mgr = Region.Pmem.manager (Mnemosyne.pmem inst) in
      Alcotest.(check bool) "swapping actually happened" true
        (Region.Manager.swaps_out mgr > 0);
      (* all data readable back through the faulting path *)
      Mnemosyne.atomically inst (fun tx ->
          Alcotest.(check int) "all entries" 300
            (Pstruct.Phashtable.length tx table);
          for i = 0 to 299 do
            if Pstruct.Phashtable.find tx table (Workload.Keygen.seq_key i)
               = None
            then Alcotest.failf "entry %d lost under pressure" i
          done);
      (* clean shutdown and recovery from backing files + image *)
      let inst = Mnemosyne.reincarnate inst in
      let slot = Mnemosyne.pstatic inst "press.ht" 8 in
      Mnemosyne.atomically inst (fun tx ->
          let table =
            Pstruct.Phashtable.attach tx
              ~root:(Int64.to_int (Mtm.Txn.load tx slot))
          in
          Alcotest.(check int) "entries after reboot" 300
            (Pstruct.Phashtable.length tx table)))

let test_concurrent_structures_and_crash () =
  with_tmpdir (fun dir ->
      let mtm = { Mtm.Txn.default_config with truncation = Mtm.Txn.Async } in
      let inst = Mnemosyne.open_instance ~mtm ~dir () in
      let machine = Mnemosyne.machine inst in
      let sim = Sim.create () in
      let heap_mu = Sim.Mutex_r.create sim in
      Pmheap.Heap.set_exclusion (Mnemosyne.heap inst) (fun f ->
          Sim.Mutex_r.with_lock heap_mu f);
      let slot = Mnemosyne.pstatic inst "conc.bp" 8 in
      let tree =
        Mnemosyne.atomically inst (fun tx -> Pstruct.Bp_tree.create tx ~slot)
      in
      let per_thread = 30 in
      for i = 0 to 3 do
        Sim.spawn sim (fun () ->
            let env =
              Scm.Env.view machine
                ~delay:(fun ns -> Sim.delay sim ns)
                ~now:(fun () -> Sim.now sim)
            in
            let th = Mnemosyne.thread inst i env in
            for k = 0 to per_thread - 1 do
              Mtm.Txn.run th (fun tx ->
                  Pstruct.Bp_tree.put tx tree
                    (Int64.of_int ((i * 1000) + k))
                    (b (Printf.sprintf "%d/%d" i k)))
            done)
      done;
      Sim.run sim;
      (* hard crash with async truncation pending: recovery must replay *)
      let inst = Mnemosyne.reincarnate inst in
      let slot = Mnemosyne.pstatic inst "conc.bp" 8 in
      Mnemosyne.atomically inst (fun tx ->
          let tree =
            Pstruct.Bp_tree.attach tx
              ~root:(Int64.to_int (Mtm.Txn.load tx slot))
          in
          Pstruct.Bp_tree.validate tx tree;
          Alcotest.(check int) "every commit survived" (4 * per_thread)
            (Pstruct.Bp_tree.length tx tree);
          for i = 0 to 3 do
            for k = 0 to per_thread - 1 do
              match
                Pstruct.Bp_tree.find tx tree (Int64.of_int ((i * 1000) + k))
              with
              | Some v when v = b (Printf.sprintf "%d/%d" i k) -> ()
              | Some _ -> Alcotest.failf "thread %d key %d corrupt" i k
              | None -> Alcotest.failf "thread %d key %d lost" i k
            done
          done))

let test_wear_leveling_during_transactions () =
  with_tmpdir (fun dir ->
      let inst = Mnemosyne.open_instance ~dir () in
      let v = Mnemosyne.view inst in
      let slot = Mnemosyne.pstatic inst "wl.ht" 8 in
      let table =
        Mnemosyne.atomically inst (fun tx ->
            Pstruct.Phashtable.create tx ~slot ~buckets:64)
      in
      let kg = Workload.Keygen.create () in
      (* interleave transactional updates with leveling passes: stale
         translations must be invalidated transparently *)
      for i = 0 to 199 do
        Mnemosyne.atomically inst (fun tx ->
            Pstruct.Phashtable.put tx table
              (Workload.Keygen.seq_key (i mod 20))
              (Workload.Keygen.value kg 64));
        if i mod 25 = 24 then ignore (Region.Pmem.wear_level v ~threshold:1.5)
      done;
      Mnemosyne.atomically inst (fun tx ->
          Alcotest.(check int) "steady state" 20
            (Pstruct.Phashtable.length tx table)))

let prop_crash_during_concurrent_execution =
  (* four threads transfer between accounts; the machine dies at a
     random simulated instant mid-execution; after recovery the total
     is intact — atomicity under concurrency, not just at quiescence *)
  QCheck.Test.make ~name:"invariant survives crash mid-concurrent-run"
    ~count:12
    QCheck.(pair (int_bound 10_000) (int_bound 5_000_000))
    (fun (seed, cut_ns) ->
      with_tmpdir (fun dir ->
          let mtm =
            { Mtm.Txn.default_config with truncation = Mtm.Txn.Async }
          in
          let inst = Mnemosyne.open_instance ~seed ~mtm ~dir () in
          let naccounts = 16 in
          let slot = Mnemosyne.pstatic inst "bank" 8 in
          let accounts =
            Mnemosyne.atomically inst (fun tx ->
                let a = Mtm.Txn.alloc tx (naccounts * 64) ~slot in
                for i = 0 to naccounts - 1 do
                  (* one account per cache line to limit conflicts *)
                  Mtm.Txn.store tx (a + (64 * i)) 1000L
                done;
                a)
          in
          let machine = Mnemosyne.machine inst in
          let sim = Sim.create () in
          for i = 0 to 3 do
            Sim.spawn sim (fun () ->
                let env =
                  Scm.Env.view machine
                    ~delay:(fun ns -> Sim.delay sim ns)
                    ~now:(fun () -> Sim.now sim)
                in
                let th = Mnemosyne.thread inst i env in
                let rng = Random.State.make [| seed; i |] in
                for _ = 1 to 200 do
                  (try
                     Mtm.Txn.run th (fun tx ->
                         let from_i = Random.State.int rng naccounts in
                         let to_i = Random.State.int rng naccounts in
                         let amount =
                           Int64.of_int (Random.State.int rng 50)
                         in
                         let fa = accounts + (64 * from_i) in
                         let ta = accounts + (64 * to_i) in
                         Mtm.Txn.store tx fa
                           (Int64.sub (Mtm.Txn.load tx fa) amount);
                         Mtm.Txn.store tx ta
                           (Int64.add (Mtm.Txn.load tx ta) amount))
                   with Mtm.Txn.Contention -> ());
                  Sim.delay sim 500
                done)
          done;
          (* stop the world mid-run: whatever is in flight dies *)
          Sim.run ~until:(1 + cut_ns) sim;
          let inst = Mnemosyne.reincarnate inst in
          let slot = Mnemosyne.pstatic inst "bank" 8 in
          let total =
            Mnemosyne.atomically inst (fun tx ->
                let a = Int64.to_int (Mtm.Txn.load tx slot) in
                let sum = ref 0L in
                for i = 0 to naccounts - 1 do
                  sum := Int64.add !sum (Mtm.Txn.load tx (a + (64 * i)))
                done;
                !sum)
          in
          total = Int64.of_int (naccounts * 1000)))

let prop_multi_life_model =
  QCheck.Test.make
    ~name:"hashtable matches model across random ops and crash boundaries"
    ~count:8
    QCheck.(
      pair (int_bound 1000)
        (list_of_size Gen.(2 -- 4)
           (list_of_size Gen.(5 -- 25)
              (triple bool (int_bound 25) (int_bound 9999)))))
    (fun (seed, lives) ->
      with_tmpdir (fun dir ->
          let model : (string, string) Hashtbl.t = Hashtbl.create 32 in
          let inst = ref (Mnemosyne.open_instance ~seed ~dir ()) in
          List.iter
            (fun ops ->
              let t = !inst in
              let slot = Mnemosyne.pstatic t "prop.ht" 8 in
              let table =
                Mnemosyne.atomically t (fun tx ->
                    match Int64.to_int (Mtm.Txn.load tx slot) with
                    | 0 -> Pstruct.Phashtable.create tx ~slot ~buckets:32
                    | root -> Pstruct.Phashtable.attach tx ~root)
              in
              (* after recovery, contents must match the model *)
              let ok =
                Mnemosyne.atomically t (fun tx ->
                    Hashtbl.fold
                      (fun k v ok ->
                        ok
                        && Pstruct.Phashtable.find tx table (b k)
                           = Some (Bytes.of_string v))
                      model
                      (Pstruct.Phashtable.length tx table
                      = Hashtbl.length model))
              in
              if not ok then failwith "model mismatch after recovery";
              List.iter
                (fun (is_remove, k, v) ->
                  let key = Printf.sprintf "key%d" k in
                  Mnemosyne.atomically t (fun tx ->
                      if is_remove then begin
                        ignore (Pstruct.Phashtable.remove tx table (b key));
                        Hashtbl.remove model key
                      end
                      else begin
                        Pstruct.Phashtable.put tx table (b key)
                          (b (string_of_int v));
                        Hashtbl.replace model key (string_of_int v)
                      end))
                ops;
              inst := Mnemosyne.reincarnate t)
            lives;
          true))

let () =
  Alcotest.run "integration"
    [
      ( "full-stack",
        [
          Alcotest.test_case "four structures through crash loops" `Quick
            test_four_structures_through_crash_loops;
          Alcotest.test_case "transactions under SCM pressure" `Quick
            test_transactions_under_scm_pressure;
          Alcotest.test_case "concurrent structures and crash" `Quick
            test_concurrent_structures_and_crash;
          Alcotest.test_case "wear leveling during transactions" `Quick
            test_wear_leveling_during_transactions;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_multi_life_model;
          QCheck_alcotest.to_alcotest prop_crash_during_concurrent_execution;
        ] );
    ]
