(* Tests for the persistent heap: the allocation log, Hoard superblocks,
   the large-object allocator and the pmalloc/pfree facade — including
   crash-recovery and allocate-in-one-run/free-in-the-next. *)

let with_tmpdir f =
  let dir = Filename.temp_file "mnemoheap" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun name -> Sys.remove (Filename.concat dir name))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let stack ?(nframes = 2048) ?(seed = 9) dir =
  let m = Scm.Env.make_machine ~seed ~nframes () in
  let backing = Region.Backing_store.open_dir dir in
  let t = Region.Pmem.open_instance m backing in
  (m, Region.Pmem.default_view t)

let reboot (m : Scm.Env.machine) dir =
  let m' = Scm.Env.machine_of_device m.dev in
  let backing = Region.Backing_store.open_dir dir in
  let t = Region.Pmem.open_instance m' backing in
  (m', Region.Pmem.default_view t)

let make_heap ?(superblocks = 8) ?(large_bytes = 65536) v =
  let base =
    Region.Pmem.pmap v (Pmheap.Heap.region_bytes_for ~superblocks ~large_bytes)
  in
  (base, Pmheap.Heap.create v ~base ~superblocks ~large_bytes)

(* ------------------------------------------------------------------ *)
(* Alloc log *)

let test_alloc_log_commit_applies () =
  with_tmpdir (fun dir ->
      let _, v = stack dir in
      let data = Region.Pmem.pmap v 4096 in
      let lbase = Region.Pmem.pmap v Pmheap.Alloc_log.region_bytes in
      let alog = Pmheap.Alloc_log.create v ~base:lbase in
      Pmheap.Alloc_log.commit alog [ (data, 1L); (data + 8, 2L) ];
      Alcotest.(check int64) "w0" 1L (Region.Pmem.load v data);
      Alcotest.(check int64) "w1" 2L (Region.Pmem.load v (data + 8)))

let test_alloc_log_replays_unapplied_record () =
  with_tmpdir (fun dir ->
      (* Craft a "crashed between log flush and data write" state by
         appending a record through the raw RAWL interface, then verify
         Alloc_log.attach replays it. *)
      let m, v = stack dir in
      let data = Region.Pmem.pmap v 4096 in
      let lbase = Region.Pmem.pmap v Pmheap.Alloc_log.region_bytes in
      ignore (Pmheap.Alloc_log.create v ~base:lbase);
      let raw, _ = Pmlog.Rawl.attach v ~base:lbase in
      (match
         Pmlog.Rawl.append raw
           [| 1L; Int64.of_int (data + 16); 77L |]
       with
      | Pmlog.Rawl.Appended _ -> ()
      | Pmlog.Rawl.Full -> Alcotest.fail "Full");
      Pmlog.Rawl.flush raw;
      Scm.Crash.inject m;
      let _, v' = reboot m dir in
      let _, replayed = Pmheap.Alloc_log.attach v' ~base:lbase in
      Alcotest.(check int) "one record replayed" 1 replayed;
      Alcotest.(check int64) "write redone" 77L
        (Region.Pmem.load v' (data + 16)))

(* ------------------------------------------------------------------ *)
(* Heap basics *)

let test_pmalloc_sets_slot () =
  with_tmpdir (fun dir ->
      let _, v = stack dir in
      let _, heap = make_heap v in
      let slot = Region.Pstatic.get v "p" 8 in
      let addr = Pmheap.Heap.pmalloc heap 100 ~slot in
      Alcotest.(check int64) "slot holds the block" (Int64.of_int addr)
        (Region.Pmem.load v slot);
      Alcotest.(check int) "class rounding" 128
        (Pmheap.Heap.block_bytes heap addr);
      Pmheap.Heap.pfree heap ~slot;
      Alcotest.(check int64) "slot nullified" 0L (Region.Pmem.load v slot))

let test_distinct_blocks () =
  with_tmpdir (fun dir ->
      let _, v = stack dir in
      let _, heap = make_heap v in
      let addrs = List.init 200 (fun _ -> Pmheap.Heap.pmalloc_raw heap 64) in
      Alcotest.(check int) "all distinct" 200
        (List.length (List.sort_uniq compare addrs));
      List.iter
        (fun a ->
          Alcotest.(check bool) "8-aligned" true (a land 7 = 0);
          (* blocks must not overlap: spacing is at least the class *)
          ())
        addrs)

let test_double_free_detected () =
  with_tmpdir (fun dir ->
      let _, v = stack dir in
      let _, heap = make_heap v in
      let a = Pmheap.Heap.pmalloc_raw heap 32 in
      Pmheap.Heap.pfree_raw heap a;
      Alcotest.check_raises "double free"
        (Invalid_argument "Hoard: address in unassigned superblock")
        (fun () -> Pmheap.Heap.pfree_raw heap a);
      (* with another block keeping the superblock live, the bitmap
         check fires instead *)
      let b = Pmheap.Heap.pmalloc_raw heap 32 in
      let c = Pmheap.Heap.pmalloc_raw heap 32 in
      Pmheap.Heap.pfree_raw heap b;
      Alcotest.check_raises "double free with live superblock"
        (Invalid_argument "Hoard.free: block is not allocated (double free?)")
        (fun () -> Pmheap.Heap.pfree_raw heap b);
      Pmheap.Heap.pfree_raw heap c)

let test_size_class_reuse () =
  with_tmpdir (fun dir ->
      let _, v = stack dir in
      let _, heap = make_heap ~superblocks:2 v in
      (* Fill a superblock with one class, free everything, then reuse
         the same superblock for a different class. *)
      let small = List.init 100 (fun _ -> Pmheap.Heap.pmalloc_raw heap 8) in
      List.iter (Pmheap.Heap.pfree_raw heap) small;
      let big = List.init 30 (fun _ -> Pmheap.Heap.pmalloc_raw heap 256) in
      Alcotest.(check int) "streams allocated" 30 (List.length big);
      List.iter (Pmheap.Heap.pfree_raw heap) big)

let test_large_alloc_and_coalesce () =
  with_tmpdir (fun dir ->
      let _, v = stack dir in
      let _, heap = make_heap ~large_bytes:65536 v in
      let a = Pmheap.Heap.pmalloc_raw heap 10_000 in
      let b = Pmheap.Heap.pmalloc_raw heap 10_000 in
      let c = Pmheap.Heap.pmalloc_raw heap 10_000 in
      Alcotest.(check bool) "usable size" true
        (Pmheap.Heap.block_bytes heap a >= 10_000);
      (* free middle, then sides: coalescing must let a 30k block fit *)
      Pmheap.Heap.pfree_raw heap b;
      Pmheap.Heap.pfree_raw heap a;
      Pmheap.Heap.pfree_raw heap c;
      let d = Pmheap.Heap.pmalloc_raw heap 30_000 in
      Pmheap.Heap.pfree_raw heap d)

let test_exhaustion_raises () =
  with_tmpdir (fun dir ->
      let _, v = stack dir in
      let _, heap = make_heap ~superblocks:1 ~large_bytes:4096 v in
      Alcotest.check_raises "large area exhausted"
        (Failure "Large_alloc.alloc: no chunk large enough") (fun () ->
          ignore (Pmheap.Heap.pmalloc_raw heap 8192)))

(* ------------------------------------------------------------------ *)
(* Reincarnation *)

let test_alloc_in_one_run_free_in_next () =
  with_tmpdir (fun dir ->
      let base, slot, addr, m =
        let m, v = stack dir in
        let base, heap = make_heap v in
        let slot = Region.Pstatic.get v "node" 8 in
        let addr = Pmheap.Heap.pmalloc heap 500 ~slot in
        (* write data into the block, durably *)
        Region.Pmem.wtstore v addr 321L;
        Region.Pmem.fence v;
        (base, slot, addr, m)
      in
      Scm.Crash.inject m;
      let _, v' = reboot m dir in
      let heap' = Pmheap.Heap.attach v' ~base in
      let stats = Pmheap.Heap.reincarnation heap' in
      Alcotest.(check int) "superblocks scavenged" 8 stats.superblocks_scanned;
      Alcotest.(check bool) "scavenge cost modeled" true
        (stats.scavenge_ns > 0);
      Alcotest.(check int64) "slot survived" (Int64.of_int addr)
        (Region.Pmem.load v' slot);
      Alcotest.(check int64) "data survived" 321L (Region.Pmem.load v' addr);
      (* the block is still accounted allocated: a new allocation cannot
         return it *)
      let fresh = Pmheap.Heap.pmalloc_raw heap' 500 in
      Alcotest.(check bool) "no reuse of live block" true (fresh <> addr);
      (* free-in-the-next-invocation *)
      Pmheap.Heap.pfree heap' ~slot;
      Alcotest.(check int64) "slot cleared" 0L (Region.Pmem.load v' slot))

let test_large_survives_reboot () =
  with_tmpdir (fun dir ->
      let base, addr, m =
        let m, v = stack dir in
        let base, heap = make_heap v in
        let addr = Pmheap.Heap.pmalloc_raw heap 20_000 in
        Region.Pmem.wtstore v (addr + 8000) 5L;
        Region.Pmem.fence v;
        (base, addr, m)
      in
      Scm.Crash.inject m;
      let _, v' = reboot m dir in
      let heap' = Pmheap.Heap.attach v' ~base in
      Alcotest.(check bool) "size survives" true
        (Pmheap.Heap.block_bytes heap' addr >= 20_000);
      Alcotest.(check int64) "data survives" 5L
        (Region.Pmem.load v' (addr + 8000));
      Pmheap.Heap.pfree_raw heap' addr)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_heap_no_overlap =
  QCheck.Test.make ~name:"live blocks never overlap, sizes honored"
    ~count:30
    QCheck.(
      list_of_size Gen.(5 -- 60)
        (pair bool (int_range 1 12_000)))
    (fun ops ->
      with_tmpdir (fun dir ->
          let _, v = stack dir in
          let _, heap = make_heap ~superblocks:16 ~large_bytes:262144 v in
          let live = ref [] in
          List.iter
            (fun (is_free, size) ->
              if is_free && !live <> [] then begin
                let addr, _ = List.hd !live in
                Pmheap.Heap.pfree_raw heap addr;
                live := List.tl !live
              end
              else
                match Pmheap.Heap.pmalloc_raw heap size with
                | addr -> live := (addr, size) :: !live
                | exception Failure _ -> ())
            ops;
          (* usable size covers the request *)
          List.for_all
            (fun (addr, size) -> Pmheap.Heap.block_bytes heap addr >= size)
            !live
          &&
          (* no two live blocks overlap *)
          let sorted =
            List.sort compare
              (List.map
                 (fun (a, _) -> (a, a + Pmheap.Heap.block_bytes heap a))
                 !live)
          in
          let rec disjoint = function
            | (_, e1) :: ((s2, _) :: _ as rest) -> e1 <= s2 && disjoint rest
            | _ -> true
          in
          disjoint sorted))

let prop_heap_survives_crash_after_every_op =
  QCheck.Test.make ~name:"heap attach succeeds after crash at any op count"
    ~count:20
    QCheck.(pair (int_bound 1000) (int_range 1 25))
    (fun (seed, nops) ->
      with_tmpdir (fun dir ->
          let m, v = stack ~seed dir in
          let base, heap = make_heap v in
          let slot = Region.Pstatic.get v "s" 8 in
          let rng = Random.State.make [| seed |] in
          for _ = 1 to nops do
            if Random.State.bool rng then begin
              if Region.Pmem.load v slot <> 0L then
                Pmheap.Heap.pfree heap ~slot
            end
            else if Region.Pmem.load v slot = 0L then
              ignore
                (Pmheap.Heap.pmalloc heap
                   (1 + Random.State.int rng 6000)
                   ~slot)
          done;
          Scm.Crash.inject m;
          let _, v' = reboot m dir in
          let heap' = Pmheap.Heap.attach v' ~base in
          (* the slot is consistent: either null or a live block whose
             size is queryable *)
          match Int64.to_int (Region.Pmem.load v' slot) with
          | 0 -> true
          | addr -> Pmheap.Heap.block_bytes heap' addr > 0))

let () =
  Alcotest.run "heap"
    [
      ( "alloc-log",
        [
          Alcotest.test_case "commit applies" `Quick
            test_alloc_log_commit_applies;
          Alcotest.test_case "replays unapplied record" `Quick
            test_alloc_log_replays_unapplied_record;
        ] );
      ( "hoard",
        [
          Alcotest.test_case "pmalloc sets slot" `Quick test_pmalloc_sets_slot;
          Alcotest.test_case "distinct blocks" `Quick test_distinct_blocks;
          Alcotest.test_case "double free detected" `Quick
            test_double_free_detected;
          Alcotest.test_case "size class reuse" `Quick test_size_class_reuse;
        ] );
      ( "large",
        [
          Alcotest.test_case "alloc and coalesce" `Quick
            test_large_alloc_and_coalesce;
          Alcotest.test_case "exhaustion raises" `Quick test_exhaustion_raises;
        ] );
      ( "reincarnation",
        [
          Alcotest.test_case "alloc one run, free the next" `Quick
            test_alloc_in_one_run_free_in_next;
          Alcotest.test_case "large survives reboot" `Quick
            test_large_survives_reboot;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_heap_no_overlap;
          QCheck_alcotest.to_alcotest prop_heap_survives_crash_after_every_op;
        ] );
    ]
