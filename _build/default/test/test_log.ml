(* Tests for the log library: bit-stream packing, the tornbit RAWL
   (append/flush/truncate/recovery, torn-write detection, wraparound)
   and the commit-record baseline log. *)

let with_tmpdir f =
  let dir = Filename.temp_file "mnemolog" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun name -> Sys.remove (Filename.concat dir name))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

(* A full persistent-memory stack in [dir]; returns (machine, view). *)
let stack ?(nframes = 256) ?(seed = 5) dir =
  let m = Scm.Env.make_machine ~seed ~nframes () in
  let backing = Region.Backing_store.open_dir dir in
  let t = Region.Pmem.open_instance m backing in
  (m, Region.Pmem.default_view t)

(* Simulate process death + reboot on the same device: volatile state is
   wiped by the crash; rebuild the machine wrapper and reopen. *)
let reboot (m : Scm.Env.machine) dir =
  let m' = Scm.Env.machine_of_device m.dev in
  let backing = Region.Backing_store.open_dir dir in
  let t = Region.Pmem.open_instance m' backing in
  (m', Region.Pmem.default_view t)

let i64_array = Alcotest.(array int64)

let record_list = Alcotest.(list (array int64))

(* ------------------------------------------------------------------ *)
(* Bitstream *)

let test_stored_words_for () =
  Alcotest.(check int) "1 word" 2 (Pmlog.Bitstream.stored_words_for 1);
  Alcotest.(check int) "63 words" 64 (Pmlog.Bitstream.stored_words_for 63);
  Alcotest.(check int) "64 words" 66 (Pmlog.Bitstream.stored_words_for 64)

let pack_unpack words =
  let chunks = ref [] in
  let packer =
    Pmlog.Bitstream.Packer.create ~emit:(fun c -> chunks := c :: !chunks)
  in
  Array.iter (Pmlog.Bitstream.Packer.push packer) words;
  Pmlog.Bitstream.Packer.flush packer;
  let chunks = List.rev !chunks in
  List.iter
    (fun c ->
      Alcotest.(check bool) "bit 63 clear in emitted chunk" false
        (Scm.Word.bit c 63))
    chunks;
  let unp = Pmlog.Bitstream.Unpacker.create () in
  let out = ref [] in
  List.iter
    (fun c ->
      Pmlog.Bitstream.Unpacker.feed unp c;
      let rec drain () =
        match Pmlog.Bitstream.Unpacker.take unp with
        | Some w ->
            out := w :: !out;
            drain ()
        | None -> ()
      in
      drain ())
    chunks;
  (List.length chunks, Array.of_list (List.rev !out))

let test_bitstream_roundtrip_small () =
  let words = [| 1L; -1L; 0x0123456789abcdefL; 0L; Int64.min_int |] in
  let nchunks, out = pack_unpack words in
  Alcotest.(check int) "chunk count" (Pmlog.Bitstream.stored_words_for 5)
    nchunks;
  Alcotest.check i64_array "roundtrip"
    words (Array.sub out 0 5)

let prop_bitstream_roundtrip =
  QCheck.Test.make ~name:"bitstream pack/unpack roundtrip" ~count:200
    QCheck.(array_of_size Gen.(1 -- 200) int64)
    (fun words ->
      let nchunks, out = pack_unpack words in
      nchunks = Pmlog.Bitstream.stored_words_for (Array.length words)
      && Array.length out >= Array.length words
      && Array.for_all2 ( = ) words
           (Array.sub out 0 (Array.length words)))

(* ------------------------------------------------------------------ *)
(* RAWL *)

let make_log v ~cap_words =
  let base = Region.Pmem.pmap v (Pmlog.Rawl.region_bytes_for ~cap_words) in
  (base, Pmlog.Rawl.create v ~base ~cap_words)

let test_rawl_append_and_recover () =
  with_tmpdir (fun dir ->
      let m, v = stack dir in
      let base, log = make_log v ~cap_words:256 in
      let r1 = [| 1L; 2L; 3L |] and r2 = [| -1L |] and r3 = Array.make 20 7L in
      List.iter
        (fun r ->
          match Pmlog.Rawl.append log r with
          | Pmlog.Rawl.Appended _ -> ()
          | Pmlog.Rawl.Full -> Alcotest.fail "unexpected Full")
        [ r1; r2; r3 ];
      Pmlog.Rawl.flush log;
      let _, v' = reboot m dir in
      let _, records = Pmlog.Rawl.attach v' ~base in
      Alcotest.check record_list "all records recovered" [ r1; r2; r3 ]
        records)

let test_rawl_unflushed_append_lost () =
  with_tmpdir (fun dir ->
      let m, v = stack dir in
      let base, log = make_log v ~cap_words:128 in
      (match Pmlog.Rawl.append log [| 5L; 6L |] with
      | Pmlog.Rawl.Appended _ -> ()
      | Pmlog.Rawl.Full -> Alcotest.fail "Full");
      Pmlog.Rawl.flush log;
      (match Pmlog.Rawl.append log [| 9L |] with
      | Pmlog.Rawl.Appended _ -> ()
      | Pmlog.Rawl.Full -> Alcotest.fail "Full");
      (* no flush: second record is still in the WC buffers *)
      Scm.Crash.inject
        ~policy:{ cache = Scm.Crash.Drop_dirty; wc = Scm.Crash.Wc_drop }
        m;
      let _, v' = reboot m dir in
      let _, records = Pmlog.Rawl.attach v' ~base in
      Alcotest.check record_list "only the flushed record" [ [| 5L; 6L |] ]
        records)

let test_rawl_torn_append_detected () =
  (* Crash with a random subset of the pending streaming writes applied:
     recovery must never surface a corrupted record — each recovered
     record matches what was appended, and they form a prefix. *)
  let failures = ref 0 in
  for seed = 0 to 49 do
    with_tmpdir (fun dir ->
        let m, v = stack ~seed dir in
        let base, log = make_log v ~cap_words:512 in
        let appended =
          List.init 5 (fun i -> Array.init (3 + i) (fun j ->
              Int64.of_int ((100 * i) + j)))
        in
        List.iteri
          (fun i r ->
            (match Pmlog.Rawl.append log r with
            | Pmlog.Rawl.Appended _ -> ()
            | Pmlog.Rawl.Full -> Alcotest.fail "Full");
            (* flush the first three; leave the last two in flight *)
            if i = 2 then Pmlog.Rawl.flush log)
          appended;
        Scm.Crash.inject
          ~policy:
            { cache = Scm.Crash.Drop_dirty; wc = Scm.Crash.Wc_random_subset }
          m;
        let _, v' = reboot m dir in
        let _, records = Pmlog.Rawl.attach v' ~base in
        if List.length records < 3 then incr failures;
        (* recovered records must be an exact prefix of what was appended *)
        List.iteri
          (fun i r ->
            Alcotest.check i64_array
              (Printf.sprintf "seed %d record %d intact" seed i)
              (List.nth appended i) r)
          records)
  done;
  Alcotest.(check int) "flushed records always recovered" 0 !failures

let test_rawl_bit_flip_injection () =
  (* The paper's reliability test: inject bit flips into the log before
     a crash; recovery must stop at the corrupted word. *)
  with_tmpdir (fun dir ->
      let m, v = stack dir in
      let base, log = make_log v ~cap_words:128 in
      ignore (Pmlog.Rawl.append log [| 1L; 2L |]);
      ignore (Pmlog.Rawl.append log [| 3L; 4L |]);
      Pmlog.Rawl.flush log;
      (* Flip the torn bit of the second record's first stored word.
         Record 1 spans stored_words_for(3) = 4 words; buffer starts at
         base + 64. *)
      let slot = base + 64 + (8 * Pmlog.Bitstream.stored_words_for 3) in
      let w = Region.Pmem.load v slot in
      Region.Pmem.wtstore v slot (Scm.Word.set_bit w 63 (not (Scm.Word.bit w 63)));
      Region.Pmem.fence v;
      Scm.Crash.inject m;
      let _, v' = reboot m dir in
      let _, records = Pmlog.Rawl.attach v' ~base in
      Alcotest.check record_list "scan stops at the flipped bit"
        [ [| 1L; 2L |] ]
        records)

let test_rawl_wraparound_many_passes () =
  with_tmpdir (fun dir ->
      let m, v = stack dir in
      let base, log = make_log v ~cap_words:64 in
      (* Append/truncate enough to wrap the buffer several times. *)
      for round = 1 to 40 do
        (match Pmlog.Rawl.append log (Array.make 10 (Int64.of_int round)) with
        | Pmlog.Rawl.Appended _ -> ()
        | Pmlog.Rawl.Full -> Alcotest.fail "unexpected Full");
        Pmlog.Rawl.flush log;
        if round mod 2 = 1 then Pmlog.Rawl.truncate_all log
      done;
      (* One final flushed record after the last truncation. *)
      ignore (Pmlog.Rawl.append log [| 4242L |]);
      Pmlog.Rawl.flush log;
      let _, v' = reboot m dir in
      let _, records = Pmlog.Rawl.attach v' ~base in
      Alcotest.check record_list "post-wrap recovery"
        [ Array.make 10 40L; [| 4242L |] ]
        records)

let test_rawl_full_and_space_accounting () =
  with_tmpdir (fun dir ->
      let _, v = stack dir in
      let _, log = make_log v ~cap_words:16 in
      Alcotest.(check int) "empty" 0 (Pmlog.Rawl.used_words log);
      Alcotest.(check int) "free" 15 (Pmlog.Rawl.free_words log);
      (match Pmlog.Rawl.append log (Array.make 8 1L) with
      | Pmlog.Rawl.Appended span ->
          Alcotest.(check int) "span" (Pmlog.Bitstream.stored_words_for 9) span
      | Pmlog.Rawl.Full -> Alcotest.fail "should fit");
      (match Pmlog.Rawl.append log (Array.make 8 1L) with
      | Pmlog.Rawl.Full -> ()
      | Pmlog.Rawl.Appended _ -> Alcotest.fail "should be Full");
      Pmlog.Rawl.truncate_all log;
      Alcotest.(check int) "free after truncate" 15
        (Pmlog.Rawl.free_words log);
      match Pmlog.Rawl.append log (Array.make 8 1L) with
      | Pmlog.Rawl.Appended _ -> ()
      | Pmlog.Rawl.Full -> Alcotest.fail "fits again")

let test_rawl_advance_head_partial () =
  with_tmpdir (fun dir ->
      let m, v = stack dir in
      let base, log = make_log v ~cap_words:256 in
      let spans =
        List.map
          (fun r ->
            match Pmlog.Rawl.append log r with
            | Pmlog.Rawl.Appended s -> s
            | Pmlog.Rawl.Full -> Alcotest.fail "Full")
          [ [| 1L |]; [| 2L |]; [| 3L |] ]
      in
      Pmlog.Rawl.flush log;
      (* Consume just the first record. *)
      Pmlog.Rawl.advance_head log ~words:(List.hd spans);
      let _, v' = reboot m dir in
      let _, records = Pmlog.Rawl.attach v' ~base in
      Alcotest.check record_list "first record consumed"
        [ [| 2L |]; [| 3L |] ]
        records)

let test_rawl_double_crash_after_recovery () =
  (* A partial append discarded at recovery must not resurface after a
     second crash (the stale-suffix erasure). *)
  with_tmpdir (fun dir ->
      let m, v = stack dir in
      let base, log = make_log v ~cap_words:128 in
      ignore (Pmlog.Rawl.append log [| 10L; 11L |]);
      Pmlog.Rawl.flush log;
      ignore (Pmlog.Rawl.append log [| 20L; 21L; 22L; 23L |]);
      (* crash with only part of the second append applied *)
      Scm.Crash.inject
        ~policy:
          { cache = Scm.Crash.Drop_dirty; wc = Scm.Crash.Wc_random_subset }
        m;
      let m2, v2 = reboot m dir in
      let log2, records1 = Pmlog.Rawl.attach v2 ~base in
      Alcotest.(check bool) "at most the flushed record" true
        (List.length records1 <= 1);
      (* Continue appending after recovery, then crash again cleanly. *)
      ignore (Pmlog.Rawl.append log2 [| 30L |]);
      Pmlog.Rawl.flush log2;
      Scm.Crash.inject
        ~policy:{ cache = Scm.Crash.Drop_dirty; wc = Scm.Crash.Wc_drop }
        m2;
      let _, v3 = reboot m2 dir in
      let _, records2 = Pmlog.Rawl.attach v3 ~base in
      Alcotest.check record_list "old records + the new one, no garbage"
        (records1 @ [ [| 30L |] ])
        records2)

let prop_rawl_recovery_prefix =
  (* For random record batches, random flush points and adversarial
     crashes: recovery yields an uncorrupted prefix (at least through
     the last flush). *)
  QCheck.Test.make ~name:"rawl recovery yields intact flushed prefix"
    ~count:60
    QCheck.(
      pair (int_bound 1000)
        (list_of_size Gen.(1 -- 8) (array_of_size Gen.(1 -- 12) int64)))
    (fun (seed, batch) ->
      QCheck.assume (batch <> []);
      with_tmpdir (fun dir ->
          let m, v = stack ~seed dir in
          let base, log = make_log v ~cap_words:1024 in
          let flush_at = seed mod List.length batch in
          List.iteri
            (fun i r ->
              (match Pmlog.Rawl.append log r with
              | Pmlog.Rawl.Appended _ -> ()
              | Pmlog.Rawl.Full -> QCheck.assume_fail ());
              if i = flush_at then Pmlog.Rawl.flush log)
            batch;
          Scm.Crash.inject m;
          let _, v' = reboot m dir in
          let _, records = Pmlog.Rawl.attach v' ~base in
          List.length records >= flush_at + 1
          && List.for_all2 ( = )
               records
               (List.filteri (fun i _ -> i < List.length records) batch)))

let test_rawl_tornbit_rotation () =
  with_tmpdir (fun dir ->
      let m, v = stack dir in
      let cap_words = 32 in
      let base = Region.Pmem.pmap v (Pmlog.Rawl.region_bytes_for ~cap_words) in
      let log = Pmlog.Rawl.create ~rotate_torn_bit:true v ~base ~cap_words in
      Alcotest.(check int) "starts at bit 63" 63
        (Pmlog.Rawl.torn_bit_position log);
      (* push enough passes through the buffer to trigger a rotation:
         each round writes ~14 of the 31 usable words *)
      let rounds = 4 * Pmlog.Rawl.rotate_period in
      for round = 1 to rounds do
        (match Pmlog.Rawl.append log (Array.make 12 (Int64.of_int round)) with
        | Pmlog.Rawl.Appended _ -> ()
        | Pmlog.Rawl.Full -> Alcotest.fail "unexpected Full");
        Pmlog.Rawl.flush log;
        Pmlog.Rawl.truncate_all log
      done;
      Alcotest.(check bool) "torn bit moved" true
        (Pmlog.Rawl.torn_bit_position log <> 63);
      (* a record written under the rotated position still recovers,
         including across a crash and with arbitrary payload bits in the
         old torn-bit column *)
      let payload = Array.init 10 (fun i -> Int64.lognot (Int64.of_int i)) in
      ignore (Pmlog.Rawl.append log payload);
      Pmlog.Rawl.flush log;
      Scm.Crash.inject m;
      let _, v' = reboot m dir in
      let log', records = Pmlog.Rawl.attach v' ~base in
      Alcotest.check record_list "recovered under rotated torn bit"
        [ payload ] records;
      Alcotest.(check int) "position recovered from the head word"
        (Pmlog.Rawl.torn_bit_position log)
        (Pmlog.Rawl.torn_bit_position log'))

let prop_rawl_rotation_roundtrip =
  QCheck.Test.make ~name:"rotating rawl round-trips arbitrary payloads"
    ~count:40
    QCheck.(pair (int_bound 1000) (list_of_size Gen.(1 -- 5)
                                     (array_of_size Gen.(1 -- 6) int64)))
    (fun (seed, batch) ->
      QCheck.assume (batch <> []);
      with_tmpdir (fun dir ->
          let _, v = stack ~seed dir in
          let cap_words = 64 in
          let base =
            Region.Pmem.pmap v (Pmlog.Rawl.region_bytes_for ~cap_words)
          in
          let log =
            Pmlog.Rawl.create ~rotate_torn_bit:true v ~base ~cap_words
          in
          (* churn to move the torn bit *)
          for _ = 1 to (seed mod 3) * Pmlog.Rawl.rotate_period * 4 do
            ignore (Pmlog.Rawl.append log [| 1L; 2L; 3L |]);
            Pmlog.Rawl.flush log;
            Pmlog.Rawl.truncate_all log
          done;
          List.iter
            (fun r ->
              match Pmlog.Rawl.append log r with
              | Pmlog.Rawl.Appended _ -> ()
              | Pmlog.Rawl.Full -> QCheck.assume_fail ())
            batch;
          Pmlog.Rawl.flush log;
          let _, records = Pmlog.Rawl.attach v ~base in
          records = batch))

(* ------------------------------------------------------------------ *)
(* Commit log *)

let make_clog v ~cap_words =
  let base =
    Region.Pmem.pmap v (Pmlog.Commit_log.region_bytes_for ~cap_words)
  in
  (base, Pmlog.Commit_log.create v ~base ~cap_words)

let test_clog_append_and_recover () =
  with_tmpdir (fun dir ->
      let m, v = stack dir in
      let base, log = make_clog v ~cap_words:128 in
      let r1 = [| 1L; 2L |] and r2 = [| 3L |] in
      (match Pmlog.Commit_log.append log r1 with
      | Pmlog.Commit_log.Appended span -> Alcotest.(check int) "span" 4 span
      | Pmlog.Commit_log.Full -> Alcotest.fail "Full");
      ignore (Pmlog.Commit_log.append log r2);
      let _, v' = reboot m dir in
      let _, records = Pmlog.Commit_log.attach v' ~base in
      Alcotest.check record_list "recovered" [ r1; r2 ] records)

let test_clog_missing_commit_discards () =
  with_tmpdir (fun dir ->
      let m, v = stack dir in
      let base, log = make_clog v ~cap_words:128 in
      ignore (Pmlog.Commit_log.append log [| 7L |]);
      (* Manually fabricate a record whose commit word never landed:
         write header + payload, fence, crash before the commit word. *)
      let pos = base + 64 + (8 * 3) in
      Region.Pmem.wtstore v pos (Int64.logor (Int64.shift_left 0xC3L 56) 2L);
      Region.Pmem.wtstore v (pos + 8) 8L;
      Region.Pmem.wtstore v (pos + 16) 9L;
      Region.Pmem.fence v;
      Scm.Crash.inject m;
      let _, v' = reboot m dir in
      let _, records = Pmlog.Commit_log.attach v' ~base in
      Alcotest.check record_list "uncommitted record dropped" [ [| 7L |] ]
        records)

let test_clog_wraparound () =
  with_tmpdir (fun dir ->
      let m, v = stack dir in
      let base, log = make_clog v ~cap_words:32 in
      for round = 1 to 20 do
        (match Pmlog.Commit_log.append log (Array.make 6 (Int64.of_int round))
         with
        | Pmlog.Commit_log.Appended _ -> ()
        | Pmlog.Commit_log.Full -> Alcotest.fail "Full");
        Pmlog.Commit_log.truncate_all log
      done;
      ignore (Pmlog.Commit_log.append log [| 99L |]);
      let _, v' = reboot m dir in
      let _, records = Pmlog.Commit_log.attach v' ~base in
      Alcotest.check record_list "stale pre-wrap data ignored" [ [| 99L |] ]
        records)

let () =
  Alcotest.run "log"
    [
      ( "bitstream",
        [
          Alcotest.test_case "stored_words_for" `Quick test_stored_words_for;
          Alcotest.test_case "roundtrip small" `Quick
            test_bitstream_roundtrip_small;
          QCheck_alcotest.to_alcotest prop_bitstream_roundtrip;
        ] );
      ( "rawl",
        [
          Alcotest.test_case "append and recover" `Quick
            test_rawl_append_and_recover;
          Alcotest.test_case "unflushed append lost" `Quick
            test_rawl_unflushed_append_lost;
          Alcotest.test_case "torn append detected" `Quick
            test_rawl_torn_append_detected;
          Alcotest.test_case "bit flip injection" `Quick
            test_rawl_bit_flip_injection;
          Alcotest.test_case "wraparound many passes" `Quick
            test_rawl_wraparound_many_passes;
          Alcotest.test_case "full and space accounting" `Quick
            test_rawl_full_and_space_accounting;
          Alcotest.test_case "advance head partial" `Quick
            test_rawl_advance_head_partial;
          Alcotest.test_case "double crash after recovery" `Quick
            test_rawl_double_crash_after_recovery;
          Alcotest.test_case "tornbit rotation" `Quick
            test_rawl_tornbit_rotation;
          QCheck_alcotest.to_alcotest prop_rawl_recovery_prefix;
          QCheck_alcotest.to_alcotest prop_rawl_rotation_roundtrip;
        ] );
      ( "commit-log",
        [
          Alcotest.test_case "append and recover" `Quick
            test_clog_append_and_recover;
          Alcotest.test_case "missing commit discards" `Quick
            test_clog_missing_commit_discards;
          Alcotest.test_case "wraparound" `Quick test_clog_wraparound;
        ] );
    ]
