(* Tests for the application cores: the OpenLDAP-style directory server
   (three backends, the volatile-pointer/version pattern) and the Tokyo
   Cabinet-style store (both persistence strategies). *)

let with_tmpdir f =
  let dir = Filename.temp_file "mnemoapps" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun n -> rm (Filename.concat p n)) (Sys.readdir p);
          Sys.rmdir p
        end
        else Sys.remove p
      in
      if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

let payload = Bytes.of_string "uid=alice,ou=people,dc=example,dc=com"

(* ------------------------------------------------------------------ *)
(* LDAP server *)

let test_ldap_bdb_backend () =
  let disk = Baseline.Pcm_disk.create ~nblocks:1024 () in
  let server = Apps.Ldap_server.create_bdb ~frontend_ns:1000 disk in
  Alcotest.(check bool) "kind" true
    (Apps.Ldap_server.kind server = Apps.Ldap_server.Back_bdb);
  let env = Scm.Env.standalone (Scm.Env.make_machine ~nframes:16 ()) in
  let w = Apps.Ldap_server.worker server 0 env in
  for dn = 0 to 19 do
    Apps.Ldap_server.add_entry w ~dn:(Int64.of_int dn) ~attr_id:2 ~payload
  done;
  Alcotest.(check int) "entries" 20 (Apps.Ldap_server.entries w);
  match Apps.Ldap_server.search w ~dn:5L with
  | Some (attr, p) ->
      Alcotest.(check string) "attribute resolved" "mail" attr;
      Alcotest.(check bytes) "payload" payload p
  | None -> Alcotest.fail "entry missing"

let test_ldap_ldbm_flushes_periodically () =
  let disk = Baseline.Pcm_disk.create ~nblocks:1024 () in
  let server =
    Apps.Ldap_server.create_ldbm ~frontend_ns:1000 ~flush_every:8 disk
  in
  let env = Scm.Env.standalone (Scm.Env.make_machine ~nframes:16 ()) in
  let w = Apps.Ldap_server.worker server 0 env in
  for dn = 0 to 31 do
    Apps.Ldap_server.add_entry w ~dn:(Int64.of_int dn) ~attr_id:0 ~payload
  done;
  (* non-transactional: no WAL traffic, but periodic page flushes *)
  Alcotest.(check bool) "dirty pages reached the disk" true
    (Baseline.Pcm_disk.blocks_written disk > 0)

let test_ldap_mnemosyne_persistence_and_stale_pointers () =
  with_tmpdir (fun dir ->
      let inst = Mnemosyne.open_instance ~dir () in
      let server = Apps.Ldap_server.create_mnemosyne ~frontend_ns:1000 inst in
      let v1 = Apps.Ldap_server.session_attr_version server in
      let w =
        Apps.Ldap_server.worker server 0 (Mnemosyne.view inst).Region.Pmem.env
      in
      for dn = 0 to 24 do
        Apps.Ldap_server.add_entry w ~dn:(Int64.of_int dn)
          ~attr_id:(dn mod 7) ~payload
      done;
      Alcotest.(check int) "entries" 25 (Apps.Ldap_server.entries w);
      Alcotest.(check int) "no stale pointers within a session" 0
        (Apps.Ldap_server.stale_resolutions server);
      (* restart the server process *)
      let inst = Mnemosyne.reincarnate inst in
      let server = Apps.Ldap_server.create_mnemosyne ~frontend_ns:1000 inst in
      Alcotest.(check int) "session version bumped" (v1 + 1)
        (Apps.Ldap_server.session_attr_version server);
      let w =
        Apps.Ldap_server.worker server 0 (Mnemosyne.view inst).Region.Pmem.env
      in
      Alcotest.(check int) "cache survived" 25 (Apps.Ldap_server.entries w);
      (match Apps.Ldap_server.search w ~dn:9L with
      | Some (attr, p) ->
          (* dn 9 was stored with attr_id 9 mod 7 = 2 = "mail" *)
          Alcotest.(check string) "re-resolved attribute" "mail" attr;
          Alcotest.(check bytes) "payload survived" payload p
      | None -> Alcotest.fail "entry lost across restart");
      Alcotest.(check bool) "stale pointer detected and repaired" true
        (Apps.Ldap_server.stale_resolutions server > 0);
      let before = Apps.Ldap_server.stale_resolutions server in
      ignore (Apps.Ldap_server.search w ~dn:9L);
      Alcotest.(check int) "repair is sticky" before
        (Apps.Ldap_server.stale_resolutions server))

(* ------------------------------------------------------------------ *)
(* Tokyo Cabinet store *)

let test_tc_msync_mode () =
  let disk = Baseline.Pcm_disk.create ~nblocks:1024 () in
  let store = Apps.Tc_store.create_msync ~request_ns:100 disk in
  let env = Scm.Env.standalone (Scm.Env.make_machine ~nframes:16 ()) in
  let w = Apps.Tc_store.worker store 0 env in
  Apps.Tc_store.put w 1L (Bytes.of_string "one");
  Apps.Tc_store.put w 2L (Bytes.of_string "two");
  Alcotest.(check (option bytes)) "get" (Some (Bytes.of_string "one"))
    (Apps.Tc_store.get w 1L);
  Alcotest.(check bool) "delete" true (Apps.Tc_store.delete w 2L);
  Alcotest.(check int) "length" 1 (Apps.Tc_store.length w)

let test_tc_mnemosyne_survives_crash () =
  with_tmpdir (fun dir ->
      let inst = Mnemosyne.open_instance ~dir () in
      let store = Apps.Tc_store.create_mnemosyne ~request_ns:100 inst in
      let w =
        Apps.Tc_store.worker store 0 (Mnemosyne.view inst).Region.Pmem.env
      in
      for k = 0 to 99 do
        Apps.Tc_store.put w (Int64.of_int k)
          (Bytes.of_string (string_of_int (k * k)))
      done;
      for k = 0 to 9 do
        ignore (Apps.Tc_store.delete w (Int64.of_int k))
      done;
      let inst = Mnemosyne.reincarnate inst in
      let store = Apps.Tc_store.create_mnemosyne ~request_ns:100 inst in
      let w =
        Apps.Tc_store.worker store 0 (Mnemosyne.view inst).Region.Pmem.env
      in
      Alcotest.(check int) "length" 90 (Apps.Tc_store.length w);
      Alcotest.(check (option bytes)) "deleted stays deleted" None
        (Apps.Tc_store.get w 5L);
      Alcotest.(check (option bytes)) "survivor intact"
        (Some (Bytes.of_string "2500"))
        (Apps.Tc_store.get w 50L))

let test_tc_relative_performance () =
  (* storage dominates TC: Mnemosyne must beat msync-per-update, more so
     for bigger values (the table-4 shape, asserted coarsely) *)
  let run_mnemo dir value_bytes =
    let inst = Mnemosyne.open_instance ~dir () in
    let store = Apps.Tc_store.create_mnemosyne inst in
    let env = (Mnemosyne.view inst).Region.Pmem.env in
    let w = Apps.Tc_store.worker store 0 env in
    let t0 = env.now () in
    for k = 0 to 49 do
      Apps.Tc_store.put w (Int64.of_int k) (Bytes.make value_bytes 'v')
    done;
    env.now () - t0
  in
  let run_msync value_bytes =
    let disk = Baseline.Pcm_disk.create ~nblocks:1024 () in
    let store = Apps.Tc_store.create_msync disk in
    let env = Scm.Env.standalone (Scm.Env.make_machine ~nframes:16 ()) in
    let w = Apps.Tc_store.worker store 0 env in
    let t0 = env.now () in
    for k = 0 to 49 do
      Apps.Tc_store.put w (Int64.of_int k) (Bytes.make value_bytes 'v')
    done;
    env.now () - t0
  in
  with_tmpdir (fun dir1 ->
      with_tmpdir (fun dir2 ->
          let m64 = run_mnemo dir1 64 and m1k = run_mnemo dir2 1024 in
          let s64 = run_msync 64 and s1k = run_msync 1024 in
          Alcotest.(check bool) "mnemosyne wins at 64B" true (m64 < s64);
          Alcotest.(check bool) "mnemosyne wins at 1KiB" true (m1k < s1k);
          let r64 = float_of_int s64 /. float_of_int m64 in
          let r1k = float_of_int s1k /. float_of_int m1k in
          Alcotest.(check bool) "advantage grows with value size" true
            (r1k > r64)))

let () =
  Alcotest.run "apps"
    [
      ( "ldap",
        [
          Alcotest.test_case "bdb backend" `Quick test_ldap_bdb_backend;
          Alcotest.test_case "ldbm flushes periodically" `Quick
            test_ldap_ldbm_flushes_periodically;
          Alcotest.test_case "mnemosyne persistence + stale pointers" `Quick
            test_ldap_mnemosyne_persistence_and_stale_pointers;
        ] );
      ( "tc",
        [
          Alcotest.test_case "msync mode" `Quick test_tc_msync_mode;
          Alcotest.test_case "mnemosyne survives crash" `Quick
            test_tc_mnemosyne_survives_crash;
          Alcotest.test_case "relative performance" `Quick
            test_tc_relative_performance;
        ] );
    ]
