(* Tests for the persistent data structures: model-based comparisons
   against stdlib structures, structural invariants after random
   operation sequences, and persistence across crash/reboot. *)

let with_tmpdir f =
  let dir = Filename.temp_file "mnemops" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      let rec rm path =
        if Sys.is_directory path then begin
          Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
          Sys.rmdir path
        end
        else Sys.remove path
      in
      if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

let open_inst dir =
  Mnemosyne.open_instance
    ~geometry:
      { Mnemosyne.scm_frames = 8192; heap_superblocks = 192;
        heap_large_bytes = 1 lsl 20 }
    ~dir ()

let b = Bytes.of_string

(* ------------------------------------------------------------------ *)
(* Plist *)

let test_plist_basic () =
  with_tmpdir (fun dir ->
      let t = open_inst dir in
      let slot = Mnemosyne.pstatic t "list" 8 in
      Mnemosyne.atomically t (fun tx ->
          let l = Pstruct.Plist.create tx ~slot in
          Pstruct.Plist.push tx l (b "one");
          Pstruct.Plist.push tx l (b "two"));
      Mnemosyne.atomically t (fun tx ->
          let l =
            Pstruct.Plist.attach tx
              ~root:(Int64.to_int (Mtm.Txn.load tx slot))
          in
          Alcotest.(check int) "length" 2 (Pstruct.Plist.length tx l);
          Alcotest.(check (list bytes)) "order"
            [ b "two"; b "one" ]
            (Pstruct.Plist.to_list tx l);
          Alcotest.(check (option bytes)) "pop" (Some (b "two"))
            (Pstruct.Plist.pop tx l);
          Alcotest.(check int) "after pop" 1 (Pstruct.Plist.length tx l)))

let test_plist_survives_reincarnation () =
  with_tmpdir (fun dir ->
      let t = open_inst dir in
      let slot = Mnemosyne.pstatic t "list" 8 in
      Mnemosyne.atomically t (fun tx ->
          let l = Pstruct.Plist.create tx ~slot in
          for i = 1 to 5 do
            Pstruct.Plist.push tx l (b (string_of_int i))
          done);
      let t = Mnemosyne.reincarnate t in
      let slot = Mnemosyne.pstatic t "list" 8 in
      Mnemosyne.atomically t (fun tx ->
          let l =
            Pstruct.Plist.attach tx
              ~root:(Int64.to_int (Mtm.Txn.load tx slot))
          in
          Alcotest.(check (list bytes)) "contents"
            [ b "5"; b "4"; b "3"; b "2"; b "1" ]
            (Pstruct.Plist.to_list tx l)))

(* ------------------------------------------------------------------ *)
(* Phashtable *)

let test_phash_basic () =
  with_tmpdir (fun dir ->
      let t = open_inst dir in
      let slot = Mnemosyne.pstatic t "hash" 8 in
      Mnemosyne.atomically t (fun tx ->
          let h = Pstruct.Phashtable.create tx ~slot ~buckets:16 in
          Pstruct.Phashtable.put tx h (b "alpha") (b "1");
          Pstruct.Phashtable.put tx h (b "beta") (b "2");
          Pstruct.Phashtable.put tx h (b "alpha") (b "1'");
          Alcotest.(check int) "length" 2 (Pstruct.Phashtable.length tx h);
          Alcotest.(check (option bytes)) "replaced" (Some (b "1'"))
            (Pstruct.Phashtable.find tx h (b "alpha"));
          Alcotest.(check (option bytes)) "other" (Some (b "2"))
            (Pstruct.Phashtable.find tx h (b "beta"));
          Alcotest.(check (option bytes)) "missing" None
            (Pstruct.Phashtable.find tx h (b "gamma"));
          Alcotest.(check bool) "remove" true
            (Pstruct.Phashtable.remove tx h (b "alpha"));
          Alcotest.(check bool) "remove gone" false
            (Pstruct.Phashtable.remove tx h (b "alpha"));
          Alcotest.(check int) "final length" 1
            (Pstruct.Phashtable.length tx h)))

let prop_phash_model =
  QCheck.Test.make ~name:"phashtable matches Hashtbl model" ~count:20
    QCheck.(
      list_of_size Gen.(10 -- 120)
        (triple (int_bound 2) (int_bound 30) small_string))
    (fun ops ->
      with_tmpdir (fun dir ->
          let t = open_inst dir in
          let slot = Mnemosyne.pstatic t "hash" 8 in
          let h =
            Mnemosyne.atomically t (fun tx ->
                Pstruct.Phashtable.create tx ~slot ~buckets:8)
          in
          let model : (string, string) Hashtbl.t = Hashtbl.create 16 in
          List.iter
            (fun (op, k, v) ->
              let key = Printf.sprintf "key%d" k in
              Mnemosyne.atomically t (fun tx ->
                  match op with
                  | 0 ->
                      Pstruct.Phashtable.put tx h (b key) (b v);
                      Hashtbl.replace model key v
                  | 1 ->
                      let got = Pstruct.Phashtable.find tx h (b key) in
                      let expect =
                        Option.map Bytes.of_string (Hashtbl.find_opt model key)
                      in
                      if got <> expect then failwith "find mismatch"
                  | _ ->
                      let got = Pstruct.Phashtable.remove tx h (b key) in
                      let expect = Hashtbl.mem model key in
                      Hashtbl.remove model key;
                      if got <> expect then failwith "remove mismatch"))
            ops;
          Mnemosyne.atomically t (fun tx ->
              Pstruct.Phashtable.length tx h = Hashtbl.length model
              && Hashtbl.fold
                   (fun k v ok ->
                     ok
                     && Pstruct.Phashtable.find tx h (b k)
                        = Some (Bytes.of_string v))
                   model true)))

let test_phash_survives_crash_per_txn () =
  with_tmpdir (fun dir ->
      let t = open_inst dir in
      let slot = Mnemosyne.pstatic t "hash" 8 in
      ignore
        (Mnemosyne.atomically t (fun tx ->
             Pstruct.Phashtable.create tx ~slot ~buckets:16));
      for i = 0 to 9 do
        Mnemosyne.atomically t (fun tx ->
            let h =
              Pstruct.Phashtable.attach tx
                ~root:(Int64.to_int (Mtm.Txn.load tx slot))
            in
            Pstruct.Phashtable.put tx h
              (b (Printf.sprintf "k%d" i))
              (b (Printf.sprintf "v%d" i)))
      done;
      let t = Mnemosyne.reincarnate t in
      let slot = Mnemosyne.pstatic t "hash" 8 in
      Mnemosyne.atomically t (fun tx ->
          let h =
            Pstruct.Phashtable.attach tx
              ~root:(Int64.to_int (Mtm.Txn.load tx slot))
          in
          Alcotest.(check int) "all entries" 10
            (Pstruct.Phashtable.length tx h);
          for i = 0 to 9 do
            Alcotest.(check (option bytes))
              (Printf.sprintf "k%d" i)
              (Some (b (Printf.sprintf "v%d" i)))
              (Pstruct.Phashtable.find tx h (b (Printf.sprintf "k%d" i)))
          done))

(* ------------------------------------------------------------------ *)
(* AVL tree *)

let prop_avl_model =
  QCheck.Test.make ~name:"avl matches Map model + invariants" ~count:15
    QCheck.(
      list_of_size Gen.(10 -- 150) (pair bool (int_bound 60)))
    (fun ops ->
      with_tmpdir (fun dir ->
          let t = open_inst dir in
          let slot = Mnemosyne.pstatic t "avl" 8 in
          let tree =
            Mnemosyne.atomically t (fun tx -> Pstruct.Avl_tree.create tx ~slot)
          in
          let module M = Map.Make (Int64) in
          let model = ref M.empty in
          List.iter
            (fun (is_remove, k) ->
              let key = Int64.of_int k in
              Mnemosyne.atomically t (fun tx ->
                  if is_remove then begin
                    let got = Pstruct.Avl_tree.remove tx tree key in
                    if got <> M.mem key !model then failwith "remove mismatch";
                    model := M.remove key !model
                  end
                  else begin
                    let v = Printf.sprintf "v%d" k in
                    Pstruct.Avl_tree.put tx tree key (b v);
                    model := M.add key v !model
                  end;
                  Pstruct.Avl_tree.validate tx tree))
            ops;
          Mnemosyne.atomically t (fun tx ->
              let entries = ref [] in
              Pstruct.Avl_tree.iter tx tree (fun k v ->
                  entries := (k, Bytes.to_string v) :: !entries);
              List.rev !entries = M.bindings !model
              && Pstruct.Avl_tree.length tx tree = M.cardinal !model)))

let test_avl_survives_reincarnation () =
  with_tmpdir (fun dir ->
      let t = open_inst dir in
      let slot = Mnemosyne.pstatic t "avl" 8 in
      ignore
        (Mnemosyne.atomically t (fun tx ->
             let tree = Pstruct.Avl_tree.create tx ~slot in
             for i = 1 to 100 do
               Pstruct.Avl_tree.put tx tree (Int64.of_int i)
                 (b (string_of_int (i * i)))
             done;
             tree));
      let t = Mnemosyne.reincarnate t in
      let slot = Mnemosyne.pstatic t "avl" 8 in
      Mnemosyne.atomically t (fun tx ->
          let tree =
            Pstruct.Avl_tree.attach tx
              ~root:(Int64.to_int (Mtm.Txn.load tx slot))
          in
          Pstruct.Avl_tree.validate tx tree;
          Alcotest.(check int) "count" 100 (Pstruct.Avl_tree.length tx tree);
          Alcotest.(check (option bytes)) "spot check" (Some (b "2500"))
            (Pstruct.Avl_tree.find tx tree 50L)))

(* ------------------------------------------------------------------ *)
(* Red-black tree *)

let prop_rb_model =
  QCheck.Test.make ~name:"rb-tree matches Map model + invariants" ~count:15
    QCheck.(
      list_of_size Gen.(10 -- 150) (pair bool (int_bound 60)))
    (fun ops ->
      with_tmpdir (fun dir ->
          let t = open_inst dir in
          let slot = Mnemosyne.pstatic t "rb" 8 in
          let tree =
            Mnemosyne.atomically t (fun tx ->
                Pstruct.Rb_tree.create tx ~slot ())
          in
          let module M = Map.Make (Int64) in
          let model = ref M.empty in
          List.iter
            (fun (is_remove, k) ->
              let key = Int64.of_int k in
              Mnemosyne.atomically t (fun tx ->
                  if is_remove then begin
                    let got = Pstruct.Rb_tree.remove tx tree key in
                    if got <> M.mem key !model then failwith "remove mismatch";
                    model := M.remove key !model
                  end
                  else begin
                    Pstruct.Rb_tree.put tx tree key (b (string_of_int k));
                    model := M.add key k !model
                  end;
                  Pstruct.Rb_tree.validate tx tree))
            ops;
          Mnemosyne.atomically t (fun tx ->
              let keys = ref [] in
              Pstruct.Rb_tree.iter tx tree (fun k _ -> keys := k :: !keys);
              List.rev !keys = List.map fst (M.bindings !model)
              && Pstruct.Rb_tree.length tx tree = M.cardinal !model)))

let test_rb_payload_roundtrip () =
  with_tmpdir (fun dir ->
      let t = open_inst dir in
      let slot = Mnemosyne.pstatic t "rb" 8 in
      Mnemosyne.atomically t (fun tx ->
          let tree = Pstruct.Rb_tree.create tx ~slot () in
          Alcotest.(check int) "node payload" 88
            (Pstruct.Rb_tree.payload_bytes tree);
          Pstruct.Rb_tree.put tx tree 7L (b "hello");
          match Pstruct.Rb_tree.find tx tree 7L with
          | None -> Alcotest.fail "missing"
          | Some payload ->
              Alcotest.(check int) "padded to payload size" 88
                (Bytes.length payload);
              Alcotest.(check string) "prefix" "hello"
                (Bytes.sub_string payload 0 5)))

(* ------------------------------------------------------------------ *)
(* B+ tree *)

let prop_bp_model =
  QCheck.Test.make ~name:"b+tree matches Map model + invariants" ~count:10
    QCheck.(
      list_of_size Gen.(30 -- 250) (pair (int_bound 9) (int_bound 150)))
    (fun ops ->
      with_tmpdir (fun dir ->
          let t = open_inst dir in
          let slot = Mnemosyne.pstatic t "bp" 8 in
          let tree =
            Mnemosyne.atomically t (fun tx -> Pstruct.Bp_tree.create tx ~slot)
          in
          let module M = Map.Make (Int64) in
          let model = ref M.empty in
          List.iter
            (fun (op, k) ->
              let key = Int64.of_int k in
              Mnemosyne.atomically t (fun tx ->
                  if op < 7 then begin
                    Pstruct.Bp_tree.put tx tree key (b (string_of_int k));
                    model := M.add key (string_of_int k) !model
                  end
                  else begin
                    let got = Pstruct.Bp_tree.remove tx tree key in
                    if got <> M.mem key !model then failwith "remove mismatch";
                    model := M.remove key !model
                  end;
                  Pstruct.Bp_tree.validate tx tree))
            ops;
          Mnemosyne.atomically t (fun tx ->
              let entries = ref [] in
              Pstruct.Bp_tree.iter tx tree (fun k v ->
                  entries := (k, Bytes.to_string v) :: !entries);
              List.rev !entries = M.bindings !model
              && Pstruct.Bp_tree.length tx tree = M.cardinal !model)))

let test_bp_many_inserts_splits () =
  with_tmpdir (fun dir ->
      let t = open_inst dir in
      let slot = Mnemosyne.pstatic t "bp" 8 in
      let tree =
        Mnemosyne.atomically t (fun tx -> Pstruct.Bp_tree.create tx ~slot)
      in
      (* enough keys to force multi-level splits (order 16) *)
      for i = 0 to 999 do
        let k = Int64.of_int ((i * 7919) mod 10_000) in
        Mnemosyne.atomically t (fun tx ->
            Pstruct.Bp_tree.put tx tree k (b (Int64.to_string k)))
      done;
      Mnemosyne.atomically t (fun tx ->
          Pstruct.Bp_tree.validate tx tree;
          Alcotest.(check (option bytes)) "lookup deep" (Some (b "7919"))
            (Pstruct.Bp_tree.find tx tree 7919L)))

let test_bp_range_scan () =
  with_tmpdir (fun dir ->
      let t = open_inst dir in
      let slot = Mnemosyne.pstatic t "bp" 8 in
      Mnemosyne.atomically t (fun tx ->
          let tree = Pstruct.Bp_tree.create tx ~slot in
          for i = 0 to 99 do
            Pstruct.Bp_tree.put tx tree (Int64.of_int (i * 2)) (b "x")
          done;
          let r = Pstruct.Bp_tree.range tx tree ~lo:10L ~hi:20L in
          Alcotest.(check (list int64)) "range keys"
            [ 10L; 12L; 14L; 16L; 18L; 20L ]
            (List.map fst r)))

let test_bp_survives_reincarnation () =
  with_tmpdir (fun dir ->
      let t = open_inst dir in
      let slot = Mnemosyne.pstatic t "bp" 8 in
      let tree =
        Mnemosyne.atomically t (fun tx -> Pstruct.Bp_tree.create tx ~slot)
      in
      for i = 0 to 299 do
        Mnemosyne.atomically t (fun tx ->
            Pstruct.Bp_tree.put tx tree (Int64.of_int i) (b (string_of_int i)))
      done;
      let t = Mnemosyne.reincarnate t in
      let slot = Mnemosyne.pstatic t "bp" 8 in
      Mnemosyne.atomically t (fun tx ->
          let tree =
            Pstruct.Bp_tree.attach tx
              ~root:(Int64.to_int (Mtm.Txn.load tx slot))
          in
          Pstruct.Bp_tree.validate tx tree;
          Alcotest.(check int) "count" 300 (Pstruct.Bp_tree.length tx tree);
          for i = 0 to 299 do
            if
              Pstruct.Bp_tree.find tx tree (Int64.of_int i)
              <> Some (b (string_of_int i))
            then Alcotest.failf "key %d lost" i
          done))

(* ------------------------------------------------------------------ *)
(* Pqueue *)

let test_pqueue_fifo () =
  with_tmpdir (fun dir ->
      let t = open_inst dir in
      let slot = Mnemosyne.pstatic t "q" 8 in
      Mnemosyne.atomically t (fun tx ->
          let q = Pstruct.Pqueue.create tx ~slot in
          Alcotest.(check (option bytes)) "empty pop" None
            (Pstruct.Pqueue.pop tx q);
          Pstruct.Pqueue.push tx q (b "a");
          Pstruct.Pqueue.push tx q (b "bb");
          Pstruct.Pqueue.push tx q (b "ccc");
          Alcotest.(check int) "length" 3 (Pstruct.Pqueue.length tx q);
          Alcotest.(check (option bytes)) "peek" (Some (b "a"))
            (Pstruct.Pqueue.peek tx q);
          Alcotest.(check (option bytes)) "fifo 1" (Some (b "a"))
            (Pstruct.Pqueue.pop tx q);
          Alcotest.(check (option bytes)) "fifo 2" (Some (b "bb"))
            (Pstruct.Pqueue.pop tx q);
          Pstruct.Pqueue.push tx q (b "dddd");
          Alcotest.(check (option bytes)) "fifo 3" (Some (b "ccc"))
            (Pstruct.Pqueue.pop tx q);
          Alcotest.(check (option bytes)) "fifo 4" (Some (b "dddd"))
            (Pstruct.Pqueue.pop tx q);
          Alcotest.(check (option bytes)) "drained" None
            (Pstruct.Pqueue.pop tx q);
          Alcotest.(check int) "empty again" 0 (Pstruct.Pqueue.length tx q)))

let prop_pqueue_model =
  QCheck.Test.make ~name:"pqueue matches Queue model across crashes"
    ~count:12
    QCheck.(
      pair (int_bound 1000)
        (list_of_size Gen.(10 -- 80) (pair bool (string_of_size Gen.(0 -- 20)))))
    (fun (seed, ops) ->
      with_tmpdir (fun dir ->
          let inst = ref (Mnemosyne.open_instance ~seed ~dir ()) in
          let model : string Queue.t = Queue.create () in
          let slot = Mnemosyne.pstatic !inst "q" 8 in
          ignore
            (Mnemosyne.atomically !inst (fun tx ->
                 Pstruct.Pqueue.create tx ~slot));
          List.iteri
            (fun i (is_pop, payload) ->
              let t = !inst in
              let slot = Mnemosyne.pstatic t "q" 8 in
              Mnemosyne.atomically t (fun tx ->
                  let q =
                    Pstruct.Pqueue.attach tx
                      ~root:(Int64.to_int (Mtm.Txn.load tx slot))
                  in
                  if is_pop then begin
                    let got = Pstruct.Pqueue.pop tx q in
                    let expect =
                      if Queue.is_empty model then None
                      else Some (Bytes.of_string (Queue.pop model))
                    in
                    if got <> expect then failwith "pop mismatch"
                  end
                  else begin
                    Pstruct.Pqueue.push tx q (b payload);
                    Queue.push payload model
                  end);
              (* crash every dozen operations *)
              if i mod 12 = 11 then inst := Mnemosyne.reincarnate t)
            ops;
          Mnemosyne.atomically !inst (fun tx ->
              let q =
                Pstruct.Pqueue.attach tx
                  ~root:
                    (Int64.to_int
                       (Mtm.Txn.load tx (Mnemosyne.pstatic !inst "q" 8)))
              in
              Pstruct.Pqueue.length tx q = Queue.length model)))

(* ------------------------------------------------------------------ *)
(* Shadow tree (shadow updates, no transactions) *)

let pview t = Mnemosyne.view t

let test_shadow_basic () =
  with_tmpdir (fun dir ->
      let t = open_inst dir in
      let v = pview t in
      let bytes = Pstruct.Shadow_tree.region_bytes_for ~payload_bytes:32 ~capacity:256 in
      let base = Mnemosyne.pmap t bytes in
      let st = Pstruct.Shadow_tree.create v ~base ~payload_bytes:32 ~capacity:256 in
      Pstruct.Shadow_tree.put st 5L (b "five");
      Pstruct.Shadow_tree.put st 3L (b "three");
      Pstruct.Shadow_tree.put st 9L (b "nine");
      Pstruct.Shadow_tree.put st 5L (b "FIVE");
      Alcotest.(check int) "length" 3 (Pstruct.Shadow_tree.length st);
      (match Pstruct.Shadow_tree.find st 5L with
      | Some p -> Alcotest.(check string) "replaced" "FIVE" (Bytes.sub_string p 0 4)
      | None -> Alcotest.fail "missing");
      Alcotest.(check (option bytes)) "absent" None
        (Pstruct.Shadow_tree.find st 4L);
      let keys = ref [] in
      Pstruct.Shadow_tree.iter st (fun k _ -> keys := k :: !keys);
      Alcotest.(check (list int64)) "in order" [ 3L; 5L; 9L ]
        (List.rev !keys))

let test_shadow_crash_old_or_new_never_mixed () =
  (* crash at arbitrary points: the tree read back is always a
     consistent BST holding a prefix of the update sequence *)
  for seed = 0 to 14 do
    with_tmpdir (fun dir ->
        let t = open_inst dir in
        let v = pview t in
        let bytes =
          Pstruct.Shadow_tree.region_bytes_for ~payload_bytes:16 ~capacity:512
        in
        let base = Mnemosyne.pmap t bytes in
        let st =
          Pstruct.Shadow_tree.create v ~base ~payload_bytes:16 ~capacity:512
        in
        let rng = Random.State.make [| seed |] in
        let n = 5 + Random.State.int rng 20 in
        for i = 0 to n - 1 do
          Pstruct.Shadow_tree.put st
            (Int64.of_int (Random.State.int rng 50))
            (b (Printf.sprintf "v%d" i))
        done;
        (* an in-flight update that never publishes: write nodes but
           crash before the root swing is emulated by just crashing in
           the middle of put's window via adversarial WC policy *)
        let t2 = Mnemosyne.reincarnate t in
        let v2 = Mnemosyne.view t2 in
        let st2, reclaimed = Pstruct.Shadow_tree.attach v2 ~base in
        Alcotest.(check bool) "gc nonneg" true (reclaimed >= 0);
        (* published count matches reachable nodes *)
        let seen = ref 0 in
        let prev = ref Int64.min_int in
        Pstruct.Shadow_tree.iter st2 (fun k _ ->
            if k <= !prev then Alcotest.fail "BST order broken";
            prev := k;
            incr seen);
        Alcotest.(check int)
          (Printf.sprintf "seed %d count consistent" seed)
          (Pstruct.Shadow_tree.length st2)
          !seen)
  done

let test_shadow_leak_reclaimed_after_crash () =
  with_tmpdir (fun dir ->
      let t = open_inst dir in
      let v = pview t in
      let bytes =
        Pstruct.Shadow_tree.region_bytes_for ~payload_bytes:16 ~capacity:64
      in
      let base = Mnemosyne.pmap t bytes in
      let st =
        Pstruct.Shadow_tree.create v ~base ~payload_bytes:16 ~capacity:64
      in
      for i = 0 to 9 do
        Pstruct.Shadow_tree.put st (Int64.of_int i) (b "x")
      done;
      let live = Pstruct.Shadow_tree.live_nodes st in
      Alcotest.(check int) "live = published" 10 live;
      (* crash + recover: marked sweep must rebuild the same free list
         size; churn afterwards must not exhaust the arena (i.e., the
         shadow garbage really is reclaimed) *)
      let t2 = Mnemosyne.reincarnate t in
      let v2 = Mnemosyne.view t2 in
      let st2, _ = Pstruct.Shadow_tree.attach v2 ~base in
      Alcotest.(check int) "live after recovery" 10
        (Pstruct.Shadow_tree.live_nodes st2);
      for round = 0 to 199 do
        Pstruct.Shadow_tree.put st2
          (Int64.of_int (round mod 10))
          (b (string_of_int round))
      done;
      Alcotest.(check int) "no arena leak under churn" 10
        (Pstruct.Shadow_tree.live_nodes st2))

(* ------------------------------------------------------------------ *)
(* Pextent (append updates) *)

let test_pextent_basic () =
  with_tmpdir (fun dir ->
      let t = open_inst dir in
      let v = pview t in
      let base = Mnemosyne.pmap t 4096 in
      let e = Pstruct.Pextent.create v ~base ~len:4096 in
      Pstruct.Pextent.append e (b "alpha");
      Pstruct.Pextent.append e (b "beta!");
      Alcotest.(check int) "records" 2 (Pstruct.Pextent.records e);
      Alcotest.(check (list bytes)) "contents" [ b "alpha"; b "beta!" ]
        (Pstruct.Pextent.to_list e);
      Pstruct.Pextent.reset e;
      Alcotest.(check int) "after reset" 0 (Pstruct.Pextent.records e))

let test_pextent_incomplete_append_discarded () =
  with_tmpdir (fun dir ->
      let t = open_inst dir in
      let v = pview t in
      let base = Mnemosyne.pmap t 4096 in
      let e = Pstruct.Pextent.create v ~base ~len:4096 in
      Pstruct.Pextent.append e (b "durable");
      (* hand-craft an in-flight append: data streamed, tail never
         published, then the machine dies *)
      let tail = Pstruct.Pextent.used_bytes e in
      Region.Pmem.wtstore v (base + 32 + tail) 5L;
      Region.Pmem.wtstore v (base + 32 + tail + 8)
        (Scm.Word.of_string_chunk "торн!" 0);
      Scm.Crash.inject (Mnemosyne.machine t);
      let t2 =
        let dev_path = Filename.concat dir "scm.img" in
        Scm.Scm_device.save_image (Mnemosyne.machine t).dev dev_path;
        Mnemosyne.open_instance ~dir ()
      in
      let e2 = Pstruct.Pextent.attach (Mnemosyne.view t2) ~base in
      Alcotest.(check (list bytes)) "only the published record"
        [ b "durable" ]
        (Pstruct.Pextent.to_list e2))

let prop_pextent_roundtrip =
  QCheck.Test.make ~name:"pextent appends round-trip" ~count:30
    QCheck.(small_list (string_of_size Gen.(0 -- 100)))
    (fun items ->
      with_tmpdir (fun dir ->
          let t = open_inst dir in
          let v = pview t in
          let base = Mnemosyne.pmap t 65536 in
          let e = Pstruct.Pextent.create v ~base ~len:65536 in
          List.iter (fun s -> Pstruct.Pextent.append e (b s)) items;
          Pstruct.Pextent.to_list e = List.map b items))

let () =
  Alcotest.run "pstruct"
    [
      ( "plist",
        [
          Alcotest.test_case "basic" `Quick test_plist_basic;
          Alcotest.test_case "survives reincarnation" `Quick
            test_plist_survives_reincarnation;
        ] );
      ( "phashtable",
        [
          Alcotest.test_case "basic" `Quick test_phash_basic;
          Alcotest.test_case "survives crash per txn" `Quick
            test_phash_survives_crash_per_txn;
          QCheck_alcotest.to_alcotest prop_phash_model;
        ] );
      ( "avl",
        [
          Alcotest.test_case "survives reincarnation" `Quick
            test_avl_survives_reincarnation;
          QCheck_alcotest.to_alcotest prop_avl_model;
        ] );
      ( "rb",
        [
          Alcotest.test_case "payload roundtrip" `Quick
            test_rb_payload_roundtrip;
          QCheck_alcotest.to_alcotest prop_rb_model;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "fifo" `Quick test_pqueue_fifo;
          QCheck_alcotest.to_alcotest prop_pqueue_model;
        ] );
      ( "shadow",
        [
          Alcotest.test_case "basic" `Quick test_shadow_basic;
          Alcotest.test_case "crash leaves old or new" `Quick
            test_shadow_crash_old_or_new_never_mixed;
          Alcotest.test_case "leaks reclaimed after crash" `Quick
            test_shadow_leak_reclaimed_after_crash;
        ] );
      ( "pextent",
        [
          Alcotest.test_case "basic" `Quick test_pextent_basic;
          Alcotest.test_case "incomplete append discarded" `Quick
            test_pextent_incomplete_append_discarded;
          QCheck_alcotest.to_alcotest prop_pextent_roundtrip;
        ] );
      ( "bp",
        [
          Alcotest.test_case "many inserts splits" `Quick
            test_bp_many_inserts_splits;
          Alcotest.test_case "range scan" `Quick test_bp_range_scan;
          Alcotest.test_case "survives reincarnation" `Quick
            test_bp_survives_reincarnation;
          QCheck_alcotest.to_alcotest prop_bp_model;
        ] );
    ]
