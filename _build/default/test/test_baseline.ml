(* Tests for the comparator stack: PCM-disk, the WAL with group commit,
   the page cache, the BDB-style store, the serializer and the msync
   store. *)

let env () = Scm.Env.standalone (Scm.Env.make_machine ~nframes:16 ())

let sim_env sim m =
  Scm.Env.view m ~delay:(fun ns -> Sim.delay sim ns)
    ~now:(fun () -> Sim.now sim)

(* ------------------------------------------------------------------ *)
(* PCM-disk *)

let test_disk_roundtrip () =
  let disk = Baseline.Pcm_disk.create ~nblocks:8 () in
  let e = env () in
  let block = Bytes.make Baseline.Pcm_disk.block_bytes 'z' in
  Baseline.Pcm_disk.write_block disk e 3 block;
  Alcotest.(check bytes) "roundtrip" block (Baseline.Pcm_disk.read_block disk e 3);
  Alcotest.(check int) "blocks written" 1 (Baseline.Pcm_disk.blocks_written disk)

let test_disk_write_costs () =
  let disk = Baseline.Pcm_disk.create ~nblocks:64 () in
  let e = env () in
  let t0 = e.now () in
  Baseline.Pcm_disk.write_block disk e 0
    (Bytes.make Baseline.Pcm_disk.block_bytes 'a');
  let one = e.now () - t0 in
  let t0 = e.now () in
  Baseline.Pcm_disk.write_blocks disk e 1 (Bytes.make (16 * 4096) 'b');
  let sixteen = e.now () - t0 in
  Alcotest.(check bool) "multi-block amortizes software cost" true
    (sixteen < 16 * one);
  Alcotest.(check bool) "but still pays the bandwidth" true
    (sixteen > 8 * Scm.Latency_model.streaming_write_ns
                 (Baseline.Pcm_disk.latency_model disk) 4096)

let test_disk_sensitivity () =
  let slow =
    Scm.Latency_model.with_pcm_write_ns Scm.Latency_model.default 2000
  in
  let d1 = Baseline.Pcm_disk.create ~nblocks:8 () in
  let d2 = Baseline.Pcm_disk.create ~latency:slow ~nblocks:8 () in
  Alcotest.(check bool) "slower media costs more" true
    (Baseline.Pcm_disk.write_cost_ns d2 64
     > Baseline.Pcm_disk.write_cost_ns d1 64)

(* ------------------------------------------------------------------ *)
(* WAL and group commit *)

let test_wal_single_thread_flushes_each () =
  let disk = Baseline.Pcm_disk.create ~nblocks:512 () in
  let wal = Baseline.Wal.create disk ~start_block:0 ~blocks:256 in
  let e = env () in
  for _ = 1 to 5 do
    Baseline.Wal.commit_record wal e 100
  done;
  Alcotest.(check int) "records" 5 (Baseline.Wal.records wal);
  Alcotest.(check int) "one flush each" 5 (Baseline.Wal.flushes wal)

let test_wal_group_commit_amortizes () =
  (* Many threads committing concurrently must share flushes: the
     achieved group size exceeds 1, and every committer still waits for
     its own record's durability. *)
  let sim = Sim.create () in
  let disk = Baseline.Pcm_disk.create ~nblocks:512 () in
  let wal = Baseline.Wal.create ~sim disk ~start_block:0 ~blocks:256 in
  let m = Scm.Env.make_machine ~nframes:16 () in
  let committed = ref 0 in
  for _ = 1 to 8 do
    Sim.spawn sim (fun () ->
        let e = sim_env sim m in
        for _ = 1 to 10 do
          Baseline.Wal.commit_record wal e 64;
          incr committed
        done)
  done;
  Sim.run sim;
  Alcotest.(check int) "all committed" 80 !committed;
  Alcotest.(check int) "all recorded" 80 (Baseline.Wal.records wal);
  Alcotest.(check bool) "groups formed" true (Baseline.Wal.flushes wal < 80);
  Alcotest.(check bool) "but more than one flush" true
    (Baseline.Wal.flushes wal > 1)

let test_wal_serialization_limits_scaling () =
  (* Throughput with 4 threads must be well below 4x of 1 thread: the
     in-mutex record insertion is the bottleneck the paper blames. *)
  let run threads =
    let sim = Sim.create () in
    let disk = Baseline.Pcm_disk.create ~nblocks:512 () in
    let wal = Baseline.Wal.create ~sim disk ~start_block:0 ~blocks:256 in
    let m = Scm.Env.make_machine ~nframes:16 () in
    for _ = 1 to threads do
      Sim.spawn sim (fun () ->
          let e = sim_env sim m in
          for _ = 1 to 25 do
            Baseline.Wal.commit_record wal e 64;
            Sim.delay sim 10_000 (* non-storage work *)
          done)
    done;
    Sim.run sim;
    float_of_int (25 * threads) /. float_of_int (Sim.now sim)
  in
  let t1 = run 1 and t4 = run 4 in
  Alcotest.(check bool) "some speedup" true (t4 > t1);
  Alcotest.(check bool) "far from linear" true (t4 < 3.0 *. t1)

(* ------------------------------------------------------------------ *)
(* Page cache *)

let test_page_cache_eviction_writes_back () =
  let disk = Baseline.Pcm_disk.create ~nblocks:64 () in
  let cache = Baseline.Page_cache.create disk ~capacity_pages:4 in
  let e = env () in
  (* dirty 8 pages in a 4-page cache *)
  for p = 0 to 7 do
    let page = Baseline.Page_cache.get cache e p in
    Bytes.set page 0 (Char.chr (100 + p));
    Baseline.Page_cache.mark_dirty cache p
  done;
  Alcotest.(check bool) "capacity respected" true
    (Baseline.Page_cache.resident cache <= 4);
  Alcotest.(check bool) "evictions wrote back" true
    (Baseline.Pcm_disk.blocks_written disk >= 4);
  (* every page must read back its byte, possibly from disk *)
  Baseline.Page_cache.flush_all cache e;
  for p = 0 to 7 do
    let page = Baseline.Page_cache.get cache e p in
    Alcotest.(check char)
      (Printf.sprintf "page %d" p)
      (Char.chr (100 + p))
      (Bytes.get page 0)
  done

(* ------------------------------------------------------------------ *)
(* BDB store *)

let test_bdb_functional () =
  let disk = Baseline.Pcm_disk.create ~nblocks:1024 () in
  let bdb = Baseline.Bdb.create disk in
  let e = env () in
  let k s = Bytes.of_string s in
  Baseline.Bdb.put bdb e (k "a") (k "1");
  Baseline.Bdb.put bdb e (k "b") (k "2");
  Baseline.Bdb.put bdb e (k "a") (k "1'");
  Alcotest.(check (option bytes)) "get a" (Some (k "1'"))
    (Baseline.Bdb.get bdb e (k "a"));
  Alcotest.(check (option bytes)) "get c" None (Baseline.Bdb.get bdb e (k "c"));
  Alcotest.(check bool) "delete" true (Baseline.Bdb.delete bdb e (k "b"));
  Alcotest.(check bool) "delete gone" false (Baseline.Bdb.delete bdb e (k "b"));
  Alcotest.(check int) "length" 1 (Baseline.Bdb.length bdb)

let test_bdb_put_latency_flat_with_size () =
  (* the disk-era optimization: latency grows slowly with value size *)
  let disk = Baseline.Pcm_disk.create ~nblocks:1024 () in
  let bdb = Baseline.Bdb.create disk in
  let e = env () in
  let cost size =
    let t0 = e.now () in
    Baseline.Bdb.put bdb e (Bytes.of_string "key") (Bytes.make size 'v');
    e.now () - t0
  in
  let small = cost 8 and big = cost 4096 in
  Alcotest.(check bool) "grows sublinearly" true (big < 3 * small)

(* ------------------------------------------------------------------ *)
(* Serializer *)

let test_serializer_roundtrip () =
  let entries =
    List.init 50 (fun i ->
        (Int64.of_int (i * 7), Bytes.make (1 + (i mod 30)) (Char.chr (65 + (i mod 26)))))
  in
  let disk = Baseline.Pcm_disk.create ~nblocks:64 () in
  let e = env () in
  let bytes = Baseline.Serializer.serialize disk e ~start_block:0 entries in
  Alcotest.(check bool) "wrote something" true (bytes > 0);
  let back = Baseline.Serializer.deserialize disk e ~start_block:0 in
  Alcotest.(check int) "count" 50 (List.length back);
  List.iter2
    (fun (k, v) (k', v') ->
      Alcotest.(check int64) "key" k k';
      Alcotest.(check bytes) "value" v v')
    entries back

let prop_serializer_roundtrip =
  QCheck.Test.make ~name:"serializer encode/decode roundtrip" ~count:100
    QCheck.(small_list (pair int64 (string_of_size Gen.(0 -- 64))))
    (fun entries ->
      let entries = List.map (fun (k, s) -> (k, Bytes.of_string s)) entries in
      Baseline.Serializer.decode (Baseline.Serializer.encode entries)
      = entries)

let test_serializer_cost_linear () =
  let disk = Baseline.Pcm_disk.create ~nblocks:4096 () in
  let e = env () in
  let cost n =
    let entries = List.init n (fun i -> (Int64.of_int i, Bytes.make 88 'x')) in
    let t0 = e.now () in
    ignore (Baseline.Serializer.serialize disk e ~start_block:0 entries);
    e.now () - t0
  in
  let c1 = cost 100 and c8 = cost 800 in
  Alcotest.(check bool) "roughly linear" true
    (c8 > 5 * c1 && c8 < 12 * c1)

(* ------------------------------------------------------------------ *)
(* Msync store *)

let test_msync_functional_and_costs () =
  let disk = Baseline.Pcm_disk.create ~nblocks:1024 () in
  let store = Baseline.Msync_store.create disk in
  let e = env () in
  let k s = Bytes.of_string s in
  let cost f =
    let t0 = e.now () in
    f ();
    e.now () - t0
  in
  let small =
    cost (fun () -> Baseline.Msync_store.put store e (k "a") (Bytes.make 64 'v'))
  in
  let big =
    cost (fun () -> Baseline.Msync_store.put store e (k "b") (Bytes.make 1024 'v'))
  in
  Alcotest.(check (option bytes)) "get" (Some (Bytes.make 64 'v'))
    (Baseline.Msync_store.get store e (k "a"));
  Alcotest.(check bool) "write amplification bites large values" true
    (big > 5 * small);
  Alcotest.(check bool) "torn window exposed" true
    (Baseline.Msync_store.torn_window_pages store > 0);
  Alcotest.(check bool) "delete" true (Baseline.Msync_store.delete store e (k "a"));
  Alcotest.(check int) "length" 1 (Baseline.Msync_store.length store)

let () =
  Alcotest.run "baseline"
    [
      ( "pcm-disk",
        [
          Alcotest.test_case "roundtrip" `Quick test_disk_roundtrip;
          Alcotest.test_case "write costs" `Quick test_disk_write_costs;
          Alcotest.test_case "latency sensitivity" `Quick
            test_disk_sensitivity;
        ] );
      ( "wal",
        [
          Alcotest.test_case "single-thread flushes each" `Quick
            test_wal_single_thread_flushes_each;
          Alcotest.test_case "group commit amortizes" `Quick
            test_wal_group_commit_amortizes;
          Alcotest.test_case "serialization limits scaling" `Quick
            test_wal_serialization_limits_scaling;
        ] );
      ( "page-cache",
        [
          Alcotest.test_case "eviction writes back" `Quick
            test_page_cache_eviction_writes_back;
        ] );
      ( "bdb",
        [
          Alcotest.test_case "functional" `Quick test_bdb_functional;
          Alcotest.test_case "latency flat with size" `Quick
            test_bdb_put_latency_flat_with_size;
        ] );
      ( "serializer",
        [
          Alcotest.test_case "roundtrip" `Quick test_serializer_roundtrip;
          Alcotest.test_case "cost linear" `Quick test_serializer_cost_linear;
          QCheck_alcotest.to_alcotest prop_serializer_roundtrip;
        ] );
      ( "msync",
        [
          Alcotest.test_case "functional and costs" `Quick
            test_msync_functional_and_costs;
        ] );
    ]
