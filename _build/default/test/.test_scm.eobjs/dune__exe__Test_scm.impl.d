test/test_scm.ml: Alcotest Array Bytes Cache Char Crash Env Filename Fun Int64 Latency_model List Primitives Printf QCheck QCheck_alcotest Random Scm Scm_device Sys Wc_buffer Word
