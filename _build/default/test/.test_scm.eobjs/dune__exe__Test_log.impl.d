test/test_log.ml: Alcotest Array Filename Fun Gen Int64 List Pmlog Printf QCheck QCheck_alcotest Region Scm Sys
