test/test_region.ml: Alcotest Array Bytes Char Filename Fun Hashtbl Int64 List Printf QCheck QCheck_alcotest Region Scm String Sys
