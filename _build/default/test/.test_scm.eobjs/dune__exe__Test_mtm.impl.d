test/test_mtm.ml: Alcotest Array Bytes Filename Fun Gen Hashtbl Int64 List Mtm Pmheap Printf QCheck QCheck_alcotest Region Scm Sim String Sys
