test/test_core.ml: Alcotest Array Bytes Filename Fun Int64 List Mnemosyne Region Sys Workload
