test/test_mtm.mli:
