test/test_heap.ml: Alcotest Array Filename Fun Gen Int64 List Pmheap Pmlog QCheck QCheck_alcotest Random Region Scm Sys
