test/test_apps.ml: Alcotest Apps Array Baseline Bytes Filename Fun Int64 Mnemosyne Region Scm Sys
