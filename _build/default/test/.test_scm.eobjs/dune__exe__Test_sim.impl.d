test/test_sim.ml: Alcotest Buffer List Printf QCheck QCheck_alcotest Sim
