test/test_baseline.ml: Alcotest Baseline Bytes Char Gen Int64 List Printf QCheck QCheck_alcotest Scm Sim
