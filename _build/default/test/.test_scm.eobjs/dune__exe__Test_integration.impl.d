test/test_integration.ml: Alcotest Array Bytes Filename Fun Gen Hashtbl Int64 List Mnemosyne Mtm Pmheap Printf Pstruct QCheck QCheck_alcotest Random Region Scm Sim Sys Workload
