test/test_pstruct.ml: Alcotest Array Bytes Filename Fun Gen Hashtbl Int64 List Map Mnemosyne Mtm Option Printf Pstruct QCheck QCheck_alcotest Queue Random Region Scm Sys
