(* Tests for the Mnemosyne facade (open/close/reincarnate, the Log
   facade, pstatic/pmap passthroughs) and the workload utilities. *)

let with_tmpdir f =
  let dir = Filename.temp_file "mnemocore" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun n -> rm (Filename.concat p n)) (Sys.readdir p);
          Sys.rmdir p
        end
        else Sys.remove p
      in
      if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

(* ------------------------------------------------------------------ *)

let test_open_close_reopen () =
  with_tmpdir (fun dir ->
      let inst = Mnemosyne.open_instance ~dir () in
      let slot = Mnemosyne.pstatic inst "core.x" 8 in
      let v = Mnemosyne.view inst in
      Region.Pmem.wtstore v slot 99L;
      Region.Pmem.fence v;
      Mnemosyne.close inst;
      (* clean reopen from the saved image *)
      let inst = Mnemosyne.open_instance ~dir () in
      let slot = Mnemosyne.pstatic inst "core.x" 8 in
      Alcotest.(check int64) "survives clean close" 99L
        (Region.Pmem.load (Mnemosyne.view inst) slot);
      let stats = Mnemosyne.reincarnation_stats inst in
      Alcotest.(check int) "no replay on clean open" 0 stats.txns_replayed;
      Alcotest.(check bool) "boot cost present" true (stats.boot_ns > 0))

let test_pmap_punmap_through_facade () =
  with_tmpdir (fun dir ->
      let inst = Mnemosyne.open_instance ~dir () in
      (* the instance's own regions (heap, transaction logs) exist too *)
      let before = Region.Pmem.regions (Mnemosyne.pmem inst) in
      let r = Mnemosyne.pmap inst 12_000 in
      let v = Mnemosyne.view inst in
      Region.Pmem.store v r 1L;
      Alcotest.(check int) "one more region" (List.length before + 1)
        (List.length (Region.Pmem.regions (Mnemosyne.pmem inst)));
      Mnemosyne.punmap inst r;
      Alcotest.(check (list (pair int int))) "region gone" before
        (Region.Pmem.regions (Mnemosyne.pmem inst)))

let test_pmalloc_pfree_through_facade () =
  with_tmpdir (fun dir ->
      let inst = Mnemosyne.open_instance ~dir () in
      let slot = Mnemosyne.pstatic inst "core.ptr" 8 in
      let addr = Mnemosyne.pmalloc inst 128 ~slot in
      Alcotest.(check int64) "slot set" (Int64.of_int addr)
        (Region.Pmem.load (Mnemosyne.view inst) slot);
      Mnemosyne.pfree inst ~slot;
      Alcotest.(check int64) "slot cleared" 0L
        (Region.Pmem.load (Mnemosyne.view inst) slot))

let test_log_facade_roundtrip () =
  with_tmpdir (fun dir ->
      let inst = Mnemosyne.open_instance ~dir () in
      let log = Mnemosyne.Log.create inst ~name:"ev" ~cap_words:256 in
      Alcotest.(check int) "fresh log empty" 0
        (List.length (Mnemosyne.Log.recovered log));
      Mnemosyne.Log.append log [| 1L; 2L |];
      Mnemosyne.Log.append log [| 3L |];
      Mnemosyne.Log.flush log;
      let inst = Mnemosyne.reincarnate inst in
      let log = Mnemosyne.Log.create inst ~name:"ev" ~cap_words:256 in
      Alcotest.(check int) "both records recovered" 2
        (List.length (Mnemosyne.Log.recovered log));
      Mnemosyne.Log.truncate log;
      let inst = Mnemosyne.reincarnate inst in
      let log = Mnemosyne.Log.create inst ~name:"ev" ~cap_words:256 in
      Alcotest.(check int) "truncation durable" 0
        (List.length (Mnemosyne.Log.recovered log));
      ignore inst)

let test_log_facade_self_truncates_when_full () =
  with_tmpdir (fun dir ->
      let inst = Mnemosyne.open_instance ~dir () in
      let log = Mnemosyne.Log.create inst ~name:"small" ~cap_words:16 in
      (* far more than capacity: append must keep succeeding *)
      for i = 0 to 63 do
        Mnemosyne.Log.append log [| Int64.of_int i; 0L |]
      done;
      Mnemosyne.Log.flush log)

let test_distinct_instances_are_isolated () =
  with_tmpdir (fun dir1 ->
      with_tmpdir (fun dir2 ->
          let a = Mnemosyne.open_instance ~dir:dir1 () in
          let b = Mnemosyne.open_instance ~dir:dir2 () in
          let sa = Mnemosyne.pstatic a "iso" 8 in
          let sb = Mnemosyne.pstatic b "iso" 8 in
          Region.Pmem.wtstore (Mnemosyne.view a) sa 1L;
          Region.Pmem.fence (Mnemosyne.view a);
          Alcotest.(check int64) "b unaffected" 0L
            (Region.Pmem.load (Mnemosyne.view b) sb)))

(* ------------------------------------------------------------------ *)
(* Workload utilities *)

let test_stats_percentiles () =
  let s = Workload.Stats.create () in
  for i = 1 to 100 do
    Workload.Stats.add s (i * 10)
  done;
  Alcotest.(check int) "count" 100 (Workload.Stats.count s);
  Alcotest.(check (float 0.01)) "mean" 505.0 (Workload.Stats.mean_ns s);
  Alcotest.(check int) "min" 10 (Workload.Stats.min_ns s);
  Alcotest.(check int) "max" 1000 (Workload.Stats.max_ns s);
  Alcotest.(check int) "p50" 510 (Workload.Stats.percentile_ns s 50.0);
  Alcotest.(check int) "p99" 990 (Workload.Stats.percentile_ns s 99.0);
  Alcotest.(check (float 0.01)) "throughput" 2.0e8
    (Workload.Stats.throughput_per_s ~ops:100 ~elapsed_ns:500)

let test_zipf_skew () =
  let kg = Workload.Keygen.create ~seed:1 () in
  let dist = Workload.Keygen.Zipf.make kg ~n:1000 ~theta:0.99 in
  let counts = Array.make 1000 0 in
  for _ = 1 to 20_000 do
    let r = Workload.Keygen.Zipf.draw dist in
    counts.(r) <- counts.(r) + 1
  done;
  (* rank 0 must dominate and the tail must still be hit *)
  Alcotest.(check bool) "head dominates" true (counts.(0) > counts.(100) * 5);
  let tail_hits = Array.fold_left ( + ) 0 (Array.sub counts 500 500) in
  Alcotest.(check bool) "tail sampled" true (tail_hits > 0)

let test_keygen_determinism () =
  let a = Workload.Keygen.create ~seed:7 () in
  let b = Workload.Keygen.create ~seed:7 () in
  Alcotest.(check bytes) "same sequence"
    (Workload.Keygen.value a 32)
    (Workload.Keygen.value b 32);
  Alcotest.(check bytes) "seq key stable" (Bytes.of_string "k00000042")
    (Workload.Keygen.seq_key 42)

let () =
  Alcotest.run "core"
    [
      ( "facade",
        [
          Alcotest.test_case "open/close/reopen" `Quick test_open_close_reopen;
          Alcotest.test_case "pmap/punmap" `Quick
            test_pmap_punmap_through_facade;
          Alcotest.test_case "pmalloc/pfree" `Quick
            test_pmalloc_pfree_through_facade;
          Alcotest.test_case "log facade roundtrip" `Quick
            test_log_facade_roundtrip;
          Alcotest.test_case "log self-truncates when full" `Quick
            test_log_facade_self_truncates_when_full;
          Alcotest.test_case "instances isolated" `Quick
            test_distinct_instances_are_isolated;
        ] );
      ( "workload",
        [
          Alcotest.test_case "stats percentiles" `Quick test_stats_percentiles;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "keygen determinism" `Quick
            test_keygen_determinism;
        ] );
    ]
