(* Tests for the region layer: mapping table, region manager (boot,
   fault, swap), libmnemosyne regions (pmap/punmap, intention log) and
   pstatic variables. *)

let with_tmpdir f =
  let dir =
    Filename.temp_file "mnemosyne" ""
  in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun name -> Sys.remove (Filename.concat dir name))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let machine ?(nframes = 256) () = Scm.Env.make_machine ~seed:11 ~nframes ()

(* ------------------------------------------------------------------ *)
(* Mapping table *)

let test_mapping_table_format_and_get () =
  let m = machine ~nframes:64 () in
  let table = Region.Mapping_table.create m.dev in
  Region.Mapping_table.format table m.dev;
  let reserved = Region.Mapping_table.frames_for ~nframes:64 in
  Alcotest.(check bool) "reserves at least one frame" true (reserved >= 1);
  (match Region.Mapping_table.get table 0 with
  | Region.Mapping_table.Reserved -> ()
  | _ -> Alcotest.fail "frame 0 should be reserved");
  match Region.Mapping_table.get table (reserved + 1) with
  | Region.Mapping_table.Free -> ()
  | _ -> Alcotest.fail "data frames should be free"

let test_mapping_table_durable_update () =
  let m = machine ~nframes:64 () in
  let table = Region.Mapping_table.create m.dev in
  Region.Mapping_table.format table m.dev;
  let env = Scm.Env.standalone m in
  Region.Mapping_table.set_mapped table env ~frame:10 ~inode:3 ~page_off:7;
  (* survives a crash: entry was written with write-through + fence *)
  Scm.Crash.inject m;
  let table' = Region.Mapping_table.create m.dev in
  match Region.Mapping_table.get table' 10 with
  | Region.Mapping_table.Mapped { inode = 3; page_off = 7 } -> ()
  | _ -> Alcotest.fail "mapping must survive the crash"

(* ------------------------------------------------------------------ *)
(* Manager *)

let test_manager_format_boot_roundtrip () =
  with_tmpdir (fun dir ->
      let m = machine ~nframes:64 () in
      let backing = Region.Backing_store.open_dir dir in
      let mgr = Region.Manager.format m backing in
      let env = Scm.Env.standalone m in
      let inode = Region.Backing_store.create_file backing () in
      let f1 = Region.Manager.alloc_fresh mgr env ~inode ~page_off:0 in
      let f2 = Region.Manager.alloc_fresh mgr env ~inode ~page_off:1 in
      Alcotest.(check bool) "distinct frames" true (f1 <> f2);
      (* write something durable into the frame *)
      Scm.Scm_device.store64 m.dev (f1 * 4096) 4242L;
      (* reboot: volatile manager state is rebuilt from the table *)
      let mgr' = Region.Manager.boot m backing in
      Alcotest.(check (option int))
        "page 0 resident after boot" (Some f1)
        (Region.Manager.frame_of mgr' ~inode ~page_off:0);
      Alcotest.(check (option int))
        "page 1 resident after boot" (Some f2)
        (Region.Manager.frame_of mgr' ~inode ~page_off:1);
      let stats = Region.Manager.boot_stats mgr' in
      Alcotest.(check int) "scanned all frames" 64 stats.frames_scanned;
      Alcotest.(check int) "rebuilt two mappings" 2 stats.mappings_rebuilt;
      Alcotest.(check bool) "boot cost modeled" true (stats.boot_ns > 0))

let test_manager_swap_out_and_in () =
  with_tmpdir (fun dir ->
      (* Tiny device: reserved frames + 4 data frames force swapping. *)
      let m = machine ~nframes:5 () in
      let backing = Region.Backing_store.open_dir dir in
      let mgr = Region.Manager.format m backing in
      let env = Scm.Env.standalone m in
      let inode = Region.Backing_store.create_file backing () in
      let data_frames = Region.Manager.free_frames mgr in
      Alcotest.(check int) "4 data frames" 4 data_frames;
      (* Touch more pages than frames; write a recognizable word into
         each through the device. *)
      for p = 0 to 7 do
        let f = Region.Manager.fault_in mgr env ~inode ~page_off:p in
        Scm.Scm_device.store64 m.dev (f * 4096) (Int64.of_int (1000 + p))
      done;
      Alcotest.(check bool) "swapped out" true (Region.Manager.swaps_out mgr > 0);
      (* Every page must read back its value, whether resident or not. *)
      for p = 0 to 7 do
        let f = Region.Manager.fault_in mgr env ~inode ~page_off:p in
        Alcotest.(check int64)
          (Printf.sprintf "page %d content" p)
          (Int64.of_int (1000 + p))
          (Scm.Scm_device.load64 m.dev (f * 4096))
      done)

let test_manager_release_pages () =
  with_tmpdir (fun dir ->
      let m = machine ~nframes:64 () in
      let backing = Region.Backing_store.open_dir dir in
      let mgr = Region.Manager.format m backing in
      let env = Scm.Env.standalone m in
      let inode = Region.Backing_store.create_file backing () in
      let free0 = Region.Manager.free_frames mgr in
      for p = 0 to 5 do
        ignore (Region.Manager.fault_in mgr env ~inode ~page_off:p)
      done;
      Alcotest.(check int) "frames consumed" (free0 - 6)
        (Region.Manager.free_frames mgr);
      Region.Manager.release_pages mgr env ~inode;
      Alcotest.(check int) "frames returned" free0
        (Region.Manager.free_frames mgr))

(* ------------------------------------------------------------------ *)
(* Pmem: regions, persistence across reboot, intention log *)

let test_pmem_pmap_and_rw () =
  with_tmpdir (fun dir ->
      let m = machine () in
      let backing = Region.Backing_store.open_dir dir in
      let t = Region.Pmem.open_instance m backing in
      let v = Region.Pmem.default_view t in
      let r = Region.Pmem.pmap v 10_000 in
      Alcotest.(check bool) "in persistent range" true
        (Region.Pmem.is_persistent r);
      Region.Pmem.store v r 17L;
      Region.Pmem.store v (r + 8192) 18L;  (* crosses into page 2 *)
      Alcotest.(check int64) "read back" 17L (Region.Pmem.load v r);
      Alcotest.(check int64) "read back p2" 18L (Region.Pmem.load v (r + 8192));
      Alcotest.(check (list (pair int int)))
        "region listed"
        [ (r, 12288) ]
        (Region.Pmem.regions t))

let test_pmem_byte_ops_across_pages () =
  with_tmpdir (fun dir ->
      let m = machine () in
      let backing = Region.Backing_store.open_dir dir in
      let t = Region.Pmem.open_instance m backing in
      let v = Region.Pmem.default_view t in
      let r = Region.Pmem.pmap v 8192 in
      let data = Bytes.init 1000 (fun i -> Char.chr ((i * 7) mod 256)) in
      (* straddle the page boundary at r+4096 *)
      Region.Pmem.store_bytes v (r + 3600) data 0 1000;
      let back = Bytes.create 1000 in
      Region.Pmem.load_bytes v (r + 3600) back 0 1000;
      Alcotest.(check bytes) "byte roundtrip across pages" data back)

let test_pmem_persistence_across_reboot () =
  with_tmpdir (fun dir ->
      let image = Filename.concat dir "scm.img" in
      let addr =
        let m = machine () in
        let backing = Region.Backing_store.open_dir dir in
        let t = Region.Pmem.open_instance m backing in
        let v = Region.Pmem.default_view t in
        let r = Region.Pmem.pmap v 4096 in
        Region.Pmem.wtstore v r 991L;
        Region.Pmem.fence v;
        (* crash, then save the device image = machine loses power *)
        Scm.Crash.inject m;
        Scm.Scm_device.save_image m.dev image;
        r
      in
      (* reboot: new machine from the image, fresh volatile state *)
      let dev = Scm.Scm_device.load_image image in
      let m' = Scm.Env.machine_of_device dev in
      let backing = Region.Backing_store.open_dir dir in
      let t' = Region.Pmem.open_instance m' backing in
      let v' = Region.Pmem.default_view t' in
      Alcotest.(check (list (pair int int)))
        "region recreated"
        [ (addr, 4096) ]
        (Region.Pmem.regions t');
      Alcotest.(check int64) "data survived" 991L (Region.Pmem.load v' addr))

let test_pmem_punmap_deletes () =
  with_tmpdir (fun dir ->
      let m = machine () in
      let backing = Region.Backing_store.open_dir dir in
      let t = Region.Pmem.open_instance m backing in
      let v = Region.Pmem.default_view t in
      let r = Region.Pmem.pmap v 4096 in
      Region.Pmem.store v r 5L;
      Region.Pmem.punmap v r;
      Alcotest.(check (list (pair int int))) "no regions" []
        (Region.Pmem.regions t);
      Alcotest.check_raises "address no longer mapped"
        (Invalid_argument
           (Printf.sprintf "Pmem: address %#x is not in any persistent region"
              r))
        (fun () -> ignore (Region.Pmem.load v r)))

let test_pmem_address_reuse_after_punmap_is_clean () =
  with_tmpdir (fun dir ->
      let m = machine () in
      let backing = Region.Backing_store.open_dir dir in
      let t = Region.Pmem.open_instance m backing in
      let v = Region.Pmem.default_view t in
      let r1 = Region.Pmem.pmap v 4096 in
      Region.Pmem.wtstore v r1 777L;
      Region.Pmem.fence v;
      Region.Pmem.punmap v r1;
      let r2 = Region.Pmem.pmap v ~addr:r1 4096 in
      Alcotest.(check int) "same address" r1 r2;
      Alcotest.(check int64) "fresh region reads zero" 0L
        (Region.Pmem.load v r2))

let test_pmem_intention_log_destroys_partial () =
  with_tmpdir (fun dir ->
      (* Simulate a crash in the middle of pmap: intent recorded, valid
         flag never set.  On the next open the region must be
         destroyed. *)
      let image = Filename.concat dir "scm.img" in
      (let m = machine () in
       let backing = Region.Backing_store.open_dir dir in
       let t = Region.Pmem.open_instance m backing in
       let v = Region.Pmem.default_view t in
       ignore (Region.Pmem.pmap v 4096);
       (* Manufacture a partially-created region: flip a valid entry
          back to intent-only, durably, as if we crashed mid-pmap. *)
       let rt_entry = Region.Layout.region_table_base + 64 in
       Region.Pmem.wtstore v (rt_entry + 24) 1L (* intent only *);
       Region.Pmem.fence v;
       Scm.Crash.inject m;
       Scm.Scm_device.save_image m.dev image);
      let dev = Scm.Scm_device.load_image image in
      let m' = Scm.Env.machine_of_device dev in
      let backing = Region.Backing_store.open_dir dir in
      let t' = Region.Pmem.open_instance m' backing in
      Alcotest.(check (list (pair int int)))
        "partial region destroyed" [] (Region.Pmem.regions t'))

let test_pmem_swap_transparent_to_loads () =
  with_tmpdir (fun dir ->
      (* More region pages than SCM frames: loads/stores must still be
         coherent while the manager swaps underneath. *)
      let m = machine ~nframes:24 () in
      let backing = Region.Backing_store.open_dir dir in
      let t = Region.Pmem.open_instance m backing in
      let v = Region.Pmem.default_view t in
      let npages = 40 in
      let r = Region.Pmem.pmap v (npages * 4096) in
      for p = 0 to npages - 1 do
        Region.Pmem.wtstore v (r + (p * 4096)) (Int64.of_int (p + 1));
        Region.Pmem.fence v
      done;
      Alcotest.(check bool) "swapping happened" true
        (Region.Manager.swaps_out (Region.Pmem.manager t) > 0);
      for p = 0 to npages - 1 do
        Alcotest.(check int64)
          (Printf.sprintf "page %d" p)
          (Int64.of_int (p + 1))
          (Region.Pmem.load v (r + (p * 4096)))
      done)

let test_pmem_close_then_fresh_device () =
  with_tmpdir (fun dir ->
      (* Clean shutdown writes regions to backing files; even a brand
         new (zeroed) SCM device must then recover the data. *)
      let r =
        let m = machine () in
        let backing = Region.Backing_store.open_dir dir in
        let t = Region.Pmem.open_instance m backing in
        let v = Region.Pmem.default_view t in
        let r = Region.Pmem.pmap v 4096 in
        Region.Pmem.store v r 31337L;
        Region.Pmem.close v;
        r
      in
      let m' = machine () in
      let backing = Region.Backing_store.open_dir dir in
      let t' = Region.Pmem.open_instance m' backing in
      let v' = Region.Pmem.default_view t' in
      Alcotest.(check int64) "recovered from backing files" 31337L
        (Region.Pmem.load v' r))

let test_wear_leveling_migrates_hot_pages () =
  with_tmpdir (fun dir ->
      let m = machine ~nframes:128 () in
      let backing = Region.Backing_store.open_dir dir in
      let t = Region.Pmem.open_instance m backing in
      let v = Region.Pmem.default_view t in
      let r = Region.Pmem.pmap v (8 * 4096) in
      (* hammer page 0 with durable writes *)
      for i = 0 to 499 do
        Region.Pmem.wtstore v r (Int64.of_int i);
        Region.Pmem.fence v
      done;
      let mgr = Region.Pmem.manager t in
      let hot_frame =
        Region.Pmem.translate v r / 4096
      in
      let moved = Region.Pmem.wear_level v ~threshold:2.0 in
      Alcotest.(check bool) "hot page migrated" true (moved >= 1);
      let new_frame = Region.Pmem.translate v r / 4096 in
      Alcotest.(check bool) "frame changed" true (new_frame <> hot_frame);
      Alcotest.(check int64) "data preserved" 499L (Region.Pmem.load v r);
      ignore mgr;
      (* survives a reboot: the new mapping is durable *)
      Scm.Crash.inject m;
      let _, v' =
        let m' = Scm.Env.machine_of_device m.dev in
        let backing = Region.Backing_store.open_dir dir in
        let t' = Region.Pmem.open_instance m' backing in
        (m', Region.Pmem.default_view t')
      in
      Alcotest.(check int64) "data after reboot" 499L (Region.Pmem.load v' r))

let test_duplicate_mapping_resolved_at_boot () =
  with_tmpdir (fun dir ->
      (* Simulate a crash mid-wear-leveling migration: two frames carry
         the same (inode, page) mapping with identical contents. *)
      let m = machine ~nframes:64 () in
      let backing = Region.Backing_store.open_dir dir in
      let mgr = Region.Manager.format m backing in
      let env = Scm.Env.standalone m in
      let inode = Region.Backing_store.create_file backing () in
      let f1 = Region.Manager.alloc_fresh mgr env ~inode ~page_off:0 in
      Scm.Scm_device.store64 m.dev (f1 * 4096) 777L;
      (* duplicate the mapping onto another frame with the same data *)
      let table = Region.Mapping_table.create m.dev in
      let f2 = f1 + 1 in
      Scm.Scm_device.store64 m.dev (f2 * 4096) 777L;
      Region.Mapping_table.set_mapped table env ~frame:f2 ~inode ~page_off:0;
      (* boot: exactly one survives, the other returns to the free list *)
      let mgr' = Region.Manager.boot m backing in
      let stats = Region.Manager.boot_stats mgr' in
      Alcotest.(check int) "one mapping" 1 stats.mappings_rebuilt;
      (match Region.Manager.frame_of mgr' ~inode ~page_off:0 with
      | Some f ->
          Alcotest.(check int64) "content intact" 777L
            (Scm.Scm_device.load64 m.dev (f * 4096))
      | None -> Alcotest.fail "mapping lost");
      (* the duplicate's table entry was durably cleared *)
      let dups =
        let n = ref 0 in
        Region.Mapping_table.iter (Region.Mapping_table.create m.dev)
          (fun _ entry ->
            match entry with
            | Region.Mapping_table.Mapped { inode = i; page_off = 0 }
              when i = inode ->
                incr n
            | _ -> ());
        !n
      in
      Alcotest.(check int) "single table entry" 1 dups)

(* ------------------------------------------------------------------ *)
(* Pstatic *)

let test_pstatic_find_or_create () =
  with_tmpdir (fun dir ->
      let m = machine () in
      let backing = Region.Backing_store.open_dir dir in
      let t = Region.Pmem.open_instance m backing in
      let v = Region.Pmem.default_view t in
      let a = Region.Pstatic.get v "counter" 8 in
      Alcotest.(check int64) "zero initialized" 0L (Region.Pmem.load v a);
      Region.Pmem.wtstore v a 5L;
      Region.Pmem.fence v;
      let a' = Region.Pstatic.get v "counter" 8 in
      Alcotest.(check int) "same address" a a';
      Alcotest.(check (option (pair int int)))
        "lookup" (Some (a, 8))
        (Region.Pstatic.lookup v "counter");
      Alcotest.(check (option (pair int int)))
        "missing" None
        (Region.Pstatic.lookup v "nope");
      Alcotest.check_raises "length mismatch"
        (Invalid_argument "Pstatic.get: \"counter\" exists with length 8, not 16")
        (fun () -> ignore (Region.Pstatic.get v "counter" 16)))

let test_pstatic_survives_reboot () =
  with_tmpdir (fun dir ->
      let image = Filename.concat dir "scm.img" in
      let a =
        let m = machine () in
        let backing = Region.Backing_store.open_dir dir in
        let t = Region.Pmem.open_instance m backing in
        let v = Region.Pmem.default_view t in
        let a = Region.Pstatic.get v "root" 16 in
        Region.Pmem.wtstore v a 0xabcdL;
        Region.Pmem.fence v;
        Scm.Crash.inject m;
        Scm.Scm_device.save_image m.dev image;
        a
      in
      let dev = Scm.Scm_device.load_image image in
      let m' = Scm.Env.machine_of_device dev in
      let backing = Region.Backing_store.open_dir dir in
      let t' = Region.Pmem.open_instance m' backing in
      let v' = Region.Pmem.default_view t' in
      Alcotest.(check int) "same address after reboot" a
        (Region.Pstatic.get v' "root" 16);
      Alcotest.(check int64) "value survived" 0xabcdL
        (Region.Pmem.load v' a))

let test_pstatic_many_variables () =
  with_tmpdir (fun dir ->
      let m = machine () in
      let backing = Region.Backing_store.open_dir dir in
      let t = Region.Pmem.open_instance m backing in
      let v = Region.Pmem.default_view t in
      let addrs =
        List.init 20 (fun i ->
            Region.Pstatic.get v (Printf.sprintf "var%02d" i) 8)
      in
      let distinct = List.sort_uniq compare addrs in
      Alcotest.(check int) "all distinct" 20 (List.length distinct);
      let count = ref 0 in
      Region.Pstatic.iter v (fun _ ~addr:_ ~len ->
          incr count;
          Alcotest.(check int) "len" 8 len);
      Alcotest.(check int) "iter sees all" 20 !count)

let test_error_paths () =
  with_tmpdir (fun dir ->
      let m = machine () in
      let backing = Region.Backing_store.open_dir dir in
      let t = Region.Pmem.open_instance m backing in
      let v = Region.Pmem.default_view t in
      Alcotest.check_raises "pmap zero length"
        (Invalid_argument "Pmem.pmap: length") (fun () ->
          ignore (Region.Pmem.pmap v 0));
      Alcotest.check_raises "pmap unaligned explicit address"
        (Invalid_argument "Pmem.pmap: unaligned address") (fun () ->
          ignore (Region.Pmem.pmap v ~addr:(Region.Layout.dynamic_base + 5) 4096));
      Alcotest.check_raises "pmap outside range"
        (Invalid_argument "Pmem.pmap: address outside the persistent range")
        (fun () -> ignore (Region.Pmem.pmap v ~addr:4096 4096));
      let r = Region.Pmem.pmap v 8192 in
      Alcotest.check_raises "pmap overlapping"
        (Invalid_argument "Pmem.pmap: address already mapped") (fun () ->
          ignore (Region.Pmem.pmap v ~addr:r 4096));
      Alcotest.check_raises "punmap middle of region"
        (Invalid_argument "Pmem.punmap: address is not a region base")
        (fun () -> Region.Pmem.punmap v (r + 4096));
      Alcotest.check_raises "punmap static region"
        (Invalid_argument "Pmem.punmap: cannot unmap the static region")
        (fun () -> Region.Pmem.punmap v Region.Layout.static_base);
      Alcotest.check_raises "load outside persistent range"
        (Invalid_argument "Pmem: 0x10 is not a persistent address") (fun () ->
          ignore (Region.Pmem.load v 16));
      Alcotest.check_raises "pstatic name too long"
        (Invalid_argument "Pstatic.get: name too long") (fun () ->
          ignore (Region.Pstatic.get v (String.make 40 'x') 8)))

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_pstatic_crash_atomic =
  (* crash right after creating variables: each one either resolves to
     its full definition or is absent; re-creating is always safe *)
  QCheck.Test.make ~name:"pstatic creation is crash-atomic" ~count:25
    QCheck.(pair (int_bound 1000) (int_range 1 12))
    (fun (seed, nvars) ->
      with_tmpdir (fun dir ->
          let m = Scm.Env.make_machine ~seed ~nframes:256 () in
          let backing = Region.Backing_store.open_dir dir in
          let t = Region.Pmem.open_instance m backing in
          let v = Region.Pmem.default_view t in
          let addrs =
            List.init nvars (fun i ->
                Region.Pstatic.get v (Printf.sprintf "var%02d" i) 16)
          in
          Scm.Crash.inject m;
          let m' = Scm.Env.machine_of_device m.dev in
          let backing = Region.Backing_store.open_dir dir in
          let t' = Region.Pmem.open_instance m' backing in
          let v' = Region.Pmem.default_view t' in
          List.for_all
            (fun i ->
              let name = Printf.sprintf "var%02d" i in
              match Region.Pstatic.lookup v' name with
              | Some (addr, 16) ->
                  (* survived: must be exactly where it was *)
                  addr = List.nth addrs i
              | Some _ -> false
              | None ->
                  (* lost in the crash: recreating must succeed *)
                  Region.Pstatic.get v' name 16 > 0)
            (List.init nvars Fun.id)))

let prop_pmem_wordwise_model =
  QCheck.Test.make ~name:"pmem loads match a model under random stores"
    ~count:40
    QCheck.(list (pair (int_bound 511) (int_bound 10_000)))
    (fun ops ->
      with_tmpdir (fun dir ->
          let m = machine ~nframes:16 () in
          let backing = Region.Backing_store.open_dir dir in
          let t = Region.Pmem.open_instance m backing in
          let v = Region.Pmem.default_view t in
          let r = Region.Pmem.pmap v (8 * 4096) in
          let model = Hashtbl.create 64 in
          List.iter
            (fun (slot, value) ->
              let addr = r + (slot * 8) in
              let value = Int64.of_int value in
              if value = 0L then Region.Pmem.flush v addr
              else begin
                Region.Pmem.store v addr value;
                Hashtbl.replace model slot value
              end)
            ops;
          Hashtbl.fold
            (fun slot expected ok ->
              ok && Region.Pmem.load v (r + (slot * 8)) = expected)
            model true))

let () =
  Alcotest.run "region"
    [
      ( "mapping-table",
        [
          Alcotest.test_case "format and get" `Quick
            test_mapping_table_format_and_get;
          Alcotest.test_case "durable update" `Quick
            test_mapping_table_durable_update;
        ] );
      ( "manager",
        [
          Alcotest.test_case "format/boot roundtrip" `Quick
            test_manager_format_boot_roundtrip;
          Alcotest.test_case "swap out and in" `Quick
            test_manager_swap_out_and_in;
          Alcotest.test_case "release pages" `Quick test_manager_release_pages;
          Alcotest.test_case "wear leveling migrates hot pages" `Quick
            test_wear_leveling_migrates_hot_pages;
          Alcotest.test_case "duplicate mapping resolved at boot" `Quick
            test_duplicate_mapping_resolved_at_boot;
        ] );
      ( "pmem",
        [
          Alcotest.test_case "pmap and rw" `Quick test_pmem_pmap_and_rw;
          Alcotest.test_case "byte ops across pages" `Quick
            test_pmem_byte_ops_across_pages;
          Alcotest.test_case "persistence across reboot" `Quick
            test_pmem_persistence_across_reboot;
          Alcotest.test_case "punmap deletes" `Quick test_pmem_punmap_deletes;
          Alcotest.test_case "address reuse after punmap" `Quick
            test_pmem_address_reuse_after_punmap_is_clean;
          Alcotest.test_case "intention log destroys partial" `Quick
            test_pmem_intention_log_destroys_partial;
          Alcotest.test_case "swap transparent to loads" `Quick
            test_pmem_swap_transparent_to_loads;
          Alcotest.test_case "close then fresh device" `Quick
            test_pmem_close_then_fresh_device;
        ] );
      ( "pstatic",
        [
          Alcotest.test_case "find or create" `Quick
            test_pstatic_find_or_create;
          Alcotest.test_case "survives reboot" `Quick
            test_pstatic_survives_reboot;
          Alcotest.test_case "many variables" `Quick
            test_pstatic_many_variables;
        ] );
      ("errors", [ Alcotest.test_case "error paths" `Quick test_error_paths ]);
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_pmem_wordwise_model;
          QCheck_alcotest.to_alcotest prop_pstatic_crash_atomic;
        ] );
    ]
