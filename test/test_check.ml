(* Tests for lib/check: the Pmcheck durability sanitizer and the
   pmfsck offline image analyzer.

   Each sanitizer rule and each fsck invariant gets a seeded-corruption
   test: build a healthy image (and prove the checker is silent on it),
   inject one specific fault, and assert the checker reports exactly
   the right typed violation.  Without the checker every one of these
   faults would go unnoticed. *)

module Pm = Scm.Pmcheck
module Pmem = Region.Pmem
module Heap = Pmheap.Heap
module Hoard = Pmheap.Hoard
module Large = Pmheap.Large_alloc

let b = Bytes.of_string

let with_tmpdir f =
  let dir = Filename.temp_file "mnemochk" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun n -> rm (Filename.concat p n)) (Sys.readdir p);
          Sys.rmdir p
        end
        else Sys.remove p
      in
      if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

let kinds chk = List.map (fun v -> v.Pm.kind) (Pm.violations chk)

let has_kind chk kind = List.mem kind (kinds chk)

let check_only_kind chk kind =
  Alcotest.(check bool)
    (Printf.sprintf "reported as %s" (Pm.kind_name kind))
    true
    (Pm.violations chk <> []
    && List.for_all (fun v -> v.Pm.kind = kind) (Pm.violations chk))

(* ------------------------------------------------------------------ *)
(* Pmcheck: the per-word state machine, driven directly.               *)

let frame = 3
let vpage = (Region.Layout.persistent_base / 4096) + 100
let word = (vpage * 4096) + 64 (* virtual addr of the word under test *)
let phys = (frame * 4096) + 64
let log_base = Region.Layout.persistent_base + 0x10_0000

let mk ?lint_fences () =
  let obs = Obs.create () in
  let cp = Scm.Crashpoint.create () in
  let chk = Pm.create ?lint_fences ~obs ~cp ~nframes:64 () in
  Pm.note_mapping chk ~vpage ~frame;
  Pm.register_log chk ~base:log_base ~bytes:4096;
  chk

(* The write-ahead rule: a commit that skips the log fence leaves its
   record's durability unproven, so the first write-back of a new data
   value must be flagged. *)
let test_write_ahead () =
  let chk = mk () in
  Pm.commit_begin chk ~log:log_base [| word |] 1;
  Pm.check_store chk word;
  (* No commit_logged: the fence was dropped.  The line reaches the
     device carrying the new value. *)
  Pm.device_reach_line chk phys 64;
  Alcotest.(check int) "one violation" 1 (Pm.total_violations chk);
  check_only_kind chk Pm.Write_ahead;
  Alcotest.(check int) "at the word" word
    (List.hd (Pm.violations chk)).Pm.addr

(* The same sequence with the fence in place must be silent end to
   end, through truncation. *)
let test_clean_commit_protocol () =
  let chk = mk () in
  Pm.commit_begin chk ~log:log_base [| word |] 1;
  Pm.commit_logged chk ~log:log_base;
  Pm.check_store chk word;
  Pm.device_reach_line chk phys 64;
  Pm.commit_end chk ~log:log_base;
  Pm.note_truncate chk ~log:log_base ~all:false;
  Alcotest.(check int) "silent" 0 (Pm.total_violations chk)

(* Truncation racing un-fenced data: the record retires while the data
   it covers is still dirty in the cache. *)
let test_trunc_unfenced () =
  let chk = mk () in
  Pm.commit_begin chk ~log:log_base [| word |] 1;
  Pm.commit_logged chk ~log:log_base;
  Pm.check_store chk word;
  Pm.commit_end chk ~log:log_base;
  (* The word never reached the device, yet the log moves its head. *)
  Pm.note_truncate chk ~log:log_base ~all:false;
  Alcotest.(check int) "one violation" 1 (Pm.total_violations chk);
  check_only_kind chk Pm.Trunc_unfenced

(* ------------------------------------------------------------------ *)
(* Pmcheck: wired into a live instance via Env.install_pmcheck.        *)

let with_sanitized ?lint_fences f =
  with_tmpdir (fun dir ->
      let obs = Obs.create () in
      let machine = Mnemosyne.prepare_machine ~obs ~dir () in
      let chk = Scm.Env.install_pmcheck ?lint_fences machine in
      let inst = Mnemosyne.open_instance ~obs ~machine ~dir () in
      f inst chk)

let seed_block inst name =
  let slot = Mnemosyne.pstatic inst name 8 in
  Mnemosyne.atomically inst (fun tx ->
      let a = Mtm.Txn.alloc tx 64 ~slot in
      for i = 0 to 7 do
        Mtm.Txn.store tx (a + (8 * i)) (Int64.of_int (i + 1))
      done;
      a)

let test_unlogged_store () =
  with_sanitized (fun inst chk ->
      let a = seed_block inst "chk.ul" in
      Alcotest.(check int) "transactional workload is clean" 0
        (Pm.total_violations chk);
      (* A raw in-place store to persistent data, outside any
         transaction: nothing logs it, so a crash mid-write-back would
         tear it. *)
      Pmem.store (Mnemosyne.view inst) a 99L;
      Alcotest.(check bool) "flagged" true (has_kind chk Pm.Unlogged_store);
      Alcotest.(check bool) "at the stored word" true
        (List.exists
           (fun v -> v.Pm.kind = Pm.Unlogged_store && v.Pm.addr = a)
           (Pm.violations chk)))

let test_uninit_read () =
  with_sanitized (fun inst chk ->
      let slot = Mnemosyne.pstatic inst "chk.ui" 8 in
      let a =
        Mnemosyne.atomically inst (fun tx ->
            let a = Mtm.Txn.alloc tx 64 ~slot in
            Mtm.Txn.store tx a 1L;
            (* words a+8 .. a+56 are allocated but never written *)
            a)
      in
      Alcotest.(check int) "allocation itself is clean" 0
        (Pm.total_violations chk);
      ignore (Pmem.load (Mnemosyne.view inst) (a + 8));
      Alcotest.(check bool) "flagged" true (has_kind chk Pm.Uninit_read);
      Alcotest.(check bool) "at the unwritten word" true
        (List.exists
           (fun v -> v.Pm.kind = Pm.Uninit_read && v.Pm.addr = a + 8)
           (Pm.violations chk)))

let test_redundant_fence () =
  with_sanitized ~lint_fences:true (fun inst chk ->
      let v = Mnemosyne.view inst in
      let n0 = Pm.total_violations chk in
      Pmem.fence v;
      (* Nothing was posted, written back or flushed in between: the
         second fence orders nothing. *)
      Pmem.fence v;
      Alcotest.(check bool) "flagged" true (Pm.total_violations chk > n0);
      Alcotest.(check bool) "classified as redundant_fence" true
        (has_kind chk Pm.Redundant_fence);
      Alcotest.(check bool) "noop fences counted" true (Pm.noop_fences chk > 0))

let test_sanitizer_silent_on_clean_run () =
  with_sanitized (fun inst chk ->
      let a = seed_block inst "chk.ok" in
      for round = 0 to 4 do
        Mnemosyne.atomically inst (fun tx ->
            for i = 0 to 7 do
              let w = a + (8 * i) in
              Mtm.Txn.store tx w (Int64.add (Mtm.Txn.load tx w)
                                    (Int64.of_int round))
            done)
      done;
      Pmem.fence (Mnemosyne.view inst);
      Alcotest.(check int) "no violations" 0 (Pm.total_violations chk))

(* ------------------------------------------------------------------ *)
(* pmfsck: seeded corruption of an otherwise healthy image.            *)

let fsck inst = Check.Pmfsck.run (Mnemosyne.view inst)

let fsck_kinds r = List.map (fun f -> f.Check.Pmfsck.kind) r.Check.Pmfsck.findings

let check_clean what r =
  if not (Check.Pmfsck.ok r) then
    Alcotest.failf "%s not clean:\n%s" what (Check.Pmfsck.render r)

let check_finds r kind =
  if not (List.mem kind (fsck_kinds r)) then
    Alcotest.failf "expected a %s finding, got:\n%s"
      (Check.Pmfsck.kind_name kind)
      (Check.Pmfsck.render r)

(* wtstore + fence: durable out-of-band mutation, the corruption
   primitive every test below uses. *)
let corrupt v addr value =
  Pmem.wtstore v addr value;
  Pmem.fence v

let test_fsck_region_overlap () =
  with_tmpdir (fun dir ->
      let inst = Mnemosyne.open_instance ~dir () in
      ignore (seed_block inst "chk.root");
      check_clean "pre-corruption image" (fsck inst);
      let v = Mnemosyne.view inst in
      (* Forge a well-formed region-table entry whose extent lands
         inside an existing region. *)
      let rb, _ = List.hd (Pmem.regions (Mnemosyne.pmem inst)) in
      let free =
        let rec go i =
          if i >= Pmem.rt_capacity then Alcotest.fail "region table full"
          else if Pmem.load_nt v (Pmem.entry_addr i + 24) = 0L then i
          else go (i + 1)
        in
        go 0
      in
      let e = Pmem.entry_addr free in
      Pmem.wtstore v e (Int64.of_int (rb + Region.Layout.page_size));
      Pmem.wtstore v (e + 8) (Int64.of_int Region.Layout.page_size);
      Pmem.wtstore v (e + 16) 99L;
      Pmem.wtstore v (e + 24) Pmem.flag_valid;
      Pmem.fence v;
      let r = fsck inst in
      check_finds r Check.Pmfsck.Region_table;
      Alcotest.(check bool) "overlap named" true
        (List.exists
           (fun f ->
             f.Check.Pmfsck.kind = Check.Pmfsck.Region_table
             && String.length f.detail > 0)
           r.Check.Pmfsck.findings))

let test_fsck_leak () =
  with_tmpdir (fun dir ->
      let inst = Mnemosyne.open_instance ~dir () in
      let slot = Mnemosyne.pstatic inst "chk.root" 8 in
      ignore (seed_block inst "chk.root");
      check_clean "pre-corruption image" (fsck inst);
      (* Sever the only root pointing at the allocation: the block is
         still marked allocated in the superblock bitmap but nothing
         reaches it. *)
      corrupt (Mnemosyne.view inst) slot 0L;
      check_finds (fsck inst) Check.Pmfsck.Leak)

let test_fsck_large_chunk_footer () =
  with_tmpdir (fun dir ->
      let inst = Mnemosyne.open_instance ~dir () in
      let slot = Mnemosyne.pstatic inst "chk.large" 8 in
      let la =
        Mnemosyne.atomically inst (fun tx ->
            let a = Mtm.Txn.alloc tx (2 * Heap.small_limit) ~slot in
            Mtm.Txn.store tx a 7L;
            a)
      in
      check_clean "pre-corruption image" (fsck inst);
      let v = Mnemosyne.view inst in
      let chunk = la - 8 in
      let size = Large.hdr_size (Pmem.load_nt v chunk) in
      (* Contradict the boundary tag: footer says the chunk is bigger
         than its header does. *)
      corrupt v (Large.footer_addr chunk size) (Int64.of_int (size + 64));
      check_finds (fsck inst) Check.Pmfsck.Heap_chain)

let test_fsck_bitmap_bit_beyond_blocks () =
  with_tmpdir (fun dir ->
      let inst = Mnemosyne.open_instance ~dir () in
      ignore (seed_block inst "chk.root");
      check_clean "pre-corruption image" (fsck inst);
      let v = Mnemosyne.view inst in
      let hb = Heap.base (Mnemosyne.heap inst) in
      let sbs = Int64.to_int (Pmem.load_nt v (Heap.sb_count_addr hb)) in
      let sb_area = Heap.sb_area_base hb in
      let sbb, bsize =
        let rec go sb =
          if sb >= sbs then Alcotest.fail "no assigned superblock"
          else
            let sbb = sb_area + (sb * Hoard.superblock_bytes) in
            match Hoard.unpack_header (Pmem.load_nt v sbb) with
            | Some bsize -> (sbb, bsize)
            | None -> go (sb + 1)
        in
        go 0
      in
      (* Set the first allocation bit past the class's block count. *)
      let idx = Hoard.blocks_per bsize in
      let wa = sbb + 8 + (8 * (idx / 64)) in
      let bit = Int64.shift_left 1L (idx mod 64) in
      corrupt v wa (Int64.logor (Pmem.load_nt v wa) bit);
      check_finds (fsck inst) Check.Pmfsck.Heap_bitmap)

let test_fsck_log_head_out_of_range () =
  with_tmpdir (fun dir ->
      let inst = Mnemosyne.open_instance ~dir () in
      ignore (seed_block inst "chk.root");
      check_clean "pre-corruption image" (fsck inst);
      let v = Mnemosyne.view inst in
      let slot = Mnemosyne.pstatic inst "mtm.log.00" 8 in
      let base = Int64.to_int (Pmem.load_nt v slot) in
      (* Head offset far past any plausible capacity. *)
      corrupt v base (Int64.of_int 0xFFFFF);
      check_finds (fsck inst) Check.Pmfsck.Log_header)

let test_fsck_phashtable_bucket_count () =
  with_tmpdir (fun dir ->
      let inst = Mnemosyne.open_instance ~dir () in
      let slot = Mnemosyne.pstatic inst "chk.ht" 8 in
      Mnemosyne.atomically inst (fun tx ->
          let h = Pstruct.Phashtable.create tx ~slot ~buckets:16 in
          Pstruct.Phashtable.put tx h (b "alpha") (b "1");
          Pstruct.Phashtable.put tx h (b "beta") (b "2"));
      check_clean "pre-corruption image" (fsck inst);
      let v = Mnemosyne.view inst in
      let root = Int64.to_int (Pmem.load_nt v slot) in
      (* Keep the magic, break the power-of-two bucket count. *)
      corrupt v root
        (Int64.logor (Int64.shift_left Pstruct.Phashtable.magic 56) 24L);
      check_finds (fsck inst) Check.Pmfsck.Pstruct)

(* A healthy image with real structures in it must stay silent, and
   two full passes must not mutate the backing store by even one
   word: pmfsck is strictly read-only. *)
let test_fsck_clean_and_readonly () =
  with_tmpdir (fun dir ->
      let inst = Mnemosyne.open_instance ~dir () in
      let ht_slot = Mnemosyne.pstatic inst "chk.ht" 8 in
      let bp_slot = Mnemosyne.pstatic inst "chk.bp" 8 in
      Mnemosyne.atomically inst (fun tx ->
          let h = Pstruct.Phashtable.create tx ~slot:ht_slot ~buckets:16 in
          for i = 0 to 19 do
            Pstruct.Phashtable.put tx h
              (b (Printf.sprintf "k%03d" i))
              (b (string_of_int i))
          done;
          let bp = Pstruct.Bp_tree.create tx ~slot:bp_slot in
          for i = 0 to 39 do
            Pstruct.Bp_tree.put tx bp (Int64.of_int i) (b (string_of_int i))
          done);
      let m0 = Region.Backing_store.global_mutations () in
      let r1 = fsck inst in
      let r2 = fsck inst in
      check_clean "populated image" r1;
      check_clean "second pass" r2;
      Alcotest.(check int) "fsck mutated nothing" m0
        (Region.Backing_store.global_mutations ());
      Alcotest.(check bool) "structures walked" true
        (r1.Check.Pmfsck.stats.blocks > 2
        && r1.Check.Pmfsck.stats.reachable = r1.Check.Pmfsck.stats.blocks);
      (* Reports render both ways without raising. *)
      ignore (Check.Pmfsck.render r1);
      ignore (Check.Pmfsck.to_json r1))

(* ------------------------------------------------------------------ *)
(* Racecheck: the happens-before race detector.

   One minimal racy (or deliberately clean) program per HB-edge kind,
   driven through the hook record the instrumented layers fire — plus
   two real-simulator programs proving the Sim wiring (service
   wake→unpark tokens, reentrant mutexes) produces the same edges.
   The qcheck property at the end replays random programs through the
   epoch-compressed detector and the textbook full-vector-clock one
   and demands identical verdicts. *)

module Rc = Check.Racecheck

(* Manual fiber control: tests move [fib] to pick the acting fiber,
   exactly what the harness's [Sim.current_proc] closure does. *)
let mk_det ?mode () =
  let fib = ref 0 in
  let det = Rc.create ?mode ~fiber:(fun () -> !fib) ~now:(fun () -> 0) () in
  (det, Rc.hooks det, fib)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_rc_unordered_writes_race () =
  let det, h, fib = mk_det () in
  fib := 1;
  h.Race_api.write "x";
  fib := 2;
  h.Race_api.write "x";
  match Rc.races det with
  | [ r ] ->
      Alcotest.(check string) "location" "x" r.Rc.loc;
      Alcotest.(check bool) "write/write" true (r.Rc.kind = Rc.Write_write);
      Alcotest.(check int) "prior fiber" 1 r.Rc.prior.Rc.fiber;
      Alcotest.(check int) "current fiber" 2 r.Rc.cur.Rc.fiber;
      Alcotest.(check bool) "prior op precedes current op" true
        (r.Rc.prior.Rc.op < r.Rc.cur.Rc.op);
      let s = Rc.render r in
      Alcotest.(check bool) "render names both fibers and the label" true
        (contains s "fiber 1" && contains s "fiber 2" && contains s "x")
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 race, got %d" (List.length rs))

let test_rc_read_write_kinds () =
  let det, h, fib = mk_det () in
  fib := 1;
  h.Race_api.read "r_then_w";
  fib := 2;
  h.Race_api.write "r_then_w";
  fib := 1;
  h.Race_api.write "w_then_r";
  fib := 2;
  h.Race_api.read "w_then_r";
  let by_loc = List.map (fun r -> (r.Rc.loc, r.Rc.kind)) (Rc.races det) in
  Alcotest.(check bool) "read then write classified" true
    (List.mem ("r_then_w", Rc.Read_write) by_loc);
  Alcotest.(check bool) "write then read classified" true
    (List.mem ("w_then_r", Rc.Write_read) by_loc)

let test_rc_tainted_loc_reported_once () =
  let det, h, fib = mk_det () in
  fib := 1;
  h.Race_api.write "x";
  fib := 2;
  h.Race_api.write "x";
  fib := 3;
  h.Race_api.write "x";
  fib := 2;
  h.Race_api.read "x";
  Alcotest.(check int) "first race taints the location" 1 (Rc.race_count det)

let test_rc_fork_edge () =
  let det, h, fib = mk_det () in
  fib := 1;
  h.Race_api.write "x";
  h.Race_api.fork ~parent:1 ~child:2;
  fib := 2;
  h.Race_api.write "x";
  Alcotest.(check int) "spawn orders parent's prior writes" 0
    (Rc.race_count det);
  (* the fork edge is one-directional and one-shot: the parent's own
     *later* accesses are unordered with the child *)
  h.Race_api.fork ~parent:1 ~child:3;
  fib := 1;
  h.Race_api.write "y";
  fib := 3;
  h.Race_api.write "y";
  Alcotest.(check int) "parent-after-fork races the child" 1
    (Rc.race_count det)

let test_rc_transfer_edge () =
  let det, h, fib = mk_det () in
  fib := 1;
  h.Race_api.write "x";
  h.Race_api.transfer ~src:1 ~dst:2;
  fib := 2;
  h.Race_api.write "x";
  Alcotest.(check int) "suspend/resume transfer orders the handoff" 0
    (Rc.race_count det)

let test_rc_lock_discipline () =
  let det, h, fib = mk_det () in
  fib := 1;
  h.Race_api.acquire "m";
  h.Race_api.write "guarded";
  h.Race_api.release "m";
  fib := 2;
  h.Race_api.acquire "m";
  h.Race_api.write "guarded";
  h.Race_api.release "m";
  Alcotest.(check int) "lock-ordered writes are silent" 0 (Rc.race_count det)

let test_rc_atomics_never_reported () =
  let det, h, fib = mk_det () in
  fib := 1;
  h.Race_api.rmw "counter";
  fib := 2;
  h.Race_api.rmw "counter";
  Alcotest.(check int) "unordered rmws are intentional, not races" 0
    (Rc.race_count det);
  (* ...but they are edges: publishing through an rmw chain orders the
     plain data behind it *)
  fib := 1;
  h.Race_api.write "data";
  h.Race_api.rmw "counter";
  fib := 2;
  h.Race_api.rmw "counter";
  h.Race_api.write "data";
  Alcotest.(check int) "rmw chain carries the edge" 0 (Rc.race_count det)

let test_rc_channel_handoff () =
  let det, h, fib = mk_det () in
  (* the pending_q discipline: per-item plain descriptor + channel edge *)
  fib := 1;
  h.Race_api.write "desc.0";
  h.Race_api.release "q";
  fib := 2;
  h.Race_api.acquire "q";
  h.Race_api.read "desc.0";
  Alcotest.(check int) "push/pop edge orders the descriptor" 0
    (Rc.race_count det);
  (* the same handoff without the channel edge is the lost-wakeup
     shape: a drainer sweeping a queue it never synchronized with *)
  fib := 1;
  h.Race_api.write "desc.1";
  fib := 2;
  h.Race_api.read "desc.1";
  Alcotest.(check int) "edge-free handoff is a race" 1 (Rc.race_count det)

let test_rc_clean_program_silent () =
  let det, h, fib = mk_det () in
  (* fork two workers, each guards the shared loc, parent reads after
     both released through the lock: every access ordered *)
  h.Race_api.fork ~parent:0 ~child:1;
  h.Race_api.fork ~parent:0 ~child:2;
  List.iter
    (fun f ->
      fib := f;
      h.Race_api.acquire "m";
      h.Race_api.read "acc";
      h.Race_api.write "acc";
      h.Race_api.release "m")
    [ 1; 2 ];
  fib := 0;
  h.Race_api.acquire "m";
  h.Race_api.read "acc";
  Alcotest.(check int) "clean program, zero races" 0 (Rc.race_count det);
  Alcotest.(check int) "detector consumed the whole program" 12 (Rc.ops det)

(* The Sim wiring end-to-end: the service wake→unpark token is the HB
   edge for data published before the wake — and only that data. *)
let test_rc_sim_service_token () =
  let sim = Sim.create () in
  let det =
    Rc.create
      ~fiber:(fun () -> Sim.current_proc sim)
      ~now:(fun () -> Sim.now sim)
      ()
  in
  let h = Rc.hooks det in
  Sim.set_race sim (Some h);
  let v = ref 0 in
  let processed = ref false in
  let svc = ref None in
  let s =
    Sim.Service.spawn sim ~work:(fun () ->
        if !v > 0 && not !processed then begin
          h.Race_api.read "handoff";
          h.Race_api.read "late";
          processed := true;
          true
        end
        else false)
  in
  svc := Some s;
  Sim.spawn sim (fun () ->
      Sim.delay sim 10;
      h.Race_api.write "handoff";
      v := 1;
      Sim.Service.wake s;
      (* published after the wake: nothing orders this against the
         daemon's read, and the detector says so even on a run where
         the daemon happens to read the already-written value *)
      h.Race_api.write "late";
      Sim.delay sim 100;
      Sim.Service.stop s);
  Sim.run sim;
  Alcotest.(check bool) "daemon ran the work" true !processed;
  match Rc.races det with
  | [ r ] ->
      Alcotest.(check string) "only the post-wake publish races" "late"
        r.Rc.loc
  | rs ->
      Alcotest.fail
        (Printf.sprintf "expected exactly the 'late' race, got %d"
           (List.length rs))

let test_rc_sim_mutex_edges () =
  let sim = Sim.create () in
  let det =
    Rc.create
      ~fiber:(fun () -> Sim.current_proc sim)
      ~now:(fun () -> Sim.now sim)
      ()
  in
  let h = Rc.hooks det in
  Sim.set_race sim (Some h);
  let m = Sim.Mutex_r.create sim in
  for i = 1 to 2 do
    Sim.spawn sim (fun () ->
        Sim.delay sim i;
        (* outside the lock: nothing orders the two fibers here, even
           though this run's timing never actually overlapped them *)
        h.Race_api.write "unguarded";
        Sim.Mutex_r.lock m;
        h.Race_api.write "guarded";
        Sim.delay sim 10;
        Sim.Mutex_r.unlock m)
  done;
  Sim.run sim;
  let locs = List.map (fun r -> r.Rc.loc) (Rc.races det) in
  Alcotest.(check (list string))
    "mutex orders 'guarded'; 'unguarded' would need the accident of \
     this exact schedule — flagged anyway"
    [ "unguarded" ] locs

(* ------------------------------------------------------------------ *)
(* Equivalence and partial-order properties *)

(* Decode an int list into a program over 3 fibers, 2 plain locations
   and 2 sync objects, with fork/transfer mixed in. *)
let run_program mode ops =
  let fib = ref 0 in
  let det = Rc.create ~mode ~fiber:(fun () -> !fib) ~now:(fun () -> 0) () in
  let h = Rc.hooks det in
  List.iter
    (fun code ->
      let code = abs code in
      let f = code mod 3 in
      fib := f;
      let loc = "l" ^ string_of_int (code / 3 mod 2) in
      let sync = "s" ^ string_of_int (code / 6 mod 2) in
      match code / 12 mod 7 with
      | 0 -> h.Race_api.read loc
      | 1 -> h.Race_api.write loc
      | 2 -> h.Race_api.acquire sync
      | 3 -> h.Race_api.release sync
      | 4 -> h.Race_api.rmw sync
      | 5 -> h.Race_api.fork ~parent:f ~child:((f + 1) mod 3)
      | _ -> h.Race_api.transfer ~src:f ~dst:((f + 2) mod 3))
    ops;
  det

(* FastTrack's epoch compression must be observationally equivalent to
   the textbook full-VC detector: same locations tainted, by the same
   kind of access pair, at the same op — only the retained [prior]
   witness may differ. *)
let prop_fasttrack_equals_naive =
  QCheck.Test.make ~name:"fasttrack == naive full-VC detector" ~count:500
    QCheck.(list_of_size Gen.(0 -- 60) (int_bound 2000))
    (fun ops ->
      let verdict mode =
        List.map
          (fun r -> (r.Rc.loc, r.Rc.kind, r.Rc.cur.Rc.op, r.Rc.cur.Rc.fiber))
          (Rc.races (run_program mode ops))
        |> List.sort compare
      in
      verdict Rc.Fasttrack = verdict Rc.Naive_vc)

let vc_of_list l =
  List.fold_left
    (fun c (f, v) -> Rc.Vc.set c (abs f mod 5) (abs v mod 8))
    Rc.Vc.empty l

let prop_vc_partial_order =
  QCheck.Test.make ~name:"vector-clock join/leq partial-order laws"
    ~count:500
    QCheck.(
      triple
        (small_list (pair small_int small_int))
        (small_list (pair small_int small_int))
        (small_list (pair small_int small_int)))
    (fun (la, lb, lc) ->
      let a = vc_of_list la and b = vc_of_list lb and c = vc_of_list lc in
      let open Rc.Vc in
      equal (join a b) (join b a)
      && equal (join a (join b c)) (join (join a b) c)
      && equal (join a a) a
      && leq a (join a b)
      && leq a a
      && ((not (leq a b)) || not (leq b a) || equal a b)
      && ((not (leq a b)) || not (leq b c) || leq a c)
      && leq (tick a 1) (join (tick a 1) b)
      && not (leq (tick a 1) a))

let () =
  Alcotest.run "check"
    [
      ( "pmcheck",
        [
          Alcotest.test_case "write-ahead breach classified" `Quick
            test_write_ahead;
          Alcotest.test_case "clean commit protocol is silent" `Quick
            test_clean_commit_protocol;
          Alcotest.test_case "truncation racing unfenced data" `Quick
            test_trunc_unfenced;
          Alcotest.test_case "unlogged in-region store" `Quick
            test_unlogged_store;
          Alcotest.test_case "read of never-initialized word" `Quick
            test_uninit_read;
          Alcotest.test_case "fence that ordered nothing" `Quick
            test_redundant_fence;
          Alcotest.test_case "silent on a clean workload" `Quick
            test_sanitizer_silent_on_clean_run;
        ] );
      ( "pmfsck",
        [
          Alcotest.test_case "overlapping region extents" `Quick
            test_fsck_region_overlap;
          Alcotest.test_case "leaked allocation" `Quick test_fsck_leak;
          Alcotest.test_case "large-chunk boundary tag" `Quick
            test_fsck_large_chunk_footer;
          Alcotest.test_case "allocation bit beyond block count" `Quick
            test_fsck_bitmap_bit_beyond_blocks;
          Alcotest.test_case "log head out of range" `Quick
            test_fsck_log_head_out_of_range;
          Alcotest.test_case "hash table bucket count" `Quick
            test_fsck_phashtable_bucket_count;
          Alcotest.test_case "clean image, zero mutations" `Quick
            test_fsck_clean_and_readonly;
        ] );
      ( "racecheck",
        [
          Alcotest.test_case "unordered writes race" `Quick
            test_rc_unordered_writes_race;
          Alcotest.test_case "read/write kinds classified" `Quick
            test_rc_read_write_kinds;
          Alcotest.test_case "tainted location reported once" `Quick
            test_rc_tainted_loc_reported_once;
          Alcotest.test_case "fork edge" `Quick test_rc_fork_edge;
          Alcotest.test_case "suspend/resume transfer edge" `Quick
            test_rc_transfer_edge;
          Alcotest.test_case "lock discipline" `Quick test_rc_lock_discipline;
          Alcotest.test_case "atomics: edges, never reports" `Quick
            test_rc_atomics_never_reported;
          Alcotest.test_case "channel handoff discipline" `Quick
            test_rc_channel_handoff;
          Alcotest.test_case "clean program is silent" `Quick
            test_rc_clean_program_silent;
          Alcotest.test_case "sim service wake token edge" `Quick
            test_rc_sim_service_token;
          Alcotest.test_case "sim mutex edges" `Quick test_rc_sim_mutex_edges;
          QCheck_alcotest.to_alcotest prop_fasttrack_equals_naive;
          QCheck_alcotest.to_alcotest prop_vc_partial_order;
        ] );
    ]
