(* Tests for the discrete-event simulator: ordering, mutexes, condition
   variables, determinism and deadlock detection. *)

let test_delay_ordering () =
  let sim = Sim.create () in
  let trace = ref [] in
  let note tag = trace := (tag, Sim.now sim) :: !trace in
  Sim.spawn sim (fun () ->
      Sim.delay sim 100;
      note "a";
      Sim.delay sim 200;
      note "a2");
  Sim.spawn sim (fun () ->
      Sim.delay sim 150;
      note "b");
  Sim.run sim;
  Alcotest.(check (list (pair string int)))
    "interleaved by time"
    [ ("a", 100); ("b", 150); ("a2", 300) ]
    (List.rev !trace)

let test_same_time_fifo () =
  let sim = Sim.create () in
  let order = ref [] in
  for i = 1 to 5 do
    Sim.spawn sim (fun () ->
        Sim.delay sim 10;
        order := i :: !order)
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "spawn order preserved" [ 1; 2; 3; 4; 5 ]
    (List.rev !order)

let test_run_until () =
  let sim = Sim.create () in
  let fired = ref 0 in
  Sim.spawn sim (fun () ->
      Sim.delay sim 100;
      incr fired;
      Sim.delay sim 100;
      incr fired);
  Sim.run ~until:150 sim;
  Alcotest.(check int) "only first event" 1 !fired;
  Alcotest.(check int) "clock clamped" 150 (Sim.now sim);
  Sim.run sim;
  Alcotest.(check int) "rest completes" 2 !fired;
  Alcotest.(check int) "final clock" 200 (Sim.now sim)

let test_mutex_serializes () =
  let sim = Sim.create () in
  let m = Sim.Mutex_r.create sim in
  let in_cs = ref 0 and max_in_cs = ref 0 and done_count = ref 0 in
  for _ = 1 to 4 do
    Sim.spawn sim (fun () ->
        Sim.Mutex_r.lock m;
        incr in_cs;
        max_in_cs := max !max_in_cs !in_cs;
        Sim.delay sim 50;
        decr in_cs;
        Sim.Mutex_r.unlock m;
        incr done_count)
  done;
  Sim.run sim;
  Alcotest.(check int) "mutual exclusion" 1 !max_in_cs;
  Alcotest.(check int) "all finished" 4 !done_count;
  Alcotest.(check int) "serialized time" 200 (Sim.now sim);
  Alcotest.(check int) "three waited" 3 (Sim.Mutex_r.contentions m)

let test_mutex_fifo_handoff () =
  let sim = Sim.create () in
  let m = Sim.Mutex_r.create sim in
  let order = ref [] in
  for i = 1 to 3 do
    Sim.spawn sim (fun () ->
        Sim.delay sim i;  (* arrive in order 1, 2, 3 *)
        Sim.Mutex_r.lock m;
        order := i :: !order;
        Sim.delay sim 100;
        Sim.Mutex_r.unlock m)
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "FIFO grant order" [ 1; 2; 3 ]
    (List.rev !order)

let test_try_lock () =
  let sim = Sim.create () in
  let m = Sim.Mutex_r.create sim in
  let results = ref [] in
  Sim.spawn sim (fun () ->
      Alcotest.(check bool) "first try succeeds" true (Sim.Mutex_r.try_lock m);
      Sim.delay sim 100;
      Sim.Mutex_r.unlock m);
  Sim.spawn sim (fun () ->
      Sim.delay sim 50;
      results := Sim.Mutex_r.try_lock m :: !results;
      Sim.delay sim 100;
      results := Sim.Mutex_r.try_lock m :: !results;
      Sim.Mutex_r.unlock m);
  Sim.run sim;
  Alcotest.(check (list bool)) "busy then free" [ false; true ]
    (List.rev !results)

let test_cond_group_commit_pattern () =
  (* The group-commit shape used by the Berkeley DB baseline: followers
     wait on a condition; the leader flushes once and broadcasts. *)
  let sim = Sim.create () in
  let m = Sim.Mutex_r.create sim in
  let c = Sim.Cond_r.create sim in
  let flushed = ref false and leader_flushes = ref 0 in
  let commits = ref [] in
  for i = 1 to 3 do
    Sim.spawn sim (fun () ->
        Sim.delay sim i;
        Sim.Mutex_r.lock m;
        if i = 1 then begin
          (* leader: simulate a long flush, then release the group *)
          Sim.delay sim 1000;
          incr leader_flushes;
          flushed := true;
          Sim.Cond_r.broadcast c
        end
        else
          while not !flushed do
            Sim.Cond_r.wait c m
          done;
        commits := (i, Sim.now sim) :: !commits;
        Sim.Mutex_r.unlock m)
  done;
  Sim.run sim;
  Alcotest.(check int) "one flush for the group" 1 !leader_flushes;
  List.iter
    (fun (i, t) ->
      Alcotest.(check bool)
        (Printf.sprintf "thread %d commits after the flush" i)
        true (t >= 1001))
    !commits;
  Alcotest.(check int) "all committed" 3 (List.length !commits)

let test_deadlock_detection () =
  let sim = Sim.create () in
  let m = Sim.Mutex_r.create sim in
  Sim.spawn sim (fun () ->
      Sim.Mutex_r.lock m;
      Sim.Mutex_r.lock m (* self-deadlock *));
  Alcotest.check_raises "deadlock raises"
    (Sim.Deadlock "1 process(es) suspended with no events") (fun () ->
      Sim.run sim)

let test_spawn_from_process () =
  let sim = Sim.create () in
  let child_ran = ref false in
  Sim.spawn sim (fun () ->
      Sim.delay sim 10;
      Sim.spawn sim (fun () ->
          Sim.delay sim 5;
          child_ran := true));
  Sim.run sim;
  Alcotest.(check bool) "child ran" true !child_ran;
  Alcotest.(check int) "time includes child" 15 (Sim.now sim);
  Alcotest.(check int) "two processes" 2 (Sim.processes_run sim)

let test_determinism () =
  let run () =
    let sim = Sim.create () in
    let m = Sim.Mutex_r.create sim in
    let trace = Buffer.create 64 in
    for i = 1 to 5 do
      Sim.spawn sim (fun () ->
          Sim.delay sim (i * 7 mod 3);
          Sim.Mutex_r.with_lock m (fun () ->
              Sim.delay sim i;
              Buffer.add_string trace (Printf.sprintf "%d@%d;" i (Sim.now sim))))
    done;
    Sim.run sim;
    Buffer.contents trace
  in
  Alcotest.(check string) "identical traces" (run ()) (run ())

(* ------------------------------------------------------------------ *)
(* Schedule policies, trace save/load, replay divergence *)

(* Six processes all due at the same instant: the policy owns the
   order. *)
let order_under schedule =
  let sim = Sim.create ~schedule () in
  let order = ref [] in
  for i = 1 to 6 do
    Sim.spawn sim (fun () ->
        Sim.delay sim 10;
        order := i :: !order)
  done;
  Sim.run sim;
  List.rev !order

let test_fifo_schedule_identical () =
  Alcotest.(check (list int))
    "explicit fifo = historical order" [ 1; 2; 3; 4; 5; 6 ]
    (order_under (Sim.Schedule.fifo ()))

let check_policy_permutes policy =
  let mk seed = Sim.Schedule.make ~seed policy in
  let o1 = order_under (mk 1) in
  Alcotest.(check (list int)) "same seed reproduces" o1 (order_under (mk 1));
  Alcotest.(check (list int))
    "a permutation: contents unchanged" [ 1; 2; 3; 4; 5; 6 ]
    (List.sort compare o1);
  let some_differ =
    List.exists (fun s -> order_under (mk s) <> o1) [ 2; 3; 4; 5; 6; 7 ]
  in
  Alcotest.(check bool) "seeds disagree on the order" true some_differ

let test_shuffle_permutes () =
  check_policy_permutes Sim.Schedule.Seeded_shuffle

let test_priority_permutes () = check_policy_permutes Sim.Schedule.Priority

let load_ok path =
  match Sim.Schedule.load path with
  | Ok s -> s
  | Error e -> Alcotest.fail e

(* A workload whose control flow depends on schedule-routed rng draws:
   replay must reproduce both the event order and the draws. *)
let draw_workload schedule =
  let sim = Sim.create ~schedule () in
  let trace = Buffer.create 64 in
  for i = 1 to 4 do
    Sim.spawn sim (fun () ->
        Sim.delay sim 10;
        let d = Sim.Schedule.draw schedule ~bound:50 in
        Buffer.add_string trace
          (Printf.sprintf "%d:%d@%d;" i d (Sim.now sim));
        Sim.delay sim (10 + d);
        Buffer.add_string trace (Printf.sprintf "%d@%d;" i (Sim.now sim)))
  done;
  Sim.run sim;
  Buffer.contents trace

let test_schedule_replay_roundtrip () =
  let rec_sched = Sim.Schedule.make ~seed:9 Sim.Schedule.Seeded_shuffle in
  let recorded = draw_workload rec_sched in
  Sim.Schedule.set_meta rec_sched "shape" "test";
  let path = Filename.temp_file "sched" ".trace" in
  Sim.Schedule.save rec_sched path;
  let loaded = load_ok path in
  Sys.remove path;
  Alcotest.(check bool) "loaded schedule replays" true
    (Sim.Schedule.is_replay loaded);
  Alcotest.(check (option string))
    "meta survives the round trip" (Some "test")
    (Sim.Schedule.meta loaded "shape");
  Alcotest.(check string) "bit-exact replay" recorded (draw_workload loaded);
  Alcotest.(check int) "nothing left over" 0
    (Sim.Schedule.replay_leftover loaded);
  Alcotest.(check int) "nothing invented" 0 (Sim.Schedule.replay_extra loaded)

let test_replay_outliving_trace_falls_back () =
  (* Replay a run that makes more decisions than the recording (the
     regression-trace-against-fixed-code situation): the schedule must
     serve fresh draws past the end of the stream, not die, and count
     them. *)
  let run schedule rounds =
    let sim = Sim.create ~schedule () in
    for _ = 1 to 3 do
      Sim.spawn sim (fun () ->
          for _ = 1 to rounds do
            Sim.delay sim 10;
            ignore (Sim.Schedule.draw schedule ~bound:8)
          done)
    done;
    Sim.run sim
  in
  let rec_sched = Sim.Schedule.make ~seed:3 Sim.Schedule.Seeded_shuffle in
  run rec_sched 2;
  let path = Filename.temp_file "sched" ".trace" in
  Sim.Schedule.save rec_sched path;
  let loaded = load_ok path in
  Sys.remove path;
  run loaded 4;
  Alcotest.(check int) "recorded stream fully consumed" 0
    (Sim.Schedule.replay_leftover loaded);
  Alcotest.(check bool) "fresh decisions counted" true
    (Sim.Schedule.replay_extra loaded > 0)

let test_draw_bound_mismatch_falls_back () =
  let rec_sched = Sim.Schedule.make ~seed:5 Sim.Schedule.Seeded_shuffle in
  for _ = 1 to 4 do
    ignore (Sim.Schedule.draw rec_sched ~bound:8)
  done;
  let path = Filename.temp_file "sched" ".trace" in
  Sim.Schedule.save rec_sched path;
  let loaded = load_ok path in
  Sys.remove path;
  ignore (Sim.Schedule.draw loaded ~bound:8);
  Alcotest.(check int) "matching draw consumed" 0
    (Sim.Schedule.replay_extra loaded);
  let v = Sim.Schedule.draw loaded ~bound:9 in
  Alcotest.(check bool) "mismatched draw in caller's range" true
    (v >= 0 && v < 9);
  Alcotest.(check int) "mismatch counted" 1 (Sim.Schedule.replay_extra loaded);
  ignore (Sim.Schedule.draw loaded ~bound:8);
  Alcotest.(check int) "stream stays abandoned after a mismatch" 2
    (Sim.Schedule.replay_extra loaded);
  Alcotest.(check bool) "abandoned draws reported as leftover" true
    (Sim.Schedule.replay_leftover loaded > 0)

(* The service wake-token protocol cannot lose a wakeup.  Audit of the
   three windows: (1) a wake during the daemon's work phase finds it
   unparked and leaves a token ([wakes_pending]) the loop consumes
   before parking; (2) the stretch between the last [work () = false]
   check and the park is yield-free under the DES, so no wake can land
   "between" them; (3) [stop] wakes the daemon and the loop keeps
   running work units until dry before honoring [stopping].  This
   deterministic two-fiber program pins all three, including a wake at
   the same simulated instant as the park decision. *)
let test_service_no_lost_wakeup () =
  let sim = Sim.create () in
  let pending = ref 0 in
  let processed = ref 0 in
  let svc =
    Sim.Service.spawn sim ~work:(fun () ->
        if !pending > 0 then begin
          decr pending;
          incr processed;
          true
        end
        else false)
  in
  Sim.spawn sim (fun () ->
      (* t=0: the daemon, spawned first, has already run work() = false
         and parked within this same instant — a wake racing the park
         decision at t=0 must not be lost *)
      pending := 1;
      Sim.Service.wake svc;
      Sim.delay sim 50;
      (* parked again; first wake unparks it, the second lands before
         the daemon runs and must persist as a token *)
      pending := 2;
      Sim.Service.wake svc;
      Sim.Service.wake svc;
      Sim.delay sim 50;
      (* leftover work enqueued with no wake at all: stop must drain
         it before the daemon exits *)
      incr pending;
      Sim.Service.stop svc);
  Sim.run sim;
  Alcotest.(check int) "no queued item stranded" 0 !pending;
  Alcotest.(check int) "every item processed exactly once" 4 !processed;
  Alcotest.(check bool) "daemon exited" true (Sim.Service.stopped svc)

let prop_delays_accumulate =
  QCheck.Test.make ~name:"sum of delays equals final clock" ~count:100
    QCheck.(list (int_bound 1000))
    (fun delays ->
      let sim = Sim.create () in
      Sim.spawn sim (fun () -> List.iter (Sim.delay sim) delays);
      Sim.run sim;
      Sim.now sim = List.fold_left ( + ) 0 delays)

let () =
  Alcotest.run "sim"
    [
      ( "scheduling",
        [
          Alcotest.test_case "delay ordering" `Quick test_delay_ordering;
          Alcotest.test_case "same-time FIFO" `Quick test_same_time_fifo;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "spawn from process" `Quick
            test_spawn_from_process;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "mutex",
        [
          Alcotest.test_case "serializes" `Quick test_mutex_serializes;
          Alcotest.test_case "FIFO handoff" `Quick test_mutex_fifo_handoff;
          Alcotest.test_case "try_lock" `Quick test_try_lock;
          Alcotest.test_case "deadlock detection" `Quick
            test_deadlock_detection;
        ] );
      ( "cond",
        [
          Alcotest.test_case "group commit pattern" `Quick
            test_cond_group_commit_pattern;
        ] );
      ( "service",
        [
          Alcotest.test_case "no lost wakeup" `Quick
            test_service_no_lost_wakeup;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "explicit fifo identical" `Quick
            test_fifo_schedule_identical;
          Alcotest.test_case "shuffle permutes deterministically" `Quick
            test_shuffle_permutes;
          Alcotest.test_case "priority permutes deterministically" `Quick
            test_priority_permutes;
          Alcotest.test_case "save/load/replay round trip" `Quick
            test_schedule_replay_roundtrip;
          Alcotest.test_case "replay outliving trace falls back" `Quick
            test_replay_outliving_trace_falls_back;
          Alcotest.test_case "draw bound mismatch falls back" `Quick
            test_draw_bound_mismatch_falls_back;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_delays_accumulate ]);
    ]
