(* Tests for the serving front-end: the log-full wake regression (a
   stalled producer must wake its parked drainer, and must never wait
   on one indefinitely), the admission policy's decision table, the
   open-loop arrival generators, and end-to-end serve smoke runs. *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_tmpdir f =
  let dir = Filename.temp_file "mnemoserve" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

let stack ?(seed = 3) dir =
  let m = Scm.Env.make_machine ~seed ~nframes:4096 () in
  let backing = Region.Backing_store.open_dir dir in
  let pmem = Region.Pmem.open_instance m backing in
  (m, pmem)

let sim_env sim (m : Scm.Env.machine) =
  Scm.Env.view m
    ~delay:(fun ns -> Sim.delay sim ns)
    ~now:(fun () -> Sim.now sim)

let data_region pmem bytes =
  let v = Region.Pmem.default_view pmem in
  let slot = Region.Pstatic.get v "test.data" 8 in
  match Int64.to_int (Region.Pmem.load v slot) with
  | 0 ->
      let base = Region.Pmem.pmap v bytes in
      Region.Pmem.wtstore v slot (Int64.of_int base);
      Region.Pmem.fence v;
      base
  | base -> base

(* ------------------------------------------------------------------ *)
(* The log-full wake regression (ISSUE 9, satellite 1)                 *)

(* A small pipelined pool whose window never backpressures: the only
   thing that can drain the log is the drainer daemon (or the stall
   path itself). *)
let stall_cfg =
  {
    Mtm.Txn.default_config with
    nthreads = 1;
    log_cap_words = 128;
    pipeline = true;
    pipe_window = 1024;
  }

(* A producer that fills the log while its drainer is parked, then
   commits once more.  The append finds the log full with every prior
   record still pending — historically it drained them inline, inside
   the producer, while the daemon that owns that work stayed parked.
   The fix wakes the daemon from the stall path, so the backlog must be
   retired by a daemon sweep that sees the whole backlog, not by the
   producer.  The wake hook and the sweep snapshot pin exactly that. *)
let test_stall_wakes_parked_drainer () =
  with_tmpdir (fun dir ->
      let m, pmem = stack dir in
      let pool = Mtm.Txn.create_pool ~config:stall_cfg pmem None in
      let data = data_region pmem 4096 in
      let sim = Sim.create () in
      let enabled = ref false in
      let sweeps = ref 0 in
      let max_pending_at_sweep = ref 0 in
      let wakes = ref 0 in
      let wakes_before_stall = ref 0 in
      let backlog = ref 0 in
      Sim.spawn sim (fun () ->
          let env = sim_env sim m in
          let th = Mtm.Txn.thread pool 0 env in
          let dview = Region.Pmem.view (Mtm.Txn.pmem pool) (sim_env sim m) in
          let svc =
            Sim.Service.spawn sim ~work:(fun () ->
                if not !enabled then false
                else begin
                  let pending = Mtm.Txn.pending_truncations th in
                  if pending > !max_pending_at_sweep then
                    max_pending_at_sweep := pending;
                  let did = Mtm.Txn.drain_pipeline pool dview in
                  if did then incr sweeps;
                  did
                end)
          in
          Mtm.Txn.set_drain_wake pool
            (Some
               (fun _tid ->
                 incr wakes;
                 Sim.Service.wake svc));
          let commit v = Mtm.Txn.run th (fun tx -> Mtm.Txn.store tx data v) in
          (* phase A: fill the log with the daemon gated off.  Every
             push wakes it, but its work function refuses, so it parks
             again with the backlog intact.  One commit first to learn
             the per-record footprint, then stop exactly when the next
             record no longer fits. *)
          commit 1L;
          incr backlog;
          let span, cap =
            let used, cap = Mtm.Txn.log_occupancy th in
            (used, cap)
          in
          while
            (let used, _ = Mtm.Txn.log_occupancy th in
             cap - 1 - used >= span)
          do
            commit 2L;
            incr backlog
          done;
          Alcotest.(check int) "no stall while filling" 0
            (Mtm.Txn.stats pool).Mtm.Txn.log_full_stalls;
          Alcotest.(check int) "backlog all pending" !backlog
            (Mtm.Txn.pending_truncations th);
          (* let the daemon consume any leftover wake token and park *)
          Sim.delay sim 1_000;
          Alcotest.(check int) "daemon never swept while gated" 0 !sweeps;
          (* phase B: arm the daemon — parked, no token — and commit.
             The append must hit Full and resolve via a daemon sweep. *)
          enabled := true;
          wakes_before_stall := !wakes;
          commit 99L;
          Sim.Service.stop svc);
      Sim.run sim;
      Alcotest.(check int) "the commit stalled" 1
        (Mtm.Txn.stats pool).Mtm.Txn.log_full_stalls;
      (* the stall path woke the daemon itself: one wake during the
         stall plus the commit's own push wake *)
      Alcotest.(check bool) "stall path woke the drainer" true
        (!wakes - !wakes_before_stall >= 2);
      Alcotest.(check bool) "daemon swept" true (!sweeps >= 1);
      (* the discriminating observation: the daemon's sweep saw the
         whole backlog.  Inline self-draining (the old behavior) would
         leave the daemon only ever seeing the post-stall record. *)
      Alcotest.(check bool)
        (Printf.sprintf "daemon drained the backlog (saw %d of %d)"
           !max_pending_at_sweep !backlog)
        true
        (!max_pending_at_sweep >= !backlog);
      Alcotest.(check int64) "stalled commit completed" 99L
        (Region.Pmem.load (Region.Pmem.default_view pmem) data))

(* The other half of the liveness bound: when the wake goes nowhere —
   a dead or wrong-shard drainer that will never sweep — the producer
   must fall back to draining inline after a bounded wait rather than
   wedging forever.  The poll budget is 4096 * 60 ns; anything in that
   order plus the inline drain is fine, an unbounded wait is not. *)
let test_stall_bounded_without_drainer () =
  with_tmpdir (fun dir ->
      let m, pmem = stack dir in
      let pool = Mtm.Txn.create_pool ~config:stall_cfg pmem None in
      let data = data_region pmem 4096 in
      let sim = Sim.create () in
      let stall_ns = ref 0 in
      Sim.spawn sim (fun () ->
          let env = sim_env sim m in
          let th = Mtm.Txn.thread pool 0 env in
          (* a waker that drops every wake on the floor *)
          Mtm.Txn.set_drain_wake pool (Some (fun _tid -> ()));
          let commit v = Mtm.Txn.run th (fun tx -> Mtm.Txn.store tx data v) in
          commit 1L;
          let span, cap =
            let used, cap = Mtm.Txn.log_occupancy th in
            (used, cap)
          in
          while
            (let used, _ = Mtm.Txn.log_occupancy th in
             cap - 1 - used >= span)
          do
            commit 2L
          done;
          let t0 = Sim.now sim in
          commit 99L;
          stall_ns := Sim.now sim - t0);
      Sim.run sim;
      Alcotest.(check int) "the commit stalled" 1
        (Mtm.Txn.stats pool).Mtm.Txn.log_full_stalls;
      Alcotest.(check int64) "stalled commit still completed" 99L
        (Region.Pmem.load (Region.Pmem.default_view pmem) data);
      if !stall_ns > 2_000_000 then
        Alcotest.failf "stalled commit took %d ns: fallback not bounded"
          !stall_ns)

(* ------------------------------------------------------------------ *)
(* Admission policy                                                    *)

let test_admission_legacy_admits_everything () =
  let a = Serve.Admission.make Serve.Admission.legacy in
  for q = 0 to 10_000 do
    match Serve.Admission.admit_enqueue a ~queue_len:q with
    | Error _ -> Alcotest.failf "legacy shed at queue_len %d" q
    | Ok () -> ()
  done;
  (match Serve.Admission.admit_dispatch a ~used:100 ~cap:100 with
  | Error _ -> Alcotest.fail "legacy shed a full log"
  | Ok () -> ());
  Alcotest.(check bool) "legacy never boosts" false
    (Serve.Admission.should_boost a ~used:100 ~cap:100);
  Alcotest.(check int) "nothing shed" 0 (Serve.Admission.shed a)

let test_admission_queue_cap () =
  let a =
    Serve.Admission.make
      { Serve.Admission.queue_cap = 4; log_high_pct = 0; boost_pct = 0 }
  in
  let ok = ref 0 and shed = ref 0 in
  for q = 0 to 7 do
    match Serve.Admission.admit_enqueue a ~queue_len:q with
    | Ok () -> incr ok
    | Error r ->
        Alcotest.(check string) "reason" "queue_full"
          (Serve.Admission.reason_name r);
        incr shed
  done;
  Alcotest.(check int) "admitted below the cap" 4 !ok;
  Alcotest.(check int) "shed at and above the cap" 4 !shed;
  Alcotest.(check int) "counted" 4 (Serve.Admission.shed_queue a);
  Alcotest.(check int) "admitted counted" 4 (Serve.Admission.admitted a)

let test_admission_log_gate_and_boost () =
  let a =
    Serve.Admission.make
      { Serve.Admission.queue_cap = 0; log_high_pct = 85; boost_pct = 60 }
  in
  let cap = 200 in
  let dispatch used =
    Result.is_ok (Serve.Admission.admit_dispatch a ~used ~cap)
  in
  Alcotest.(check bool) "idle log admits" true (dispatch 0);
  Alcotest.(check bool) "just below the gate admits" true (dispatch 169);
  Alcotest.(check bool) "at the gate sheds" false (dispatch 170);
  Alcotest.(check bool) "full sheds" false (dispatch cap);
  Alcotest.(check int) "log sheds counted" 2 (Serve.Admission.shed_log a);
  Alcotest.(check bool) "below the boost band" false
    (Serve.Admission.should_boost a ~used:119 ~cap);
  Alcotest.(check bool) "inside the boost band" true
    (Serve.Admission.should_boost a ~used:120 ~cap);
  Alcotest.(check bool) "boost does not count as shed" true
    (Serve.Admission.shed a = 2)

let test_admission_validation () =
  let bad cfg =
    match Serve.Admission.make cfg with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "invalid config accepted"
  in
  bad { Serve.Admission.queue_cap = -1; log_high_pct = 0; boost_pct = 0 };
  bad { Serve.Admission.queue_cap = 0; log_high_pct = 101; boost_pct = 0 };
  bad { Serve.Admission.queue_cap = 0; log_high_pct = 0; boost_pct = -3 }

(* ------------------------------------------------------------------ *)
(* Open-loop arrival generators                                        *)

let test_arrival_deterministic () =
  let gaps kind =
    let a = Sim.Arrival.make ~seed:5 kind in
    List.init 200 (fun _ -> Sim.Arrival.next_gap_ns a)
  in
  let mmpp =
    Sim.Arrival.Mmpp
      {
        Sim.Arrival.on_rate_per_s = 1_000_000.0;
        off_rate_per_s = 10_000.0;
        mean_on_ns = 50_000.0;
        mean_off_ns = 50_000.0;
      }
  in
  Alcotest.(check (list int)) "poisson replays"
    (gaps (Sim.Arrival.Poisson 500_000.0))
    (gaps (Sim.Arrival.Poisson 500_000.0));
  Alcotest.(check (list int)) "mmpp replays" (gaps mmpp) (gaps mmpp);
  (* a different seed draws a different stream *)
  let a = Sim.Arrival.make ~seed:6 (Sim.Arrival.Poisson 500_000.0) in
  let other = List.init 200 (fun _ -> Sim.Arrival.next_gap_ns a) in
  Alcotest.(check bool) "seed matters" false
    (other = gaps (Sim.Arrival.Poisson 500_000.0))

let test_arrival_poisson_rate () =
  let rate = 1_000_000.0 in
  let a = Sim.Arrival.make ~seed:9 (Sim.Arrival.Poisson rate) in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    let g = Sim.Arrival.next_gap_ns a in
    if g < 1 then Alcotest.fail "gap below 1 ns";
    sum := !sum + g
  done;
  let mean = float_of_int !sum /. float_of_int n in
  let want = 1e9 /. rate in
  if Float.abs (mean -. want) > 0.05 *. want then
    Alcotest.failf "poisson mean gap %.1f ns, want %.1f +- 5%%" mean want

let test_arrival_mmpp_modulates () =
  (* a 100:1 rate ratio with equal sojourns: the time-average gap must
     sit strictly between the pure-on and pure-off means *)
  let on_rate = 1_000_000.0 and off_rate = 10_000.0 in
  let a =
    Sim.Arrival.make ~seed:4
      (Sim.Arrival.Mmpp
         {
           Sim.Arrival.on_rate_per_s = on_rate;
           off_rate_per_s = off_rate;
           mean_on_ns = 200_000.0;
           mean_off_ns = 200_000.0;
         })
  in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Sim.Arrival.next_gap_ns a
  done;
  let mean = float_of_int !sum /. float_of_int n in
  let on_gap = 1e9 /. on_rate and off_gap = 1e9 /. off_rate in
  if mean <= on_gap *. 1.2 || mean >= off_gap *. 0.8 then
    Alcotest.failf "mmpp mean gap %.1f not between %.1f and %.1f" mean on_gap
      off_gap

let test_arrival_validation () =
  (match Sim.Arrival.make ~seed:1 (Sim.Arrival.Poisson 0.0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero-rate poisson accepted");
  match
    Sim.Arrival.make ~seed:1
      (Sim.Arrival.Mmpp
         {
           Sim.Arrival.on_rate_per_s = 1000.0;
           off_rate_per_s = -1.0;
           mean_on_ns = 10.0;
           mean_off_ns = 10.0;
         })
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative-rate mmpp accepted"

(* ------------------------------------------------------------------ *)
(* End-to-end serving smoke                                            *)

let smoke_cfg =
  {
    Serve.default_config with
    tenants = 2;
    workers = 2;
    users = 1_000;
    duration_ns = 300_000;
    arrival = Sim.Arrival.Poisson 150_000.0;
    log_cap_words = 2048;
    seed = 11;
  }

let run_smoke cfg =
  with_tmpdir (fun dir -> Serve.run ~dir cfg)

let test_serve_accounting_identity () =
  let st = run_smoke smoke_cfg in
  Alcotest.(check bool) "requests arrived" true (st.Serve.offered > 0);
  Alcotest.(check bool) "requests completed" true (st.Serve.completed > 0);
  (* every offered request is exactly one of: completed, shed at the
     queue, shed at dispatch — nothing is lost or double-counted *)
  Alcotest.(check int) "offered = completed + shed" st.Serve.offered
    (st.Serve.completed + st.Serve.shed_queue + st.Serve.shed_log);
  Alcotest.(check int) "per-tenant completions add up" st.Serve.completed
    (Array.fold_left ( + ) 0 st.Serve.tenant_completed);
  Alcotest.(check bool) "window covers the arrival horizon" true
    (st.Serve.window_ns >= smoke_cfg.Serve.duration_ns)

let test_serve_legacy_sheds_nothing () =
  let st =
    run_smoke { smoke_cfg with Serve.admission = Serve.Admission.legacy }
  in
  Alcotest.(check int) "no queue sheds" 0 st.Serve.shed_queue;
  Alcotest.(check int) "no log sheds" 0 st.Serve.shed_log;
  Alcotest.(check int) "legacy completes everything" st.Serve.offered
    st.Serve.completed

let test_serve_deterministic () =
  let a = run_smoke smoke_cfg in
  let b = run_smoke smoke_cfg in
  Alcotest.(check int) "offered" a.Serve.offered b.Serve.offered;
  Alcotest.(check int) "completed" a.Serve.completed b.Serve.completed;
  Alcotest.(check int) "slo_ok" a.Serve.slo_ok b.Serve.slo_ok;
  Alcotest.(check int) "shed_queue" a.Serve.shed_queue b.Serve.shed_queue;
  Alcotest.(check int) "shed_log" a.Serve.shed_log b.Serve.shed_log;
  Alcotest.(check int) "window" a.Serve.window_ns b.Serve.window_ns;
  Alcotest.(check (float 0.0)) "p999" a.Serve.p999_us b.Serve.p999_us

let () =
  Alcotest.run "serve"
    [
      ( "log-full wake",
        [
          Alcotest.test_case "stall wakes parked drainer" `Quick
            test_stall_wakes_parked_drainer;
          Alcotest.test_case "stall bounded without drainer" `Quick
            test_stall_bounded_without_drainer;
        ] );
      ( "admission",
        [
          Alcotest.test_case "legacy admits everything" `Quick
            test_admission_legacy_admits_everything;
          Alcotest.test_case "queue cap" `Quick test_admission_queue_cap;
          Alcotest.test_case "log gate and boost band" `Quick
            test_admission_log_gate_and_boost;
          Alcotest.test_case "validation" `Quick test_admission_validation;
        ] );
      ( "arrival",
        [
          Alcotest.test_case "deterministic" `Quick test_arrival_deterministic;
          Alcotest.test_case "poisson rate" `Quick test_arrival_poisson_rate;
          Alcotest.test_case "mmpp modulates" `Quick
            test_arrival_mmpp_modulates;
          Alcotest.test_case "validation" `Quick test_arrival_validation;
        ] );
      ( "serving",
        [
          Alcotest.test_case "accounting identity" `Quick
            test_serve_accounting_identity;
          Alcotest.test_case "legacy sheds nothing" `Quick
            test_serve_legacy_sheds_nothing;
          Alcotest.test_case "deterministic" `Quick test_serve_deterministic;
        ] );
    ]
