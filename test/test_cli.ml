(* CLI tests for regionctl: each subcommand parses its own fresh
   arguments, so a flag given to one subcommand can neither leak into
   nor be required by another — `stats --json` emits JSON while `fsck`
   without the flag stays text, and vice versa. *)

let with_tmpdir f =
  let dir = Filename.temp_file "mnemocli" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun n -> rm (Filename.concat p n)) (Sys.readdir p);
          Sys.rmdir p
        end
        else Sys.remove p
      in
      if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

(* cwd is _build/default/test under `dune runtest`, the project root
   under `dune exec` *)
let exe =
  if Sys.file_exists "../bin/regionctl.exe" then "../bin/regionctl.exe"
  else "_build/default/bin/regionctl.exe"

let run_cli args =
  let out = Filename.temp_file "regionctl" ".out" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>&1" (Filename.quote exe)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let ic = open_in_bin out in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (code, String.trim s)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* A small but real instance: one committed transaction so the stats
   report has log usage and fsck has a heap and a pstatic to walk. *)
let make_instance dir =
  let inst = Mnemosyne.open_instance ~dir () in
  let slot = Mnemosyne.pstatic inst "cli.obj" 8 in
  Mnemosyne.atomically inst (fun tx ->
      let addr = Mtm.Txn.alloc tx 64 ~slot in
      Mtm.Txn.store tx addr 42L);
  Mnemosyne.close inst

let test_json_flag_is_per_subcommand () =
  with_tmpdir (fun dir ->
      make_instance dir;
      (* stats --json: a JSON object with the occupancy keys *)
      let code, out = run_cli [ "stats"; dir; "--json" ] in
      Alcotest.(check int) "stats --json exits 0" 0 code;
      Alcotest.(check bool) "stats --json is JSON" true (starts_with "{" out);
      Alcotest.(check bool) "stats --json has frames" true
        (contains "\"frames\"" out);
      (* fsck without the flag, right after: text, not JSON — the flag
         must not persist across dispatch *)
      let code, out = run_cli [ "fsck"; dir ] in
      Alcotest.(check int) "fsck (clean image) exits 0" 0 code;
      Alcotest.(check bool) "fsck default is text" true
        (starts_with "pmfsck:" out);
      (* and the mirror image: fsck --json then plain stats *)
      let code, out = run_cli [ "fsck"; dir; "--json" ] in
      Alcotest.(check int) "fsck --json exits 0" 0 code;
      Alcotest.(check bool) "fsck --json is JSON" true
        (starts_with "{\"findings\"" out);
      let code, out = run_cli [ "stats"; dir ] in
      Alcotest.(check int) "stats exits 0" 0 code;
      Alcotest.(check bool) "stats default is text" true
        (contains "Mnemosyne instance" out && not (starts_with "{" out)))

let test_default_command_back_compat () =
  with_tmpdir (fun dir ->
      make_instance dir;
      (* `regionctl DIR` with no subcommand still runs the inspection *)
      let code, out = run_cli [ dir ] in
      Alcotest.(check int) "bare dir exits 0" 0 code;
      Alcotest.(check bool) "inspection ran" true
        (contains "Mnemosyne instance" out && contains "pstatic" out))

let test_missing_instance_fails () =
  let code, out = run_cli [ "stats"; "/nonexistent/mnemo" ] in
  Alcotest.(check bool) "missing dir is an error" true (code <> 0);
  Alcotest.(check bool) "error names the path" true
    (contains "/nonexistent/mnemo" out)

let () =
  Alcotest.run "cli"
    [
      ( "regionctl",
        [
          Alcotest.test_case "json flag is per-subcommand" `Quick
            test_json_flag_is_per_subcommand;
          Alcotest.test_case "default command back-compat" `Quick
            test_default_command_back_compat;
          Alcotest.test_case "missing instance fails" `Quick
            test_missing_instance_fails;
        ] );
    ]
