(* End-to-end schedule-exploration tests: the sched_explore harness
   over a real Mnemosyne instance — record/replay fidelity through
   aborts and backoff, the committed regression traces, and a bounded
   fuzz sweep as a serializability regression net. *)

module H = Explore.Sched_harness
module Hist = Mtm.History

let with_tmpdir f =
  let dir = Filename.temp_file "mnemosched" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun n -> rm (Filename.concat p n)) (Sys.readdir p);
          Sys.rmdir p
        end
        else Sys.remove p
      in
      if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

let check_serializable name (o : H.outcome) =
  Alcotest.(check (list string)) (name ^ ": serializable") [] o.H.violations

(* ------------------------------------------------------------------ *)
(* Record -> save -> load -> replay fidelity *)

(* A seed/shape with real contention so the run exercises aborts and
   schedule-routed backoff draws, the hard part of bit-exact replay. *)
let contended ~dir policy =
  { (H.default_cfg ~dir) with H.policy; seed = 11; nslots = 4; zero_lat = true }

let events_digest (o : H.outcome) =
  List.map
    (function
      | Hist.Commit c ->
          Printf.sprintf "C%d@%d[%d/%d]" c.Hist.tid c.Hist.cts
            (Array.length c.Hist.reads)
            (Array.length c.Hist.writes)
      | Hist.Abort { tid; attempt } -> Printf.sprintf "A%d#%d" tid attempt)
    (Hist.events o.H.history)

let test_replay_roundtrip_with_aborts () =
  with_tmpdir (fun dir ->
      let cfg = contended ~dir Sim.Schedule.Seeded_shuffle in
      let o = H.run cfg in
      Alcotest.(check bool) "workload aborted at least once" true
        (o.H.aborts > 0);
      let path = Filename.concat dir "roundtrip.trace" in
      H.save_schedule o cfg path;
      let sched =
        match Sim.Schedule.load path with
        | Ok s -> s
        | Error e -> Alcotest.fail e
      in
      let cfg' = H.cfg_of_schedule ~dir sched in
      Alcotest.(check bool) "trace header reconstructs the cfg" true
        (cfg'.H.threads = cfg.H.threads
        && cfg'.H.txns = cfg.H.txns
        && cfg'.H.nslots = cfg.H.nslots
        && cfg'.H.zero_lat = cfg.H.zero_lat
        && cfg'.H.seed = cfg.H.seed);
      let r = H.run ~schedule:sched cfg' in
      Alcotest.(check int) "no leftover decisions" 0 r.H.replay_leftover;
      Alcotest.(check int) "no invented decisions" 0 r.H.replay_extra;
      Alcotest.(check int) "same simulated end time" o.H.sim_ns r.H.sim_ns;
      Alcotest.(check int) "same commits" o.H.commits r.H.commits;
      Alcotest.(check int) "same aborts" o.H.aborts r.H.aborts;
      Alcotest.(check (list string))
        "same history, event for event" (events_digest o) (events_digest r);
      check_serializable "replay" r)

(* ------------------------------------------------------------------ *)
(* Committed regression traces: schedules that broke pre-fix code *)

(* The validate-before-cts race (Txn.commit_redo/commit_undo): found by
   sched_explore under --zero-lat, fixed by re-validating after
   Timestamp.next.  Replaying the pre-fix trace against fixed code
   legitimately diverges once the fix aborts the victim transaction —
   what must hold is that the schedule no longer produces a
   serializability violation.

   The group-commit-attach and lease-crosslog traces exercise the
   scalable-commit configuration (timestamp leases, striped lock table,
   group commit) under the durability sanitizer: the first tripped the
   abandoned-deferred-truncation bug (a second handle attaching to a
   log slot advanced the head over a prior handle's never-flushed
   records), the second the cross-log coverage false positive in the
   sanitizer's truncation rule at a lease-refill boundary.  Their
   headers carry lease/stripes/group_commit/pmcheck, so the replay
   re-runs the scalable configuration sanitized. *)
let test_regression_traces () =
  (* cwd is test/ under [dune runtest], the project root under
     [dune exec] *)
  let dir =
    if Sys.file_exists "schedules" then "schedules" else "test/schedules"
  in
  let traces =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".trace")
    |> List.sort compare
  in
  Alcotest.(check bool) "regression traces present" true (traces <> []);
  List.iter
    (fun file ->
      let sched =
        match Sim.Schedule.load (Filename.concat dir file) with
        | Ok s -> s
        | Error e -> Alcotest.fail e
      in
      with_tmpdir (fun tmp ->
          let cfg = H.cfg_of_schedule ~dir:tmp sched in
          let o = H.run ~schedule:sched cfg in
          check_serializable file o))
    traces

(* ------------------------------------------------------------------ *)
(* Bounded fuzz: a serializability regression net in the test suite *)

let fuzz name cfgs =
  List.iter
    (fun (cfg, tag) ->
      let o = H.run cfg in
      Alcotest.(check bool)
        (Printf.sprintf "%s %s: committed work" name tag)
        true (o.H.commits > 0);
      check_serializable (Printf.sprintf "%s %s" name tag) o)
    cfgs

let test_fuzz_default_latency () =
  with_tmpdir (fun dir ->
      let base = H.default_cfg ~dir in
      fuzz "default-lat"
        (List.concat_map
           (fun policy ->
             List.map
               (fun seed ->
                 ( { base with H.policy; seed },
                   Printf.sprintf "%s/%d" (Sim.Schedule.policy_name policy)
                     seed ))
               [ 0; 1; 2; 3 ])
           [ Sim.Schedule.Fifo; Sim.Schedule.Seeded_shuffle;
             Sim.Schedule.Priority ]))

let test_fuzz_zero_latency () =
  (* The adversarial mode the validate-before-cts race needed; keep it
     exercised so a reintroduction trips here even if the exact
     regression trace drifts. *)
  with_tmpdir (fun dir ->
      let base =
        { (H.default_cfg ~dir) with H.zero_lat = true; nslots = 8 }
      in
      fuzz "zero-lat"
        (List.concat_map
           (fun policy ->
             List.map
               (fun seed ->
                 ( { base with H.policy; seed },
                   Printf.sprintf "%s/%d" (Sim.Schedule.policy_name policy)
                     seed ))
               [ 0; 1; 2; 3; 4; 5 ])
           [ Sim.Schedule.Seeded_shuffle; Sim.Schedule.Priority ]))

let test_fuzz_scalable_commit () =
  (* Leases, striped locks and group commit together, sanitized: the
     configuration where a lease-refill or drain-window interleaving
     can reorder the commit pipeline. *)
  with_tmpdir (fun dir ->
      let base =
        {
          (H.default_cfg ~dir) with
          H.zero_lat = true;
          nslots = 8;
          lease = 3;
          stripes = 4;
          group_commit = true;
          pmcheck = true;
        }
      in
      fuzz "scalable"
        (List.concat_map
           (fun policy ->
             List.map
               (fun seed ->
                 ( { base with H.policy; seed },
                   Printf.sprintf "%s/%d" (Sim.Schedule.policy_name policy)
                     seed ))
               [ 0; 1; 2 ])
           [ Sim.Schedule.Fifo; Sim.Schedule.Seeded_shuffle;
             Sim.Schedule.Priority ]))

let test_fuzz_pipelined_commit () =
  (* The pipelined commit on top of the full scalable stack, sanitized:
     locks release at the durability fence, so the fuzz drives readers
     into the release-to-write-back window while the drainer daemon's
     sweeps interleave with producers — plus the wait-die contention
     manager's wait/abort decisions under adversarial ties. *)
  with_tmpdir (fun dir ->
      let base =
        {
          (H.default_cfg ~dir) with
          H.zero_lat = true;
          nslots = 8;
          lease = 3;
          stripes = 4;
          group_commit = true;
          pipeline = true;
          cm_adaptive = true;
          pmcheck = true;
          race = true;
        }
      in
      fuzz "pipeline"
        (List.concat_map
           (fun policy ->
             List.map
               (fun seed ->
                 ( { base with H.policy; seed },
                   Printf.sprintf "%s/%d" (Sim.Schedule.policy_name policy)
                     seed ))
               [ 0; 1; 2 ])
           [ Sim.Schedule.Fifo; Sim.Schedule.Seeded_shuffle;
             Sim.Schedule.Priority ]))

let test_fuzz_admission () =
  (* Rejection paths under adversarial interleavings, sanitized: a
     deterministic slice of the workload is shed before any transaction
     exists, another slice stages (mangled) writes and cancels
     mid-flight — on the pipelined commit path, where write-backs of
     *committed* neighbors are in flight around every rejection.  The
     serializability check against final memory plus pmcheck prove a
     rejected request contributes nothing persistent. *)
  with_tmpdir (fun dir ->
      let base =
        {
          (H.default_cfg ~dir) with
          H.zero_lat = true;
          nslots = 8;
          lease = 3;
          stripes = 4;
          group_commit = true;
          pipeline = true;
          cm_adaptive = true;
          admission = true;
          pmcheck = true;
          race = true;
        }
      in
      fuzz "admission"
        (List.concat_map
           (fun policy ->
             List.map
               (fun seed ->
                 ( { base with H.policy; seed },
                   Printf.sprintf "%s/%d" (Sim.Schedule.policy_name policy)
                     seed ))
               [ 0; 1; 2 ])
           [ Sim.Schedule.Fifo; Sim.Schedule.Seeded_shuffle;
             Sim.Schedule.Priority ]))

(* ------------------------------------------------------------------ *)
(* Race detector wiring: armed runs stay silent, and the trace header
   re-arms the detector on replay (the --pmcheck meta pattern). *)

let test_race_armed_run_is_silent () =
  with_tmpdir (fun dir ->
      let off = { (H.default_cfg ~dir) with H.seed = 7 } in
      let o_off = H.run off in
      Alcotest.(check int) "detector off: no ops counted" 0 o_off.H.race_ops;
      let on = { off with H.race = true } in
      let o_on = H.run on in
      check_serializable "race-armed default" o_on;
      Alcotest.(check bool) "armed detector saw annotated accesses" true
        (o_on.H.race_ops > 0);
      (* the full coordination surface: pipelined drainer + wait-die +
         group commit + admission under adversarial zero-lat ties *)
      let full =
        {
          on with
          H.zero_lat = true;
          nslots = 8;
          lease = 3;
          stripes = 4;
          group_commit = true;
          pipeline = true;
          cm_adaptive = true;
          admission = true;
        }
      in
      let o_full = H.run full in
      check_serializable "race-armed full stack" o_full;
      Alcotest.(check bool) "full stack detector live" true
        (o_full.H.race_ops > 0))

let test_race_meta_roundtrip () =
  with_tmpdir (fun dir ->
      let cfg =
        { (contended ~dir Sim.Schedule.Seeded_shuffle) with H.race = true }
      in
      let o = H.run cfg in
      let path = Filename.concat dir "race-armed.trace" in
      H.save_schedule o cfg path;
      let sched =
        match Sim.Schedule.load path with
        | Ok s -> s
        | Error e -> Alcotest.fail e
      in
      let cfg' = H.cfg_of_schedule ~dir sched in
      Alcotest.(check bool) "trace header re-arms the detector" true
        cfg'.H.race;
      let r = H.run ~schedule:sched cfg' in
      Alcotest.(check int) "replay re-ran armed" o.H.race_ops r.H.race_ops;
      Alcotest.(check int) "bit-exact: no leftover" 0 r.H.replay_leftover;
      Alcotest.(check int) "bit-exact: no invented" 0 r.H.replay_extra;
      check_serializable "armed replay" r;
      (* a header without the key (older trace) leaves the detector off *)
      let plain = contended ~dir Sim.Schedule.Seeded_shuffle in
      let o2 = H.run plain in
      let path2 = Filename.concat dir "plain.trace" in
      H.save_schedule o2 plain path2;
      match Sim.Schedule.load path2 with
      | Error e -> Alcotest.fail e
      | Ok s2 ->
          Alcotest.(check bool) "unarmed trace stays unarmed" false
            (H.cfg_of_schedule ~dir s2).H.race)

let test_fuzz_undo_mode () =
  with_tmpdir (fun dir ->
      let base =
        {
          (H.default_cfg ~dir) with
          H.undo = true;
          zero_lat = true;
          nslots = 8;
        }
      in
      fuzz "undo"
        (List.map
           (fun seed ->
             ( { base with H.seed = seed },
               Printf.sprintf "shuffle/%d" seed ))
           [ 0; 1; 2; 3 ]))

let () =
  Alcotest.run "sched"
    [
      ( "replay",
        [
          Alcotest.test_case "round trip through aborts" `Quick
            test_replay_roundtrip_with_aborts;
          Alcotest.test_case "regression traces stay serializable" `Quick
            test_regression_traces;
          Alcotest.test_case "race meta re-arms on replay" `Quick
            test_race_meta_roundtrip;
        ] );
      ( "race",
        [
          Alcotest.test_case "armed runs stay silent" `Quick
            test_race_armed_run_is_silent;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "default latency, all policies" `Slow
            test_fuzz_default_latency;
          Alcotest.test_case "zero latency, adversarial" `Slow
            test_fuzz_zero_latency;
          Alcotest.test_case "scalable commit, sanitized" `Slow
            test_fuzz_scalable_commit;
          Alcotest.test_case "pipelined commit, sanitized" `Slow
            test_fuzz_pipelined_commit;
          Alcotest.test_case "admission rejections, sanitized" `Slow
            test_fuzz_admission;
          Alcotest.test_case "eager undo" `Slow test_fuzz_undo_mode;
        ] );
    ]
