(* Tests for durable memory transactions: atomicity, durability,
   isolation under the simulator, transactional allocation, recovery
   ordering across per-thread logs, and async truncation. *)

let with_tmpdir f =
  let dir = Filename.temp_file "mnemomtm" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun name -> Sys.remove (Filename.concat dir name))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let small_cfg =
  { Mtm.Txn.default_config with nthreads = 4; log_cap_words = 4096 }

let stack ?(nframes = 4096) ?(seed = 3) dir =
  let m = Scm.Env.make_machine ~seed ~nframes () in
  let backing = Region.Backing_store.open_dir dir in
  let pmem = Region.Pmem.open_instance m backing in
  (m, pmem)

let reboot (m : Scm.Env.machine) dir =
  let m' = Scm.Env.machine_of_device m.dev in
  let backing = Region.Backing_store.open_dir dir in
  let pmem = Region.Pmem.open_instance m' backing in
  (m', pmem)

let heap_of pmem =
  let v = Region.Pmem.default_view pmem in
  let slot = Region.Pstatic.get v "test.heap" 8 in
  match Int64.to_int (Region.Pmem.load v slot) with
  | 0 ->
      let bytes = Pmheap.Heap.region_bytes_for ~superblocks:16 ~large_bytes:65536 in
      let base = Region.Pmem.pmap v bytes in
      Region.Pmem.wtstore v slot (Int64.of_int base);
      Region.Pmem.fence v;
      Pmheap.Heap.create v ~base ~superblocks:16 ~large_bytes:65536
  | base -> Pmheap.Heap.attach v ~base

let pool_of ?(config = small_cfg) pmem =
  Mtm.Txn.create_pool ~config pmem (Some (heap_of pmem))

let data_region pmem bytes =
  let v = Region.Pmem.default_view pmem in
  let slot = Region.Pstatic.get v "test.data" 8 in
  match Int64.to_int (Region.Pmem.load v slot) with
  | 0 ->
      let base = Region.Pmem.pmap v bytes in
      Region.Pmem.wtstore v slot (Int64.of_int base);
      Region.Pmem.fence v;
      base
  | base -> base

(* ------------------------------------------------------------------ *)
(* Single-threaded basics *)

let test_commit_visible_and_durable () =
  with_tmpdir (fun dir ->
      let m, pmem = stack dir in
      let pool = pool_of pmem in
      let data = data_region pmem 4096 in
      let th = Mtm.Txn.thread pool 0 (Region.Pmem.default_view pmem).env in
      Mtm.Txn.run th (fun tx ->
          Mtm.Txn.store tx data 10L;
          Mtm.Txn.store tx (data + 8) 20L);
      let v = Region.Pmem.default_view pmem in
      Alcotest.(check int64) "visible" 10L (Region.Pmem.load v data);
      (* survive an adversarial crash: sync truncation already forced
         the data, and the log was truncated *)
      Scm.Crash.inject m;
      let _, pmem' = reboot m dir in
      let pool' = pool_of pmem' in
      Alcotest.(check int) "nothing to replay" 0
        (Mtm.Txn.recovered_txns pool');
      let v' = Region.Pmem.default_view pmem' in
      Alcotest.(check int64) "durable w0" 10L (Region.Pmem.load v' data);
      Alcotest.(check int64) "durable w1" 20L (Region.Pmem.load v' (data + 8)))

let test_user_exception_aborts () =
  with_tmpdir (fun dir ->
      let _, pmem = stack dir in
      let pool = pool_of pmem in
      let data = data_region pmem 4096 in
      let th = Mtm.Txn.thread pool 0 (Region.Pmem.default_view pmem).env in
      (try
         Mtm.Txn.run th (fun tx ->
             Mtm.Txn.store tx data 99L;
             failwith "boom")
       with Failure _ -> ());
      let v = Region.Pmem.default_view pmem in
      Alcotest.(check int64) "no effect" 0L (Region.Pmem.load v data);
      Alcotest.(check int) "one abort" 1 (Mtm.Txn.stats pool).aborts)

let test_cancel () =
  with_tmpdir (fun dir ->
      let _, pmem = stack dir in
      let pool = pool_of pmem in
      let data = data_region pmem 4096 in
      let th = Mtm.Txn.thread pool 0 (Region.Pmem.default_view pmem).env in
      (try
         Mtm.Txn.run th (fun tx ->
             Mtm.Txn.store tx data 1L;
             Mtm.Txn.cancel tx)
       with Mtm.Txn.Cancelled -> ());
      let v = Region.Pmem.default_view pmem in
      Alcotest.(check int64) "cancelled" 0L (Region.Pmem.load v data))

let test_read_your_writes_and_lazy_versioning () =
  with_tmpdir (fun dir ->
      let _, pmem = stack dir in
      let pool = pool_of pmem in
      let data = data_region pmem 4096 in
      let v = Region.Pmem.default_view pmem in
      Region.Pmem.wtstore v data 5L;
      Region.Pmem.fence v;
      let th = Mtm.Txn.thread pool 0 v.env in
      Mtm.Txn.run th (fun tx ->
          Alcotest.(check int64) "initial read" 5L (Mtm.Txn.load tx data);
          Mtm.Txn.store tx data 6L;
          Alcotest.(check int64) "read own write" 6L (Mtm.Txn.load tx data);
          (* lazy version management: memory still holds the old value *)
          Alcotest.(check int64) "memory unmodified during txn" 5L
            (Region.Pmem.load v data));
      Alcotest.(check int64) "after commit" 6L (Region.Pmem.load v data))

let test_bytes_roundtrip () =
  with_tmpdir (fun dir ->
      let _, pmem = stack dir in
      let pool = pool_of pmem in
      let data = data_region pmem 4096 in
      let th = Mtm.Txn.thread pool 0 (Region.Pmem.default_view pmem).env in
      let payload = Bytes.of_string "persistent memory is lightweight!" in
      Mtm.Txn.run th (fun tx -> Mtm.Txn.write_bytes tx data payload);
      let got =
        Mtm.Txn.run th (fun tx ->
            Mtm.Txn.read_bytes tx data (Bytes.length payload))
      in
      Alcotest.(check bytes) "roundtrip" payload got)

let test_nested_flattening () =
  with_tmpdir (fun dir ->
      let _, pmem = stack dir in
      let pool = pool_of pmem in
      let data = data_region pmem 4096 in
      let th = Mtm.Txn.thread pool 0 (Region.Pmem.default_view pmem).env in
      Mtm.Txn.run th (fun tx ->
          Mtm.Txn.store tx data 1L;
          Mtm.Txn.run th (fun tx' -> Mtm.Txn.store tx' (data + 8) 2L);
          ignore tx);
      let v = Region.Pmem.default_view pmem in
      Alcotest.(check int64) "outer" 1L (Region.Pmem.load v data);
      Alcotest.(check int64) "inner" 2L (Region.Pmem.load v (data + 8));
      Alcotest.(check int) "one commit" 1 (Mtm.Txn.stats pool).commits)

(* ------------------------------------------------------------------ *)
(* Crash recovery *)

let test_uncommitted_never_applied_committed_replayed () =
  with_tmpdir (fun dir ->
      (* Async truncation without a daemon: committed data lives only in
         the redo log (write-backs are cached and lost in the crash), so
         recovery must replay it. *)
      let m, pmem = stack dir in
      let cfg = { small_cfg with truncation = Mtm.Txn.Async } in
      let pool = pool_of ~config:cfg pmem in
      let data = data_region pmem 4096 in
      let th = Mtm.Txn.thread pool 0 (Region.Pmem.default_view pmem).env in
      Mtm.Txn.run th (fun tx ->
          Mtm.Txn.store tx data 77L;
          Mtm.Txn.store tx (data + 128) 78L);
      Alcotest.(check int) "pending truncation" 1
        (Mtm.Txn.pending_truncations th);
      Scm.Crash.inject
        ~policy:{ cache = Scm.Crash.Drop_dirty; wc = Scm.Crash.Wc_apply_all }
        m;
      let _, pmem' = reboot m dir in
      let pool' = pool_of ~config:cfg pmem' in
      Alcotest.(check int) "one txn replayed" 1 (Mtm.Txn.recovered_txns pool');
      let v' = Region.Pmem.default_view pmem' in
      Alcotest.(check int64) "replayed w0" 77L (Region.Pmem.load v' data);
      Alcotest.(check int64) "replayed w1" 78L
        (Region.Pmem.load v' (data + 128)))

let test_recovery_orders_across_threads () =
  with_tmpdir (fun dir ->
      (* Two threads write the same address in a known serial order; the
         logs are per-thread, so only the global timestamps can order
         the replay. *)
      let m, pmem = stack dir in
      let cfg = { small_cfg with truncation = Mtm.Txn.Async } in
      let pool = pool_of ~config:cfg pmem in
      let data = data_region pmem 4096 in
      let v = Region.Pmem.default_view pmem in
      let th0 = Mtm.Txn.thread pool 0 v.env in
      let th1 = Mtm.Txn.thread pool 1 v.env in
      Mtm.Txn.run th0 (fun tx -> Mtm.Txn.store tx data 1L);
      Mtm.Txn.run th1 (fun tx -> Mtm.Txn.store tx data 2L);
      Mtm.Txn.run th0 (fun tx -> Mtm.Txn.store tx data 3L);
      Scm.Crash.inject
        ~policy:{ cache = Scm.Crash.Drop_dirty; wc = Scm.Crash.Wc_apply_all }
        m;
      let _, pmem' = reboot m dir in
      let pool' = pool_of ~config:cfg pmem' in
      Alcotest.(check int) "three txns replayed" 3
        (Mtm.Txn.recovered_txns pool');
      let v' = Region.Pmem.default_view pmem' in
      Alcotest.(check int64) "timestamp order wins" 3L
        (Region.Pmem.load v' data))

let test_crash_stress_all_or_nothing () =
  (* The paper's crash stress test: transactions perform known updates;
     after a crash, every transaction's writes are either fully present
     or fully absent. *)
  let checked = ref 0 in
  for seed = 0 to 19 do
    with_tmpdir (fun dir ->
        let m, pmem = stack ~seed dir in
        let cfg = { small_cfg with truncation = Mtm.Txn.Async } in
        let pool = pool_of ~config:cfg pmem in
        let data = data_region pmem 65536 in
        let th = Mtm.Txn.thread pool 0 (Region.Pmem.default_view pmem).env in
        let ntxns = 20 in
        (* txn i owns words [i*16, i*16+8): writes 8 words, all tagged i+1 *)
        for i = 0 to ntxns - 1 do
          Mtm.Txn.run th (fun tx ->
              for j = 0 to 7 do
                Mtm.Txn.store tx
                  (data + (i * 128) + (j * 8))
                  (Int64.of_int (i + 1))
              done)
        done;
        (* crash with arbitrary subsets of log writes applied *)
        Scm.Crash.inject m;
        let _, pmem' = reboot m dir in
        let _pool' = pool_of ~config:cfg pmem' in
        let v' = Region.Pmem.default_view pmem' in
        for i = 0 to ntxns - 1 do
          let words =
            List.init 8 (fun j ->
                Region.Pmem.load v' (data + (i * 128) + (j * 8)))
          in
          let expect = Int64.of_int (i + 1) in
          let all_set = List.for_all (fun w -> w = expect) words in
          let none_set = List.for_all (fun w -> w = 0L) words in
          if not (all_set || none_set) then
            Alcotest.failf "seed %d txn %d torn: %s" seed i
              (String.concat ","
                 (List.map Int64.to_string words));
          incr checked
        done)
  done;
  Alcotest.(check int) "all txns checked" (20 * 20) !checked

(* ------------------------------------------------------------------ *)
(* Transactional allocation *)

let test_alloc_commits_with_txn () =
  with_tmpdir (fun dir ->
      let m, pmem = stack dir in
      let pool = pool_of pmem in
      let v = Region.Pmem.default_view pmem in
      let slot = Region.Pstatic.get v "obj" 8 in
      let th = Mtm.Txn.thread pool 0 v.env in
      let addr =
        Mtm.Txn.run th (fun tx ->
            let a = Mtm.Txn.alloc tx 64 ~slot in
            Mtm.Txn.store tx a 42L;
            a)
      in
      Alcotest.(check int64) "slot set" (Int64.of_int addr)
        (Region.Pmem.load v slot);
      Scm.Crash.inject m;
      let _, pmem' = reboot m dir in
      let heap' = heap_of pmem' in
      let v' = Region.Pmem.default_view pmem' in
      Alcotest.(check int64) "slot durable" (Int64.of_int addr)
        (Region.Pmem.load v' slot);
      Alcotest.(check int64) "contents durable" 42L (Region.Pmem.load v' addr);
      (* block is genuinely allocated: freeing through the slot works *)
      Pmheap.Heap.pfree heap' ~slot;
      Alcotest.(check int64) "freed" 0L (Region.Pmem.load v' slot))

let test_alloc_aborts_with_txn () =
  with_tmpdir (fun dir ->
      let m, pmem = stack dir in
      let pool = pool_of pmem in
      let v = Region.Pmem.default_view pmem in
      let slot = Region.Pstatic.get v "obj" 8 in
      let th = Mtm.Txn.thread pool 0 v.env in
      (try
         Mtm.Txn.run th (fun tx ->
             let a = Mtm.Txn.alloc tx 64 ~slot in
             Mtm.Txn.store tx a 42L;
             failwith "abort it")
       with Failure _ -> ());
      Alcotest.(check int64) "slot untouched" 0L (Region.Pmem.load v slot);
      (* no leak even across a crash: the bitmap bit was never durably
         set because it only lived in the aborted transaction *)
      Scm.Crash.inject m;
      let _, pmem' = reboot m dir in
      let heap' = heap_of pmem' in
      let v' = Region.Pmem.default_view pmem' in
      let slot' = Region.Pstatic.get v' "obj" 8 in
      (* allocating every 64-byte block must eventually succeed exactly
         as if the aborted allocation never happened; just check one
         allocation works and the heap is consistent *)
      let a = Pmheap.Heap.pmalloc heap' 64 ~slot:slot' in
      Alcotest.(check bool) "clean state" true (a > 0))

let test_free_in_txn () =
  with_tmpdir (fun dir ->
      let _, pmem = stack dir in
      let pool = pool_of pmem in
      let v = Region.Pmem.default_view pmem in
      let slot = Region.Pstatic.get v "obj" 8 in
      let th = Mtm.Txn.thread pool 0 v.env in
      ignore (Mtm.Txn.run th (fun tx -> Mtm.Txn.alloc tx 64 ~slot));
      (* free it, but abort: must stay allocated *)
      (try
         Mtm.Txn.run th (fun tx ->
             Mtm.Txn.free tx ~slot;
             failwith "abort")
       with Failure _ -> ());
      Alcotest.(check bool) "still allocated" true
        (Region.Pmem.load v slot <> 0L);
      (* now free for real *)
      Mtm.Txn.run th (fun tx -> Mtm.Txn.free tx ~slot);
      Alcotest.(check int64) "slot cleared" 0L (Region.Pmem.load v slot);
      (* double free inside a transaction is rejected *)
      ignore (Mtm.Txn.run th (fun tx -> Mtm.Txn.alloc tx 64 ~slot));
      Alcotest.check_raises "double free in txn"
        (Invalid_argument "Hoard.free: block is not allocated (double free?)")
        (fun () ->
          Mtm.Txn.run th (fun tx ->
              let addr = Mtm.Txn.load tx slot in
              Mtm.Txn.free tx ~slot;
              (* restore the slot so we can "free" the same block again *)
              Mtm.Txn.store tx slot addr;
              Mtm.Txn.free tx ~slot)))

let test_large_alloc_in_txn () =
  with_tmpdir (fun dir ->
      let _, pmem = stack dir in
      let pool = pool_of pmem in
      let v = Region.Pmem.default_view pmem in
      let slot = Region.Pstatic.get v "big" 8 in
      let th = Mtm.Txn.thread pool 0 v.env in
      let addr = Mtm.Txn.run th (fun tx -> Mtm.Txn.alloc tx 10_000 ~slot) in
      Alcotest.(check int64) "slot" (Int64.of_int addr)
        (Region.Pmem.load v slot);
      (* abort path compensates immediately *)
      (try
         Mtm.Txn.run th (fun tx ->
             ignore (Mtm.Txn.alloc tx 10_000 ~slot:(slot));
             failwith "abort")
       with Failure _ -> ());
      Alcotest.(check int64) "slot still the first block"
        (Int64.of_int addr) (Region.Pmem.load v slot);
      Mtm.Txn.run th (fun tx -> Mtm.Txn.free tx ~slot);
      Alcotest.(check int64) "freed" 0L (Region.Pmem.load v slot))

(* ------------------------------------------------------------------ *)
(* Concurrency under the simulator *)

let sim_env sim (m : Scm.Env.machine) =
  Scm.Env.view m ~delay:(fun ns -> Sim.delay sim ns)
    ~now:(fun () -> Sim.now sim)

let test_concurrent_counter_increments () =
  with_tmpdir (fun dir ->
      let m, pmem = stack dir in
      let pool = pool_of pmem in
      let data = data_region pmem 4096 in
      let sim = Sim.create () in
      let per_thread = 50 in
      for i = 0 to 3 do
        Sim.spawn sim (fun () ->
            let th = Mtm.Txn.thread pool i (sim_env sim m) in
            for _ = 1 to per_thread do
              Mtm.Txn.run th (fun tx ->
                  let v = Mtm.Txn.load tx data in
                  Mtm.Txn.store tx data (Int64.add v 1L))
            done)
      done;
      Sim.run sim;
      let v = Region.Pmem.default_view pmem in
      Alcotest.(check int64) "no lost updates" (Int64.of_int (4 * per_thread))
        (Region.Pmem.load v data);
      Alcotest.(check bool) "contention caused aborts" true
        ((Mtm.Txn.stats pool).aborts > 0))

let test_concurrent_disjoint_scale () =
  with_tmpdir (fun dir ->
      let m, pmem = stack dir in
      let pool = pool_of pmem in
      let data = data_region pmem 65536 in
      let sim = Sim.create () in
      for i = 0 to 3 do
        Sim.spawn sim (fun () ->
            let th = Mtm.Txn.thread pool i (sim_env sim m) in
            for k = 0 to 24 do
              Mtm.Txn.run th (fun tx ->
                  Mtm.Txn.store tx
                    (data + (i * 16384) + (k * 64))
                    (Int64.of_int (i + 1)))
            done)
      done;
      Sim.run sim;
      Alcotest.(check int) "all committed" 100 (Mtm.Txn.stats pool).commits;
      let v = Region.Pmem.default_view pmem in
      for i = 0 to 3 do
        for k = 0 to 24 do
          Alcotest.(check int64)
            (Printf.sprintf "thread %d write %d" i k)
            (Int64.of_int (i + 1))
            (Region.Pmem.load v (data + (i * 16384) + (k * 64)))
        done
      done)

let test_isolation_no_dirty_reads () =
  with_tmpdir (fun dir ->
      let m, pmem = stack dir in
      let pool = pool_of pmem in
      let data = data_region pmem 4096 in
      let sim = Sim.create () in
      let observed = ref [] in
      (* writer: sets two words to the same value inside each txn *)
      Sim.spawn sim (fun () ->
          let th = Mtm.Txn.thread pool 0 (sim_env sim m) in
          for k = 1 to 30 do
            Mtm.Txn.run th (fun tx ->
                Mtm.Txn.store tx data (Int64.of_int k);
                Mtm.Txn.store tx (data + 512) (Int64.of_int k))
          done);
      (* reader: both words must always agree *)
      Sim.spawn sim (fun () ->
          let th = Mtm.Txn.thread pool 1 (sim_env sim m) in
          for _ = 1 to 60 do
            let a, b =
              Mtm.Txn.run th (fun tx ->
                  let a = Mtm.Txn.load tx data in
                  let b = Mtm.Txn.load tx (data + 512) in
                  (a, b))
            in
            observed := (a, b) :: !observed;
            Sim.delay sim 500
          done);
      Sim.run sim;
      List.iter
        (fun (a, b) ->
          if a <> b then
            Alcotest.failf "dirty/torn read observed: %Ld vs %Ld" a b)
        !observed;
      Alcotest.(check int) "observations" 60 (List.length !observed))

let test_contention_exception () =
  with_tmpdir (fun dir ->
      let m, pmem = stack dir in
      let cfg = { small_cfg with max_attempts = 3 } in
      let pool = pool_of ~config:cfg pmem in
      let data = data_region pmem 4096 in
      let sim = Sim.create () in
      let got_contention = ref false in
      Sim.spawn sim (fun () ->
          let th = Mtm.Txn.thread pool 0 (sim_env sim m) in
          Mtm.Txn.run th (fun tx ->
              Mtm.Txn.store tx data 1L;
              (* hold the lock for a long time *)
              Sim.delay sim 1_000_000));
      Sim.spawn sim (fun () ->
          Sim.delay sim 100;
          let th = Mtm.Txn.thread pool 1 (sim_env sim m) in
          try Mtm.Txn.run th (fun tx -> Mtm.Txn.store tx data 2L)
          with Mtm.Txn.Contention -> got_contention := true);
      Sim.run sim;
      Alcotest.(check bool) "contention surfaced" true !got_contention)

(* ------------------------------------------------------------------ *)
(* Async truncation daemon *)

let test_async_daemon_truncates () =
  with_tmpdir (fun dir ->
      let m, pmem = stack dir in
      let cfg = { small_cfg with truncation = Mtm.Txn.Async } in
      let pool = pool_of ~config:cfg pmem in
      let data = data_region pmem 65536 in
      let sim = Sim.create () in
      let processed = ref 0 in
      let th = ref None in
      Sim.spawn sim (fun () ->
          let t = Mtm.Txn.thread pool 0 (sim_env sim m) in
          th := Some t;
          for k = 0 to 49 do
            Mtm.Txn.run t (fun tx ->
                Mtm.Txn.store tx (data + (k * 64)) (Int64.of_int k))
          done);
      Sim.spawn sim (fun () ->
          let dview = Region.Pmem.view pmem (sim_env sim m) in
          for _ = 1 to 200 do
            Sim.delay sim 2_000;
            match !th with
            | Some t ->
                processed := !processed + Mtm.Txn.process_truncations t dview
            | None -> ()
          done);
      Sim.run sim;
      Alcotest.(check int) "daemon consumed every commit" 50 !processed;
      (match !th with
      | Some t ->
          Alcotest.(check int) "queue drained" 0
            (Mtm.Txn.pending_truncations t)
      | None -> Alcotest.fail "no thread");
      (* after the daemon flushed everything, even a hard crash without
         log replay keeps the data: verify by checking memory directly *)
      Scm.Crash.inject
        ~policy:{ cache = Scm.Crash.Drop_dirty; wc = Scm.Crash.Wc_drop }
        m;
      let _, pmem' = reboot m dir in
      let v' = Region.Pmem.default_view pmem' in
      for k = 0 to 49 do
        Alcotest.(check int64)
          (Printf.sprintf "word %d survived" k)
          (Int64.of_int k)
          (Region.Pmem.load v' (data + (k * 64)))
      done)

let test_log_full_blocks_until_truncated () =
  with_tmpdir (fun dir ->
      let _, pmem = stack dir in
      let cfg =
        { small_cfg with truncation = Mtm.Txn.Async; log_cap_words = 64 }
      in
      let pool = pool_of ~config:cfg pmem in
      let data = data_region pmem 65536 in
      let th = Mtm.Txn.thread pool 0 (Region.Pmem.default_view pmem).env in
      (* each txn writes 4 words -> record spans ~11 stored words; the
         64-word log fills after a few commits and the producer must
         self-drain (the paper's stall) rather than fail *)
      for k = 0 to 19 do
        Mtm.Txn.run th (fun tx ->
            for j = 0 to 3 do
              Mtm.Txn.store tx (data + (k * 256) + (j * 8)) 1L
            done)
      done;
      Alcotest.(check int) "all committed" 20 (Mtm.Txn.stats pool).commits)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_sequential_txns_match_model =
  QCheck.Test.make ~name:"sequential transactions match a memory model"
    ~count:25
    QCheck.(
      list_of_size Gen.(1 -- 30)
        (list_of_size Gen.(1 -- 8) (pair (int_bound 255) (int_bound 10_000))))
    (fun txns ->
      with_tmpdir (fun dir ->
          let _, pmem = stack dir in
          let pool = pool_of pmem in
          let data = data_region pmem 4096 in
          let th =
            Mtm.Txn.thread pool 0 (Region.Pmem.default_view pmem).env
          in
          let model = Hashtbl.create 64 in
          List.iter
            (fun writes ->
              Mtm.Txn.run th (fun tx ->
                  List.iter
                    (fun (slot, v) ->
                      Mtm.Txn.store tx (data + (slot * 8)) (Int64.of_int v);
                      Hashtbl.replace model slot (Int64.of_int v))
                    writes))
            txns;
          let v = Region.Pmem.default_view pmem in
          Hashtbl.fold
            (fun slot expected ok ->
              ok && Region.Pmem.load v (data + (slot * 8)) = expected)
            model true))

(* ------------------------------------------------------------------ *)
(* Eager undo logging (the paper's rejected alternative, section 5) *)

let undo_cfg =
  { small_cfg with version_mgmt = Mtm.Txn.Eager_undo }

let test_undo_commit_and_abort () =
  with_tmpdir (fun dir ->
      let _, pmem = stack dir in
      let pool = pool_of ~config:undo_cfg pmem in
      let data = data_region pmem 4096 in
      let v = Region.Pmem.default_view pmem in
      let th = Mtm.Txn.thread pool 0 v.env in
      Mtm.Txn.run th (fun tx ->
          Mtm.Txn.store tx data 5L;
          (* eager version management: memory holds the new value
             mid-transaction (the opposite of redo's lazy buffering) *)
          Alcotest.(check int64) "in place during txn" 5L
            (Region.Pmem.load v data));
      Alcotest.(check int64) "committed" 5L (Region.Pmem.load v data);
      (try
         Mtm.Txn.run th (fun tx ->
             Mtm.Txn.store tx data 6L;
             Mtm.Txn.store tx (data + 8) 7L;
             failwith "boom")
       with Failure _ -> ());
      Alcotest.(check int64) "rolled back" 5L (Region.Pmem.load v data);
      Alcotest.(check int64) "second word rolled back" 0L
        (Region.Pmem.load v (data + 8)))

let test_undo_crash_mid_txn_rolls_back () =
  with_tmpdir (fun dir ->
      let m, pmem = stack dir in
      let pool = pool_of ~config:undo_cfg pmem in
      let data = data_region pmem 4096 in
      let v = Region.Pmem.default_view pmem in
      (* establish a durable baseline *)
      let th = Mtm.Txn.thread pool 0 v.env in
      Mtm.Txn.run th (fun tx ->
          for j = 0 to 7 do
            Mtm.Txn.store tx (data + (8 * j)) 100L
          done);
      let image = Filename.concat dir "crash.img" in
      (* crash in the middle of a transaction: snapshot the device
         after the power failure, before any abort path runs *)
      (try
         Mtm.Txn.run th (fun tx ->
             for j = 0 to 7 do
               Mtm.Txn.store tx (data + (8 * j)) 200L
             done;
             Scm.Crash.inject m;
             Scm.Scm_device.save_image m.dev image;
             raise Exit)
       with Exit -> ());
      (* reboot from the crash image *)
      let dev = Scm.Scm_device.load_image image in
      let m' = Scm.Env.machine_of_device dev in
      let backing = Region.Backing_store.open_dir dir in
      let pmem' = Region.Pmem.open_instance m' backing in
      let pool' = pool_of ~config:undo_cfg pmem' in
      Alcotest.(check int) "one in-flight txn rolled back" 1
        (Mtm.Txn.recovered_txns pool');
      let v' = Region.Pmem.default_view pmem' in
      for j = 0 to 7 do
        Alcotest.(check int64)
          (Printf.sprintf "word %d restored" j)
          100L
          (Region.Pmem.load v' (data + (8 * j)))
      done)

let test_undo_alloc_abort_no_leak () =
  with_tmpdir (fun dir ->
      let _, pmem = stack dir in
      let pool = pool_of ~config:undo_cfg pmem in
      let v = Region.Pmem.default_view pmem in
      let slot = Region.Pstatic.get v "obj" 8 in
      let th = Mtm.Txn.thread pool 0 v.env in
      (try
         Mtm.Txn.run th (fun tx ->
             ignore (Mtm.Txn.alloc tx 64 ~slot);
             failwith "abort")
       with Failure _ -> ());
      Alcotest.(check int64) "slot restored" 0L (Region.Pmem.load v slot);
      (* allocate for real: heap state must be clean *)
      let addr = Mtm.Txn.run th (fun tx -> Mtm.Txn.alloc tx 64 ~slot) in
      Alcotest.(check int64) "clean allocation" (Int64.of_int addr)
        (Region.Pmem.load v slot))

let test_undo_concurrent_counter () =
  with_tmpdir (fun dir ->
      let m, pmem = stack dir in
      let pool = pool_of ~config:undo_cfg pmem in
      let data = data_region pmem 4096 in
      let sim = Sim.create () in
      for i = 0 to 3 do
        Sim.spawn sim (fun () ->
            let th = Mtm.Txn.thread pool i (sim_env sim m) in
            for _ = 1 to 25 do
              Mtm.Txn.run th (fun tx ->
                  let v = Mtm.Txn.load tx data in
                  Mtm.Txn.store tx data (Int64.add v 1L))
            done)
      done;
      Sim.run sim;
      let v = Region.Pmem.default_view pmem in
      Alcotest.(check int64) "no lost updates" 100L (Region.Pmem.load v data))

let test_undo_rejects_async () =
  with_tmpdir (fun dir ->
      let _, pmem = stack dir in
      Alcotest.check_raises "undo + async rejected"
        (Invalid_argument
           "Txn.create_pool: undo logging commits by truncation and cannot \
be asynchronous")
        (fun () ->
          ignore
            (pool_of
               ~config:{ undo_cfg with truncation = Mtm.Txn.Async }
               pmem)))

(* ------------------------------------------------------------------ *)
(* Lock table: striding, re-entrancy, release/version protocol *)

let prop_lock_striding =
  QCheck.Test.make ~name:"lock striding: 64-byte lines, 2^24-byte aliasing"
    ~count:200
    QCheck.(int_bound 0x0FFF_FFFF)
    (fun addr ->
      let t = Mtm.Lock_table.create () in
      (* default bits = 18 *)
      let idx = Mtm.Lock_table.index_of t addr in
      let line = addr land lnot 63 in
      (* every byte of the 64-byte line shares the lock *)
      List.for_all
        (fun j -> Mtm.Lock_table.index_of t (line + j) = idx)
        [ 0; 1; 7; 8; 63 ]
      (* the table wraps: addresses 2^18 lines (= 2^24 bytes) apart
         alias to the same entry, so false conflicts at that stride are
         by design *)
      && Mtm.Lock_table.index_of t (addr + (1 lsl 24)) = idx
      (* adjacent lines take adjacent entries (range striding, not
         hashing): a contiguous write set occupies contiguous locks *)
      && Mtm.Lock_table.index_of t (line + 64)
         = (idx + 1) land (Mtm.Lock_table.entries t - 1))

let prop_lock_acquire_reentrant =
  QCheck.Test.make ~name:"try_acquire: re-entrant for the owner, exclusive"
    ~count:200
    QCheck.(pair (int_bound 1000) (pair (int_bound 6) (int_bound 6)))
    (fun (idx, (o1, o2)) ->
      QCheck.assume (o1 <> o2);
      let t = Mtm.Lock_table.create ~bits:10 () in
      let open Mtm.Lock_table in
      let addr = 64 * idx in
      try_acquire t idx ~owner:o1 ~addr
      && try_acquire t idx ~owner:o1 ~addr (* re-entrant *)
      && (not (try_acquire t idx ~owner:o2 ~addr))
      && owner t idx = o1
      &&
      (release t idx;
       owner t idx = -1 && try_acquire t idx ~owner:o2 ~addr))

let prop_lock_release_versioned =
  QCheck.Test.make
    ~name:"release_versioned publishes; abort release preserves" ~count:200
    QCheck.(pair (int_bound 1000) (pair (int_bound 10_000) (int_bound 10_000)))
    (fun (idx, (v1, v2)) ->
      let t = Mtm.Lock_table.create ~bits:10 () in
      let open Mtm.Lock_table in
      (* commit: the new version becomes visible exactly at release *)
      ignore (try_acquire t idx ~owner:0 ~addr:(64 * idx));
      let before = version t idx in
      let mid = version t idx = before in
      release_versioned t idx ~version:v1;
      let committed = version t idx = v1 && owner t idx = -1 in
      (* abort: lock released, version untouched — concurrent readers
         that validated against v1 stay valid *)
      ignore (try_acquire t idx ~owner:1 ~addr:(64 * idx));
      release t idx;
      mid && committed && version t idx = v1 && owner t idx = -1
      && (ignore v2; true))

(* ------------------------------------------------------------------ *)
(* Timestamp: the 62-bit ceiling and leased allocation *)

(* An env that charges no simulated time: the timestamp tests exercise
   arithmetic, not latency. *)
let null_env () =
  let m = Scm.Env.make_machine ~seed:1 ~nframes:64 () in
  Scm.Env.view m ~delay:(fun _ -> ()) ~now:(fun () -> 0)

(* Redo-record headers carry the commit timestamp in 62 usable bits
   (the torn-bit log steals one, the OCaml int sign another).  Crossing
   that ceiling would silently wrap and reorder recovery replay, so the
   counter must fail loudly instead — on the shared bump, on a lease
   refill, and on recovery's advance. *)
let test_timestamp_ceiling () =
  let env = null_env () in
  Alcotest.(check int)
    "ceiling is 2^62 - 1"
    ((1 lsl 62) - 1)
    Mtm.Timestamp.max_cts;
  let ts = Mtm.Timestamp.create () in
  Mtm.Timestamp.advance_to ts (Mtm.Timestamp.max_cts - 1);
  Alcotest.(check int) "the last timestamp is issuable" Mtm.Timestamp.max_cts
    (Mtm.Timestamp.next ts env);
  Alcotest.check_raises "the bump past the ceiling fails loudly"
    Mtm.Timestamp.Exhausted (fun () -> ignore (Mtm.Timestamp.next ts env));
  Alcotest.check_raises "recovery advance past the ceiling fails loudly"
    Mtm.Timestamp.Exhausted (fun () ->
      Mtm.Timestamp.advance_to ts (Mtm.Timestamp.max_cts + 1));
  (* a lease refill reserves a whole block up front: it must refuse to
     reserve values it could never issue *)
  let ts' = Mtm.Timestamp.create () in
  Mtm.Timestamp.advance_to ts' (Mtm.Timestamp.max_cts - 2);
  let l = Mtm.Timestamp.lease_create () in
  Alcotest.check_raises "lease refill past the ceiling fails loudly"
    Mtm.Timestamp.Exhausted (fun () ->
      ignore (Mtm.Timestamp.draw ts' env l ~size:8 ~floor:0))

(* The leased allocator's contract: every draw is globally unique
   (disjoint leases), strictly above the caller's floor, and never
   ahead of [now] — the invariants the recovery ordering and the
   read-validation argument stand on. *)
let prop_lease_draws_unique_above_floor =
  QCheck.Test.make ~name:"leased draws: unique, above floor, bounded by now"
    ~count:100
    QCheck.(list_of_size Gen.(1 -- 60) (pair bool (int_bound 200)))
    (fun ops ->
      let env = null_env () in
      let ts = Mtm.Timestamp.create () in
      let la = Mtm.Timestamp.lease_create () in
      let lb = Mtm.Timestamp.lease_create () in
      let seen = Hashtbl.create 64 in
      List.for_all
        (fun (which, floor) ->
          let l = if which then la else lb in
          let c = Mtm.Timestamp.draw ts env l ~size:4 ~floor in
          let fresh = not (Hashtbl.mem seen c) in
          Hashtbl.replace seen c ();
          fresh && c > floor && c <= Mtm.Timestamp.now ts)
        ops)

(* ------------------------------------------------------------------ *)
(* Striped lock table geometry, and false-conflict attribution *)

let prop_lock_striping_geometry =
  QCheck.Test.make
    ~name:"striping: capacity multiplies, adjacent lines change stripe"
    ~count:200
    QCheck.(pair (int_bound 3) (int_bound 0x0FFF_FFFF))
    (fun (sbits, addr) ->
      let stripes = 1 lsl sbits in
      let t = Mtm.Lock_table.create ~bits:6 ~stripes () in
      let entries = Mtm.Lock_table.entries t in
      let h = Mtm.Lock_table.index_of t addr in
      let line = addr lsr 6 in
      (* striping multiplies the table instead of splitting it, so the
         aliasing stride grows with the stripe count *)
      entries = stripes * 64
      && Mtm.Lock_table.stripes t = stripes
      (* the handle is the line number modulo the enlarged table: one
         stripe is bit-for-bit the historical flat table, and distinct
         lines below the table size never alias *)
      && h = line land (entries - 1)
      (* the low handle bits select the stripe, so adjacent lines land
         on different stripe arrays and a contiguous write set spreads
         its lock metadata instead of queueing on one array *)
      && (stripes = 1
         || Mtm.Lock_table.index_of t (addr + 64) land (stripes - 1)
            <> h land (stripes - 1))
      (* every byte of a 64-byte line still shares one lock *)
      && Mtm.Lock_table.index_of t ((line * 64) + 63) = h)

(* The aliasing counter separates data conflicts from table-geometry
   conflicts: contention on one word is a real conflict and must not
   count, while contention between disjoint words that wrap onto the
   same entry must. *)
let test_false_conflict_counter () =
  with_tmpdir (fun dir ->
      let m, pmem = stack dir in
      (* 2^4 entries: the table wraps every 16 lines = 1024 bytes *)
      let cfg = { small_cfg with lock_bits = 4 } in
      let pool = pool_of ~config:cfg pmem in
      let data = data_region pmem 65536 in
      let fc =
        Obs.Metrics.counter (Mtm.Txn.obs pool).Obs.metrics
          "mtm.lock.false_conflicts"
      in
      let sim = Sim.create () in
      for i = 0 to 1 do
        Sim.spawn sim (fun () ->
            let th = Mtm.Txn.thread pool i (sim_env sim m) in
            for _ = 1 to 20 do
              Mtm.Txn.run th (fun tx ->
                  let v = Mtm.Txn.load tx data in
                  Sim.delay sim 500;
                  Mtm.Txn.store tx data (Int64.add v 1L))
            done)
      done;
      Sim.run sim;
      Alcotest.(check bool) "same-word contention aborted" true
        ((Mtm.Txn.stats pool).aborts > 0);
      Alcotest.(check int) "a real conflict is not a false conflict" 0
        (Obs.Metrics.counter_value fc);
      let sim = Sim.create () in
      Sim.spawn sim (fun () ->
          let th = Mtm.Txn.thread pool 2 (sim_env sim m) in
          for _ = 1 to 20 do
            Mtm.Txn.run th (fun tx ->
                Mtm.Txn.store tx data 1L;
                (* hold the entry while the aliased writer arrives *)
                Sim.delay sim 2_000)
          done);
      Sim.spawn sim (fun () ->
          Sim.delay sim 700;
          let th = Mtm.Txn.thread pool 3 (sim_env sim m) in
          for _ = 1 to 20 do
            (try Mtm.Txn.run th (fun tx -> Mtm.Txn.store tx (data + 1024) 2L)
             with Mtm.Txn.Contention -> ());
            Sim.delay sim 300
          done);
      Sim.run sim;
      Alcotest.(check bool) "wrap aliasing attributed as false conflicts" true
        (Obs.Metrics.counter_value fc > 0))

(* ------------------------------------------------------------------ *)
(* Scalable commit end to end: leases + stripes + group commit survive
   a crash with deferred truncations pending *)

let test_scalable_commit_recovery () =
  with_tmpdir (fun dir ->
      let m, pmem = stack dir in
      let cfg =
        { small_cfg with ts_lease = 4; lock_stripes = 4; group_commit = true }
      in
      let pool = pool_of ~config:cfg pmem in
      let data = data_region pmem 4096 in
      let sim = Sim.create () in
      for i = 0 to 3 do
        Sim.spawn sim (fun () ->
            let th = Mtm.Txn.thread pool i (sim_env sim m) in
            for _ = 1 to 25 do
              Mtm.Txn.run th (fun tx ->
                  let v = Mtm.Txn.load tx data in
                  Mtm.Txn.store tx data (Int64.add v 1L))
            done)
      done;
      Sim.run sim;
      Alcotest.(check int64) "no lost updates" 100L
        (Region.Pmem.load (Region.Pmem.default_view pmem) data);
      (* crash with group commit's deferred truncations still pending:
         the logs hold committed redo whose write-back never ran *)
      Scm.Crash.inject
        ~policy:{ cache = Scm.Crash.Drop_dirty; wc = Scm.Crash.Wc_apply_all }
        m;
      let _, pmem' = reboot m dir in
      let pool' = pool_of ~config:cfg pmem' in
      Alcotest.(check bool) "commits replayed from the logs" true
        (Mtm.Txn.recovered_txns pool' > 0);
      (* leased timestamps land in the per-thread logs out of arrival
         order; cts-sorted replay must reconstruct the serial order,
         and a counter pins it: replaying any commit out of place
         leaves a value other than the last one *)
      Alcotest.(check int64) "recovered exactly" 100L
        (Region.Pmem.load (Region.Pmem.default_view pmem') data))

(* ------------------------------------------------------------------ *)
(* Pipelined commit *)

let pipeline_cfg =
  {
    small_cfg with
    ts_lease = 4;
    lock_stripes = 4;
    group_commit = true;
    pipeline = true;
    cm = Mtm.Txn.Cm_adaptive;
  }

(* The new window the pipeline opens: locks release at the durability
   fence, before the data write-back runs.  A reader acquiring the line
   inside that window must observe the committed value — it is visible
   through the cache — at the bumped version (the read validates and
   commits without an abort).  No drainer daemon is installed, so the
   writer's record provably still awaits write-back when the reader
   runs. *)
let test_pipeline_read_before_write_back () =
  with_tmpdir (fun dir ->
      let m, pmem = stack dir in
      let pool = pool_of ~config:pipeline_cfg pmem in
      let data = data_region pmem 4096 in
      let pending_at_read = ref (-1) in
      let got = ref 0L in
      let writer = ref None in
      let sim = Sim.create () in
      Sim.spawn sim (fun () ->
          let th = Mtm.Txn.thread pool 0 (sim_env sim m) in
          Mtm.Txn.run th (fun tx -> Mtm.Txn.store tx data 42L);
          (* committed and durable; write-back queued, not run *)
          Alcotest.(check int) "write-back deferred past commit" 1
            (Mtm.Txn.pending_truncations th);
          writer := Some th);
      Sim.spawn sim (fun () ->
          let th = Mtm.Txn.thread pool 1 (sim_env sim m) in
          (* wait for the commit — the locks are released the moment it
             returns, its write-back still queued *)
          while !writer = None do
            Sim.delay sim 500
          done;
          (match !writer with
          | Some wr -> pending_at_read := Mtm.Txn.pending_truncations wr
          | None -> ());
          got := Mtm.Txn.run th (fun tx -> Mtm.Txn.load tx data));
      Sim.run sim;
      Alcotest.(check int) "writer's write-back still pending at the read" 1
        !pending_at_read;
      Alcotest.(check int64) "reader saw the committed value" 42L !got;
      Alcotest.(check int) "no aborts: version bumped at lock release" 0
        (Mtm.Txn.stats pool).aborts)

(* Crash between the durability fence and the deferred write-back: the
   cached new values die with the crash (dropped dirty lines), but the
   records are durable in the logs and recovery replays them.  25
   commits per thread against an 8-deep window leaves each thread's
   last record genuinely unretired at the end. *)
let test_pipeline_crash_before_write_back () =
  with_tmpdir (fun dir ->
      let m, pmem = stack dir in
      let pool = pool_of ~config:pipeline_cfg pmem in
      let data = data_region pmem 4096 in
      let workers = ref [] in
      let sim = Sim.create () in
      for i = 0 to 3 do
        Sim.spawn sim (fun () ->
            let th = Mtm.Txn.thread pool i (sim_env sim m) in
            workers := th :: !workers;
            for _ = 1 to 25 do
              Mtm.Txn.run th (fun tx ->
                  let v = Mtm.Txn.load tx data in
                  Mtm.Txn.store tx data (Int64.add v 1L))
            done)
      done;
      Sim.run sim;
      Alcotest.(check int64) "no lost updates" 100L
        (Region.Pmem.load (Region.Pmem.default_view pmem) data);
      let pending =
        List.fold_left
          (fun acc th -> acc + Mtm.Txn.pending_truncations th)
          0 !workers
      in
      Alcotest.(check bool) "commits durable-in-log, write-back pending" true
        (pending > 0);
      (* drop the dirty cache lines: the committed values survive only
         as redo records in the logs *)
      Scm.Crash.inject
        ~policy:{ cache = Scm.Crash.Drop_dirty; wc = Scm.Crash.Wc_apply_all }
        m;
      let _, pmem' = reboot m dir in
      let pool' = pool_of ~config:pipeline_cfg pmem' in
      Alcotest.(check bool) "unretired records replayed" true
        (Mtm.Txn.recovered_txns pool' > 0);
      Alcotest.(check int64) "recovered exactly" 100L
        (Region.Pmem.load (Region.Pmem.default_view pmem') data))

(* ------------------------------------------------------------------ *)
(* Abort-path interleavings: the satellite audits of the schedule-
   exploration PR, pinned as deterministic sim tests *)

(* Abort releases write locks without bumping versions.  Under eager
   undo the aborting writer has dirty values sitting in memory until
   rollback; a concurrent reader must never return one.  (Safe because
   [load] delays before reading and re-checks the owner after: a lock
   held at any point in that window aborts the read.) *)
let test_undo_abort_no_dirty_read () =
  with_tmpdir (fun dir ->
      let m, pmem = stack dir in
      let pool = pool_of ~config:undo_cfg pmem in
      let data = data_region pmem 4096 in
      let v = Region.Pmem.default_view pmem in
      Region.Pmem.wtstore v data 100L;
      Region.Pmem.fence v;
      let sim = Sim.create () in
      let observed = ref [] in
      Sim.spawn sim (fun () ->
          let th = Mtm.Txn.thread pool 0 (sim_env sim m) in
          for _ = 1 to 10 do
            (try
               Mtm.Txn.run th (fun tx ->
                   Mtm.Txn.store tx data 200L;
                   (* dirty value is in place; dawdle, then abort *)
                   Sim.delay sim 3_000;
                   failwith "abort")
             with Failure _ -> ());
            Sim.delay sim 500
          done);
      Sim.spawn sim (fun () ->
          let th = Mtm.Txn.thread pool 1 (sim_env sim m) in
          for _ = 1 to 40 do
            observed :=
              Mtm.Txn.run th (fun tx -> Mtm.Txn.load tx data) :: !observed;
            Sim.delay sim 700
          done);
      Sim.run sim;
      Alcotest.(check int) "reader observations" 40 (List.length !observed);
      List.iter
        (fun x ->
          if x <> 100L then
            Alcotest.failf "reader saw dirty/aborted value %Ld" x)
        !observed;
      Alcotest.(check int64) "rollbacks all landed" 100L
        (Region.Pmem.load v data))

(* The abort release must actually free the lock: a second writer
   contending with a serial aborter makes progress and wins. *)
let test_abort_releases_locks () =
  with_tmpdir (fun dir ->
      let m, pmem = stack dir in
      let pool = pool_of pmem in
      let data = data_region pmem 4096 in
      let sim = Sim.create () in
      Sim.spawn sim (fun () ->
          let th = Mtm.Txn.thread pool 0 (sim_env sim m) in
          try
            Mtm.Txn.run th (fun tx ->
                Mtm.Txn.store tx data 1L;
                Sim.delay sim 5_000;
                failwith "abort")
          with Failure _ -> ());
      Sim.spawn sim (fun () ->
          Sim.delay sim 100;
          let th = Mtm.Txn.thread pool 1 (sim_env sim m) in
          Mtm.Txn.run th (fun tx -> Mtm.Txn.store tx data 2L));
      Sim.run sim;
      let v = Region.Pmem.default_view pmem in
      Alcotest.(check int64) "second writer won through" 2L
        (Region.Pmem.load v data);
      Alcotest.(check int) "exactly the second committed" 1
        (Mtm.Txn.stats pool).commits)

(* The extend path: a read that finds a version newer than [rv] must
   revalidate and extend rather than abort, and the value returned must
   be the newly committed one (never a mix). *)
let test_read_extends_past_concurrent_commit () =
  with_tmpdir (fun dir ->
      let m, pmem = stack dir in
      let pool = pool_of pmem in
      let data = data_region pmem 4096 in
      let got = ref (0L, 0L) in
      let sim = Sim.create () in
      Sim.spawn sim (fun () ->
          let th = Mtm.Txn.thread pool 0 (sim_env sim m) in
          got :=
            Mtm.Txn.run th (fun tx ->
                let a = Mtm.Txn.load tx data in
                (* writer commits (data + 512) here, at a timestamp
                   past this transaction's rv *)
                Sim.delay sim 10_000;
                (a, Mtm.Txn.load tx (data + 512))));
      Sim.spawn sim (fun () ->
          Sim.delay sim 2_000;
          let th = Mtm.Txn.thread pool 1 (sim_env sim m) in
          Mtm.Txn.run th (fun tx -> Mtm.Txn.store tx (data + 512) 9L));
      Sim.run sim;
      Alcotest.(check (pair int64 int64))
        "snapshot extended to the new commit" (0L, 9L) !got;
      Alcotest.(check int) "no aborts needed" 0 (Mtm.Txn.stats pool).aborts)

(* ------------------------------------------------------------------ *)
(* Allocation budget *)

(* Regression guard for the allocation-free commit pipeline: a
   steady-state 8-write commit must stay under a fixed minor-word
   budget.  The reusable write-set, preallocated encode buffer and
   Bytes-staged log append put the measured cost around 240 minor
   words/commit; the budget leaves ~2x headroom for runtime-to-runtime
   variation while still catching any reintroduction of per-commit
   Hashtbl/list/closure churn (which costs thousands). *)
let test_commit_allocation_budget () =
  with_tmpdir (fun dir ->
      let _, pmem = stack dir in
      let pool = pool_of pmem in
      let data = data_region pmem 4096 in
      let th = Mtm.Txn.thread pool 0 (Region.Pmem.default_view pmem).env in
      let iter i =
        Mtm.Txn.run th (fun tx ->
            for j = 0 to 7 do
              Mtm.Txn.store tx
                (data + (8 * ((i + (j * 17)) land 255)))
                (Int64.of_int (i + j))
            done)
      in
      (* warm up: grow the write-set, log and heap to steady state *)
      for i = 0 to 199 do
        iter i
      done;
      let n = 500 in
      let m0 = Gc.minor_words () in
      for i = 0 to n - 1 do
        iter i
      done;
      let per_commit = (Gc.minor_words () -. m0) /. float_of_int n in
      if per_commit >= 512. then
        Alcotest.failf
          "steady-state commit allocates %.0f minor words (budget 512)"
          per_commit)

let () =
  Alcotest.run "mtm"
    [
      ( "basics",
        [
          Alcotest.test_case "commit visible and durable" `Quick
            test_commit_visible_and_durable;
          Alcotest.test_case "user exception aborts" `Quick
            test_user_exception_aborts;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "read your writes, lazy versioning" `Quick
            test_read_your_writes_and_lazy_versioning;
          Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
          Alcotest.test_case "nested flattening" `Quick test_nested_flattening;
          Alcotest.test_case "commit allocation budget" `Quick
            test_commit_allocation_budget;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "uncommitted never applied" `Quick
            test_uncommitted_never_applied_committed_replayed;
          Alcotest.test_case "recovery orders across threads" `Quick
            test_recovery_orders_across_threads;
          Alcotest.test_case "crash stress all-or-nothing" `Slow
            test_crash_stress_all_or_nothing;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "alloc commits with txn" `Quick
            test_alloc_commits_with_txn;
          Alcotest.test_case "alloc aborts with txn" `Quick
            test_alloc_aborts_with_txn;
          Alcotest.test_case "free in txn" `Quick test_free_in_txn;
          Alcotest.test_case "large alloc in txn" `Quick
            test_large_alloc_in_txn;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "counter increments" `Quick
            test_concurrent_counter_increments;
          Alcotest.test_case "disjoint scale" `Quick
            test_concurrent_disjoint_scale;
          Alcotest.test_case "isolation no dirty reads" `Quick
            test_isolation_no_dirty_reads;
          Alcotest.test_case "contention exception" `Quick
            test_contention_exception;
        ] );
      ( "truncation",
        [
          Alcotest.test_case "async daemon truncates" `Quick
            test_async_daemon_truncates;
          Alcotest.test_case "log full blocks until truncated" `Quick
            test_log_full_blocks_until_truncated;
        ] );
      ( "undo",
        [
          Alcotest.test_case "commit and abort" `Quick
            test_undo_commit_and_abort;
          Alcotest.test_case "crash mid-txn rolls back" `Quick
            test_undo_crash_mid_txn_rolls_back;
          Alcotest.test_case "alloc abort no leak" `Quick
            test_undo_alloc_abort_no_leak;
          Alcotest.test_case "concurrent counter" `Quick
            test_undo_concurrent_counter;
          Alcotest.test_case "rejects async" `Quick test_undo_rejects_async;
        ] );
      ( "lock table",
        [
          QCheck_alcotest.to_alcotest prop_lock_striding;
          QCheck_alcotest.to_alcotest prop_lock_acquire_reentrant;
          QCheck_alcotest.to_alcotest prop_lock_release_versioned;
          QCheck_alcotest.to_alcotest prop_lock_striping_geometry;
          Alcotest.test_case "false conflict counter" `Quick
            test_false_conflict_counter;
        ] );
      ( "timestamp",
        [
          Alcotest.test_case "ceiling fails loudly" `Quick
            test_timestamp_ceiling;
          QCheck_alcotest.to_alcotest prop_lease_draws_unique_above_floor;
        ] );
      ( "scalable commit",
        [
          Alcotest.test_case "recovery with leases and group commit" `Quick
            test_scalable_commit_recovery;
        ] );
      ( "pipelined commit",
        [
          Alcotest.test_case "read before write-back sees committed value"
            `Quick test_pipeline_read_before_write_back;
          Alcotest.test_case "crash between fence and write-back recovers"
            `Quick test_pipeline_crash_before_write_back;
        ] );
      ( "abort interleavings",
        [
          Alcotest.test_case "undo abort: no dirty read" `Quick
            test_undo_abort_no_dirty_read;
          Alcotest.test_case "abort releases locks" `Quick
            test_abort_releases_locks;
          Alcotest.test_case "read extends past concurrent commit" `Quick
            test_read_extends_past_concurrent_commit;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_sequential_txns_match_model ] );
    ]
