(* Tests for the log library: bit-stream packing, the tornbit RAWL
   (append/flush/truncate/recovery, torn-write detection, wraparound)
   and the commit-record baseline log. *)

let with_tmpdir f =
  let dir = Filename.temp_file "mnemolog" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun name -> Sys.remove (Filename.concat dir name))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

(* A full persistent-memory stack in [dir]; returns (machine, view). *)
let stack ?(nframes = 256) ?(seed = 5) dir =
  let m = Scm.Env.make_machine ~seed ~nframes () in
  let backing = Region.Backing_store.open_dir dir in
  let t = Region.Pmem.open_instance m backing in
  (m, Region.Pmem.default_view t)

(* Simulate process death + reboot on the same device: volatile state is
   wiped by the crash; rebuild the machine wrapper and reopen. *)
let reboot (m : Scm.Env.machine) dir =
  let m' = Scm.Env.machine_of_device m.dev in
  let backing = Region.Backing_store.open_dir dir in
  let t = Region.Pmem.open_instance m' backing in
  (m', Region.Pmem.default_view t)

let i64_array = Alcotest.(array int64)

let record_list = Alcotest.(list (array int64))

(* ------------------------------------------------------------------ *)
(* Bitstream *)

let test_stored_words_for () =
  Alcotest.(check int) "1 word" 2 (Pmlog.Bitstream.stored_words_for 1);
  Alcotest.(check int) "63 words" 64 (Pmlog.Bitstream.stored_words_for 63);
  Alcotest.(check int) "64 words" 66 (Pmlog.Bitstream.stored_words_for 64)

let pack_unpack words =
  let chunks = ref [] in
  let packer =
    Pmlog.Bitstream.Packer.create ~emit:(fun c -> chunks := c :: !chunks)
  in
  Array.iter (Pmlog.Bitstream.Packer.push packer) words;
  Pmlog.Bitstream.Packer.flush packer;
  let chunks = List.rev !chunks in
  List.iter
    (fun c ->
      Alcotest.(check bool) "bit 63 clear in emitted chunk" false
        (Scm.Word.bit c 63))
    chunks;
  let unp = Pmlog.Bitstream.Unpacker.create () in
  let out = ref [] in
  List.iter
    (fun c ->
      Pmlog.Bitstream.Unpacker.feed unp c;
      let rec drain () =
        match Pmlog.Bitstream.Unpacker.take unp with
        | Some w ->
            out := w :: !out;
            drain ()
        | None -> ()
      in
      drain ())
    chunks;
  (List.length chunks, Array.of_list (List.rev !out))

let test_bitstream_roundtrip_small () =
  let words = [| 1L; -1L; 0x0123456789abcdefL; 0L; Int64.min_int |] in
  let nchunks, out = pack_unpack words in
  Alcotest.(check int) "chunk count" (Pmlog.Bitstream.stored_words_for 5)
    nchunks;
  Alcotest.check i64_array "roundtrip"
    words (Array.sub out 0 5)

let prop_bitstream_roundtrip =
  QCheck.Test.make ~name:"bitstream pack/unpack roundtrip" ~count:200
    QCheck.(array_of_size Gen.(1 -- 200) int64)
    (fun words ->
      let nchunks, out = pack_unpack words in
      nchunks = Pmlog.Bitstream.stored_words_for (Array.length words)
      && Array.length out >= Array.length words
      && Array.for_all2 ( = ) words
           (Array.sub out 0 (Array.length words)))

(* ------------------------------------------------------------------ *)
(* RAWL *)

let make_log v ~cap_words =
  let base = Region.Pmem.pmap v (Pmlog.Rawl.region_bytes_for ~cap_words) in
  (base, Pmlog.Rawl.create v ~base ~cap_words)

let test_rawl_append_and_recover () =
  with_tmpdir (fun dir ->
      let m, v = stack dir in
      let base, log = make_log v ~cap_words:256 in
      let r1 = [| 1L; 2L; 3L |] and r2 = [| -1L |] and r3 = Array.make 20 7L in
      List.iter
        (fun r ->
          match Pmlog.Rawl.append log r with
          | Pmlog.Rawl.Appended _ -> ()
          | Pmlog.Rawl.Full -> Alcotest.fail "unexpected Full")
        [ r1; r2; r3 ];
      Pmlog.Rawl.flush log;
      let _, v' = reboot m dir in
      let _, records = Pmlog.Rawl.attach v' ~base in
      Alcotest.check record_list "all records recovered" [ r1; r2; r3 ]
        records)

let test_rawl_unflushed_append_lost () =
  with_tmpdir (fun dir ->
      let m, v = stack dir in
      let base, log = make_log v ~cap_words:128 in
      (match Pmlog.Rawl.append log [| 5L; 6L |] with
      | Pmlog.Rawl.Appended _ -> ()
      | Pmlog.Rawl.Full -> Alcotest.fail "Full");
      Pmlog.Rawl.flush log;
      (match Pmlog.Rawl.append log [| 9L |] with
      | Pmlog.Rawl.Appended _ -> ()
      | Pmlog.Rawl.Full -> Alcotest.fail "Full");
      (* no flush: second record is still in the WC buffers *)
      Scm.Crash.inject
        ~policy:{ cache = Scm.Crash.Drop_dirty; wc = Scm.Crash.Wc_drop }
        m;
      let _, v' = reboot m dir in
      let _, records = Pmlog.Rawl.attach v' ~base in
      Alcotest.check record_list "only the flushed record" [ [| 5L; 6L |] ]
        records)

let test_rawl_torn_append_detected () =
  (* Crash with a random subset of the pending streaming writes applied:
     recovery must never surface a corrupted record — each recovered
     record matches what was appended, and they form a prefix. *)
  let failures = ref 0 in
  for seed = 0 to 49 do
    with_tmpdir (fun dir ->
        let m, v = stack ~seed dir in
        let base, log = make_log v ~cap_words:512 in
        let appended =
          List.init 5 (fun i -> Array.init (3 + i) (fun j ->
              Int64.of_int ((100 * i) + j)))
        in
        List.iteri
          (fun i r ->
            (match Pmlog.Rawl.append log r with
            | Pmlog.Rawl.Appended _ -> ()
            | Pmlog.Rawl.Full -> Alcotest.fail "Full");
            (* flush the first three; leave the last two in flight *)
            if i = 2 then Pmlog.Rawl.flush log)
          appended;
        Scm.Crash.inject
          ~policy:
            { cache = Scm.Crash.Drop_dirty; wc = Scm.Crash.Wc_random_subset }
          m;
        let _, v' = reboot m dir in
        let _, records = Pmlog.Rawl.attach v' ~base in
        if List.length records < 3 then incr failures;
        (* recovered records must be an exact prefix of what was appended *)
        List.iteri
          (fun i r ->
            Alcotest.check i64_array
              (Printf.sprintf "seed %d record %d intact" seed i)
              (List.nth appended i) r)
          records)
  done;
  Alcotest.(check int) "flushed records always recovered" 0 !failures

let test_rawl_bit_flip_injection () =
  (* The paper's reliability test: inject bit flips into the log before
     a crash; recovery must stop at the corrupted word. *)
  with_tmpdir (fun dir ->
      let m, v = stack dir in
      let base, log = make_log v ~cap_words:128 in
      ignore (Pmlog.Rawl.append log [| 1L; 2L |]);
      ignore (Pmlog.Rawl.append log [| 3L; 4L |]);
      Pmlog.Rawl.flush log;
      (* Flip the torn bit of the second record's first stored word.
         Record 1 spans stored_words_for(3) = 4 words; buffer starts at
         base + 64. *)
      let slot = base + 64 + (8 * Pmlog.Bitstream.stored_words_for 3) in
      let w = Region.Pmem.load v slot in
      Region.Pmem.wtstore v slot (Scm.Word.set_bit w 63 (not (Scm.Word.bit w 63)));
      Region.Pmem.fence v;
      Scm.Crash.inject m;
      let _, v' = reboot m dir in
      let _, records = Pmlog.Rawl.attach v' ~base in
      Alcotest.check record_list "scan stops at the flipped bit"
        [ [| 1L; 2L |] ]
        records)

let test_rawl_wraparound_many_passes () =
  with_tmpdir (fun dir ->
      let m, v = stack dir in
      let base, log = make_log v ~cap_words:64 in
      (* Append/truncate enough to wrap the buffer several times. *)
      for round = 1 to 40 do
        (match Pmlog.Rawl.append log (Array.make 10 (Int64.of_int round)) with
        | Pmlog.Rawl.Appended _ -> ()
        | Pmlog.Rawl.Full -> Alcotest.fail "unexpected Full");
        Pmlog.Rawl.flush log;
        if round mod 2 = 1 then Pmlog.Rawl.truncate_all log
      done;
      (* One final flushed record after the last truncation. *)
      ignore (Pmlog.Rawl.append log [| 4242L |]);
      Pmlog.Rawl.flush log;
      let _, v' = reboot m dir in
      let _, records = Pmlog.Rawl.attach v' ~base in
      Alcotest.check record_list "post-wrap recovery"
        [ Array.make 10 40L; [| 4242L |] ]
        records)

let test_rawl_full_and_space_accounting () =
  with_tmpdir (fun dir ->
      let _, v = stack dir in
      let _, log = make_log v ~cap_words:16 in
      Alcotest.(check int) "empty" 0 (Pmlog.Rawl.used_words log);
      Alcotest.(check int) "free" 15 (Pmlog.Rawl.free_words log);
      (match Pmlog.Rawl.append log (Array.make 8 1L) with
      | Pmlog.Rawl.Appended span ->
          Alcotest.(check int) "span" (Pmlog.Bitstream.stored_words_for 9) span
      | Pmlog.Rawl.Full -> Alcotest.fail "should fit");
      (match Pmlog.Rawl.append log (Array.make 8 1L) with
      | Pmlog.Rawl.Full -> ()
      | Pmlog.Rawl.Appended _ -> Alcotest.fail "should be Full");
      Pmlog.Rawl.truncate_all log;
      Alcotest.(check int) "free after truncate" 15
        (Pmlog.Rawl.free_words log);
      match Pmlog.Rawl.append log (Array.make 8 1L) with
      | Pmlog.Rawl.Appended _ -> ()
      | Pmlog.Rawl.Full -> Alcotest.fail "fits again")

let test_rawl_advance_head_partial () =
  with_tmpdir (fun dir ->
      let m, v = stack dir in
      let base, log = make_log v ~cap_words:256 in
      let spans =
        List.map
          (fun r ->
            match Pmlog.Rawl.append log r with
            | Pmlog.Rawl.Appended s -> s
            | Pmlog.Rawl.Full -> Alcotest.fail "Full")
          [ [| 1L |]; [| 2L |]; [| 3L |] ]
      in
      Pmlog.Rawl.flush log;
      (* Consume just the first record. *)
      Pmlog.Rawl.advance_head log ~words:(List.hd spans);
      let _, v' = reboot m dir in
      let _, records = Pmlog.Rawl.attach v' ~base in
      Alcotest.check record_list "first record consumed"
        [ [| 2L |]; [| 3L |] ]
        records)

let test_rawl_double_crash_after_recovery () =
  (* A partial append discarded at recovery must not resurface after a
     second crash (the stale-suffix erasure). *)
  with_tmpdir (fun dir ->
      let m, v = stack dir in
      let base, log = make_log v ~cap_words:128 in
      ignore (Pmlog.Rawl.append log [| 10L; 11L |]);
      Pmlog.Rawl.flush log;
      ignore (Pmlog.Rawl.append log [| 20L; 21L; 22L; 23L |]);
      (* crash with only part of the second append applied *)
      Scm.Crash.inject
        ~policy:
          { cache = Scm.Crash.Drop_dirty; wc = Scm.Crash.Wc_random_subset }
        m;
      let m2, v2 = reboot m dir in
      let log2, records1 = Pmlog.Rawl.attach v2 ~base in
      Alcotest.(check bool) "at most the flushed record" true
        (List.length records1 <= 1);
      (* Continue appending after recovery, then crash again cleanly. *)
      ignore (Pmlog.Rawl.append log2 [| 30L |]);
      Pmlog.Rawl.flush log2;
      Scm.Crash.inject
        ~policy:{ cache = Scm.Crash.Drop_dirty; wc = Scm.Crash.Wc_drop }
        m2;
      let _, v3 = reboot m2 dir in
      let _, records2 = Pmlog.Rawl.attach v3 ~base in
      Alcotest.check record_list "old records + the new one, no garbage"
        (records1 @ [ [| 30L |] ])
        records2)

let prop_rawl_recovery_prefix =
  (* For random record batches, random flush points and adversarial
     crashes: recovery yields an uncorrupted prefix (at least through
     the last flush). *)
  QCheck.Test.make ~name:"rawl recovery yields intact flushed prefix"
    ~count:60
    QCheck.(
      pair (int_bound 1000)
        (list_of_size Gen.(1 -- 8) (array_of_size Gen.(1 -- 12) int64)))
    (fun (seed, batch) ->
      QCheck.assume (batch <> []);
      with_tmpdir (fun dir ->
          let m, v = stack ~seed dir in
          let base, log = make_log v ~cap_words:1024 in
          let flush_at = seed mod List.length batch in
          List.iteri
            (fun i r ->
              (match Pmlog.Rawl.append log r with
              | Pmlog.Rawl.Appended _ -> ()
              | Pmlog.Rawl.Full -> QCheck.assume_fail ());
              if i = flush_at then Pmlog.Rawl.flush log)
            batch;
          Scm.Crash.inject m;
          let _, v' = reboot m dir in
          let _, records = Pmlog.Rawl.attach v' ~base in
          List.length records >= flush_at + 1
          && List.for_all2 ( = )
               records
               (List.filteri (fun i _ -> i < List.length records) batch)))

let test_rawl_tornbit_rotation () =
  with_tmpdir (fun dir ->
      let m, v = stack dir in
      let cap_words = 32 in
      let base = Region.Pmem.pmap v (Pmlog.Rawl.region_bytes_for ~cap_words) in
      let log = Pmlog.Rawl.create ~rotate_torn_bit:true v ~base ~cap_words in
      Alcotest.(check int) "starts at bit 63" 63
        (Pmlog.Rawl.torn_bit_position log);
      (* push enough passes through the buffer to trigger a rotation:
         each round writes ~14 of the 31 usable words *)
      let rounds = 4 * Pmlog.Rawl.rotate_period in
      for round = 1 to rounds do
        (match Pmlog.Rawl.append log (Array.make 12 (Int64.of_int round)) with
        | Pmlog.Rawl.Appended _ -> ()
        | Pmlog.Rawl.Full -> Alcotest.fail "unexpected Full");
        Pmlog.Rawl.flush log;
        Pmlog.Rawl.truncate_all log
      done;
      Alcotest.(check bool) "torn bit moved" true
        (Pmlog.Rawl.torn_bit_position log <> 63);
      (* a record written under the rotated position still recovers,
         including across a crash and with arbitrary payload bits in the
         old torn-bit column *)
      let payload = Array.init 10 (fun i -> Int64.lognot (Int64.of_int i)) in
      ignore (Pmlog.Rawl.append log payload);
      Pmlog.Rawl.flush log;
      Scm.Crash.inject m;
      let _, v' = reboot m dir in
      let log', records = Pmlog.Rawl.attach v' ~base in
      Alcotest.check record_list "recovered under rotated torn bit"
        [ payload ] records;
      Alcotest.(check int) "position recovered from the head word"
        (Pmlog.Rawl.torn_bit_position log)
        (Pmlog.Rawl.torn_bit_position log'))

let prop_rawl_rotation_roundtrip =
  QCheck.Test.make ~name:"rotating rawl round-trips arbitrary payloads"
    ~count:40
    QCheck.(pair (int_bound 1000) (list_of_size Gen.(1 -- 5)
                                     (array_of_size Gen.(1 -- 6) int64)))
    (fun (seed, batch) ->
      QCheck.assume (batch <> []);
      with_tmpdir (fun dir ->
          let _, v = stack ~seed dir in
          let cap_words = 64 in
          let base =
            Region.Pmem.pmap v (Pmlog.Rawl.region_bytes_for ~cap_words)
          in
          let log =
            Pmlog.Rawl.create ~rotate_torn_bit:true v ~base ~cap_words
          in
          (* churn to move the torn bit *)
          for _ = 1 to (seed mod 3) * Pmlog.Rawl.rotate_period * 4 do
            ignore (Pmlog.Rawl.append log [| 1L; 2L; 3L |]);
            Pmlog.Rawl.flush log;
            Pmlog.Rawl.truncate_all log
          done;
          List.iter
            (fun r ->
              match Pmlog.Rawl.append log r with
              | Pmlog.Rawl.Appended _ -> ()
              | Pmlog.Rawl.Full -> QCheck.assume_fail ())
            batch;
          Pmlog.Rawl.flush log;
          let _, records = Pmlog.Rawl.attach v ~base in
          records = batch))

(* ------------------------------------------------------------------ *)
(* Adversarial recovery: hand-planted device states                    *)

(* The 63-bit chunks the packer would emit for [words] — what a record
   of this payload looks like on the device, minus torn bits. *)
let chunks_of words =
  let out = ref [] in
  let p = Pmlog.Bitstream.Packer.create ~emit:(fun c -> out := c :: !out) in
  Array.iter (Pmlog.Bitstream.Packer.push p) words;
  Pmlog.Bitstream.Packer.flush p;
  List.rev !out

(* Hand-write stored words carrying torn bit 1 at position 63 (the
   first pass over a fresh log) at buffer position [pos] — simulating
   the subset of a crashed append's streaming stores that landed. *)
let plant v ~base ~pos chunks =
  List.iteri
    (fun i c ->
      Region.Pmem.wtstore v
        (base + 64 + (8 * (pos + i)))
        (Int64.logor c (Int64.shift_left 1L 63)))
    chunks;
  Region.Pmem.fence v

let test_rawl_max_record_words_boundary () =
  (* append admission, the recovery length-plausibility bound and
     max_record_words must all be the same function of the capacity *)
  for cap_words = 4 to 200 do
    let n = Pmlog.Rawl.max_record_words_for ~cap_words in
    Alcotest.(check bool)
      (Printf.sprintf "cap %d: the max record fits" cap_words)
      true
      (Pmlog.Bitstream.stored_words_for (n + 1) <= cap_words - 1);
    Alcotest.(check bool)
      (Printf.sprintf "cap %d: one more word does not" cap_words)
      true
      (Pmlog.Bitstream.stored_words_for (n + 2) > cap_words - 1)
  done;
  with_tmpdir (fun dir ->
      let m, v = stack dir in
      let base, log = make_log v ~cap_words:16 in
      let nmax = Pmlog.Rawl.max_record_words log in
      Alcotest.(check int) "instance bound matches the static one" nmax
        (Pmlog.Rawl.max_record_words_for ~cap_words:16);
      (match Pmlog.Rawl.append log (Array.make (nmax + 1) 9L) with
      | Pmlog.Rawl.Full -> ()
      | Pmlog.Rawl.Appended _ ->
          Alcotest.fail "a record past the bound must be Full");
      let r = Array.init nmax (fun i -> Int64.of_int (i + 1)) in
      (match Pmlog.Rawl.append log r with
      | Pmlog.Rawl.Appended _ -> ()
      | Pmlog.Rawl.Full -> Alcotest.fail "a max-size record must fit");
      Pmlog.Rawl.flush log;
      let _, v' = reboot m dir in
      let _, records = Pmlog.Rawl.attach v' ~base in
      Alcotest.check record_list "a max-size record recovers" [ r ] records)

let test_rawl_implausible_length_rejected () =
  (* A stale word can decode to any length.  Recovery must reject every
     length no append could have produced — in particular the first
     value past max_record_words, which an unreconciled (laxer) scan
     bound would admit. *)
  List.iter
    (fun bogus ->
      with_tmpdir (fun dir ->
          let m, v = stack dir in
          let base, log = make_log v ~cap_words:128 in
          ignore (Pmlog.Rawl.append log [| 1L; 2L |]);
          Pmlog.Rawl.flush log;
          (* plant the bogus length word right at the tail (the first
             record spans stored positions 0..3) *)
          plant v ~base ~pos:4 (chunks_of [| Int64.of_int bogus |]);
          Scm.Crash.inject m;
          let _, v' = reboot m dir in
          let _, records = Pmlog.Rawl.attach v' ~base in
          Alcotest.check record_list
            (Printf.sprintf "length %d rejected, no phantom record" bogus)
            [ [| 1L; 2L |] ]
            records))
    [ 0;
      Pmlog.Rawl.max_record_words_for ~cap_words:128 + 1;
      128;
      max_int lsr 8 ]

let test_rawl_stale_word_beyond_gap_erased () =
  (* Crash-landed subsets are arbitrary: a perfectly plausible stale
     record image can sit beyond a gap of never-written words.  The
     recovery erase must sweep the whole free region — an erase that
     stops at the first missing word leaves the stale image in place,
     and once later appends fill the gap the next recovery scan runs
     straight into it and surfaces a phantom record. *)
  with_tmpdir (fun dir ->
      let m, v = stack dir in
      let base, log = make_log v ~cap_words:64 in
      ignore (Pmlog.Rawl.append log [| 1L; 2L |]);
      (* spans positions 0..3 *)
      Pmlog.Rawl.flush log;
      (* a crashed append whose words at positions 4..6 never landed
         but whose tail did: a complete record image at positions 7..9 *)
      plant v ~base ~pos:7 (chunks_of [| 1L; 0xbadL |]);
      Scm.Crash.inject m;
      let m2, v2 = reboot m dir in
      let log2, recs1 = Pmlog.Rawl.attach v2 ~base in
      Alcotest.check record_list "scan stops at the gap" [ [| 1L; 2L |] ]
        recs1;
      (* a new append fills the gap exactly (span 3: positions 4..6) *)
      ignore (Pmlog.Rawl.append log2 [| 7L |]);
      Pmlog.Rawl.flush log2;
      Scm.Crash.inject
        ~policy:{ cache = Scm.Crash.Drop_dirty; wc = Scm.Crash.Wc_drop }
        m2;
      let _, v3 = reboot m2 dir in
      let _, recs2 = Pmlog.Rawl.attach v3 ~base in
      Alcotest.check record_list "the planted image must not resurface"
        [ [| 1L; 2L |]; [| 7L |] ]
        recs2)

let test_rawl_partial_trailing_wrap () =
  (* A torn append spanning the wrap point, for many crash seeds: the
     recovery must surface either just the flushed prefix or the whole
     record (if every store landed), never garbage — and the recovered
     log must stay usable through another append/crash/recover cycle. *)
  let torn = Array.make 8 6L in
  for seed = 0 to 29 do
    with_tmpdir (fun dir ->
        let m, v = stack ~seed dir in
        let base, log = make_log v ~cap_words:32 in
        (* two flushed+consumed records advance the tail to position 24 *)
        List.iter
          (fun r ->
            (match Pmlog.Rawl.append log r with
            | Pmlog.Rawl.Appended _ -> ()
            | Pmlog.Rawl.Full -> Alcotest.fail "unexpected Full");
            Pmlog.Rawl.flush log;
            Pmlog.Rawl.truncate_all log)
          [ Array.make 10 1L; Array.make 10 2L ];
        ignore (Pmlog.Rawl.append log [| 5L |]);
        (* positions 24..26 *)
        Pmlog.Rawl.flush log;
        (* span 10: positions 27..31, then 0..4 on the next pass *)
        ignore (Pmlog.Rawl.append log torn);
        Scm.Crash.inject
          ~policy:
            { cache = Scm.Crash.Drop_dirty; wc = Scm.Crash.Wc_random_subset }
          m;
        let m2, v2 = reboot m dir in
        let log2, recs = Pmlog.Rawl.attach v2 ~base in
        (match recs with
        | [ [| 5L |] ] -> ()
        | [ [| 5L |]; r ] ->
            Alcotest.check i64_array
              (Printf.sprintf "seed %d: complete wrap record" seed)
              torn r
        | _ ->
            Alcotest.failf "seed %d: unexpected recovery (%d records)" seed
              (List.length recs));
        ignore (Pmlog.Rawl.append log2 [| 9L |]);
        Pmlog.Rawl.flush log2;
        Scm.Crash.inject
          ~policy:{ cache = Scm.Crash.Drop_dirty; wc = Scm.Crash.Wc_drop }
          m2;
        let _, v3 = reboot m2 dir in
        let _, recs2 = Pmlog.Rawl.attach v3 ~base in
        Alcotest.check record_list
          (Printf.sprintf "seed %d: second recovery consistent" seed)
          (recs @ [ [| 9L |] ])
          recs2)
  done

let test_rawl_recovery_crash_idempotent () =
  (* Crash the recovery itself — including mid-erase — at every op
     index, then recover again: the second recovery must converge to
     the same records as an uninterrupted one, from every intermediate
     state the erase sweep can be left in. *)
  with_tmpdir (fun dir ->
      let m, v = stack dir in
      let base, log = make_log v ~cap_words:64 in
      ignore (Pmlog.Rawl.append log [| 1L; 2L |]);
      Pmlog.Rawl.flush log;
      (* stale debris for the erase to clean: a lone mid-append word and
         a full record image beyond the gap *)
      plant v ~base ~pos:5 [ List.nth (chunks_of [| 3L; 4L; 5L |]) 1 ];
      plant v ~base ~pos:7 (chunks_of [| 1L; 0xbadL |]);
      Scm.Crash.inject m;
      let dev0 = Scm.Scm_device.copy m.Scm.Env.dev in
      let try_recover dev ~crash_point =
        let m' = Scm.Env.machine_of_device ?crash_point dev in
        let backing = Region.Backing_store.open_dir dir in
        match
          let t = Region.Pmem.open_instance m' backing in
          Pmlog.Rawl.attach (Region.Pmem.default_view t) ~base
        with
        | _, records -> Ok records
        | exception Scm.Crashpoint.Simulated_crash _ ->
            Scm.Crash.inject m';
            Error ()
      in
      let baseline =
        match try_recover (Scm.Scm_device.copy dev0) ~crash_point:None with
        | Ok records -> records
        | Error () -> Alcotest.fail "disarmed recovery crashed"
      in
      Alcotest.check record_list "baseline recovery" [ [| 1L; 2L |] ] baseline;
      let explored = ref 0 in
      let k = ref 1 and finished = ref false in
      while not !finished do
        let dev = Scm.Scm_device.copy dev0 in
        let cp = Scm.Crashpoint.create () in
        Scm.Crashpoint.arm cp ~at:!k;
        (match try_recover dev ~crash_point:(Some cp) with
        | Ok records ->
            (* op !k lies beyond the recovery: the sweep is exhausted *)
            Alcotest.check record_list "uncrashed tail run" baseline records;
            finished := true
        | Error () -> (
            incr explored;
            match try_recover dev ~crash_point:None with
            | Ok records ->
                Alcotest.check record_list
                  (Printf.sprintf "second recovery after a crash at op %d" !k)
                  baseline records
            | Error () -> Alcotest.fail "disarmed recovery crashed"));
        incr k
      done;
      Alcotest.(check bool) "crash points were explored" true (!explored > 0))

(* ------------------------------------------------------------------ *)
(* Commit log *)

let make_clog v ~cap_words =
  let base =
    Region.Pmem.pmap v (Pmlog.Commit_log.region_bytes_for ~cap_words)
  in
  (base, Pmlog.Commit_log.create v ~base ~cap_words)

let test_clog_append_and_recover () =
  with_tmpdir (fun dir ->
      let m, v = stack dir in
      let base, log = make_clog v ~cap_words:128 in
      let r1 = [| 1L; 2L |] and r2 = [| 3L |] in
      (match Pmlog.Commit_log.append log r1 with
      | Pmlog.Commit_log.Appended span -> Alcotest.(check int) "span" 4 span
      | Pmlog.Commit_log.Full -> Alcotest.fail "Full");
      ignore (Pmlog.Commit_log.append log r2);
      let _, v' = reboot m dir in
      let _, records = Pmlog.Commit_log.attach v' ~base in
      Alcotest.check record_list "recovered" [ r1; r2 ] records)

let test_clog_missing_commit_discards () =
  with_tmpdir (fun dir ->
      let m, v = stack dir in
      let base, log = make_clog v ~cap_words:128 in
      ignore (Pmlog.Commit_log.append log [| 7L |]);
      (* Manually fabricate a record whose commit word never landed:
         write header + payload, fence, crash before the commit word. *)
      let pos = base + 64 + (8 * 3) in
      Region.Pmem.wtstore v pos (Int64.logor (Int64.shift_left 0xC3L 56) 2L);
      Region.Pmem.wtstore v (pos + 8) 8L;
      Region.Pmem.wtstore v (pos + 16) 9L;
      Region.Pmem.fence v;
      Scm.Crash.inject m;
      let _, v' = reboot m dir in
      let _, records = Pmlog.Commit_log.attach v' ~base in
      Alcotest.check record_list "uncommitted record dropped" [ [| 7L |] ]
        records)

let test_clog_wraparound () =
  with_tmpdir (fun dir ->
      let m, v = stack dir in
      let base, log = make_clog v ~cap_words:32 in
      for round = 1 to 20 do
        (match Pmlog.Commit_log.append log (Array.make 6 (Int64.of_int round))
         with
        | Pmlog.Commit_log.Appended _ -> ()
        | Pmlog.Commit_log.Full -> Alcotest.fail "Full");
        Pmlog.Commit_log.truncate_all log
      done;
      ignore (Pmlog.Commit_log.append log [| 99L |]);
      let _, v' = reboot m dir in
      let _, records = Pmlog.Commit_log.attach v' ~base in
      Alcotest.check record_list "stale pre-wrap data ignored" [ [| 99L |] ]
        records)

let () =
  Alcotest.run "log"
    [
      ( "bitstream",
        [
          Alcotest.test_case "stored_words_for" `Quick test_stored_words_for;
          Alcotest.test_case "roundtrip small" `Quick
            test_bitstream_roundtrip_small;
          QCheck_alcotest.to_alcotest prop_bitstream_roundtrip;
        ] );
      ( "rawl",
        [
          Alcotest.test_case "append and recover" `Quick
            test_rawl_append_and_recover;
          Alcotest.test_case "unflushed append lost" `Quick
            test_rawl_unflushed_append_lost;
          Alcotest.test_case "torn append detected" `Quick
            test_rawl_torn_append_detected;
          Alcotest.test_case "bit flip injection" `Quick
            test_rawl_bit_flip_injection;
          Alcotest.test_case "wraparound many passes" `Quick
            test_rawl_wraparound_many_passes;
          Alcotest.test_case "full and space accounting" `Quick
            test_rawl_full_and_space_accounting;
          Alcotest.test_case "advance head partial" `Quick
            test_rawl_advance_head_partial;
          Alcotest.test_case "double crash after recovery" `Quick
            test_rawl_double_crash_after_recovery;
          Alcotest.test_case "tornbit rotation" `Quick
            test_rawl_tornbit_rotation;
          QCheck_alcotest.to_alcotest prop_rawl_recovery_prefix;
          QCheck_alcotest.to_alcotest prop_rawl_rotation_roundtrip;
        ] );
      ( "rawl-adversarial",
        [
          Alcotest.test_case "max_record_words boundary" `Quick
            test_rawl_max_record_words_boundary;
          Alcotest.test_case "implausible length rejected" `Quick
            test_rawl_implausible_length_rejected;
          Alcotest.test_case "stale word beyond gap erased" `Quick
            test_rawl_stale_word_beyond_gap_erased;
          Alcotest.test_case "partial trailing record over wrap" `Quick
            test_rawl_partial_trailing_wrap;
          Alcotest.test_case "crash during recovery is idempotent" `Quick
            test_rawl_recovery_crash_idempotent;
        ] );
      ( "commit-log",
        [
          Alcotest.test_case "append and recover" `Quick
            test_clog_append_and_recover;
          Alcotest.test_case "missing commit discards" `Quick
            test_clog_missing_commit_discards;
          Alcotest.test_case "wraparound" `Quick test_clog_wraparound;
        ] );
    ]
