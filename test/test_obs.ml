(* Tests for the observability layer: histogram accuracy against a
   brute-force oracle, counter registry, trace-ring overflow semantics,
   Chrome JSON export round-trip, and the one-fence-per-commit
   durability guarantee of redo logging. *)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let oracle_percentile sorted p =
  let n = Array.length sorted in
  let idx = int_of_float (Float.round (p /. 100.0 *. float_of_int (n - 1))) in
  sorted.(max 0 (min (n - 1) idx))

let test_histogram_oracle () =
  let rng = Random.State.make [| 0xbeef |] in
  let h = Obs.Metrics.make_histogram "test" in
  let samples =
    Array.init 5000 (fun i ->
        (* mix of exact small values and log-spread large ones *)
        if i land 1 = 0 then Random.State.int rng 512
        else 1 lsl (9 + Random.State.int rng 20) lor Random.State.int rng 4096)
  in
  Array.iter (fun s -> Obs.Metrics.record h s) samples;
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let n = Array.length samples in
  Alcotest.(check int) "count" n (Obs.Metrics.hcount h);
  Alcotest.(check int) "sum" (Array.fold_left ( + ) 0 samples)
    (Obs.Metrics.hsum h);
  Alcotest.(check int) "min exact" sorted.(0) (Obs.Metrics.hmin h);
  Alcotest.(check int) "max exact" sorted.(n - 1) (Obs.Metrics.hmax h);
  List.iter
    (fun p ->
      let want = oracle_percentile sorted p in
      let got = Obs.Metrics.percentile h p in
      if want < 512 then
        Alcotest.(check int) (Printf.sprintf "p%.0f exact" p) want got
      else begin
        (* log-linear quantization: the bucket's lower bound, within
           1/512 relative error *)
        if got > want || want - got > (want / 512) + 1 then
          Alcotest.failf "p%.0f: got %d for oracle %d (error > 1/512)" p got
            want
      end)
    [ 0.0; 10.0; 25.0; 50.0; 75.0; 90.0; 99.0; 99.9; 100.0 ]

let test_histogram_small_exact () =
  (* every value below 2^sub_bits has its own bucket: percentiles are
     the exact order statistics *)
  let h = Obs.Metrics.make_histogram "exact" in
  for v = 100 downto 1 do
    Obs.Metrics.record h v
  done;
  (* rank round(0.5 * 99) = 50, so the 51st smallest — the same
     convention the list-backed Workload.Stats used *)
  Alcotest.(check int) "p50" 51 (Obs.Metrics.percentile h 50.0);
  Alcotest.(check int) "p0" 1 (Obs.Metrics.percentile h 0.0);
  Alcotest.(check int) "p100" 100 (Obs.Metrics.percentile h 100.0);
  Alcotest.(check (float 1e-9)) "mean" 50.5 (Obs.Metrics.hmean h)

let test_counters () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "a.b" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:41 c;
  Alcotest.(check int) "value" 42 (Obs.Metrics.counter_value c);
  (* get-or-create returns the same counter *)
  let c' = Obs.Metrics.counter m "a.b" in
  Obs.Metrics.incr c';
  Alcotest.(check int) "shared" 43 (Obs.Metrics.counter_value c);
  let names = ref [] in
  Obs.Metrics.iter_counters m (fun c ->
      names := Obs.Metrics.counter_name c :: !names);
  Alcotest.(check (list string)) "registry" [ "a.b" ] !names

(* ------------------------------------------------------------------ *)
(* Trace ring *)

let test_ring_overflow () =
  let tr = Obs.Trace.create ~capacity:8 () in
  for i = 0 to 11 do
    Obs.Trace.instant tr ~tid:0 ~ts:i Obs.Trace.Fence ~arg:i
  done;
  Alcotest.(check int) "held" 8 (Obs.Trace.length tr);
  Alcotest.(check int) "dropped" 4 (Obs.Trace.dropped tr);
  let ts = List.map (fun e -> e.Obs.Trace.ts) (Obs.Trace.events tr) in
  Alcotest.(check (list int)) "oldest dropped first" [ 4; 5; 6; 7; 8; 9; 10; 11 ]
    ts

(* ------------------------------------------------------------------ *)
(* Chrome JSON round-trip, via a minimal JSON parser *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let parse_json s =
  let pos = ref 0 in
  let peek () = s.[!pos] in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < String.length s then
      match peek () with ' ' | '\n' | '\t' | '\r' -> advance (); skip_ws ()
      | _ -> ()
  in
  let expect c =
    if peek () <> c then failwith (Printf.sprintf "expected %c at %d" c !pos);
    advance ()
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | 'n' -> Buffer.add_char buf '\n'
          | 'u' ->
              let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
              pos := !pos + 4;
              Buffer.add_char buf (Char.chr (code land 0xff))
          | c -> Buffer.add_char buf c);
          advance ();
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin advance (); Obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            if peek () = ',' then begin advance (); members ((key, v) :: acc) end
            else begin expect '}'; List.rev ((key, v) :: acc) end
          in
          Obj (members [])
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin advance (); Arr [] end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            if peek () = ',' then begin advance (); elems (v :: acc) end
            else begin expect ']'; List.rev (v :: acc) end
          in
          Arr (elems [])
        end
    | '"' -> Str (parse_string ())
    | 't' -> pos := !pos + 4; Bool true
    | 'f' -> pos := !pos + 5; Bool false
    | 'n' -> pos := !pos + 4; Null
    | _ ->
        let start = !pos in
        while !pos < String.length s
              && (match peek () with
                  | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
                  | _ -> false)
        do advance () done;
        Num (float_of_string (String.sub s start (!pos - start)))
  in
  let v = parse_value () in
  skip_ws ();
  v

let field name = function
  | Obj kvs -> List.assoc name kvs
  | _ -> failwith "not an object"

let ns_of_us = function
  | Num us -> int_of_float (Float.round (us *. 1000.0))
  | _ -> failwith "not a number"

(* ------------------------------------------------------------------ *)
(* Snapshot / JSON export *)

let test_snapshot_json () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "scm.fences" in
  Obs.Metrics.incr ~by:3 c;
  Obs.Metrics.set_gauge (Obs.Metrics.gauge m "cache.lines") (fun () -> 42);
  let h = Obs.Metrics.histogram m "lat_ns" in
  List.iter (fun v -> Obs.Metrics.record h v) [ 10; 20; 30; 40 ];
  let snap = Obs.Metrics.snapshot m in
  Alcotest.(check (list (pair string int)))
    "counters" [ ("scm.fences", 3) ] snap.Obs.Metrics.snap_counters;
  Alcotest.(check (list (pair string int)))
    "gauges sampled at snapshot time" [ ("cache.lines", 42) ]
    snap.Obs.Metrics.snap_gauges;
  (match snap.Obs.Metrics.snap_histograms with
  | [ hs ] ->
      Alcotest.(check string) "hist name" "lat_ns" hs.Obs.Metrics.hs_name;
      Alcotest.(check int) "hist count" 4 hs.Obs.Metrics.hs_count;
      Alcotest.(check int) "hist sum" 100 hs.Obs.Metrics.hs_sum;
      Alcotest.(check int) "hist min" 10 hs.Obs.Metrics.hs_min;
      Alcotest.(check int) "hist max" 40 hs.Obs.Metrics.hs_max;
      Alcotest.(check (float 1e-9)) "hist mean" 25.0 hs.Obs.Metrics.hs_mean
  | l -> Alcotest.failf "expected 1 histogram, got %d" (List.length l));
  (* the JSON document round-trips through a real parser *)
  let doc = parse_json (Obs.Metrics.to_json m) in
  (match field "scm.fences" (field "counters" doc) with
  | Num 3.0 -> ()
  | _ -> Alcotest.fail "json counter");
  (match field "cache.lines" (field "gauges" doc) with
  | Num 42.0 -> ()
  | _ -> Alcotest.fail "json gauge");
  let hist = field "lat_ns" (field "histograms" doc) in
  (match (field "count" hist, field "mean" hist) with
  | Num 4.0, Num 25.0 -> ()
  | _ -> Alcotest.fail "json histogram");
  (* OpenMetrics text: counter suffixed _total, dots sanitized *)
  let om = Obs.Metrics.to_openmetrics m in
  let contains needle =
    let n = String.length needle and hn = String.length om in
    let rec go i =
      i + n <= hn && (String.sub om i n = needle || go (i + 1))
    in
    if not (go 0) then Alcotest.failf "openmetrics missing %S in:\n%s" needle om
  in
  contains "scm_fences_total 3";
  contains "cache_lines 42";
  contains "lat_ns_count 4";
  contains "# EOF"

let test_chrome_roundtrip () =
  let tr = Obs.Trace.create () in
  Obs.Trace.complete tr ~tid:3 ~ts:1_234_567 ~dur:89 Obs.Trace.Txn_commit
    ~arg:7;
  Obs.Trace.instant tr ~tid:1 ~ts:2_000_001 Obs.Trace.Log_truncate ~arg:64;
  let doc = parse_json (Obs.Trace.to_chrome_json tr) in
  (match field "displayTimeUnit" doc with
  | Str "ns" -> ()
  | _ -> Alcotest.fail "displayTimeUnit");
  let evs = match field "traceEvents" doc with Arr l -> l | _ -> [] in
  Alcotest.(check int) "event count" 2 (List.length evs);
  let commit = List.nth evs 0 and trunc = List.nth evs 1 in
  (match field "name" commit with
  | Str "Txn_commit" -> ()
  | _ -> Alcotest.fail "name");
  (match field "ph" commit with Str "X" -> () | _ -> Alcotest.fail "ph X");
  Alcotest.(check int) "ts ns preserved" 1_234_567 (ns_of_us (field "ts" commit));
  Alcotest.(check int) "dur ns preserved" 89 (ns_of_us (field "dur" commit));
  (match field "args" commit with
  | Obj [ ("writes", Num 7.0) ] -> ()
  | _ -> Alcotest.fail "args");
  (match field "ph" trunc with Str "i" -> () | _ -> Alcotest.fail "ph i");
  Alcotest.(check int) "instant ts" 2_000_001 (ns_of_us (field "ts" trunc))

(* The causal flow stitching: a transaction id stamped into flow
   start/step/end events must survive the Chrome export as both the
   binding id and the args payload, or the arrows in the viewer would
   connect the wrong transactions. *)
let test_flow_roundtrip () =
  let tr = Obs.Trace.create () in
  Obs.Trace.flow tr ~tid:0 ~ts:100 ~phase:`Start ~id:77;
  Obs.Trace.flow tr ~tid:1 ~ts:200 ~phase:`Step ~id:77;
  Obs.Trace.flow tr ~tid:2 ~ts:300 ~phase:`End ~id:77;
  let doc = parse_json (Obs.Trace.to_chrome_json tr) in
  let evs = match field "traceEvents" doc with Arr l -> l | _ -> [] in
  Alcotest.(check int) "event count" 3 (List.length evs);
  let ph e = match field "ph" e with Str s -> s | _ -> "?" in
  Alcotest.(check (list string)) "flow phases" [ "s"; "t"; "f" ]
    (List.map ph evs);
  List.iter
    (fun e ->
      (match field "name" e with
      | Str "txn" -> ()
      | _ -> Alcotest.fail "flow name");
      (match field "cat" e with
      | Str "flow" -> ()
      | _ -> Alcotest.fail "flow cat");
      (* Chrome binds flow arrows on (cat, name, id): the id IS the
         transaction id, and it is repeated in args for hovering *)
      (match field "id" e with
      | Num 77.0 -> ()
      | _ -> Alcotest.fail "flow id = txid");
      match field "txid" (field "args" e) with
      | Num 77.0 -> ()
      | _ -> Alcotest.fail "args txid")
    evs;
  (* the end event binds to the enclosing slice *)
  (match field "bp" (List.nth evs 2) with
  | Str "e" -> ()
  | _ -> Alcotest.fail "end binding point");
  (match List.assoc_opt "bp" (match List.hd evs with Obj o -> o | _ -> []) with
  | None -> ()
  | Some _ -> Alcotest.fail "start has no binding point")

(* ------------------------------------------------------------------ *)
(* Transaction profile ledger *)

(* Top-K admission is a min-heap: feed totals in an adversarial order
   (ascending run, then descending, duplicates of the cut boundary)
   and the capture must still hold exactly the K largest, slowest
   first. *)
let test_topk_adversarial () =
  let tp = Obs.Txprof.create ~k:4 (Obs.Metrics.create ()) in
  let totals = [ 5; 100; 3; 98; 99; 1; 97; 102; 2; 98 ] in
  List.iteri
    (fun i total ->
      let phases = Array.make Obs.Txprof.nphases 0 in
      phases.(Obs.Txprof.ph_exec) <- total;
      Obs.Txprof.record tp ~txid:(i + 1) ~tid:0 ~start_ts:0 ~total_ns:total
        ~retries:0 ~bytes_logged:0 ~writes:0 ~phases)
    totals;
  Alcotest.(check int) "count sees everything" (List.length totals)
    (Obs.Txprof.count tp);
  Alcotest.(check int) "capture is bounded" 4 (Obs.Txprof.captured tp);
  let got = List.map (fun e -> e.Obs.Txprof.total_ns) (Obs.Txprof.top tp) in
  Alcotest.(check (list int)) "four largest, slowest first"
    [ 102; 100; 99; 98 ] got

(* ------------------------------------------------------------------ *)
(* Integration: redo logging commits with exactly one fence *)

let with_tmpdir f =
  let dir = Filename.temp_file "mnemobs" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun name -> Sys.remove (Filename.concat dir name))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_one_fence_per_commit () =
  with_tmpdir (fun dir ->
      let m = Scm.Env.make_machine ~seed:3 ~nframes:4096 () in
      let backing = Region.Backing_store.open_dir dir in
      let pmem = Region.Pmem.open_instance m backing in
      let config =
        {
          Mtm.Txn.default_config with
          nthreads = 1;
          log_cap_words = 4096;
          truncation = Mtm.Txn.Async;
        }
      in
      let pool = Mtm.Txn.create_pool ~config pmem None in
      let v = Region.Pmem.default_view pmem in
      let slot = Region.Pstatic.get v "test.data" 8 in
      let base = Region.Pmem.pmap v 4096 in
      Region.Pmem.wtstore v slot (Int64.of_int base);
      Region.Pmem.fence v;
      (* fault the data page in now, or commit write-back would take a
         demand fault whose durable mapping-table update also fences *)
      ignore (Region.Pmem.load v base);
      let th = Mtm.Txn.thread pool 0 v.env in
      (* all the setup fences and faults are behind us: watch one commit *)
      let obs = Mtm.Txn.obs pool in
      Obs.enable_trace obs;
      Mtm.Txn.run th (fun tx ->
          Mtm.Txn.store tx base 1L;
          Mtm.Txn.store tx (base + 8) 2L;
          Mtm.Txn.store tx (base + 16) 3L);
      let events =
        match obs.Obs.trace with
        | Some tr -> Obs.Trace.events tr
        | None -> []
      in
      let count k =
        List.length (List.filter (fun e -> e.Obs.Trace.kind = k) events)
      in
      (* the durability point of lazy redo logging is the single tornbit
         flush+fence after the log append (paper section 5); with async
         truncation nothing else orders *)
      Alcotest.(check int) "exactly one fence" 1 (count Obs.Trace.Fence);
      Alcotest.(check int) "one commit" 1 (count Obs.Trace.Txn_commit);
      Alcotest.(check int) "one log append" 1 (count Obs.Trace.Log_append);
      let s = Mtm.Txn.stats pool in
      Alcotest.(check int) "committed" 1 s.Mtm.Txn.commits)

(* Shared pool setup for the profiling tests: one simulated machine,
   one instance, a mapped data page, [nthreads] transaction threads. *)
let with_pool ?(nthreads = 1) dir f =
  let m = Scm.Env.make_machine ~seed:7 ~nframes:4096 () in
  let backing = Region.Backing_store.open_dir dir in
  let pmem = Region.Pmem.open_instance m backing in
  let config =
    {
      Mtm.Txn.default_config with
      nthreads;
      log_cap_words = 4096;
      truncation = Mtm.Txn.Async;
    }
  in
  let pool = Mtm.Txn.create_pool ~config pmem None in
  let v = Region.Pmem.default_view pmem in
  let base = Region.Pmem.pmap v 4096 in
  ignore (Region.Pmem.load v base);
  f pool v base

(* The mark-chain invariant: the instrumented commit path advances one
   thread-local mark through the phase boundaries, attributing every
   interval to exactly one phase — so each ledger entry's phase sum
   must equal its total duration exactly, not just account for 95% of
   it. *)
let test_phase_sum_invariant () =
  with_tmpdir (fun dir ->
      with_pool dir (fun pool v base ->
          let tp =
            Obs.Txprof.create (Mtm.Txn.obs pool).Obs.metrics
          in
          Mtm.Txn.set_txprof pool (Some tp);
          let th = Mtm.Txn.thread pool 0 v.env in
          let n = 20 in
          for i = 1 to n do
            Mtm.Txn.run th (fun tx ->
                (* vary the write-set size so totals differ *)
                for w = 0 to i mod 5 do
                  Mtm.Txn.store tx (base + (8 * w)) (Int64.of_int i)
                done)
          done;
          Alcotest.(check int) "every commit recorded" n (Obs.Txprof.count tp);
          Alcotest.(check int) "tail captured" (min n (Obs.Txprof.k tp))
            (Obs.Txprof.captured tp);
          List.iter
            (fun e ->
              if e.Obs.Txprof.total_ns <= 0 then
                Alcotest.failf "txid %d: empty duration" e.Obs.Txprof.txid;
              if Obs.Txprof.phase_sum e <> e.Obs.Txprof.total_ns then
                Alcotest.failf
                  "txid %d: phase sum %d <> total %d (unattributed time)"
                  e.Obs.Txprof.txid (Obs.Txprof.phase_sum e)
                  e.Obs.Txprof.total_ns;
              if e.Obs.Txprof.txid <= 0 || e.Obs.Txprof.txid > n then
                Alcotest.failf "txid %d out of range" e.Obs.Txprof.txid)
            (Obs.Txprof.top tp);
          (* the phase histograms fed one sample per commit *)
          Alcotest.(check int) "total histogram count" n
            (Obs.Metrics.hcount (Obs.Txprof.total_histogram tp));
          (* the always-on flight ring saw the run without tracing *)
          let dump = Obs.flight_dump (Mtm.Txn.obs pool) in
          let contains needle =
            let nl = String.length needle and hl = String.length dump in
            let rec go i =
              i + nl <= hl && (String.sub dump i nl = needle || go (i + 1))
            in
            if not (go 0) then
              Alcotest.failf "flight dump missing %S in:\n%s" needle dump
          in
          contains "Txn_commit";
          contains "Flow_start"))

(* Regression: log-full stall time is charged to exactly one phase of
   the transaction that suffered it.  The stall accumulator lives on
   the thread and is drained by the instrumented commit path; a stall
   served while no profiler was installed must not leak into the first
   instrumented commit — [run] resets the accumulator unconditionally,
   not only when a ledger is attached.  The leak shows up as a phase
   sum exceeding the entry's total. *)
let test_stall_not_leaked_across_install () =
  with_tmpdir (fun dir ->
      let m = Scm.Env.make_machine ~seed:7 ~nframes:4096 () in
      let backing = Region.Backing_store.open_dir dir in
      let pmem = Region.Pmem.open_instance m backing in
      let config =
        {
          Mtm.Txn.default_config with
          nthreads = 1;
          truncation = Mtm.Txn.Async;
          log_cap_words = 64;
        }
      in
      let pool = Mtm.Txn.create_pool ~config pmem None in
      let v = Region.Pmem.default_view pmem in
      let base = Region.Pmem.pmap v 65536 in
      ignore (Region.Pmem.load v base);
      let th = Mtm.Txn.thread pool 0 v.env in
      (* fill the 64-word log until the producer stalls and
         self-drains, repeatedly — all before any profiler exists *)
      for k = 0 to 19 do
        Mtm.Txn.run th (fun tx ->
            for j = 0 to 3 do
              Mtm.Txn.store tx (base + (k * 256) + (j * 8)) 1L
            done)
      done;
      let tp = Obs.Txprof.create (Mtm.Txn.obs pool).Obs.metrics in
      Mtm.Txn.set_txprof pool (Some tp);
      Mtm.Txn.run th (fun tx -> Mtm.Txn.store tx base 9L);
      Alcotest.(check int) "one instrumented commit" 1 (Obs.Txprof.count tp);
      List.iter
        (fun e ->
          if Obs.Txprof.phase_sum e <> e.Obs.Txprof.total_ns then
            Alcotest.failf
              "pre-install stall leaked into the ledger: phase sum %d <> \
               total %d (trunc_wait %d)"
              (Obs.Txprof.phase_sum e) e.Obs.Txprof.total_ns
              e.Obs.Txprof.phases.(Obs.Txprof.ph_trunc_wait))
        (Obs.Txprof.top tp))

(* The pipelined commit's ninth phase: time blocked in the in-flight
   window (backpressure waiting for — or inline running — the deferred
   write-back drain) is charged to [ph_drain_wait], and the mark chain
   still partitions the commit exactly: phase sum == total for every
   entry.  A 1-deep window with no drainer daemon forces every commit
   after the first through the backpressure path. *)
let test_drain_wait_phase () =
  with_tmpdir (fun dir ->
      let m = Scm.Env.make_machine ~seed:7 ~nframes:4096 () in
      let backing = Region.Backing_store.open_dir dir in
      let pmem = Region.Pmem.open_instance m backing in
      let config =
        {
          Mtm.Txn.default_config with
          nthreads = 1;
          log_cap_words = 4096;
          pipeline = true;
          pipe_window = 1;
        }
      in
      let pool = Mtm.Txn.create_pool ~config pmem None in
      let v = Region.Pmem.default_view pmem in
      let base = Region.Pmem.pmap v 4096 in
      ignore (Region.Pmem.load v base);
      let tp = Obs.Txprof.create (Mtm.Txn.obs pool).Obs.metrics in
      Mtm.Txn.set_txprof pool (Some tp);
      let th = Mtm.Txn.thread pool 0 v.env in
      let n = 10 in
      for i = 1 to n do
        Mtm.Txn.run th (fun tx ->
            for w = 0 to 3 do
              Mtm.Txn.store tx (base + (8 * w)) (Int64.of_int i)
            done)
      done;
      Alcotest.(check int) "every commit recorded" n (Obs.Txprof.count tp);
      let drain_wait = ref 0 in
      List.iter
        (fun e ->
          drain_wait := !drain_wait + e.Obs.Txprof.phases.(Obs.Txprof.ph_drain_wait);
          if Obs.Txprof.phase_sum e <> e.Obs.Txprof.total_ns then
            Alcotest.failf
              "txid %d: phase sum %d <> total %d (drain_wait %d \
               unattributed)"
              e.Obs.Txprof.txid (Obs.Txprof.phase_sum e)
              e.Obs.Txprof.total_ns
              e.Obs.Txprof.phases.(Obs.Txprof.ph_drain_wait))
        (Obs.Txprof.top tp);
      Alcotest.(check bool) "backpressure time lands in drain_wait" true
        (!drain_wait > 0))

(* The compound case the two previous tests take separately (ISSUE 9,
   satellite 2): one commit whose append stalls on a full log
   ([ph_trunc_wait], subtracted from the log phase) AND whose push then
   blocks in the in-flight window ([ph_drain_wait]) — the regime a
   serving workload hits under a real drainer daemon.  Construction: a
   1-deep window over a log that fits exactly one wide record, with a
   daemon on the simulator.  Commit 1 pushes and backpressures; the
   daemon pops the queue and starts flushing its 16 data lines, so
   commit 2's append finds the log full with the head not yet advanced
   (empty queue, [draining] set) — the stall path — and its own push
   then waits for the daemon again.  Both phases land in one ledger
   entry, and the mark chain must still partition the commit exactly:
   any double-count (the stall charged to trunc_wait but not subtracted
   from the log phase, or drain-wait overlapping it) breaks
   phase_sum == total. *)
let test_stall_and_drain_wait_same_commit () =
  with_tmpdir (fun dir ->
      let m = Scm.Env.make_machine ~seed:7 ~nframes:4096 () in
      let backing = Region.Backing_store.open_dir dir in
      let pmem = Region.Pmem.open_instance m backing in
      let config =
        {
          Mtm.Txn.default_config with
          nthreads = 1;
          (* one 16-write record (36 stored words) fits; nothing more *)
          log_cap_words = 40;
          pipeline = true;
          pipe_window = 1;
        }
      in
      let pool = Mtm.Txn.create_pool ~config pmem None in
      let v = Region.Pmem.default_view pmem in
      let base = Region.Pmem.pmap v 4096 in
      ignore (Region.Pmem.load v base);
      let tp = Obs.Txprof.create (Mtm.Txn.obs pool).Obs.metrics in
      Mtm.Txn.set_txprof pool (Some tp);
      let sim = Sim.create () in
      let sim_env =
        Scm.Env.view m
          ~delay:(fun ns -> Sim.delay sim ns)
          ~now:(fun () -> Sim.now sim)
      in
      Sim.spawn sim (fun () ->
          let th = Mtm.Txn.thread pool 0 sim_env in
          let dview = Region.Pmem.view (Mtm.Txn.pmem pool) sim_env in
          let svc =
            Sim.Service.spawn sim ~work:(fun () ->
                Mtm.Txn.drain_pipeline pool dview)
          in
          Mtm.Txn.set_drain_wake pool
            (Some (fun _tid -> Sim.Service.wake svc));
          let wide i =
            Mtm.Txn.run th (fun tx ->
                (* 16 distinct cache lines: the daemon's write-back
                   sweep is long enough to still be in flight when the
                   next append runs *)
                for w = 0 to 15 do
                  Mtm.Txn.store tx (base + (64 * w)) (Int64.of_int i)
                done)
          in
          wide 1;
          wide 2;
          Sim.Service.stop svc);
      Sim.run sim;
      Alcotest.(check int) "commits recorded" 2 (Obs.Txprof.count tp);
      Alcotest.(check int) "the second commit stalled" 1
        (Mtm.Txn.stats pool).Mtm.Txn.log_full_stalls;
      let compound = ref false in
      List.iter
        (fun e ->
          let stall = e.Obs.Txprof.phases.(Obs.Txprof.ph_trunc_wait) in
          let dwait = e.Obs.Txprof.phases.(Obs.Txprof.ph_drain_wait) in
          if stall > 0 && dwait > 0 then compound := true;
          if Obs.Txprof.phase_sum e <> e.Obs.Txprof.total_ns then
            Alcotest.failf
              "txid %d: phase sum %d <> total %d (trunc_wait %d, \
               drain_wait %d: stall/drain-wait double-count)"
              e.Obs.Txprof.txid (Obs.Txprof.phase_sum e)
              e.Obs.Txprof.total_ns stall dwait)
        (Obs.Txprof.top tp);
      Alcotest.(check bool) "one commit carries both phases" true !compound)

(* The disabled path must stay allocation-free: with no trace and no
   ledger installed every hook is one branch, and a commit's footprint
   stays within the perf baseline's minor-words budget. *)
let test_disabled_path_allocation () =
  with_tmpdir (fun dir ->
      with_pool dir (fun pool v base ->
          Alcotest.(check bool) "profiling off" true
            (Mtm.Txn.txprof pool = None);
          let th = Mtm.Txn.thread pool 0 v.env in
          let commit i =
            Mtm.Txn.run th (fun tx ->
                Mtm.Txn.store tx base (Int64.of_int i);
                Mtm.Txn.store tx (base + 8) (Int64.of_int (i * 3)))
          in
          (* warm up: first commits pay one-time cache/log growth *)
          for i = 1 to 100 do
            commit i
          done;
          let n = 500 in
          let before = Gc.minor_words () in
          for i = 1 to n do
            commit i
          done;
          let per_commit = (Gc.minor_words () -. before) /. float_of_int n in
          if per_commit > 512.0 then
            Alcotest.failf "disabled path allocates %.1f minor words/commit"
              per_commit))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "histogram vs oracle" `Quick
            test_histogram_oracle;
          Alcotest.test_case "small values exact" `Quick
            test_histogram_small_exact;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "snapshot and json export" `Quick
            test_snapshot_json;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring overflow" `Quick test_ring_overflow;
          Alcotest.test_case "chrome json round-trip" `Quick
            test_chrome_roundtrip;
          Alcotest.test_case "flow events carry txid" `Quick
            test_flow_roundtrip;
        ] );
      ( "txprof",
        [
          Alcotest.test_case "top-k adversarial order" `Quick
            test_topk_adversarial;
          Alcotest.test_case "phase sum equals duration" `Quick
            test_phase_sum_invariant;
          Alcotest.test_case "stall not leaked across install" `Quick
            test_stall_not_leaked_across_install;
          Alcotest.test_case "stall and drain wait in one commit" `Quick
            test_stall_and_drain_wait_same_commit;
          Alcotest.test_case "drain wait phase partitions exactly" `Quick
            test_drain_wait_phase;
        ] );
      ( "integration",
        [
          Alcotest.test_case "one fence per redo commit" `Quick
            test_one_fence_per_commit;
          Alcotest.test_case "disabled path stays allocation-free" `Quick
            test_disabled_path_allocation;
        ] );
    ]
