(* Unit and property tests for the SCM substrate: device, cache,
   write-combining buffers, primitives and crash injection. *)

open Scm

let machine ?latency ?cache_capacity_lines ?(nframes = 64) () =
  Env.make_machine ?latency ?cache_capacity_lines ~seed:7 ~nframes ()

(* ------------------------------------------------------------------ *)
(* Device *)

let test_device_roundtrip () =
  let dev = Scm_device.create ~nframes:4 () in
  Scm_device.store64 dev 0 42L;
  Scm_device.store64 dev 8 (-1L);
  Scm_device.store64 dev (4 * 4096 - 8) 7L;
  Alcotest.(check int64) "word 0" 42L (Scm_device.load64 dev 0);
  Alcotest.(check int64) "word 1" (-1L) (Scm_device.load64 dev 8);
  Alcotest.(check int64) "last" 7L (Scm_device.load64 dev (4 * 4096 - 8))

let test_device_bounds () =
  let dev = Scm_device.create ~nframes:1 () in
  Alcotest.check_raises "oob" (Invalid_argument "Scm_device: address 0x1000+8 out of range")
    (fun () -> ignore (Scm_device.load64 dev 4096));
  Alcotest.check_raises "unaligned"
    (Invalid_argument "Scm_device.store64: unaligned 0x4") (fun () ->
      Scm_device.store64 dev 4 0L)

let test_device_wear_counters () =
  let dev = Scm_device.create ~nframes:2 () in
  Scm_device.store64 dev 0 1L;
  Scm_device.store64 dev 8 1L;
  Scm_device.store64 dev 4096 1L;
  Alcotest.(check int) "frame 0 writes" 2 (Scm_device.write_count dev 0);
  Alcotest.(check int) "frame 1 writes" 1 (Scm_device.write_count dev 1);
  Alcotest.(check int) "total" 3 (Scm_device.total_writes dev)

let test_device_image_roundtrip () =
  let dev = Scm_device.create ~nframes:3 () in
  for i = 0 to 100 do
    Scm_device.store64 dev (i * 8) (Int64.of_int (i * i))
  done;
  let path = Filename.temp_file "scm" ".img" in
  Scm_device.save_image dev path;
  let dev' = Scm_device.load_image path in
  Sys.remove path;
  Alcotest.(check int) "nframes" 3 (Scm_device.nframes dev');
  for i = 0 to 100 do
    Alcotest.(check int64)
      (Printf.sprintf "word %d" i)
      (Int64.of_int (i * i))
      (Scm_device.load64 dev' (i * 8))
  done

(* ------------------------------------------------------------------ *)
(* Cache *)

let test_cache_write_back_on_flush () =
  let m = machine () in
  Cache.write_word m.cache 0 99L;
  Alcotest.(check int64) "device still zero" 0L (Scm_device.load64 m.dev 0);
  Alcotest.(check int64) "cache sees it" 99L (Cache.read_word m.cache 0);
  Alcotest.(check bool) "dirty flush" true (Cache.flush_line m.cache 0);
  Alcotest.(check int64) "device updated" 99L (Scm_device.load64 m.dev 0);
  Alcotest.(check bool) "clean flush" false (Cache.flush_line m.cache 0)

let test_cache_eviction_writes_back () =
  (* A 4-line cache forced over capacity must evict (persisting dirty
     victims) while keeping every read coherent. *)
  let m = machine ~cache_capacity_lines:4 () in
  for i = 0 to 63 do
    Cache.write_word m.cache (i * 64) (Int64.of_int i)
  done;
  Alcotest.(check bool) "evictions happened" true (Cache.evictions m.cache > 0);
  for i = 0 to 63 do
    Alcotest.(check int64)
      (Printf.sprintf "line %d" i)
      (Int64.of_int i)
      (Cache.read_word m.cache (i * 64))
  done

let test_cache_byte_range_spanning_lines () =
  let m = machine () in
  let data = Bytes.init 200 (fun i -> Char.chr (i mod 256)) in
  Cache.write_from m.cache 30 data 0 200;
  let back = Bytes.create 200 in
  Cache.read_into m.cache 30 back 0 200;
  Alcotest.(check bytes) "roundtrip across lines" data back

let test_cache_dirty_lines_listing () =
  let m = machine () in
  Cache.write_word m.cache 0 1L;
  Cache.write_word m.cache 128 1L;
  ignore (Cache.read_word m.cache 256);
  Alcotest.(check (list int)) "dirty lines" [ 0; 128 ]
    (Cache.dirty_lines m.cache)

(* ------------------------------------------------------------------ *)
(* Write-combining buffer *)

let test_wc_forwarding_and_drain () =
  let dev = Scm_device.create ~nframes:1 () in
  let wc = Wc_buffer.create dev in
  Wc_buffer.post wc 0 1L;
  Wc_buffer.post wc 0 2L;
  Wc_buffer.post wc 8 3L;
  Alcotest.(check (option int64)) "forwards newest" (Some 2L)
    (Wc_buffer.lookup wc 0);
  Alcotest.(check int) "pending" 3 (Wc_buffer.pending_words wc);
  Alcotest.(check int64) "device untouched" 0L (Scm_device.load64 dev 0);
  Wc_buffer.drain wc;
  Alcotest.(check int64) "after drain w0" 2L (Scm_device.load64 dev 0);
  Alcotest.(check int64) "after drain w1" 3L (Scm_device.load64 dev 8);
  Alcotest.(check int) "empty" 0 (Wc_buffer.pending_words wc)

let test_wc_crash_subset_is_partial () =
  (* With many pending words and a random subset applied, the device
     must end with each word either old or new — and over a seeded run,
     both outcomes must occur somewhere. *)
  let dev = Scm_device.create ~nframes:1 () in
  let wc = Wc_buffer.create dev in
  for i = 0 to 99 do
    Wc_buffer.post wc (i * 8) 0xdeadL
  done;
  let rng = Random.State.make [| 3 |] in
  let applied = Wc_buffer.crash_apply_subset wc rng in
  Alcotest.(check bool) "some applied" true (applied > 0);
  Alcotest.(check bool) "some lost" true (applied < 100);
  let seen_new = ref 0 and seen_old = ref 0 in
  for i = 0 to 99 do
    match Scm_device.load64 dev (i * 8) with
    | 0xdeadL -> incr seen_new
    | 0L -> incr seen_old
    | other -> Alcotest.failf "torn word? %Ld" other
  done;
  Alcotest.(check int) "accounting" 100 (!seen_new + !seen_old);
  Alcotest.(check int) "applied count matches" applied !seen_new

(* ------------------------------------------------------------------ *)
(* Primitives *)

let test_store_volatile_until_persist () =
  let m = machine () in
  let env = Env.standalone m in
  Primitives.store env 0 77L;
  Alcotest.(check int64) "load sees store" 77L (Primitives.load env 0);
  Alcotest.(check int64) "device does not" 0L (Scm_device.load64 m.dev 0);
  Primitives.flush env 0;
  Primitives.fence env;
  Alcotest.(check int64) "durable after flush+fence" 77L
    (Scm_device.load64 m.dev 0)

let test_wtstore_durable_after_fence () =
  let m = machine () in
  let env = Env.standalone m in
  Primitives.wtstore env 64 5L;
  Alcotest.(check int64) "forwarded to own loads" 5L (Primitives.load env 64);
  Alcotest.(check int64) "not yet durable" 0L (Scm_device.load64 m.dev 64);
  Primitives.fence env;
  Alcotest.(check int64) "durable" 5L (Scm_device.load64 m.dev 64)

let test_wtstore_after_cached_store () =
  (* A dirty cached line followed by a streaming store to the same line
     must not lose either write. *)
  let m = machine () in
  let env = Env.standalone m in
  Primitives.store env 0 10L;
  Primitives.wtstore env 8 20L;
  Primitives.fence env;
  Alcotest.(check int64) "cached word persisted by movnt path" 10L
    (Scm_device.load64 m.dev 0);
  Alcotest.(check int64) "streamed word" 20L (Scm_device.load64 m.dev 8);
  Alcotest.(check int64) "load w0" 10L (Primitives.load env 0);
  Alcotest.(check int64) "load w1" 20L (Primitives.load env 8)

let test_latency_charges () =
  let m = machine () in
  let env = Env.standalone m in
  let t0 = Env.elapsed_ns env in
  Primitives.store env 0 1L;
  let t1 = Env.elapsed_ns env in
  Alcotest.(check bool) "store is cheap" true (t1 - t0 < 10);
  Primitives.flush env 0;
  let t2 = Env.elapsed_ns env in
  Alcotest.(check bool) "dirty flush costs a PCM write" true
    (t2 - t1 >= Latency_model.default.pcm_write_ns);
  Primitives.wtstore env 64 1L;
  Primitives.fence env;
  let t3 = Env.elapsed_ns env in
  Alcotest.(check bool) "fence with pending writes costs a PCM write" true
    (t3 - t2 >= Latency_model.default.pcm_write_ns)

let test_fence_bandwidth_model () =
  let lat = Latency_model.default in
  Alcotest.(check int) "small drain floors at latency" lat.pcm_write_ns
    (Latency_model.streaming_write_ns lat 64);
  (* 1 MiB at 4096 bytes/us = 256 us *)
  Alcotest.(check int) "large drain is bandwidth-bound" 256_000
    (Latency_model.streaming_write_ns lat (1024 * 1024))

let test_persist_range () =
  let m = machine () in
  let env = Env.standalone m in
  let data = Bytes.make 300 'x' in
  Primitives.store_bytes env 40 data 0 300;
  Primitives.persist env 40 300;
  let back = Bytes.create 300 in
  Scm_device.read_into m.dev 40 back 0 300;
  Alcotest.(check bytes) "range durable" data back

(* ------------------------------------------------------------------ *)
(* Crash injection *)

let test_crash_drops_unflushed () =
  let m = machine () in
  let env = Env.standalone m in
  Primitives.store env 0 123L;
  Crash.inject ~policy:{ cache = Crash.Drop_dirty; wc = Crash.Wc_drop } m;
  Alcotest.(check int64) "cached store lost" 0L (Scm_device.load64 m.dev 0);
  ignore env

let test_crash_preserves_persisted () =
  let m = machine () in
  let env = Env.standalone m in
  Primitives.store env 0 123L;
  Primitives.flush env 0;
  Primitives.fence env;
  Primitives.store env 64 456L;  (* never persisted *)
  Crash.inject ~policy:{ cache = Crash.Drop_dirty; wc = Crash.Wc_drop } m;
  Alcotest.(check int64) "persisted survives" 123L (Scm_device.load64 m.dev 0);
  Alcotest.(check int64) "unpersisted lost" 0L (Scm_device.load64 m.dev 64)

let test_crash_random_eviction_policy () =
  let m = machine () in
  let env = Env.standalone m in
  for i = 0 to 199 do
    Primitives.store env (i * 64) 1L
  done;
  Crash.inject
    ~policy:{ cache = Crash.Evict_random 0.5; wc = Crash.Wc_drop }
    m;
  let survived = ref 0 in
  for i = 0 to 199 do
    if Scm_device.load64 m.dev (i * 64) = 1L then incr survived
  done;
  Alcotest.(check bool) "some lines evicted pre-crash" true (!survived > 0);
  Alcotest.(check bool) "some lines lost" true (!survived < 200)

(* ------------------------------------------------------------------ *)
(* Crash points *)

(* A small fixed op sequence: streaming stores, a fence, a cached store
   pushed out through a write-back. *)
let crashpoint_workload env =
  Primitives.wtstore env 0 1L;
  Primitives.wtstore env 8 2L;
  Primitives.fence env;
  Primitives.store env 64 3L;
  Primitives.persist env 64 8

let test_crashpoint_counts_deterministically () =
  let count_once () =
    let cp = Crashpoint.create () in
    let m = Env.make_machine ~seed:7 ~nframes:64 ~crash_point:cp () in
    crashpoint_workload (Env.standalone m);
    Crashpoint.count cp
  in
  let n = count_once () in
  Alcotest.(check bool) "several ops ticked" true (n >= 4);
  Alcotest.(check int) "identical re-run, identical count" n (count_once ())

let test_crashpoint_fires_at_every_index () =
  let cp0 = Crashpoint.create () in
  let m0 = Env.make_machine ~seed:7 ~nframes:64 ~crash_point:cp0 () in
  crashpoint_workload (Env.standalone m0);
  let n = Crashpoint.count cp0 in
  for k = 1 to n do
    let cp = Crashpoint.create () in
    Crashpoint.arm cp ~at:k;
    let m = Env.make_machine ~seed:7 ~nframes:64 ~crash_point:cp () in
    let env = Env.standalone m in
    (match crashpoint_workload env with
    | () -> Alcotest.failf "armed at op %d but the workload completed" k
    | exception Crashpoint.Simulated_crash { op; _ } ->
        Alcotest.(check int) "fires exactly at its index" k op;
        Alcotest.(check bool) "latched" true (Crashpoint.crashed cp));
    (* the machine is dead: every further persistence op must re-raise,
       so no cleanup path can leak writes past the crash *)
    (match Primitives.wtstore env 16 9L with
    | () -> Alcotest.fail "op after the crash did not re-raise"
    | exception Crashpoint.Simulated_crash _ -> ());
    (* crash injection itself must go through (it disarms first) *)
    Crash.inject m
  done

let test_crashpoint_arm_validation () =
  let cp = Crashpoint.create () in
  Alcotest.check_raises "index 0 rejected"
    (Invalid_argument "Crashpoint.arm: op indices start at 1") (fun () ->
      Crashpoint.arm cp ~at:0);
  Crashpoint.arm cp ~at:3;
  Alcotest.(check (option int)) "armed" (Some 3) (Crashpoint.target cp);
  Crashpoint.disarm cp;
  Alcotest.(check (option int)) "disarmed" None (Crashpoint.target cp);
  (* disarmed ticking never raises *)
  let m = Env.make_machine ~seed:7 ~nframes:64 ~crash_point:cp () in
  crashpoint_workload (Env.standalone m);
  Alcotest.(check bool) "not crashed" false (Crashpoint.crashed cp)

(* ------------------------------------------------------------------ *)
(* Eviction-sequence determinism *)

(* The array-backed cache rewrite pinned the eviction semantics of the
   original Hashtbl implementation: the victim is drawn uniformly from
   a dense insertion-ordered array of resident line addresses
   (append on fill, swap-remove on removal), and the rng is consumed
   only for that draw.  Mirror that reference model here, drive both
   through an identical op mix, and require the observed victim
   sequence (Cache_evict trace instants) to match the model's op for
   op — the property that keeps crash-point indices stable across
   cache reimplementations. *)
let test_cache_eviction_sequence_matches_model () =
  let cap = 8 in
  let obs = Obs.create ~tracing:true () in
  let m =
    Env.make_machine ~seed:7 ~obs ~cache_capacity_lines:cap ~nframes:4 ()
  in
  (* Reference model state: resident bases + an identically seeded rng
     (Cache.create seeds its rng from the machine seed). *)
  let rng = Random.State.make [| 7 |] in
  let members = Array.make cap (-1) in
  let nmembers = ref 0 in
  let expected = ref [] in
  let m_find base =
    let r = ref (-1) in
    for i = 0 to !nmembers - 1 do
      if members.(i) = base then r := i
    done;
    !r
  in
  let m_remove_at i =
    members.(i) <- members.(!nmembers - 1);
    decr nmembers
  in
  let m_touch base =
    if m_find base < 0 then begin
      if !nmembers >= cap then begin
        let i = Random.State.int rng !nmembers in
        expected := members.(i) :: !expected;
        m_remove_at i
      end;
      members.(!nmembers) <- base;
      incr nmembers
    end
  in
  let m_drop base =
    let i = m_find base in
    if i >= 0 then m_remove_at i
  in
  let x = ref 123456789 in
  for _ = 1 to 4000 do
    x := ((!x * 1103515245) + 12345) land 0x3FFFFFFF;
    let addr = !x mod 128 * 64 in
    match !x lsr 8 land 3 with
    | 0 ->
        ignore (Cache.read_word m.cache addr);
        m_touch addr
    | 1 ->
        Cache.write_word m.cache addr (Int64.of_int !x);
        m_touch addr
    | 2 ->
        ignore (Cache.flush_line m.cache addr);
        m_drop addr
    | _ ->
        Cache.wt_invalidate m.cache addr;
        m_drop addr
  done;
  let actual =
    match obs.Obs.trace with
    | None -> Alcotest.fail "tracing was enabled"
    | Some tr ->
        List.filter_map
          (fun (e : Obs.Trace.event) ->
            if e.kind = Obs.Trace.Cache_evict then Some e.arg else None)
          (Obs.Trace.events tr)
  in
  Alcotest.(check bool)
    "workload actually evicts" true
    (List.length actual > 100);
  Alcotest.(check (list int))
    "victim sequence matches the reference model" (List.rev !expected) actual

(* ------------------------------------------------------------------ *)
(* Device undo journal *)

let test_device_journal_restores_snapshot () =
  let dev = Scm_device.create ~nframes:4 () in
  for i = 0 to 99 do
    Scm_device.store64 dev (i * 8) (Int64.of_int (i * 3))
  done;
  Scm_device.journal_start dev;
  let mark = Scm_device.journal_mark dev in
  let snap = Scm_device.copy dev in
  (* Mutate through every journaled path: checked and unchecked word
     stores plus a multi-byte line write. *)
  for i = 0 to 49 do
    Scm_device.store64 dev (i * 16) (-1L)
  done;
  Scm_device.store64_unchecked dev 4096 7L;
  let line = Bytes.make 64 '\xab' in
  Scm_device.write_from dev 8192 line 0 64;
  Alcotest.(check bool) "state diverged" true
    (Scm_device.load64 dev 0 <> Scm_device.load64 snap 0);
  Scm_device.journal_undo_to dev mark;
  for i = 0 to (4 * 4096 / 8) - 1 do
    if Scm_device.load64 dev (i * 8) <> Scm_device.load64 snap (i * 8) then
      Alcotest.failf "word %d differs after undo" i
  done;
  for f = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "frame %d wear restored" f)
      (Scm_device.write_count snap f)
      (Scm_device.write_count dev f)
  done;
  Alcotest.(check int) "total writes restored"
    (Scm_device.total_writes snap)
    (Scm_device.total_writes dev)

let test_device_journal_nested_marks () =
  let dev = Scm_device.create ~nframes:1 () in
  Scm_device.journal_start dev;
  let m0 = Scm_device.journal_mark dev in
  Scm_device.store64 dev 0 1L;
  let m1 = Scm_device.journal_mark dev in
  Scm_device.store64 dev 0 2L;
  Scm_device.store64 dev 8 3L;
  Scm_device.journal_undo_to dev m1;
  Alcotest.(check int64) "inner undo keeps outer write" 1L
    (Scm_device.load64 dev 0);
  Alcotest.(check int64) "inner undo reverts" 0L (Scm_device.load64 dev 8);
  Alcotest.(check int) "wear rewound to mark" 1 (Scm_device.total_writes dev);
  (* the journal can keep recording after an undo *)
  Scm_device.store64 dev 16 9L;
  Scm_device.journal_undo_to dev m0;
  Alcotest.(check int64) "outer undo reverts everything" 0L
    (Scm_device.load64 dev 0);
  Alcotest.(check int64) "outer undo reverts the re-write" 0L
    (Scm_device.load64 dev 16);
  Alcotest.(check int) "wear fully rewound" 0 (Scm_device.total_writes dev);
  Scm_device.journal_stop dev

(* ------------------------------------------------------------------ *)
(* Word helpers *)

let test_word_bits () =
  Alcotest.(check bool) "bit set" true (Word.bit 0x8000000000000000L 63);
  Alcotest.(check bool) "bit clear" false (Word.bit 0x7fffffffffffffffL 63);
  Alcotest.(check int64) "set bit 63" Int64.min_int (Word.set_bit 0L 63 true);
  Alcotest.(check int64) "clear bit 0" 2L (Word.set_bit 3L 0 false)

let test_word_string_chunks () =
  let s = "hello, world" in
  let w0 = Word.of_string_chunk s 0 in
  let buf = Bytes.create 8 in
  Word.blit_to_bytes w0 buf 0 8;
  Alcotest.(check string) "first 8 bytes" "hello, w"
    (Bytes.to_string buf)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_cache_coherence =
  (* Arbitrary interleavings of stores, loads, flushes and evictions
     must keep loads returning the last store to each word. *)
  QCheck.Test.make ~name:"cache coherence under random ops" ~count:100
    QCheck.(list (pair (int_bound 63) (int_bound 1000)))
    (fun ops ->
      let m = machine ~cache_capacity_lines:8 ~nframes:1 () in
      let env = Env.standalone m in
      let model = Array.make 64 0L in
      List.iter
        (fun (slot, v) ->
          let addr = slot * 8 in
          if v mod 5 = 0 then Primitives.flush env addr
          else begin
            let value = Int64.of_int v in
            if v mod 3 = 0 then begin
              Primitives.wtstore env addr value;
              if v mod 2 = 0 then Primitives.fence env
            end
            else Primitives.store env addr value;
            model.(slot) <- value
          end)
        ops;
      Array.for_all Fun.id
        (Array.mapi
           (fun slot expected -> Primitives.load env (slot * 8) = expected)
           model))

let prop_crash_word_atomicity =
  (* After any crash, every word equals either its old or its new
     value: 64-bit atomicity holds under all policies. *)
  QCheck.Test.make ~name:"crash preserves word atomicity" ~count:100
    QCheck.(pair (list (pair (int_bound 63) small_int)) int)
    (fun (ops, seed) ->
      let m =
        Env.make_machine ~seed:(seed land 0xffff) ~nframes:1 ()
      in
      let env = Env.standalone m in
      let possible = Array.make 64 [ 0L ] in
      List.iter
        (fun (slot, v) ->
          let addr = slot * 8 in
          let value = Int64.of_int (v + 1) in
          if v mod 2 = 0 then Primitives.store env addr value
          else Primitives.wtstore env addr value;
          possible.(slot) <- value :: possible.(slot))
        ops;
      Crash.inject m;
      Array.for_all Fun.id
        (Array.mapi
           (fun slot values ->
             List.mem (Scm_device.load64 m.dev (slot * 8)) values)
           possible))

let () =
  Alcotest.run "scm"
    [
      ( "device",
        [
          Alcotest.test_case "roundtrip" `Quick test_device_roundtrip;
          Alcotest.test_case "bounds" `Quick test_device_bounds;
          Alcotest.test_case "wear counters" `Quick test_device_wear_counters;
          Alcotest.test_case "image roundtrip" `Quick
            test_device_image_roundtrip;
        ] );
      ( "cache",
        [
          Alcotest.test_case "write-back on flush" `Quick
            test_cache_write_back_on_flush;
          Alcotest.test_case "eviction writes back" `Quick
            test_cache_eviction_writes_back;
          Alcotest.test_case "byte ranges span lines" `Quick
            test_cache_byte_range_spanning_lines;
          Alcotest.test_case "dirty lines listing" `Quick
            test_cache_dirty_lines_listing;
          Alcotest.test_case "eviction sequence matches reference model"
            `Quick test_cache_eviction_sequence_matches_model;
        ] );
      ( "journal",
        [
          Alcotest.test_case "undo restores a snapshot" `Quick
            test_device_journal_restores_snapshot;
          Alcotest.test_case "nested marks" `Quick
            test_device_journal_nested_marks;
        ] );
      ( "wc-buffer",
        [
          Alcotest.test_case "forwarding and drain" `Quick
            test_wc_forwarding_and_drain;
          Alcotest.test_case "crash applies a strict subset" `Quick
            test_wc_crash_subset_is_partial;
        ] );
      ( "primitives",
        [
          Alcotest.test_case "store volatile until persist" `Quick
            test_store_volatile_until_persist;
          Alcotest.test_case "wtstore durable after fence" `Quick
            test_wtstore_durable_after_fence;
          Alcotest.test_case "wtstore after cached store" `Quick
            test_wtstore_after_cached_store;
          Alcotest.test_case "latency charges" `Quick test_latency_charges;
          Alcotest.test_case "fence bandwidth model" `Quick
            test_fence_bandwidth_model;
          Alcotest.test_case "persist range" `Quick test_persist_range;
        ] );
      ( "crash",
        [
          Alcotest.test_case "drops unflushed" `Quick
            test_crash_drops_unflushed;
          Alcotest.test_case "preserves persisted" `Quick
            test_crash_preserves_persisted;
          Alcotest.test_case "random eviction policy" `Quick
            test_crash_random_eviction_policy;
        ] );
      ( "crashpoint",
        [
          Alcotest.test_case "deterministic op count" `Quick
            test_crashpoint_counts_deterministically;
          Alcotest.test_case "fires at every index" `Quick
            test_crashpoint_fires_at_every_index;
          Alcotest.test_case "arm validation" `Quick
            test_crashpoint_arm_validation;
        ] );
      ( "word",
        [
          Alcotest.test_case "bit ops" `Quick test_word_bits;
          Alcotest.test_case "string chunks" `Quick test_word_string_chunks;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_cache_coherence;
          QCheck_alcotest.to_alcotest prop_crash_word_atomicity;
        ] );
    ]
