(* Open-loop arrival generators: inter-arrival gaps drawn from a seeded
   process, independent of service completions.  See arrival.mli. *)

type mmpp = {
  on_rate_per_s : float;
  off_rate_per_s : float;
  mean_on_ns : float;
  mean_off_ns : float;
}

type kind = Poisson of float | Mmpp of mmpp

type t = {
  kind : kind;
  rng : Random.State.t;
  mutable on : bool;  (* MMPP modulating state *)
  mutable sojourn_ns : float;  (* time left in the current state *)
}

(* Inverse-CDF exponential draw.  [Random.State.float rng 1.0] is in
   [0, 1), so [1 - u] is in (0, 1] and the log is finite. *)
let exp_draw rng mean = -.mean *. log (1.0 -. Random.State.float rng 1.0)

let make ~seed kind =
  (match kind with
  | Poisson rate ->
      if rate <= 0.0 then invalid_arg "Arrival.make: Poisson rate must be > 0"
  | Mmpp m ->
      if m.on_rate_per_s < 0.0 || m.off_rate_per_s < 0.0 then
        invalid_arg "Arrival.make: MMPP rates must be >= 0";
      if m.on_rate_per_s <= 0.0 && m.off_rate_per_s <= 0.0 then
        invalid_arg "Arrival.make: MMPP needs a positive rate in some state";
      if m.mean_on_ns <= 0.0 || m.mean_off_ns <= 0.0 then
        invalid_arg "Arrival.make: MMPP sojourn means must be > 0");
  let rng = Random.State.make [| seed; 0xa881; 0x0a11 |] in
  let t = { kind; rng; on = true; sojourn_ns = 0.0 } in
  (match kind with
  | Poisson _ -> ()
  | Mmpp m -> t.sojourn_ns <- exp_draw rng m.mean_on_ns);
  t

let gap_of_rate rng rate_per_s =
  if rate_per_s <= 0.0 then infinity else exp_draw rng (1e9 /. rate_per_s)

let next_gap_ns t =
  let gap =
    match t.kind with
    | Poisson rate -> gap_of_rate t.rng rate
    | Mmpp m ->
        (* Walk the modulating chain: draw a candidate gap at the
           current state's rate; if it fits in the remaining sojourn the
           arrival lands in this state, otherwise consume the sojourn,
           flip the state and keep drawing.  A zero-rate state draws an
           infinite candidate and simply passes its whole sojourn by. *)
        let acc = ref 0.0 in
        let result = ref None in
        while !result = None do
          let rate = if t.on then m.on_rate_per_s else m.off_rate_per_s in
          let g = gap_of_rate t.rng rate in
          if g <= t.sojourn_ns then begin
            t.sojourn_ns <- t.sojourn_ns -. g;
            result := Some (!acc +. g)
          end
          else begin
            acc := !acc +. t.sojourn_ns;
            t.on <- not t.on;
            t.sojourn_ns <-
              exp_draw t.rng (if t.on then m.mean_on_ns else m.mean_off_ns)
          end
        done;
        Option.get !result
  in
  max 1 (int_of_float gap)
