(** Open-loop arrival processes for serving benchmarks.

    A generator produces inter-arrival gaps in simulated nanoseconds;
    the caller owns the simulator process that sleeps each gap and
    enqueues a request.  {e Open-loop} means the gaps are drawn from
    the process alone — arrivals never wait for service completions, so
    when offered load exceeds capacity the backlog (and therefore tail
    latency) grows without bound unless something sheds load.  This is
    the load model under which an unbounded log-full stall becomes a
    p999 catastrophe rather than a throughput footnote (contrast the
    closed-loop benchmarks, where each simulated user politely blocks
    on its own previous request).

    Draws come from a private [Random.State] seeded at {!make}, so a
    generator is deterministic given its seed and independent of every
    other randomness source in the run. *)

type mmpp = {
  on_rate_per_s : float;  (** Arrival rate in the bursty state. *)
  off_rate_per_s : float;  (** Arrival rate in the quiet state (may be 0). *)
  mean_on_ns : float;  (** Mean sojourn in the bursty state. *)
  mean_off_ns : float;  (** Mean sojourn in the quiet state. *)
}

type kind =
  | Poisson of float
      (** Stationary Poisson arrivals at the given rate per simulated
          second: exponential inter-arrival gaps. *)
  | Mmpp of mmpp
      (** Two-state Markov-modulated Poisson process: Poisson arrivals
          whose rate switches between a bursty and a quiet state, each
          held for an exponential sojourn.  The standard bursty open
          traffic model — its ON periods overload a server provisioned
          for the mean rate. *)

type t

val make : seed:int -> kind -> t
(** Raises [Invalid_argument] on non-positive rates (for MMPP: when
    neither state has a positive rate, or a sojourn mean is not
    positive). *)

val next_gap_ns : t -> int
(** The gap to the next arrival, in simulated nanoseconds (at least
    1). *)
