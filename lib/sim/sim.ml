exception Deadlock of string

(* ------------------------------------------------------------------ *)
(* Same-time tiebreak policy (schedule exploration)                    *)

module Schedule = struct
  type policy = Fifo | Seeded_shuffle | Priority

  let policy_name = function
    | Fifo -> "fifo"
    | Seeded_shuffle -> "shuffle"
    | Priority -> "priority"

  let policy_of_string = function
    | "fifo" -> Ok Fifo
    | "shuffle" | "seeded_shuffle" -> Ok Seeded_shuffle
    | "priority" | "pct" -> Ok Priority
    | s -> Error (Printf.sprintf "unknown schedule policy %S" s)

  (* Growable int buffer: the recorded decision streams. *)
  module Ibuf = struct
    type t = { mutable a : int array; mutable n : int }

    let create () = { a = Array.make 64 0; n = 0 }
    let of_array a = { a; n = Array.length a }

    let push b x =
      if b.n = Array.length b.a then begin
        let bigger = Array.make (2 * b.n) 0 in
        Array.blit b.a 0 bigger 0 b.n;
        b.a <- bigger
      end;
      b.a.(b.n) <- x;
      b.n <- b.n + 1

    let get b i = b.a.(i)
    let length b = b.n
  end

  type t = {
    policy : policy;
    seed : int;
    replay : bool;
    rng : Random.State.t;
    keys : Ibuf.t;  (* one tiebreak key per event push (non-Fifo) *)
    draw_bounds : Ibuf.t;  (* captured client rng draws (retry backoff) *)
    draw_vals : Ibuf.t;
    mutable ki : int;  (* replay cursors *)
    mutable di : int;
    mutable extra : int;  (* fresh decisions made after replay diverged *)
    mutable draws_diverged : bool;  (* a draw bound mismatched: stop
                                       consuming the recorded stream *)
    mutable meta : (string * string) list;
    (* PCT-style per-process priorities, re-drawn at seeded change
       points *)
    mutable prio : int array;
    mutable until_change : int;
    mutable observer : (index:int -> key:int -> unit) option;
  }

  (* Keys stay well below [max_int] so (time, key, seq) comparisons
     cannot overflow, and 0 is reserved as the Fifo key. *)
  let key_range = 0x3FFFFFFF

  let make ?(seed = 0) policy =
    {
      policy;
      seed;
      replay = false;
      rng = Random.State.make [| 0x5c4ed; seed |];
      keys = Ibuf.create ();
      draw_bounds = Ibuf.create ();
      draw_vals = Ibuf.create ();
      ki = 0;
      di = 0;
      extra = 0;
      draws_diverged = false;
      meta = [];
      prio = Array.make 64 (-1);
      until_change = 0;
      observer = None;
    }

  let fifo () = make Fifo

  let policy t = t.policy
  let seed t = t.seed
  let is_replay t = t.replay
  let decisions t = if t.replay then t.ki else Ibuf.length t.keys
  let rng_draws t = if t.replay then t.di else Ibuf.length t.draw_vals

  let replay_leftover t =
    if not t.replay then 0
    else Ibuf.length t.keys - t.ki + (Ibuf.length t.draw_vals - t.di)

  let replay_extra t = t.extra

  let set_meta t k v = t.meta <- (k, v) :: List.remove_assoc k t.meta
  let meta t k = List.assoc_opt k t.meta
  let set_observer t f = t.observer <- f

  let notify t key =
    match t.observer with
    | None -> ()
    | Some f -> f ~index:(decisions t - 1) ~key

  let ensure_prio t proc =
    if proc >= Array.length t.prio then begin
      let bigger = Array.make (2 * (proc + 1)) (-1) in
      Array.blit t.prio 0 bigger 0 (Array.length t.prio);
      t.prio <- bigger
    end;
    if t.prio.(proc) < 0 then
      t.prio.(proc) <- 1 + Random.State.int t.rng key_range

  (* PCT-flavoured: every process carries a seeded priority; after a
     seeded number of scheduling decisions the deciding process's
     priority is re-drawn (the "priority change point"), so one process
     dominates for a stretch and then the balance shifts. *)
  let priority_key t proc =
    ensure_prio t proc;
    if t.until_change <= 0 then
      t.until_change <- 1 + Random.State.int t.rng 63;
    t.until_change <- t.until_change - 1;
    if t.until_change = 0 then
      t.prio.(proc) <- 1 + Random.State.int t.rng key_range;
    t.prio.(proc)

  let fresh_key t ~proc =
    match t.policy with
    | Fifo -> 0
    | Seeded_shuffle -> 1 + Random.State.int t.rng key_range
    | Priority -> priority_key t proc

  (* The key of the event being pushed, for the heap's same-time
     ordering: lower keys run first; equal keys fall back to FIFO
     [seq].  [Fifo] always answers 0 (bit-identical to the historical
     behaviour); the other policies draw from the seeded rng and record
     the value, or consume the recorded stream when replaying.

     A replay that outlives its recorded stream is not an error: the
     code under replay may legitimately diverge from the code that
     recorded the trace — a regression trace captured against pre-fix
     code makes the fixed code abort a transaction the recording
     committed, after which the two runs make different numbers of
     decisions.  Past the end of the stream we fall back to fresh
     policy draws (still deterministic: same trace, same fallback) and
     count them in [replay_extra]; bit-exact replay is [replay_leftover
     = 0 && replay_extra = 0]. *)
  let next_key t ~proc =
    match t.policy with
    | Fifo -> 0
    | Seeded_shuffle | Priority ->
        let k =
          if t.replay then
            if t.ki >= Ibuf.length t.keys then begin
              t.extra <- t.extra + 1;
              fresh_key t ~proc
            end
            else begin
              let k = Ibuf.get t.keys t.ki in
              t.ki <- t.ki + 1;
              k
            end
          else begin
            let k = fresh_key t ~proc in
            Ibuf.push t.keys k;
            k
          end
        in
        notify t k;
        k

  let draw t ~bound =
    if bound <= 0 then invalid_arg "Schedule.draw: bound must be positive";
    if t.replay then
      if
        t.draws_diverged
        || t.di >= Ibuf.length t.draw_vals
        || Ibuf.get t.draw_bounds t.di <> bound
      then begin
        (* Exhausted, or the caller asked with a different bound than
           the recording paired with this position: the replayed run
           took a different retry path.  Re-syncing after a mismatch
           would pair recorded draws with the wrong call sites, so stop
           consuming the stream and fall back to fresh draws. *)
        if t.di < Ibuf.length t.draw_vals then t.draws_diverged <- true;
        t.extra <- t.extra + 1;
        Random.State.int t.rng bound
      end
      else begin
        let v = Ibuf.get t.draw_vals t.di in
        t.di <- t.di + 1;
        v
      end
    else begin
      let v = Random.State.int t.rng bound in
      Ibuf.push t.draw_bounds bound;
      Ibuf.push t.draw_vals v;
      v
    end

  (* ---------------------------------------------------------------- *)
  (* Trace files: a replayable record of every decision               *)

  let save t path =
    Out_channel.with_open_text path (fun oc ->
        Printf.fprintf oc "mnemosyne-sched-trace 1\n";
        Printf.fprintf oc "policy %s\n" (policy_name t.policy);
        Printf.fprintf oc "seed %d\n" t.seed;
        List.iter
          (fun (k, v) -> Printf.fprintf oc "meta %s %s\n" k v)
          (List.rev t.meta);
        let nkeys = Ibuf.length t.keys in
        Printf.fprintf oc "keys %d\n" nkeys;
        for i = 0 to nkeys - 1 do
          Printf.fprintf oc "%d%c" (Ibuf.get t.keys i)
            (if i mod 16 = 15 || i = nkeys - 1 then '\n' else ' ')
        done;
        let ndraws = Ibuf.length t.draw_vals in
        Printf.fprintf oc "draws %d\n" ndraws;
        for i = 0 to ndraws - 1 do
          Printf.fprintf oc "%d %d\n" (Ibuf.get t.draw_bounds i)
            (Ibuf.get t.draw_vals i)
        done)

  let load path =
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error msg -> Error msg
    | content -> (
        let toks =
          String.split_on_char '\n' content
          |> List.concat_map (String.split_on_char ' ')
          |> List.filter (fun s -> s <> "")
          |> Array.of_list
        in
        let pos = ref 0 in
        let exception Parse of string in
        let tok what =
          if !pos >= Array.length toks then
            raise (Parse (Printf.sprintf "truncated trace: expected %s" what));
          let t = toks.(!pos) in
          incr pos;
          t
        in
        let int what =
          let t = tok what in
          match int_of_string_opt t with
          | Some i -> i
          | None ->
              raise (Parse (Printf.sprintf "expected %s, got %S" what t))
        in
        let expect lit =
          let t = tok lit in
          if t <> lit then
            raise (Parse (Printf.sprintf "expected %S, got %S" lit t))
        in
        try
          expect "mnemosyne-sched-trace";
          let version = int "version" in
          if version <> 1 then
            raise (Parse (Printf.sprintf "unknown version %d" version));
          expect "policy";
          let policy =
            match policy_of_string (tok "policy name") with
            | Ok p -> p
            | Error e -> raise (Parse e)
          in
          expect "seed";
          let seed = int "seed" in
          let meta = ref [] in
          while !pos < Array.length toks && toks.(!pos) = "meta" do
            incr pos;
            let k = tok "meta key" in
            let v = tok "meta value" in
            meta := (k, v) :: !meta
          done;
          expect "keys";
          let nkeys = int "key count" in
          let keys = Array.init nkeys (fun _ -> int "key") in
          expect "draws";
          let ndraws = int "draw count" in
          let draw_bounds = Array.make ndraws 0 in
          let draw_vals = Array.make ndraws 0 in
          for i = 0 to ndraws - 1 do
            draw_bounds.(i) <- int "draw bound";
            draw_vals.(i) <- int "draw value"
          done;
          Ok
            {
              policy;
              seed;
              replay = true;
              rng = Random.State.make [| 0x5c4ed; seed |];
              keys = Ibuf.of_array keys;
              draw_bounds = Ibuf.of_array draw_bounds;
              draw_vals = Ibuf.of_array draw_vals;
              ki = 0;
              di = 0;
              extra = 0;
              draws_diverged = false;
              meta = !meta;
              prio = Array.make 64 (-1);
              until_change = 0;
              observer = None;
            }
        with Parse msg -> Error (Printf.sprintf "%s: %s" path msg))
end

(* Binary min-heap of events keyed by (time, key, seq): [key] is the
   schedule policy's same-time tiebreak (always 0 under Fifo), [seq]
   gives FIFO order among same-time same-key events. *)
module Heap = struct
  type entry = {
    time : int;
    key : int;
    seq : int;
    proc : int;
    thunk : unit -> unit;
  }

  type t = { mutable a : entry array; mutable n : int }

  let dummy = { time = 0; key = 0; seq = 0; proc = 0; thunk = ignore }

  let create () = { a = Array.make 256 dummy; n = 0 }

  let before x y =
    x.time < y.time
    || (x.time = y.time
       && (x.key < y.key || (x.key = y.key && x.seq < y.seq)))

  let push t e =
    if t.n = Array.length t.a then begin
      let bigger = Array.make (2 * t.n) dummy in
      Array.blit t.a 0 bigger 0 t.n;
      t.a <- bigger
    end;
    t.a.(t.n) <- e;
    let i = ref t.n in
    t.n <- t.n + 1;
    while !i > 0 && before t.a.(!i) t.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = t.a.(p) in
      t.a.(p) <- t.a.(!i);
      t.a.(!i) <- tmp;
      i := p
    done

  let pop t =
    if t.n = 0 then None
    else begin
      let top = t.a.(0) in
      t.n <- t.n - 1;
      t.a.(0) <- t.a.(t.n);
      t.a.(t.n) <- dummy;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.n && before t.a.(l) t.a.(!smallest) then smallest := l;
        if r < t.n && before t.a.(r) t.a.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.a.(!smallest) in
          t.a.(!smallest) <- t.a.(!i);
          t.a.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end

  let size t = t.n
end

type t = {
  mutable clock : int;
  mutable seq : int;
  events : Heap.t;
  mutable started : int;
  mutable suspended : int;  (* processes parked via [suspend] *)
  sched : Schedule.t;
  mutable cur_proc : int;  (* process whose event is executing;
                              -1 = outside any process (the root) *)
  mutable next_proc : int;
  mutable nsync : int;  (* labels for anonymous sync objects *)
  mutable race : Race_api.hooks option;
      (* Happens-before edge hooks (DESIGN.md section 18).  The
         simulator's synchronization vocabulary — spawn, suspend/resume
         delivery, mutex ownership, service wake tokens — is where HB
         edges come from; plain [yield]/[delay] deliberately fire
         nothing. *)
}

type _ Effect.t +=
  | Delay : t * int -> unit Effect.t
  | Suspend : t * ((unit -> unit) -> unit) -> unit Effect.t

let create ?schedule () =
  let sched =
    match schedule with Some s -> s | None -> Schedule.fifo ()
  in
  {
    clock = 0;
    seq = 0;
    events = Heap.create ();
    started = 0;
    suspended = 0;
    sched;
    cur_proc = -1;
    next_proc = 0;
    nsync = 0;
    race = None;
  }

let now t = t.clock
let schedule_of t = t.sched
let current_proc t = t.cur_proc
let set_race t h = t.race <- h
let race_of t = t.race

let sync_label t prefix =
  let n = t.nsync in
  t.nsync <- n + 1;
  Printf.sprintf "sim.%s.%d" prefix n

let schedule_for t ~proc time thunk =
  let seq = t.seq in
  t.seq <- seq + 1;
  let key = Schedule.next_key t.sched ~proc in
  Heap.push t.events { Heap.time; key; seq; proc; thunk }

let delay t ns =
  if ns < 0 then invalid_arg "Sim.delay: negative";
  Effect.perform (Delay (t, ns))

let yield t = delay t 0

let suspend t register = Effect.perform (Suspend (t, register))

let run_process t body =
  let open Effect.Deep in
  t.started <- t.started + 1;
  match_with body ()
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay (sim, ns) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  schedule_for sim ~proc:sim.cur_proc (sim.clock + ns)
                    (fun () -> continue k ()))
          | Suspend (sim, register) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let proc = sim.cur_proc in
                  sim.suspended <- sim.suspended + 1;
                  let resumed = ref false in
                  register (fun () ->
                      if !resumed then
                        failwith "Sim.suspend: resume called twice";
                      resumed := true;
                      sim.suspended <- sim.suspended - 1;
                      (* Resume delivery is a direct fiber-to-fiber HB
                         edge: the resumer's history happens-before
                         everything the parked process does next. *)
                      (match sim.race with
                      | Some h -> h.transfer ~src:sim.cur_proc ~dst:proc
                      | None -> ());
                      schedule_for sim ~proc sim.clock (fun () ->
                          continue k ())))
          | _ -> None);
    }

let spawn_at ?name:_ t time body =
  let proc = t.next_proc in
  t.next_proc <- proc + 1;
  (* Spawn seeds the child's clock with the parent's: everything the
     parent did before the spawn happens-before the child's body. *)
  (match t.race with
  | Some h -> h.fork ~parent:t.cur_proc ~child:proc
  | None -> ());
  schedule_for t ~proc time (fun () -> run_process t body)

let spawn ?name t body = spawn_at ?name t t.clock body

let run ?until t =
  let continue_run = ref true in
  while !continue_run do
    match Heap.pop t.events with
    | None ->
        if t.suspended > 0 then
          raise
            (Deadlock
               (Printf.sprintf "%d process(es) suspended with no events"
                  t.suspended));
        continue_run := false
    | Some e -> (
        match until with
        | Some limit when e.Heap.time > limit ->
            (* Put it back and stop: caller may resume later.  The entry
               keeps its tiebreak key (no schedule decision is spent),
               matching the historical re-push under Fifo. *)
            let seq = t.seq in
            t.seq <- seq + 1;
            Heap.push t.events { e with Heap.seq };
            t.clock <- limit;
            continue_run := false
        | _ ->
            t.clock <- e.Heap.time;
            t.cur_proc <- e.Heap.proc;
            e.Heap.thunk ())
  done;
  t.cur_proc <- -1;
  ignore (Heap.size t.events)

let processes_run t = t.started

module Mutex_r = struct
  type sim = t

  type t = {
    sim : sim;
    label : string;  (* race-detector sync object *)
    mutable locked : bool;
    waiters : (unit -> unit) Queue.t;
    mutable contentions : int;
  }

  let create sim =
    {
      sim;
      label = sync_label sim "mutex";
      locked = false;
      waiters = Queue.create ();
      contentions = 0;
    }

  (* HB edges: [unlock] releases the holder's clock into the mutex's
     sync clock, [lock]/[try_lock] acquire it on success.  The
     contended handoff additionally rides the suspend/resume transfer
     edge, but the release/acquire pair is what orders a later
     uncontended lock after an earlier unlocker. *)
  let acquired m =
    match m.sim.race with Some h -> h.acquire m.label | None -> ()

  let lock m =
    if not m.locked then m.locked <- true
    else begin
      m.contentions <- m.contentions + 1;
      suspend m.sim (fun resume -> Queue.push resume m.waiters)
      (* The unlocker hands us ownership directly: [locked] stays true. *)
    end;
    acquired m

  let try_lock m =
    if m.locked then false
    else begin
      m.locked <- true;
      acquired m;
      true
    end

  let unlock m =
    if not m.locked then invalid_arg "Mutex_r.unlock: not locked";
    (match m.sim.race with Some h -> h.release m.label | None -> ());
    match Queue.take_opt m.waiters with
    | Some resume -> resume ()  (* ownership transfers; stays locked *)
    | None -> m.locked <- false

  let holder_waiters m = (if m.locked then 1 else 0) + Queue.length m.waiters
  let contentions m = m.contentions

  let with_lock m f =
    lock m;
    Fun.protect ~finally:(fun () -> unlock m) f
end

(* A background daemon: a process that repeatedly performs units of
   work and parks itself when none is available, to be re-armed by
   [wake] from a producer.  This is the substrate for the pipelined
   commit's write-back drainer: modelled as first-class DES work, its
   memory traffic is charged to its own fiber, not to the transaction
   that produced it.

   The lost-wakeup race (producer wakes while the daemon is mid-round,
   daemon then parks on stale information) is closed by [wakes_pending]:
   a wake against a running daemon leaves a token the daemon consumes
   before parking. *)
module Service = struct
  type sim = t

  type t = {
    sim : sim;
    label : string;  (* race-detector sync object: the wake token *)
    work : unit -> bool;
    mutable parked : (unit -> unit) option;
    mutable wakes_pending : bool;
    mutable stopping : bool;
    mutable stopped : bool;
  }

  (* HB edges: every [wake] releases the producer's clock into the
     token's sync clock; the daemon acquires it when it consumes a
     pending token and when it unparks (the parked path additionally
     rides the resume transfer edge).  So whatever a producer
     published before [wake] happens-before the daemon round that the
     wake triggers — on both the parked and the token path. *)
  let consumed s =
    match s.sim.race with Some h -> h.acquire s.label | None -> ()

  let rec loop s =
    if s.work () then begin
      (* one unit done; yield so same-time producers interleave *)
      yield s.sim;
      loop s
    end
    else if s.stopping then s.stopped <- true
    else if s.wakes_pending then begin
      s.wakes_pending <- false;
      consumed s;
      loop s
    end
    else begin
      suspend s.sim (fun resume -> s.parked <- Some resume);
      consumed s;
      loop s
    end

  let spawn sim ~work =
    let s =
      {
        sim;
        label = sync_label sim "service";
        work;
        parked = None;
        wakes_pending = false;
        stopping = false;
        stopped = false;
      }
    in
    spawn sim (fun () -> loop s);
    s

  let wake s =
    (match s.sim.race with Some h -> h.release s.label | None -> ());
    match s.parked with
    | Some resume ->
        s.parked <- None;
        s.wakes_pending <- false;
        resume ()
    | None -> s.wakes_pending <- true

  let stop s =
    s.stopping <- true;
    wake s

  let stopped s = s.stopped
end

module Cond_r = struct
  type sim = t

  type t = { sim : sim; waiters : (unit -> unit) Queue.t }

  let create sim = { sim; waiters = Queue.create () }

  let wait c m =
    (* Release, park, re-acquire: the classic monitor protocol. *)
    Mutex_r.unlock m;
    suspend c.sim (fun resume -> Queue.push resume c.waiters);
    Mutex_r.lock m

  let signal c = match Queue.take_opt c.waiters with
    | Some resume -> resume ()
    | None -> ()

  let broadcast c =
    let all = Queue.to_seq c.waiters |> List.of_seq in
    Queue.clear c.waiters;
    List.iter (fun resume -> resume ()) all
end

(* Open-loop arrival generators, re-exported so harness code reaches
   them as [Sim.Arrival] (the library's interface is this module). *)
module Arrival = Arrival
