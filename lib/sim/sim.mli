(** A discrete-event simulator with cooperative processes.

    This is the substrate that stands in for the paper's pthreads (see
    DESIGN.md section 1): benchmark "threads" are simulator processes,
    each memory primitive charges simulated nanoseconds through
    {!delay}, and shared resources ({!Mutex_r}, {!Cond_r}) serialize
    processes exactly where a real lock would.  Because every memory
    operation is a yield point, transactional conflicts and queueing on
    Berkeley DB's central log buffer arise from genuine interleavings —
    deterministically, from a seeded schedule.

    Processes are implemented with OCaml 5 effects: [delay] and blocking
    operations perform an effect captured by the scheduler, which
    resumes the continuation when the simulated clock reaches the wake
    time.

    Events that fall due at the same simulated instant are ordered by a
    pluggable {!Schedule} policy.  The default ({!Schedule.Fifo}) runs
    them in creation order — the historical behaviour, bit-identical —
    while the exploration policies permute same-time ties to fuzz
    interleavings (see DESIGN.md section 10 and [bin/sched_explore]). *)

(** Same-time tiebreak policy, decision recording, and bit-exact
    replay.

    A schedule owns every source of nondeterminism in a simulated run:
    the tiebreak key drawn for each scheduled event, and any client rng
    draws routed through {!Schedule.draw} (the STM's retry backoff).
    In recording mode each decision is appended to an in-memory trace;
    {!Schedule.save} writes it to a file and {!Schedule.load} rebuilds
    a replaying schedule that feeds the recorded decisions back in
    order.  A replayed run may diverge from the recording — notably, a
    regression trace captured against buggy code stops matching once
    the fix changes a transaction's fate — so running off the end of a
    stream falls back to fresh policy draws rather than failing;
    {!Schedule.replay_leftover} and {!Schedule.replay_extra} quantify
    the divergence (both 0 = bit-exact). *)
module Schedule : sig
  (** [Fifo] — creation order among same-time events (the default;
      bit-identical to the pre-exploration scheduler).
      [Seeded_shuffle] — every event gets an independent random key, so
      same-time ties land in a seeded random permutation.  [Priority] —
      PCT-style: each process keeps a seeded priority used as the key;
      after a seeded number of decisions the deciding process's
      priority is re-drawn (a priority change point). *)
  type policy = Fifo | Seeded_shuffle | Priority

  type t

  val fifo : unit -> t
  (** The default schedule: Fifo policy, nothing to record. *)

  val make : ?seed:int -> policy -> t
  (** A recording schedule: decisions are drawn from an rng seeded with
      [seed] and captured for {!save}. *)

  val policy : t -> policy
  val seed : t -> int

  val is_replay : t -> bool
  (** True for schedules built by {!load}. *)

  val policy_name : policy -> string
  (** ["fifo"] / ["shuffle"] / ["priority"]. *)

  val policy_of_string : string -> (policy, string) result

  val draw : t -> bound:int -> int
  (** A captured rng draw in [\[0, bound)]: recorded into (or replayed
      from) the schedule trace.  Client code whose control flow depends
      on random numbers (retry backoff) must route them through here to
      make replay bit-exact. *)

  val decisions : t -> int
  (** Tiebreak keys drawn (recording) or consumed (replay) so far. *)

  val rng_draws : t -> int
  (** {!draw} calls made (recording) or consumed (replay) so far. *)

  val replay_leftover : t -> int
  (** Recorded decisions a replay has not consumed (always 0 when
      recording). *)

  val replay_extra : t -> int
  (** Decisions a replay had to invent because the run outlived the
      recorded streams — fresh policy draws past the end of the key
      stream, or rng draws after the draw stream exhausted or a bound
      mismatched (always 0 when recording).  A replay reproduced the
      recording bit-exactly iff [replay_leftover = 0] and
      [replay_extra = 0]. *)

  val set_meta : t -> string -> string -> unit
  (** Attach a key/value pair saved in the trace header — tools store
      their workload parameters here so a trace file alone suffices to
      reconstruct the run ([sched_explore --replay]).  Values must not
      contain whitespace. *)

  val meta : t -> string -> string option

  val set_observer : t -> (index:int -> key:int -> unit) option -> unit
  (** Called on every tiebreak decision (recording and replay) with its
      index and chosen key; [sched_explore] feeds these to the
      observability trace as schedule-point events. *)

  val save : t -> string -> unit
  (** Write the trace (policy, seed, meta, every decision) to a file. *)

  val load : string -> (t, string) result
  (** Rebuild a replaying schedule from a {!save}d file. *)
end

type t

val create : ?schedule:Schedule.t -> unit -> t
(** [create ()] uses {!Schedule.fifo}, preserving the historical
    deterministic order exactly. *)

val now : t -> int
(** Current simulated time in nanoseconds. *)

val schedule_of : t -> Schedule.t
(** The schedule this simulator draws its tiebreak decisions from. *)

val current_proc : t -> int
(** The process whose event is executing, or [-1] outside any process
    (before {!run}, and between/after runs).  This is the fiber id the
    race detector attributes accesses to. *)

val set_race : t -> Race_api.hooks option -> unit
(** Install (or remove) happens-before race-detection hooks
    (DESIGN.md section 18).  When installed, the simulator fires
    [fork] at {!spawn}, [transfer] when a suspended process is
    resumed, and release/acquire edges through {!Mutex_r} ownership
    and {!Service} wake tokens.  Plain {!yield}/{!delay} fire nothing:
    being scheduled after someone is not synchronization.  [None]
    (the default) keeps every hook site a single never-taken branch. *)

val race_of : t -> Race_api.hooks option
(** The installed hooks, for layers that piggyback on the sim's. *)

val spawn : ?name:string -> t -> (unit -> unit) -> unit
(** Register a process to start at the current simulated time.  The
    body runs when {!run} reaches that moment. *)

val spawn_at : ?name:string -> t -> int -> (unit -> unit) -> unit
(** Start a process at an absolute simulated time. *)

val delay : t -> int -> unit
(** Advance this process's clock by [ns], yielding to any process
    scheduled earlier.  Must be called from inside a process. *)

val yield : t -> unit
(** [delay t 0]: give same-time processes a chance to run. *)

val suspend : t -> ((unit -> unit) -> unit) -> unit
(** [suspend t register] parks the current process and calls
    [register resume]; calling [resume] (from another process or the
    scheduler) requeues the parked process at the then-current time.
    [resume] must be called at most once.  This is the primitive the
    synchronization objects are built from. *)

val run : ?until:int -> t -> unit
(** Execute events until the queue is empty (or simulated time would
    exceed [until]).  Re-entrant with respect to [spawn]: processes may
    spawn more processes. *)

val processes_run : t -> int
(** Number of process bodies started so far (for tests). *)

exception Deadlock of string
(** Raised by {!run} when processes remain suspended with no pending
    events — every remaining process is blocked on a resource that
    nobody will release. *)

(** FIFO mutex: the model for any serialized software resource (Berkeley
    DB's centralized log buffer, a page latch).  Lock acquisitions are
    granted in arrival order, so queueing delay is measured faithfully. *)
module Mutex_r : sig
  type sim := t
  type t

  val create : sim -> t
  val lock : t -> unit
  val unlock : t -> unit
  val try_lock : t -> bool
  val holder_waiters : t -> int
  (** Queue length including holder. *)

  val contentions : t -> int
  (** Lock calls that had to wait. *)

  val with_lock : t -> (unit -> 'a) -> 'a
end

(** A background daemon process that repeatedly performs units of work
    and parks itself when none is available.  Built for the pipelined
    commit's write-back drainer: the daemon's memory traffic is charged
    to its own fiber, so deferred work shows up as overlapped DES time
    rather than on the producing transaction's critical path.

    Protocol: [work ()] performs at most one unit and answers whether
    it did anything.  While it answers [true] the daemon loops (with a
    {!yield} between units so same-time producers interleave); on
    [false] it parks until {!wake}.  A {!wake} against a running daemon
    leaves a token consumed before the next park, so wake-ups are never
    lost.  {!stop} drains remaining work ([work] until [false]) and
    exits the process.

    A parked daemon holds a suspended process: a simulation that ends
    with the daemon parked raises {!Deadlock}, so harnesses must call
    {!stop} from inside the simulation (e.g. the last finishing worker
    stops the service). *)
module Service : sig
  type sim := t
  type t

  val spawn : sim -> work:(unit -> bool) -> t
  (** Start the daemon at the current simulated time. *)

  val wake : t -> unit
  (** Re-arm a parked daemon (or leave a token for a running one).
      Safe to call from any process at any time. *)

  val stop : t -> unit
  (** Ask the daemon to drain remaining work and exit. *)

  val stopped : t -> bool
  (** True once the daemon's process has exited. *)
end

(** Condition variable over {!Mutex_r}, used by group commit. *)
module Cond_r : sig
  type sim := t
  type t

  val create : sim -> t
  val wait : t -> Mutex_r.t -> unit
  (** Atomically release the mutex and park; re-acquires before
      returning. *)

  val signal : t -> unit
  val broadcast : t -> unit
end

(** Open-loop arrival generators (Poisson and bursty MMPP) for driving
    serving workloads through the simulator; see [arrival.mli]. *)
module Arrival : module type of Arrival
