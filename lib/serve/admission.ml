type reason = Queue_full | Log_pressure

let reason_name = function
  | Queue_full -> "queue_full"
  | Log_pressure -> "log_pressure"

type config = { queue_cap : int; log_high_pct : int; boost_pct : int }

(* All gates off: every request is admitted and a full RAWL is
   discovered only by the producer wedging inline in the append path —
   the paper's figure-6 stall regime, kept as the measurable baseline. *)
let legacy = { queue_cap = 0; log_high_pct = 0; boost_pct = 0 }
let default = { queue_cap = 64; log_high_pct = 85; boost_pct = 60 }

type t = {
  cfg : config;
  mutable admitted : int;
  mutable shed_queue : int;
  mutable shed_log : int;
  mutable race : Race_api.hooks option;
      (* The shed/admit tallies are shared single-word counters bumped
         from every dispatcher fiber: each decision is one rmw on its
         counter (DESIGN.md section 18).  The queue-depth/occupancy
         inputs are sampled by the caller, which carries its own
         annotations. *)
}

let make cfg =
  if cfg.queue_cap < 0 then invalid_arg "Admission.make: queue_cap < 0";
  if cfg.log_high_pct < 0 || cfg.log_high_pct > 100 then
    invalid_arg "Admission.make: log_high_pct outside [0, 100]";
  if cfg.boost_pct < 0 || cfg.boost_pct > 100 then
    invalid_arg "Admission.make: boost_pct outside [0, 100]";
  { cfg; admitted = 0; shed_queue = 0; shed_log = 0; race = None }

let set_race t h = t.race <- h

let[@inline] race_rmw t label =
  match t.race with None -> () | Some hk -> hk.Race_api.rmw label

let config t = t.cfg

let over pct ~used ~cap = pct > 0 && used * 100 >= pct * cap

let admit_enqueue t ~queue_len =
  if t.cfg.queue_cap > 0 && queue_len >= t.cfg.queue_cap then begin
    race_rmw t "serve.admission.shed_queue";
    t.shed_queue <- t.shed_queue + 1;
    Error Queue_full
  end
  else begin
    race_rmw t "serve.admission.admitted";
    t.admitted <- t.admitted + 1;
    Ok ()
  end

let admit_dispatch t ~used ~cap =
  if over t.cfg.log_high_pct ~used ~cap then begin
    race_rmw t "serve.admission.shed_log";
    t.shed_log <- t.shed_log + 1;
    Error Log_pressure
  end
  else Ok ()

let should_boost t ~used ~cap = over t.cfg.boost_pct ~used ~cap
let admitted t = t.admitted
let shed_queue t = t.shed_queue
let shed_log t = t.shed_log
let shed t = t.shed_queue + t.shed_log
