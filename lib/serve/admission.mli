(** Admission control for the serving front-end.

    The policy replaces the unbounded log-full stall with load
    shedding at two points, both {e before} a transaction can touch
    persistent state:

    - {e enqueue}: a request arriving at a tenant whose queue holds
      [queue_cap] entries is rejected ({!Queue_full}).  This bounds the
      queueing delay any admitted request can see — the open-loop
      arrival process cannot grow an unbounded backlog.
    - {e dispatch}: a worker about to run a request first probes its
      RAWL occupancy ({!Mtm.Txn.log_occupancy}); at or above
      [log_high_pct] percent full the request is rejected
      ({!Log_pressure}) instead of being started and wedging in the
      append path once the log fills mid-commit.

    Between [boost_pct] and [log_high_pct] the worker admits the
    request but wakes its shard's write-back drainer first — truncation
    gets a head start so it outruns arrivals instead of being paged in
    only once producers are already stalled.

    A rejection never starts a transaction, so a shed request leaves
    zero persistent side effects (pinned by the crash-explore serving
    sweep).  Counters are plain mutable fields: the policy object is
    owned by one simulated serving instance. *)

type reason = Queue_full | Log_pressure

val reason_name : reason -> string
(** ["queue_full"] / ["log_pressure"]. *)

type config = {
  queue_cap : int;  (** Per-tenant queue bound; 0 = unbounded. *)
  log_high_pct : int;  (** Shed at this RAWL occupancy; 0 = gate off. *)
  boost_pct : int;  (** Wake drainers at this occupancy; 0 = off. *)
}

val legacy : config
(** Every gate off — the measurable stall-regime baseline. *)

val default : config
(** queue_cap 64, shed at 85% log occupancy, boost drainers at 60%. *)

type t

val make : config -> t
(** Raises [Invalid_argument] on a negative cap or a percentage outside
    [0, 100]. *)

val config : t -> config

val admit_enqueue : t -> queue_len:int -> (unit, reason) result
(** Decide a request arriving at a tenant queue currently [queue_len]
    deep; counts the decision. *)

val admit_dispatch : t -> used:int -> cap:int -> (unit, reason) result
(** Decide a dequeued request against the dispatching worker's RAWL
    occupancy ([used] of [cap] words); counts a rejection.  Admissions
    were already counted at enqueue. *)

val should_boost : t -> used:int -> cap:int -> bool
(** True when occupancy is at or above [boost_pct] (and the knob is
    on): the worker should wake its shard drainer before dispatching. *)

val admitted : t -> int
val shed_queue : t -> int
val shed_log : t -> int

val shed : t -> int
(** [shed_queue + shed_log]. *)

val set_race : t -> Race_api.hooks option -> unit
(** Race-detection hooks (DESIGN.md section 18): the admit/shed
    tallies are shared single-word counters, so every admission
    decision is one rmw edge on the counter it bumps.  [None] (the
    default) keeps every site a single never-taken branch. *)
