(* Multi-tenant KV serving front-end; see serve.mli and DESIGN.md
   section 17. *)

(* Re-exported: this module is the library's interface, so the policy
   is reached as [Serve.Admission]. *)
module Admission = Admission

type config = {
  tenants : int;
  workers : int;
  users : int;
  duration_ns : int;
  arrival : Sim.Arrival.kind;
  admission : Admission.config;
  value_bytes : int;
  get_pct : int;
  theta : float;
  seed : int;
  request_ns : int;
  log_cap_words : int;
  workers_per_drainer : int;
  drain_period_ns : int;
  slo_ns : int;
}

let default_config =
  {
    tenants = 4;
    workers = 8;
    users = 1_000_000;
    duration_ns = 2_000_000;
    arrival = Sim.Arrival.Poisson 400_000.0;
    admission = Admission.default;
    value_bytes = 64;
    get_pct = 50;
    theta = 0.9;
    seed = 42;
    request_ns = 2_000;
    log_cap_words = 2048;
    workers_per_drainer = 4;
    drain_period_ns = 0;
    slo_ns = 1_000_000;
  }

type stats = {
  offered : int;
  completed : int;
  slo_ok : int;
  shed_queue : int;
  shed_log : int;
  max_queue_depth : int;
  drain_boosts : int;
  log_full_stalls : int;
  aborts : int;
  contention : int;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  goodput_per_s : float;
  shed_rate : float;
  window_ns : int;
  tenant_completed : int array;
  tenant_p99_us : float array;
}

let tenant_root t = Printf.sprintf "serve.tenant.%02d" t
let tenant_root_prefix = "serve.tenant."

type req = { key : int64; is_get : bool; arrival_ns : int }

(* The per-worker STM configuration: the pipelined commit path (the
   one whose log-full stall this module's admission policy bounds),
   with the same scalable-knob settings as the pipeline arm of
   scale_bench. *)
let mtm_config cfg =
  {
    Mtm.Txn.default_config with
    nthreads = cfg.workers;
    log_cap_words = cfg.log_cap_words;
    ts_lease = 32;
    lock_stripes = 8;
    group_commit = true;
    gc_trunc_batch = 32;
    pipeline = true;
    pipe_window = 32;
    cm = Mtm.Txn.Cm_adaptive;
  }

let us_of_ns ns = float_of_int ns /. 1e3

let run ?sim ?geometry ~dir cfg =
  if cfg.tenants < 1 then invalid_arg "Serve.run: tenants < 1";
  if cfg.workers < 1 then invalid_arg "Serve.run: workers < 1";
  let sim = match sim with Some s -> s | None -> Sim.create () in
  let inst = Mnemosyne.open_instance ?geometry ~mtm:(mtm_config cfg) ~dir () in
  let machine = Mnemosyne.machine inst in
  let env_of () =
    Scm.Env.view machine
      ~delay:(fun ns -> Sim.delay sim ns)
      ~now:(fun () -> Sim.now sim)
  in
  let heap_mu = Sim.Mutex_r.create sim in
  Pmheap.Heap.set_exclusion (Mnemosyne.heap inst) (fun f ->
      Sim.Mutex_r.with_lock heap_mu f);
  (* One persistent root per tenant, created before the simulation so
     workers only ever bind existing trees. *)
  let stores =
    Array.init cfg.tenants (fun t ->
        Apps.Tc_store.create_mnemosyne ~request_ns:cfg.request_ns
          ~root:(tenant_root t) inst)
  in
  let obs = Mnemosyne.obs inst in
  let metrics = obs.Obs.metrics in
  let hist = Obs.Metrics.histogram metrics "serve.latency_ns" in
  let tenant_hists =
    Array.init cfg.tenants (fun t ->
        Obs.Metrics.histogram metrics
          (Printf.sprintf "serve.tenant%d.latency_ns" t))
  in
  let c_completed = Obs.Metrics.counter metrics "serve.completed" in
  let c_shed_queue = Obs.Metrics.counter metrics "serve.shed.queue_full" in
  let c_shed_log = Obs.Metrics.counter metrics "serve.shed.log_pressure" in
  let adm = Admission.make cfg.admission in
  let queues = Array.init cfg.tenants (fun _ -> Queue.create ()) in
  let idle : (unit -> unit) Queue.t = Queue.create () in
  let offered = ref 0 in
  let completed = ref 0 in
  let slo_ok = ref 0 in
  let max_depth = ref 0 in
  let boosts = ref 0 in
  let contention = ref 0 in
  let producers_live = ref cfg.tenants in
  let workers_live = ref cfg.workers in
  let tenant_completed = Array.make cfg.tenants 0 in
  (* Sharded write-back drainers, as in the pipelined scale bench: the
     admission policy's boost path and the STM's wake hook both land on
     the daemon owning the committing thread's shard. *)
  let pool = Mnemosyne.pool inst in
  let nshards = max 1 (cfg.workers / max 1 cfg.workers_per_drainer) in
  let svcs =
    Array.init nshards (fun k ->
        let dview = Region.Pmem.view (Mtm.Txn.pmem pool) (env_of ()) in
        Sim.Service.spawn sim ~work:(fun () ->
            (* [drain_period_ns > 0] models the paper's scarce log
               manager: the daemon only gets the CPU once per period,
               so under a burst the log genuinely fills and the two
               policies differ in what happens next (shed vs stall). *)
            if cfg.drain_period_ns > 0 then Sim.delay sim cfg.drain_period_ns;
            Mtm.Txn.drain_pipeline ~shard:(k, nshards) pool dview))
  in
  let wake_shard tid = Sim.Service.wake svcs.(tid mod nshards) in
  Mtm.Txn.set_drain_wake pool (Some wake_shard);
  (* Open-loop sources: one arrival process per tenant, sleeping seeded
     inter-arrival gaps and never waiting on service.  "Millions of
     simulated users" appear as the aggregate arrival process of a
     [users]-key population, not as a process per user: an open-loop
     source is exactly the limit of many independent users, and the DES
     only needs the arrival instants. *)
  for t = 0 to cfg.tenants - 1 do
    Sim.spawn sim (fun () ->
        let arr = Sim.Arrival.make ~seed:(cfg.seed + (7919 * t)) cfg.arrival in
        let kg = Workload.Keygen.create ~seed:(cfg.seed + (131 * t)) () in
        let zipf = Workload.Keygen.Zipf.make kg ~n:cfg.users ~theta:cfg.theta in
        let continue = ref true in
        while !continue do
          let gap = Sim.Arrival.next_gap_ns arr in
          if Sim.now sim + gap > cfg.duration_ns then continue := false
          else begin
            Sim.delay sim gap;
            incr offered;
            let q = queues.(t) in
            match Admission.admit_enqueue adm ~queue_len:(Queue.length q) with
            | Error _ ->
                Obs.Metrics.incr c_shed_queue;
                Obs.instant obs Obs.Trace.Req_shed ~arg:t
            | Ok () ->
                let key =
                  Int64.of_int (Workload.Keygen.Zipf.draw zipf)
                in
                let is_get =
                  Workload.Keygen.uniform_int kg 100 < cfg.get_pct
                in
                Queue.push { key; is_get; arrival_ns = Sim.now sim } q;
                if Queue.length q > !max_depth then
                  max_depth := Queue.length q;
                (match Queue.take_opt idle with
                | Some resume -> resume ()
                | None -> ())
          end
        done;
        decr producers_live;
        (* the last source releases every parked worker so it can
           observe completion and exit (a parked process at sim end
           would deadlock the run) *)
        if !producers_live = 0 then
          while not (Queue.is_empty idle) do
            (Queue.pop idle) ()
          done)
  done;
  (* Workers: simulator processes bound to STM thread slots, pulling
     round-robin across the tenant queues so one bursty tenant cannot
     monopolize the pool. *)
  for w = 0 to cfg.workers - 1 do
    Sim.spawn sim (fun () ->
        let env = env_of () in
        let th = Mnemosyne.thread inst w env in
        let tworkers =
          Array.map (fun s -> Apps.Tc_store.worker_of_thread s th env) stores
        in
        let kg = Workload.Keygen.create ~seed:(cfg.seed + 977 + w) () in
        let cursor = ref 0 in
        let next () =
          let found = ref None in
          let i = ref 0 in
          while !found = None && !i < cfg.tenants do
            let t = (!cursor + !i) mod cfg.tenants in
            (match Queue.take_opt queues.(t) with
            | Some r ->
                found := Some (t, r);
                cursor := (t + 1) mod cfg.tenants
            | None -> ());
            incr i
          done;
          !found
        in
        let rec with_retry f =
          try f ()
          with Mtm.Txn.Contention ->
            incr contention;
            Sim.delay sim 2_000;
            with_retry f
        in
        let rec loop () =
          match next () with
          | Some (t, r) ->
              let used, cap = Mtm.Txn.log_occupancy th in
              (match Admission.admit_dispatch adm ~used ~cap with
              | Error _ ->
                  (* shed before the transaction exists — and kick the
                     drainer so pressure is already easing when the
                     next request is dispatched *)
                  Obs.Metrics.incr c_shed_log;
                  Obs.instant obs Obs.Trace.Req_shed ~arg:t;
                  wake_shard w
              | Ok () ->
                  if Admission.should_boost adm ~used ~cap then begin
                    incr boosts;
                    wake_shard w
                  end;
                  (if r.is_get then
                     ignore
                       (with_retry (fun () ->
                            Apps.Tc_store.get tworkers.(t) r.key))
                   else
                     let v = Workload.Keygen.value kg cfg.value_bytes in
                     with_retry (fun () ->
                         Apps.Tc_store.put tworkers.(t) r.key v));
                  let lat = Sim.now sim - r.arrival_ns in
                  incr completed;
                  if lat <= cfg.slo_ns then incr slo_ok;
                  tenant_completed.(t) <- tenant_completed.(t) + 1;
                  Obs.Metrics.incr c_completed;
                  Obs.Metrics.record hist lat;
                  Obs.Metrics.record tenant_hists.(t) lat);
              loop ()
          | None ->
              if !producers_live > 0 then begin
                Sim.suspend sim (fun resume -> Queue.push resume idle);
                loop ()
              end
        in
        loop ();
        decr workers_live;
        if !workers_live = 0 then Array.iter Sim.Service.stop svcs)
  done;
  Sim.run sim;
  let mstats = Mtm.Txn.stats pool in
  let window_ns = max 1 (Sim.now sim) in
  let pct h p = us_of_ns (Obs.Metrics.percentile h p) in
  let st =
    {
      offered = !offered;
      completed = !completed;
      slo_ok = !slo_ok;
      shed_queue = Admission.shed_queue adm;
      shed_log = Admission.shed_log adm;
      max_queue_depth = !max_depth;
      drain_boosts = !boosts;
      log_full_stalls = mstats.Mtm.Txn.log_full_stalls;
      aborts = mstats.Mtm.Txn.aborts;
      contention = !contention;
      p50_us = pct hist 50.0;
      p99_us = pct hist 99.0;
      p999_us = pct hist 99.9;
      goodput_per_s = float_of_int !slo_ok /. float_of_int window_ns *. 1e9;
      shed_rate =
        float_of_int (Admission.shed adm) /. float_of_int (max 1 !offered);
      window_ns;
      tenant_completed;
      tenant_p99_us = Array.map (fun h -> pct h 99.0) tenant_hists;
    }
  in
  Mnemosyne.close inst;
  st
