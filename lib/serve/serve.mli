(** A multi-tenant KV serving front-end over {!Apps.Tc_store}.

    This is the harness that turns the benchmark kernel into a {e
    served} system (ROADMAP item 1): per-tenant open-loop arrival
    processes ({!Sim.Arrival}) feed per-tenant request queues; a pool
    of worker processes — each a bound STM thread slot on the pipelined
    commit path — pulls round-robin across tenants and runs each
    request as one durable transaction against that tenant's own
    persistent B+ tree (pstatic root ["serve.tenant.NN"]).

    The point of the module is the {!Admission} policy wired through
    it: per-tenant queue caps shed at arrival, a RAWL-occupancy gate
    sheds at dispatch before a transaction can wedge in the log-full
    append path, and a drainer boost wakes the write-back daemons while
    pressure is still building.  A shed request gets a typed rejection
    and leaves zero persistent side effects.  With the policy disabled
    ({!Admission.legacy}) the same harness reproduces the unbounded
    stall regime, so the two configurations measure the fix against the
    bug (bench section [serve_bench], baseline BENCH_serve.json).

    Latency is measured arrival-to-completion (queueing included) into
    {!Obs.Metrics} histograms — ["serve.latency_ns"] aggregate plus one
    per tenant — which is what makes the stall regime visible as a
    p999 blowup rather than a throughput footnote. *)

(** The admission/backpressure policy; see [admission.mli]. *)
module Admission : module type of Admission

type config = {
  tenants : int;
  workers : int;  (** STM thread slots; also the worker process count. *)
  users : int;  (** Key-space population per tenant (Zipf-ranked). *)
  duration_ns : int;  (** Open-loop arrival horizon (completions may
                          run past it while the backlog drains). *)
  arrival : Sim.Arrival.kind;  (** Per-tenant arrival process. *)
  admission : Admission.config;
  value_bytes : int;
  get_pct : int;  (** Percentage of requests that are point reads. *)
  theta : float;  (** Zipf skew of the key popularity. *)
  seed : int;
  request_ns : int;  (** Front-end parse/dispatch cost per request. *)
  log_cap_words : int;  (** Per-worker RAWL capacity — the pressured
                            resource. *)
  workers_per_drainer : int;  (** Drainer-daemon sharding factor. *)
  drain_period_ns : int;
      (** 0 = drainers sweep as soon as woken.  Positive = each sweep
          waits this long first, modeling the paper's scarce log
          manager CPU — the regime where the RAWL actually fills. *)
  slo_ns : int;  (** Latency objective a completion must meet to count
                     as goodput. *)
}

val default_config : config

type stats = {
  offered : int;  (** Requests the arrival processes generated. *)
  completed : int;
  slo_ok : int;  (** Completions within [slo_ns] of arrival. *)
  shed_queue : int;  (** Rejected at enqueue (queue cap). *)
  shed_log : int;  (** Rejected at dispatch (log occupancy). *)
  max_queue_depth : int;
  drain_boosts : int;  (** Dispatches that pre-woke their drainer. *)
  log_full_stalls : int;  (** Producers that still wedged inline. *)
  aborts : int;
  contention : int;
  p50_us : float;
  p99_us : float;
  p999_us : float;  (** Arrival-to-completion, queueing included. *)
  goodput_per_s : float;  (** Within-SLO completions per simulated
                              second — late answers are not goodput,
                              which is what lets an unbounded-stall
                              config "complete" everything yet still
                              collapse. *)
  shed_rate : float;  (** Shed fraction of offered load. *)
  window_ns : int;  (** Simulated span measured over (arrival horizon
                        plus backlog drain). *)
  tenant_completed : int array;
  tenant_p99_us : float array;
}

val tenant_root : int -> string
(** The pstatic name rooting tenant [t]'s B+ tree, ["serve.tenant.NN"]
    — the per-tenant region layout contract shared with
    [regionctl stats]. *)

val tenant_root_prefix : string
(** ["serve.tenant."], for offline discovery of tenant roots. *)

val run :
  ?sim:Sim.t -> ?geometry:Mnemosyne.geometry -> dir:string -> config -> stats
(** Build the instance in [dir], serve the configured open-loop load to
    completion (offered = completed + shed, always — every admitted
    request is drained even past the arrival horizon) and return the
    tally.  Deterministic given [config] and the simulator's schedule.
    The instance is closed before returning, so [dir] can be inspected
    offline ([regionctl stats] reports per-tenant occupancy from the
    ["serve.tenant.NN"] roots). *)
