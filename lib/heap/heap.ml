module Pmem = Region.Pmem

let magic = 0x4D4E4548_45415031L
let header_page = 4096

let alog_bytes =
  Region.Layout.pages_for Alloc_log.region_bytes * Region.Layout.page_size

type reincarnation = {
  log_records_replayed : int;
  superblocks_scanned : int;
  large_chunks_scanned : int;
  scavenge_ns : int;
}

type t = {
  v : Pmem.view;
  base : int;
  hoard : Hoard.t;
  large : Large_alloc.t;
  mutable exclusion : (unit -> unit) -> unit;
  reincarnation : reincarnation;
  obs : Obs.t;
  alloc_ctr : Obs.Metrics.counter;
  free_ctr : Obs.Metrics.counter;
}

let obs_fields v =
  let obs = v.Pmem.env.Scm.Env.machine.Scm.Env.obs in
  ( obs,
    Obs.Metrics.counter obs.Obs.metrics "heap.allocs",
    Obs.Metrics.counter obs.Obs.metrics "heap.frees" )

let region_bytes_for ~superblocks ~large_bytes =
  header_page + alog_bytes
  + (superblocks * Hoard.superblock_bytes)
  + ((large_bytes + 7) land lnot 7)

let sb_count_addr base = base + 8
let large_len_addr base = base + 16

let alog_base base = base + header_page
let sb_area_base base = alog_base base + alog_bytes

let no_reincarnation =
  {
    log_records_replayed = 0;
    superblocks_scanned = 0;
    large_chunks_scanned = 0;
    scavenge_ns = 0;
  }

let create v ~base ~superblocks ~large_bytes =
  if superblocks < 1 then invalid_arg "Heap.create: superblocks";
  let large_bytes = (large_bytes + 7) land lnot 7 in
  if large_bytes < Large_alloc.min_chunk_bytes then
    invalid_arg "Heap.create: large area too small";
  let alog = Alloc_log.create v ~base:(alog_base base) in
  let hoard = Hoard.create v alog ~base:(sb_area_base base) ~count:superblocks in
  let large_base = sb_area_base base + (superblocks * Hoard.superblock_bytes) in
  let large = Large_alloc.create v alog ~base:large_base ~len:large_bytes in
  Pmem.wtstore v (sb_count_addr base) (Int64.of_int superblocks);
  Pmem.wtstore v (large_len_addr base) (Int64.of_int large_bytes);
  Pmem.fence v;
  Pmem.wtstore v base magic;
  Pmem.fence v;
  let obs, alloc_ctr, free_ctr = obs_fields v in
  { v; base; hoard; large; exclusion = (fun f -> f ());
    reincarnation = no_reincarnation; obs; alloc_ctr; free_ctr }

let attach v ~base =
  if Pmem.load v base <> magic then failwith "Heap.attach: no heap here";
  let superblocks = Int64.to_int (Pmem.load v (sb_count_addr base)) in
  let large_bytes = Int64.to_int (Pmem.load v (large_len_addr base)) in
  let alog, replayed = Alloc_log.attach v ~base:(alog_base base) in
  let hoard = Hoard.attach v alog ~base:(sb_area_base base) ~count:superblocks in
  let large_base = sb_area_base base + (superblocks * Hoard.superblock_bytes) in
  let large = Large_alloc.attach v alog ~base:large_base ~len:large_bytes in
  (* Model the scavenge cost: the paper attributes its ~89 ms mostly to
     rebuilding the heap's volatile indexes at process start. *)
  let scavenge_ns =
    (Hoard.superblocks_scanned hoard * 2_000)
    + (Large_alloc.chunks_scanned large * 400)
    + (replayed * 1_000)
  in
  v.env.Scm.Env.delay scavenge_ns;
  let obs, alloc_ctr, free_ctr = obs_fields v in
  {
    v;
    base;
    hoard;
    large;
    exclusion = (fun f -> f ());
    obs;
    alloc_ctr;
    free_ctr;
    reincarnation =
      {
        log_records_replayed = replayed;
        superblocks_scanned = Hoard.superblocks_scanned hoard;
        large_chunks_scanned = Large_alloc.chunks_scanned large;
        scavenge_ns;
      };
  }

let set_exclusion t f = t.exclusion <- f
let reincarnation t = t.reincarnation
let base t = t.base

let excl t f =
  let result = ref None in
  t.exclusion (fun () -> result := Some (f ()));
  match !result with Some r -> r | None -> assert false

let alloc ?arena t size ~extra =
  if size <= 0 then invalid_arg "Heap.pmalloc: size";
  Obs.Metrics.incr t.alloc_ctr;
  Obs.instant_at t.obs Obs.Trace.Heap_alloc
    ~ts:(t.v.Pmem.env.Scm.Env.now ()) ~arg:size;
  if size <= Hoard.max_block_bytes then Hoard.alloc ?arena t.hoard size ~extra
  else Large_alloc.alloc t.large size ~extra

let free t addr ~extra =
  Obs.Metrics.incr t.free_ctr;
  Obs.instant_at t.obs Obs.Trace.Heap_free
    ~ts:(t.v.Pmem.env.Scm.Env.now ()) ~arg:addr;
  if Hoard.owns t.hoard addr then Hoard.free t.hoard addr ~extra
  else if Large_alloc.owns t.large addr then
    Large_alloc.free t.large addr ~extra
  else invalid_arg "Heap.pfree: address not in this heap"

let pmalloc t size ~slot =
  excl t (fun () ->
      alloc t size ~extra:(fun addr -> [ (slot, Int64.of_int addr) ]))

let pfree t ~slot =
  excl t (fun () ->
      let addr = Int64.to_int (Pmem.load t.v slot) in
      if addr = 0 then invalid_arg "Heap.pfree: slot holds no block";
      free t addr ~extra:[ (slot, 0L) ])

let pmalloc_raw t size = excl t (fun () -> alloc t size ~extra:(fun _ -> []))
let pfree_raw t addr = excl t (fun () -> free t addr ~extra:[])

let block_bytes t addr =
  if Hoard.owns t.hoard addr then Hoard.block_size_of t.hoard addr
  else Large_alloc.payload_size_of t.large addr

let small_limit = Hoard.max_block_bytes

let reserve_small ?arena t size =
  excl t (fun () -> Hoard.reserve ?arena t.hoard size)
let finalize_small t resv = excl t (fun () -> Hoard.finalize t.hoard resv)
let cancel_small t resv = excl t (fun () -> Hoard.cancel t.hoard resv)
let owns_small t addr = Hoard.owns t.hoard addr

let free_prepare_small t ~load addr =
  excl t (fun () -> Hoard.free_prepare t.hoard ~load addr)

let free_commit_small t addr = excl t (fun () -> Hoard.free_commit t.hoard addr)

type occupancy = {
  superblocks : int;
  assigned_superblocks : int;
  large_bytes : int;
  large_free_bytes : int;
}

let occupancy t =
  {
    superblocks = Int64.to_int (Pmem.load t.v (sb_count_addr t.base));
    assigned_superblocks = Hoard.assigned_superblocks t.hoard;
    large_bytes = Int64.to_int (Pmem.load t.v (large_len_addr t.base));
    large_free_bytes = Large_alloc.free_bytes t.large;
  }
