(** The persistent heap: [pmalloc]/[pfree] of paper table 3.

    Combines the Hoard-style superblock allocator (requests up to one
    superblock class) with the dlmalloc-style {!Large_alloc} fallback,
    both made atomic by a shared {!Alloc_log}.  Allocated memory and
    allocation sizes persist across program invocations: memory
    allocated in one run can be freed in the next.

    Both [pmalloc] and [pfree] follow the paper's leak-avoidance
    calling convention: they take the {e address of a persistent
    pointer slot}.  [pmalloc] atomically sets the slot to the new block
    (so a crash right after allocation cannot leak it) and [pfree]
    atomically nullifies it (so a crash right after deallocation cannot
    leave it dangling).

    The [_raw] variants skip the slot write; they exist for the
    transaction system, which routes the pointer update through its own
    redo log and compensates allocations when a transaction aborts. *)

type t

val region_bytes_for : superblocks:int -> large_bytes:int -> int
(** Persistent size needed for a heap of that geometry (header page +
    allocation log + superblock area + large area). *)

val create :
  Region.Pmem.view -> base:int -> superblocks:int -> large_bytes:int -> t
(** Format a heap over fresh zeroed persistent memory. *)

val attach : Region.Pmem.view -> base:int -> t
(** Reincarnate an existing heap: replay the allocation log, then
    scavenge superblocks and the large-chunk chain to rebuild the
    volatile indexes (the dominant process-restart cost the paper
    measures in section 6.3.2). *)

val pmalloc : t -> int -> slot:int -> int
(** [pmalloc t size ~slot] allocates [size] bytes, atomically storing
    the block address into the persistent word at [slot]; returns the
    address. *)

val pfree : t -> slot:int -> unit
(** Frees the block the slot points at and atomically nullifies the
    slot. *)

val pmalloc_raw : t -> int -> int
val pfree_raw : t -> int -> unit

(** {1 Transactional integration}

    {!Mtm} allocates by reserving a block here and routing the bitmap
    and pointer writes through its redo log, so allocation commits and
    aborts with the transaction (see {!Hoard}).  Only superblock-class
    sizes are supported; the transaction layer falls back to
    compensated [pmalloc_raw] above {!small_limit}. *)

val small_limit : int
(** Largest size the transactional path supports (= largest class). *)

val reserve_small : ?arena:int -> t -> int -> Hoard.reservation
val finalize_small : t -> Hoard.reservation -> unit
val cancel_small : t -> Hoard.reservation -> unit
val owns_small : t -> int -> bool
val free_prepare_small : t -> load:(int -> int64) -> int -> int * int
val free_commit_small : t -> int -> unit

val block_bytes : t -> int -> int
(** Usable bytes of an allocated block. *)

val set_exclusion : t -> ((unit -> unit) -> unit) -> unit
(** Install a mutual-exclusion wrapper around heap mutations (e.g. a
    simulator mutex) for multi-threaded use. *)

type reincarnation = {
  log_records_replayed : int;
  superblocks_scanned : int;
  large_chunks_scanned : int;
  scavenge_ns : int;  (** Modeled rebuild cost (paper: ~89 ms). *)
}

val reincarnation : t -> reincarnation
(** Statistics from the last {!attach} ({!create} reports zeros). *)

type occupancy = {
  superblocks : int;  (** Superblocks in the heap. *)
  assigned_superblocks : int;  (** Of which hold live size classes. *)
  large_bytes : int;  (** Size of the large-allocation area. *)
  large_free_bytes : int;  (** Unallocated bytes in that area. *)
}

val occupancy : t -> occupancy
(** Current space usage, for inspection tools ([regionctl stats]).
    Allocations and frees also feed the [heap.allocs]/[heap.frees]
    counters and emit [Heap_alloc]/[Heap_free] trace events on the
    machine's {!Obs.t}. *)

(** {1 On-SCM geometry introspection}

    The persistent layout of a heap image, exposed for the offline
    analyzer ({!Check.Pmfsck}): header page (magic at [base],
    superblock count at [sb_count_addr], large-area length at
    [large_len_addr]), then the allocation log at [alog_base], the
    superblock area at [sb_area_base], and the large area directly
    after the superblocks. *)

val base : t -> int
val magic : int64
val header_page : int
(** Bytes of the header page (4096). *)

val alog_bytes : int
(** Bytes reserved for the allocation log. *)

val sb_count_addr : int -> int
val large_len_addr : int -> int
val alog_base : int -> int
val sb_area_base : int -> int
(** Each takes the heap [base]. *)
