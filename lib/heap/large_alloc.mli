(** The large-object allocator: the paper's dlmalloc fallback
    (section 4.3), used for requests bigger than a superblock class.

    A boundary-tag free-list allocator over a contiguous persistent
    area: each chunk carries a header word (size | used bit) and a
    footer word (size) so freeing can coalesce with both neighbours.
    The free list is volatile and rebuilt by {!attach} with a linear
    walk of the chunk chain; all persistent updates go through the
    shared {!Alloc_log} so operations are atomic, "logging to ensure
    allocations are atomic" as the paper modified dlmalloc to do. *)

type t

val min_chunk_bytes : int
val overhead_bytes : int
(** Header + footer per chunk (16). *)

val create : Region.Pmem.view -> Alloc_log.t -> base:int -> len:int -> t
(** Initialize one big free chunk over fresh persistent memory. *)

val attach : Region.Pmem.view -> Alloc_log.t -> base:int -> len:int -> t
(** Rebuild the free list by walking the chunk chain. *)

val alloc : t -> int -> extra:(int -> (int * int64) list) -> int
(** First-fit allocation; returns the payload address.  [extra] receives
    the payload address and contributes word writes to the atomic
    record.  Splits when the remainder is big enough.  Raises [Failure]
    when no chunk fits. *)

val free : t -> int -> extra:(int * int64) list -> unit
(** Free by payload address, coalescing with free neighbours.  Raises
    [Invalid_argument] on addresses that are not live payload starts. *)

val owns : t -> int -> bool
val payload_size_of : t -> int -> int
val free_bytes : t -> int
val chunks_scanned : t -> int
(** Chunks examined by the last {!attach}. *)

(** {1 On-SCM format introspection}

    Boundary-tag words, exposed for the offline analyzer
    ({!Check.Pmfsck}): each chunk starts with a header word and ends
    with a footer word holding the chunk size. *)

val hdr_size : int64 -> int
val hdr_used : int64 -> bool
val footer_addr : int -> int -> int
(** [footer_addr chunk size] is the chunk's footer-word address. *)
