(** The Hoard-derived small-object allocator (paper section 4.3).

    The heap is split into fixed-size 8-KiB superblocks, each holding an
    array of fixed-size blocks; different superblocks may serve
    different block sizes.  The only persistent state per superblock is
    a header word (magic + block size) and an allocation bitmap — so
    "allocating memory requires only one write to SCM to set a bit in
    the superblock's vector".  The bitmap is kept away from the blocks
    themselves to reduce the risk of corruption.  The volatile index
    (per-class availability lists, free counts, in-flight reservations)
    is rebuilt by {!attach} when a program starts.

    Allocation is split into {e reserve} (volatile: pick a block nobody
    else can pick) and a durable commit, so it composes with both
    consistency mechanisms:

    - the non-transactional path ({!alloc}) commits the bitmap write
      plus the caller's destination-pointer write through {!Alloc_log}
      in one atomic record;
    - the transactional path ({!reserve} / {!finalize} / {!cancel})
      lets {!Mtm} route the bitmap read-modify-write and the pointer
      write through the transaction's own redo log, making allocation
      atomic {e with the rest of the transaction} — a crash can never
      leak a block allocated by an uncommitted transaction. *)

type t

val superblock_bytes : int
(** 8192. *)

val max_block_bytes : int
(** Largest size class (4096); bigger requests go to {!Large_alloc}. *)

val size_classes : int list

val class_of : int -> int
(** Smallest size class holding a request; [Invalid_argument] above
    {!max_block_bytes}. *)

val create : Region.Pmem.view -> Alloc_log.t -> base:int -> count:int -> t
val attach : Region.Pmem.view -> Alloc_log.t -> base:int -> count:int -> t

(** A block picked but not yet durably allocated. *)
type reservation = {
  addr : int;  (** block address *)
  bitmap_addr : int;  (** word whose bit must be set *)
  bit : int;
  header_write : (int * int64) option;
      (** Superblock-assignment header write, when this superblock's
          header is not yet durable.  Must be committed with the bitmap
          write. *)
}

val narenas : int
(** Hoard's per-processor heaps: superblocks belong to one of this many
    arenas, and each thread allocates from its own, so concurrent
    transactions do not conflict on shared bitmap words. *)

val reserve : ?arena:int -> t -> int -> reservation
(** Pick a free block of the class for the size; volatile only.
    [arena] (default 0, taken modulo {!narenas}) selects the preferred
    arena — pass the thread id.  Falls back to a fresh superblock, then
    to stealing from other arenas.  Raises [Failure] when no superblock
    can serve the class. *)

val finalize : t -> reservation -> unit
(** The reservation's writes were durably committed. *)

val cancel : t -> reservation -> unit
(** The surrounding operation aborted; the block returns to the pool. *)

val alloc : ?arena:int -> t -> int -> extra:(int -> (int * int64) list) -> int
(** Non-transactional allocation: reserve, then atomically commit the
    header/bitmap writes plus [extra addr] via the allocation log. *)

val free : t -> int -> extra:(int * int64) list -> unit
(** Non-transactional free.  [Invalid_argument] on addresses that are
    not currently-allocated block starts (catching double frees).  A
    fully-free superblock returns to the unassigned pool. *)

val free_prepare : t -> load:(int -> int64) -> int -> int * int
(** [free_prepare t ~load addr] validates that [addr] is a live block
    {e as seen through [load]} (a transactional load, so a free earlier
    in the same transaction is visible) and returns
    [(bitmap_addr, bit)] for the caller to clear transactionally. *)

val free_commit : t -> int -> unit
(** Volatile accounting after a transactional free committed. *)

val owns : t -> int -> bool
val block_size_of : t -> int -> int
val free_blocks_in_class : t -> int -> int
val assigned_superblocks : t -> int
val superblocks_scanned : t -> int

(** {1 On-SCM format introspection}

    The persistent superblock layout, exposed for the offline analyzer
    ({!Check.Pmfsck}): a header word at the superblock base, then
    {!bitmap_words} bitmap words, then padding up to {!header_bytes},
    then the block array. *)

val header_bytes : int
val bitmap_words : int

val unpack_header : int64 -> int option
(** The block size, if the word is a valid superblock header (magic in
    the top byte, a real size class in the low bits). *)

val blocks_per : int -> int
(** Blocks a superblock of that class holds. *)
