(** A persistent chained hash table.

    The structure of the paper's microbenchmarks (figures 4, 5 and 7):
    "a simple hash table using Mnemosyne transactions for persistence",
    modelled on Christopher Clark's C hash table.  Fixed power-of-two
    bucket array (no rehashing), separate chaining, keys and values are
    byte blobs inlined into each chain node's block.

    Every operation must run inside a durable transaction; the table is
    exactly as consistent as the transactions that touched it.  The
    root is a persistent pointer slot (typically a [pstatic]), so the
    table is found again on the next run. *)

type t
(** A volatile handle (root address + cached geometry). *)

val create : Mtm.Txn.t -> slot:int -> buckets:int -> t
(** Allocate an empty table with [buckets] (rounded up to a power of
    two) chains, rooting it at [slot]. *)

val attach : Mtm.Txn.t -> root:int -> t
(** Re-open a table by its root address (the value in the slot). *)

val root : t -> int

val put : Mtm.Txn.t -> t -> Bytes.t -> Bytes.t -> unit
(** Insert or replace. *)

val find : Mtm.Txn.t -> t -> Bytes.t -> Bytes.t option

val remove : Mtm.Txn.t -> t -> Bytes.t -> bool
(** True if the key was present. *)

val length : Mtm.Txn.t -> t -> int

val iter : Mtm.Txn.t -> t -> (Bytes.t -> Bytes.t -> unit) -> unit

(** {1 On-SCM format introspection}

    The persistent block formats, exposed for the offline analyzer
    ({!Check.Pmfsck}).  Header block: [[magic|buckets]] then the bucket
    array address at [root + 8].  Chain node block:
    [[next] [hash] [klen|vlen] [key bytes] [value bytes]]. *)

val magic : int64
(** Top byte of a header word. *)

val unpack_lens : int64 -> int * int
(** [(klen, vlen)] from a node's length word (at [node + 16]). *)

val node_bytes : klen:int -> vlen:int -> int
val key_addr : int -> int
val value_addr : int -> int -> int
(** [value_addr node klen]. *)

val hash_bytes : Bytes.t -> int64
(** The key hash stored at [node + 8]. *)
