(** A persistent B+ tree, order 16.

    The structure of the paper's Tokyo Cabinet port (section 6.2):
    "Tokyo Cabinet stores data in a B+ tree"; the modified version
    "allocates its B+ tree in a persistent region and performs updates
    in durable transactions".

    Internal nodes hold up to 15 separator keys and 16 children; leaves
    hold up to 15 (key, value-blob) pairs and are chained for range
    scans.  Insertion splits full nodes proactively on the way down.
    Deletion is lazy: entries are removed (and their blobs freed) but
    underfull leaves are not merged — the standard space/time trade
    Tokyo Cabinet itself makes between compactions. *)

type t

val order : int
(** 16. *)

val create : Mtm.Txn.t -> slot:int -> t
val attach : Mtm.Txn.t -> root:int -> t
val root : t -> int

val put : Mtm.Txn.t -> t -> int64 -> Bytes.t -> unit
val find : Mtm.Txn.t -> t -> int64 -> Bytes.t option
val remove : Mtm.Txn.t -> t -> int64 -> bool
val length : Mtm.Txn.t -> t -> int

val iter : Mtm.Txn.t -> t -> (int64 -> Bytes.t -> unit) -> unit
(** Ascending-key scan along the leaf chain. *)

val range : Mtm.Txn.t -> t -> lo:int64 -> hi:int64 -> (int64 * Bytes.t) list
(** Entries with [lo <= key <= hi], ascending. *)

val validate : Mtm.Txn.t -> t -> unit
(** Structural invariants: sorted keys, consistent separators, uniform
    leaf depth, intact leaf chain.  Test hook. *)

(** {1 On-SCM format introspection}

    The persistent block formats, exposed for the offline analyzer
    ({!Check.Pmfsck}).  Header block: [[magic] [count] [root node]
    [scratch]].  Node block ({!node_bytes} bytes): kind word, key-count
    word, then the leaf or internal arrays at the offsets below. *)

val magic : int64
val max_keys : int
val node_bytes : int

val f_kind : int -> int
(** 0 = internal, 1 = leaf. *)

val f_nkeys : int -> int
val leaf_next : int -> int
val leaf_key : int -> int -> int
val leaf_val : int -> int -> int
val int_key : int -> int -> int
val int_child : int -> int -> int
(** Each takes the node address (and an index). *)
