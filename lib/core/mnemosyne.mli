(** Mnemosyne: lightweight persistent memory.

    The public facade over the full stack — SCM device emulation,
    persistent regions, persistence primitives, the persistent heap,
    raw word logs and durable memory transactions — mirroring the
    programming interface of table 3 of the paper:

    {v
    pstatic var            -> pstatic
    pmap / punmap          -> pmap / punmap
    pmalloc / pfree        -> pmalloc / pfree
    log_create/append/...  -> log_create / Log.append / ...
    atomic { ... }         -> atomically
    store/wtstore/flush/
    fence                  -> via view + Region.Pmem
    v}

    A Mnemosyne instance corresponds to one process attached to one SCM
    device with one backing-file directory.  [open_instance] performs
    the full reincarnation sequence of section 6.3.2: boot the region
    manager from the persistent mapping table, remap regions, replay
    the allocator's and the transaction system's logs, and rebuild the
    heap's volatile indexes. *)

type t

type geometry = {
  scm_frames : int;  (** SCM device size in 4-KiB frames. *)
  heap_superblocks : int;
  heap_large_bytes : int;
}

val default_geometry : geometry
(** 16 Ki frames (64 MiB) of SCM; 256 superblocks (2 MiB) + 4 MiB large
    area. *)

val open_instance :
  ?geometry:geometry ->
  ?latency:Scm.Latency_model.t ->
  ?mtm:Mtm.Txn.config ->
  ?seed:int ->
  ?obs:Obs.t ->
  ?machine:Scm.Env.machine ->
  dir:string ->
  unit ->
  t
(** Open (creating or recovering) the instance whose state lives in
    [dir]: the SCM device image [dir/scm.img] (absent = first boot or
    device replacement — regions reload from their backing files) and
    the region backing files.

    [machine] supplies a pre-built machine (from {!prepare_machine})
    instead of loading one from [dir].  The crash-schedule explorer
    needs this split: it arms the machine's crash point before recovery
    runs, and still holds the machine when a {!Scm.Crashpoint}
    [Simulated_crash] unwinds out of [open_instance] mid-recovery. *)

val prepare_machine :
  ?geometry:geometry ->
  ?latency:Scm.Latency_model.t ->
  ?seed:int ->
  ?obs:Obs.t ->
  ?crash_point:Scm.Crashpoint.t ->
  dir:string ->
  unit ->
  Scm.Env.machine
(** The machine-construction half of {!open_instance}: load [dir]'s
    device image (or build a fresh zeroed device), wrapped in fresh
    volatile state.  No recovery is run. *)

val crash_to_disk :
  ?policy:Scm.Crash.policy -> Scm.Env.machine -> dir:string -> unit
(** Apply a crash policy to the machine's volatile state
    ({!Scm.Crash.inject}) and save the surviving device image to [dir],
    ready to be reopened.  The machine is dead afterwards. *)

val is_instance_dir : string -> bool
(** Whether [dir] holds an instance layout (a [scm.img] image or a
    [backing/] directory created by {!open_instance}/{!close}). *)

val reset_dir : string -> (unit, string) result
(** Make [dir] safe to (re)create an instance in: a missing or empty
    directory is left as is; an instance directory is deleted
    recursively; anything else is refused with an explanatory error —
    stress drivers must not [rm -rf] arbitrary user paths. *)

val reincarnate : t -> t
(** Crash the machine (adversarial policy) and go through the full
    reboot: save the device image, discard all volatile state, reopen.
    What you get back is exactly what a power failure would leave. *)

val close : t -> unit
(** Clean shutdown: flush everything, write regions to their backing
    files and save the device image. *)

(** {1 Accessors for the layered APIs} *)

val machine : t -> Scm.Env.machine

val obs : t -> Obs.t
(** The machine's observability handle: counters and commit-latency
    histograms are always on; call {!Obs.enable_trace} on it (or pass
    [?obs] with tracing enabled to {!open_instance}) to also record
    trace events.  {!reincarnate} carries the handle across the crash,
    so metrics span reboots. *)

val pmem : t -> Region.Pmem.t
val heap : t -> Pmheap.Heap.t
val pool : t -> Mtm.Txn.pool
val view : t -> Region.Pmem.view
(** The instance's default (main-thread) view. *)

val dir : t -> string

(** {1 Table-3 API} *)

val pstatic : t -> string -> int -> int
(** Named persistent global: same address every run, zeroed on the
    first (see {!Region.Pstatic}). *)

val pmap : t -> int -> int
val punmap : t -> int -> unit

val pmalloc : t -> int -> slot:int -> int
val pfree : t -> slot:int -> unit

val atomically : t -> (Mtm.Txn.t -> 'a) -> 'a
(** Run a durable memory transaction on the instance's main thread.
    For multi-threaded use bind per-thread contexts with {!thread}. *)

val thread : t -> int -> Scm.Env.t -> Mtm.Txn.thread

(** Raw word logs for append-only structures (table 3's log class). *)
module Log : sig
  type log

  val create : t -> name:string -> cap_words:int -> log
  (** Find-or-create a named log rooted in a [pstatic] slot: on the
      first run a region is mapped and initialized; later runs recover
      it, discarding torn appends. *)

  val recovered : log -> int64 array list
  (** Records that survived in the log at open time. *)

  val append : log -> int64 array -> unit
  (** Appends, truncating synchronously if the log is full. *)

  val flush : log -> unit
  val truncate : log -> unit
end

(** {1 Reincarnation statistics (section 6.3.2)} *)

type reincarnation_stats = {
  boot_ns : int;  (** Region-manager mapping-table scan at OS boot. *)
  remap_ns : int;  (** Re-mapping persistent regions at process start. *)
  heap_scavenge_ns : int;  (** Rebuilding the heap's volatile indexes. *)
  txns_replayed : int;  (** Committed-but-unflushed transactions redone. *)
  txn_replay_ns : int;  (** Simulated time spent replaying them. *)
}

val reincarnation_stats : t -> reincarnation_stats
