module Pmem = Region.Pmem

type geometry = {
  scm_frames : int;
  heap_superblocks : int;
  heap_large_bytes : int;
}

let default_geometry =
  { scm_frames = 16384; heap_superblocks = 256;
    heap_large_bytes = 4 * 1024 * 1024 }

type reincarnation_stats = {
  boot_ns : int;
  remap_ns : int;
  heap_scavenge_ns : int;
  txns_replayed : int;
  txn_replay_ns : int;
}

type t = {
  dir : string;
  geometry : geometry;
  latency : Scm.Latency_model.t;
  mtm_cfg : Mtm.Txn.config;
  seed : int;
  machine : Scm.Env.machine;
  pmem : Region.Pmem.t;
  heap : Pmheap.Heap.t;
  pool : Mtm.Txn.pool;
  main_view : Pmem.view;
  mutable main_thread : Mtm.Txn.thread option;
  stats : reincarnation_stats;
}

let machine t = t.machine
let obs t = t.machine.Scm.Env.obs
let pmem t = t.pmem
let heap t = t.heap
let pool t = t.pool
let view t = t.main_view
let dir t = t.dir
let reincarnation_stats t = t.stats

let image_path dir = Filename.concat dir "scm.img"
let backing_path dir = Filename.concat dir "backing"

let is_instance_dir dir =
  Sys.file_exists dir
  && Sys.is_directory dir
  && (Sys.file_exists (image_path dir) || Sys.file_exists (backing_path dir))

let reset_dir dir =
  let rec rm_rf p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  if not (Sys.file_exists dir) then Ok ()
  else if not (Sys.is_directory dir) then
    Error (Printf.sprintf "%s exists and is not a directory" dir)
  else if Array.length (Sys.readdir dir) = 0 then Ok ()
  else if is_instance_dir dir then Ok (rm_rf dir)
  else
    Error
      (Printf.sprintf
         "%s is non-empty and does not look like a Mnemosyne instance \
          directory (no scm.img or backing/); refusing to delete it"
         dir)

let prepare_machine ?(geometry = default_geometry)
    ?(latency = Scm.Latency_model.default) ?(seed = 42) ?obs ?crash_point
    ~dir () =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  if Sys.file_exists (image_path dir) then
    let dev = Scm.Scm_device.load_image (image_path dir) in
    Scm.Env.machine_of_device ~latency ~seed ?obs ?crash_point dev
  else
    Scm.Env.make_machine ~latency ~seed ?obs ?crash_point
      ~nframes:geometry.scm_frames ()

let open_instance ?(geometry = default_geometry)
    ?(latency = Scm.Latency_model.default)
    ?(mtm = Mtm.Txn.default_config) ?(seed = 42) ?obs ?machine ~dir () =
  let machine =
    match machine with
    | Some m -> m
    | None -> prepare_machine ~geometry ~latency ~seed ?obs ~dir ()
  in
  let backing = Region.Backing_store.open_dir (backing_path dir) in
  let pmem = Region.Pmem.open_instance machine backing in
  let v = Pmem.default_view pmem in
  let heap =
    let slot = Region.Pstatic.get v "mnemosyne.heap" 8 in
    match Int64.to_int (Pmem.load v slot) with
    | 0 ->
        let bytes =
          Pmheap.Heap.region_bytes_for ~superblocks:geometry.heap_superblocks
            ~large_bytes:geometry.heap_large_bytes
        in
        let base = Pmem.pmap v bytes in
        Pmem.wtstore v slot (Int64.of_int base);
        Pmem.fence v;
        Pmheap.Heap.create v ~base ~superblocks:geometry.heap_superblocks
          ~large_bytes:geometry.heap_large_bytes
    | base -> Pmheap.Heap.attach v ~base
  in
  let replay_t0 = v.Pmem.env.now () in
  let pool = Mtm.Txn.create_pool ~config:mtm pmem (Some heap) in
  let txn_replay_ns = v.Pmem.env.now () - replay_t0 in
  let boot = Region.Manager.boot_stats (Pmem.manager pmem) in
  {
    dir;
    geometry;
    latency;
    mtm_cfg = mtm;
    seed;
    machine;
    pmem;
    heap;
    pool;
    main_view = v;
    main_thread = None;
    stats =
      {
        boot_ns = boot.boot_ns;
        remap_ns = Pmem.remap_ns pmem;
        heap_scavenge_ns = (Pmheap.Heap.reincarnation heap).scavenge_ns;
        txns_replayed = Mtm.Txn.recovered_txns pool;
        txn_replay_ns;
      };
  }

let close t =
  Pmem.close t.main_view;
  Scm.Scm_device.save_image t.machine.dev (image_path t.dir)

let crash_to_disk ?policy machine ~dir =
  Scm.Crash.inject ?policy machine;
  Scm.Scm_device.save_image machine.Scm.Env.dev (image_path dir)

let reincarnate t =
  crash_to_disk t.machine ~dir:t.dir;
  (* keep the same observability handle so metrics and the trace span
     the crash *)
  open_instance ~geometry:t.geometry ~latency:t.latency ~mtm:t.mtm_cfg
    ~seed:(t.seed + 1) ~obs:t.machine.Scm.Env.obs ~dir:t.dir ()

(* ------------------------------------------------------------------ *)
(* Table-3 API                                                         *)

let pstatic t name len = Region.Pstatic.get t.main_view name len
let pmap t len = Pmem.pmap t.main_view len
let punmap t addr = Pmem.punmap t.main_view addr
let pmalloc t size ~slot = Pmheap.Heap.pmalloc t.heap size ~slot
let pfree t ~slot = Pmheap.Heap.pfree t.heap ~slot

let thread t i env = Mtm.Txn.thread t.pool i env

let atomically t f =
  let th =
    match t.main_thread with
    | Some th -> th
    | None ->
        let th = Mtm.Txn.thread t.pool 0 t.main_view.Pmem.env in
        t.main_thread <- Some th;
        th
  in
  Mtm.Txn.run th f

module Log = struct
  type log = { rawl : Pmlog.Rawl.t; recovered : int64 array list }

  let create t ~name ~cap_words =
    let v = t.main_view in
    let slot = Region.Pstatic.get v ("mnemosyne.log." ^ name) 8 in
    match Int64.to_int (Pmem.load v slot) with
    | 0 ->
        let base = Pmem.pmap v (Pmlog.Rawl.region_bytes_for ~cap_words) in
        let rawl = Pmlog.Rawl.create v ~base ~cap_words in
        Pmem.wtstore v slot (Int64.of_int base);
        Pmem.fence v;
        { rawl; recovered = [] }
    | base ->
        let rawl, recovered = Pmlog.Rawl.attach v ~base in
        { rawl; recovered }

  let recovered l = l.recovered

  let append l record =
    match Pmlog.Rawl.append l.rawl record with
    | Pmlog.Rawl.Appended _ -> ()
    | Pmlog.Rawl.Full ->
        (* Synchronous truncation keeps the append path simple; callers
           wanting retention manage the head themselves via Pmlog. *)
        Pmlog.Rawl.flush l.rawl;
        Pmlog.Rawl.truncate_all l.rawl;
        (match Pmlog.Rawl.append l.rawl record with
        | Pmlog.Rawl.Appended _ -> ()
        | Pmlog.Rawl.Full -> failwith "Mnemosyne.Log: record exceeds capacity")

  let flush l = Pmlog.Rawl.flush l.rawl
  let truncate l = Pmlog.Rawl.truncate_all l.rawl
end
