(** FastTrack-style happens-before race detection for volatile
    coordination state (DESIGN.md section 18).

    The detector consumes the {!Race_api.hooks} stream fired by the
    instrumented layers (sim synchronization edges, STM coordination
    state, RAWL cursors, admission counters) and reports every pair of
    plain accesses — at least one a write — unordered by
    happens-before.  Because ordering comes from real synchronization
    edges and never from scheduling accident, a race is flagged even on
    runs where the adversarial interleaving did not fire.

    Per-fiber clocks are vector clocks; per-location metadata is
    epoch-compressed in the default {!Fasttrack} mode and kept as full
    per-fiber maps in {!Naive_vc}, the textbook reference the
    equivalence qcheck property compares against. *)

(** Vector clocks over fiber ids (sparse; absent components read 0).
    Exposed for the partial-order law tests. *)
module Vc : sig
  type t

  val empty : t
  val get : t -> int -> int
  val set : t -> int -> int -> t
  val tick : t -> int -> t
  (** Increment the fiber's own component. *)

  val join : t -> t -> t
  (** Pointwise max — the least upper bound. *)

  val leq : t -> t -> bool
  (** Pointwise order: [leq a b] iff every component of [a] is [<=]
      the same component of [b]. *)

  val equal : t -> t -> bool
  val to_string : t -> string
end

type mode =
  | Fasttrack  (** Epoch-compressed metadata (the default). *)
  | Naive_vc  (** Full vector clocks everywhere (test reference). *)

type access = {
  fiber : int;  (** Simulator process id ([-1] = outside any fiber). *)
  clock : int;  (** The accessor's own clock component at the access. *)
  op : int;  (** Global detector op index (dual provenance anchor). *)
  time : int;  (** Simulated nanoseconds. *)
}

type race_kind = Write_write | Read_write | Write_read

type race = {
  loc : string;  (** Annotated location label. *)
  kind : race_kind;
  prior : access;  (** The earlier recorded accessor. *)
  cur : access;  (** The access that exposed the race. *)
}

type t

val create :
  ?mode:mode -> fiber:(unit -> int) -> now:(unit -> int) -> unit -> t
(** [create ~fiber ~now ()] builds a detector resolving the current
    fiber id and simulated time through the given closures (the
    harness wires [fiber] to the simulator's current process). *)

val hooks : t -> Race_api.hooks
(** The hook record to install into the instrumented layers. *)

val races : t -> race list
(** Races reported so far, in report order.  Each location is reported
    at most once: the first race taints it. *)

val race_count : t -> int

val ops : t -> int
(** Hook invocations consumed so far (the op-index clock). *)

val mode : t -> mode

val render : race -> string
(** One-line report with dual provenance: both accessors' op index,
    simulated time and fiber id, plus the location label. *)

val fiber_clock : t -> int -> Vc.t
(** The fiber's current vector clock (tests). *)
