module Pmem = Region.Pmem
module Pstatic = Region.Pstatic
module Layout = Region.Layout
module Heap = Pmheap.Heap
module Hoard = Pmheap.Hoard
module Large = Pmheap.Large_alloc
module Rawl = Pmlog.Rawl

type kind =
  | Region_table
  | Heap_chain
  | Heap_bitmap
  | Leak
  | Pstruct
  | Log_header

let kind_name = function
  | Region_table -> "region_table"
  | Heap_chain -> "heap_chain"
  | Heap_bitmap -> "heap_bitmap"
  | Leak -> "leak"
  | Pstruct -> "pstruct"
  | Log_header -> "log_header"

type finding = { kind : kind; addr : int; detail : string }

type stats = {
  regions : int;
  pstatics : int;
  superblocks : int;
  chunks : int;
  blocks : int;
  reachable : int;
  logs : int;
  log_records : int;
}

type report = { findings : finding list; stats : stats }

let ok r = r.findings = []

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Used by the record scan to mirror recovery's "stop at the first
   out-of-sequence torn bit or implausible length" behaviour. *)
exception Scan_end

let run v =
  let obs = v.Pmem.env.Scm.Env.machine.Scm.Env.obs in
  let findings = ref [] in
  let add kind addr detail =
    Obs.Metrics.incr
      (Obs.Metrics.counter obs.Obs.metrics ("pmfsck.finding." ^ kind_name kind));
    findings := { kind; addr; detail } :: !findings
  in
  let ld a = Pmem.load_nt v a in
  let ldi a = Int64.to_int (ld a) in

  (* ---------------------------------------------------------------- *)
  (* 1. Region table: the root of all metadata.                        *)
  let regions = ref [] in
  if ld Layout.region_table_base <> Pmem.rt_magic then
    add Region_table Layout.region_table_base "bad region-table magic"
  else begin
    if ldi (Layout.region_table_base + 8) <> Pmem.rt_capacity then
      add Region_table
        (Layout.region_table_base + 8)
        (Printf.sprintf "region-table capacity %d, expected %d"
           (ldi (Layout.region_table_base + 8))
           Pmem.rt_capacity);
    for i = 0 to Pmem.rt_capacity - 1 do
      let a = Pmem.entry_addr i in
      let base = ldi a
      and len = ldi (a + 8)
      and inode = ldi (a + 16)
      and flags = ld (a + 24) in
      if flags = Pmem.flag_valid then begin
        let bad = ref false in
        let err msg =
          bad := true;
          add Region_table a
            (Printf.sprintf "entry %d: %s (base=%#x len=%d)" i msg base len)
        in
        if base < Layout.dynamic_base || base mod Layout.page_size <> 0 then
          err "base is not a page in the dynamic area";
        if len <= 0 || len mod Layout.page_size <> 0 then
          err "length is not a positive page multiple";
        if base + len > Layout.persistent_base + Layout.persistent_size then
          err "extent runs past the persistent range";
        if inode <= 0 then err "no backing inode";
        if not !bad then regions := (base, len, i) :: !regions
      end
      else if flags = Pmem.flag_intent then
        add Region_table a
          (Printf.sprintf "entry %d: unresolved pmap intent survived recovery"
             i)
      else if flags <> 0L then
        add Region_table a
          (Printf.sprintf "entry %d: invalid flags %Ld" i flags)
    done
  end;
  let regions = List.sort compare !regions in
  let rec overlap_scan = function
    | (b1, l1, i1) :: ((b2, _, i2) :: _ as rest) ->
        if b1 + l1 > b2 then
          add Region_table (Pmem.entry_addr i2)
            (Printf.sprintf
               "entries %d and %d: extents overlap (%#x+%d vs %#x)" i1 i2 b1
               l1 b2);
        overlap_scan rest
    | _ -> ()
  in
  overlap_scan regions;
  let region_of a =
    List.find_opt (fun (b, l, _) -> a >= b && a < b + l) regions
  in

  (* ---------------------------------------------------------------- *)
  (* 2. The pstatic directory: the persistent roots.                   *)
  let pstatics = ref [] in
  Pstatic.iter_nt v (fun name ~addr ~len ->
      let data_base = Layout.pstatic_base in
      let data_limit = Layout.pstatic_base + Layout.pstatic_size in
      if len <= 0 || addr < data_base || addr + len > data_limit then
        add Region_table addr
          (Printf.sprintf
             "pstatic entry %S: data extent %#x+%d outside the static area"
             name addr len)
      else pstatics := (name, addr, len) :: !pstatics);
  let pstatics = List.rev !pstatics in
  let slot_of name =
    List.find_map
      (fun (n, a, l) -> if n = name && l = 8 then Some a else None)
      pstatics
  in

  (* ---------------------------------------------------------------- *)
  (* 3. Heap metadata: superblock headers/bitmaps, large-chunk chain.  *)
  let extents = ref [] in
  let n_sb = ref 0 and n_chunks = ref 0 in
  let heap_base =
    match slot_of "mnemosyne.heap" with
    | None -> 0
    | Some slot -> ldi slot
  in
  (if heap_base <> 0 then
     if ld heap_base <> Heap.magic then
       add Heap_bitmap heap_base "heap header magic missing"
     else begin
       let sbs = ldi (Heap.sb_count_addr heap_base) in
       let large_len = ldi (Heap.large_len_addr heap_base) in
       let fits =
         sbs >= 1 && large_len >= 0
         &&
         match region_of heap_base with
         | None -> false
         | Some (rb, rl, _) ->
             heap_base
             + Heap.region_bytes_for ~superblocks:sbs ~large_bytes:large_len
             <= rb + rl
       in
       if not fits then
         add Heap_bitmap
           (Heap.sb_count_addr heap_base)
           (Printf.sprintf
              "implausible heap geometry: %d superblocks, %d large bytes" sbs
              large_len)
       else begin
         n_sb := sbs;
         let sb_area = Heap.sb_area_base heap_base in
         for sb = 0 to sbs - 1 do
           let sbb = sb_area + (sb * Hoard.superblock_bytes) in
           let header = ld sbb in
           match Hoard.unpack_header header with
           | Some bsize ->
               let nblocks = Hoard.blocks_per bsize in
               for w = 0 to Hoard.bitmap_words - 1 do
                 let word = ld (sbb + 8 + (8 * w)) in
                 if word <> 0L then
                   for b = 0 to 63 do
                     if Scm.Word.bit word b then begin
                       let idx = (w * 64) + b in
                       if idx >= nblocks then
                         add Heap_bitmap
                           (sbb + 8 + (8 * w))
                           (Printf.sprintf
                              "superblock %d: allocation bit %d beyond the \
                               %d blocks of class %d"
                              sb idx nblocks bsize)
                       else
                         extents :=
                           (sbb + Hoard.header_bytes + (idx * bsize), bsize)
                           :: !extents
                     end
                   done
               done
           | None ->
               if header <> 0L then
                 add Heap_bitmap sbb
                   (Printf.sprintf "superblock %d: invalid header %#Lx" sb
                      header);
               for w = 0 to Hoard.bitmap_words - 1 do
                 if ld (sbb + 8 + (8 * w)) <> 0L then
                   add Heap_bitmap
                     (sbb + 8 + (8 * w))
                     (Printf.sprintf
                        "superblock %d: allocation bits in an unassigned \
                         superblock"
                        sb)
               done
         done;
         (* The large area: walk the boundary-tag chain.  A bad header
            size ends the walk — past it every "chunk" would be
            garbage derived from garbage. *)
         let lbase = sb_area + (sbs * Hoard.superblock_bytes) in
         let limit = lbase + large_len in
         let pos = ref lbase in
         let broken = ref false in
         while (not !broken) && !pos < limit do
           let w = ld !pos in
           let size = Large.hdr_size w in
           if size < Large.min_chunk_bytes || !pos + size > limit then begin
             add Heap_chain !pos
               (Printf.sprintf
                  "chunk chain broken at %#x: header %#Lx gives size %d" !pos
                  w size);
             broken := true
           end
           else begin
             incr n_chunks;
             let fa = Large.footer_addr !pos size in
             let footer = ld fa in
             if footer <> Int64.of_int size then
               add Heap_chain fa
                 (Printf.sprintf
                    "chunk at %#x: footer %Ld contradicts header size %d"
                    !pos footer size);
             if Large.hdr_used w then
               extents := (!pos + 8, size - Large.overhead_bytes) :: !extents;
             pos := !pos + size
           end
         done
       end
     end);

  (* ---------------------------------------------------------------- *)
  (* 4. Conservative mark-sweep from the pstatic roots.                *)
  let exts = Array.of_list (List.sort compare !extents) in
  let nx = Array.length exts in
  let marks = Array.make (max 1 nx) false in
  let find_ext a =
    let lo = ref 0 and hi = ref (nx - 1) and res = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let s, _ = exts.(mid) in
      if s <= a then begin
        res := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    if !res < 0 then None
    else
      let s, l = exts.(!res) in
      if a >= s && a < s + l then Some !res else None
  in
  let work = Stack.create () in
  let mark a =
    if Layout.is_persistent a then
      match find_ext a with
      | Some i when not marks.(i) ->
          marks.(i) <- true;
          Stack.push i work
      | _ -> ()
  in
  let scan_words base len =
    let a = ref base in
    while !a < base + len do
      mark (ldi !a);
      a := !a + 8
    done
  in
  List.iter (fun (_, addr, len) -> scan_words addr len) pstatics;
  while not (Stack.is_empty work) do
    let i = Stack.pop work in
    let s, l = exts.(i) in
    scan_words s l
  done;
  let reachable = ref 0 in
  for i = 0 to nx - 1 do
    if marks.(i) then incr reachable
    else
      let s, l = exts.(i) in
      add Leak s
        (Printf.sprintf
           "allocated block of %d bytes unreachable from any persistent root"
           l)
  done;

  (* ---------------------------------------------------------------- *)
  (* 5. Per-structure invariants for structures rooted in pstatics.    *)
  let read_bytes_nt addr len =
    let padded = (len + 7) land lnot 7 in
    let buf = Bytes.create padded in
    let w = ref 0 in
    while !w < padded do
      Scm.Word.set buf !w (ld (addr + !w));
      w := !w + 8
    done;
    Bytes.sub buf 0 len
  in
  let check_htable root hdr =
    let module H = Pstruct.Phashtable in
    let buckets = Int64.to_int (Int64.logand hdr 0xff_ffffL) in
    if buckets < 1 || buckets land (buckets - 1) <> 0 then
      add Pstruct root
        (Printf.sprintf "hash table: bucket count %d is not a power of two"
           buckets)
    else
      let arr = ldi (root + 8) in
      match find_ext arr with
      | None ->
          add Pstruct (root + 8)
            "hash table: bucket array outside any allocated block"
      | Some ai ->
          let s, l = exts.(ai) in
          if arr + (buckets * 8) > s + l then
            add Pstruct (root + 8)
              (Printf.sprintf
                 "hash table: %d-bucket array overruns its %d-byte block"
                 buckets l)
          else
            for b = 0 to buckets - 1 do
              let steps = ref 0 in
              let node = ref (ldi (arr + (8 * b))) in
              let walking = ref true in
              while !walking && !node <> 0 do
                incr steps;
                if !steps > nx + 1 then begin
                  add Pstruct
                    (arr + (8 * b))
                    (Printf.sprintf
                       "hash table bucket %d: chain does not terminate" b);
                  walking := false
                end
                else
                  match find_ext !node with
                  | None ->
                      add Pstruct !node
                        (Printf.sprintf
                           "hash table bucket %d: chain node outside any \
                            allocated block"
                           b);
                      walking := false
                  | Some ni ->
                      let ns, nl = exts.(ni) in
                      let klen, vlen = H.unpack_lens (ld (!node + 16)) in
                      if !node + H.node_bytes ~klen ~vlen > ns + nl then begin
                        add Pstruct !node
                          (Printf.sprintf
                             "hash table bucket %d: node lengths (%d, %d) \
                              overrun the block"
                             b klen vlen);
                        walking := false
                      end
                      else begin
                        let key = read_bytes_nt (H.key_addr !node) klen in
                        let h = H.hash_bytes key in
                        if ld (!node + 8) <> h then
                          add Pstruct !node
                            (Printf.sprintf
                               "hash table bucket %d: stored key hash does \
                                not match the key"
                               b)
                        else if Int64.to_int h land (buckets - 1) <> b then
                          add Pstruct !node
                            (Printf.sprintf
                               "hash table: node chained under bucket %d but \
                                its key hashes to bucket %d"
                               b
                               (Int64.to_int h land (buckets - 1)));
                        node := ldi !node
                      end
              done
            done
  in
  let check_bptree root =
    let module B = Pstruct.Bp_tree in
    let leaf_depth = ref (-1) in
    let nodes_seen = ref 0 in
    let total_keys = ref 0 in
    let rec walk node depth =
      incr nodes_seen;
      if !nodes_seen > nx + 1 then
        add Pstruct node "B+ tree: node graph does not terminate"
      else
        match find_ext node with
        | None ->
            add Pstruct node "B+ tree: node outside any allocated block"
        | Some ni ->
            let ns, nl = exts.(ni) in
            if node + B.node_bytes > ns + nl then
              add Pstruct node "B+ tree: node overruns its block"
            else
              let kind = ld (B.f_kind node) in
              let nk = ldi (B.f_nkeys node) in
              if kind <> 0L && kind <> 1L then
                add Pstruct node
                  (Printf.sprintf "B+ tree: invalid node kind %Ld" kind)
              else if nk < 0 || nk > B.max_keys then
                add Pstruct node
                  (Printf.sprintf "B+ tree: key count %d out of range" nk)
              else if kind = 1L then begin
                total_keys := !total_keys + nk;
                for i = 1 to nk - 1 do
                  if ld (B.leaf_key node (i - 1)) >= ld (B.leaf_key node i)
                  then
                    add Pstruct (B.leaf_key node i)
                      "B+ tree: leaf keys out of order"
                done;
                if !leaf_depth = -1 then leaf_depth := depth
                else if depth <> !leaf_depth then
                  add Pstruct node "B+ tree: leaves at unequal depth"
              end
              else if nk < 1 then
                add Pstruct node "B+ tree: internal node with no keys"
              else begin
                for i = 1 to nk - 1 do
                  if ld (B.int_key node (i - 1)) >= ld (B.int_key node i) then
                    add Pstruct (B.int_key node i)
                      "B+ tree: separator keys out of order"
                done;
                for i = 0 to nk do
                  walk (ldi (B.int_child node i)) (depth + 1)
                done
              end
    in
    walk (ldi (root + 16)) 0;
    let count = ldi (root + 8) in
    if count <> !total_keys then
      add Pstruct (root + 8)
        (Printf.sprintf
           "B+ tree: header count %d does not match %d keys in leaves" count
           !total_keys)
  in
  List.iter
    (fun (_, addr, len) ->
      if len = 8 then
        let p = ldi addr in
        match find_ext p with
        | None -> ()
        | Some _ ->
            let hdr = ld p in
            if Int64.shift_right_logical hdr 56 = Pstruct.Phashtable.magic
            then check_htable p hdr
            else if hdr = Pstruct.Bp_tree.magic then check_bptree p)
    pstatics;

  (* ---------------------------------------------------------------- *)
  (* 6. RAWL log headers and record-suffix plausibility.               *)
  let n_logs = ref 0 and n_records = ref 0 in
  let check_log name base region_bytes =
    incr n_logs;
    let off, parity, tpos = Rawl.unpack_head (ld base) in
    let cap, _rotate = Rawl.unpack_cap (ld (base + 8)) in
    if cap < 4 then
      add Log_header (base + 8)
        (Printf.sprintf "log %s: implausible capacity %d" name cap)
    else if Rawl.region_bytes_for ~cap_words:cap > region_bytes then
      add Log_header (base + 8)
        (Printf.sprintf
           "log %s: capacity %d words overruns its %d-byte region" name cap
           region_bytes)
    else if off < 0 || off >= cap then
      add Log_header base
        (Printf.sprintf "log %s: head offset %d outside the %d-word buffer"
           name off cap)
    else begin
      (* Replay recovery's scan read-only: walk complete records from
         the head until the torn-bit sequence or a length check stops
         it.  Whatever stops it is a legal torn tail, not a finding. *)
      let pos = ref off and par = ref parity in
      let budget = ref (cap - 1) in
      let read_chunk () =
        if !budget = 0 then raise Scan_end;
        let w = ld (base + Rawl.header_bytes + (8 * !pos)) in
        let chunk, torn = Rawl.extract_torn w tpos in
        if torn <> (!par = 1) then raise Scan_end;
        decr budget;
        incr pos;
        if !pos = cap then begin
          pos := 0;
          par := 1 - !par
        end;
        chunk
      in
      try
        while true do
          let unp = Pmlog.Bitstream.Unpacker.create () in
          let next_word () =
            let rec go () =
              match Pmlog.Bitstream.Unpacker.take unp with
              | Some w -> w
              | None ->
                  Pmlog.Bitstream.Unpacker.feed unp (read_chunk ());
                  go ()
            in
            go ()
          in
          let n = Int64.to_int (next_word ()) in
          if n < 1 || n > Rawl.max_record_words_for ~cap_words:cap then
            raise Scan_end;
          for _ = 1 to n do
            ignore (next_word ())
          done;
          incr n_records
        done
      with Scan_end -> ()
    end
  in
  (if heap_base <> 0 && ld heap_base = Heap.magic then
     check_log "heap.alloc" (Heap.alog_base heap_base) Heap.alog_bytes);
  List.iter
    (fun (name, addr, len) ->
      if
        len = 8
        && (has_prefix ~prefix:"mtm.log." name
           || has_prefix ~prefix:"mnemosyne.log." name)
      then
        let base = ldi addr in
        if base <> 0 then
          match region_of base with
          | Some (rb, rl, _) -> check_log name base (rb + rl - base)
          | None ->
              add Log_header addr
                (Printf.sprintf "log %s: base %#x is not in any region" name
                   base))
    pstatics;

  {
    findings = List.rev !findings;
    stats =
      {
        regions = List.length regions;
        pstatics = List.length pstatics;
        superblocks = !n_sb;
        chunks = !n_chunks;
        blocks = nx;
        reachable = !reachable;
        logs = !n_logs;
        log_records = !n_records;
      };
  }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

let render r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "pmfsck: %d finding(s); %d region(s), %d pstatic(s), %d \
        superblock(s), %d chunk(s), %d block(s) (%d reachable), %d log(s) \
        (%d records)\n"
       (List.length r.findings)
       r.stats.regions r.stats.pstatics r.stats.superblocks r.stats.chunks
       r.stats.blocks r.stats.reachable r.stats.logs r.stats.log_records);
  List.iter
    (fun f ->
      Buffer.add_string b
        (Printf.sprintf "  [%s] addr=%#x: %s\n" (kind_name f.kind) f.addr
           f.detail))
    r.findings;
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json r =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"kind\":\"%s\",\"addr\":%d,\"detail\":\"%s\"}"
           (kind_name f.kind) f.addr (json_escape f.detail)))
    r.findings;
  Buffer.add_string b
    (Printf.sprintf
       "],\"stats\":{\"regions\":%d,\"pstatics\":%d,\"superblocks\":%d,\
        \"chunks\":%d,\"blocks\":%d,\"reachable\":%d,\"logs\":%d,\
        \"log_records\":%d}}"
       r.stats.regions r.stats.pstatics r.stats.superblocks r.stats.chunks
       r.stats.blocks r.stats.reachable r.stats.logs r.stats.log_records);
  Buffer.contents b
