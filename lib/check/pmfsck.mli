(** pmfsck: offline consistency analysis of persistent region images.

    A static analyzer in the fsck tradition: it walks every piece of
    persistent metadata the stack maintains — the region table, the
    [pstatic] directory, the heap's superblock bitmaps and large-chunk
    boundary tags, the data structures rooted in static slots, and the
    RAWL log headers — and cross-checks them against each other,
    reporting typed findings instead of repairing anything.

    The walk is strictly read-only: every word is read through the
    non-faulting {!Region.Pmem.load_nt} path, so a pass never allocates
    a cache line, never faults a page in, and never writes the backing
    store (a property the test suite pins with
    {!Region.Backing_store.global_mutations}).  It is safe on arbitrary
    images, including ones recovered from a mid-crash device state.

    Run it on any opened instance's view:
    [regionctl fsck <dir>] from the command line, or every
    post-recovery image of a crash-schedule sweep via
    [crash_explore --fsck]. *)

type kind =
  | Region_table
      (** Region-table/[pstatic]-directory damage: bad magic, invalid
          flags, out-of-range or overlapping extents, unresolved pmap
          intents that survived recovery. *)
  | Heap_chain
      (** Large-area boundary-tag damage: a chunk header whose size is
          implausible or runs past the area, or a footer that
          contradicts its header. *)
  | Heap_bitmap
      (** Superblock damage: an invalid header word, allocation bits
          beyond the class's block count, or allocation bits in an
          unassigned superblock. *)
  | Leak
      (** An allocated heap block unreachable from any persistent root
          by conservative mark-sweep over the [pstatic] directory. *)
  | Pstruct
      (** A structure invariant broken inside a rooted persistent data
          structure (hash-table bucket chains, B+ tree ordering and
          occupancy). *)
  | Log_header
      (** A RAWL header that cannot be right: implausible capacity,
          capacity overrunning the log's region, or a head offset
          outside the buffer.  Torn record tails are {e not} findings —
          recovery discards them by design. *)

val kind_name : kind -> string
(** Stable snake_case name, used in counters and JSON. *)

type finding = { kind : kind; addr : int; detail : string }

type stats = {
  regions : int;  (** Valid region-table extents. *)
  pstatics : int;  (** [pstatic] directory entries. *)
  superblocks : int;
  chunks : int;  (** Large-area chunks walked. *)
  blocks : int;  (** Allocated heap blocks found. *)
  reachable : int;  (** Of which reachable from persistent roots. *)
  logs : int;  (** Log headers checked. *)
  log_records : int;  (** Complete records in their suffixes. *)
}

type report = { findings : finding list; stats : stats }

val run : Region.Pmem.view -> report
(** Analyze the image behind the view.  Each finding also bumps the
    [pmfsck.finding.<kind>] counter on the machine's {!Obs.t}. *)

val ok : report -> bool
(** No findings. *)

val render : report -> string
(** Human-readable multi-line summary (one line per finding). *)

val to_json : report -> string
(** The full report as a JSON object, for [--json] modes and CI
    artifacts. *)
