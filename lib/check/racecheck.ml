(* FastTrack-style happens-before race detection (DESIGN.md section 18).

   The detector consumes the Race_api hook stream fired by the
   instrumented layers and maintains:

   - one vector clock per fiber (the fiber's knowledge of every other
     fiber's progress);
   - per annotated location, epoch-compressed last-access metadata: the
     last write as a single (fiber, clock) epoch, and the reads either
     as one epoch (the common same-fiber / ordered-readers case) or
     inflated to a full per-fiber read map when reads are concurrent;
   - per location used as a sync object, a sync clock that [release]
     publishes into and [acquire] joins from.

   A plain access races when it is not ordered after the recorded
   accesses it conflicts with: write-after-write and write-after-read
   check the current fiber's clock against every recorded epoch,
   read-after-write checks the write epoch only.  Atomic accesses
   (acquire/release/rmw) are never reported — they are the
   synchronization vocabulary itself.

   Epoch compression is the FastTrack insight: once a write is known
   race-free it is totally ordered after every earlier access, so one
   epoch represents the whole access history; reads stay an epoch
   until two reads are mutually unordered, the only case that needs
   the full map.  [Naive_vc] keeps full per-fiber maps for both reads
   and writes — the textbook vector-clock detector — and exists so the
   test suite can check the equivalence property: both modes taint the
   same locations on the same op (FastTrack's soundness/completeness
   theorem), which test/test_check.ml exercises with qcheck.

   Each race is reported once per location (first report taints the
   location) with dual provenance: both accessors' global op index,
   simulated time, fiber id, and the location label — enough to line
   the report up with the flight recorder and a replayed schedule. *)

module Im = Map.Make (Int)

module Vc = struct
  type t = int Im.t

  let empty : t = Im.empty
  let get c f = match Im.find_opt f c with Some v -> v | None -> 0
  let set c f v : t = Im.add f v c
  let tick c f = Im.add f (get c f + 1) c
  let join a b = Im.union (fun _ x y -> Some (max x y)) a b

  (* Pointwise order with absent components reading as 0. *)
  let leq a b = Im.for_all (fun f v -> v <= get b f) a
  let equal a b = leq a b && leq b a

  let to_string c =
    Im.bindings c
    |> List.map (fun (f, v) -> Printf.sprintf "%d:%d" f v)
    |> String.concat ","
    |> Printf.sprintf "{%s}"
end

type mode = Fasttrack | Naive_vc

type access = { fiber : int; clock : int; op : int; time : int }

type race_kind = Write_write | Read_write | Write_read

type race = {
  loc : string;
  kind : race_kind;
  prior : access;
  cur : access;
}

(* Location metadata.  FastTrack keeps writes as [Wepoch] and promotes
   reads [Repoch] -> [Rmap] only on concurrent readers; Naive_vc keeps
   both as maps from the start.  The maps double as provenance: each
   fiber's entry is its full last-access record, so the read/write
   vector clock is the [clock] projection. *)
type reads = Rnone | Repoch of access | Rmap of (int, access) Hashtbl.t
type writes = Wnone | Wepoch of access | Wmap of (int, access) Hashtbl.t

type loc = {
  label : string;
  mutable w : writes;
  mutable rd : reads;
  mutable sync : Vc.t;
  mutable tainted : bool;
}

type t = {
  mode : mode;
  fiber : unit -> int;
  now : unit -> int;
  mutable ops : int;
  clocks : (int, Vc.t) Hashtbl.t;
  locs : (string, loc) Hashtbl.t;
  mutable races : race list;
  mutable nraces : int;
}

let create ?(mode = Fasttrack) ~fiber ~now () =
  {
    mode;
    fiber;
    now;
    ops = 0;
    clocks = Hashtbl.create 64;
    locs = Hashtbl.create 64;
    races = [];
    nraces = 0;
  }

let mode t = t.mode
let ops t = t.ops
let races t = List.rev t.races
let race_count t = t.nraces

let clock_of t f =
  match Hashtbl.find_opt t.clocks f with
  | Some c -> c
  | None ->
      (* A fiber's first event lives at its own clock 1. *)
      let c = Vc.set Vc.empty f 1 in
      Hashtbl.replace t.clocks f c;
      c

let set_clock t f c = Hashtbl.replace t.clocks f c

let loc_of t label =
  match Hashtbl.find_opt t.locs label with
  | Some l -> l
  | None ->
      let l =
        { label; w = Wnone; rd = Rnone; sync = Vc.empty; tainted = false }
      in
      Hashtbl.replace t.locs label l;
      l

(* Epoch (a.fiber, a.clock) happens-before the current event of the
   fiber whose clock is [c]. *)
let covered c a = a.clock <= Vc.get c a.fiber

let report t l kind ~prior ~cur =
  if not l.tainted then begin
    l.tainted <- true;
    t.nraces <- t.nraces + 1;
    t.races <- { loc = l.label; kind; prior; cur } :: t.races
  end

let access_now t f c =
  { fiber = f; clock = Vc.get c f; op = t.ops; time = t.now () }

(* ---------------------------------------------------------------- *)
(* Plain (checked) accesses                                          *)

let check_writes t l c cur kind =
  match l.w with
  | Wnone -> ()
  | Wepoch a -> if not (covered c a) then report t l kind ~prior:a ~cur
  | Wmap m ->
      Hashtbl.iter
        (fun _ a -> if not (covered c a) then report t l kind ~prior:a ~cur)
        m

let check_reads t l c cur =
  match l.rd with
  | Rnone -> ()
  | Repoch a ->
      if not (covered c a) then report t l Read_write ~prior:a ~cur
  | Rmap m ->
      Hashtbl.iter
        (fun _ a ->
          if not (covered c a) then report t l Read_write ~prior:a ~cur)
        m

let on_write t label =
  t.ops <- t.ops + 1;
  let f = t.fiber () in
  let c = clock_of t f in
  let l = loc_of t label in
  let cur = access_now t f c in
  check_writes t l c cur Write_write;
  check_reads t l c cur;
  match t.mode with
  | Fasttrack ->
      (* A clean write is ordered after every recorded access, so its
         epoch represents the whole history (and after a race the
         location is tainted anyway): collapse both sets.  This is the
         compression whose equivalence with [Naive_vc] the qcheck
         property in test_check.ml exercises. *)
      l.w <- Wepoch cur;
      l.rd <- Rnone
  | Naive_vc ->
      (* The textbook detector: full per-fiber last-access maps,
         nothing ever discarded. *)
      let m = match l.w with Wmap m -> m | _ -> Hashtbl.create 4 in
      Hashtbl.replace m f cur;
      l.w <- Wmap m

let on_read t label =
  t.ops <- t.ops + 1;
  let f = t.fiber () in
  let c = clock_of t f in
  let l = loc_of t label in
  let cur = access_now t f c in
  check_writes t l c cur Write_read;
  match t.mode with
  | Naive_vc ->
      let m = match l.rd with Rmap m -> m | _ -> Hashtbl.create 4 in
      (match l.rd with Rmap _ -> () | _ -> l.rd <- Rmap m);
      Hashtbl.replace m f cur
  | Fasttrack -> (
      match l.rd with
      | Rnone -> l.rd <- Repoch cur
      | Repoch a when a.fiber = f || covered c a ->
          (* Same reader, or the previous read happens-before us: the
             new epoch subsumes it. *)
          l.rd <- Repoch cur
      | Repoch a ->
          (* Two concurrent readers: inflate to the full map. *)
          let m = Hashtbl.create 4 in
          Hashtbl.replace m a.fiber a;
          Hashtbl.replace m f cur;
          l.rd <- Rmap m
      | Rmap m -> Hashtbl.replace m f cur)

(* ---------------------------------------------------------------- *)
(* Atomic accesses and fiber edges                                   *)

let on_acquire t label =
  t.ops <- t.ops + 1;
  let f = t.fiber () in
  let l = loc_of t label in
  set_clock t f (Vc.join (clock_of t f) l.sync)

let on_release t label =
  t.ops <- t.ops + 1;
  let f = t.fiber () in
  let c = clock_of t f in
  let l = loc_of t label in
  (* Join rather than overwrite: with several releasers (many producers
     into one queue) every one of them must happen-before the next
     acquirer. *)
  l.sync <- Vc.join l.sync c;
  set_clock t f (Vc.tick c f)

let on_rmw t label =
  t.ops <- t.ops + 1;
  let f = t.fiber () in
  let l = loc_of t label in
  let c = Vc.join (clock_of t f) l.sync in
  l.sync <- Vc.join l.sync c;
  set_clock t f (Vc.tick c f)

let on_fork t ~parent ~child =
  t.ops <- t.ops + 1;
  let cp = clock_of t parent in
  set_clock t child (Vc.join (clock_of t child) cp);
  set_clock t parent (Vc.tick cp parent)

let on_transfer t ~src ~dst =
  t.ops <- t.ops + 1;
  if src <> dst then begin
    let cs = clock_of t src in
    set_clock t dst (Vc.join (clock_of t dst) cs);
    set_clock t src (Vc.tick cs src)
  end

let hooks t : Race_api.hooks =
  {
    read = on_read t;
    write = on_write t;
    acquire = on_acquire t;
    release = on_release t;
    rmw = on_rmw t;
    fork = (fun ~parent ~child -> on_fork t ~parent ~child);
    transfer = (fun ~src ~dst -> on_transfer t ~src ~dst);
  }

(* ---------------------------------------------------------------- *)
(* Reporting                                                         *)

let kind_name = function
  | Write_write -> "write/write"
  | Read_write -> "read/write"
  | Write_read -> "write/read"

let side = function Write_write -> ("write", "write")
  | Read_write -> ("read", "write")
  | Write_read -> ("write", "read")

let render r =
  let pk, ck = side r.kind in
  Printf.sprintf
    "data race (%s) on %s: %s by fiber %d (op %d, t=%dns) unordered with %s \
     by fiber %d (op %d, t=%dns)"
    (kind_name r.kind) r.loc ck r.cur.fiber r.cur.op r.cur.time pk
    r.prior.fiber r.prior.op r.prior.time

let fiber_clock t f = clock_of t f
