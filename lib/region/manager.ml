open struct
  module Scm_device = Scm.Scm_device
  module Cache = Scm.Cache
end

type boot_stats = {
  frames_scanned : int;
  mappings_rebuilt : int;
  boot_ns : int;
}

type t = {
  machine : Scm.Env.machine;
  backing : Backing_store.t;
  table : Mapping_table.t;
  reserved : int;  (* frames occupied by the mapping table *)
  free : int Queue.t;
  resident : (int * int, int) Hashtbl.t;  (* (inode, page_off) -> frame *)
  rev : (int, int * int) Hashtbl.t;  (* frame -> (inode, page_off) *)
  rng : Random.State.t;
  mutable hooks : (inode:int -> page_off:int -> unit) list;
  mutable swaps_out : int;
  mutable swaps_in : int;
  stats : boot_stats;
}

let machine t = t.machine
let backing t = t.backing
let boot_stats t = t.stats
let free_frames t = Queue.length t.free
let resident_frames t = Hashtbl.length t.resident
let swaps_out t = t.swaps_out
let swaps_in t = t.swaps_in

let make machine backing table reserved stats =
  {
    machine;
    backing;
    table;
    reserved;
    free = Queue.create ();
    resident = Hashtbl.create 1024;
    rev = Hashtbl.create 1024;
    rng = Random.State.make [| 0x5a5a |];
    hooks = [];
    swaps_out = 0;
    swaps_in = 0;
    stats;
  }

let format (machine : Scm.Env.machine) backing =
  let nframes = Scm_device.nframes machine.dev in
  let table = Mapping_table.create machine.dev in
  Mapping_table.format table machine.dev;
  let reserved = Mapping_table.frames_for ~nframes in
  let stats = { frames_scanned = nframes; mappings_rebuilt = 0; boot_ns = 0 } in
  let t = make machine backing table reserved stats in
  for f = reserved to nframes - 1 do
    Queue.push f t.free
  done;
  t

let boot ?(frame_reconstruct_ns = 2800) (machine : Scm.Env.machine) backing =
  let nframes = Scm_device.nframes machine.dev in
  let table = Mapping_table.create machine.dev in
  let reserved = Mapping_table.frames_for ~nframes in
  (match Mapping_table.get table 0 with
  | Mapping_table.Reserved -> ()
  | _ -> failwith "Manager.boot: device is not formatted");
  let t = make machine backing table reserved
      { frames_scanned = 0; mappings_rebuilt = 0; boot_ns = 0 } in
  let rebuilt = ref 0 in
  let duplicates = ref [] in
  Mapping_table.iter table (fun frame entry ->
      match entry with
      | Mapping_table.Reserved -> ()
      | Mapping_table.Free -> Queue.push frame t.free
      | Mapping_table.Mapped { inode; page_off } ->
          if Hashtbl.mem t.resident (inode, page_off) then
            (* a crash mid-migration (wear leveling) can leave two
               frames holding identical copies of a page: keep the
               first, release the duplicate *)
            duplicates := frame :: !duplicates
          else begin
            Hashtbl.replace t.resident (inode, page_off) frame;
            Hashtbl.replace t.rev frame (inode, page_off);
            incr rebuilt
          end);
  let kenv = Scm.Env.standalone machine in
  List.iter
    (fun frame ->
      Mapping_table.set_free table kenv ~frame;
      Queue.push frame t.free)
    !duplicates;
  {
    t with
    stats =
      {
        frames_scanned = nframes;
        mappings_rebuilt = !rebuilt;
        boot_ns = nframes * frame_reconstruct_ns;
      };
  }

let frame_of t ~inode ~page_off = Hashtbl.find_opt t.resident (inode, page_off)

let frame_addr t frame = frame * Scm_device.frame_size t.machine.dev

(* Write back any dirty cache lines covering [frame] and invalidate them
   all, so the device holds the truth and no stale line shadows data
   loaded into a recycled frame. *)
let purge_frame_lines ?(writeback = true) t frame =
  let fs = Scm_device.frame_size t.machine.dev in
  let base = frame_addr t frame in
  let line = Cache.line_size t.machine.cache in
  let a = ref base in
  while !a < base + fs do
    if writeback then Cache.writeback_line t.machine.cache !a;
    Cache.invalidate_line t.machine.cache !a;
    a := !a + line
  done

let detach t env frame ~write_back =
  match Hashtbl.find_opt t.rev frame with
  | None -> ()
  | Some (inode, page_off) ->
      if write_back then begin
        purge_frame_lines t frame;
        let fs = Scm_device.frame_size t.machine.dev in
        let buf = Bytes.create fs in
        Scm_device.read_into t.machine.dev (frame_addr t frame) buf 0 fs;
        Backing_store.write_page t.backing inode page_off buf;
        env.Scm.Env.delay (Backing_store.page_io_ns t.backing);
        t.swaps_out <- t.swaps_out + 1;
        let obs = t.machine.Scm.Env.obs in
        Obs.Metrics.incr
          (Obs.Metrics.counter obs.Obs.metrics "region.swaps_out");
        Obs.instant_at obs Obs.Trace.Swap_out ~ts:(env.Scm.Env.now ())
          ~arg:frame
      end
      else purge_frame_lines ~writeback:false t frame;
      Mapping_table.set_free t.table env ~frame;
      Hashtbl.remove t.resident (inode, page_off);
      Hashtbl.remove t.rev frame;
      List.iter (fun hook -> hook ~inode ~page_off) t.hooks

let pick_victim t =
  if Hashtbl.length t.resident = 0 then None
  else begin
    (* Reservoir-sample a random resident frame. *)
    let n = Hashtbl.length t.resident in
    let idx = Random.State.int t.rng n in
    let i = ref 0 in
    let victim = ref None in
    (try
       Hashtbl.iter
         (fun _ frame ->
           if !i = idx then begin
             victim := Some frame;
             raise Exit
           end;
           incr i)
         t.resident
     with Exit -> ());
    !victim
  end

let evict_one t env =
  match pick_victim t with
  | None -> false
  | Some frame ->
      detach t env frame ~write_back:true;
      Queue.push frame t.free;
      true

let take_frame t env =
  match Queue.take_opt t.free with
  | Some f -> f
  | None ->
      if not (evict_one t env) then
        failwith "Manager: out of SCM frames and nothing evictable";
      Queue.take t.free

let install t env frame ~inode ~page_off =
  Mapping_table.set_mapped t.table env ~frame ~inode ~page_off;
  Hashtbl.replace t.resident (inode, page_off) frame;
  Hashtbl.replace t.rev frame (inode, page_off)

let fault_in t env ~inode ~page_off =
  match frame_of t ~inode ~page_off with
  | Some frame -> frame
  | None ->
      let frame = take_frame t env in
      purge_frame_lines ~writeback:false t frame;
      let fs = Scm_device.frame_size t.machine.dev in
      let buf = Bytes.create fs in
      Backing_store.read_page t.backing inode page_off buf;
      Scm_device.write_from t.machine.dev (frame_addr t frame) buf 0 fs;
      env.Scm.Env.delay (Backing_store.page_io_ns t.backing);
      t.swaps_in <- t.swaps_in + 1;
      let obs = t.machine.Scm.Env.obs in
      Obs.Metrics.incr (Obs.Metrics.counter obs.Obs.metrics "region.swaps_in");
      Obs.instant_at obs Obs.Trace.Swap_in ~ts:(env.Scm.Env.now ()) ~arg:frame;
      install t env frame ~inode ~page_off;
      frame

let alloc_fresh t env ~inode ~page_off =
  match frame_of t ~inode ~page_off with
  | Some frame -> frame
  | None ->
      let frame = take_frame t env in
      purge_frame_lines ~writeback:false t frame;
      let fs = Scm_device.frame_size t.machine.dev in
      Scm_device.write_from t.machine.dev (frame_addr t frame)
        (Bytes.make fs '\000') 0 fs;
      install t env frame ~inode ~page_off;
      frame

let release_pages t env ~inode =
  let frames =
    Hashtbl.fold
      (fun (i, _) frame acc -> if i = inode then frame :: acc else acc)
      t.resident []
  in
  List.iter
    (fun frame ->
      detach t env frame ~write_back:false;
      Queue.push frame t.free)
    frames

let sync_to_backing t env ~inode =
  let pages =
    Hashtbl.fold
      (fun (i, off) frame acc -> if i = inode then (off, frame) :: acc else acc)
      t.resident []
  in
  let fs = Scm_device.frame_size t.machine.dev in
  let buf = Bytes.create fs in
  List.iter
    (fun (page_off, frame) ->
      purge_frame_lines t frame;
      Scm_device.read_into t.machine.dev (frame_addr t frame) buf 0 fs;
      Backing_store.write_page t.backing inode page_off buf;
      env.Scm.Env.delay (Backing_store.page_io_ns t.backing))
    pages

let on_evict t hook = t.hooks <- hook :: t.hooks

let wear_level t ?(max_moves = 64) env ~threshold =
  let dev = t.machine.dev in
  let nframes = Scm_device.nframes dev in
  let mean =
    float_of_int (Scm_device.total_writes dev) /. float_of_int nframes
  in
  let limit = threshold *. max 1.0 mean in
  (* hottest resident frames first *)
  let hot =
    Hashtbl.fold
      (fun (inode, page_off) frame acc ->
        let w = Scm_device.write_count dev frame in
        if float_of_int w > limit then (w, frame, inode, page_off) :: acc
        else acc)
      t.resident []
    |> List.sort (fun (a, _, _, _) (b, _, _, _) -> compare b a)
  in
  let coldest_free () =
    Queue.fold
      (fun acc f ->
        match acc with
        | Some best
          when Scm_device.write_count dev best <= Scm_device.write_count dev f
          ->
            acc
        | _ -> Some f)
      None t.free
  in
  let moves = ref 0 in
  (try
     List.iter
       (fun (w, frame, inode, page_off) ->
         if !moves >= max_moves then raise Exit;
         match coldest_free () with
         | Some target when Scm_device.write_count dev target < w ->
             (* take [target] off the free list *)
             let remaining = Queue.create () in
             Queue.iter
               (fun f -> if f <> target then Queue.push f remaining)
               t.free;
             Queue.clear t.free;
             Queue.transfer remaining t.free;
             (* 1. settle and copy the page contents *)
             purge_frame_lines t frame;
             purge_frame_lines ~writeback:false t target;
             let fs = Scm_device.frame_size dev in
             let buf = Bytes.create fs in
             Scm_device.read_into dev (frame_addr t frame) buf 0 fs;
             Scm_device.write_from dev (frame_addr t target) buf 0 fs;
             env.Scm.Env.delay (fs / 4);  (* memcpy *)
             (* 2. install the new mapping durably, then 3. free the
                old frame; a crash in between leaves two identical
                copies, either of which recovery may keep *)
             Mapping_table.set_mapped t.table env ~frame:target ~inode
               ~page_off;
             Mapping_table.set_free t.table env ~frame;
             Hashtbl.replace t.resident (inode, page_off) target;
             Hashtbl.remove t.rev frame;
             Hashtbl.replace t.rev target (inode, page_off);
             Queue.push frame t.free;
             List.iter (fun hook -> hook ~inode ~page_off) t.hooks;
             Obs.Metrics.incr
               (Obs.Metrics.counter t.machine.Scm.Env.obs.Obs.metrics
                  "region.wear_moves");
             incr moves
         | _ -> ())
       hot
   with Exit -> ());
  !moves
