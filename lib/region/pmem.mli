(** libmnemosyne's region layer: persistent virtual memory.

    This is the user-mode half of the two-layer design of paper
    section 4.2.  It owns the process's persistent address space:

    - it records every region in the 16-KiB {e region table} at the base
      of the static region, which doubles as an intention log so that a
      crash in the middle of [pmap] never leaks a half-created region;
    - it translates persistent virtual addresses to SCM frames through
      the kernel {!Manager}, faulting pages in from backing files on
      first touch;
    - it exposes the memory primitives of table 3 on {e virtual}
      addresses, which is what every layer above (log, heap,
      transactions) programs against.

    A {!view} pairs the shared region state with one thread's
    {!Scm.Env.t}, so costs are charged to the right simulated thread. *)

type t

type view = { pmem : t; env : Scm.Env.t }

val open_instance : Scm.Env.machine -> Backing_store.t -> t
(** Attach to (or initialize) persistent memory: boots or formats the
    region manager, creates or maps the static region, replays the
    region-table intention log (recreating completed regions and
    destroying partially created ones), and garbage-collects orphaned
    backing files. *)

val manager : t -> Manager.t
val view : t -> Scm.Env.t -> view
val default_view : t -> view
(** A view over a standalone environment created at [open_instance];
    convenient for single-threaded use. *)

val remap_ns : t -> int
(** Modeled cost of recreating the address-space mappings at process
    start (the "1.1 ms" of paper section 6.3.2). *)

(** {1 Regions} *)

val pmap : view -> ?addr:int -> int -> int
(** [pmap v len] creates a dynamic persistent region of [len] bytes
    (rounded up to pages) and returns its base address.  The paper's
    [pmap] takes a persistent pointer to receive the address so the
    region cannot leak; callers with that requirement should store the
    result via {!store} into a [pstatic] slot inside a transaction —
    see {!Pstatic}. *)

val punmap : view -> int -> unit
(** Delete the whole region based at the given address: clears its
    region-table entry, releases its frames and deletes its backing
    file.  (Partial unmapping is not supported; DESIGN.md section 6.) *)

val regions : t -> (int * int) list
(** [(addr, len)] of every live dynamic region, ascending. *)

val region_containing : t -> int -> (int * int) option

(** {2 Region-table introspection}

    The on-SCM region table layout, exposed read-only for the offline
    image analyzer ({!Check.Pmfsck}) and for corruption-seeding tests.
    The table occupies [Layout.region_table_size] bytes at
    [Layout.region_table_base]: a 64-byte header (magic, capacity)
    followed by 32-byte entries [base; len; inode; flags]. *)

val rt_magic : int64
val rt_capacity : int
val entry_addr : int -> int
(** Virtual address of region-table entry [i]. *)

val flag_intent : int64
val flag_valid : int64

val is_persistent : int -> bool
(** The reserved-range check (constant time, no lookup). *)

(** {1 Memory primitives on virtual addresses} *)

val load : view -> int -> int64

val load_nt : view -> int -> int64
(** Non-temporal load: coherent but never allocates a cache line and
    never faults a page in — a non-resident page is read from its
    backing file without installing a frame.  For recovery-time sweeps
    over whole regions (see {!Scm.Primitives.load_nt}). *)

val store : view -> int -> int64 -> unit
val wtstore : view -> int -> int64 -> unit
val flush : view -> int -> unit
val fence : view -> unit

val fence_many : view list -> unit
(** One fence covering several views' write-combining buffers (see
    {!Scm.Primitives.fence_group}); the head of the list pays the
    cost. *)

val load_bytes : view -> int -> Bytes.t -> int -> int -> unit
val store_bytes : view -> int -> Bytes.t -> int -> int -> unit
val wtstore_bytes : view -> int -> Bytes.t -> int -> int -> unit
val persist : view -> int -> int -> unit
(** Flush all lines covering the range, then fence. *)

val translate : view -> int -> int
(** Virtual to physical (faulting the page in); exposed for tests. *)

val wear_level : ?max_moves:int -> view -> threshold:float -> int
(** Run one wear-leveling pass over the resident frames (see
    {!Manager.wear_level}); stale translations are invalidated through
    the eviction hook. *)

(** {1 Shutdown} *)

val close : view -> unit
(** Clean shutdown: flush caches for, and write back, every region to
    its backing file, so the backing store alone suffices to recover. *)
