type t = {
  dir : string;
  page_io_ns : int;
  names : (string, int) Hashtbl.t;
  mutable next_inode : int;
}

(* Monotone count of mutating operations across every store.  Lets the
   crash-point explorer prove a scratch directory was left untouched by
   a run and skip re-seeding it from the setup copy. *)
let mutations = ref 0
let global_mutations () = !mutations

let index_path t = Filename.concat t.dir "index"

let file_path t inode = Filename.concat t.dir (Printf.sprintf "f%06d" inode)

let save_index t =
  let oc = open_out_bin (index_path t) in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_binary_int oc t.next_inode;
      output_binary_int oc (Hashtbl.length t.names);
      Hashtbl.iter
        (fun name inode ->
          output_binary_int oc (String.length name);
          output_string oc name;
          output_binary_int oc inode)
        t.names)

let load_index t =
  if Sys.file_exists (index_path t) then begin
    let ic = open_in_bin (index_path t) in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        t.next_inode <- input_binary_int ic;
        let n = input_binary_int ic in
        for _ = 1 to n do
          let len = input_binary_int ic in
          let name = really_input_string ic len in
          let inode = input_binary_int ic in
          Hashtbl.replace t.names name inode
        done)
  end

let open_dir ?(page_io_ns = 2500) dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let t = { dir; page_io_ns; names = Hashtbl.create 8; next_inode = 1 } in
  load_index t;
  t

let dir t = t.dir
let page_io_ns t = t.page_io_ns

let create_file t ?name () =
  incr mutations;
  let inode = t.next_inode in
  t.next_inode <- inode + 1;
  let oc = open_out_bin (file_path t inode) in
  close_out oc;
  (match name with Some n -> Hashtbl.replace t.names n inode | None -> ());
  save_index t;
  inode

let find t name = Hashtbl.find_opt t.names name

let delete_file t inode =
  incr mutations;
  let p = file_path t inode in
  if Sys.file_exists p then Sys.remove p;
  let stale =
    Hashtbl.fold (fun n i acc -> if i = inode then n :: acc else acc) t.names []
  in
  List.iter (Hashtbl.remove t.names) stale;
  save_index t

let file_exists t inode = Sys.file_exists (file_path t inode)

let list_inodes t =
  Sys.readdir t.dir |> Array.to_list
  |> List.filter_map (fun name ->
         if String.length name = 7 && name.[0] = 'f' then
           int_of_string_opt (String.sub name 1 6)
         else None)
  |> List.sort compare

let read_page t inode page_off buf =
  let p = file_path t inode in
  if not (Sys.file_exists p) then Bytes.fill buf 0 (Bytes.length buf) '\000'
  else begin
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let size = in_channel_length ic in
        let start = page_off * Bytes.length buf in
        if start >= size then Bytes.fill buf 0 (Bytes.length buf) '\000'
        else begin
          seek_in ic start;
          let avail = min (Bytes.length buf) (size - start) in
          really_input ic buf 0 avail;
          if avail < Bytes.length buf then
            Bytes.fill buf avail (Bytes.length buf - avail) '\000'
        end)
  end

let write_page t inode page_off buf =
  incr mutations;
  let p = file_path t inode in
  let fd = Unix.openfile p [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let start = page_off * Bytes.length buf in
      ignore (Unix.lseek fd start Unix.SEEK_SET);
      let rec write_all off remaining =
        if remaining > 0 then begin
          let n = Unix.write fd buf off remaining in
          write_all (off + n) (remaining - n)
        end
      in
      write_all 0 (Bytes.length buf))

let sync t =
  incr mutations;
  save_index t
