(** [pstatic] variables: named persistent globals (paper section 4.2).

    The paper's [pstatic] keyword makes the linker place a global in the
    [.persistent] ELF section; the variable is initialized the first
    time the program runs and keeps its value across invocations.  Our
    equivalent is a persistent name -> (address, length) directory in
    the static region: [get v "counter" 8] returns the same address on
    every run, zero-initialized on the first.

    Static variables are the durable roots of everything else — the
    paper's idiom is "static persistent variables serve as pointers into
    dynamically allocated persistent regions". *)

val capacity : int
(** Maximum number of static variables (directory slots). *)

val max_name_length : int

val lookup : Pmem.view -> string -> (int * int) option
(** [(addr, len)] if the variable exists. *)

val get : Pmem.view -> string -> int -> int
(** [get v name len] returns the variable's address, allocating and
    zero-initializing it on first use.  Raises [Invalid_argument] if it
    exists with a different length, [Failure] if the directory or data
    area is full.  Crash-safe: a variable either exists completely or
    not at all. *)

val iter : Pmem.view -> (string -> addr:int -> len:int -> unit) -> unit
(** Enumerate all static variables. *)

val iter_nt : Pmem.view -> (string -> addr:int -> len:int -> unit) -> unit
(** Like {!iter}, but entirely over the non-faulting {!Pmem.load_nt}
    path and without initializing an empty directory: safe on
    arbitrary (even corrupt) images and guaranteed not to perturb
    cache state, frames, or the backing store.  A corrupt entry whose
    name length is implausible is reported with an empty name. *)
