(** Backing files for persistent regions.

    Every region is associated with a file (paper section 4.2): the
    region manager swaps SCM pages out to it under memory pressure, and
    it is how a region survives replacement of the SCM device itself.
    Files live in a real directory — the analogue of the program's
    working directory / [MNEMOSYNE_REGION_PATH].

    Files are identified by inode number; a small persistent index file
    maps names ("static", region files) to inodes, standing in for the
    filesystem namespace. *)

type t

val open_dir : ?page_io_ns:int -> string -> t
(** Open (creating if needed) a backing directory.  [page_io_ns] is the
    charged cost of one 4-KiB page transfer to or from the file system
    (the swap path cost). *)

val dir : t -> string
val page_io_ns : t -> int

val create_file : t -> ?name:string -> unit -> int
(** Create an empty backing file; returns its inode.  A [name] makes the
    file findable with {!find} (used for the static region's file). *)

val find : t -> string -> int option

val delete_file : t -> int -> unit
val file_exists : t -> int -> bool

val list_inodes : t -> int list
(** Inodes of all files present in the directory (orphan-collection
    scan). *)

val read_page : t -> int -> int -> Bytes.t -> unit
(** [read_page t inode page_off buf] fills [buf] (one page) from page
    [page_off] of file [inode]; absent pages read as zeros. *)

val write_page : t -> int -> int -> Bytes.t -> unit

val sync : t -> unit
(** Flush the index; file data is written through. *)

val global_mutations : unit -> int
(** Monotone count of mutating operations ({!create_file},
    {!delete_file}, {!write_page}, {!sync}) across {e all} stores in the
    process.  The crash-point explorer reads it before and after a run
    to prove its scratch directory was left untouched — and, if so,
    skips re-seeding the directory from the pristine setup copy. *)
