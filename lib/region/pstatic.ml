let capacity = 128
let max_name_length = 32

let magic = 0x4D4E4553_54415431L
let header_bytes = 64
let entry_bytes = 64
let dir_base = Layout.pstatic_base + header_bytes
let data_base = dir_base + (capacity * entry_bytes)
let data_limit = Layout.pstatic_base + Layout.pstatic_size

let bump_addr = Layout.pstatic_base + 8
let entry_addr i = dir_base + (i * entry_bytes)

let hash_name name =
  (* FNV-1a, 64-bit *)
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    name;
  !h

let ensure_init v =
  if Pmem.load v Layout.pstatic_base <> magic then begin
    Pmem.wtstore v bump_addr (Int64.of_int data_base);
    Pmem.wtstore v Layout.pstatic_base magic;
    Pmem.fence v
  end

let read_name v i len =
  let buf = Bytes.create len in
  Pmem.load_bytes v (entry_addr i + 16) buf 0 len;
  Bytes.to_string buf

let entry v i =
  let a = entry_addr i in
  let addr = Int64.to_int (Pmem.load v (a + 48)) in
  if addr = 0 then None
  else
    let name_len = Int64.to_int (Pmem.load v (a + 8)) in
    let len = Int64.to_int (Pmem.load v (a + 56)) in
    Some (read_name v i name_len, addr, len)

let lookup v name =
  ensure_init v;
  let h = hash_name name in
  let rec go i =
    if i >= capacity then None
    else
      let a = entry_addr i in
      if
        Pmem.load v (a + 48) <> 0L
        && Pmem.load v a = h
        && Int64.to_int (Pmem.load v (a + 8)) = String.length name
        && read_name v i (String.length name) = name
      then Some (Int64.to_int (Pmem.load v (a + 48)),
                 Int64.to_int (Pmem.load v (a + 56)))
      else go (i + 1)
  in
  go 0

let find_free_slot v =
  let rec go i =
    if i >= capacity then failwith "Pstatic: directory full"
    else if Pmem.load v (entry_addr i + 48) = 0L then i
    else go (i + 1)
  in
  go 0

let get v name len =
  if String.length name > max_name_length then
    invalid_arg "Pstatic.get: name too long";
  if len <= 0 then invalid_arg "Pstatic.get: length";
  match lookup v name with
  | Some (addr, len') ->
      if len' <> len then
        invalid_arg
          (Printf.sprintf "Pstatic.get: %S exists with length %d, not %d" name
             len' len);
      addr
  | None ->
      ensure_init v;
      let len_aligned = Scm.Word.align_up len in
      let addr = Int64.to_int (Pmem.load v bump_addr) in
      if addr + len_aligned > data_limit then
        failwith "Pstatic: data area full";
      (* Bump first, then the entry, address word last: a crash at any
         point leaves either a leaked hole or an invalid entry, never a
         torn variable. *)
      Pmem.wtstore v bump_addr (Int64.of_int (addr + len_aligned));
      Pmem.fence v;
      (* Fresh regions are zero-filled, but this slot may be reused
         space; zero it explicitly, durably. *)
      let a = ref addr in
      while !a < addr + len_aligned do
        Pmem.wtstore v !a 0L;
        a := !a + 8
      done;
      let slot = find_free_slot v in
      let ea = entry_addr slot in
      Pmem.wtstore v ea (hash_name name);
      Pmem.wtstore v (ea + 8) (Int64.of_int (String.length name));
      let name_buf = Bytes.make max_name_length '\000' in
      Bytes.blit_string name 0 name_buf 0 (String.length name);
      Pmem.wtstore_bytes v (ea + 16) name_buf 0 max_name_length;
      Pmem.wtstore v (ea + 56) (Int64.of_int len);
      Pmem.fence v;
      Pmem.wtstore v (ea + 48) (Int64.of_int addr);
      Pmem.fence v;
      addr

let iter v f =
  ensure_init v;
  for i = 0 to capacity - 1 do
    match entry v i with
    | Some (name, addr, len) -> f name ~addr ~len
    | None -> ()
  done

(* Read-only enumeration over the non-faulting load path: the offline
   analyzer walks the directory of a possibly-corrupt image without
   touching cache state, frames, or the backing store.  Entries with an
   implausible name length are surfaced with an empty name rather than
   skipped, so a corrupted directory is still visible to the caller. *)
let iter_nt v f =
  if Pmem.load_nt v Layout.pstatic_base = magic then
    for i = 0 to capacity - 1 do
      let a = entry_addr i in
      let addr = Int64.to_int (Pmem.load_nt v (a + 48)) in
      if addr <> 0 then begin
        let name_len = Int64.to_int (Pmem.load_nt v (a + 8)) in
        let len = Int64.to_int (Pmem.load_nt v (a + 56)) in
        let name =
          if name_len < 0 || name_len > max_name_length then ""
          else begin
            let buf = Bytes.create max_name_length in
            let w = ref 0 in
            while !w < max_name_length do
              Scm.Word.set buf !w (Pmem.load_nt v (a + 16 + !w));
              w := !w + 8
            done;
            Bytes.sub_string buf 0 name_len
          end
        in
        f name ~addr ~len
      end
    done
