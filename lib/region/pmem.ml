open struct
  module P = Scm.Primitives
end

type region = { base : int; len : int; inode : int; slot : int }

type t = {
  mgr : Manager.t;
  backing : Backing_store.t;
  mutable regions : region list;  (* sorted by base, ascending *)
  by_inode : (int, region) Hashtbl.t;
  vpage_cache : Scm.Imap.Int.t;  (* vpage -> frame *)
  (* one-entry memo in front of [vpage_cache]: consecutive accesses
     overwhelmingly hit the same page, and a field compare beats even
     one table probe.  Must be dropped wherever a vpage_cache entry is
     removed. *)
  mutable memo_vpage : int;
  mutable memo_frame : int;
  mutable peek_page : (int * int * Bytes.t) option;
      (* (inode, page_off, contents): one-page memo for {!load_nt} reads
         of non-resident pages.  Stale the moment the page regains and
         then loses a frame, so the eviction hook drops it. *)
  mutable next_dyn : int;
  default_env : Scm.Env.t;
  mutable remap_ns : int;
}

type view = { pmem : t; env : Scm.Env.t }

let manager t = t.mgr
let view t env = { pmem = t; env }
let default_view t = { pmem = t; env = t.default_env }
let remap_ns t = t.remap_ns
let is_persistent = Layout.is_persistent

(* ------------------------------------------------------------------ *)
(* Region bookkeeping                                                  *)

let register t r =
  t.regions <-
    List.sort (fun a b -> compare a.base b.base) (r :: t.regions);
  Hashtbl.replace t.by_inode r.inode r

let unregister t r =
  t.regions <- List.filter (fun r' -> r'.base <> r.base) t.regions;
  Hashtbl.remove t.by_inode r.inode;
  t.memo_vpage <- -1;
  let first = Layout.page_of r.base in
  let last = Layout.page_of (r.base + r.len - 1) in
  for vpage = first to last do
    Scm.Imap.Int.remove t.vpage_cache vpage
  done

let find_region t addr =
  let rec search = function
    | [] ->
        invalid_arg
          (Printf.sprintf "Pmem: address %#x is not in any persistent region"
             addr)
    | r :: rest ->
        if addr >= r.base && addr < r.base + r.len then r else search rest
  in
  search t.regions

let region_containing t addr =
  match List.find_opt (fun r -> addr >= r.base && addr < r.base + r.len)
          t.regions with
  | Some r -> Some (r.base, r.len)
  | None -> None

let regions t =
  List.filter_map
    (fun r ->
      if r.base = Layout.static_base then None else Some (r.base, r.len))
    t.regions

(* ------------------------------------------------------------------ *)
(* Address translation                                                 *)

(* The durability sanitizer (if installed) shadows words by VIRTUAL
   address; device-level hooks see physical frames, so every mapping
   this layer installs is reported to keep its reverse map current. *)
let[@inline] pmchk (v : view) = v.env.Scm.Env.machine.Scm.Env.pmcheck

let translate v addr =
  let t = v.pmem in
  if not (Layout.is_persistent addr) then
    invalid_arg (Printf.sprintf "Pmem: %#x is not a persistent address" addr);
  let vpage = Layout.page_of addr in
  let frame =
    if vpage = t.memo_vpage then t.memo_frame
    else begin
      let frame = Scm.Imap.Int.find t.vpage_cache vpage in
      let frame =
        if frame >= 0 then frame
        else begin
          let r = find_region t addr in
          let page_off = vpage - Layout.page_of r.base in
          let frame = Manager.fault_in t.mgr v.env ~inode:r.inode ~page_off in
          Scm.Imap.Int.set t.vpage_cache vpage frame;
          (match pmchk v with
          | None -> ()
          | Some chk -> Scm.Pmcheck.note_mapping chk ~vpage ~frame);
          frame
        end
      in
      t.memo_vpage <- vpage;
      t.memo_frame <- frame;
      frame
    end
  in
  (frame * Layout.page_size) + (addr land (Layout.page_size - 1))

let load v addr =
  (match pmchk v with
  | None -> ()
  | Some chk -> Scm.Pmcheck.check_load chk (addr land lnot 7));
  P.load v.env (translate v addr)

(* Non-temporal load: must not fault pages in.  A recovery-time sweep
   over a whole region would otherwise pull every page of the region
   into SCM at attach time — charging page I/O and consuming frames the
   working set never asked for.  A page that is not resident has its
   authoritative copy in the backing file, so read the word from there
   without installing a frame. *)
let load_nt v addr =
  let t = v.pmem in
  if not (Layout.is_persistent addr) then
    invalid_arg (Printf.sprintf "Pmem: %#x is not a persistent address" addr);
  let vpage = Layout.page_of addr in
  let r = find_region t addr in
  let page_off = vpage - Layout.page_of r.base in
  match Manager.frame_of t.mgr ~inode:r.inode ~page_off with
  | Some frame ->
      Scm.Imap.Int.set t.vpage_cache vpage frame;
      (match pmchk v with
      | None -> ()
      | Some chk -> Scm.Pmcheck.note_mapping chk ~vpage ~frame);
      P.load_nt v.env
        ((frame * Layout.page_size) + (addr land (Layout.page_size - 1)))
  | None ->
      let buf =
        match t.peek_page with
        | Some (i, p, b) when i = r.inode && p = page_off -> b
        | _ ->
            let b = Bytes.create Layout.page_size in
            Backing_store.read_page t.backing r.inode page_off b;
            t.peek_page <- Some (r.inode, page_off, b);
            b
      in
      Scm.Word.get buf (addr land (Layout.page_size - 1))
let store v addr x =
  (match pmchk v with
  | None -> ()
  | Some chk -> Scm.Pmcheck.check_store chk (addr land lnot 7));
  P.store v.env (translate v addr) x

let wtstore v addr x =
  (match pmchk v with
  | None -> ()
  | Some chk -> Scm.Pmcheck.note_wtstore chk (addr land lnot 7));
  P.wtstore v.env (translate v addr) x
let flush v addr = P.flush v.env (translate v addr)
let fence v = P.fence v.env
let fence_many vs = P.fence_group (List.map (fun v -> v.env) vs)

(* Byte ranges may span pages; physical contiguity holds only within a
   page, so chunk at page boundaries. *)
let by_page v addr len f =
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let in_page = Layout.page_size - (a land (Layout.page_size - 1)) in
    let n = min in_page (len - !pos) in
    f (translate v a) !pos n;
    pos := !pos + n
  done

(* Sanitizer hook for byte ranges: one shadow event per covered word,
   matching how the range reaches the device (word posts for streaming
   stores, line write-backs for cached ones). *)
let each_word addr len f =
  if len > 0 then begin
    let first = addr land lnot 7 in
    let last = (addr + len - 1) land lnot 7 in
    let a = ref first in
    while !a <= last do
      f !a;
      a := !a + 8
    done
  end

let load_bytes v addr buf off len =
  (match pmchk v with
  | None -> ()
  | Some chk -> each_word addr len (Scm.Pmcheck.check_load chk));
  by_page v addr len (fun pa rel n -> P.load_bytes v.env pa buf (off + rel) n)

let store_bytes v addr buf off len =
  (match pmchk v with
  | None -> ()
  | Some chk -> each_word addr len (Scm.Pmcheck.check_store chk));
  by_page v addr len (fun pa rel n -> P.store_bytes v.env pa buf (off + rel) n)

let wtstore_bytes v addr buf off len =
  (match pmchk v with
  | None -> ()
  | Some chk -> each_word addr len (Scm.Pmcheck.note_wtstore chk));
  by_page v addr len (fun pa rel n ->
      P.wtstore_bytes v.env pa buf (off + rel) n)

let persist v addr len =
  by_page v addr len (fun pa _ n ->
      let line = 64 in
      let first = pa land lnot (line - 1) in
      let last = (pa + n - 1) land lnot (line - 1) in
      let a = ref first in
      while !a <= last do
        P.flush v.env !a;
        a := !a + line
      done);
  P.fence v.env

(* ------------------------------------------------------------------ *)
(* Region table: 16 KiB at the base of the static region.              *)

let rt_magic = 0x4D4E4552_54424C31L
let rt_header_bytes = 64
let rt_entry_bytes = 32

let rt_capacity =
  (Layout.region_table_size - rt_header_bytes) / rt_entry_bytes

let entry_addr i =
  Layout.region_table_base + rt_header_bytes + (i * rt_entry_bytes)

let flag_intent = 1L
let flag_valid = 3L  (* intent | valid *)

let rt_read_entry v i =
  let a = entry_addr i in
  ( Int64.to_int (load v a),
    Int64.to_int (load v (a + 8)),
    Int64.to_int (load v (a + 16)),
    load v (a + 24) )

let rt_write_entry v i ~base ~len ~inode ~flags =
  let a = entry_addr i in
  wtstore v a (Int64.of_int base);
  wtstore v (a + 8) (Int64.of_int len);
  wtstore v (a + 16) (Int64.of_int inode);
  fence v;
  wtstore v (a + 24) flags;
  fence v

let rt_set_flags v i flags =
  wtstore v (entry_addr i + 24) flags;
  fence v

let rt_find_free_slot v =
  let rec go i =
    if i >= rt_capacity then failwith "Pmem: region table full"
    else
      let _, _, _, flags = rt_read_entry v i in
      if flags = 0L then i else go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Instance bring-up                                                   *)

let open_instance machine backing =
  let mgr =
    match Manager.boot machine backing with
    | mgr -> mgr
    | exception Failure _ -> Manager.format machine backing
  in
  let default_env = Scm.Env.standalone machine in
  let fresh_static = Backing_store.find backing "static" = None in
  let static_inode =
    match Backing_store.find backing "static" with
    | Some i -> i
    | None -> Backing_store.create_file backing ~name:"static" ()
  in
  let t =
    {
      mgr;
      backing;
      regions = [];
      by_inode = Hashtbl.create 16;
      vpage_cache = Scm.Imap.Int.create ~initial:1024 ();
      memo_vpage = -1;
      memo_frame = 0;
      peek_page = None;
      next_dyn = Layout.dynamic_base;
      default_env;
      remap_ns = 0;
    }
  in
  Manager.on_evict mgr (fun ~inode ~page_off ->
      (match t.peek_page with
      | Some (i, p, _) when i = inode && p = page_off -> t.peek_page <- None
      | _ -> ());
      match Hashtbl.find_opt t.by_inode inode with
      | None -> ()
      | Some r ->
          let vpage = Layout.page_of r.base + page_off in
          if vpage = t.memo_vpage then t.memo_vpage <- -1;
          Scm.Imap.Int.remove t.vpage_cache vpage);
  register t
    {
      base = Layout.static_base;
      len = Layout.static_size;
      inode = static_inode;
      slot = -1;
    };
  let v = default_view t in
  (* Initialize or validate the region table. *)
  if fresh_static || load v Layout.region_table_base <> rt_magic then begin
    for i = 0 to rt_capacity - 1 do
      rt_write_entry v i ~base:0 ~len:0 ~inode:0 ~flags:0L
    done;
    wtstore v (Layout.region_table_base + 8) (Int64.of_int rt_capacity);
    wtstore v Layout.region_table_base rt_magic;
    fence v
  end;
  (* Replay the intention log: recreate completed regions, destroy the
     partially created (paper section 4.2). *)
  let live_inodes = ref [ static_inode ] in
  for i = 0 to rt_capacity - 1 do
    let base, len, inode, flags = rt_read_entry v i in
    if flags = flag_valid then begin
      register t { base; len; inode; slot = i };
      live_inodes := inode :: !live_inodes;
      t.next_dyn <- max t.next_dyn (base + len)
    end
    else if flags = flag_intent then begin
      if inode > 0 && Backing_store.file_exists backing inode then
        Backing_store.delete_file backing inode;
      rt_write_entry v i ~base:0 ~len:0 ~inode:0 ~flags:0L
    end
  done;
  (* Garbage-collect orphaned backing files (a crash between file
     creation and the intent record). *)
  List.iter
    (fun inode ->
      if not (List.mem inode !live_inodes) then
        Backing_store.delete_file backing inode)
    (Backing_store.list_inodes backing);
  (* Modeled process-restart remap cost (paper section 6.3.2). *)
  t.remap_ns <- 400_000 + (60_000 * List.length t.regions);
  t

(* ------------------------------------------------------------------ *)
(* pmap / punmap                                                       *)

let pmap v ?addr len =
  let t = v.pmem in
  if len <= 0 then invalid_arg "Pmem.pmap: length";
  let len = Layout.pages_for len * Layout.page_size in
  let base =
    match addr with
    | Some a ->
        if a land (Layout.page_size - 1) <> 0 then
          invalid_arg "Pmem.pmap: unaligned address";
        if not (Layout.is_persistent a) then
          invalid_arg "Pmem.pmap: address outside the persistent range";
        (match region_containing t a with
        | Some _ -> invalid_arg "Pmem.pmap: address already mapped"
        | None -> a)
    | None -> t.next_dyn
  in
  let slot = rt_find_free_slot v in
  let inode = Backing_store.create_file t.backing () in
  rt_write_entry v slot ~base ~len ~inode ~flags:flag_intent;
  register t { base; len; inode; slot };
  rt_set_flags v slot flag_valid;
  t.next_dyn <- max t.next_dyn (base + len);
  base

let punmap v addr =
  let t = v.pmem in
  let r = find_region t addr in
  if r.base = Layout.static_base then
    invalid_arg "Pmem.punmap: cannot unmap the static region";
  if r.base <> addr then
    invalid_arg "Pmem.punmap: address is not a region base";
  rt_set_flags v r.slot 0L;
  Manager.release_pages t.mgr v.env ~inode:r.inode;
  Backing_store.delete_file t.backing r.inode;
  unregister t r

let wear_level ?max_moves (v : view) ~threshold =
  Manager.wear_level v.pmem.mgr ?max_moves v.env ~threshold

let close v =
  let t = v.pmem in
  List.iter
    (fun r -> Manager.sync_to_backing t.mgr v.env ~inode:r.inode)
    t.regions;
  Backing_store.sync t.backing
