(* Backed by an Obs histogram: O(1) add instead of consing every
   sample, O(buckets) percentile instead of re-sorting the whole list
   on every query. *)
type t = Obs.Metrics.histogram

let create () = Obs.Metrics.make_histogram "workload.latency_ns"

let add t ns = Obs.Metrics.record t ns

let count t = Obs.Metrics.hcount t
let mean_ns t = Obs.Metrics.hmean t
let mean_us t = mean_ns t /. 1000.0
let min_ns t = Obs.Metrics.hmin t
let max_ns t = Obs.Metrics.hmax t
let percentile_ns t p = Obs.Metrics.percentile t p

let throughput_per_s ~ops ~elapsed_ns =
  if elapsed_ns = 0 then 0.0
  else float_of_int ops *. 1e9 /. float_of_int elapsed_ns
