let default_nslots = 512

let txn_updates ?(nslots = default_nslots) ~seed ~t () =
  let rng = Random.State.make [| seed; t |] in
  let n = 1 + Random.State.int rng 8 in
  List.init n (fun _ ->
      let slot = Random.State.int rng nslots in
      let value = Int64.of_int (1 + Random.State.int rng 0x3fffffff) in
      (slot, value))

type rw_txn = { reads : int list; writes : (int * int64) list }

(* Read-write transaction shapes for the schedule explorer: unlike
   [txn_updates] these carry explicit reads, so two transactions can
   conflict through a read-write edge alone — exactly the dependency a
   serializability violation lives on. *)
let txn_rw ?(nslots = default_nslots) ~seed ~thread ~t () =
  let rng = Random.State.make [| seed; thread; t; 0x5eed |] in
  let nr = 1 + Random.State.int rng 4 in
  let nw = 1 + Random.State.int rng 4 in
  let reads = List.init nr (fun _ -> Random.State.int rng nslots) in
  let writes =
    List.init nw (fun _ ->
        let slot = Random.State.int rng nslots in
        let value = Int64.of_int (1 + Random.State.int rng 0x3fffffff) in
        (slot, value))
  in
  { reads; writes }

let model_after ?(nslots = default_nslots) ~seed count =
  let m = Array.make nslots 0L in
  for t = 0 to count - 1 do
    List.iter (fun (slot, v) -> m.(slot) <- v) (txn_updates ~nslots ~seed ~t ())
  done;
  m
