let default_nslots = 512

let txn_updates ?(nslots = default_nslots) ~seed ~t () =
  let rng = Random.State.make [| seed; t |] in
  let n = 1 + Random.State.int rng 8 in
  List.init n (fun _ ->
      let slot = Random.State.int rng nslots in
      let value = Int64.of_int (1 + Random.State.int rng 0x3fffffff) in
      (slot, value))

let model_after ?(nslots = default_nslots) ~seed count =
  let m = Array.make nslots 0L in
  for t = 0 to count - 1 do
    List.iter (fun (slot, v) -> m.(slot) <- v) (txn_updates ~nslots ~seed ~t ())
  done;
  m
