(** Latency/throughput bookkeeping for the benchmark harness.

    Since the observability PR this is a thin facade over
    {!Obs.Metrics} histograms: adding a sample is O(1) and percentile
    queries are O(buckets) rather than a fresh sort of every sample. *)

type t

val create : unit -> t
val add : t -> int -> unit
(** Record one sample (simulated nanoseconds). *)

val count : t -> int
val mean_ns : t -> float
val min_ns : t -> int
val max_ns : t -> int
val percentile_ns : t -> float -> int
(** e.g. [percentile_ns t 99.0].  Exact below 512 ns; above that,
    quantized with relative error at most 1/512. *)

val mean_us : t -> float

val throughput_per_s : ops:int -> elapsed_ns:int -> float
(** Aggregate operations per second over a simulated interval. *)
