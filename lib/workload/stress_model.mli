(** The deterministic random-update workload of the paper's crash
    stress test (section 6.2), shared by [crash_stress] and
    [crash_explore].

    Transaction [t] of a run with a given [seed] writes a fixed set of
    (slot, value) pairs derived purely from [(seed, t)], so the exact
    memory image after any number of committed transactions can be
    recomputed by replay — the verifier's ground truth. *)

val default_nslots : int
(** 512 slots of 8 bytes. *)

val txn_updates : ?nslots:int -> seed:int -> t:int -> unit -> (int * int64) list
(** The (slot, value) writes of transaction [t]. *)

val model_after : ?nslots:int -> seed:int -> int -> int64 array
(** Slot contents after replaying transactions [0 .. count - 1]. *)
