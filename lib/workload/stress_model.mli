(** The deterministic random-update workload of the paper's crash
    stress test (section 6.2), shared by [crash_stress] and
    [crash_explore].

    Transaction [t] of a run with a given [seed] writes a fixed set of
    (slot, value) pairs derived purely from [(seed, t)], so the exact
    memory image after any number of committed transactions can be
    recomputed by replay — the verifier's ground truth. *)

val default_nslots : int
(** 512 slots of 8 bytes. *)

val txn_updates : ?nslots:int -> seed:int -> t:int -> unit -> (int * int64) list
(** The (slot, value) writes of transaction [t]. *)

val model_after : ?nslots:int -> seed:int -> int -> int64 array
(** Slot contents after replaying transactions [0 .. count - 1]. *)

(** {1 Read-write transactions for the schedule explorer} *)

type rw_txn = { reads : int list; writes : (int * int64) list }

val txn_rw :
  ?nslots:int -> seed:int -> thread:int -> t:int -> unit -> rw_txn
(** The deterministic shape of transaction [t] on [thread]: 1-4 slots
    to read and 1-4 (slot, value) pairs to write.  [sched_explore]
    makes each written value depend on the values read (an xor fold),
    so a non-serializable read shows up as divergent final memory as
    well as in the recorded history. *)
