(** The schedule-exploration harness shared by [bin/sched_explore] and
    the test suite.

    One {!run} executes a deterministic multi-threaded read-write
    workload ({!Workload.Stress_model.txn_rw}) over a fresh Mnemosyne
    instance under a {!Sim.Schedule} — recording every same-time
    tiebreak and backoff draw — then checks the collected transaction
    {!Mtm.History} for conflict serializability against the final
    memory image.  A violating run's schedule can be {!save_schedule}d
    and replayed bit-exactly. *)

type cfg = {
  seed : int;
  threads : int;
  txns : int;  (** Per thread. *)
  nslots : int;  (** Shared 8-byte slots the transactions fight over. *)
  policy : Sim.Schedule.policy;
  undo : bool;  (** Run under [Eager_undo] instead of [Lazy_redo]. *)
  zero_lat : bool;
      (** Zero every software-overhead latency, collapsing code paths
          onto single simulated ticks: every yield becomes a same-time
          tie the policy gets to order.  The adversarial mode — races
          whose windows the default costs keep closed open up here. *)
  lease : int;
      (** {!Mtm.Txn.config.ts_lease}: commit timestamps leased per
          shared-counter refill (1 = the legacy protocol).  Fuzzing
          with a small lease makes lease-boundary interleavings —
          refills racing other commits — common. *)
  stripes : int;  (** {!Mtm.Txn.config.lock_stripes}. *)
  group_commit : bool;  (** {!Mtm.Txn.config.group_commit}. *)
  pipeline : bool;
      (** {!Mtm.Txn.config.pipeline}: pipelined commit, with a
          {!Sim.Service} drainer daemon woken by commits and stopped by
          the last finishing worker.  Fuzzing this covers the new
          release-at-fence window (a reader acquiring a line between
          lock release and deferred write-back). *)
  cm_adaptive : bool;
      (** Run under {!Mtm.Txn.Cm_adaptive} instead of the legacy
          contention manager. *)
  admission : bool;
      (** Route every transaction through a {!Serve.Admission} policy
          with synthetic queue depths: a deterministic mix of requests
          is shed before any transaction exists, another slice is
          cancelled mid-flight after staging (distinctively mangled)
          writes, and the rest commit.  The serializability check plus
          the sanitizer then prove a rejected request leaves zero
          persistent side effects under every explored interleaving. *)
  trace : bool;  (** Record an observability trace during the run. *)
  pmcheck : bool;
      (** Install the {!Scm.Pmcheck} durability sanitizer before the
          run; any violations it records are appended (rendered) to the
          outcome's [violations]. *)
  race : bool;
      (** Install the {!Check.Racecheck} happens-before race detector
          over the run's annotated volatile coordination state; any
          races it records are appended (rendered) to the outcome's
          [violations], so they fail runs — and save replayable traces
          — exactly like serializability violations.  HB edges come
          only from real synchronization (fiber spawn, service
          wake→unpark, queue push/pop, lock hand-offs), never plain
          yields, so one schedule flags every race any schedule could
          exhibit on the same access pairs. *)
  dir : string;  (** Scratch instance directory (reset on each run). *)
}

val default_cfg : dir:string -> cfg
(** 3 threads, 8 transactions each, 16 slots, shuffle policy, seed 0. *)

type outcome = {
  schedule : Sim.Schedule.t;  (** As recorded (or replayed). *)
  history : Mtm.History.t;
  violations : string list;  (** [[]] = conflict-serializable. *)
  commits : int;
  ro_commits : int;
  aborts : int;
  contention : int;  (** [run] calls that gave up ({!Mtm.Txn.Contention}). *)
  sim_ns : int;
  replay_leftover : int;  (** Recorded decisions left unconsumed. *)
  replay_extra : int;
      (** Decisions invented past the recorded streams.  A replay is
          bit-exact iff both divergence counters are 0; a regression
          trace recorded against since-fixed code legitimately
          diverges (the fix changes a transaction's fate) while still
          exercising the schedule prefix that tripped the bug. *)
  race_ops : int;
      (** Annotated accesses the armed race detector processed (0 with
          [race = false]) — lets a test distinguish "no races" from "the
          detector never saw an event". *)
  obs : Obs.t;
}

val run : ?schedule:Sim.Schedule.t -> cfg -> outcome
(** Run the workload once.  Without [schedule], a recording schedule is
    built from [cfg.policy] and [cfg.seed]; pass a {!Sim.Schedule.load}ed
    one to replay. *)

val save_schedule : outcome -> cfg -> string -> unit
(** Write the outcome's schedule trace, stamping the workload shape
    (threads/txns/nslots/undo) into the header so the file alone
    reconstructs the run. *)

val cfg_of_schedule : dir:string -> Sim.Schedule.t -> cfg
(** Rebuild the run configuration recorded in a trace's header. *)
