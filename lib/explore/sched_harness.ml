module Pmem = Region.Pmem

type cfg = {
  seed : int;
  threads : int;
  txns : int;  (* per thread *)
  nslots : int;
  policy : Sim.Schedule.policy;
  undo : bool;  (* Eager_undo instead of Lazy_redo *)
  zero_lat : bool;  (* zero software-overhead latency model *)
  lease : int;  (* Txn.config.ts_lease (1 = legacy shared counter) *)
  stripes : int;  (* Txn.config.lock_stripes *)
  group_commit : bool;  (* share the durability fence across commits *)
  pipeline : bool;  (* pipelined commit, with a Sim.Service drainer *)
  cm_adaptive : bool;  (* adaptive contention manager (wait-die) *)
  admission : bool;  (* serving-style admission: shed + cancel some txns *)
  trace : bool;
  pmcheck : bool;  (* run under the durability sanitizer *)
  race : bool;  (* run under the happens-before race detector *)
  dir : string;
}

let default_cfg ~dir =
  {
    seed = 0;
    threads = 3;
    txns = 8;
    nslots = 16;
    policy = Sim.Schedule.Seeded_shuffle;
    undo = false;
    zero_lat = false;
    lease = 1;
    stripes = 1;
    group_commit = false;
    pipeline = false;
    cm_adaptive = false;
    admission = false;
    trace = false;
    pmcheck = false;
    race = false;
    dir;
  }

(* Under the default latency model every software step costs distinct,
   positive time, so few events ever fall due at the same instant — the
   tiebreak policy rarely gets a decision to make.  Zeroing the software
   overheads collapses whole code paths onto single ticks: every yield
   becomes a same-time tie and the policy chooses the interleaving.
   This is the adversarial mode — a race that needs two threads to hit
   a window "simultaneously" is unreachable under the default costs but
   plainly visible here. *)
let zero_lat_latency =
  {
    Scm.Latency_model.default with
    cache_hit_ns = 0;
    wc_post_ns = 0;
    bit_pack_ns_per_word = 0;
    stm_access_ns = 0;
    txn_begin_ns = 0;
    txn_commit_ns = 0;
    timestamp_ns = 0;
  }

let latency cfg =
  if cfg.zero_lat then zero_lat_latency else Scm.Latency_model.default

type outcome = {
  schedule : Sim.Schedule.t;
  history : Mtm.History.t;
  violations : string list;
  commits : int;
  ro_commits : int;
  aborts : int;
  contention : int;
  sim_ns : int;
  replay_leftover : int;
  replay_extra : int;
  race_ops : int;
  obs : Obs.t;
}

let geometry =
  { Mnemosyne.scm_frames = 2048; heap_superblocks = 64;
    heap_large_bytes = 256 * 1024 }

let mtm_config cfg =
  {
    Mtm.Txn.default_config with
    nthreads = cfg.threads;
    log_cap_words = 8192;
    version_mgmt = (if cfg.undo then Mtm.Txn.Eager_undo else Mtm.Txn.Lazy_redo);
    ts_lease = cfg.lease;
    lock_stripes = cfg.stripes;
    group_commit = cfg.group_commit;
    pipeline = cfg.pipeline;
    cm = (if cfg.cm_adaptive then Mtm.Txn.Cm_adaptive else Mtm.Txn.Cm_legacy);
  }

let reset_or_die dir =
  match Mnemosyne.reset_dir dir with
  | Ok () -> ()
  | Error msg -> failwith (Printf.sprintf "sched_harness: %s" msg)

(* The instance lives in a subdirectory: [cfg.dir] itself holds saved
   schedule traces, which must survive the per-run instance reset. *)
let instance_dir cfg = Filename.concat cfg.dir "run"

let ensure_dir d = if not (Sys.file_exists d) then Sys.mkdir d 0o755

(* The shared array the transactions fight over, zeroed at setup time —
   before the history hook is installed, so the oracle's initial image
   is exactly all-zeroes. *)
let ensure_data inst nslots =
  let slot = Mnemosyne.pstatic inst "sched.data" 8 in
  Mnemosyne.atomically inst (fun tx ->
      match Int64.to_int (Mtm.Txn.load tx slot) with
      | 0 ->
          let a = Mtm.Txn.alloc tx (nslots * 8) ~slot in
          for i = 0 to nslots - 1 do
            Mtm.Txn.store tx (a + (8 * i)) 0L
          done;
          a
      | a -> a)

(* One run under [schedule]: the recorded schedule (or the replayed
   one) owns every same-time tiebreak and every backoff draw, so the
   pair (cfg, schedule trace) reproduces the run bit-exactly. *)
let run ?schedule cfg =
  let sched =
    match schedule with
    | Some s -> s
    | None -> Sim.Schedule.make ~seed:cfg.seed cfg.policy
  in
  ensure_dir cfg.dir;
  let idir = instance_dir cfg in
  reset_or_die idir;
  let obs = Obs.create ~tracing:cfg.trace () in
  let lat = latency cfg in
  let machine =
    Mnemosyne.prepare_machine ~geometry ~latency:lat ~seed:cfg.seed ~obs
      ~dir:idir ()
  in
  (* Installed before recovery so every page mapping is observed. *)
  let chk =
    if cfg.pmcheck then Some (Scm.Env.install_pmcheck machine) else None
  in
  let inst =
    Mnemosyne.open_instance ~geometry ~latency:lat ~mtm:(mtm_config cfg)
      ~seed:cfg.seed ~machine ~dir:idir ()
  in
  let data = ensure_data inst cfg.nslots in
  let pool = Mnemosyne.pool inst in
  let hist = Mtm.History.create () in
  Mtm.Txn.set_history_hook pool (Some (Mtm.History.add hist));
  Mtm.Txn.set_backoff_draw pool
    (Some (fun bound -> Sim.Schedule.draw sched ~bound));
  let sim = Sim.create ~schedule:sched () in
  (* The race detector sees the run through the sim's own fiber ids and
     clock: HB edges come from real synchronization (spawn, wake→unpark
     token delivery, lock hand-offs, queue push/pop), never from plain
     yields — so a race is flagged on every schedule that could reorder
     the two accesses, not just the one where the bad interleaving
     fired.  Installed before any fiber is spawned, removed after the
     run; rendered races join [violations] like serializability
     failures. *)
  let det =
    if cfg.race then
      Some
        (Check.Racecheck.create
           ~fiber:(fun () -> Sim.current_proc sim)
           ~now:(fun () -> Sim.now sim)
           ())
    else None
  in
  let race_hooks = Option.map Check.Racecheck.hooks det in
  Sim.set_race sim race_hooks;
  Mtm.Txn.set_race pool race_hooks;
  if cfg.trace then
    Sim.Schedule.set_observer sched
      (Some
         (fun ~index:_ ~key ->
           Obs.instant_at obs Obs.Trace.Sched_decision ~ts:(Sim.now sim)
             ~arg:key));
  let contention = ref 0 in
  (* Pipelined runs get the first-class drainer daemon: a Sim.Service
     sweeping every thread's pending write-backs, woken by commits.  A
     parked daemon at simulation end would deadlock the run, so the
     last worker to finish stops it (stop drains leftovers first). *)
  let service = ref None in
  if cfg.pipeline then begin
    let denv =
      Scm.Env.view machine
        ~delay:(fun ns -> Sim.delay sim ns)
        ~now:(fun () -> Sim.now sim)
    in
    let dview = Pmem.view (Mtm.Txn.pmem pool) denv in
    let svc =
      Sim.Service.spawn sim ~work:(fun () -> Mtm.Txn.drain_pipeline pool dview)
    in
    Mtm.Txn.set_drain_wake pool (Some (fun _tid -> Sim.Service.wake svc));
    service := Some svc
  end;
  let running = ref cfg.threads in
  (* Serving-style admission over the fuzz workload: one policy shared
     by the workers, with synthetic queue depths forcing a deterministic
     mix of (a) requests shed before any transaction exists, (b)
     admitted requests cancelled mid-flight after staging their writes,
     and (c) requests that commit normally.  The serializability check
     against final memory is what proves (a) and (b) leave zero
     persistent side effects under every explored interleaving. *)
  let adm =
    if cfg.admission then
      Some
        (Serve.Admission.make
           { Serve.Admission.queue_cap = 4; log_high_pct = 95; boost_pct = 0 })
    else None
  in
  (match adm with
  | Some a -> Serve.Admission.set_race a race_hooks
  | None -> ());
  for i = 0 to cfg.threads - 1 do
    Sim.spawn sim (fun () ->
        let env =
          Scm.Env.view machine
            ~delay:(fun ns -> Sim.delay sim ns)
            ~now:(fun () -> Sim.now sim)
        in
        let th = Mnemosyne.thread inst i env in
        for t = 0 to cfg.txns - 1 do
          let { Workload.Stress_model.reads; writes } =
            Workload.Stress_model.txn_rw ~nslots:cfg.nslots ~seed:cfg.seed
              ~thread:i ~t ()
          in
          let body ~cancel tx =
            (* fold the reads into the written values: a stale read
               becomes divergent final memory, not just a history
               footnote *)
            let acc =
              List.fold_left
                (fun acc s ->
                  Int64.logxor acc (Mtm.Txn.load tx (data + (8 * s))))
                0L reads
            in
            List.iter
              (fun (s, v) ->
                let v = if cancel then Int64.lognot v else v in
                Mtm.Txn.store tx (data + (8 * s)) (Int64.logxor v acc))
              writes;
            (* a mid-flight rejection: the stores above are staged (and
               under eager undo already in memory) — cancelling must
               retract every one of them *)
            if cancel then Mtm.Txn.cancel tx
          in
          let decision =
            match adm with
            | None -> `Admit
            | Some adm -> (
                let synth_queue = ((3 * i) + (7 * t)) mod 8 in
                match
                  Serve.Admission.admit_enqueue adm ~queue_len:synth_queue
                with
                | Error _ -> `Shed
                | Ok () -> (
                    let used, cap = Mtm.Txn.log_occupancy th in
                    match Serve.Admission.admit_dispatch adm ~used ~cap with
                    | Error _ -> `Shed
                    | Ok () ->
                        if ((5 * i) + t) mod 6 = 1 then `Cancel else `Admit))
          in
          match decision with
          | `Shed -> ()
          | (`Admit | `Cancel) as d -> (
              match Mtm.Txn.run th (body ~cancel:(d = `Cancel)) with
              | () -> ()
              | exception Mtm.Txn.Cancelled -> ()
              | exception Mtm.Txn.Contention -> incr contention)
        done;
        decr running;
        if !running = 0 then
          match !service with
          | Some svc -> Sim.Service.stop svc
          | None -> ())
  done;
  Sim.run sim;
  Mtm.Txn.set_history_hook pool None;
  Mtm.Txn.set_backoff_draw pool None;
  Mtm.Txn.set_drain_wake pool None;
  Mtm.Txn.set_race pool None;
  Sim.set_race sim None;
  Sim.Schedule.set_observer sched None;
  let view = Mnemosyne.view inst in
  let violations =
    Mtm.History.check hist
      ~initial:(fun _ -> 0L)
      ~final:(fun addr -> Pmem.load_nt view addr)
  in
  let violations =
    match chk with
    | None -> violations
    | Some chk ->
        violations @ List.map Scm.Pmcheck.render (Scm.Pmcheck.violations chk)
  in
  let violations =
    match det with
    | None -> violations
    | Some det ->
        violations
        @ List.map Check.Racecheck.render (Check.Racecheck.races det)
  in
  let stats = Mtm.Txn.stats pool in
  {
    schedule = sched;
    history = hist;
    violations;
    commits = stats.Mtm.Txn.commits;
    ro_commits = stats.Mtm.Txn.read_only_commits;
    aborts = stats.Mtm.Txn.aborts;
    contention = !contention;
    sim_ns = Sim.now sim;
    replay_leftover = Sim.Schedule.replay_leftover sched;
    replay_extra = Sim.Schedule.replay_extra sched;
    race_ops = (match det with None -> 0 | Some d -> Check.Racecheck.ops d);
    obs;
  }

(* The trace header carries the workload shape, so a trace file alone
   reconstructs the run it recorded. *)
let save_schedule outcome cfg path =
  let s = outcome.schedule in
  Sim.Schedule.set_meta s "threads" (string_of_int cfg.threads);
  Sim.Schedule.set_meta s "txns" (string_of_int cfg.txns);
  Sim.Schedule.set_meta s "nslots" (string_of_int cfg.nslots);
  Sim.Schedule.set_meta s "undo" (if cfg.undo then "1" else "0");
  Sim.Schedule.set_meta s "zero_lat" (if cfg.zero_lat then "1" else "0");
  Sim.Schedule.set_meta s "lease" (string_of_int cfg.lease);
  Sim.Schedule.set_meta s "stripes" (string_of_int cfg.stripes);
  Sim.Schedule.set_meta s "group_commit" (if cfg.group_commit then "1" else "0");
  Sim.Schedule.set_meta s "pipeline" (if cfg.pipeline then "1" else "0");
  Sim.Schedule.set_meta s "cm" (if cfg.cm_adaptive then "adaptive" else "legacy");
  Sim.Schedule.set_meta s "admission" (if cfg.admission then "1" else "0");
  Sim.Schedule.set_meta s "pmcheck" (if cfg.pmcheck then "1" else "0");
  Sim.Schedule.set_meta s "race" (if cfg.race then "1" else "0");
  Sim.Schedule.save s path

let cfg_of_schedule ~dir sched =
  let d = default_cfg ~dir in
  let geti key fallback =
    match Sim.Schedule.meta sched key with
    | Some s -> ( match int_of_string_opt s with Some n -> n | None -> fallback)
    | None -> fallback
  in
  {
    d with
    seed = Sim.Schedule.seed sched;
    policy = Sim.Schedule.policy sched;
    threads = geti "threads" d.threads;
    txns = geti "txns" d.txns;
    nslots = geti "nslots" d.nslots;
    undo = Sim.Schedule.meta sched "undo" = Some "1";
    zero_lat = Sim.Schedule.meta sched "zero_lat" = Some "1";
    lease = geti "lease" d.lease;
    stripes = geti "stripes" d.stripes;
    group_commit = Sim.Schedule.meta sched "group_commit" = Some "1";
    pipeline = Sim.Schedule.meta sched "pipeline" = Some "1";
    cm_adaptive = Sim.Schedule.meta sched "cm" = Some "adaptive";
    admission = Sim.Schedule.meta sched "admission" = Some "1";
    pmcheck = Sim.Schedule.meta sched "pmcheck" = Some "1";
    race = Sim.Schedule.meta sched "race" = Some "1";
  }
