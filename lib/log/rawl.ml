module Pmem = Region.Pmem

type t = {
  v : Pmem.view;
  base : int;
  cap : int;
  rotate : bool;
  mutable passes : int;  (* wraps since the last rotation (volatile) *)
  mutable head_off : int;
  mutable head_parity : int;
  mutable head_tpos : int;  (* torn-bit position of the pass at head *)
  mutable tail_off : int;
  mutable tail_parity : int;
  mutable tail_tpos : int;
  append_ctr : Obs.Metrics.counter;  (* log.appends, resolved once *)
  trunc_ctr : Obs.Metrics.counter;  (* log.truncations, likewise *)
  mutable owner : int;
      (* transaction id the next append belongs to, stamped by the STM
         layer; 0 = none.  Appends open a causal flow under this id so
         the deferred truncation can be attributed back. *)
  (* Record staging area for the allocation-free packing loop in
     {!append_sub}: the length word and payload are laid out here as
     raw little-endian bytes, then each 63-bit chunk is read straight
     out of the byte stream.  8 spare bytes past the record keep the
     chunk reads in bounds (and are zeroed so the final chunk's padding
     bits are zero, as {!Bitstream.Packer.flush} would emit). *)
  mutable scratch : Bytes.t;
  mutable race : Race_api.hooks option;
      (* The head and tail cursors are the volatile handoff between
         appender and drainer: each is a single atomic word and its own
         sync object (DESIGN.md section 18).  Appends rmw the tail,
         head advances rmw the head, occupancy probes acquire both. *)
  race_head : string;  (* "log.<base>.head" *)
  race_tail : string;
}

let header_bytes = 64

let region_bytes_for ~cap_words = header_bytes + (8 * cap_words)

(* Single source of truth for the largest admissible payload.  A record
   of n payload words stores [Bitstream.stored_words_for (n + 1)] words
   (payload plus the length word); the buffer keeps one word free, so
   admission requires stored <= cap - 1, i.e.
   ceil (64 * (n + 1) / 63) <= cap - 1, i.e.
   n <= 63 * (cap - 1) / 64 - 1 (integer division).  [append]'s
   admission check and recovery's length-plausibility bound must both
   agree with this, or recovery could accept a length no append could
   have produced (or reject one it could). *)
let max_record_words_for ~cap_words = (63 * (cap_words - 1) / 64) - 1

let max_record_words t = max_record_words_for ~cap_words:t.cap

let race_labels_for base =
  ( Printf.sprintf "log.%08x.head" base,
    Printf.sprintf "log.%08x.tail" base )

let set_race t h = t.race <- h

let[@inline] race_acq t label =
  match t.race with None -> () | Some hk -> hk.Race_api.acquire label

let[@inline] race_rmw t label =
  match t.race with None -> () | Some hk -> hk.Race_api.rmw label

let capacity t = t.cap

let used_words t =
  race_acq t t.race_head;
  race_acq t t.race_tail;
  (t.tail_off - t.head_off + t.cap) mod t.cap

let free_words t = t.cap - 1 - used_words t
let torn_bit_position t = t.tail_tpos

let head_addr t = t.base
let cap_addr t = t.base + 8
let slot_addr t pos = t.base + header_bytes + (8 * pos)

(* Head word: offset in bits 0..47, pass parity in bit 48, torn-bit
   position in bits 49..54 — one atomic word still truncates. *)
let pack_head ~off ~parity ~tpos =
  Int64.logor (Int64.of_int off)
    (Int64.logor
       (Int64.shift_left (Int64.of_int parity) 48)
       (Int64.shift_left (Int64.of_int tpos) 49))

let unpack_head w =
  ( Int64.to_int (Int64.logand w 0xffff_ffff_ffffL),
    Int64.to_int (Int64.logand (Int64.shift_right_logical w 48) 1L),
    Int64.to_int (Int64.logand (Int64.shift_right_logical w 49) 63L) )

(* Cap word: capacity in the low bits, the rotation flag in bit 62. *)
let pack_cap ~cap ~rotate =
  Int64.logor (Int64.of_int cap)
    (if rotate then Int64.shift_left 1L 62 else 0L)

let unpack_cap w =
  ( Int64.to_int (Int64.logand w 0xffff_ffff_ffffL),
    Int64.logand (Int64.shift_right_logical w 62) 1L = 1L )

(* Place the 63 payload bits of [chunk] around a hole at bit [tpos]
   carrying the torn bit [b].  With tpos = 63 this is exactly the
   classic layout (payload low, torn bit on top). *)
let[@inline] insert_torn chunk tpos b =
  let low_mask = Int64.sub (Int64.shift_left 1L tpos) 1L in
  let low = Int64.logand chunk low_mask in
  let high =
    if tpos >= 63 then 0L
    else Int64.shift_left (Int64.shift_right_logical chunk tpos) (tpos + 1)
  in
  Int64.logor low
    (Int64.logor high (if b then Int64.shift_left 1L tpos else 0L))

let extract_torn word tpos =
  let low_mask = Int64.sub (Int64.shift_left 1L tpos) 1L in
  let low = Int64.logand word low_mask in
  let high =
    if tpos >= 63 then 0L
    else Int64.shift_left (Int64.shift_right_logical word (tpos + 1)) tpos
  in
  (Int64.logor low high, Scm.Word.bit word tpos)

(* Each wrap flips the parity; the torn-bit position is constant within
   a generation (rotating it at a wrap would be unsound: stale words
   checked at a new position pass the check half the time).  Rotation
   happens in {!truncate_all} instead — see below. *)
let next_pass _t ~parity ~tpos = (1 - parity, tpos)

(* How many buffer passes between torn-bit rotations. *)
let rotate_period = 16

let mk_counters v =
  let obs = v.Pmem.env.Scm.Env.machine.Scm.Env.obs in
  ( Obs.Metrics.counter obs.Obs.metrics "log.appends",
    Obs.Metrics.counter obs.Obs.metrics "log.truncations" )

let set_owner t txid = t.owner <- txid

(* One occupancy gauge per log base (per-thread logs share the
   machine registry, so the base disambiguates); re-attaching the same
   log re-points the gauge at the new handle, which is the live one. *)
let register_gauges t =
  let obs = t.v.Pmem.env.Scm.Env.machine.Scm.Env.obs in
  Obs.Metrics.set_gauge
    (Obs.Metrics.gauge obs.Obs.metrics
       (Printf.sprintf "log.%08x.occupancy_pct" t.base))
    (fun () -> 100 * used_words t / t.cap)

(* Durability-sanitizer hooks: a registered log lets the checker verify
   record durability (its WC-pending count) and catch truncations that
   race un-fenced data.  One branch each when no sanitizer is
   installed. *)
let[@inline] pmchk (v : Pmem.view) = v.Pmem.env.Scm.Env.machine.Scm.Env.pmcheck

let register_with_pmcheck v ~base ~cap_words =
  match pmchk v with
  | None -> ()
  | Some chk ->
      Scm.Pmcheck.register_log chk ~base
        ~bytes:(region_bytes_for ~cap_words)

let create ?(rotate_torn_bit = false) v ~base ~cap_words =
  if cap_words < 4 then invalid_arg "Rawl.create: capacity too small";
  register_with_pmcheck v ~base ~cap_words;
  let append_ctr, trunc_ctr = mk_counters v in
  let race_head, race_tail = race_labels_for base in
  let t =
    {
      v;
      base;
      cap = cap_words;
      rotate = rotate_torn_bit;
      passes = 0;
      head_off = 0;
      head_parity = 1;  (* zeroed buffer: pass-0 words carry torn bit 1 *)
      head_tpos = 63;
      tail_off = 0;
      tail_parity = 1;
      tail_tpos = 63;
      append_ctr;
      trunc_ctr;
      owner = 0;
      scratch = Bytes.make 512 '\000';
      race = None;
      race_head;
      race_tail;
    }
  in
  register_gauges t;
  Pmem.wtstore v (cap_addr t) (pack_cap ~cap:cap_words ~rotate:rotate_torn_bit);
  Pmem.wtstore v (head_addr t) (pack_head ~off:0 ~parity:1 ~tpos:63);
  Pmem.fence v;
  t

type append_result = Appended of int | Full

let[@inline] write_stored t chunk =
  let word = insert_torn chunk t.tail_tpos (t.tail_parity = 1) in
  Pmem.wtstore t.v (slot_addr t t.tail_off) word;
  t.tail_off <- t.tail_off + 1;
  if t.tail_off = t.cap then begin
    t.tail_off <- 0;
    t.passes <- t.passes + 1;
    let parity, tpos = next_pass t ~parity:t.tail_parity ~tpos:t.tail_tpos in
    t.tail_parity <- parity;
    t.tail_tpos <- tpos
  end

let mask63 = 0x7fff_ffff_ffff_ffffL

let ensure_scratch t bytes =
  if Bytes.length t.scratch < bytes then begin
    let size = ref (Bytes.length t.scratch) in
    while !size < bytes do
      size := 2 * !size
    done;
    t.scratch <- Bytes.make !size '\000'
  end

(* Stream the m = n+1 record words staged in [t.scratch] (length word
   then payload, little-endian).  Chunk j is bits [63j, 63j+63) of the
   byte stream, read directly as an aligned-enough int64 load plus one
   spill byte — equivalent to pushing every word through
   {!Bitstream.Packer} but with no closure, no boxed accumulator, and
   no per-word carry bookkeeping.  The 8 bytes past the record are
   zero, so the final chunk's padding bits match [Packer.flush]. *)
let append_staged t ~n ~span =
  let env = t.v.env in
  let obs = env.Scm.Env.machine.obs in
  let t0 = env.Scm.Env.now () in
  (* The paper charges the bit manipulation per word streamed; this is
     the cost that makes tornbit lose to a commit record for large
     records (table 6). *)
  env.Scm.Env.delay ((n + 1) * env.Scm.Env.machine.latency.bit_pack_ns_per_word);
  let scratch = t.scratch in
  for j = 0 to span - 1 do
    let bitpos = 63 * j in
    let byte = bitpos lsr 3 and bit = bitpos land 7 in
    let chunk =
      if bit = 0 then Int64.logand (Bytes.get_int64_le scratch byte) mask63
      else
        Int64.logand
          (Int64.logor
             (Int64.shift_right_logical (Bytes.get_int64_le scratch byte) bit)
             (Int64.shift_left
                (Int64.of_int (Bytes.get_uint8 scratch (byte + 8)))
                (64 - bit)))
          mask63
    in
    write_stored t chunk
  done;
  (* One tail-cursor rmw per record, not per word: the record lands
     atomically from the drainer's point of view (it only trusts words
     behind the published tail). *)
  race_rmw t t.race_tail;
  Obs.Metrics.incr t.append_ctr;
  Obs.complete obs Obs.Trace.Log_append ~ts:t0
    ~dur:(env.Scm.Env.now () - t0) ~arg:span;
  (* Open the causal flow: deferred truncation / write-back / drain
     work stamped with the same txid binds back to this append. *)
  if t.owner <> 0 then Obs.flow obs ~phase:`Start ~id:t.owner;
  Appended span

let append_sub t payload ~len =
  let n = len in
  if n = 0 then invalid_arg "Rawl.append: empty record";
  if n < 0 || n > Array.length payload then
    invalid_arg "Rawl.append_sub: len";
  let span = Bitstream.stored_words_for (n + 1) in
  if span > free_words t then Full
  else begin
    ensure_scratch t (8 * (n + 2));
    Bytes.set_int64_le t.scratch 0 (Int64.of_int n);
    for i = 0 to n - 1 do
      Bytes.set_int64_le t.scratch (8 * (i + 1)) payload.(i)
    done;
    Bytes.set_int64_le t.scratch (8 * (n + 1)) 0L;
    append_staged t ~n ~span
  end

let append t payload = append_sub t payload ~len:(Array.length payload)

(* Same record, but the payload arrives as raw little-endian bytes
   ([len] words): one blit stages it, so a commit path that encodes
   into a [Bytes] buffer never materializes a boxed [Int64]. *)
let append_bytes t payload ~len =
  let n = len in
  if n = 0 then invalid_arg "Rawl.append: empty record";
  if n < 0 || 8 * n > Bytes.length payload then
    invalid_arg "Rawl.append_bytes: len";
  let span = Bitstream.stored_words_for (n + 1) in
  if span > free_words t then Full
  else begin
    ensure_scratch t (8 * (n + 2));
    Bytes.set_int64_le t.scratch 0 (Int64.of_int n);
    Bytes.blit payload 0 t.scratch 8 (8 * n);
    Bytes.set_int64_le t.scratch (8 * (n + 1)) 0L;
    append_staged t ~n ~span
  end

let flush t = Pmem.fence t.v

(* Group commit's durability point: one fence drains every listed log's
   pending appends at once.  The logs are per-thread but may share a
   machine; the head of the list belongs to the running (leader)
   thread, which pays the combined cost. *)
let flush_group ts = Pmem.fence_many (List.map (fun t -> t.v) ts)

(* Post the new head word without the fence: the group truncation path
   batches several logs' head advances under one combined fence. *)
let post_head t ~off ~parity ~tpos =
  race_rmw t t.race_head;
  Pmem.wtstore t.v (head_addr t) (pack_head ~off ~parity ~tpos);
  t.head_off <- off;
  t.head_parity <- parity;
  t.head_tpos <- tpos

let set_head t ~off ~parity ~tpos =
  post_head t ~off ~parity ~tpos;
  Pmem.fence t.v

(* Shift the torn bit one position down and erase the buffer (zeros
   read as torn bit 0 at any position, and the fresh generation starts
   with parity 1, so detection stays sound).  Section 4.5's suggestion,
   made safe by only rotating through a whole-buffer erase, amortized
   over [rotate_period] passes. *)
let rotate_generation t =
  let tpos = (t.tail_tpos + 63) mod 64 in
  for i = 0 to t.cap - 1 do
    Pmem.wtstore t.v (slot_addr t i) 0L
  done;
  Pmem.fence t.v;
  race_rmw t t.race_tail;
  t.tail_off <- 0;
  t.tail_parity <- 1;
  t.tail_tpos <- tpos;
  t.passes <- 0;
  set_head t ~off:0 ~parity:1 ~tpos

let note_truncate t ~words =
  let obs = t.v.env.Scm.Env.machine.Scm.Env.obs in
  Obs.Metrics.incr t.trunc_ctr;
  Obs.instant_at obs Obs.Trace.Log_truncate ~ts:(t.v.env.Scm.Env.now ())
    ~arg:words

let truncate_all t =
  let words = used_words t in
  (match pmchk t.v with
  | None -> ()
  | Some chk -> Scm.Pmcheck.note_truncate chk ~log:t.base ~all:true);
  if t.rotate && t.passes >= rotate_period then rotate_generation t
  else set_head t ~off:t.tail_off ~parity:t.tail_parity ~tpos:t.tail_tpos;
  note_truncate t ~words

let advance_head_post ~records t ~words =
  if words < 0 || words > used_words t then
    invalid_arg "Rawl.advance_head: beyond tail";
  (match pmchk t.v with
  | None -> ()
  | Some chk ->
      Scm.Pmcheck.note_truncate chk ~count:records ~log:t.base ~all:false);
  let raw = t.head_off + words in
  if raw >= t.cap then begin
    let parity, tpos = next_pass t ~parity:t.head_parity ~tpos:t.head_tpos in
    post_head t ~off:(raw - t.cap) ~parity ~tpos
  end
  else post_head t ~off:raw ~parity:t.head_parity ~tpos:t.head_tpos

let advance_head ?(records = 1) t ~words =
  advance_head_post ~records t ~words;
  Pmem.fence t.v;
  note_truncate t ~words

(* The drainer's batched retirement: every listed log's head word is
   posted, then ONE combined fence (the running fiber's log leads, as
   in {!flush_group}) makes them all durable, then the per-log metrics
   fire.  Equivalent to [advance_head] on each log but with a single
   fence for the whole sweep. *)
let advance_head_group entries =
  match List.filter (fun (_, _, words) -> words > 0) entries with
  | [] -> ()
  | live ->
      List.iter
        (fun (t, records, words) -> advance_head_post ~records t ~words)
        live;
      Pmem.fence_many (List.map (fun (t, _, _) -> t.v) live);
      List.iter (fun (t, _, words) -> note_truncate t ~words) live

(* ------------------------------------------------------------------ *)
(* Recovery *)

exception Scan_end

let attach v ~base =
  let cap, rotate = unpack_cap (Pmem.load v (base + 8)) in
  if cap < 4 then failwith "Rawl.attach: no log at this address";
  register_with_pmcheck v ~base ~cap_words:cap;
  let head_off, head_parity, head_tpos = unpack_head (Pmem.load v base) in
  let append_ctr, trunc_ctr = mk_counters v in
  let race_head, race_tail = race_labels_for base in
  let t =
    { v; base; cap; rotate; passes = 0; head_off; head_parity; head_tpos;
      tail_off = head_off; tail_parity = head_parity; tail_tpos = head_tpos;
      append_ctr; trunc_ctr; owner = 0; scratch = Bytes.make 512 '\000';
      race = None; race_head; race_tail }
  in
  register_gauges t;
  (* Scan forward from the head "until it reaches the end of the log,
     where the torn bit reverses, or until it finds a log word with an
     out-of-sequence torn bit, indicating a partial write." *)
  let pos = ref head_off and parity = ref head_parity
  and tpos = ref head_tpos in
  let budget = ref (cap - 1) in
  let read_chunk () =
    if !budget = 0 then raise Scan_end;
    let w = Pmem.load v (slot_addr t !pos) in
    let chunk, torn = extract_torn w !tpos in
    if torn <> (!parity = 1) then raise Scan_end;
    decr budget;
    incr pos;
    if !pos = cap then begin
      pos := 0;
      let parity', tpos' = next_pass t ~parity:!parity ~tpos:!tpos in
      parity := parity';
      tpos := tpos'
    end;
    chunk
  in
  let records = ref [] in
  (try
     while true do
       (* Checkpoint the cursor: a partial record rolls back to here. *)
       let rec_pos = !pos
       and rec_parity = !parity
       and rec_tpos = !tpos
       and rec_budget = !budget in
       (try
          let unp = Bitstream.Unpacker.create () in
          let next_word () =
            let rec go () =
              match Bitstream.Unpacker.take unp with
              | Some w -> w
              | None ->
                  Bitstream.Unpacker.feed unp (read_chunk ());
                  go ()
            in
            go ()
          in
          let n = Int64.to_int (next_word ()) in
          if n < 1 || n > max_record_words_for ~cap_words:cap then
            raise Scan_end;
          let payload = Array.make n 0L in
          for i = 0 to n - 1 do
            payload.(i) <- next_word ()
          done;
          records := payload :: !records;
          (* Move tail past this complete record. *)
          t.tail_off <- !pos;
          t.tail_parity <- !parity;
          t.tail_tpos <- !tpos
        with Scan_end ->
          (* Partial trailing record: discard and stop the scan. *)
          pos := rec_pos;
          parity := rec_parity;
          tpos := rec_tpos;
          budget := rec_budget;
          raise Scan_end)
     done
   with Scan_end -> ());
  (* Erase the stale suffix: words of a discarded partial append ahead
     of the recovered tail still carry the current pass parity, and a
     later crash could mis-parse them as a record continuation.  Rewrite
     them as previous-pass filler so the torn-bit scan stays sound.

     The sweep must cover the ENTIRE free region, not just the
     contiguous current-parity run at the tail: streaming stores land
     as an arbitrary subset on a crash, so a stale word can sit beyond
     a gap of never-written (previous-parity) words — and a crash
     during a previous recovery's erase leaves landed filler words in
     front of not-yet-erased stale ones.  Stopping at the first
     mismatch would leave such words behind; once later appends fill
     the gap with current-parity data, a subsequent recovery scan would
     run straight into the stale word and mis-parse it as a record.
     Sweeping every free word (rewriting only those that need it) is
     idempotent and converges even if this erase itself crashes partway
     through: whatever subset of the filler writes lands, the next
     recovery sweeps the same region again. *)
  let erase_pos = ref t.tail_off
  and erase_parity = ref t.tail_parity
  and erase_tpos = ref t.tail_tpos
  and erased = ref false in
  for _ = 1 to free_words t do
    (* non-temporal: sweeping the whole free region must not evict the
       working set or perturb the eviction rng *)
    let w = Pmem.load_nt v (slot_addr t !erase_pos) in
    let _, torn = extract_torn w !erase_tpos in
    if torn = (!erase_parity = 1) then begin
      let filler =
        (* looks like the previous pass at this position *)
        if !erase_parity = 1 then 0L else Int64.shift_left 1L !erase_tpos
      in
      Pmem.wtstore v (slot_addr t !erase_pos) filler;
      erased := true
    end;
    incr erase_pos;
    if !erase_pos = cap then begin
      erase_pos := 0;
      let parity', tpos' =
        next_pass t ~parity:!erase_parity ~tpos:!erase_tpos
      in
      erase_parity := parity';
      erase_tpos := tpos'
    end
  done;
  if !erased then Pmem.fence v;
  (t, List.rev !records)
