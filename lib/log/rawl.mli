(** The tornbit raw word log — RAWL (paper section 4.4).

    A fixed-size single-producer/single-consumer Lamport circular buffer
    of uninterpreted 64-bit words, with the paper's novel atomic-append
    mechanism: every stored word reserves one torn bit whose value is
    constant within a pass over the buffer and reverses on wrap-around.
    A complete append has consistent torn bits; after a crash, a word
    whose torn bit is out of sequence marks a missing write, so a single
    fence suffices per [flush] — no commit record, no checksum.

    Appends are streamed with write-through stores and become durable at
    the next {!flush}.  The head pointer (offset + pass parity packed in
    one word) is the only other persistent state, updated atomically by
    truncation.

    In-memory layout, relative to [base] (which must point at fresh,
    zeroed persistent memory when created):
    - word 0: head word — offset in bits 0..47, pass parity in bit 48;
    - word 1: capacity in stored words;
    - byte 64 onward: the circular buffer.

    The first pass writes torn bit 1 over the zero-initialized buffer,
    so never-written words are always detectable. *)

type t

val region_bytes_for : cap_words:int -> int
(** Bytes of persistent memory needed for a log with that buffer
    capacity (header + buffer). *)

val max_record_words : t -> int
(** Largest payload (in 64-bit words) a single append can hold.
    Derived from the same bound {!append} admits by and recovery's
    length-plausibility check rejects by: a record of exactly this many
    words appends successfully and recovers; one word more is [Full]. *)

val max_record_words_for : cap_words:int -> int
(** {!max_record_words} as a function of the buffer capacity. *)

val create :
  ?rotate_torn_bit:bool -> Region.Pmem.view -> base:int -> cap_words:int -> t
(** Initialize a fresh log over zeroed persistent memory.

    [rotate_torn_bit] (default false) enables the wear-spreading
    refinement of paper section 4.5: every {!rotate_period} passes the
    torn bit moves to a different bit position (via a whole-buffer
    erase at a truncation, which keeps missing-write detection sound).
    Without it, the torn-bit position flips value on every pass while
    payload bits often repeat, so under bit-level write-skipping
    hardware that one bit column wears fastest. *)

val rotate_period : int
(** Buffer passes between torn-bit rotations (when enabled). *)

val torn_bit_position : t -> int
(** Current torn-bit position (63 unless rotation has occurred). *)

val attach : Region.Pmem.view -> base:int -> t * int64 array list
(** Recover an existing log: returns the handle (tail positioned after
    the last complete record) and every complete record from head to
    tail, in order.  Incomplete trailing appends are discarded, exactly
    as the paper's recovery scan does. *)

type append_result = Appended of int  (** stored-word span *) | Full

val append : t -> int64 array -> append_result
(** Stream a record into the log (not yet durable).  [Full] when the
    free space cannot hold it; the caller truncates (or waits for the
    asynchronous truncation daemon) and retries.  The returned span is
    what {!advance_head} takes to consume this record. *)

val append_sub : t -> int64 array -> len:int -> append_result
(** [append_sub t buf ~len] appends the first [len] words of [buf]:
    {!append} over a prefix, letting commit paths reuse one
    preallocated encode buffer instead of sizing an array per record.
    Simulated-time charges are identical to [append] on an array of
    exactly [len] words. *)

val append_bytes : t -> Bytes.t -> len:int -> append_result
(** [append_bytes t buf ~len] appends [len] words staged as raw
    little-endian bytes in [buf] (at least [8 * len] bytes): the
    boxing-free variant of {!append_sub} for commit paths that encode
    records into a [Bytes] buffer.  Identical stored-word sequence and
    simulated-time charges as {!append} on the same [len] words. *)

val flush : t -> unit
(** [log_flush]: one fence; all prior appends are durable after this. *)

val flush_group : t list -> unit
(** Group commit: one fence making every listed log's prior appends
    durable at once, with the head of the list (the leader's log)
    paying a single combined cost — see {!Region.Pmem.fence_many}.
    Callers of the other logs must be parked while this runs. *)

val set_owner : t -> int -> unit
(** Stamp the transaction id the next appends belong to (0 = none).
    Each append then opens a causal flow under that id, so deferred
    truncation and write-back work stamped with the same id renders as
    an arrow back to the append in the Chrome trace.  A plain int
    store: no simulated time, rng, or allocation. *)

val truncate_all : t -> unit
(** Drop every record: head := tail, one atomic word write + fence. *)

val advance_head : ?records:int -> t -> words:int -> unit
(** Consume [words] stored words from the head (the sum of spans of the
    records being retired).  Atomic, like {!truncate_all}.  [records]
    (default 1) is how many log records those words span — the
    durability sanitizer retires its per-record sessions in lockstep
    with the head. *)

val advance_head_group : (t * int * int) list -> unit
(** [advance_head_group [(log, records, words); ...]] retires records
    from several logs with one combined fence: every listed log's new
    head word is posted, then a single {!Region.Pmem.fence_many} (the
    first listed log's fiber pays the combined cost, as in
    {!flush_group}) makes them all durable.  Entries with [words = 0]
    are skipped.  This is the pipelined drainer's batched truncation:
    a sweep over many threads' retired commits costs one fence, not
    one per log. *)

val used_words : t -> int
val free_words : t -> int
val capacity : t -> int

val set_race : t -> Race_api.hooks option -> unit
(** Race-detection hooks (DESIGN.md section 18).  The volatile head
    and tail cursors are the appender/drainer handoff: each is a
    single-word atomic sync object — appends rmw the tail (once per
    record), head advances rmw the head, and occupancy probes
    ({!used_words}/{!free_words}) acquire both.  [None] (the default)
    keeps every site a single never-taken branch. *)

(** {1 Read-only format introspection}

    The on-SCM header/word formats, exposed for the offline image
    analyzer ({!Check.Pmfsck}), which scans log images without a
    handle and without mutating anything. *)

val header_bytes : int
(** Bytes before the circular buffer (head word, cap word, padding). *)

val unpack_head : int64 -> int * int * int
(** [(offset, pass_parity, torn_bit_position)] from a head word. *)

val unpack_cap : int64 -> int * bool
(** [(capacity_words, rotate_enabled)] from a cap word. *)

val extract_torn : int64 -> int -> int64 * bool
(** [extract_torn word tpos] splits a stored word into its 63 payload
    bits and the torn bit at position [tpos]. *)
