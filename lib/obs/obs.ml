module Metrics = Metrics
module Trace = Trace

type t = {
  metrics : Metrics.t;
  mutable trace : Trace.t option;
  mutable clock : unit -> int;
  mutable cur_tid : int;
}

let create ?(tracing = false) ?trace_capacity () =
  {
    metrics = Metrics.create ();
    trace =
      (if tracing then Some (Trace.create ?capacity:trace_capacity ())
       else None);
    clock = (fun () -> 0);
    cur_tid = 0;
  }

let tracing t = t.trace <> None

let enable_trace ?capacity t =
  if t.trace = None then t.trace <- Some (Trace.create ?capacity ())

let disable_trace t = t.trace <- None
let set_clock t f = t.clock <- f
let now t = t.clock ()
let set_tid t tid = t.cur_tid <- tid

let instant t kind ~arg =
  match t.trace with
  | None -> ()
  | Some tr -> Trace.instant tr ~tid:t.cur_tid ~ts:(t.clock ()) kind ~arg

let instant_at t kind ~ts ~arg =
  match t.trace with
  | None -> ()
  | Some tr -> Trace.instant tr ~tid:t.cur_tid ~ts kind ~arg

let complete t kind ~ts ~dur ~arg =
  match t.trace with
  | None -> ()
  | Some tr -> Trace.complete tr ~tid:t.cur_tid ~ts ~dur kind ~arg

let span t kind ~arg f =
  match t.trace with
  | None -> f ()
  | Some tr ->
      let ts = t.clock () in
      let result = f () in
      Trace.complete tr ~tid:t.cur_tid ~ts
        ~dur:(max 0 (t.clock () - ts))
        kind ~arg;
      result
