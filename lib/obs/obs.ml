module Metrics = Metrics
module Trace = Trace
module Flight = Flight
module Txprof = Txprof

type t = {
  metrics : Metrics.t;
  flight : Flight.t;
  mutable trace : Trace.t option;
  mutable clock : unit -> int;
  mutable cur_tid : int;
}

let create ?(tracing = false) ?trace_capacity ?flight_capacity () =
  {
    metrics = Metrics.create ();
    flight = Flight.create ?capacity:flight_capacity ();
    trace =
      (if tracing then Some (Trace.create ?capacity:trace_capacity ())
       else None);
    clock = (fun () -> 0);
    cur_tid = 0;
  }

let tracing t = t.trace <> None

let enable_trace ?capacity t =
  if t.trace = None then t.trace <- Some (Trace.create ?capacity ())

let disable_trace t = t.trace <- None
let set_clock t f = t.clock <- f
let now t = t.clock ()
let set_tid t tid = t.cur_tid <- tid

(* Every emitter feeds the always-on flight ring first (plain int
   stores into preallocated slots), then the opt-in trace behind its
   one-branch guard.  Neither charges simulated time. *)

let instant t kind ~arg =
  let ts = t.clock () in
  Flight.record t.flight ~code:(Trace.kind_code kind) ~ts ~dur:(-1)
    ~tid:t.cur_tid ~arg;
  match t.trace with
  | None -> ()
  | Some tr -> Trace.instant tr ~tid:t.cur_tid ~ts kind ~arg

let instant_at t kind ~ts ~arg =
  Flight.record t.flight ~code:(Trace.kind_code kind) ~ts ~dur:(-1)
    ~tid:t.cur_tid ~arg;
  match t.trace with
  | None -> ()
  | Some tr -> Trace.instant tr ~tid:t.cur_tid ~ts kind ~arg

let complete t kind ~ts ~dur ~arg =
  Flight.record t.flight ~code:(Trace.kind_code kind) ~ts ~dur ~tid:t.cur_tid
    ~arg;
  match t.trace with
  | None -> ()
  | Some tr -> Trace.complete tr ~tid:t.cur_tid ~ts ~dur kind ~arg

let span t kind ~arg f =
  let ts = t.clock () in
  let result = f () in
  let dur = max 0 (t.clock () - ts) in
  Flight.record t.flight ~code:(Trace.kind_code kind) ~ts ~dur ~tid:t.cur_tid
    ~arg;
  (match t.trace with
  | None -> ()
  | Some tr -> Trace.complete tr ~tid:t.cur_tid ~ts ~dur kind ~arg);
  result

(* Causal flow stamps: codes 20..22 in the flight ring, Chrome flow
   events in the trace. *)

let flow_code = function `Start -> 20 | `Step -> 21 | `End -> 22

let flow t ~phase ~id =
  let ts = t.clock () in
  Flight.record t.flight ~code:(flow_code phase) ~ts ~dur:(-1) ~tid:t.cur_tid
    ~arg:id;
  match t.trace with
  | None -> ()
  | Some tr -> Trace.flow tr ~tid:t.cur_tid ~ts ~phase ~id

let flight_dump t =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf (Flight.dump t.flight);
  Buffer.add_string buf "\nmetrics snapshot:\n";
  Buffer.add_string buf (Metrics.dump t.metrics);
  Buffer.contents buf
