(* The always-on flight recorder: a small fixed ring of preallocated
   entries with mutable int fields.  Recording is five int stores and
   two counter bumps — no allocation, no simulated-time charge, no
   randomness — so it can stay on under every run, including the
   bit-identity-checked benchmarks and crash sweeps.  When a failure
   surfaces (crash divergence, serializability violation, pmcheck
   report), the last-N events explain what the machine was doing. *)

type entry = {
  mutable e_code : int;  (* Trace.kind_code, or 20..22 for flow *)
  mutable e_ts : int;
  mutable e_dur : int;  (* -1 = instant *)
  mutable e_tid : int;
  mutable e_arg : int;
}

type t = {
  cap : int;
  ring : entry array;
  mutable next : int;
  mutable total : int;
}

let default_capacity = 256

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Flight.create: capacity";
  {
    cap = capacity;
    ring =
      Array.init capacity (fun _ ->
          { e_code = -1; e_ts = 0; e_dur = -1; e_tid = 0; e_arg = 0 });
    next = 0;
    total = 0;
  }

let[@inline] record t ~code ~ts ~dur ~tid ~arg =
  let e = Array.unsafe_get t.ring t.next in
  e.e_code <- code;
  e.e_ts <- ts;
  e.e_dur <- dur;
  e.e_tid <- tid;
  e.e_arg <- arg;
  let n = t.next + 1 in
  t.next <- (if n = t.cap then 0 else n);
  t.total <- t.total + 1

let capacity t = t.cap
let total t = t.total
let length t = min t.total t.cap

let iter_oldest_first t f =
  let len = length t in
  let start = (t.next - len + t.cap) mod t.cap in
  for i = 0 to len - 1 do
    f t.ring.((start + i) mod t.cap)
  done

let dump t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "flight recorder: last %d of %d events (oldest first, sim ns)\n"
       (length t) t.total);
  Buffer.add_string buf
    (Printf.sprintf "%12s %5s %-18s %12s %14s\n" "ts" "tid" "event" "dur"
       "arg");
  iter_oldest_first t (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%12d %5d %-18s %12s %14d\n" e.e_ts e.e_tid
           (Trace.code_name e.e_code)
           (if e.e_dur < 0 then "-" else string_of_int e.e_dur)
           e.e_arg));
  Buffer.contents buf
