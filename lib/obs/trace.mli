(** A ring-buffered structured event recorder with a Chrome
    [trace_event] exporter.

    Events carry {e simulated} timestamps (nanoseconds) supplied by the
    caller, one integer payload, and a track id (the simulated thread).
    The ring has fixed capacity: when full, recording a new event
    overwrites the oldest one and counts the drop, so a long run keeps
    the most recent window.

    The exporter emits Chrome [trace_event] JSON (open the file in
    [chrome://tracing] or Perfetto); complete events become ["X"]
    phases and instants become ["i"], with [ts]/[dur] in microseconds
    carrying nanosecond precision in the fractional digits. *)

type kind =
  | Txn_begin
  | Txn_commit
  | Txn_abort
  | Txn_retry
  | Fence
  | Flush
  | Wc_drain
  | Cache_evict
  | Log_append
  | Log_truncate
  | Log_stall  (** Producer blocked on a full log, draining inline. *)
  | Recovery_replay
  | Heap_alloc
  | Heap_free
  | Swap_in
  | Swap_out
  | Sched_decision
      (** A same-time tiebreak drawn by the schedule explorer; the
          argument is the chosen key (see {!Sim.Schedule}). *)
  | Pmcheck_violation
      (** The durability sanitizer detected a rule violation; the
          argument is the offending virtual word address. *)
  | Txn_flow
      (** A causal flow stamp: the argument is the owning transaction
          id, linking a transaction's log append to the deferred work
          (truncation, write-back, drain) it caused. *)
  | Req_shed
      (** A serving request shed by admission control; the argument is
          the tenant it belonged to (see [lib/serve]). *)
  | Phase of string  (** A named span, for ad-hoc instrumentation. *)

val kind_name : kind -> string
val arg_label : kind -> string
(** The JSON key under which the event's payload argument appears. *)

val kind_code : kind -> int
(** A stable small-integer code for the kind, for storage in
    allocation-free rings (the flight recorder). *)

val code_name : int -> string
(** Inverse of {!kind_code} for display; also names the codes 20–22
    reserved for flow start/step/end flight entries. *)

type event = {
  kind : kind;
  ts : int;  (** simulated ns *)
  dur : int;  (** simulated ns; [-1] marks an instant event *)
  tid : int;
  arg : int;  (** payload; the flow id (txid) when [flow > 0] *)
  flow : int;
      (** 0 = regular event; 1/2/3 = Chrome flow start/step/end
          stitching deferred work back to the owning transaction. *)
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 65536 events. *)

val capacity : t -> int
val length : t -> int
(** Events currently held (at most [capacity]). *)

val dropped : t -> int
(** Events overwritten since creation (oldest-first). *)

val clear : t -> unit
(** Drop all events and reset the drop counter. *)

val instant : t -> tid:int -> ts:int -> kind -> arg:int -> unit
val complete : t -> tid:int -> ts:int -> dur:int -> kind -> arg:int -> unit

val flow :
  t -> tid:int -> ts:int -> phase:[ `Start | `Step | `End ] -> id:int -> unit
(** Record one phase of a causal flow whose id is the owning
    transaction id.  The exporter emits Chrome flow events
    (["ph":"s"/"t"/"f"], name ["txn"]) that render as arrows from the
    transaction's log append to its deferred truncation, write-back
    and drain work. *)

(** {1 Nestable spans}

    A per-track stack: [begin_span] remembers the opening timestamp,
    [end_span] pops it and records one complete event covering the
    interval.  Spans on the same track must nest properly. *)

val begin_span : t -> tid:int -> ts:int -> kind -> arg:int -> unit

val end_span : t -> tid:int -> ts:int -> unit
(** No-op if no span is open on the track. *)

val events : t -> event list
(** Oldest first. *)

val to_chrome_json : t -> string
(** The complete JSON document ([{"traceEvents": [...], ...}]). *)

val save_chrome : t -> string -> unit
(** Write {!to_chrome_json} to the file, then warn on stderr if any
    events were dropped — the shared save path, so truncated traces
    are never silent. *)

val summary : t -> string
(** Flamegraph-style plain-text rollup: per event kind, the count,
    total and mean duration, sorted by total time. *)
