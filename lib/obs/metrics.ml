type counter = { c_name : string; mutable count : int }

type histogram = {
  h_name : string;
  sub_bits : int;
  sub : int;  (* 1 lsl sub_bits *)
  buckets : int array;
  mutable n : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

type t = {
  counters : (string, counter) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 16; histograms = Hashtbl.create 16 }

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; count = 0 } in
      Hashtbl.replace t.counters name c;
      c

let incr ?(by = 1) c = c.count <- c.count + by
let counter_value c = c.count
let counter_name c = c.c_name

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)

let default_sub_bits = 9

let make_histogram ?(sub_bits = default_sub_bits) name =
  if sub_bits < 1 || sub_bits > 20 then
    invalid_arg "Metrics.make_histogram: sub_bits";
  let sub = 1 lsl sub_bits in
  {
    h_name = name;
    sub_bits;
    sub;
    (* one linear segment below [sub], then one [sub]-wide segment per
       power of two up to bit 62 *)
    buckets = Array.make ((64 - sub_bits) * sub) 0;
    n = 0;
    sum = 0;
    min_v = max_int;
    max_v = 0;
  }

let histogram ?sub_bits t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
      let h = make_histogram ?sub_bits name in
      Hashtbl.replace t.histograms name h;
      h

let msb v =
  let r = ref 0 and v = ref v in
  if !v lsr 32 <> 0 then (r := !r + 32; v := !v lsr 32);
  if !v lsr 16 <> 0 then (r := !r + 16; v := !v lsr 16);
  if !v lsr 8 <> 0 then (r := !r + 8; v := !v lsr 8);
  if !v lsr 4 <> 0 then (r := !r + 4; v := !v lsr 4);
  if !v lsr 2 <> 0 then (r := !r + 2; v := !v lsr 2);
  if !v lsr 1 <> 0 then Stdlib.incr r;
  !r

let index h v =
  if v < h.sub then v
  else
    let m = msb v in
    ((m - h.sub_bits + 1) * h.sub) + ((v lsr (m - h.sub_bits)) - h.sub)

(* Lower bound of bucket [i]: the smallest value that maps there (the
   inverse of {!index}; exact for unit-width buckets). *)
let value_of_index h i =
  if i < h.sub then i
  else
    let m = (i / h.sub) - 1 + h.sub_bits in
    (h.sub + (i mod h.sub)) lsl (m - h.sub_bits)

let record h v =
  let v = if v < 0 then 0 else v in
  h.buckets.(index h v) <- h.buckets.(index h v) + 1;
  h.n <- h.n + 1;
  h.sum <- h.sum + v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v

let hcount h = h.n
let hsum h = h.sum
let hmean h = if h.n = 0 then 0.0 else float_of_int h.sum /. float_of_int h.n
let hmin h = if h.n = 0 then 0 else h.min_v
let hmax h = h.max_v
let histogram_name h = h.h_name
let nbuckets h = Array.length h.buckets

let hreset h =
  Array.fill h.buckets 0 (Array.length h.buckets) 0;
  h.n <- 0;
  h.sum <- 0;
  h.min_v <- max_int;
  h.max_v <- 0

let percentile h p =
  if h.n = 0 then 0
  else begin
    let rank =
      int_of_float (Float.round (p /. 100.0 *. float_of_int (h.n - 1)))
    in
    let rank = max 0 (min (h.n - 1) rank) in
    let acc = ref 0 and i = ref 0 and result = ref h.max_v in
    (try
       while !i < Array.length h.buckets do
         acc := !acc + h.buckets.(!i);
         if !acc > rank then begin
           result := value_of_index h !i;
           raise Exit
         end;
         Stdlib.incr i
       done
     with Exit -> ());
    (* quantization cannot escape the observed range *)
    max (hmin h) (min h.max_v !result)
  end

(* ------------------------------------------------------------------ *)
(* Dumping                                                             *)

let sorted_values tbl =
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []

let iter_counters t f =
  sorted_values t.counters
  |> List.sort (fun a b -> compare a.c_name b.c_name)
  |> List.iter f

let iter_histograms t f =
  sorted_values t.histograms
  |> List.sort (fun a b -> compare a.h_name b.h_name)
  |> List.iter f

let dump t =
  let buf = Buffer.create 1024 in
  iter_counters t (fun c ->
      Buffer.add_string buf (Printf.sprintf "%-36s %12d\n" c.c_name c.count));
  iter_histograms t (fun h ->
      Buffer.add_string buf
        (Printf.sprintf
           "%-36s n=%-8d mean=%-10.1f min=%-8d p50=%-8d p99=%-8d max=%d\n"
           h.h_name h.n (hmean h) (hmin h) (percentile h 50.0)
           (percentile h 99.0) (hmax h)));
  Buffer.contents buf
