type counter = { c_name : string; mutable count : int }

type gauge = { g_name : string; mutable sample : unit -> int }

type histogram = {
  h_name : string;
  sub_bits : int;
  sub : int;  (* 1 lsl sub_bits *)
  buckets : int array;
  mutable n : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; count = 0 } in
      Hashtbl.replace t.counters name c;
      c

let incr ?(by = 1) c = c.count <- c.count + by
let counter_value c = c.count
let counter_name c = c.c_name

(* ------------------------------------------------------------------ *)
(* Gauges                                                              *)

let gauge t name =
  match Hashtbl.find_opt t.gauges name with
  | Some g -> g
  | None ->
      let g = { g_name = name; sample = (fun () -> 0) } in
      Hashtbl.replace t.gauges name g;
      g

let set_gauge g f = g.sample <- f
let gauge_value g = g.sample ()
let gauge_name g = g.g_name

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)

let default_sub_bits = 9

let make_histogram ?(sub_bits = default_sub_bits) name =
  if sub_bits < 1 || sub_bits > 20 then
    invalid_arg "Metrics.make_histogram: sub_bits";
  let sub = 1 lsl sub_bits in
  {
    h_name = name;
    sub_bits;
    sub;
    (* one linear segment below [sub], then one [sub]-wide segment per
       power of two up to bit 62 *)
    buckets = Array.make ((64 - sub_bits) * sub) 0;
    n = 0;
    sum = 0;
    min_v = max_int;
    max_v = 0;
  }

let histogram ?sub_bits t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
      let h = make_histogram ?sub_bits name in
      Hashtbl.replace t.histograms name h;
      h

let msb v =
  let r = ref 0 and v = ref v in
  if !v lsr 32 <> 0 then (r := !r + 32; v := !v lsr 32);
  if !v lsr 16 <> 0 then (r := !r + 16; v := !v lsr 16);
  if !v lsr 8 <> 0 then (r := !r + 8; v := !v lsr 8);
  if !v lsr 4 <> 0 then (r := !r + 4; v := !v lsr 4);
  if !v lsr 2 <> 0 then (r := !r + 2; v := !v lsr 2);
  if !v lsr 1 <> 0 then Stdlib.incr r;
  !r

let index h v =
  if v < h.sub then v
  else
    let m = msb v in
    ((m - h.sub_bits + 1) * h.sub) + ((v lsr (m - h.sub_bits)) - h.sub)

(* Lower bound of bucket [i]: the smallest value that maps there (the
   inverse of {!index}; exact for unit-width buckets). *)
let value_of_index h i =
  if i < h.sub then i
  else
    let m = (i / h.sub) - 1 + h.sub_bits in
    (h.sub + (i mod h.sub)) lsl (m - h.sub_bits)

let record h v =
  let v = if v < 0 then 0 else v in
  h.buckets.(index h v) <- h.buckets.(index h v) + 1;
  h.n <- h.n + 1;
  h.sum <- h.sum + v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v

let hcount h = h.n
let hsum h = h.sum
let hmean h = if h.n = 0 then 0.0 else float_of_int h.sum /. float_of_int h.n
let hmin h = if h.n = 0 then 0 else h.min_v
let hmax h = h.max_v
let histogram_name h = h.h_name
let nbuckets h = Array.length h.buckets

let hreset h =
  Array.fill h.buckets 0 (Array.length h.buckets) 0;
  h.n <- 0;
  h.sum <- 0;
  h.min_v <- max_int;
  h.max_v <- 0

let percentile h p =
  if h.n = 0 then 0
  else begin
    let rank =
      int_of_float (Float.round (p /. 100.0 *. float_of_int (h.n - 1)))
    in
    let rank = max 0 (min (h.n - 1) rank) in
    let acc = ref 0 and i = ref 0 and result = ref h.max_v in
    (try
       while !i < Array.length h.buckets do
         acc := !acc + h.buckets.(!i);
         if !acc > rank then begin
           result := value_of_index h !i;
           raise Exit
         end;
         Stdlib.incr i
       done
     with Exit -> ());
    (* quantization cannot escape the observed range *)
    max (hmin h) (min h.max_v !result)
  end

(* ------------------------------------------------------------------ *)
(* Dumping                                                             *)

let sorted_values tbl =
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []

let iter_counters t f =
  sorted_values t.counters
  |> List.sort (fun a b -> compare a.c_name b.c_name)
  |> List.iter f

let iter_gauges t f =
  sorted_values t.gauges
  |> List.sort (fun a b -> compare a.g_name b.g_name)
  |> List.iter f

let iter_histograms t f =
  sorted_values t.histograms
  |> List.sort (fun a b -> compare a.h_name b.h_name)
  |> List.iter f

let dump t =
  let buf = Buffer.create 1024 in
  iter_counters t (fun c ->
      Buffer.add_string buf (Printf.sprintf "%-36s %12d\n" c.c_name c.count));
  iter_gauges t (fun g ->
      Buffer.add_string buf
        (Printf.sprintf "%-36s %12d (gauge)\n" g.g_name (g.sample ())));
  iter_histograms t (fun h ->
      Buffer.add_string buf
        (Printf.sprintf
           "%-36s n=%-8d mean=%-10.1f min=%-8d p50=%-8d p99=%-8d max=%d\n"
           h.h_name h.n (hmean h) (hmin h) (percentile h 50.0)
           (percentile h 99.0) (hmax h)));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Snapshots and export formats                                        *)

type hist_snapshot = {
  hs_name : string;
  hs_count : int;
  hs_sum : int;
  hs_min : int;
  hs_max : int;
  hs_mean : float;
  hs_p50 : int;
  hs_p90 : int;
  hs_p99 : int;
  hs_p999 : int;
}

type snapshot = {
  snap_counters : (string * int) list;
  snap_gauges : (string * int) list;
  snap_histograms : hist_snapshot list;
}

(* Gauges sample their subject at snapshot time: a snapshot is the
   point-in-time view, everything else is cumulative. *)
let snapshot t =
  let counters = ref [] and gauges = ref [] and hists = ref [] in
  iter_counters t (fun c -> counters := (c.c_name, c.count) :: !counters);
  iter_gauges t (fun g -> gauges := (g.g_name, g.sample ()) :: !gauges);
  iter_histograms t (fun h ->
      hists :=
        {
          hs_name = h.h_name;
          hs_count = h.n;
          hs_sum = h.sum;
          hs_min = hmin h;
          hs_max = hmax h;
          hs_mean = hmean h;
          hs_p50 = percentile h 50.0;
          hs_p90 = percentile h 90.0;
          hs_p99 = percentile h 99.0;
          hs_p999 = percentile h 99.9;
        }
        :: !hists);
  {
    snap_counters = List.rev !counters;
    snap_gauges = List.rev !gauges;
    snap_histograms = List.rev !hists;
  }

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let snapshot_to_json s =
  let buf = Buffer.create 4096 in
  let scalar_section name kvs =
    Buffer.add_string buf (Printf.sprintf "  \"%s\": {" name);
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "\n    \"%s\": %d" (json_escape k) v))
      kvs;
    Buffer.add_string buf (if kvs = [] then "}" else "\n  }")
  in
  Buffer.add_string buf "{\n";
  scalar_section "counters" s.snap_counters;
  Buffer.add_string buf ",\n";
  scalar_section "gauges" s.snap_gauges;
  Buffer.add_string buf ",\n  \"histograms\": {";
  List.iteri
    (fun i h ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    \"%s\": {\"count\": %d, \"sum\": %d, \"min\": %d, \"max\": \
            %d, \"mean\": %.6g, \"p50\": %d, \"p90\": %d, \"p99\": %d, \
            \"p999\": %d}"
           (json_escape h.hs_name) h.hs_count h.hs_sum h.hs_min h.hs_max
           h.hs_mean h.hs_p50 h.hs_p90 h.hs_p99 h.hs_p999))
    s.snap_histograms;
  Buffer.add_string buf
    (if s.snap_histograms = [] then "}\n}\n" else "\n  }\n}\n");
  Buffer.contents buf

let to_json t = snapshot_to_json (snapshot t)

(* OpenMetrics-style exposition: counters get a [_total] sample,
   histograms are rendered as summaries with quantile labels.  Metric
   names are sanitized to the [a-zA-Z0-9_:] alphabet. *)
let om_name s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    s

let snapshot_to_openmetrics s =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, v) ->
      let n = om_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" n);
      Buffer.add_string buf (Printf.sprintf "%s_total %d\n" n v))
    s.snap_counters;
  List.iter
    (fun (name, v) ->
      let n = om_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" n);
      Buffer.add_string buf (Printf.sprintf "%s %d\n" n v))
    s.snap_gauges;
  List.iter
    (fun h ->
      let n = om_name h.hs_name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" n);
      List.iter
        (fun (q, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%s{quantile=\"%s\"} %d\n" n q v))
        [
          ("0.5", h.hs_p50);
          ("0.9", h.hs_p90);
          ("0.99", h.hs_p99);
          ("0.999", h.hs_p999);
        ];
      Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" n h.hs_sum);
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n h.hs_count))
    s.snap_histograms;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let to_openmetrics t = snapshot_to_openmetrics (snapshot t)
