(** Observability: one handle bundling a metrics registry, an optional
    event trace, and the simulated clock they are stamped with.

    One [Obs.t] belongs to one simulated machine ({!Scm.Env.machine})
    and is threaded through every layer above it.  Metrics are always
    live — recording them never charges simulated time, so they cannot
    perturb an experiment.  Tracing is off by default; every
    instrumentation hook is guarded so that a disabled trace costs a
    single branch ([trace t = None]).

    Timestamps come either from the caller (layers that hold an
    {!Scm.Env.t} pass [env.now ()] explicitly) or from the handle's
    clock, which environment creation keeps pointed at the most
    recently created environment's clock — under the discrete-event
    simulator all environments share one clock, so any of them is the
    truth. *)

module Metrics = Metrics
module Trace = Trace

type t = {
  metrics : Metrics.t;
  mutable trace : Trace.t option;
  mutable clock : unit -> int;
  mutable cur_tid : int;
}

val create : ?tracing:bool -> ?trace_capacity:int -> unit -> t
(** A fresh handle; metrics on, trace off unless [tracing]. *)

val tracing : t -> bool
val enable_trace : ?capacity:int -> t -> unit
val disable_trace : t -> unit

val set_clock : t -> (unit -> int) -> unit
val now : t -> int

val set_tid : t -> int -> unit
(** Set the current track; cooperative simulated threads set this when
    they are scheduled so events land on their track. *)

(** {1 Guarded emitters}

    Each is a no-op (one branch) when tracing is disabled. *)

val instant : t -> Trace.kind -> arg:int -> unit
(** Instant event stamped with the handle's clock. *)

val instant_at : t -> Trace.kind -> ts:int -> arg:int -> unit
val complete : t -> Trace.kind -> ts:int -> dur:int -> arg:int -> unit

val span : t -> Trace.kind -> arg:int -> (unit -> 'a) -> 'a
(** Run the thunk; when tracing, record one complete event covering
    it (timestamps from the handle's clock). *)
