(** Observability: one handle bundling a metrics registry, an
    always-on flight recorder, an optional event trace, and the
    simulated clock they are stamped with.

    One [Obs.t] belongs to one simulated machine ({!Scm.Env.machine})
    and is threaded through every layer above it.  Metrics are always
    live — recording them never charges simulated time, so they cannot
    perturb an experiment.  The flight recorder is likewise always on:
    every emitted event lands in its small preallocated ring with no
    allocation, so the most recent window is available when a run
    fails.  Tracing is off by default; the full trace ring only
    records behind its one-branch guard.

    Timestamps come either from the caller (layers that hold an
    {!Scm.Env.t} pass [env.now ()] explicitly) or from the handle's
    clock, which environment creation keeps pointed at the most
    recently created environment's clock — under the discrete-event
    simulator all environments share one clock, so any of them is the
    truth. *)

module Metrics = Metrics
module Trace = Trace
module Flight = Flight
module Txprof = Txprof

type t = {
  metrics : Metrics.t;
  flight : Flight.t;
  mutable trace : Trace.t option;
  mutable clock : unit -> int;
  mutable cur_tid : int;
}

val create :
  ?tracing:bool -> ?trace_capacity:int -> ?flight_capacity:int -> unit -> t
(** A fresh handle; metrics and flight recorder on, trace off unless
    [tracing]. *)

val tracing : t -> bool
val enable_trace : ?capacity:int -> t -> unit
val disable_trace : t -> unit

val set_clock : t -> (unit -> int) -> unit
val now : t -> int

val set_tid : t -> int -> unit
(** Set the current track; cooperative simulated threads set this when
    they are scheduled so events land on their track. *)

(** {1 Emitters}

    Each feeds the always-on flight ring (a handful of int stores,
    no allocation), then the opt-in trace behind a one-branch guard.
    None charges simulated time. *)

val instant : t -> Trace.kind -> arg:int -> unit
(** Instant event stamped with the handle's clock. *)

val instant_at : t -> Trace.kind -> ts:int -> arg:int -> unit
val complete : t -> Trace.kind -> ts:int -> dur:int -> arg:int -> unit

val span : t -> Trace.kind -> arg:int -> (unit -> 'a) -> 'a
(** Run the thunk; record one complete event covering it (timestamps
    from the handle's clock). *)

val flow : t -> phase:[ `Start | `Step | `End ] -> id:int -> unit
(** Record one causal flow stamp for transaction [id] at the handle's
    clock: flight codes 20..22 always, a Chrome flow event when
    tracing.  See {!Trace.flow}. *)

val flight_dump : t -> string
(** The failure-report payload: the flight ring's last-N events plus a
    metrics snapshot, both human-readable. *)
