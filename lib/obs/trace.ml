type kind =
  | Txn_begin
  | Txn_commit
  | Txn_abort
  | Txn_retry
  | Fence
  | Flush
  | Wc_drain
  | Cache_evict
  | Log_append
  | Log_truncate
  | Log_stall
  | Recovery_replay
  | Heap_alloc
  | Heap_free
  | Swap_in
  | Swap_out
  | Sched_decision
  | Pmcheck_violation
  | Phase of string

let kind_name = function
  | Txn_begin -> "Txn_begin"
  | Txn_commit -> "Txn_commit"
  | Txn_abort -> "Txn_abort"
  | Txn_retry -> "Txn_retry"
  | Fence -> "Fence"
  | Flush -> "Flush"
  | Wc_drain -> "Wc_drain"
  | Cache_evict -> "Cache_evict"
  | Log_append -> "Log_append"
  | Log_truncate -> "Log_truncate"
  | Log_stall -> "Log_stall"
  | Recovery_replay -> "Recovery_replay"
  | Heap_alloc -> "Heap_alloc"
  | Heap_free -> "Heap_free"
  | Swap_in -> "Swap_in"
  | Swap_out -> "Swap_out"
  | Sched_decision -> "Sched_decision"
  | Pmcheck_violation -> "Pmcheck_violation"
  | Phase s -> s

let arg_label = function
  | Fence | Heap_alloc -> "bytes"
  | Flush | Heap_free -> "addr"
  | Wc_drain -> "words"
  | Cache_evict -> "line"
  | Log_append | Log_truncate | Log_stall -> "words"
  | Txn_begin | Txn_commit | Txn_abort | Txn_retry -> "writes"
  | Recovery_replay -> "ts"
  | Swap_in | Swap_out -> "frame"
  | Sched_decision -> "key"
  | Pmcheck_violation -> "addr"
  | Phase _ -> "value"

type event = { kind : kind; ts : int; dur : int; tid : int; arg : int }

let dummy = { kind = Fence; ts = 0; dur = -1; tid = 0; arg = 0 }

type t = {
  cap : int;
  ring : event array;
  mutable len : int;
  mutable next : int;
  mutable n_dropped : int;
  open_spans : (int, (kind * int * int) Stack.t) Hashtbl.t;
}

let create ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity";
  {
    cap = capacity;
    ring = Array.make capacity dummy;
    len = 0;
    next = 0;
    n_dropped = 0;
    open_spans = Hashtbl.create 8;
  }

let capacity t = t.cap
let length t = t.len
let dropped t = t.n_dropped

let clear t =
  t.len <- 0;
  t.next <- 0;
  t.n_dropped <- 0;
  Hashtbl.reset t.open_spans

let push t ev =
  t.ring.(t.next) <- ev;
  t.next <- (t.next + 1) mod t.cap;
  if t.len < t.cap then t.len <- t.len + 1 else t.n_dropped <- t.n_dropped + 1

let instant t ~tid ~ts kind ~arg = push t { kind; ts; dur = -1; tid; arg }
let complete t ~tid ~ts ~dur kind ~arg = push t { kind; ts; dur; tid; arg }

let begin_span t ~tid ~ts kind ~arg =
  let stack =
    match Hashtbl.find_opt t.open_spans tid with
    | Some s -> s
    | None ->
        let s = Stack.create () in
        Hashtbl.replace t.open_spans tid s;
        s
  in
  Stack.push (kind, ts, arg) stack

let end_span t ~tid ~ts =
  match Hashtbl.find_opt t.open_spans tid with
  | None -> ()
  | Some stack ->
      if not (Stack.is_empty stack) then begin
        let kind, ts0, arg = Stack.pop stack in
        complete t ~tid ~ts:ts0 ~dur:(max 0 (ts - ts0)) kind ~arg
      end

let events t =
  let start = (t.next - t.len + t.cap) mod t.cap in
  List.init t.len (fun i -> t.ring.((start + i) mod t.cap))

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export                                           *)

(* ts/dur are microseconds in the trace_event format; print the
   simulated nanoseconds as fractional microseconds so nothing is
   lost. *)
let us ns = Printf.sprintf "%d.%03d" (ns / 1000) (ns mod 1000)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let event_json buf ev =
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"mnemosyne\",\"ph\":\"%s\""
       (escape (kind_name ev.kind))
       (if ev.dur < 0 then "i" else "X"));
  if ev.dur < 0 then Buffer.add_string buf ",\"s\":\"t\""
  else Buffer.add_string buf (Printf.sprintf ",\"dur\":%s" (us ev.dur));
  Buffer.add_string buf
    (Printf.sprintf ",\"ts\":%s,\"pid\":1,\"tid\":%d,\"args\":{\"%s\":%d}}"
       (us ev.ts) ev.tid
       (escape (arg_label ev.kind))
       ev.arg)

let to_chrome_json t =
  let buf = Buffer.create (256 * (t.len + 2)) in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  (* Events are recorded in completion order; emit them in start-time
     order (longer spans first on ties, so nesting reads naturally). *)
  let by_start =
    List.stable_sort
      (fun a b ->
        match compare a.ts b.ts with 0 -> compare b.dur a.dur | c -> c)
      (events t)
  in
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n';
      event_json buf ev)
    by_start;
  Buffer.add_string buf
    (Printf.sprintf
       "\n],\"otherData\":{\"clock\":\"simulated\",\"dropped_events\":%d}}\n"
       t.n_dropped);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Plain-text rollup                                                   *)

let summary t =
  let agg = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      let name = kind_name ev.kind in
      let count, total =
        Option.value ~default:(0, 0) (Hashtbl.find_opt agg name)
      in
      Hashtbl.replace agg name (count + 1, total + max 0 ev.dur))
    (events t);
  let rows = Hashtbl.fold (fun name ct acc -> (name, ct) :: acc) agg [] in
  let rows =
    List.sort
      (fun (_, (_, ta)) (_, (_, tb)) -> compare (tb : int) ta)
      rows
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-18s %10s %14s %12s\n" "event" "count" "total ns"
       "mean ns");
  List.iter
    (fun (name, (count, total)) ->
      Buffer.add_string buf
        (Printf.sprintf "%-18s %10d %14d %12.1f\n" name count total
           (float_of_int total /. float_of_int count)))
    rows;
  Buffer.add_string buf
    (Printf.sprintf "(%d events held, %d dropped oldest-first)\n" t.len
       t.n_dropped);
  Buffer.contents buf
