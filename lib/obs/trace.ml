type kind =
  | Txn_begin
  | Txn_commit
  | Txn_abort
  | Txn_retry
  | Fence
  | Flush
  | Wc_drain
  | Cache_evict
  | Log_append
  | Log_truncate
  | Log_stall
  | Recovery_replay
  | Heap_alloc
  | Heap_free
  | Swap_in
  | Swap_out
  | Sched_decision
  | Pmcheck_violation
  | Txn_flow
  | Req_shed
  | Phase of string

let kind_name = function
  | Txn_begin -> "Txn_begin"
  | Txn_commit -> "Txn_commit"
  | Txn_abort -> "Txn_abort"
  | Txn_retry -> "Txn_retry"
  | Fence -> "Fence"
  | Flush -> "Flush"
  | Wc_drain -> "Wc_drain"
  | Cache_evict -> "Cache_evict"
  | Log_append -> "Log_append"
  | Log_truncate -> "Log_truncate"
  | Log_stall -> "Log_stall"
  | Recovery_replay -> "Recovery_replay"
  | Heap_alloc -> "Heap_alloc"
  | Heap_free -> "Heap_free"
  | Swap_in -> "Swap_in"
  | Swap_out -> "Swap_out"
  | Sched_decision -> "Sched_decision"
  | Pmcheck_violation -> "Pmcheck_violation"
  | Txn_flow -> "Txn_flow"
  | Req_shed -> "Req_shed"
  | Phase s -> s

(* Stable small-integer codes for the allocation-free flight recorder,
   which cannot store the kind constructors themselves (a [Phase]
   payload would have to be retained). *)
let kind_code = function
  | Txn_begin -> 0
  | Txn_commit -> 1
  | Txn_abort -> 2
  | Txn_retry -> 3
  | Fence -> 4
  | Flush -> 5
  | Wc_drain -> 6
  | Cache_evict -> 7
  | Log_append -> 8
  | Log_truncate -> 9
  | Log_stall -> 10
  | Recovery_replay -> 11
  | Heap_alloc -> 12
  | Heap_free -> 13
  | Swap_in -> 14
  | Swap_out -> 15
  | Sched_decision -> 16
  | Pmcheck_violation -> 17
  | Txn_flow -> 18
  | Phase _ -> 19
  (* 20..22 are reserved by Obs for flight-ring flow markers *)
  | Req_shed -> 23

(* 20..22 are reserved by Obs for flow start/step/end pushed straight
   into the flight ring. *)
let code_name = function
  | 0 -> "Txn_begin"
  | 1 -> "Txn_commit"
  | 2 -> "Txn_abort"
  | 3 -> "Txn_retry"
  | 4 -> "Fence"
  | 5 -> "Flush"
  | 6 -> "Wc_drain"
  | 7 -> "Cache_evict"
  | 8 -> "Log_append"
  | 9 -> "Log_truncate"
  | 10 -> "Log_stall"
  | 11 -> "Recovery_replay"
  | 12 -> "Heap_alloc"
  | 13 -> "Heap_free"
  | 14 -> "Swap_in"
  | 15 -> "Swap_out"
  | 16 -> "Sched_decision"
  | 17 -> "Pmcheck_violation"
  | 18 -> "Txn_flow"
  | 19 -> "Phase"
  | 20 -> "Flow_start"
  | 21 -> "Flow_step"
  | 22 -> "Flow_end"
  | 23 -> "Req_shed"
  | _ -> "?"

let arg_label = function
  | Fence | Heap_alloc -> "bytes"
  | Flush | Heap_free -> "addr"
  | Wc_drain -> "words"
  | Cache_evict -> "line"
  | Log_append | Log_truncate | Log_stall -> "words"
  | Txn_begin | Txn_commit | Txn_abort | Txn_retry -> "writes"
  | Recovery_replay -> "ts"
  | Swap_in | Swap_out -> "frame"
  | Sched_decision -> "key"
  | Pmcheck_violation -> "addr"
  | Txn_flow -> "txid"
  | Req_shed -> "tenant"
  | Phase _ -> "value"

(* [flow] distinguishes the Chrome flow-event phases that stitch a
   transaction's deferred work back to it: 0 = not a flow event,
   1 = start ("s"), 2 = step ("t"), 3 = end ("f").  The flow id — the
   owning transaction id — travels in [arg]. *)
type event = {
  kind : kind;
  ts : int;
  dur : int;
  tid : int;
  arg : int;
  flow : int;
}

let dummy = { kind = Fence; ts = 0; dur = -1; tid = 0; arg = 0; flow = 0 }

type t = {
  cap : int;
  ring : event array;
  mutable len : int;
  mutable next : int;
  mutable n_dropped : int;
  open_spans : (int, (kind * int * int) Stack.t) Hashtbl.t;
}

let create ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity";
  {
    cap = capacity;
    ring = Array.make capacity dummy;
    len = 0;
    next = 0;
    n_dropped = 0;
    open_spans = Hashtbl.create 8;
  }

let capacity t = t.cap
let length t = t.len
let dropped t = t.n_dropped

let clear t =
  t.len <- 0;
  t.next <- 0;
  t.n_dropped <- 0;
  Hashtbl.reset t.open_spans

let push t ev =
  t.ring.(t.next) <- ev;
  t.next <- (t.next + 1) mod t.cap;
  if t.len < t.cap then t.len <- t.len + 1 else t.n_dropped <- t.n_dropped + 1

let instant t ~tid ~ts kind ~arg =
  push t { kind; ts; dur = -1; tid; arg; flow = 0 }

let complete t ~tid ~ts ~dur kind ~arg =
  push t { kind; ts; dur; tid; arg; flow = 0 }

let flow_phase_code = function `Start -> 1 | `Step -> 2 | `End -> 3

let flow t ~tid ~ts ~phase ~id =
  push t
    {
      kind = Txn_flow;
      ts;
      dur = -1;
      tid;
      arg = id;
      flow = flow_phase_code phase;
    }

let begin_span t ~tid ~ts kind ~arg =
  let stack =
    match Hashtbl.find_opt t.open_spans tid with
    | Some s -> s
    | None ->
        let s = Stack.create () in
        Hashtbl.replace t.open_spans tid s;
        s
  in
  Stack.push (kind, ts, arg) stack

let end_span t ~tid ~ts =
  match Hashtbl.find_opt t.open_spans tid with
  | None -> ()
  | Some stack ->
      if not (Stack.is_empty stack) then begin
        let kind, ts0, arg = Stack.pop stack in
        complete t ~tid ~ts:ts0 ~dur:(max 0 (ts - ts0)) kind ~arg
      end

let events t =
  let start = (t.next - t.len + t.cap) mod t.cap in
  List.init t.len (fun i -> t.ring.((start + i) mod t.cap))

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export                                           *)

(* ts/dur are microseconds in the trace_event format; print the
   simulated nanoseconds as fractional microseconds so nothing is
   lost. *)
let us ns = Printf.sprintf "%d.%03d" (ns / 1000) (ns mod 1000)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let event_json buf ev =
  if ev.flow > 0 then begin
    (* Flow events bind on (cat, name, id): every phase of one
       transaction's flow shares name "txn" and id = txid.  The end
       event binds to the enclosing slice ("bp":"e") so the arrow
       lands on the span that retired the work. *)
    Buffer.add_string buf
      (Printf.sprintf "{\"name\":\"txn\",\"cat\":\"flow\",\"ph\":\"%s\""
         (match ev.flow with 1 -> "s" | 2 -> "t" | _ -> "f"));
    if ev.flow = 3 then Buffer.add_string buf ",\"bp\":\"e\"";
    Buffer.add_string buf
      (Printf.sprintf
         ",\"id\":%d,\"ts\":%s,\"pid\":1,\"tid\":%d,\"args\":{\"txid\":%d}}"
         ev.arg (us ev.ts) ev.tid ev.arg)
  end
  else begin
    Buffer.add_string buf
      (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"mnemosyne\",\"ph\":\"%s\""
         (escape (kind_name ev.kind))
         (if ev.dur < 0 then "i" else "X"));
    if ev.dur < 0 then Buffer.add_string buf ",\"s\":\"t\""
    else Buffer.add_string buf (Printf.sprintf ",\"dur\":%s" (us ev.dur));
    Buffer.add_string buf
      (Printf.sprintf ",\"ts\":%s,\"pid\":1,\"tid\":%d,\"args\":{\"%s\":%d}}"
         (us ev.ts) ev.tid
         (escape (arg_label ev.kind))
         ev.arg)
  end

let to_chrome_json t =
  let buf = Buffer.create (256 * (t.len + 2)) in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  (* Events are recorded in completion order; emit them in start-time
     order (longer spans first on ties, so nesting reads naturally). *)
  let by_start =
    List.stable_sort
      (fun a b ->
        match compare a.ts b.ts with 0 -> compare b.dur a.dur | c -> c)
      (events t)
  in
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n';
      event_json buf ev)
    by_start;
  Buffer.add_string buf
    (Printf.sprintf
       "\n],\"otherData\":{\"clock\":\"simulated\",\"dropped_events\":%d}}\n"
       t.n_dropped);
  Buffer.contents buf

(* The one place traces reach disk: every saver shares the
   dropped-event warning, so a silently truncated trace is always
   visible on stderr as well as in the JSON metadata above. *)
let save_chrome t path =
  let oc = open_out path in
  output_string oc (to_chrome_json t);
  close_out oc;
  if t.n_dropped > 0 then
    Printf.eprintf
      "warning: trace %s dropped %d oldest events (ring capacity %d)\n%!"
      path t.n_dropped t.cap

(* ------------------------------------------------------------------ *)
(* Plain-text rollup                                                   *)

let summary t =
  let agg = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      let name = kind_name ev.kind in
      let count, total =
        Option.value ~default:(0, 0) (Hashtbl.find_opt agg name)
      in
      Hashtbl.replace agg name (count + 1, total + max 0 ev.dur))
    (events t);
  let rows = Hashtbl.fold (fun name ct acc -> (name, ct) :: acc) agg [] in
  let rows =
    List.sort
      (fun (_, (_, ta)) (_, (_, tb)) -> compare (tb : int) ta)
      rows
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-18s %10s %14s %12s\n" "event" "count" "total ns"
       "mean ns");
  List.iter
    (fun (name, (count, total)) ->
      Buffer.add_string buf
        (Printf.sprintf "%-18s %10d %14d %12.1f\n" name count total
           (float_of_int total /. float_of_int count)))
    rows;
  Buffer.add_string buf
    (Printf.sprintf "(%d events held, %d dropped oldest-first)\n" t.len
       t.n_dropped);
  Buffer.contents buf
