(** Always-on flight recorder: a fixed ring of the most recent events.

    Unlike the opt-in {!Trace} ring — which allocates an event record
    per emission and is sized for whole-run export — the flight ring is
    small and its entries are preallocated with mutable fields, so
    recording is a handful of int stores: no allocation, no
    simulated-time charge, no randomness.  It therefore stays on under
    every run without perturbing allocation budgets, simulated figures
    or crash-point indices, and when a run fails its last-N events are
    available for the failure report. *)

type entry = {
  mutable e_code : int;
      (** {!Trace.kind_code} of the event, or 20..22 for causal flow
          start/step/end (see {!Trace.code_name}). *)
  mutable e_ts : int;  (** simulated ns *)
  mutable e_dur : int;  (** simulated ns; [-1] marks an instant *)
  mutable e_tid : int;
  mutable e_arg : int;
}

type t

val default_capacity : int
(** 256 entries. *)

val create : ?capacity:int -> unit -> t

val record : t -> code:int -> ts:int -> dur:int -> tid:int -> arg:int -> unit
(** Overwrite the oldest slot in place.  Allocation-free. *)

val capacity : t -> int

val total : t -> int
(** Events ever recorded (not just those still held). *)

val length : t -> int
(** Events currently held, at most [capacity]. *)

val iter_oldest_first : t -> (entry -> unit) -> unit
(** The entries passed are the live ring slots; do not retain them. *)

val dump : t -> string
(** Human-readable table of the held events, oldest first. *)
