(** Named counters and fixed-bucket latency histograms.

    Everything here is volatile bookkeeping about the {e simulated}
    machine: recording never charges simulated time, so enabling
    metrics cannot perturb a measurement.

    Histograms are HDR-style log-linear: values below [2^sub_bits] get
    unit-width buckets, and every power-of-two range above is split
    into [2^sub_bits] equal sub-buckets, bounding the relative
    quantization error by [2^-sub_bits].  Recording is O(1); count,
    sum, mean, min and max are exact; percentile queries walk the
    bucket array once — O(buckets), independent of the sample count. *)

type counter
type histogram

type t
(** A registry: each named counter or histogram exists once. *)

val create : unit -> t

(** {1 Counters} *)

val counter : t -> string -> counter
(** Get or create the named counter. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int
val counter_name : counter -> string

(** {1 Histograms} *)

val default_sub_bits : int
(** 9: unit buckets below 512, relative error bounded by 1/512. *)

val make_histogram : ?sub_bits:int -> string -> histogram
(** A standalone histogram outside any registry. *)

val histogram : ?sub_bits:int -> t -> string -> histogram
(** Get or create the named histogram in the registry.  [sub_bits]
    applies only on creation. *)

val record : histogram -> int -> unit
(** Record one sample (negative samples clamp to 0). *)

val hcount : histogram -> int
val hsum : histogram -> int
val hmean : histogram -> float
val hmin : histogram -> int
(** Exact smallest recorded sample; 0 when empty. *)

val hmax : histogram -> int
(** Exact largest recorded sample; 0 when empty. *)

val percentile : histogram -> float -> int
(** [percentile h p] with [p] in [0..100]: the sample at rank
    [round (p/100 * (n-1))], quantized to its bucket (exact below
    [2^sub_bits]; relative error at most [2^-sub_bits] above). *)

val histogram_name : histogram -> string
val nbuckets : histogram -> int
val hreset : histogram -> unit

(** {1 Dumping} *)

val iter_counters : t -> (counter -> unit) -> unit
(** Ascending name order. *)

val iter_histograms : t -> (histogram -> unit) -> unit
(** Ascending name order. *)

val dump : t -> string
(** Human-readable table of every counter and histogram. *)
