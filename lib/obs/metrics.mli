(** Named counters and fixed-bucket latency histograms.

    Everything here is volatile bookkeeping about the {e simulated}
    machine: recording never charges simulated time, so enabling
    metrics cannot perturb a measurement.

    Histograms are HDR-style log-linear: values below [2^sub_bits] get
    unit-width buckets, and every power-of-two range above is split
    into [2^sub_bits] equal sub-buckets, bounding the relative
    quantization error by [2^-sub_bits].  Recording is O(1); count,
    sum, mean, min and max are exact; percentile queries walk the
    bucket array once — O(buckets), independent of the sample count. *)

type counter
type gauge
type histogram

type t
(** A registry: each named counter, gauge or histogram exists once. *)

val create : unit -> t

(** {1 Counters} *)

val counter : t -> string -> counter
(** Get or create the named counter. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int
val counter_name : counter -> string

(** {1 Gauges}

    A gauge is a point-in-time value sampled on demand — cache
    occupancy, log fill, wear level — as opposed to a cumulative
    counter.  The gauge holds a sampling closure over the live data
    structure, so reading it never requires the instrumented code to
    push updates: registration is one closure store and steady-state
    cost is zero. *)

val gauge : t -> string -> gauge
(** Get or create the named gauge (sampling 0 until {!set_gauge}). *)

val set_gauge : gauge -> (unit -> int) -> unit
(** Point the gauge at its subject.  Last call wins, which is the
    desired behaviour when a structure is re-created (e.g. a log
    re-attached after recovery). *)

val gauge_value : gauge -> int
(** Sample the gauge now. *)

val gauge_name : gauge -> string

(** {1 Histograms} *)

val default_sub_bits : int
(** 9: unit buckets below 512, relative error bounded by 1/512. *)

val make_histogram : ?sub_bits:int -> string -> histogram
(** A standalone histogram outside any registry. *)

val histogram : ?sub_bits:int -> t -> string -> histogram
(** Get or create the named histogram in the registry.  [sub_bits]
    applies only on creation. *)

val record : histogram -> int -> unit
(** Record one sample (negative samples clamp to 0). *)

val hcount : histogram -> int
val hsum : histogram -> int
val hmean : histogram -> float
val hmin : histogram -> int
(** Exact smallest recorded sample; 0 when empty. *)

val hmax : histogram -> int
(** Exact largest recorded sample; 0 when empty. *)

val percentile : histogram -> float -> int
(** [percentile h p] with [p] in [0..100]: the sample at rank
    [round (p/100 * (n-1))], quantized to its bucket (exact below
    [2^sub_bits]; relative error at most [2^-sub_bits] above). *)

val histogram_name : histogram -> string
val nbuckets : histogram -> int
val hreset : histogram -> unit

(** {1 Dumping} *)

val iter_counters : t -> (counter -> unit) -> unit
(** Ascending name order. *)

val iter_gauges : t -> (gauge -> unit) -> unit
(** Ascending name order. *)

val iter_histograms : t -> (histogram -> unit) -> unit
(** Ascending name order. *)

val dump : t -> string
(** Human-readable table of every counter, gauge and histogram. *)

(** {1 Snapshots and export}

    A snapshot is an immutable copy of the registry at one instant:
    counters and gauges as [(name, value)] pairs, histograms reduced to
    count/sum/min/max/mean and fixed tail quantiles.  Gauges are
    sampled at snapshot time. *)

type hist_snapshot = {
  hs_name : string;
  hs_count : int;
  hs_sum : int;
  hs_min : int;
  hs_max : int;
  hs_mean : float;
  hs_p50 : int;
  hs_p90 : int;
  hs_p99 : int;
  hs_p999 : int;
}

type snapshot = {
  snap_counters : (string * int) list;  (** Ascending name order. *)
  snap_gauges : (string * int) list;  (** Ascending name order. *)
  snap_histograms : hist_snapshot list;  (** Ascending name order. *)
}

val snapshot : t -> snapshot

val snapshot_to_json : snapshot -> string
(** A JSON document: [{"counters": {..}, "gauges": {..},
    "histograms": {name: {count, sum, min, max, mean, p50, p90, p99,
    p999}}}]. *)

val to_json : t -> string
(** [snapshot_to_json (snapshot t)]. *)

val snapshot_to_openmetrics : snapshot -> string
(** OpenMetrics-style text exposition: counters as [name_total],
    gauges plain, histograms as summaries with [quantile] labels;
    names sanitized to the metric-name alphabet; ends with [# EOF]. *)

val to_openmetrics : t -> string
(** [snapshot_to_openmetrics (snapshot t)]. *)
