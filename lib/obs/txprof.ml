(* Per-transaction profile ledger.  Aggregate histograms answer "how
   slow", but a tail needs "why": the top-K capture retains the
   complete phase breakdown of the K slowest transactions, so p999 is
   explainable rather than just measurable.

   The capture is a fixed min-heap keyed on total duration whose K
   entries (and their phase arrays) are preallocated at creation;
   admitting a transaction copies ints into the evicted root and
   re-sifts by swapping entry references.  Recording is therefore O(K)
   worst-case with zero allocation, keeping the enabled profiler
   inside the same steady-state allocation budget as the disabled
   one. *)

let nphases = 9
let ph_exec = 0
let ph_validate = 1
let ph_log = 2
let ph_fence = 3
let ph_write_back = 4
let ph_trunc_wait = 5
let ph_backoff = 6
let ph_drain_wait = 7
let ph_other = 8

let phase_name = function
  | 0 -> "exec"
  | 1 -> "validate"
  | 2 -> "log"
  | 3 -> "fence"
  | 4 -> "write_back"
  | 5 -> "trunc_wait"
  | 6 -> "backoff"
  | 7 -> "drain_wait"
  | 8 -> "other"
  | _ -> "?"

type entry = {
  mutable txid : int;
  mutable tid : int;
  mutable start_ts : int;
  mutable total_ns : int;
  mutable retries : int;
  mutable bytes_logged : int;
  mutable writes : int;
  phases : int array;  (* nphases, simulated ns per phase *)
}

type t = {
  k : int;
  heap : entry array;  (* min-heap on total_ns over [0, len) *)
  mutable len : int;
  h_phase : Metrics.histogram array;
  h_total : Metrics.histogram;
  mutable recorded : int;
}

let default_k = 16

let create ?(k = default_k) m =
  if k < 1 then invalid_arg "Txprof.create: k";
  {
    k;
    heap =
      Array.init k (fun _ ->
          {
            txid = 0;
            tid = 0;
            start_ts = 0;
            total_ns = -1;
            retries = 0;
            bytes_logged = 0;
            writes = 0;
            phases = Array.make nphases 0;
          });
    len = 0;
    h_phase =
      Array.init nphases (fun i ->
          Metrics.histogram m
            (Printf.sprintf "mtm.txn.phase.%s_ns" (phase_name i)));
    h_total = Metrics.histogram m "mtm.txn.total_ns";
    recorded = 0;
  }

let count t = t.recorded
let k t = t.k
let captured t = t.len
let phase_histogram t i = t.h_phase.(i)
let total_histogram t = t.h_total

let[@inline] fill e ~txid ~tid ~start_ts ~total_ns ~retries ~bytes_logged
    ~writes ~phases =
  e.txid <- txid;
  e.tid <- tid;
  e.start_ts <- start_ts;
  e.total_ns <- total_ns;
  e.retries <- retries;
  e.bytes_logged <- bytes_logged;
  e.writes <- writes;
  Array.blit phases 0 e.phases 0 nphases

let[@inline] swap h i j =
  let tmp = h.(i) in
  h.(i) <- h.(j);
  h.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if t.heap.(i).total_ns < t.heap.(p).total_ns then begin
      swap t.heap i p;
      sift_up t p
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let s = ref i in
  if l < t.len && t.heap.(l).total_ns < t.heap.(!s).total_ns then s := l;
  if r < t.len && t.heap.(r).total_ns < t.heap.(!s).total_ns then s := r;
  if !s <> i then begin
    swap t.heap i !s;
    sift_down t !s
  end

let record t ~txid ~tid ~start_ts ~total_ns ~retries ~bytes_logged ~writes
    ~phases =
  t.recorded <- t.recorded + 1;
  Metrics.record t.h_total total_ns;
  for i = 0 to nphases - 1 do
    Metrics.record t.h_phase.(i) phases.(i)
  done;
  if t.len < t.k then begin
    fill t.heap.(t.len) ~txid ~tid ~start_ts ~total_ns ~retries ~bytes_logged
      ~writes ~phases;
    t.len <- t.len + 1;
    sift_up t (t.len - 1)
  end
  else if total_ns > t.heap.(0).total_ns then begin
    fill t.heap.(0) ~txid ~tid ~start_ts ~total_ns ~retries ~bytes_logged
      ~writes ~phases;
    sift_down t 0
  end

let top t =
  Array.to_list (Array.sub t.heap 0 t.len)
  |> List.sort (fun a b -> compare (b.total_ns : int) a.total_ns)

(* ------------------------------------------------------------------ *)
(* Tail-attribution table                                              *)

let phase_sum e = Array.fold_left ( + ) 0 e.phases

let table t =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "tail attribution: top-%d slowest of %d transactions (sim ns)\n" t.len
       t.recorded);
  Buffer.add_string buf
    (Printf.sprintf "%8s %4s %10s %6s %6s %6s" "txid" "tid" "total" "retry"
       "bytes" "wr");
  for i = 0 to nphases - 1 do
    Buffer.add_string buf (Printf.sprintf " %10s" (phase_name i))
  done;
  Buffer.add_string buf (Printf.sprintf " %6s\n" "sum%");
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%8d %4d %10d %6d %6d %6d" e.txid e.tid e.total_ns
           e.retries e.bytes_logged e.writes);
      Array.iter
        (fun v -> Buffer.add_string buf (Printf.sprintf " %10d" v))
        e.phases;
      let pct =
        if e.total_ns <= 0 then 100.0
        else 100.0 *. float_of_int (phase_sum e) /. float_of_int e.total_ns
      in
      Buffer.add_string buf (Printf.sprintf " %6.1f\n" pct))
    (top t);
  Buffer.contents buf
