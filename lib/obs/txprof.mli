(** Per-transaction profile ledger: phase timings for every commit,
    feeding per-phase histograms and a bounded top-K tail capture.

    A transaction's lifetime — first attempt begin to commit return,
    aborted attempts included — is partitioned into {!nphases} phases
    (execution, validation, log encode+append, fence, write-back,
    truncation wait, backoff, drain wait, other).  The instrumented
    commit path
    accounts every nanosecond to exactly one phase, so an entry's
    phase sum equals its total duration.

    Recording is allocation-free: the K capture entries and their
    phase arrays are preallocated, admission copies ints into the
    evicted min-heap root, and re-heapifying swaps references.  The
    per-phase histograms are ordinary {!Metrics} histograms named
    [mtm.txn.phase.<name>_ns] (total: [mtm.txn.total_ns]), so they
    appear in snapshots and dumps like any other metric. *)

val nphases : int

(** Phase indices into an entry's [phases] array. *)

val ph_exec : int
(** Attempt begin through commit entry: user code, reads, writes. *)

val ph_validate : int
val ph_log : int  (** Record encode + log append (excluding stalls). *)

val ph_fence : int
val ph_write_back : int
val ph_trunc_wait : int  (** Blocked on a full log, draining inline. *)

val ph_backoff : int  (** Contention backoff between attempts. *)

val ph_drain_wait : int
(** Blocked on the pipelined commit's in-flight window: the drain
    queue is full and the producer polls until the drainer retires a
    pending write-back. *)

val ph_other : int
(** Residual commit bookkeeping not in a named phase. *)

val phase_name : int -> string

type entry = {
  mutable txid : int;
  mutable tid : int;
  mutable start_ts : int;  (** First attempt begin, simulated ns. *)
  mutable total_ns : int;
  mutable retries : int;
  mutable bytes_logged : int;
  mutable writes : int;
  phases : int array;  (** [nphases] simulated-ns phase totals. *)
}

type t

val default_k : int
(** 16. *)

val create : ?k:int -> Metrics.t -> t
(** Preallocate a K-entry capture and register the phase histograms in
    the given registry. *)

val record :
  t ->
  txid:int ->
  tid:int ->
  start_ts:int ->
  total_ns:int ->
  retries:int ->
  bytes_logged:int ->
  writes:int ->
  phases:int array ->
  unit
(** Record one finished transaction; [phases] is copied.
    Allocation-free, O(log K) worst case. *)

val count : t -> int
(** Transactions recorded. *)

val k : t -> int

val captured : t -> int
(** Entries currently held (at most [k]). *)

val top : t -> entry list
(** The captured entries, slowest first.  The entries are the live
    heap slots — read them after the run, before further records. *)

val phase_sum : entry -> int

val phase_histogram : t -> int -> Metrics.histogram
val total_histogram : t -> Metrics.histogram

val table : t -> string
(** The tail-attribution table: one row per captured transaction,
    slowest first, with per-phase nanoseconds and the percentage of
    the total the phase sum accounts for. *)
