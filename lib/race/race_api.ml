(* Race-detection hook vocabulary.

   This is a dependency-free leaf library: the simulator, the STM, the
   log, and the serving layer all carry an [hooks option] and fire
   these callbacks at their annotated shared-state accesses and
   synchronization edges, while the detector itself (Check.Racecheck)
   lives at the top of the dependency graph.  Keeping the vocabulary
   here breaks the cycle — sim depends only on fmt, mtm cannot see
   check — exactly like the pmcheck/history hook pattern, but shared
   across every layer.

   The disabled path in every instrumented module is a single
   [match t.race with None -> () | Some h -> ...] branch, which is
   what keeps the detector-off simulated figures bit-identical.

   Vocabulary (DESIGN.md section 18):

   - [read]/[write] — *plain* accesses to an annotated volatile
     location, named by a stable string label.  These are checked: two
     plain accesses (at least one a write) unordered by happens-before
     are a race.

   - [acquire]/[release]/[rmw] — *atomic* accesses.  Never reported as
     racing; instead they move vector clocks through the location's
     sync clock: release publishes the accessor's clock, acquire joins
     it in, rmw does both (a C++-style acq_rel read-modify-write).
     Queues annotate push as release and pop as acquire (channel
     semantics); single-word CAS-able fields (lock-table entries,
     timestamp counters, RAWL cursors, flags) annotate their updates
     as rmw and their interrogations as acquire.

   - [fork]/[transfer] — direct fiber-to-fiber edges: [fork] at spawn
     (parent's clock seeds the child), [transfer] when one fiber
     requeues another (suspend/resume delivery, mutex ownership
     handoff, service unpark).  A plain [yield] deliberately fires
     nothing: being scheduled after someone is not synchronization,
     so races are flagged even on schedules where the bad
     interleaving did not happen to fire. *)

type hooks = {
  read : string -> unit;
  write : string -> unit;
  acquire : string -> unit;
  release : string -> unit;
  rmw : string -> unit;
  fork : parent:int -> child:int -> unit;
  transfer : src:int -> dst:int -> unit;
}
