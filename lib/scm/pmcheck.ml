(* Pmcheck: a pmemcheck-style durability sanitizer.

   Shadow state is tracked per 8-byte persistent word, keyed by VIRTUAL
   address (the address user code and the STM reason about).  The SCM
   hooks below the translation layer (cache write-backs, WC drains) see
   physical frame addresses, so the checker keeps a frame -> vpage
   reverse map fed by {!note_mapping} from the translation layer's
   fault-in path.  A frame whose mapping is unknown (mapping table,
   reserved frames, stale after wear-levelling migration) translates to
   -1 and its traffic is ignored.

   Per-word state machine (packed into one int in an {!Imap.Int}):

     bits 0-1  where the word's newest value lives:
               0 = durable on the device (or never observed),
               1 = dirty in the write-back cache,
               2 = pending in a write-combining buffer
     bit 2     UNDEF    allocated by a transaction, never stored
     bit 3     LOGPEND  member of a commit's write set whose covering
                        log record has not yet been proven durable
     bit 4     COVERED  covering log record is durable and untruncated
     bit 5     NEWVAL   stored while LOGPEND (the in-flight value, not
                        a stale committed one, is what sits in the
                        cache) -- the write-ahead rule only cares about
                        the new value reaching the device early

   The checker is pull-free: every hook is invoked from the layer that
   owns the event, and every hook site is guarded by a
   [match .. with None -> ()] so a disabled sanitizer costs one load
   and one branch -- no allocation, no simulated time, no change to
   crash-point indices. *)

type kind =
  | Write_ahead
  | Unlogged_store
  | Uninit_read
  | Redundant_fence
  | Trunc_unfenced
  | Write_back_lost

let kind_name = function
  | Write_ahead -> "write_ahead"
  | Unlogged_store -> "unlogged_store"
  | Uninit_read -> "uninit_read"
  | Redundant_fence -> "redundant_fence"
  | Trunc_unfenced -> "trunc_unfenced"
  | Write_back_lost -> "write_back_lost"

type violation = {
  kind : kind;
  addr : int;  (* virtual word address; 0 when not address-specific *)
  ts : int;  (* simulated time of detection *)
  op : int;  (* persistence-op index (Crashpoint counter) *)
  detail : string;
}

let render v =
  Printf.sprintf "[%s] op=%d t=%dns addr=%#x: %s" (kind_name v.kind) v.op v.ts
    v.addr v.detail

(* word-state bits *)
let where_mask = 0b11
let where_dirty = 1
let where_wc = 2
let bit_undef = 0b100
let bit_logpend = 0b1000
let bit_covered = 0b1_0000
let bit_newval = 0b10_0000

(* WBPEND: the word's covering redo record is durable but the new
   value has not yet been proven to reach the device — the pipelined
   commit's "durable-in-log, write-back pending" window.  Armed at
   {!commit_logged}, cleared when a volatile copy of the word reaches
   the device.  A record truncated while an addr still carries WBPEND
   with nothing volatile means the write-back never ran: the committed
   value existed only in the now-erased log. *)
let bit_wbpend = 0b100_0000

type log_state = {
  lbase : int;
  lbytes : int;
  mutable wc_pending : int;
      (* words of this log's range posted to a WC buffer and not yet
         drained: zero means every record byte written so far is
         durable *)
  mutable inflight : int array;  (* write set of the commit being logged *)
  mutable inflight_n : int;  (* -1 = no commit in flight *)
  sessions : int array Queue.t;
      (* write sets whose records are durable but not yet truncated,
         oldest first -- the order {!Rawl.advance_head} retires them *)
  mutable undo_open : int list;
      (* addrs covered by undo records of the open eager transaction *)
}

type t = {
  lint_fences : bool;
  max_keep : int;
  obs : Obs.t;
  cp : Crashpoint.t;
  state : Imap.Int.t;
  frame_vpage : int array;  (* frame -> vpage, -1 = unknown *)
  mutable logs : log_state list;
  mutable work_since_fence : bool;
  mutable total : int;
  mutable kept : violation list;  (* newest first, bounded by max_keep *)
  mutable nkept : int;
  mutable noop_fences : int;
  ctr_write_ahead : Obs.Metrics.counter;
  ctr_unlogged : Obs.Metrics.counter;
  ctr_uninit : Obs.Metrics.counter;
  ctr_redundant : Obs.Metrics.counter;
  ctr_trunc : Obs.Metrics.counter;
  ctr_wb_lost : Obs.Metrics.counter;
  ctr_fence_noop : Obs.Metrics.counter;
}

let create ?(lint_fences = false) ?(max_keep = 256) ~obs ~cp ~nframes () =
  let c name = Obs.Metrics.counter obs.Obs.metrics ("pmcheck." ^ name) in
  {
    lint_fences;
    max_keep;
    obs;
    cp;
    state = Imap.Int.create ~initial:4096 ();
    frame_vpage = Array.make nframes (-1);
    logs = [];
    work_since_fence = false;
    total = 0;
    kept = [];
    nkept = 0;
    noop_fences = 0;
    ctr_write_ahead = c "violation.write_ahead";
    ctr_unlogged = c "violation.unlogged_store";
    ctr_uninit = c "violation.uninit_read";
    ctr_redundant = c "violation.redundant_fence";
    ctr_trunc = c "violation.trunc_unfenced";
    ctr_wb_lost = c "violation.write_back_lost";
    ctr_fence_noop = c "fence.ordered_nothing";
  }

let counter_of t = function
  | Write_ahead -> t.ctr_write_ahead
  | Unlogged_store -> t.ctr_unlogged
  | Uninit_read -> t.ctr_uninit
  | Redundant_fence -> t.ctr_redundant
  | Trunc_unfenced -> t.ctr_trunc
  | Write_back_lost -> t.ctr_wb_lost

let violate t kind ~addr detail =
  Obs.Metrics.incr (counter_of t kind);
  t.total <- t.total + 1;
  if t.nkept < t.max_keep then begin
    t.kept <-
      {
        kind;
        addr;
        ts = Obs.now t.obs;
        op = Crashpoint.count t.cp;
        detail;
      }
      :: t.kept;
    t.nkept <- t.nkept + 1
  end;
  Obs.instant t.obs Obs.Trace.Pmcheck_violation ~arg:addr

let violations t = List.rev t.kept
let total_violations t = t.total
let noop_fences t = t.noop_fences

(* ------------------------------------------------------------------ *)
(* Shadow-state plumbing                                               *)

let[@inline] get t a =
  let s = Imap.Int.find t.state a in
  if s < 0 then 0 else s

let[@inline] set t a s = Imap.Int.set t.state a s
let page_size = 4096

let note_mapping t ~vpage ~frame =
  if frame >= 0 && frame < Array.length t.frame_vpage then
    t.frame_vpage.(frame) <- vpage

let[@inline] vaddr_of_phys t pa =
  let frame = pa / page_size in
  if frame < 0 || frame >= Array.length t.frame_vpage then -1
  else
    let vp = Array.unsafe_get t.frame_vpage frame in
    if vp < 0 then -1 else (vp * page_size) lor (pa land (page_size - 1))

(* ------------------------------------------------------------------ *)
(* Log registry                                                        *)

let register_log t ~base ~bytes =
  if not (List.exists (fun l -> l.lbase = base) t.logs) then
    t.logs <-
      {
        lbase = base;
        lbytes = bytes;
        wc_pending = 0;
        inflight = [||];
        inflight_n = -1;
        sessions = Queue.create ();
        undo_open = [];
      }
      :: t.logs

let log_containing t a =
  let rec go = function
    | [] -> None
    | l :: rest ->
        if a >= l.lbase && a < l.lbase + l.lbytes then Some l else go rest
  in
  go t.logs

let log_at t base =
  let rec go = function
    | [] -> None
    | l :: rest -> if l.lbase = base then Some l else go rest
  in
  go t.logs

(* ------------------------------------------------------------------ *)
(* Store / load hooks (virtual addresses, from the Pmem layer)         *)

let note_wtstore t a =
  t.work_since_fence <- true;
  (match log_containing t a with
  | Some l -> l.wc_pending <- l.wc_pending + 1
  | None -> ());
  let s = get t a in
  set t a ((s land lnot (bit_undef lor where_mask)) lor where_wc)

let check_store t a =
  let s = get t a in
  if s land (bit_logpend lor bit_covered) = 0 then
    violate t Unlogged_store ~addr:a
      (Printf.sprintf
         "cached store to %#x is not covered by any durable log record" a);
  let s' = (s land lnot (bit_undef lor where_mask)) lor where_dirty in
  let s' = if s land bit_logpend <> 0 then s' lor bit_newval else s' in
  set t a s'

let check_load t a =
  let s = get t a in
  if s land bit_undef <> 0 then begin
    violate t Uninit_read ~addr:a
      (Printf.sprintf "load of never-initialized persistent word %#x" a);
    set t a (s land lnot bit_undef)
  end

let note_txn_store t a =
  let s = get t a in
  if s land bit_undef <> 0 then set t a (s land lnot bit_undef)

let mark_undef t a ~len =
  if len > 0 then begin
    let first = a land lnot 7 in
    let last = (a + len - 1) land lnot 7 in
    let w = ref first in
    while !w <= last do
      set t !w (get t !w lor bit_undef);
      w := !w + 8
    done
  end

(* ------------------------------------------------------------------ *)
(* Device-reach hooks (physical addresses, from Cache / Wc_buffer)     *)

let[@inline] reach_word t a ~drained =
  if drained then (
    match log_containing t a with
    | Some l -> if l.wc_pending > 0 then l.wc_pending <- l.wc_pending - 1
    | None -> ());
  let s = get t a in
  if s <> 0 then
    if s land bit_logpend <> 0 && s land bit_newval <> 0 then begin
      violate t Write_ahead ~addr:a
        (Printf.sprintf
           "new value of %#x reached the device before its covering log \
            record was fenced"
           a);
      set t a
        (s land lnot (where_mask lor bit_logpend lor bit_newval lor bit_wbpend))
    end
    else if s land where_mask <> 0 then
      (* a volatile newer value reached the device: the pending
         write-back (if any) is hereby proven done *)
      set t a (s land lnot (where_mask lor bit_wbpend))

let device_reach_word t pa =
  t.work_since_fence <- true;
  let a = vaddr_of_phys t pa in
  if a >= 0 then reach_word t a ~drained:true

let device_reach_line t pa line_size =
  t.work_since_fence <- true;
  let base = vaddr_of_phys t (pa land lnot (line_size - 1)) in
  if base >= 0 then
    for i = 0 to (line_size / 8) - 1 do
      reach_word t (base + (8 * i)) ~drained:false
    done

(* ------------------------------------------------------------------ *)
(* Fence                                                               *)

let note_fence t ~pending_words =
  if pending_words = 0 && not t.work_since_fence then begin
    t.noop_fences <- t.noop_fences + 1;
    Obs.Metrics.incr t.ctr_fence_noop;
    if t.lint_fences then
      violate t Redundant_fence ~addr:0
        "fence ordered nothing: no posts, write-backs or flushes since the \
         previous fence"
  end;
  t.work_since_fence <- false

(* ------------------------------------------------------------------ *)
(* Transaction protocol (from libmtm's commit paths)                   *)

let commit_begin t ~log addrs n =
  match log_at t log with
  | None -> ()
  | Some l ->
      l.inflight <- Array.sub addrs 0 n;
      l.inflight_n <- n;
      for i = 0 to n - 1 do
        let a = addrs.(i) in
        set t a (get t a lor bit_logpend)
      done

(* Verified, not trusted: the caller claims it fenced the record, and
   the claim is checked against the log range's WC-pending count.  A
   dropped fence leaves LOGPEND armed, so the first write-back of a new
   value raises {!Write_ahead}. *)
let commit_logged t ~log =
  match log_at t log with
  | None -> ()
  | Some l ->
      if l.inflight_n >= 0 && l.wc_pending = 0 then begin
        let sess = Array.sub l.inflight 0 l.inflight_n in
        Queue.push sess l.sessions;
        Array.iter
          (fun a ->
            let s = get t a in
            (* WBPEND arms here: from this point the committed value is
               durable in the log but its data write-back is still
               owed.  Only a device reach of a volatile copy (the
               write-back landing) discharges it. *)
            set t a
              ((s land lnot (bit_logpend lor bit_newval))
              lor bit_covered lor bit_wbpend))
          sess
      end

let commit_end t ~log =
  match log_at t log with
  | None -> ()
  | Some l ->
      if l.inflight_n >= 0 then begin
        for i = 0 to l.inflight_n - 1 do
          let a = l.inflight.(i) in
          set t a
            (get t a land lnot (bit_logpend lor bit_covered lor bit_newval))
        done;
        l.inflight <- [||];
        l.inflight_n <- -1
      end;
      List.iter
        (fun a -> set t a (get t a land lnot bit_covered))
        l.undo_open;
      l.undo_open <- []

(* Eager-undo coverage: one addr per undo record, blessed only if the
   record is actually durable (no WC-pending bytes in the log range). *)
let note_covered t ~log a =
  match log_at t log with
  | None -> ()
  | Some l ->
      if l.wc_pending = 0 then begin
        set t a (get t a lor bit_covered);
        l.undo_open <- a :: l.undo_open
      end

(* ------------------------------------------------------------------ *)
(* Truncation                                                          *)

(* A retired addr whose newest value is still volatile is only a
   violation if no other un-truncated record still covers it: in
   async-truncation mode a hot word is re-logged by a younger session
   before the older one retires, and truncating the older record does
   not endanger the younger value.  The covering record can live in ANY
   log, not just the retiring one — the volatile value belongs to the
   most recent committed writer, and that writer's own record (in its
   own per-thread log) stays queued until its truncation, which flushes
   the line before retiring.  Crash recovery replays every surviving
   record in timestamp order, so the newest covered value wins. *)
let covered_in l addr =
  Queue.fold
    (fun acc sess -> acc || Array.exists (fun a -> a = addr) sess)
    false l.sessions
  || (l.inflight_n > 0
     && Array.exists (fun a -> a = addr)
          (Array.sub l.inflight 0 l.inflight_n))

let covered_later t addr = List.exists (fun l -> covered_in l addr) t.logs

let retire t sess =
  Array.iter
    (fun a ->
      let s = get t a in
      if s land where_mask <> 0 then begin
        if not (covered_later t a) then
          violate t Trunc_unfenced ~addr:a
            (Printf.sprintf
               "log record truncated while %#x is still volatile (%s)" a
               (if s land where_mask = where_wc then "WC-pending"
                else "dirty in cache"))
      end
      else if s land bit_wbpend <> 0 && not (covered_later t a) then begin
        (* Nothing volatile AND the write-back never landed: the
           committed value of this word existed only in the record
           being erased.  A crash after this truncation loses it —
           the relaxed pipelined ordering is only safe while the
           record outlives the write-back (or a younger record covers
           the word).  When a younger record covers the addr the bit is
           left armed: it answers for the younger session's retire. *)
        violate t Write_back_lost ~addr:a
          (Printf.sprintf
             "log record truncated while the committed value of %#x was \
              never written back to the device"
             a);
        set t a (s land lnot bit_wbpend)
      end)
    sess

let note_truncate ?(count = 1) t ~log ~all =
  match log_at t log with
  | None -> ()
  | Some l ->
      if all then begin
        let rec drain () =
          match Queue.take_opt l.sessions with
          | None -> ()
          | Some sess ->
              retire t sess;
              drain ()
        in
        drain ();
        List.iter
          (fun a ->
            let s = get t a in
            if s land where_mask <> 0 then
              violate t Trunc_unfenced ~addr:a
                (Printf.sprintf
                   "undo log truncated while %#x is still volatile" a))
          l.undo_open
      end
      else
        (* batched truncation retires several records with one head
           advance; keep the session queue in lockstep *)
        for _ = 1 to count do
          match Queue.take_opt l.sessions with
          | None -> ()
          | Some sess -> retire t sess
        done
