type cache_policy = Drop_dirty | Evict_random of float | Writeback_all
type wc_policy = Wc_drop | Wc_random_subset | Wc_apply_all

type policy = { cache : cache_policy; wc : wc_policy }

let default = { cache = Evict_random 0.3; wc = Wc_random_subset }

let inject ?(policy = default) (m : Env.machine) =
  (* The injection below reaches the device through the same write-back
     and drain paths that tick the crash-point counter; disarm it so
     applying the crash policy cannot itself "crash". *)
  Crashpoint.disarm m.crash_point;
  (* Crash residue (which dirty lines happen to land, which WC words
     survive) is the environment's doing, not the program's: detach the
     sanitizer so the injection is not reported as rule violations. *)
  Env.detach_pmcheck m;
  let rng = m.crash_rng in
  (* Streaming stores race with cache write-backs; interleave arbitrarily
     by doing WC first or last at random.  Since both act on disjoint
     word sets in well-formed programs this only matters for adversarial
     tests, where either order is legal. *)
  let apply_wc () =
    List.iter
      (fun wc ->
        match policy.wc with
        | Wc_drop -> Wc_buffer.discard wc
        | Wc_apply_all -> Wc_buffer.drain wc
        | Wc_random_subset -> ignore (Wc_buffer.crash_apply_subset wc rng))
      m.wc_buffers
  in
  let apply_cache () =
    (match policy.cache with
    | Drop_dirty -> ()
    | Writeback_all ->
        List.iter (fun a -> Cache.writeback_line m.cache a)
          (Cache.dirty_lines m.cache)
    | Evict_random p ->
        List.iter
          (fun a ->
            if Random.State.float rng 1.0 < p then
              Cache.writeback_line m.cache a)
          (Cache.dirty_lines m.cache));
    Cache.drop_all m.cache
  in
  if Random.State.bool rng then (apply_wc (); apply_cache ())
  else (apply_cache (); apply_wc ());
  m.wc_buffers <- []
