(** Write-combining buffers for streaming ([movntq]-style) stores.

    Streaming stores are posted here and reach the device only when the
    buffer drains — at a fence, or partially and out of order at a
    crash.  The paper's atomic-log-append trick (the tornbit RAWL) exists
    precisely because these writes "do not guarantee that writes are
    executed in program order: if the system crashes, later writes may
    have completed while earlier ones did not" (section 4.4).

    Loads from the owning thread see pending stores (store forwarding),
    so program-order semantics hold within a thread; durability and
    cross-crash visibility only follow a drain.  Each simulated thread
    has its own buffer, as write-combining buffers are per-core. *)

type t

val create : ?obs:Obs.t -> ?cp:Crashpoint.t -> Scm_device.t -> t
(** Non-empty drains feed [obs] (counter [scm.wc.drains] plus a
    [Wc_drain] trace event carrying the pending word count).  Posts and
    non-empty drains tick [cp] (default: a private disarmed counter), so
    an armed crash point can fire between any two streaming stores. *)

val post : t -> int -> int64 -> unit
(** Queue a 64-bit streaming store to an aligned address. *)

val is_empty : t -> bool
(** No stores pending — the common case on cached-access paths, which
    use it to skip store-forwarding lookups entirely. *)

val lookup : t -> int -> int64 option
(** Most recent pending value for an address, if any. *)

val pending_in_line : t -> int -> bool
(** Whether any pending store targets the 64-byte line containing the
    address.  Cached accesses to such a line first drain the buffer
    (write-combining buffers may flush spontaneously on real hardware),
    keeping same-thread mixed cached/streaming access coherent. *)

val pending_words : t -> int
val pending_bytes : t -> int

val drain : t -> unit
(** Apply every pending store to the device in program order and empty
    the buffer.  (Order is irrelevant for the final contents; it matters
    only for crashes, which use {!crash_apply_subset} instead.) *)

val crash_apply_subset : t -> Random.State.t -> int
(** Crash semantics: each pending 64-bit store independently either
    completed or did not (probability 1/2), in arbitrary order; the
    buffer is then lost.  Returns how many stores reached the device.
    Word atomicity is preserved — exactly the failure model of paper
    section 2. *)

val discard : t -> unit
(** Drop all pending stores without applying them. *)

val set_pmcheck : t -> Pmcheck.t option -> unit
(** Attach (or detach, with [None]) a durability sanitizer: each word a
    drain writes to the device reports a device-reach event to it.
    Installed via {!Env.install_pmcheck}. *)

val set_owner : t -> int -> unit
(** Stamp the transaction id subsequent posts belong to (0 = none).
    Drains emit one causal flow step per distinct owning transaction
    when tracing, attributing the deferred device writes back to the
    transactions that issued them.  Plain int stores: no simulated
    time, rng, or allocation. *)
