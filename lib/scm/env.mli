(** Execution environment: the handle through which one simulated thread
    touches storage-class memory.

    An environment bundles the shared machine state (device, cache,
    latency model) with per-thread state (write-combining buffer, a
    simulated clock).  In standalone use the clock is a plain counter;
    under the discrete-event simulator each thread's [delay] yields to
    the scheduler, so contention interleavings happen at memory
    operations — where they happen on real hardware. *)

type machine = {
  dev : Scm_device.t;
  cache : Cache.t;
  latency : Latency_model.t;
  crash_rng : Random.State.t;
      (** Randomness for crash injection and cache eviction decisions,
          seeded for reproducibility. *)
  obs : Obs.t;
      (** This machine's observability handle: a metrics registry plus
          an optional event trace.  Instrumentation throughout the
          stack reaches it through the environment, so a disabled
          trace costs one branch per hook. *)
  crash_point : Crashpoint.t;
      (** Persistence-operation counter shared by the cache, every WC
          buffer, and the fence path.  Disarmed it only counts; armed
          (the crash-schedule explorer) it turns one exact operation
          index into a {!Crashpoint.Simulated_crash}. *)
  mutable pmcheck : Pmcheck.t option;
      (** Optional durability sanitizer (see {!Pmcheck}).  [None] — the
          default — keeps every hook site a single branch, so simulated
          time, allocation budgets, and crash-point indices are exactly
          those of a build without the sanitizer. *)
  mutable wc_buffers : Wc_buffer.t list;
      (** Every live write-combining buffer; crash injection must see
          them all. *)
  mutable media_busy_until : int;
      (** The single memory controller's occupancy horizon: PCM media
          writes from different threads serialize here, so a background
          flusher genuinely steals bandwidth from the foreground thread
          (the effect behind paper figure 6's low-idle slowdown). *)
  flush_ctr : Obs.Metrics.counter;
      (** [scm.flushes], resolved once at machine creation so the flush
          path does not look counters up by name per call. *)
  fence_ctr : Obs.Metrics.counter;  (** [scm.fences], likewise. *)
  pcm_occ : int;
      (** [latency.pcm_write_ns / media_banks], precomputed once: the
          per-dirty-line flush path charges this serialized share on
          every write-back. *)
}

type t = {
  machine : machine;
  wc : Wc_buffer.t;
  delay : int -> unit;   (** Charge simulated nanoseconds. *)
  now : unit -> int;     (** Current simulated time. *)
  mutable cur_txid : int;
      (** The transaction currently running on this thread (0 = none),
          stamped by the STM layer so the access layer can attribute
          stores — and the deferred write-backs and drains they cause —
          to their owning transaction.  Per-thread, hence race-free
          under any simulated interleaving; maintaining it is plain int
          stores, never simulated time. *)
}

val make_machine :
  ?latency:Latency_model.t ->
  ?cache_capacity_lines:int ->
  ?seed:int ->
  ?obs:Obs.t ->
  ?crash_point:Crashpoint.t ->
  nframes:int ->
  unit ->
  machine
(** Build a machine: device of [nframes] 4-KiB frames plus cache.
    [obs] defaults to a fresh handle with tracing disabled;
    [crash_point] to a fresh disarmed counter. *)

val machine_of_device :
  ?latency:Latency_model.t ->
  ?cache_capacity_lines:int ->
  ?seed:int ->
  ?obs:Obs.t ->
  ?crash_point:Crashpoint.t ->
  Scm_device.t ->
  machine
(** Wrap an existing device (e.g. one reloaded from a crash image) in
    fresh volatile machine state. *)

val standalone : machine -> t
(** An environment with its own private clock starting at 0. *)

val view : machine -> delay:(int -> unit) -> now:(unit -> int) -> t
(** A per-thread view with caller-supplied time accounting (the DES
    integration point). *)

val install_pmcheck : ?lint_fences:bool -> machine -> Pmcheck.t
(** Create a {!Pmcheck} sanitizer and attach it to the machine, its
    cache, and every current and future write-combining buffer.
    Install before running the workload; costs no simulated time. *)

val detach_pmcheck : machine -> unit
(** Detach the sanitizer everywhere without discarding its accumulated
    violations.  {!Crash.inject} calls this before applying crash
    residue policies, which must not be attributed to the program. *)

val elapsed_ns : t -> int
(** Shorthand for [t.now ()]. *)
