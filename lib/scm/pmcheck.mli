(** Pmcheck: a pmemcheck-style durability sanitizer.

    Tracks a shadow state machine per 8-byte persistent word
    (clean/durable -> dirty-in-cache -> WC-pending, plus
    logged/covered/uninitialized bits) and reports typed rule
    violations with simulated-time provenance.  Hook sites live in
    {!Cache}, {!Wc_buffer}, {!Primitives}, the region translation
    layer, RAWL, and libmtm's commit paths; every site is guarded by an
    option match so a disabled sanitizer costs one branch -- no
    allocation, no simulated time, no crash-point drift.

    Install via {!Env.install_pmcheck}. *)

type kind =
  | Write_ahead
      (** a transactionally written value reached the device before its
          covering log record was proven durable (fence dropped) *)
  | Unlogged_store
      (** a cached (write-back) store to persistent memory with no
          durable log record covering the word *)
  | Uninit_read  (** load of an allocated but never-written word *)
  | Redundant_fence
      (** a fence that ordered nothing -- perf lint, only reported as a
          violation when [lint_fences] is set *)
  | Trunc_unfenced
      (** log truncation retired a record while the data it covers was
          still volatile (dirty in cache or WC-pending) *)
  | Write_back_lost
      (** log truncation retired a record while a word it covers was
          still in the "durable-in-log, write-back pending" state: the
          committed value never reached the device (and nothing
          volatile holds it, and no younger record covers it), so the
          truncation erased its only copy.  This is the hazard the
          pipelined commit's deferred write-back opens; the drainer
          must retire a record only after its write-back landed. *)

type violation = {
  kind : kind;
  addr : int;  (** virtual word address; 0 when not address-specific *)
  ts : int;  (** simulated time of detection *)
  op : int;  (** persistence-op index ({!Crashpoint.count}) *)
  detail : string;
}

type t

val create :
  ?lint_fences:bool ->
  ?max_keep:int ->
  obs:Obs.t ->
  cp:Crashpoint.t ->
  nframes:int ->
  unit ->
  t

val kind_name : kind -> string
val render : violation -> string

val violations : t -> violation list
(** Retained violations, oldest first (bounded by [max_keep]). *)

val total_violations : t -> int
(** All violations observed, including ones beyond [max_keep]. *)

val noop_fences : t -> int
(** Fences that ordered nothing (counted even without [lint_fences]). *)

(** {1 Hooks} -- called by the layers that own each event. *)

val note_mapping : t -> vpage:int -> frame:int -> unit
(** The translation layer installed [vpage -> frame]. *)

val register_log : t -> base:int -> bytes:int -> unit
(** A RAWL instance spans [\[base, base+bytes)]; idempotent. *)

val note_wtstore : t -> int -> unit
(** Write-through store posted for the virtual word. *)

val check_store : t -> int -> unit
(** Cached store to the virtual word: raises [Unlogged_store] shadow
    violation unless a log record covers it. *)

val check_load : t -> int -> unit
(** Cached load: raises [Uninit_read] if the word was allocated but
    never stored.  [load_nt] paths must NOT call this. *)

val note_txn_store : t -> int -> unit
(** A transactional store targets the word (clears UNDEF before the
    STM's own bookkeeping reads the old value). *)

val mark_undef : t -> int -> len:int -> unit
(** Freshly allocated range: reads before a store are violations. *)

val note_fence : t -> pending_words:int -> unit
(** A fence is executing with [pending_words] WC entries to drain. *)

val device_reach_word : t -> int -> unit
(** One word (physical address) reached the device via a WC drain. *)

val device_reach_line : t -> int -> int -> unit
(** [device_reach_line t phys_base line_bytes]: a cache line reached
    the device via write-back/eviction. *)

val commit_begin : t -> log:int -> int array -> int -> unit
(** [commit_begin t ~log addrs n]: a commit over [addrs.(0..n-1)] is
    about to append its record to the log at [log]. *)

val commit_logged : t -> log:int -> unit
(** The caller claims the commit record is fenced; verified against
    the log range's WC-pending count before blessing the write set. *)

val commit_end : t -> log:int -> unit
(** Commit or abort finished: write-set coverage is closed. *)

val note_covered : t -> log:int -> int -> unit
(** Eager-undo: an undo record covering the addr is durable. *)

val note_truncate : ?count:int -> t -> log:int -> all:bool -> unit
(** The log is truncating: [all] retires every outstanding session
    (plus open undo coverage), otherwise the [count] oldest (default
    1) — batched truncation advances the head over several records at
    once. *)
