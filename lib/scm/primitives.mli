(** The four hardware primitives of paper table 3 (section 4.1), plus
    loads and multi-byte helpers.

    - [store]   — regular cached write ([mov]); volatile until flushed.
    - [wtstore] — streaming write-through store ([movntq] into the
                  write-combining buffers); durable after the next fence.
    - [flush]   — write a cache line back to SCM ([clflush]).
    - [fence]   — drain the write-combining buffers and stall until all
                  prior writes have reached SCM ([mfence]).

    Every operation charges its cost from the environment's latency
    model to the environment's clock, mirroring the delays the paper's
    emulator inserts (section 6.1).  Addresses are physical. *)

val load : Env.t -> int -> int64
(** Read an aligned word.  Sees this thread's pending streaming stores
    (store forwarding) and the shared cache. *)

val load_nt : Env.t -> int -> int64
(** Non-temporal read: coherent with pending streaming stores and
    resident cache lines, but never allocates a line (and so never
    evicts).  Charges the media read latency instead of a cache hit.
    Meant for recovery-time sweeps over whole regions. *)

val store : Env.t -> int -> int64 -> unit
(** Cached write; durable only after [flush] + [fence] (or an unlucky
    eviction). *)

val wtstore : Env.t -> int -> int64 -> unit
(** Streaming write-through store.  Bypasses and invalidates the cache
    (after writing back a dirty line, so no earlier cached update is
    lost); durable after the next [fence]. *)

val flush : Env.t -> int -> unit
(** Write back and invalidate the cache line containing the address;
    charges PCM write latency when the line was dirty. *)

val fence : Env.t -> unit
(** Drain this thread's write-combining buffer; charges the
    bandwidth-limited drain cost. *)

val fence_group : Env.t list -> unit
(** One fence covering several threads' write-combining buffers (group
    commit): every listed buffer drains — the same durability
    postcondition as fencing each environment — but the head of the
    list pays a single fence base cost and one combined streaming
    burst.  The callers of the other environments must be parked while
    this runs. *)

val load_bytes : Env.t -> int -> Bytes.t -> int -> int -> unit
(** Cached multi-byte read (word loads under the hood, with store
    forwarding honoured). *)

val store_bytes : Env.t -> int -> Bytes.t -> int -> int -> unit
(** Cached multi-byte write. *)

val wtstore_bytes : Env.t -> int -> Bytes.t -> int -> int -> unit
(** Streaming multi-byte write of an 8-byte-aligned, 8-byte-multiple
    range. *)

val persist : Env.t -> int -> int -> unit
(** [persist env addr len] flushes every cache line covering
    [addr, addr+len) and fences: the "make this durable now" idiom. *)
