type t = {
  arena : Bytes.t;
  frame_size : int;
  fshift : int;  (* log2 frame_size, or -1 if not a power of two *)
  nframes : int;
  writes : int array;  (* per-frame wear counters *)
  mutable total_writes : int;
  (* Undo journal (crash-point exploration): when enabled, every
     mutation records the span's old contents (and which frame's wear
     counter it bumped) before overwriting, so rolling the device back
     to a mark costs O(bytes written since), not O(arena).  Entry [i]
     is [j_addrs.(i), j_lens.(i)] with its old bytes at [j_offs.(i)]
     in [j_bytes]; [j_frames.(i)] is the bumped frame or -1. *)
  mutable j_on : bool;
  mutable j_addrs : int array;
  mutable j_lens : int array;
  mutable j_offs : int array;
  mutable j_frames : int array;
  mutable j_n : int;
  mutable j_bytes : Bytes.t;
  mutable j_blen : int;
}

type mark = { m_n : int; m_blen : int }

(* Wear accounting runs on every persistent write; for the usual
   power-of-two frame size the frame index is a shift, not an integer
   division (the divisor is a runtime value, so the compiler cannot
   strength-reduce it). *)
let shift_of frame_size =
  if frame_size land (frame_size - 1) <> 0 then -1
  else begin
    let s = ref 0 in
    while 1 lsl !s < frame_size do
      incr s
    done;
    !s
  end

let create ?(frame_size = 4096) ~nframes () =
  if nframes <= 0 then invalid_arg "Scm_device.create: nframes";
  if frame_size <= 0 || frame_size land 7 <> 0 then
    invalid_arg "Scm_device.create: frame_size";
  {
    arena = Bytes.make (nframes * frame_size) '\000';
    frame_size;
    fshift = shift_of frame_size;
    nframes;
    writes = Array.make nframes 0;
    total_writes = 0;
    j_on = false;
    j_addrs = [||];
    j_lens = [||];
    j_offs = [||];
    j_frames = [||];
    j_n = 0;
    j_bytes = Bytes.empty;
    j_blen = 0;
  }

let frame_size t = t.frame_size
let nframes t = t.nframes
let size_bytes t = t.nframes * t.frame_size

let check t addr len =
  if addr < 0 || addr + len > Bytes.length t.arena then
    invalid_arg
      (Printf.sprintf "Scm_device: address %#x+%d out of range" addr len)

let[@inline] frame_of t addr =
  if t.fshift >= 0 then addr lsr t.fshift else addr / t.frame_size

let[@inline] bump t addr =
  let f = frame_of t addr in
  t.writes.(f) <- t.writes.(f) + 1;
  t.total_writes <- t.total_writes + 1

let j_grow_entries t =
  let cap = max 1024 (2 * Array.length t.j_addrs) in
  let extend a = Array.append a (Array.make (cap - Array.length a) 0) in
  t.j_addrs <- extend t.j_addrs;
  t.j_lens <- extend t.j_lens;
  t.j_offs <- extend t.j_offs;
  t.j_frames <- extend t.j_frames

let j_grow_bytes t need =
  let cap = ref (max 65536 (2 * Bytes.length t.j_bytes)) in
  while !cap < need do
    cap := 2 * !cap
  done;
  let b = Bytes.create !cap in
  Bytes.blit t.j_bytes 0 b 0 t.j_blen;
  t.j_bytes <- b

(* Capture [len] bytes at [addr] (about to be overwritten) plus which
   frame's wear counter the write will bump, or -1 for none. *)
let j_record t addr len frame =
  if t.j_n >= Array.length t.j_addrs then j_grow_entries t;
  if t.j_blen + len > Bytes.length t.j_bytes then j_grow_bytes t (t.j_blen + len);
  t.j_addrs.(t.j_n) <- addr;
  t.j_lens.(t.j_n) <- len;
  t.j_offs.(t.j_n) <- t.j_blen;
  t.j_frames.(t.j_n) <- frame;
  Bytes.blit t.arena addr t.j_bytes t.j_blen len;
  t.j_n <- t.j_n + 1;
  t.j_blen <- t.j_blen + len

let journal_start t =
  t.j_on <- true;
  t.j_n <- 0;
  t.j_blen <- 0

let journal_stop t =
  t.j_on <- false;
  t.j_n <- 0;
  t.j_blen <- 0

let journal_mark t = { m_n = t.j_n; m_blen = t.j_blen }

let journal_undo_to t mark =
  for i = t.j_n - 1 downto mark.m_n do
    Bytes.blit t.j_bytes t.j_offs.(i) t.arena t.j_addrs.(i) t.j_lens.(i);
    let f = t.j_frames.(i) in
    if f >= 0 then begin
      t.writes.(f) <- t.writes.(f) - 1;
      t.total_writes <- t.total_writes - 1
    end
  done;
  t.j_n <- mark.m_n;
  t.j_blen <- mark.m_blen

let load64 t addr =
  check t addr 8;
  if not (Word.is_aligned addr) then
    invalid_arg (Printf.sprintf "Scm_device.load64: unaligned %#x" addr);
  Word.get t.arena addr

let store64 t addr v =
  check t addr 8;
  if not (Word.is_aligned addr) then
    invalid_arg (Printf.sprintf "Scm_device.store64: unaligned %#x" addr);
  if t.j_on then j_record t addr 8 (frame_of t addr);
  Word.set t.arena addr v;
  bump t addr

(* For drain loops over addresses already validated at post time (the
   write-combining buffer checks alignment and range on entry). *)
let[@inline] store64_unchecked t addr v =
  if t.j_on then j_record t addr 8 (frame_of t addr);
  Word.set t.arena addr v;
  bump t addr

let load_byte t addr =
  check t addr 1;
  Bytes.get t.arena addr

let read_into t addr buf off len =
  check t addr len;
  Bytes.blit t.arena addr buf off len

let write_from t addr buf off len =
  check t addr len;
  if len > 0 then begin
    if t.j_on then j_record t addr len (frame_of t addr);
    Bytes.blit buf off t.arena addr len;
    bump t addr
  end

let write_count t frame = t.writes.(frame)
let total_writes t = t.total_writes

let magic = "MNEMSCM1"

let save_image t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      output_binary_int oc t.frame_size;
      output_binary_int oc t.nframes;
      output_bytes oc t.arena)

let load_image path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let m = really_input_string ic (String.length magic) in
      if m <> magic then failwith "Scm_device.load_image: bad magic";
      let frame_size = input_binary_int ic in
      let nframes = input_binary_int ic in
      let t = create ~frame_size ~nframes () in
      really_input ic t.arena 0 (Bytes.length t.arena);
      t)

let copy t =
  {
    arena = Bytes.copy t.arena;
    frame_size = t.frame_size;
    fshift = t.fshift;
    nframes = t.nframes;
    writes = Array.copy t.writes;
    total_writes = t.total_writes;
    (* The journal is roll-back scaffolding for the source device; a
       copy starts with a fresh, disabled one. *)
    j_on = false;
    j_addrs = [||];
    j_lens = [||];
    j_offs = [||];
    j_frames = [||];
    j_n = 0;
    j_bytes = Bytes.empty;
    j_blen = 0;
  }
