(** Crash injection: the failure model of paper section 2.

    On a system failure only data resident in SCM survives; in-flight
    memory operations may or may not have completed, at 64-bit
    atomicity.  [inject] decides the fate of every piece of volatile
    state — dirty cache lines and pending write-combined stores — and
    then discards it, leaving the device holding exactly what a real
    power loss would leave.

    After [inject], all environments over the machine are dead; recovery
    code must build fresh ones (usually via {!Scm_device.save_image} /
    {!Scm_device.load_image} to also prove nothing volatile leaked). *)

type cache_policy =
  | Drop_dirty  (** No dirty line made it out: the common case. *)
  | Evict_random of float
      (** Each dirty line independently reached SCM with the given
          probability before the crash — models ongoing background
          eviction.  Correct programs must tolerate any subset. *)
  | Writeback_all
      (** Every dirty line reached SCM (an orderly-shutdown bound). *)

type wc_policy =
  | Wc_drop  (** No pending streaming store completed. *)
  | Wc_random_subset
      (** Each pending streaming store independently completed or not,
          in arbitrary order — the torn-append hazard of section 4.4. *)
  | Wc_apply_all  (** All pending streaming stores completed. *)

type policy = { cache : cache_policy; wc : wc_policy }

val default : policy
(** [Evict_random 0.3] + [Wc_random_subset]: the adversarial default
    used by crash tests. *)

val inject : ?policy:policy -> Env.machine -> unit
(** Apply the policy and wipe all volatile state.  Disarms the
    machine's crash point first, so injection itself cannot trigger a
    nested simulated crash. *)
