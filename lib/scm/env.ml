type machine = {
  dev : Scm_device.t;
  cache : Cache.t;
  latency : Latency_model.t;
  crash_rng : Random.State.t;
  obs : Obs.t;
  crash_point : Crashpoint.t;
  mutable pmcheck : Pmcheck.t option;
      (* durability sanitizer; None (default) keeps every hook a single
         branch so sim figures and crash-point indices are unchanged *)
  mutable wc_buffers : Wc_buffer.t list;
  mutable media_busy_until : int;
  flush_ctr : Obs.Metrics.counter;
  fence_ctr : Obs.Metrics.counter;
  pcm_occ : int;
      (* [latency.pcm_write_ns / media_banks], precomputed: the flush
         path charges it per dirty line and the division is visible
         there *)
}

type t = {
  machine : machine;
  wc : Wc_buffer.t;
  delay : int -> unit;
  now : unit -> int;
  mutable cur_txid : int;
      (* the transaction currently running on this thread, stamped by
         the STM layer; 0 = none.  Per-thread (unlike the shared
         machine), so causal attribution of stores is race-free under
         any interleaving *)
}

(* Point-in-time device gauges: wear is sampled on demand by
   snapshots (an O(nframes) sweep then, nothing in the steady state).
   The cache registers its own occupancy gauge at creation. *)
let register_dev_gauges obs dev =
  Obs.Metrics.set_gauge
    (Obs.Metrics.gauge obs.Obs.metrics "scm.dev.max_wear")
    (fun () ->
      let worst = ref 0 in
      for f = 0 to Scm_device.nframes dev - 1 do
        let w = Scm_device.write_count dev f in
        if w > !worst then worst := w
      done;
      !worst)

let make_machine ?(latency = Latency_model.default) ?cache_capacity_lines
    ?(seed = 42) ?obs ?crash_point ~nframes () =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let cp =
    match crash_point with Some c -> c | None -> Crashpoint.create ()
  in
  let dev = Scm_device.create ~nframes () in
  let cache =
    Cache.create ?capacity_lines:cache_capacity_lines ~seed ~obs ~cp dev
  in
  register_dev_gauges obs dev;
  {
    dev;
    cache;
    latency;
    crash_rng = Random.State.make [| seed; 0x5eed |];
    obs;
    crash_point = cp;
    pmcheck = None;
    wc_buffers = [];
    media_busy_until = 0;
    flush_ctr = Obs.Metrics.counter obs.Obs.metrics "scm.flushes";
    fence_ctr = Obs.Metrics.counter obs.Obs.metrics "scm.fences";
    pcm_occ =
      latency.Latency_model.pcm_write_ns
      / max 1 latency.Latency_model.media_banks;
  }

let machine_of_device ?(latency = Latency_model.default) ?cache_capacity_lines
    ?(seed = 42) ?obs ?crash_point dev =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let cp =
    match crash_point with Some c -> c | None -> Crashpoint.create ()
  in
  let cache =
    Cache.create ?capacity_lines:cache_capacity_lines ~seed ~obs ~cp dev
  in
  register_dev_gauges obs dev;
  {
    dev;
    cache;
    latency;
    crash_rng = Random.State.make [| seed; 0x5eed |];
    obs;
    crash_point = cp;
    pmcheck = None;
    wc_buffers = [];
    media_busy_until = 0;
    flush_ctr = Obs.Metrics.counter obs.Obs.metrics "scm.flushes";
    fence_ctr = Obs.Metrics.counter obs.Obs.metrics "scm.fences";
    pcm_occ =
      latency.Latency_model.pcm_write_ns
      / max 1 latency.Latency_model.media_banks;
  }

let attach_wc machine =
  let wc =
    Wc_buffer.create ~obs:machine.obs ~cp:machine.crash_point machine.dev
  in
  (match machine.pmcheck with
  | None -> ()
  | Some _ as c -> Wc_buffer.set_pmcheck wc c);
  machine.wc_buffers <- wc :: machine.wc_buffers;
  wc

(* Install the durability sanitizer on a machine: the cache and every
   write-combining buffer (present and future) report device-reach
   events to it.  Installation is expected before the workload starts;
   it never charges simulated time. *)
let install_pmcheck ?lint_fences m =
  let chk =
    Pmcheck.create ?lint_fences ~obs:m.obs ~cp:m.crash_point
      ~nframes:(Scm_device.nframes m.dev) ()
  in
  m.pmcheck <- Some chk;
  Cache.set_pmcheck m.cache (Some chk);
  List.iter (fun wc -> Wc_buffer.set_pmcheck wc (Some chk)) m.wc_buffers;
  chk

(* Detach without losing accumulated state: crash injection applies
   wc/cache residue policies that must not be mistaken for program
   behaviour, so {!Crash.inject} calls this first. *)
let detach_pmcheck m =
  m.pmcheck <- None;
  Cache.set_pmcheck m.cache None;
  List.iter (fun wc -> Wc_buffer.set_pmcheck wc None) m.wc_buffers

(* Creating an environment points the machine's observability clock at
   this environment's clock.  Every view of one simulation shares one
   clock, so last-wins is correct there; mixing standalone clocks only
   matters when tracing, and traced runs use a single time source. *)
let standalone machine =
  let clock = ref 0 in
  let now () = !clock in
  Obs.set_clock machine.obs now;
  {
    machine;
    wc = attach_wc machine;
    delay = (fun ns -> clock := !clock + ns);
    now;
    cur_txid = 0;
  }

let view machine ~delay ~now =
  Obs.set_clock machine.obs now;
  { machine; wc = attach_wc machine; delay; now; cur_txid = 0 }

let elapsed_ns t = t.now ()
