(* Open-addressed integer-keyed maps for simulator hot paths.

   [Hashtbl] on a per-memory-access path costs a hash, bucket chasing,
   and a [Some] allocation per hit; these maps are linear-probing
   arrays with -1 as the empty-key sentinel (keys must be
   non-negative), answer misses with a sentinel instead of an option,
   and keep int64 values unboxed in a [Bytes] buffer.  Load factor is
   kept under 1/2 by doubling.  Deletion uses backward-shift, so no
   tombstones accumulate. *)

let rec next_pow2 n k = if k >= n then k else next_pow2 n (2 * k)
let[@inline] mix k mask = (k * 0x2545F4914F6CDD1D) lsr 1 land mask

(* int -> int; absent keys read as -1 (store only values >= 0, or any
   value distinct from -1 the caller never confuses with a miss). *)
module Int = struct
  type t = {
    mutable mask : int;
    mutable keys : int array;
    mutable vals : int array;
    mutable n : int;
    (* slots filled since the last [clear], so [clear] is O(inserts)
       rather than O(table); invalidated by [remove] (backward-shift
       moves entries), which forces the next [clear] to do a full
       sweep *)
    mutable used : int array;
    mutable nused : int;
    mutable removed : bool;
  }

  let create ?(initial = 64) () =
    let size = next_pow2 (max 16 initial) 16 in
    {
      mask = size - 1;
      keys = Array.make size (-1);
      vals = Array.make size 0;
      n = 0;
      used = Array.make size 0;
      nused = 0;
      removed = false;
    }

  let size t = t.n

  let[@inline] find t k =
    let keys = t.keys and mask = t.mask in
    let i = ref (mix k mask) in
    let c = ref keys.(!i) in
    while !c <> k && !c <> -1 do
      i := (!i + 1) land mask;
      c := keys.(!i)
    done;
    if !c = k then t.vals.(!i) else -1

  let mem t k = find t k <> -1

  let grow t =
    let old_keys = t.keys and old_vals = t.vals in
    let size = 2 * Array.length old_keys in
    t.mask <- size - 1;
    t.keys <- Array.make size (-1);
    t.vals <- Array.make size 0;
    t.used <- Array.make size 0;
    t.nused <- 0;
    Array.iteri
      (fun i k ->
        if k <> -1 then begin
          let j = ref (mix k t.mask) in
          while t.keys.(!j) <> -1 do
            j := (!j + 1) land t.mask
          done;
          t.keys.(!j) <- k;
          t.vals.(!j) <- old_vals.(i);
          t.used.(t.nused) <- !j;
          t.nused <- t.nused + 1
        end)
      old_keys

  let set t k v =
    if k < 0 then invalid_arg "Imap.Int.set: negative key";
    let keys = t.keys and mask = t.mask in
    let i = ref (mix k mask) in
    let c = ref keys.(!i) in
    while !c <> k && !c <> -1 do
      i := (!i + 1) land mask;
      c := keys.(!i)
    done;
    if !c = k then t.vals.(!i) <- v
    else begin
      if 2 * (t.n + 1) > Array.length t.keys then begin
        grow t;
        let j = ref (mix k t.mask) in
        while t.keys.(!j) <> -1 do
          j := (!j + 1) land t.mask
        done;
        i := !j
      end;
      t.keys.(!i) <- k;
      t.vals.(!i) <- v;
      t.used.(t.nused) <- !i;
      t.nused <- t.nused + 1;
      t.n <- t.n + 1
    end

  (* [add_to t k d]: bump [k]'s value by [d], treating absent as 0. *)
  let add_to t k d =
    let v = find t k in
    set t k (if v = -1 then d else v + d)

  let remove t k =
    let mask = t.mask in
    let i = ref (mix k mask) in
    let c = ref t.keys.(!i) in
    while !c <> k && !c <> -1 do
      i := (!i + 1) land mask;
      c := t.keys.(!i)
    done;
    if !c = k then begin
      t.n <- t.n - 1;
      t.removed <- true;
      let hole = ref !i in
      t.keys.(!hole) <- -1;
      let j = ref ((!i + 1) land mask) in
      while t.keys.(!j) <> -1 do
        let home = mix t.keys.(!j) mask in
        if (!j - home) land mask >= (!j - !hole) land mask then begin
          t.keys.(!hole) <- t.keys.(!j);
          t.vals.(!hole) <- t.vals.(!j);
          t.keys.(!j) <- -1;
          hole := !j
        end;
        j := (!j + 1) land mask
      done
    end

  let clear t =
    if t.removed then begin
      Array.fill t.keys 0 (Array.length t.keys) (-1);
      t.removed <- false
    end
    else
      for i = 0 to t.nused - 1 do
        t.keys.(t.used.(i)) <- -1
      done;
    t.nused <- 0;
    t.n <- 0
end

(* int -> int64, values unboxed in a [Bytes] buffer.  Lookup is split
   into [find_slot] / [value_at] so a miss costs no allocation and a
   hit allocates only if the caller boxes the result itself. *)
module I64 = struct
  type t = {
    mutable mask : int;
    mutable keys : int array;
    mutable vals : Bytes.t;
    mutable n : int;
    mutable used : int array;  (* as in {!Int}: slots for O(n) clear *)
    mutable nused : int;
  }

  let create ?(initial = 64) () =
    let size = next_pow2 (max 16 initial) 16 in
    {
      mask = size - 1;
      keys = Array.make size (-1);
      vals = Bytes.create (size * 8);
      n = 0;
      used = Array.make size 0;
      nused = 0;
    }

  let size t = t.n

  let[@inline] find_slot t k =
    let keys = t.keys and mask = t.mask in
    let i = ref (mix k mask) in
    let c = ref keys.(!i) in
    while !c <> k && !c <> -1 do
      i := (!i + 1) land mask;
      c := keys.(!i)
    done;
    if !c = k then !i else -1

  let[@inline] value_at t slot = Bytes.get_int64_le t.vals (slot * 8)

  let grow t =
    let old_keys = t.keys and old_vals = t.vals in
    let size = 2 * Array.length old_keys in
    t.mask <- size - 1;
    t.keys <- Array.make size (-1);
    t.vals <- Bytes.create (size * 8);
    t.used <- Array.make size 0;
    t.nused <- 0;
    Array.iteri
      (fun i k ->
        if k <> -1 then begin
          let j = ref (mix k t.mask) in
          while t.keys.(!j) <> -1 do
            j := (!j + 1) land t.mask
          done;
          t.keys.(!j) <- k;
          Bytes.set_int64_le t.vals (!j * 8)
            (Bytes.get_int64_le old_vals (i * 8));
          t.used.(t.nused) <- !j;
          t.nused <- t.nused + 1
        end)
      old_keys

  let set t k v =
    if k < 0 then invalid_arg "Imap.I64.set: negative key";
    let slot = find_slot t k in
    if slot >= 0 then Bytes.set_int64_le t.vals (slot * 8) v
    else begin
      if 2 * (t.n + 1) > Array.length t.keys then grow t;
      let mask = t.mask in
      let i = ref (mix k mask) in
      while t.keys.(!i) <> -1 do
        i := (!i + 1) land mask
      done;
      t.keys.(!i) <- k;
      Bytes.set_int64_le t.vals (!i * 8) v;
      t.used.(t.nused) <- !i;
      t.nused <- t.nused + 1;
      t.n <- t.n + 1
    end

  let clear t =
    for i = 0 to t.nused - 1 do
      t.keys.(t.used.(i)) <- -1
    done;
    t.nused <- 0;
    t.n <- 0
end
