(** Open-addressed integer-keyed maps for simulator hot paths.

    Linear probing over plain arrays, -1 as the empty-key sentinel
    (keys must be non-negative), misses answered by sentinel instead
    of [option] — so lookups on the per-memory-access path neither
    hash strings nor allocate.  Used for the page-translation cache,
    the write-combining buffer, and (via [Mtm.Wset]) transaction
    write-sets. *)

(** [int -> int]; absent keys read as [-1], so store only values the
    caller never confuses with a miss (frame numbers, counts). *)
module Int : sig
  type t

  val create : ?initial:int -> unit -> t
  val size : t -> int

  val find : t -> int -> int
  (** Value of a key, or [-1] when absent. *)

  val mem : t -> int -> bool
  val set : t -> int -> int -> unit

  val add_to : t -> int -> int -> unit
  (** [add_to t k d] bumps [k]'s value by [d], treating absent as 0. *)

  val remove : t -> int -> unit
  (** Backward-shift deletion; no-op when absent. *)

  val clear : t -> unit
  (** Empty the map keeping its arrays (no allocation). *)
end

(** [int -> int64], values unboxed in a [Bytes] buffer. *)
module I64 : sig
  type t

  val create : ?initial:int -> unit -> t
  val size : t -> int

  val find_slot : t -> int -> int
  (** Slot of a key, or [-1] when absent; read it with {!value_at}.
      The split lets a hit avoid [option] allocation. *)

  val value_at : t -> int -> int64
  (** Value in a slot returned by {!find_slot} (must be [>= 0]). *)

  val set : t -> int -> int64 -> unit
  val clear : t -> unit
end
