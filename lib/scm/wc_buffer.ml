type t = {
  dev : Scm_device.t;
  order : (int * int64) Queue.t;
  latest : (int, int64) Hashtbl.t;
  lines : (int, int) Hashtbl.t;  (* 64-byte line -> pending word count *)
  obs : Obs.t;
  cp : Crashpoint.t;
  drain_ctr : Obs.Metrics.counter;
}

let line_shift = 6

let create ?obs ?cp dev =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let cp = match cp with Some c -> c | None -> Crashpoint.create () in
  {
    dev;
    order = Queue.create ();
    latest = Hashtbl.create 64;
    lines = Hashtbl.create 64;
    obs;
    cp;
    drain_ctr = Obs.Metrics.counter obs.Obs.metrics "scm.wc.drains";
  }

let post t addr v =
  if not (Word.is_aligned addr) then
    invalid_arg (Printf.sprintf "Wc_buffer.post: unaligned %#x" addr);
  Crashpoint.tick t.cp Crashpoint.Wt_post;
  Queue.push (addr, v) t.order;
  Hashtbl.replace t.latest addr v;
  let line = addr lsr line_shift in
  Hashtbl.replace t.lines line
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.lines line))

let lookup t addr = Hashtbl.find_opt t.latest addr

let pending_in_line t addr = Hashtbl.mem t.lines (addr lsr line_shift)

let pending_words t = Queue.length t.order
let pending_bytes t = 8 * Queue.length t.order

let clear t =
  Queue.clear t.order;
  Hashtbl.reset t.latest;
  Hashtbl.reset t.lines

let drain t =
  let words = Queue.length t.order in
  if words > 0 then begin
    Crashpoint.tick t.cp Crashpoint.Wc_drain;
    Obs.Metrics.incr t.drain_ctr;
    Obs.instant t.obs Obs.Trace.Wc_drain ~arg:words
  end;
  Queue.iter (fun (addr, v) -> Scm_device.store64 t.dev addr v) t.order;
  clear t

let crash_apply_subset t rng =
  let applied = ref 0 in
  (* Apply a random subset in a random order.  Later writes to the same
     address may land while earlier ones do not — the torn-write
     hazard. *)
  let pending = Array.of_seq (Queue.to_seq t.order) in
  let n = Array.length pending in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = pending.(i) in
    pending.(i) <- pending.(j);
    pending.(j) <- tmp
  done;
  Array.iter
    (fun (addr, v) ->
      if Random.State.bool rng then begin
        Scm_device.store64 t.dev addr v;
        incr applied
      end)
    pending;
  clear t;
  !applied

let discard t = clear t
