(* Pending stores live in growable parallel arrays (insertion order,
   int64 values unboxed in a [Bytes] buffer).  A post is a tick plus
   two array writes — no tuples, queue cells, or hashtable nodes.  The
   buffer only fills between a log append and its fence and is bounded
   by one record, so the rare queries (store forwarding on a load,
   line-overlap checks on a cached store) just scan it; {!is_empty}
   gives the cached-access path a one-load fast exit when nothing is
   pending, the overwhelmingly common case. *)

type t = {
  dev : Scm_device.t;
  mutable o_addrs : int array;  (* pending stores, program order *)
  mutable o_vals : Bytes.t;  (* 8 bytes per pending store *)
  mutable o_txids : int array;  (* owning txn per pending store; 0 = none *)
  mutable n : int;
  obs : Obs.t;
  cp : Crashpoint.t;
  drain_ctr : Obs.Metrics.counter;
  mutable cur_owner : int;
      (* txn id stamped on posts, set by the access layer; attribution
         only — plain int stores, never simulated time *)
  mutable pmcheck : Pmcheck.t option;
      (* durability sanitizer, observing drained words; None (the
         default) costs one branch per drain *)
}

let line_shift = 6

let create ?obs ?cp dev =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let cp = match cp with Some c -> c | None -> Crashpoint.create () in
  {
    dev;
    o_addrs = Array.make 64 0;
    o_vals = Bytes.create (64 * 8);
    o_txids = Array.make 64 0;
    n = 0;
    obs;
    cp;
    drain_ctr = Obs.Metrics.counter obs.Obs.metrics "scm.wc.drains";
    cur_owner = 0;
    pmcheck = None;
  }

let set_pmcheck t c = t.pmcheck <- c
let set_owner t txid = t.cur_owner <- txid

let[@inline] is_empty t = t.n = 0

let post t addr v =
  if not (Word.is_aligned addr) then
    invalid_arg (Printf.sprintf "Wc_buffer.post: unaligned %#x" addr);
  Crashpoint.tick t.cp Crashpoint.Wt_post;
  if t.n = Array.length t.o_addrs then begin
    let size = 2 * t.n in
    t.o_addrs <- Array.append t.o_addrs (Array.make t.n 0);
    t.o_txids <- Array.append t.o_txids (Array.make t.n 0);
    let vals = Bytes.create (size * 8) in
    Bytes.blit t.o_vals 0 vals 0 (t.n * 8);
    t.o_vals <- vals
  end;
  t.o_addrs.(t.n) <- addr;
  Bytes.set_int64_le t.o_vals (t.n * 8) v;
  t.o_txids.(t.n) <- t.cur_owner;
  t.n <- t.n + 1

(* Newest pending value wins, so scan backward from the tail. *)
let lookup t addr =
  let i = ref (t.n - 1) in
  while !i >= 0 && t.o_addrs.(!i) <> addr do
    decr i
  done;
  if !i < 0 then None else Some (Bytes.get_int64_le t.o_vals (!i * 8))

let pending_in_line t addr =
  let line = addr lsr line_shift in
  let i = ref (t.n - 1) in
  while !i >= 0 && t.o_addrs.(!i) lsr line_shift <> line do
    decr i
  done;
  !i >= 0

let pending_words t = t.n
let pending_bytes t = 8 * t.n
let clear t = t.n <- 0

let drain t =
  if t.n > 0 then begin
    Crashpoint.tick t.cp Crashpoint.Wc_drain;
    Obs.Metrics.incr t.drain_ctr;
    Obs.instant t.obs Obs.Trace.Wc_drain ~arg:t.n;
    (* One causal flow step per distinct owning transaction in the
       drained window (posts from one txn are contiguous), tracing
       only. *)
    if Obs.tracing t.obs then begin
      let last = ref 0 in
      for i = 0 to t.n - 1 do
        let id = t.o_txids.(i) in
        if id <> 0 && id <> !last then begin
          Obs.flow t.obs ~phase:`Step ~id;
          last := id
        end
      done
    end;
    (match t.pmcheck with
    | None ->
        for i = 0 to t.n - 1 do
          Scm_device.store64_unchecked t.dev t.o_addrs.(i)
            (Bytes.get_int64_le t.o_vals (i * 8))
        done
    | Some chk ->
        for i = 0 to t.n - 1 do
          let addr = t.o_addrs.(i) in
          Scm_device.store64_unchecked t.dev addr
            (Bytes.get_int64_le t.o_vals (i * 8));
          Pmcheck.device_reach_word chk addr
        done);
    clear t
  end

let crash_apply_subset t rng =
  let applied = ref 0 in
  (* Apply a random subset in a random order.  Later writes to the same
     address may land while earlier ones do not — the torn-write
     hazard. *)
  let pending =
    Array.init t.n (fun i -> (t.o_addrs.(i), Bytes.get_int64_le t.o_vals (i * 8)))
  in
  let n = Array.length pending in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = pending.(i) in
    pending.(i) <- pending.(j);
    pending.(j) <- tmp
  done;
  Array.iter
    (fun (addr, v) ->
      if Random.State.bool rng then begin
        Scm_device.store64 t.dev addr v;
        incr applied
      end)
    pending;
  clear t;
  !applied

let discard t = clear t
