type kind = Wt_post | Wc_drain | Cache_writeback | Fence

let kind_name = function
  | Wt_post -> "wt_post"
  | Wc_drain -> "wc_drain"
  | Cache_writeback -> "cache_writeback"
  | Fence -> "fence"

exception Simulated_crash of { op : int; kind : kind }

type t = {
  mutable op : int;
  mutable target : int;  (* -1 = disarmed *)
  mutable crashed : bool;
  (* the last kind is stored unboxed ([has_kind] distinguishes "none
     yet"): {!tick} runs on every persistence operation and must not
     allocate an option per call *)
  mutable last_kind_raw : kind;
  mutable has_kind : bool;
}

let create () =
  {
    op = 0;
    target = -1;
    crashed = false;
    last_kind_raw = Wt_post;
    has_kind = false;
  }

let count t = t.op
let target t = if t.target < 0 then None else Some t.target
let crashed t = t.crashed
let last_kind t = if t.has_kind then Some t.last_kind_raw else None

let arm t ~at =
  if at < 1 then invalid_arg "Crashpoint.arm: op indices start at 1";
  t.target <- at;
  t.crashed <- false

let disarm t =
  t.target <- -1;
  t.crashed <- false

let tick t kind =
  (* Once the crash has fired the machine is dead: any further
     persistence operation (e.g. from an exception handler trying to
     roll back) re-raises, so nothing can leak to the device after the
     crash point. *)
  if t.crashed then
    raise (Simulated_crash { op = t.op; kind })
  else begin
    t.op <- t.op + 1;
    t.last_kind_raw <- kind;
    t.has_kind <- true;
    if t.op = t.target then begin
      t.crashed <- true;
      raise (Simulated_crash { op = t.op; kind })
    end
  end
