type line = { data : Bytes.t; mutable dirty : bool }

type t = {
  dev : Scm_device.t;
  line_size : int;
  capacity : int;
  lines : (int, line) Hashtbl.t;
  rng : Random.State.t;
  obs : Obs.t;
  cp : Crashpoint.t;
  evict_ctr : Obs.Metrics.counter;
  mutable evictions : int;
  (* Dense array of resident line addresses for O(1) random victim
     selection; [index] maps line address to its slot in [members]. *)
  mutable members : int array;
  mutable nmembers : int;
  index : (int, int) Hashtbl.t;
}

let create ?(line_size = 64) ?(capacity_lines = 8192) ?(seed = 0xcafe) ?obs
    ?cp dev =
  if line_size <= 0 || line_size land 7 <> 0 then
    invalid_arg "Cache.create: line_size";
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let cp = match cp with Some c -> c | None -> Crashpoint.create () in
  {
    dev;
    line_size;
    capacity = capacity_lines;
    lines = Hashtbl.create (2 * capacity_lines);
    rng = Random.State.make [| seed |];
    obs;
    cp;
    evict_ctr = Obs.Metrics.counter obs.Obs.metrics "scm.cache.evictions";
    evictions = 0;
    members = Array.make (max 16 capacity_lines) (-1);
    nmembers = 0;
    index = Hashtbl.create (2 * capacity_lines);
  }

let line_size t = t.line_size
let line_base t addr = addr - (addr mod t.line_size)

let member_add t base =
  if t.nmembers = Array.length t.members then begin
    let bigger = Array.make (2 * t.nmembers) (-1) in
    Array.blit t.members 0 bigger 0 t.nmembers;
    t.members <- bigger
  end;
  t.members.(t.nmembers) <- base;
  Hashtbl.replace t.index base t.nmembers;
  t.nmembers <- t.nmembers + 1

let member_remove t base =
  match Hashtbl.find_opt t.index base with
  | None -> ()
  | Some slot ->
      let last = t.nmembers - 1 in
      let moved = t.members.(last) in
      t.members.(slot) <- moved;
      Hashtbl.replace t.index moved slot;
      t.nmembers <- last;
      Hashtbl.remove t.index base

let write_back t base line =
  Crashpoint.tick t.cp Crashpoint.Cache_writeback;
  Scm_device.write_from t.dev base line.data 0 t.line_size;
  line.dirty <- false

let remove_line t base =
  Hashtbl.remove t.lines base;
  member_remove t base

let evict_one t =
  if t.nmembers > 0 then begin
    let victim = t.members.(Random.State.int t.rng t.nmembers) in
    (match Hashtbl.find_opt t.lines victim with
    | Some line when line.dirty -> write_back t victim line
    | Some _ | None -> ());
    remove_line t victim;
    t.evictions <- t.evictions + 1;
    Obs.Metrics.incr t.evict_ctr;
    Obs.instant t.obs Obs.Trace.Cache_evict ~arg:victim
  end

let get_line t addr =
  let base = line_base t addr in
  match Hashtbl.find_opt t.lines base with
  | Some line -> (base, line)
  | None ->
      if Hashtbl.length t.lines >= t.capacity then evict_one t;
      let data = Bytes.create t.line_size in
      Scm_device.read_into t.dev base data 0 t.line_size;
      let line = { data; dirty = false } in
      Hashtbl.replace t.lines base line;
      member_add t base;
      (base, line)

let read_word t addr =
  let base, line = get_line t addr in
  Word.get line.data (addr - base)

(* Coherent read that never allocates a line (an uncached/non-temporal
   load): resident lines answer from the cache, everything else reads
   the device directly.  Recovery-time sweeps use this so scanning a
   whole region does not evict the working set or consume the eviction
   rng. *)
let peek_word t addr =
  let base = line_base t addr in
  match Hashtbl.find_opt t.lines base with
  | Some line -> Word.get line.data (addr - base)
  | None -> Scm_device.load64 t.dev (addr - (addr mod 8))

let write_word t addr v =
  let base, line = get_line t addr in
  Word.set line.data (addr - base) v;
  line.dirty <- true

let rec read_into t addr buf off len =
  if len > 0 then begin
    let base, line = get_line t addr in
    let within = addr - base in
    let n = min len (t.line_size - within) in
    Bytes.blit line.data within buf off n;
    read_into t (addr + n) buf (off + n) (len - n)
  end

let rec write_from t addr buf off len =
  if len > 0 then begin
    let base, line = get_line t addr in
    let within = addr - base in
    let n = min len (t.line_size - within) in
    Bytes.blit buf off line.data within n;
    line.dirty <- true;
    write_from t (addr + n) buf (off + n) (len - n)
  end

let flush_line t addr =
  let base = line_base t addr in
  match Hashtbl.find_opt t.lines base with
  | None -> false
  | Some line ->
      let was_dirty = line.dirty in
      if was_dirty then write_back t base line;
      remove_line t base;
      was_dirty

let invalidate_line t addr =
  let base = line_base t addr in
  if Hashtbl.mem t.lines base then remove_line t base

let is_dirty t addr =
  match Hashtbl.find_opt t.lines (line_base t addr) with
  | Some line -> line.dirty
  | None -> false

let dirty_lines t =
  Hashtbl.fold (fun base line acc -> if line.dirty then base :: acc else acc)
    t.lines []
  |> List.sort compare

let resident_lines t = Hashtbl.length t.lines
let evictions t = t.evictions

let writeback_line t addr =
  let base = line_base t addr in
  match Hashtbl.find_opt t.lines base with
  | Some line when line.dirty -> write_back t base line
  | Some _ | None -> ()

let drop_all t =
  Hashtbl.reset t.lines;
  Hashtbl.reset t.index;
  t.nmembers <- 0
