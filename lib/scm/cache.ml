(* Array-backed, open-addressed cache: the per-word load/store fast
   path is a handful of array reads with zero allocation.  Lines live
   in a linear-probing table (power-of-two size >= 2x capacity, so the
   load factor stays under 1/2) whose entries own preallocated
   [line_size] buffers; deletion is backward-shift, so there are no
   tombstones and probes stay short.

   Eviction semantics are pinned: the victim is drawn uniformly from a
   dense insertion-ordered array of resident line addresses
   ([members], maintained by append + swap-remove exactly as the
   original Hashtbl-based cache did), and the rng is consumed ONLY for
   that draw.  Crash-point indices and eviction sequences are
   therefore bit-identical to the previous implementation — the
   cache-eviction determinism test in test_scm.ml checks the sequence
   against a reference model. *)

type t = {
  dev : Scm_device.t;
  line_size : int;
  capacity : int;
  mask : int;  (* table size - 1; table size is a power of two *)
  keys : int array;  (* line base address, or -1 for an empty slot *)
  data : Bytes.t array;  (* preallocated line buffers, one per slot *)
  dirty : bool array;
  mslot : int array;  (* index of this entry's base in [members] *)
  rng : Random.State.t;
  obs : Obs.t;
  cp : Crashpoint.t;
  evict_ctr : Obs.Metrics.counter;
  mutable evictions : int;
  mutable pmcheck : Pmcheck.t option;
      (* durability sanitizer, observing lines that reach the device;
         None (the default) costs one branch per write-back *)
  (* Dense array of resident line addresses for O(1) random victim
     selection; insertion-ordered, removal swaps the last entry in. *)
  members : int array;
  mutable nmembers : int;
  (* Causal attribution: [cur_owner] is the transaction id stamped by
     the access layer before each store; dirtying a line records it in
     [owner] so a later write-back can be attributed to the
     transaction that dirtied the line.  Plain int stores — never
     simulated time, rng draws, or allocation. *)
  mutable cur_owner : int;
  owner : int array;  (* per slot; 0 = unattributed *)
}

let rec next_pow2 n k = if k >= n then k else next_pow2 n (2 * k)

let create ?(line_size = 64) ?(capacity_lines = 8192) ?(seed = 0xcafe) ?obs
    ?cp dev =
  if line_size <= 0 || line_size land 7 <> 0 then
    invalid_arg "Cache.create: line_size";
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let cp = match cp with Some c -> c | None -> Crashpoint.create () in
  let size = next_pow2 (2 * max 8 capacity_lines) 16 in
  let t =
    {
      dev;
      line_size;
      capacity = capacity_lines;
      mask = size - 1;
      keys = Array.make size (-1);
      data = Array.init size (fun _ -> Bytes.create line_size);
      dirty = Array.make size false;
      mslot = Array.make size 0;
      rng = Random.State.make [| seed |];
      obs;
      cp;
      evict_ctr = Obs.Metrics.counter obs.Obs.metrics "scm.cache.evictions";
      evictions = 0;
      pmcheck = None;
      members = Array.make (max 16 capacity_lines) (-1);
      nmembers = 0;
      cur_owner = 0;
      owner = Array.make size 0;
    }
  in
  Obs.Metrics.set_gauge
    (Obs.Metrics.gauge obs.Obs.metrics "scm.cache.resident_lines")
    (fun () -> t.nmembers);
  t

let line_size t = t.line_size
let line_base t addr = addr - (addr mod t.line_size)

(* Fibonacci hashing on the line base; any mix works (the table is an
   implementation detail), it just has to spread consecutive lines. *)
let[@inline] hash t base = (base * 0x2545F4914F6CDD1D) lsr 1 land t.mask

(* Slot holding [base], or -1 if not resident. *)
let[@inline] find_slot t base =
  let keys = t.keys and mask = t.mask in
  let i = ref (hash t base) in
  let k = ref keys.(!i) in
  while !k <> base && !k <> -1 do
    i := (!i + 1) land mask;
    k := keys.(!i)
  done;
  if !k = base then !i else -1

(* First empty slot on [base]'s probe path (caller knows it's absent). *)
let[@inline] free_slot t base =
  let keys = t.keys and mask = t.mask in
  let i = ref (hash t base) in
  while keys.(!i) <> -1 do
    i := (!i + 1) land mask
  done;
  !i

let member_add t base slot =
  t.members.(t.nmembers) <- base;
  t.mslot.(slot) <- t.nmembers;
  t.nmembers <- t.nmembers + 1

let member_remove t slot =
  let ms = t.mslot.(slot) in
  let last = t.nmembers - 1 in
  let moved = t.members.(last) in
  t.members.(ms) <- moved;
  t.nmembers <- last;
  if ms <> last then begin
    let moved_slot = find_slot t moved in
    t.mslot.(moved_slot) <- ms
  end

(* Backward-shift deletion: walk the cluster after [slot], moving back
   any entry whose home position does not lie cyclically inside
   (hole, entry].  Buffers are swapped, not copied, so every slot keeps
   owning a spare line buffer. *)
let table_delete t slot =
  let mask = t.mask in
  let hole = ref slot in
  t.keys.(!hole) <- -1;
  let j = ref ((slot + 1) land mask) in
  while t.keys.(!j) <> -1 do
    let home = hash t t.keys.(!j) in
    let dist_home = (!j - home) land mask in
    let dist_hole = (!j - !hole) land mask in
    if dist_home >= dist_hole then begin
      t.keys.(!hole) <- t.keys.(!j);
      t.dirty.(!hole) <- t.dirty.(!j);
      t.owner.(!hole) <- t.owner.(!j);
      t.mslot.(!hole) <- t.mslot.(!j);
      let tmp = t.data.(!hole) in
      t.data.(!hole) <- t.data.(!j);
      t.data.(!j) <- tmp;
      t.keys.(!j) <- -1;
      t.dirty.(!j) <- false;
      t.owner.(!j) <- 0;
      hole := !j
    end;
    j := (!j + 1) land mask
  done

let set_pmcheck t c = t.pmcheck <- c
let set_owner t txid = t.cur_owner <- txid

let write_back t base slot =
  Crashpoint.tick t.cp Crashpoint.Cache_writeback;
  Scm_device.write_from t.dev base t.data.(slot) 0 t.line_size;
  t.dirty.(slot) <- false;
  (* Attribute the deferred write-back to the transaction that dirtied
     the line; only when tracing, so the common path stays one
     branch. *)
  if t.owner.(slot) <> 0 then begin
    if Obs.tracing t.obs then Obs.flow t.obs ~phase:`Step ~id:t.owner.(slot);
    t.owner.(slot) <- 0
  end;
  match t.pmcheck with
  | None -> ()
  | Some chk -> Pmcheck.device_reach_line chk base t.line_size

let remove_line t slot =
  member_remove t slot;
  table_delete t slot

let evict_one t =
  if t.nmembers > 0 then begin
    let victim = t.members.(Random.State.int t.rng t.nmembers) in
    let slot = find_slot t victim in
    if t.dirty.(slot) then write_back t victim slot;
    remove_line t slot;
    t.evictions <- t.evictions + 1;
    Obs.Metrics.incr t.evict_ctr;
    Obs.instant t.obs Obs.Trace.Cache_evict ~arg:victim
  end

(* Returns the slot of [addr]'s line, filling it on a miss. *)
let get_line t base =
  let slot = find_slot t base in
  if slot >= 0 then slot
  else begin
    if t.nmembers >= t.capacity then evict_one t;
    let slot = free_slot t base in
    t.keys.(slot) <- base;
    t.dirty.(slot) <- false;
    t.owner.(slot) <- 0;
    Scm_device.read_into t.dev base t.data.(slot) 0 t.line_size;
    member_add t base slot;
    slot
  end

let read_word t addr =
  let base = line_base t addr in
  let slot = get_line t base in
  Word.get t.data.(slot) (addr - base)

(* Coherent read that never allocates a line (an uncached/non-temporal
   load): resident lines answer from the cache, everything else reads
   the device directly.  Recovery-time sweeps use this so scanning a
   whole region does not evict the working set or consume the eviction
   rng. *)
let peek_word t addr =
  let base = line_base t addr in
  let slot = find_slot t base in
  if slot >= 0 then Word.get t.data.(slot) (addr - base)
  else Scm_device.load64 t.dev (addr - (addr mod 8))

let write_word t addr v =
  let base = line_base t addr in
  let slot = get_line t base in
  Word.set t.data.(slot) (addr - base) v;
  t.dirty.(slot) <- true;
  t.owner.(slot) <- t.cur_owner

let rec read_into t addr buf off len =
  if len > 0 then begin
    let base = line_base t addr in
    let slot = get_line t base in
    let within = addr - base in
    let n = min len (t.line_size - within) in
    Bytes.blit t.data.(slot) within buf off n;
    read_into t (addr + n) buf (off + n) (len - n)
  end

let rec write_from t addr buf off len =
  if len > 0 then begin
    let base = line_base t addr in
    let slot = get_line t base in
    let within = addr - base in
    let n = min len (t.line_size - within) in
    Bytes.blit buf off t.data.(slot) within n;
    t.dirty.(slot) <- true;
    t.owner.(slot) <- t.cur_owner;
    write_from t (addr + n) buf (off + n) (len - n)
  end

let flush_line t addr =
  let base = line_base t addr in
  let slot = find_slot t base in
  if slot < 0 then false
  else begin
    let was_dirty = t.dirty.(slot) in
    if was_dirty then write_back t base slot;
    remove_line t slot;
    was_dirty
  end

let invalidate_line t addr =
  let base = line_base t addr in
  let slot = find_slot t base in
  if slot >= 0 then remove_line t slot

let is_dirty t addr =
  let slot = find_slot t (line_base t addr) in
  slot >= 0 && t.dirty.(slot)

(* Write-back (if dirty) and invalidate in one probe: the streaming
   store path runs this per word, and probing once instead of three
   times (is_dirty / writeback_line / invalidate_line) is visible on
   the commit microbench.  Semantics and crash-tick sequence are
   exactly the composition of those three calls. *)
let wt_invalidate t addr =
  let base = line_base t addr in
  let slot = find_slot t base in
  if slot >= 0 then begin
    if t.dirty.(slot) then write_back t base slot;
    remove_line t slot
  end

let dirty_lines t =
  let acc = ref [] in
  for m = t.nmembers - 1 downto 0 do
    let base = t.members.(m) in
    if t.dirty.(find_slot t base) then acc := base :: !acc
  done;
  List.sort (fun (a : int) b -> compare a b) !acc

let resident_lines t = t.nmembers
let evictions t = t.evictions

let writeback_line t addr =
  let base = line_base t addr in
  let slot = find_slot t base in
  if slot >= 0 && t.dirty.(slot) then write_back t base slot

let drop_all t =
  Array.fill t.keys 0 (Array.length t.keys) (-1);
  Array.fill t.dirty 0 (Array.length t.dirty) false;
  t.nmembers <- 0
