(** A write-back processor cache of 64-byte lines over the SCM device.

    The cache is the reason consistent updates are hard (paper
    section 3.2.3): dirty lines may be evicted — written back to SCM —
    at any time and in any order, and lines that have not been evicted
    or flushed are simply lost on a crash.  This model reproduces both
    hazards: eviction is randomized (seeded), and {!Crash} drops or
    selectively retains dirty lines.

    One cache is shared by all simulated threads, as on the paper's
    single-socket evaluation machine. *)

type t

val create :
  ?line_size:int ->
  ?capacity_lines:int ->
  ?seed:int ->
  ?obs:Obs.t ->
  ?cp:Crashpoint.t ->
  Scm_device.t ->
  t
(** [create dev] makes a cache over [dev].  [capacity_lines] bounds the
    number of resident lines (default 8192 = 512 KiB); exceeding it
    evicts a pseudo-random victim, writing it back if dirty.  Evictions
    feed [obs] (counter [scm.cache.evictions] plus a [Cache_evict]
    trace event when tracing).  Every dirty-line write-back (flush,
    eviction, or forced) ticks [cp] (default: a private disarmed
    counter). *)

val line_size : t -> int
val line_base : t -> int -> int
(** [line_base t addr] is the address of the first byte of the line
    containing [addr]. *)

val read_word : t -> int -> int64
(** Read through the cache (allocate-on-read). *)

val peek_word : t -> int -> int64
(** Coherent read that never allocates a line (an uncached load):
    answers from the cache when the line is resident, from the device
    otherwise.  Recovery-time region sweeps use this so a full scan
    neither evicts the working set nor advances the eviction rng. *)

val write_word : t -> int -> int64 -> unit
(** Write into the cache, marking the line dirty.  Not durable until the
    line is flushed, evicted, or written back by a crash policy. *)

val read_into : t -> int -> Bytes.t -> int -> int -> unit
val write_from : t -> int -> Bytes.t -> int -> int -> unit

val flush_line : t -> int -> bool
(** [flush_line t addr] models [clflush]: write the line containing
    [addr] back to the device if dirty and invalidate it.  Returns true
    if a dirty line actually went to SCM (the caller charges PCM write
    latency in that case). *)

val invalidate_line : t -> int -> unit
(** Drop the line without write-back (used by streaming stores, which
    bypass and invalidate the cache). *)

val wt_invalidate : t -> int -> unit
(** [wt_invalidate t addr]: write the line containing [addr] back if it
    is dirty, then drop it — the coherence action of a streaming store,
    equivalent to [is_dirty]/[writeback_line]/[invalidate_line] composed
    but probing the table once.  No-op when the line is not resident. *)

val is_dirty : t -> int -> bool
val dirty_lines : t -> int list
(** Addresses of all dirty lines, ascending; used by crash injection. *)

val resident_lines : t -> int
val evictions : t -> int
(** Number of capacity evictions so far (each one silently persisted a
    line — the "uncontrolled durability" hazard). *)

val writeback_line : t -> int -> unit
(** Force a specific line to the device, keeping it resident and clean.
    Used by crash policies that model async eviction. *)

val drop_all : t -> unit
(** Discard every line without write-back: the volatile cache contents
    vanishing at power loss. *)

val set_pmcheck : t -> Pmcheck.t option -> unit
(** Attach (or detach, with [None]) a durability sanitizer: every line
    write-back reports a device-reach event to it.  Installed via
    {!Env.install_pmcheck}. *)

val set_owner : t -> int -> unit
(** Stamp the transaction id that subsequent stores dirty lines on
    behalf of (0 = unattributed).  The access layer sets it before each
    cached store; a later write-back of the line emits a causal flow
    step attributing the deferred work back to that transaction when
    tracing.  Plain int stores: no simulated time, rng, or
    allocation. *)
