(* A cached access to a line with pending streaming stores would refill
   the line from stale device contents; real write-combining buffers may
   flush spontaneously, so model exactly that and drain first. *)
let drain_if_pending (env : Env.t) addr =
  if Wc_buffer.pending_in_line env.wc addr then Wc_buffer.drain env.wc

let load (env : Env.t) addr =
  env.delay env.machine.latency.cache_hit_ns;
  if Wc_buffer.is_empty env.wc then Cache.read_word env.machine.cache addr
  else
    match Wc_buffer.lookup env.wc addr with
    | Some v -> v
    | None ->
        drain_if_pending env addr;
        Cache.read_word env.machine.cache addr

(* Non-temporal load: coherent, but never allocates a cache line —
   recovery-time sweeps over whole regions must leave the cache (and
   its eviction rng) untouched.  Sequential streaming reads pipeline at
   bandwidth, so a whole 4-KiB log buffer streams in well under a
   microsecond — and charging (or even yielding to the simulator) per
   word would perturb every process interleaving whenever a thread
   attaches a log.  No latency is charged per word; the writes such a
   sweep decides to make go through {!wtstore} and pay full price. *)
let load_nt (env : Env.t) addr =
  if Wc_buffer.is_empty env.wc then Cache.peek_word env.machine.cache addr
  else
    match Wc_buffer.lookup env.wc addr with
    | Some v -> v
    | None ->
        drain_if_pending env addr;
        Cache.peek_word env.machine.cache addr

let store (env : Env.t) addr v =
  env.delay env.machine.latency.cache_hit_ns;
  if not (Wc_buffer.is_empty env.wc) then drain_if_pending env addr;
  (* The cache is shared between threads: re-stamp the owner on each
     store so attribution survives interleaving. *)
  Cache.set_owner env.machine.cache env.cur_txid;
  Cache.write_word env.machine.cache addr v

let wtstore (env : Env.t) addr v =
  env.delay env.machine.latency.wc_post_ns;
  (* movnt bypasses the cache; make sure a dirty cached copy of the line
     does not later overwrite the streamed data, and that subsequent
     cached loads do not see stale data. *)
  Cache.wt_invalidate env.machine.cache addr;
  Wc_buffer.set_owner env.wc env.cur_txid;
  Wc_buffer.post env.wc addr v

(* PCM media writes pass through the single memory controller: a
   1/banks share of each write's cost serializes against other threads
   (the controller/bus slot); the rest is bank-parallel device time
   charged privately.  A single-threaded caller sees exactly the full
   cost; concurrent flushers delay each other by the serialized share —
   the effect behind paper figure 6's low-idle slowdown. *)
let[@inline] media_write_occ (env : Env.t) cost_ns occupancy =
  let m = env.machine in
  let now = env.now () in
  let start = max now m.media_busy_until in
  let finish = start + occupancy in
  m.media_busy_until <- finish;
  env.delay (finish - now + (cost_ns - occupancy))

let media_write (env : Env.t) cost_ns =
  media_write_occ env cost_ns
    (cost_ns / max 1 env.machine.latency.media_banks)

let flush_impl (env : Env.t) addr =
  let wrote = Cache.flush_line env.machine.cache addr in
  if wrote then
    media_write_occ env env.machine.latency.pcm_write_ns env.machine.pcm_occ
  else env.delay env.machine.latency.cache_hit_ns

let flush (env : Env.t) addr =
  let obs = env.machine.obs in
  Obs.Metrics.incr env.machine.flush_ctr;
  if not (Obs.tracing obs) then flush_impl env addr
  else begin
    let t0 = env.now () in
    flush_impl env addr;
    Obs.complete obs Obs.Trace.Flush ~ts:t0 ~dur:(env.now () - t0) ~arg:addr
  end

let fence_impl (env : Env.t) =
  Crashpoint.tick env.machine.crash_point Crashpoint.Fence;
  let lat = env.machine.latency in
  let bytes = Wc_buffer.pending_bytes env.wc in
  (match env.machine.pmcheck with
  | None -> ()
  | Some chk -> Pmcheck.note_fence chk ~pending_words:(bytes / 8));
  Wc_buffer.drain env.wc;
  env.delay lat.fence_base_ns;
  if bytes > 0 then media_write env (Latency_model.streaming_write_ns lat bytes)

let fence (env : Env.t) =
  let obs = env.machine.obs in
  Obs.Metrics.incr env.machine.fence_ctr;
  if not (Obs.tracing obs) then fence_impl env
  else begin
    let t0 = env.now () in
    let bytes = Wc_buffer.pending_bytes env.wc in
    fence_impl env;
    Obs.complete obs Obs.Trace.Fence ~ts:t0 ~dur:(env.now () - t0) ~arg:bytes
  end

(* One fence ordering several threads' pending streaming stores at once
   (group commit).  Each member's WC buffer drains — so every member's
   prior appends are durable afterwards, exactly as if each had fenced —
   but the group shares a single serialization point: the head of the
   list (the leader, the only member actually running; the rest are
   parked) pays one fence base cost plus one combined streaming burst
   through the memory controller instead of one burst per member.  Each
   member still gets its own sanitizer fence note, so per-word
   durability state stays exact. *)
let fence_group_impl (envs : Env.t list) =
  match envs with
  | [] -> ()
  | leader :: _ ->
      Crashpoint.tick leader.machine.crash_point Crashpoint.Fence;
      let total =
        List.fold_left
          (fun acc (env : Env.t) ->
            let bytes = Wc_buffer.pending_bytes env.wc in
            (match env.machine.pmcheck with
            | None -> ()
            | Some chk -> Pmcheck.note_fence chk ~pending_words:(bytes / 8));
            Wc_buffer.drain env.wc;
            acc + bytes)
          0 envs
      in
      leader.delay leader.machine.latency.fence_base_ns;
      if total > 0 then
        media_write leader
          (Latency_model.streaming_write_ns leader.machine.latency total)

let fence_group (envs : Env.t list) =
  match envs with
  | [] -> ()
  | leader :: _ ->
      let obs = leader.machine.obs in
      Obs.Metrics.incr leader.machine.fence_ctr;
      if not (Obs.tracing obs) then fence_group_impl envs
      else begin
        let t0 = leader.now () in
        let bytes =
          List.fold_left
            (fun acc (e : Env.t) -> acc + Wc_buffer.pending_bytes e.wc)
            0 envs
        in
        fence_group_impl envs;
        Obs.complete obs Obs.Trace.Fence ~ts:t0 ~dur:(leader.now () - t0)
          ~arg:bytes
      end

let load_bytes (env : Env.t) addr buf off len =
  (* Go word by word so pending streaming stores are forwarded. *)
  let i = ref 0 in
  while !i < len do
    let a = addr + !i in
    let word_base = a land lnot 7 in
    let within = a - word_base in
    let n = min (8 - within) (len - !i) in
    let w = load env word_base in
    let tmp = Bytes.create 8 in
    Word.set tmp 0 w;
    Bytes.blit tmp within buf (off + !i) n;
    i := !i + n
  done

let store_bytes (env : Env.t) addr buf off len =
  env.delay (env.machine.latency.cache_hit_ns * Word.words_for_bytes len);
  if Wc_buffer.pending_words env.wc > 0 then begin
    (* Any overlap between the range and pending streaming stores
       triggers a spontaneous drain, as in [store]. *)
    let a = ref (addr land lnot 63) in
    let overlap = ref false in
    while (not !overlap) && !a < addr + len do
      if Wc_buffer.pending_in_line env.wc !a then overlap := true;
      a := !a + 64
    done;
    if !overlap then Wc_buffer.drain env.wc
  end;
  Cache.set_owner env.machine.cache env.cur_txid;
  Cache.write_from env.machine.cache addr buf off len

let wtstore_bytes (env : Env.t) addr buf off len =
  if not (Word.is_aligned addr) || len land 7 <> 0 then
    invalid_arg "Primitives.wtstore_bytes: alignment";
  let nwords = len / 8 in
  for i = 0 to nwords - 1 do
    wtstore env (addr + (8 * i)) (Word.get buf (off + (8 * i)))
  done

let persist (env : Env.t) addr len =
  if len > 0 then begin
    let line = Cache.line_size env.machine.cache in
    let first = Cache.line_base env.machine.cache addr in
    let last = Cache.line_base env.machine.cache (addr + len - 1) in
    let a = ref first in
    while !a <= last do
      flush env !a;
      a := !a + line
    done;
    fence env
  end
