(** The storage-class-memory device.

    This is the durable layer: whatever is in the device arena at the
    moment of a crash is what survives.  Caches and write-combining
    buffers above it are volatile overlays ({!Cache}, {!Wc_buffer}).

    Addresses here are {e physical} byte offsets into the device; the
    region manager translates the virtual addresses the rest of the
    system uses.  The device guarantees atomic aligned 64-bit writes
    (paper section 2) and nothing more.

    The arena can be saved to and reloaded from a file, which is how we
    emulate machine reboot: a crash test saves the post-crash image,
    constructs a fresh device from it, and re-runs recovery. *)

type t

val create : ?frame_size:int -> nframes:int -> unit -> t
(** [create ~nframes ()] makes a zeroed device of [nframes] frames of
    [frame_size] (default 4096) bytes. *)

val frame_size : t -> int
val nframes : t -> int
val size_bytes : t -> int

val load64 : t -> int -> int64
(** [load64 t addr] reads the aligned word at physical byte address
    [addr].  Raises [Invalid_argument] if out of range or unaligned. *)

val store64 : t -> int -> int64 -> unit
(** Atomic durable word write. *)

val store64_unchecked : t -> int -> int64 -> unit
(** {!store64} without the range/alignment precondition checks, for
    drain loops over addresses that were validated when first posted
    (out-of-range still raises, from the underlying bounds checks). *)

val load_byte : t -> int -> char
val read_into : t -> int -> Bytes.t -> int -> int -> unit
(** [read_into t addr buf off len] copies [len] device bytes at [addr]
    into [buf] starting at [off]. *)

val write_from : t -> int -> Bytes.t -> int -> int -> unit
(** Durable multi-byte write, used by the cache write-back path (a full
    line reaching memory) and by frame swap-in.  Not atomic beyond 64-bit
    granularity; callers must not rely on more. *)

val write_count : t -> int -> int
(** [write_count t frame] is the number of word/line writes that have
    landed in [frame] — the wear counter of section 4.5. *)

val total_writes : t -> int

val save_image : t -> string -> unit
(** Persist the full arena (and geometry) to a file. *)

val load_image : string -> t
(** Reconstruct a device from a saved image. *)

val copy : t -> t
(** A snapshot of the device; used by tests that compare pre/post-crash
    durable state.  The copy's undo journal starts fresh and disabled
    regardless of the source's. *)

(** {1 Undo journal}

    Roll-back support for crash-point exploration, which needs to
    restore the device to a known state hundreds of times per sweep.
    With the journal enabled every mutation first records the span's
    old contents, so {!journal_undo_to} costs O(bytes written since the
    mark) instead of the O(arena) of re-copying a pristine device.
    Wear counters ({!write_count}, {!total_writes}) are rolled back
    with the data, so a restored device is indistinguishable from a
    fresh copy of the original. *)

type mark
(** A point in the journal to roll back to. *)

val journal_start : t -> unit
(** Enable journaling (discarding any previous journal contents). *)

val journal_stop : t -> unit
(** Disable journaling and discard the journal. *)

val journal_mark : t -> mark
(** The current journal position.  Marks taken later are nested inside
    earlier ones; undoing to an earlier mark invalidates later ones. *)

val journal_undo_to : t -> mark -> unit
(** Restore arena contents and wear counters to their state at [mark]
    by replaying recorded old contents newest-first, then truncate the
    journal back to [mark]. *)
