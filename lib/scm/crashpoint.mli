(** Deterministic crash-point bookkeeping.

    Every crash-relevant persistence operation — a write-through store
    entering the write-combining buffer, a WC drain, a cache-line
    write-back (explicit flush or eviction), a fence — passes through
    {!tick}, which assigns it the next index in a monotonically
    increasing per-machine sequence.  Because the whole simulation is
    deterministic, the operation performed at index [k] is a pure
    function of the workload and its seed, so [(seed, k)] names one
    exact interleaving point.

    Arming the counter at index [k] makes the [k]-th operation raise
    {!Simulated_crash} {e instead of} executing: the machine then holds
    precisely the volatile and durable state that existed after
    operation [k - 1].  The exception unwinds to the driver, which
    applies an adversarial {!Crash.inject} policy to the surviving
    volatile state and re-runs recovery.  After firing, every further
    tick on the same machine re-raises, so no cleanup path can leak
    writes past the crash point. *)

type kind =
  | Wt_post  (** a write-through store posted to the WC buffer *)
  | Wc_drain  (** the WC buffer draining pending stores to the device *)
  | Cache_writeback  (** a dirty cache line written back (flush/evict) *)
  | Fence  (** an ordering fence *)

val kind_name : kind -> string

exception Simulated_crash of { op : int; kind : kind }

type t

val create : unit -> t
(** Fresh counter, disarmed, at op 0. *)

val count : t -> int
(** Persistence operations ticked so far. *)

val target : t -> int option
val crashed : t -> bool
val last_kind : t -> kind option

val arm : t -> at:int -> unit
(** Crash when the [at]-th operation (1-based, counting from the
    counter's current state at 0) is about to execute. *)

val disarm : t -> unit
(** Stop injecting; also clears the [crashed] latch ({!Crash.inject}
    calls this before touching volatile state through tick sites). *)

val tick : t -> kind -> unit
(** Count one persistence operation; raises {!Simulated_crash} when the
    armed target is reached (the operation must not be performed). *)
